#!/bin/bash
# Runs every bench binary and captures the output.
#
# Usage: ./run_benches.sh [--quick] [--json]
#   --quick  pass --quick to every bench (smaller workloads, CI-sized)
#   --json   write per-bench JSON to bench_json/<name>.json and aggregate
#            everything into BENCH_results.json
#
# Exits nonzero if any bench fails.
set -u

QUICK=""
JSON=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    --json) JSON=1 ;;
    *)
      echo "unknown argument: $arg" >&2
      echo "usage: $0 [--quick] [--json]" >&2
      exit 2
      ;;
  esac
done

JSON_DIR="bench_json"
if [ "$JSON" = 1 ]; then
  mkdir -p "$JSON_DIR"
fi

FAILED=""

run_bench() {
  local b="$1"
  shift
  if [ ! -x "build/bench/$b" ]; then
    echo "===== $b ===== (missing: build/bench/$b — skipped)"
    FAILED="$FAILED $b(missing)"
    return
  fi
  echo "===== $b ====="
  local extra=()
  if [ "$JSON" = 1 ]; then
    # Remove stale output first: a bench that dies before writing must not
    # leave a previous run's document to be aggregated as if it were fresh.
    rm -f "$JSON_DIR/$b.json"
    extra+=(--json "$JSON_DIR/$b.json")
  fi
  if ! "./build/bench/$b" $QUICK "$@" "${extra[@]+"${extra[@]}"}"; then
    echo "FAILED: $b" >&2
    FAILED="$FAILED $b"
  fi
  echo
}

for b in table1_fsync_iops table2_page_size fig5_linkbench fig6_buffer_sweep \
         table3_latency table4_tpcc table5_couchbase ablation_cache_size \
         ablation_parallelism ablation_gc ablation_dump_area \
         ablation_endurance ablation_flush_semantics ablation_queue_depth \
         ablation_durability_mode ablation_destage_mode \
         ablation_array_failover ablation_host_parallelism \
         ablation_tiered_cache; do
  run_bench "$b"
done
run_bench micro_ops --benchmark_min_time=0.1

if [ "$JSON" = 1 ]; then
  # Aggregate the per-bench documents into one BENCH_results.json:
  # {"schema_version":1,"benches":{"<name>":<per-bench document>,...}}.
  # micro_ops emits google-benchmark's native format; it is included as-is.
  {
    printf '{"schema_version":1,"benches":{'
    first=1
    for f in "$JSON_DIR"/*.json; do
      [ -e "$f" ] || continue
      name="$(basename "$f" .json)"
      # Partial output (bench crashed or was killed mid-write) lacks the
      # terminal "complete":true key and must not reach the aggregate.
      # micro_ops is google-benchmark's native format and is exempt.
      if [ "$name" != micro_ops ] && \
         ! grep -q '"complete": *true' "$f"; then
        echo "INCOMPLETE: $name ($f has no terminal \"complete\" key)" >&2
        FAILED="$FAILED $name(incomplete)"
        continue
      fi
      if [ "$first" = 1 ]; then first=0; else printf ','; fi
      printf '"%s":' "$name"
      cat "$f"
    done
    printf '}}\n'
  } > BENCH_results.json
  echo "Wrote BENCH_results.json ($(ls "$JSON_DIR" | wc -l) benches)"
fi

if [ -n "$FAILED" ]; then
  echo "Failed benches:$FAILED" >&2
  exit 1
fi
