#!/bin/bash
# Runs every bench binary (full scale) and captures the output.
set -u
for b in table1_fsync_iops table2_page_size fig5_linkbench fig6_buffer_sweep \
         table3_latency table4_tpcc table5_couchbase ablation_cache_size \
         ablation_parallelism ablation_gc ablation_dump_area ablation_endurance ablation_flush_semantics; do
  if [ -x "build/bench/$b" ]; then
    echo "===== $b ====="
    ./build/bench/$b
    echo
  fi
done
echo "===== micro_ops ====="
./build/bench/micro_ops --benchmark_min_time=0.1
