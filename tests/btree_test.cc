#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "db/btree.h"
#include "db/buffer_pool.h"
#include "db/wal.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

/// Trivial allocator for tree-only tests.
class BumpAllocator : public PageAllocator {
 public:
  StatusOr<PageId> AllocatePage(IoContext& io) override {
    (void)io;
    return next_++;
  }

 private:
  PageId next_ = 1;
};

class BTreeTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  BTreeTest() {
    SsdConfig cfg = SsdConfig::DuraSsd();
    cfg.geometry = FlashGeometry::Tiny();
    cfg.geometry.blocks_per_plane = 128;  // ~64 MiB raw.
    cfg.geometry.pages_per_block = 32;
    dev_ = std::make_unique<SsdDevice>(cfg);
    fs_ = std::make_unique<SimFileSystem>(dev_.get(),
                                          SimFileSystem::Options{});
    wal_ = std::make_unique<Wal>(fs_->Open("wal"), Wal::Options{});
    pool_ = std::make_unique<BufferPool>(
        fs_->Open("data"), wal_.get(), nullptr,
        BufferPool::Options{4 * kMiB, PageSize(), false});
    MutationCtx m{0, 0, nullptr};
    auto root = BTree::Create(io_, pool_.get(), &alloc_, m);
    EXPECT_TRUE(root.ok());
    tree_ = std::make_unique<BTree>(pool_.get(), &alloc_, *root);
  }

  uint32_t PageSize() const { return GetParam(); }
  MutationCtx Ctx() { return MutationCtx{1, 0, nullptr}; }

  IoContext io_;
  std::unique_ptr<SsdDevice> dev_;
  std::unique_ptr<SimFileSystem> fs_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  BumpAllocator alloc_;
  std::unique_ptr<BTree> tree_;
};

INSTANTIATE_TEST_SUITE_P(PageSizes, BTreeTest,
                         ::testing::Values(4096u, 8192u, 16384u));

TEST_P(BTreeTest, EmptyTreeGetNotFound) {
  std::string v;
  EXPECT_TRUE(tree_->Get(io_, "missing", &v).IsNotFound());
}

TEST_P(BTreeTest, PutGetSingle) {
  ASSERT_TRUE(tree_->Put(io_, Ctx(), "key", "value").ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(io_, "key", &v).ok());
  EXPECT_EQ(v, "value");
}

TEST_P(BTreeTest, UpsertReplaces) {
  ASSERT_TRUE(tree_->Put(io_, Ctx(), "k", "v1").ok());
  std::string old;
  bool had_old = false;
  ASSERT_TRUE(tree_->Put(io_, Ctx(), "k", "v2", &old, &had_old).ok());
  EXPECT_TRUE(had_old);
  EXPECT_EQ(old, "v1");
  std::string v;
  ASSERT_TRUE(tree_->Get(io_, "k", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST_P(BTreeTest, DeleteRemovesAndReportsOld) {
  ASSERT_TRUE(tree_->Put(io_, Ctx(), "k", "v").ok());
  std::string old;
  bool had_old = false;
  ASSERT_TRUE(tree_->Delete(io_, Ctx(), "k", &old, &had_old).ok());
  EXPECT_TRUE(had_old);
  EXPECT_EQ(old, "v");
  std::string v;
  EXPECT_TRUE(tree_->Get(io_, "k", &v).IsNotFound());
  EXPECT_TRUE(tree_->Delete(io_, Ctx(), "k").IsNotFound());
}

TEST_P(BTreeTest, ManyInsertsSplitAndStaySorted) {
  // Enough keys to force multiple levels at every page size.
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i * 7 % n);
    ASSERT_TRUE(tree_->Put(io_, Ctx(), key, "v" + std::to_string(i)).ok())
        << key;
  }
  // Every key readable.
  for (int i = 0; i < n; i += 97) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i * 7 % n);
    std::string v;
    ASSERT_TRUE(tree_->Get(io_, key, &v).ok()) << key;
  }
  // Full scan is sorted and complete.
  std::vector<std::pair<std::string, std::string>> all;
  ASSERT_TRUE(tree_->ScanFrom(io_, "", n + 10, &all).ok());
  ASSERT_EQ(all.size(), static_cast<size_t>(n));
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].first, all[i].first);
  }
}

TEST_P(BTreeTest, RandomizedMatchesReferenceModel) {
  Random rng(17);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 8000; ++op) {
    const std::string key = "key" + std::to_string(rng.Uniform(800));
    const uint64_t action = rng.Uniform(10);
    if (action < 6) {
      const std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_TRUE(tree_->Put(io_, Ctx(), key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      const Status s = tree_->Delete(io_, Ctx(), key);
      if (model.erase(key) > 0) {
        EXPECT_TRUE(s.ok());
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {
      std::string v;
      const Status s = tree_->Get(io_, key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(v, it->second);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    }
  }
  // Final full comparison.
  std::vector<std::pair<std::string, std::string>> all;
  ASSERT_TRUE(tree_->ScanFrom(io_, "", 100000, &all).ok());
  ASSERT_EQ(all.size(), model.size());
  auto mit = model.begin();
  for (const auto& [k, v] : all) {
    EXPECT_EQ(k, mit->first);
    EXPECT_EQ(v, mit->second);
    ++mit;
  }
}

TEST_P(BTreeTest, ScanFromMidRange) {
  for (int i = 0; i < 100; ++i) {
    char key[8];
    snprintf(key, sizeof(key), "%03d", i);
    ASSERT_TRUE(tree_->Put(io_, Ctx(), key, "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->ScanFrom(io_, "050", 10, &out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().first, "050");
  EXPECT_EQ(out.back().first, "059");
}

TEST_P(BTreeTest, CountRangeRespectsBounds) {
  for (int i = 0; i < 200; ++i) {
    char key[8];
    snprintf(key, sizeof(key), "%03d", i);
    ASSERT_TRUE(tree_->Put(io_, Ctx(), key, "v").ok());
  }
  uint64_t count = 0;
  ASSERT_TRUE(tree_->CountRange(io_, "010", "020", 1000, &count).ok());
  EXPECT_EQ(count, 10u);
  ASSERT_TRUE(tree_->CountRange(io_, "190", "", 1000, &count).ok());
  EXPECT_EQ(count, 10u);  // Open end: to the last key (199).
  ASSERT_TRUE(tree_->CountRange(io_, "000", "999", 25, &count).ok());
  EXPECT_EQ(count, 25u);  // Capped.
}

TEST_P(BTreeTest, LargeValuesNearLimit) {
  const std::string big(tree_->max_value_size(), 'B');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Put(io_, Ctx(), "big" + std::to_string(i), big).ok());
  }
  std::string v;
  ASSERT_TRUE(tree_->Get(io_, "big25", &v).ok());
  EXPECT_EQ(v, big);
}

TEST_P(BTreeTest, RejectsOversizedKeyAndValue) {
  const std::string huge_key(tree_->max_key_size() + 1, 'K');
  const std::string huge_val(tree_->max_value_size() + 1, 'V');
  EXPECT_FALSE(tree_->Put(io_, Ctx(), huge_key, "v").ok());
  EXPECT_FALSE(tree_->Put(io_, Ctx(), "k", huge_val).ok());
  EXPECT_FALSE(tree_->Put(io_, Ctx(), "", "v").ok());
}

TEST_P(BTreeTest, GrowingValueRewritesAcrossSplits) {
  // Repeatedly grow the same keys; exercises the ReplaceCell-overflow path.
  for (int round = 1; round <= 8; ++round) {
    const std::string value(round * 50, 'a' + round);
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(
          tree_->Put(io_, Ctx(), "grow" + std::to_string(i), value).ok());
    }
  }
  std::string v;
  ASSERT_TRUE(tree_->Get(io_, "grow30", &v).ok());
  EXPECT_EQ(v, std::string(400, 'a' + 8));
}

}  // namespace
}  // namespace durassd
