// Striped group commit under power cuts: a 60-instant sweep asserting that
// (a) every commit acknowledgeable at the cut — CSN at or below the
// watermark — is recovered intact, and (b) the recovered watermark never
// runs ahead of any stripe's durable prefix (recovery discards everything
// at and past the first CSN gap).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/io_context.h"
#include "db/striped_wal.h"
#include "host/sim_file.h"
#include "sim/thread_pool.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kStripes = 4;

WalRecord Put(TxnId txn, const std::string& key, const std::string& value) {
  WalRecord r;
  r.type = WalRecordType::kPut;
  r.txn = txn;
  r.tree = 1;
  r.key = key;
  r.value = value;
  return r;
}

std::vector<WalRecord> CommitPayload(uint64_t i) {
  return {Put(i, "key-" + std::to_string(i), "value-" + std::to_string(i)),
          Put(i, "key2-" + std::to_string(i), std::string(100, 'x'))};
}

struct AckedCommit {
  uint64_t csn;
  uint32_t stripe;
  SimTime acked_at;  ///< Instant the watermark reached this CSN.
};

/// Runs `max_commits` round-robin striped commits on a fresh stack,
/// stopping at the first commit issued at or after `stop_issuing_at`
/// (0 = run everything). Fills `acked` in watermark-ack order.
void RunCommitHistory(SimFileSystem* fs, uint64_t max_commits,
                      SimTime stop_issuing_at,
                      std::vector<AckedCommit>* acked, SimTime* end) {
  StripedWal::Options opts;
  opts.stripes = kStripes;
  StripedWal swal(fs, opts);
  acked->clear();
  IoContext io;
  uint64_t prev_wm = 0;
  for (uint64_t i = 1; i <= max_commits; ++i) {
    if (stop_issuing_at != 0 && io.now >= stop_issuing_at) break;
    const uint32_t stripe = static_cast<uint32_t>(i % kStripes);
    auto t = swal.Commit(io, stripe, CommitPayload(i));
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    // Single-threaded: the watermark advances exactly to this CSN.
    const uint64_t wm = swal.watermark();
    EXPECT_EQ(wm, t->csn);
    for (uint64_t c = prev_wm + 1; c <= wm; ++c) {
      acked->push_back({c, stripe, io.now});
    }
    prev_wm = wm;
  }
  *end = io.now;
}

class StripedWalCutSweep : public ::testing::TestWithParam<int> {};

// 60 cut points spread across the run (fractions 1/61 .. 60/61, off-grid).
INSTANTIATE_TEST_SUITE_P(CutPoints, StripedWalCutSweep,
                         ::testing::Range(1, 61));

TEST_P(StripedWalCutSweep, AckedCommitsSurviveAndWatermarkNeverRunsAhead) {
  SsdConfig config = SsdConfig::Tiny(true);  // Durable cache (DuraSSD).
  config.geometry.blocks_per_plane = 128;

  // Probe pass: learn the full run's duration.
  SimTime total = 0;
  {
    SsdDevice dev(config);
    SimFileSystem fs(&dev, SimFileSystem::Options{});
    std::vector<AckedCommit> ignored;
    RunCommitHistory(&fs, 64, 0, &ignored, &total);
  }
  ASSERT_GT(total, 0);
  const SimTime cut = total * GetParam() / 61 + GetParam();  // Off-grid.

  // Real pass: same deterministic history, stop issuing at the cut.
  SsdDevice dev(config);
  SimFileSystem fs(&dev, SimFileSystem::Options{});
  SimTime end = 0;
  std::vector<AckedCommit> acked;
  RunCommitHistory(&fs, 64, cut, &acked, &end);

  // The last commit issued before the cut may have completed past it;
  // power can only be cut at the execution frontier.
  dev.PowerCut(std::max(cut, end));
  dev.PowerOn();

  // Recover on a fresh StripedWal over the surviving files.
  StripedWal::Options opts;
  opts.stripes = kStripes;
  StripedWal recovered(&fs, opts);
  IoContext rio;
  std::vector<StripedWal::RecoveredCommit> commits;
  ASSERT_TRUE(recovered.Recover(rio, &commits).ok());

  // Recovered commits are a contiguous CSN prefix == the watermark.
  for (size_t i = 0; i < commits.size(); ++i) {
    EXPECT_EQ(commits[i].csn, i + 1);
  }
  EXPECT_EQ(recovered.watermark(), commits.size());

  // (a) Every commit acknowledged (watermark-covered) before the cut
  // survived with its exact payload.
  for (const AckedCommit& a : acked) {
    if (a.acked_at > cut) continue;
    ASSERT_LE(a.csn, commits.size())
        << "acked csn " << a.csn << " lost at cut " << cut;
    const StripedWal::RecoveredCommit& rc = commits[a.csn - 1];
    const std::vector<WalRecord> want = CommitPayload(a.csn);
    ASSERT_EQ(rc.records.size(), want.size()) << "csn " << a.csn;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(rc.records[i].key, want[i].key) << "csn " << a.csn;
      EXPECT_EQ(rc.records[i].value, want[i].value) << "csn " << a.csn;
    }
  }

  // The recovered log accepts new commits and numbering resumes right
  // after the recovered prefix.
  auto t = recovered.Commit(rio, 0, CommitPayload(999));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->csn, commits.size() + 1);
  EXPECT_EQ(recovered.watermark(), t->csn);
}

/// The live watermark never runs ahead of the weakest stripe's durable
/// prefix: a commit appended (written out) but not yet synced on stripe 1
/// pins the watermark even while later CSNs on stripe 0 become durable.
TEST(StripedWalTest, WatermarkHoldsBehindWeakestStripe) {
  SsdConfig config = SsdConfig::Tiny(true);
  config.geometry.blocks_per_plane = 128;
  SsdDevice dev(config);
  SimFileSystem fs(&dev, SimFileSystem::Options{});

  StripedWal::Options opts;
  opts.stripes = 2;
  StripedWal swal(&fs, opts);
  IoContext io;

  auto c1 = swal.Commit(io, 0, CommitPayload(1));  // csn 1: durable.
  ASSERT_TRUE(c1.ok());
  auto c2 = swal.Append(io, 1, CommitPayload(2));  // csn 2: sync in flight.
  ASSERT_TRUE(c2.ok());
  auto c3 = swal.Commit(io, 0, CommitPayload(3));  // csn 3: durable.
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ(c1->csn, 1u);
  EXPECT_EQ(*c2, 2u);
  EXPECT_EQ(c3->csn, 3u);
  // csn 2 not durable => the watermark holds at 1 despite csn 3 durable:
  // neither 2 nor 3 is acknowledgeable yet.
  EXPECT_EQ(swal.watermark(), 1u);
  EXPECT_EQ(swal.last_csn(), 3u);

  // Stripe 1's leader sync lands: the watermark drains through the gap.
  ASSERT_TRUE(swal.SyncStripe(io, 1).ok());
  EXPECT_EQ(swal.watermark(), 3u);
}

/// Manufactures a real CSN gap across reboots: stripe 1's segment is lost
/// wholesale while a later CSN on stripe 0 is fully durable. Recovery must
/// discard the stranded higher CSN, physically truncate it, and resume
/// numbering at the watermark so the reissued CSN resolves only to the new
/// commit — never resurrecting the discarded one.
TEST(StripedWalTest, GapDiscardsEverythingPastIt) {
  SsdConfig config = SsdConfig::Tiny(true);
  config.geometry.blocks_per_plane = 128;
  SsdDevice dev(config);
  SimFileSystem fs(&dev, SimFileSystem::Options{});

  StripedWal::Options opts;
  opts.stripes = 2;
  {
    StripedWal swal(&fs, opts);
    IoContext io;
    ASSERT_TRUE(swal.Commit(io, 0, CommitPayload(1)).ok());  // csn 1.
    ASSERT_TRUE(swal.Commit(io, 1, CommitPayload(2)).ok());  // csn 2.
    ASSERT_TRUE(swal.Commit(io, 0, CommitPayload(3)).ok());  // csn 3.
    EXPECT_EQ(swal.watermark(), 3u);
  }
  // Stripe 1 dies: its segment (holding csn 2) is gone.
  ASSERT_TRUE(fs.Remove("swal.1").ok());

  StripedWal recovered(&fs, opts);
  IoContext rio;
  std::vector<StripedWal::RecoveredCommit> commits;
  ASSERT_TRUE(recovered.Recover(rio, &commits).ok());
  // Only csn 1 survives; csn 3 is durable on stripe 0 but stranded past
  // the gap left by csn 2 — discarded, and the watermark holds at 1.
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].csn, 1u);
  EXPECT_EQ(recovered.watermark(), 1u);

  // Numbering resumes at the watermark; the dead csn-3 bytes were
  // truncated from stripe 0, so the reissued CSN 2 is unambiguous.
  auto t = recovered.Commit(rio, 1, CommitPayload(777));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->csn, 2u);
  EXPECT_EQ(recovered.watermark(), 2u);

  // A further reboot sees {1, new 2} and nothing else: the discarded csn 3
  // was not resurrected when the numeric gap closed.
  StripedWal again(&fs, opts);
  IoContext rio2;
  std::vector<StripedWal::RecoveredCommit> commits2;
  ASSERT_TRUE(again.Recover(rio2, &commits2).ok());
  ASSERT_EQ(commits2.size(), 2u);
  EXPECT_EQ(commits2[0].csn, 1u);
  EXPECT_EQ(commits2[1].csn, 2u);
  const std::vector<WalRecord> want = CommitPayload(777);
  ASSERT_EQ(commits2[1].records.size(), want.size());
  EXPECT_EQ(commits2[1].records[0].key, want[0].key);
  EXPECT_EQ(commits2[1].records[0].value, want[0].value);
  EXPECT_EQ(again.watermark(), 2u);
}

/// Concurrent committers across stripes through a real thread pool: the
/// final watermark must cover every commit, each commit must be durable on
/// exactly one stripe, and recovery must return all of them.
TEST(StripedWalTest, ConcurrentCommittersReachFullWatermark) {
  SsdConfig config = SsdConfig::Tiny(true);
  config.geometry.blocks_per_plane = 128;
  SsdDevice dev(config);
  SimFileSystem fs(&dev, SimFileSystem::Options{});

  StripedWal::Options opts;
  opts.stripes = kStripes;
  StripedWal swal(&fs, opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  ThreadPool pool(kThreads);
  std::vector<std::function<void()>> batch;
  for (int t = 0; t < kThreads; ++t) {
    batch.push_back([&swal, t] {
      IoContext io;
      io.now = t * kMicrosecond;  // Distinct virtual clocks.
      for (int i = 0; i < kPerThread; ++i) {
        auto ticket =
            swal.Commit(io, static_cast<uint32_t>(t) % kStripes,
                        CommitPayload(static_cast<uint64_t>(t) * 100 + i));
        EXPECT_TRUE(ticket.ok());
      }
    });
  }
  pool.RunBatch(batch);

  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(swal.last_csn(), kTotal);
  EXPECT_EQ(swal.watermark(), kTotal);
  const StripedWal::Stats stats = swal.stats();
  EXPECT_EQ(stats.commits, kTotal);
  EXPECT_EQ(stats.appends, kTotal);

  StripedWal recovered(&fs, opts);
  IoContext rio;
  std::vector<StripedWal::RecoveredCommit> commits;
  ASSERT_TRUE(recovered.Recover(rio, &commits).ok());
  ASSERT_EQ(commits.size(), kTotal);
  EXPECT_EQ(recovered.watermark(), kTotal);
}

}  // namespace
}  // namespace durassd
