// Thread-safety smoke tests for every component the sharded engine lets
// host threads touch concurrently: the metrics cells, the tracer rings,
// the partitioned buffer pool, the latch-coupled B+-tree, and the device
// command queue. These are written for the TSan CI job — each test drives
// real concurrent access through a ThreadPool so a data race is an actual
// interleaving, not a code-review guess — but the count/state assertions
// also hold under the plain build.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "db/btree.h"
#include "db/buffer_pool.h"
#include "db/wal.h"
#include "host/sim_file.h"
#include "sim/thread_pool.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr int kThreads = 8;

TEST(ConcurrencyTest, MetricsRegistryConcurrentCounters) {
  MetricsRegistry registry;
  constexpr int kPerThread = 20000;
  ThreadPool pool(kThreads);
  std::vector<std::function<void()>> batch;
  for (int t = 0; t < kThreads; ++t) {
    batch.push_back([&registry, t] {
      // Same-name lookups race with each other and with increments.
      MetricCounter* shared = registry.Counter("shared");
      MetricCounter* own = registry.Counter("own." + std::to_string(t));
      MetricGauge* gauge = registry.Gauge("gauge");
      for (int i = 0; i < kPerThread; ++i) {
        ++*shared;
        *own += 2;
        *gauge = static_cast<uint64_t>(i);
      }
    });
  }
  pool.RunBatch(batch);
  EXPECT_EQ(registry.Counter("shared")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.Counter("own." + std::to_string(t))->value(),
              2u * kPerThread);
  }
  EXPECT_EQ(registry.Gauge("gauge")->value(), kPerThread - 1u);
}

TEST(ConcurrencyTest, TracerConcurrentRecords) {
  Tracer tracer(/*capacity=*/1024);
  tracer.set_enabled(true);
  constexpr int kPerThread = 10000;
  ThreadPool pool(kThreads);
  std::vector<std::function<void()>> batch;
  for (int t = 0; t < kThreads; ++t) {
    batch.push_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Record(i, TraceEventType::kCmdStart,
                      static_cast<uint64_t>(t), static_cast<uint64_t>(i));
      }
    });
  }
  pool.RunBatch(batch);
  EXPECT_EQ(tracer.recorded(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.size() + tracer.dropped(), tracer.recorded());
  // Retained events are well-formed (no torn reads of the ring slots).
  for (const TraceEvent& e : tracer.Events()) {
    EXPECT_LT(e.a0, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(e.t, static_cast<SimTime>(e.a1));
  }
}

/// Shared stack for the pool and tree tests.
struct DbRig {
  std::unique_ptr<SsdDevice> dev;
  std::unique_ptr<SimFileSystem> fs;
  std::unique_ptr<Wal> wal;
  std::unique_ptr<BufferPool> pool;

  explicit DbRig(uint32_t pool_shards, uint64_t pool_bytes = 4 * kMiB) {
    SsdConfig cfg = SsdConfig::DuraSsd();
    cfg.geometry = FlashGeometry::Tiny();
    cfg.geometry.blocks_per_plane = 128;
    cfg.geometry.pages_per_block = 32;
    dev = std::make_unique<SsdDevice>(cfg);
    fs = std::make_unique<SimFileSystem>(dev.get(), SimFileSystem::Options{});
    wal = std::make_unique<Wal>(fs->Open("wal"), Wal::Options{});
    BufferPool::Options opts;
    opts.pool_bytes = pool_bytes;
    opts.page_size = 4 * kKiB;
    opts.shards = pool_shards;
    pool = std::make_unique<BufferPool>(fs->Open("data"), wal.get(), nullptr,
                                        opts);
  }
};

TEST(ConcurrencyTest, BufferPoolConcurrentFixAcrossPartitions) {
  // Working set ~4x the 64-frame pool: fixes race with dirty evictions
  // into the shared WAL/data file across 4 partitions.
  DbRig rig(/*pool_shards=*/4, /*pool_bytes=*/64 * 4 * kKiB);
  constexpr PageId kPages = 256;
  {
    IoContext io;
    for (PageId id = 0; id < kPages; ++id) {
      auto ref = rig.pool->Fix(io, id, /*create=*/true);
      ASSERT_TRUE(ref.ok());
      (*ref)->Format(id, PageType::kFree);
      (*ref)->SealChecksum();
      rig.pool->MarkDirty(id, kInvalidLsn, /*txn=*/0);
    }
    ASSERT_TRUE(rig.pool->FlushAll(io).ok());
  }
  const BufferPool::Stats before = rig.pool->stats();
  ThreadPool tp(kThreads);
  std::atomic<uint64_t> fix_failures{0};
  std::vector<std::function<void()>> batch;
  for (int t = 0; t < kThreads; ++t) {
    batch.push_back([&rig, &fix_failures, t] {
      IoContext io;
      uint64_t rnd = 0x2545F4914F6CDD1Dull * (t + 1);
      for (int i = 0; i < 500; ++i) {
        rnd ^= rnd << 13;
        rnd ^= rnd >> 7;
        rnd ^= rnd << 17;
        const PageId id = rnd % kPages;
        auto ref = rig.pool->Fix(io, id, /*create=*/false);
        if (!ref.ok()) {
          fix_failures.fetch_add(1);
          continue;
        }
        if (i % 3 == 0) {
          ref->latch()->lock();
          (*ref)->SealChecksum();
          rig.pool->MarkDirty(id, kInvalidLsn, /*txn=*/0);
          ref->latch()->unlock();
        }
      }
    });
  }
  tp.RunBatch(batch);
  EXPECT_EQ(fix_failures.load(), 0u);
  const BufferPool::Stats stats = rig.pool->stats();
  EXPECT_EQ(stats.hits + stats.misses - before.hits - before.misses,
            static_cast<uint64_t>(kThreads) * 500);
}

class AtomicBumpAllocator : public PageAllocator {
 public:
  explicit AtomicBumpAllocator(PageId first = 1) : next_(first) {}
  StatusOr<PageId> AllocatePage(IoContext& io) override {
    (void)io;
    return next_.fetch_add(1);
  }

 private:
  std::atomic<PageId> next_;
};

TEST(ConcurrencyTest, BTreeConcurrentReadersAndWriters) {
  DbRig rig(/*pool_shards=*/8);
  AtomicBumpAllocator alloc;
  IoContext setup_io;
  MutationCtx m{kInvalidLsn, 0, nullptr};
  auto root = BTree::Create(setup_io, rig.pool.get(), &alloc, m);
  ASSERT_TRUE(root.ok());
  BTree tree(rig.pool.get(), &alloc, *root);

  constexpr uint64_t kKeys = 64;  // Overlapping => real leaf contention.
  constexpr int kOpsPerThread = 400;
  auto key_of = [](uint64_t k) {
    std::string s = std::to_string(k);
    return "key-" + std::string(4 - s.size(), '0') + s;
  };

  ThreadPool tp(kThreads);
  std::atomic<uint64_t> puts{0}, deletes{0}, gets{0}, scans{0};
  std::vector<std::function<void()>> batch;
  for (int t = 0; t < kThreads; ++t) {
    batch.push_back([&, t] {
      IoContext io;
      uint64_t rnd = 0x9E3779B97F4A7C15ull * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        rnd ^= rnd << 13;
        rnd ^= rnd >> 7;
        rnd ^= rnd << 17;
        const std::string key = key_of(rnd % kKeys);
        const int op = t < 4 ? (i % 8 == 7 ? 1 : 0) : (t < 6 ? 2 : 3);
        switch (op) {
          case 0: {  // Writer: upsert a self-describing value.
            const std::string value =
                "v-" + std::to_string(t) + "-" + std::to_string(i) + "-" +
                std::string(1 + rnd % 64, 'x');
            ASSERT_TRUE(tree.Put(io, m, key, value).ok());
            puts.fetch_add(1);
            break;
          }
          case 1: {  // Writer: occasional delete (may already be absent).
            const Status s = tree.Delete(io, m, key);
            ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
            deletes.fetch_add(1);
            break;
          }
          case 2: {  // Reader: point get.
            std::string value;
            const Status s = tree.Get(io, key, &value);
            ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
            if (s.ok()) EXPECT_EQ(value.rfind("v-", 0), 0u);
            gets.fetch_add(1);
            break;
          }
          default: {  // Reader: ordered scan across leaf chains.
            std::vector<std::pair<std::string, std::string>> out;
            ASSERT_TRUE(tree.ScanFrom(io, key, 16, &out).ok());
            for (size_t j = 1; j < out.size(); ++j) {
              EXPECT_LT(out[j - 1].first, out[j].first);
            }
            scans.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  tp.RunBatch(batch);
  EXPECT_GT(puts.load(), 0u);
  EXPECT_GT(gets.load(), 0u);
  EXPECT_GT(scans.load(), 0u);

  // Single-threaded epilogue: the tree is structurally sound and every
  // surviving value is one some writer actually wrote.
  IoContext io;
  uint64_t present = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    std::string value;
    const Status s = tree.Get(io, key_of(k), &value);
    ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    if (s.ok()) {
      EXPECT_EQ(value.rfind("v-", 0), 0u);
      present++;
    }
  }
  uint64_t counted = 0;
  ASSERT_TRUE(
      tree.CountRange(io, key_of(0), "key-9999", kKeys + 1, &counted).ok());
  EXPECT_EQ(counted, present);
}

TEST(ConcurrencyTest, BlockDeviceConcurrentSubmitters) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.geometry = FlashGeometry::Tiny();
  cfg.geometry.blocks_per_plane = 128;
  SsdDevice dev(cfg);
  const uint32_t sector = dev.sector_size();

  ThreadPool tp(4);
  std::vector<std::function<void()>> batch;
  for (int t = 0; t < 4; ++t) {
    batch.push_back([&dev, sector, t] {
      const std::string payload(sector, static_cast<char>('a' + t));
      SimTime now = t * kMicrosecond;
      for (int i = 0; i < 64; ++i) {
        const Lpn lpn = static_cast<Lpn>(t * 64 + i);
        const CmdId id = dev.Submit(
            now, BlockDevice::Command::MakeWrite(lpn, payload));
        const BlockDevice::Completion c = dev.Await(id);
        EXPECT_TRUE(c.status.ok());
        now = c.done;
        if (i % 16 == 15) {
          const BlockDevice::Completion f =
              dev.Await(dev.Submit(now, BlockDevice::Command::MakeFlush()));
          EXPECT_TRUE(f.status.ok());
          now = f.done;
        }
      }
      // Read everything back through the same queue.
      for (int i = 0; i < 64; ++i) {
        std::string out;
        const CmdId id = dev.Submit(
            now, BlockDevice::Command::MakeRead(static_cast<Lpn>(t * 64 + i),
                                                1, &out));
        const BlockDevice::Completion c = dev.Await(id);
        EXPECT_TRUE(c.status.ok());
        now = c.done;
        EXPECT_EQ(out, payload);
      }
    });
  }
  tp.RunBatch(batch);
}

}  // namespace
}  // namespace durassd
