#include <gtest/gtest.h>

#include <string>

#include "flash/flash_array.h"
#include "flash/geometry.h"

namespace durassd {
namespace {

FlashArray::Options TinyOptions(bool store_data = true) {
  return FlashArray::Options{FlashGeometry::Tiny(), store_data};
}

TEST(FlashGeometryTest, PpnEncodingRoundTrips) {
  const FlashGeometry g = FlashGeometry::Tiny();
  for (uint32_t plane = 0; plane < g.total_planes(); ++plane) {
    for (uint32_t block = 0; block < g.blocks_per_plane; block += 3) {
      for (uint32_t page = 0; page < g.pages_per_block; page += 2) {
        const Ppn ppn = g.MakePpn(plane, block, page);
        EXPECT_EQ(g.PlaneOf(ppn), plane);
        EXPECT_EQ(g.BlockOf(ppn), block);
        EXPECT_EQ(g.PageOf(ppn), page);
      }
    }
  }
}

TEST(FlashGeometryTest, DefaultMatchesPaperExample) {
  const FlashGeometry g;
  // Sec 2.3: 8 channels x 4 packages x 4 chips x 2 planes = 256.
  EXPECT_EQ(g.total_planes(), 256u);
  EXPECT_EQ(g.page_size, 8u * kKiB);
}

TEST(FlashArrayTest, ProgramThenReadRoundTrips) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  const Ppn ppn = g.MakePpn(0, 0, 0);

  std::string data(g.page_size, 'x');
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, ppn, data, &done).ok());
  EXPECT_GT(done, 0);

  std::string out;
  flash.ReadPage(done, ppn, &out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(flash.page_state(ppn), PageState::kValid);
}

TEST(FlashArrayTest, ShortProgramPadsWithZeros) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "abc", &done).ok());
  std::string out;
  flash.ReadPage(done, g.MakePpn(0, 0, 0), &out);
  ASSERT_EQ(out.size(), g.page_size);
  EXPECT_EQ(out.substr(0, 3), "abc");
  EXPECT_EQ(out[3], '\0');
}

TEST(FlashArrayTest, RejectsProgramToProgrammedPage) {
  FlashArray flash(TinyOptions());
  const Ppn ppn = flash.geometry().MakePpn(0, 0, 0);
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, ppn, "a", &done).ok());
  EXPECT_TRUE(flash.ProgramPage(done, ppn, "b", &done).IsIoError());
}

TEST(FlashArrayTest, EnforcesInOrderProgrammingWithinBlock) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  SimTime done = 0;
  // Page 1 before page 0: rejected.
  EXPECT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 1), "x", &done).IsIoError());
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "x", &done).ok());
  EXPECT_TRUE(flash.ProgramPage(done, g.MakePpn(0, 0, 1), "x", &done).ok());
}

TEST(FlashArrayTest, EraseResetsBlockAndBumpsWear) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  SimTime done = 0;
  for (uint32_t p = 0; p < g.pages_per_block; ++p) {
    ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, p), "z", &done).ok());
  }
  EXPECT_EQ(flash.valid_pages_in_block(0, 0), g.pages_per_block);

  SimTime erased = 0;
  ASSERT_TRUE(flash.EraseBlock(done, 0, 0, &erased).ok());
  EXPECT_GT(erased, done);
  EXPECT_EQ(flash.erase_count(0, 0), 1u);
  EXPECT_EQ(flash.valid_pages_in_block(0, 0), 0u);
  EXPECT_EQ(flash.next_program_page(0, 0), 0u);
  EXPECT_EQ(flash.page_state(g.MakePpn(0, 0, 0)), PageState::kFree);

  // Erased pages read back as zeros and are programmable again.
  std::string out;
  flash.ReadPage(erased, g.MakePpn(0, 0, 0), &out);
  EXPECT_EQ(out, std::string(g.page_size, '\0'));
  EXPECT_TRUE(flash.ProgramPage(erased, g.MakePpn(0, 0, 0), "y", &done).ok());
}

TEST(FlashArrayTest, MarkInvalidDropsValidCount) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "a", &done).ok());
  flash.MarkInvalid(g.MakePpn(0, 0, 0));
  EXPECT_EQ(flash.page_state(g.MakePpn(0, 0, 0)), PageState::kInvalid);
  EXPECT_EQ(flash.valid_pages_in_block(0, 0), 0u);
  // Idempotent.
  flash.MarkInvalid(g.MakePpn(0, 0, 0));
  EXPECT_EQ(flash.valid_pages_in_block(0, 0), 0u);
}

TEST(FlashArrayTest, RevalidateRestoresCount) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "a", &done).ok());
  flash.MarkInvalid(g.MakePpn(0, 0, 0));
  flash.RevalidatePage(g.MakePpn(0, 0, 0));
  EXPECT_EQ(flash.page_state(g.MakePpn(0, 0, 0)), PageState::kValid);
  EXPECT_EQ(flash.valid_pages_in_block(0, 0), 1u);
}

// --------------------------- Timing ---------------------------------------

TEST(FlashArrayTest, PlaneSerializesPrograms) {
  FlashArray flash(TinyOptions(false));
  const FlashGeometry& g = flash.geometry();
  SimTime d1 = 0, d2 = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "", &d1).ok());
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 1), "", &d2).ok());
  // Same plane: the second program waits for the first.
  EXPECT_GE(d2, d1 + g.program_latency);
}

TEST(FlashArrayTest, DifferentChannelsRunInParallel) {
  FlashArray flash(TinyOptions(false));
  const FlashGeometry& g = flash.geometry();
  // Tiny geometry: planes 0,1 on channel 0; planes 2,3 on channel 1.
  SimTime d1 = 0, d2 = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "", &d1).ok());
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(2, 0, 0), "", &d2).ok());
  // Different channel + different plane: nearly identical completion.
  EXPECT_LT(d2 - d1, g.program_latency / 4);
}

TEST(FlashArrayTest, SameChannelSerializesTransferOnly) {
  FlashArray flash(TinyOptions(false));
  const FlashGeometry& g = flash.geometry();
  SimTime d1 = 0, d2 = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "", &d1).ok());
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(1, 0, 0), "", &d2).ok());
  // Same channel, different planes: programs overlap, transfers serialize.
  EXPECT_EQ(d2 - d1, g.channel_transfer_time());
}

// --------------------------- Power cut ------------------------------------

TEST(FlashArrayTest, PowerCutMidProgramTearsPage) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  const Ppn ppn = g.MakePpn(0, 0, 0);
  std::string data(g.page_size, 'T');
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, ppn, data, &done).ok());

  // Cut halfway through the program.
  flash.PowerCut(done - g.program_latency / 2);
  EXPECT_TRUE(flash.IsTorn(ppn));
  EXPECT_EQ(flash.stats().torn_pages, 1u);

  std::string out;
  flash.ReadPage(0, ppn, &out);
  EXPECT_EQ(out.substr(0, g.page_size / 4), std::string(g.page_size / 4, 'T'));
  EXPECT_EQ(out.substr(g.page_size / 4),
            std::string(3 * (g.page_size / 4), '\0'));
}

TEST(FlashArrayTest, PowerCutAfterCompletionKeepsPage) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  const Ppn ppn = g.MakePpn(0, 0, 0);
  std::string data(g.page_size, 'K');
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, ppn, data, &done).ok());

  flash.PowerCut(done + 1);
  EXPECT_FALSE(flash.IsTorn(ppn));
  std::string out;
  flash.ReadPage(0, ppn, &out);
  EXPECT_EQ(out, data);
}

TEST(FlashArrayTest, PowerCutBeforeStartRollsBackToErased) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  // Two programs on the same plane: the second starts only after the first
  // finishes. Cut during the first => second never started.
  SimTime d1 = 0, d2 = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "a", &d1).ok());
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 1), "b", &d2).ok());
  flash.PowerCut(d1 - 1);

  EXPECT_TRUE(flash.IsTorn(g.MakePpn(0, 0, 0)));
  EXPECT_EQ(flash.page_state(g.MakePpn(0, 0, 1)), PageState::kFree);
  EXPECT_FALSE(flash.IsTorn(g.MakePpn(0, 0, 1)));
}

TEST(FlashArrayTest, PowerCutMidEraseInvalidatesBlock) {
  FlashArray flash(TinyOptions());
  const FlashGeometry& g = flash.geometry();
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "a", &done).ok());
  SimTime erase_done = 0;
  ASSERT_TRUE(flash.EraseBlock(done, 0, 0, &erase_done).ok());
  flash.PowerCut(erase_done - 1);

  // Block is unusable until a clean re-erase.
  SimTime d = 0;
  EXPECT_FALSE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "x", &d).ok());
  ASSERT_TRUE(flash.EraseBlock(0, 0, 0).ok());
  EXPECT_TRUE(flash.ProgramPage(1, g.MakePpn(0, 0, 0), "x", &d).ok());
}

TEST(FlashArrayTest, TimingOnlyModeStoresNothing) {
  FlashArray flash(TinyOptions(false));
  const FlashGeometry& g = flash.geometry();
  std::string data(g.page_size, 'q');
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), data, &done).ok());
  std::string out;
  flash.ReadPage(done, g.MakePpn(0, 0, 0), &out);
  EXPECT_EQ(out, std::string(g.page_size, '\0'));
}

}  // namespace
}  // namespace durassd
