#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/wal.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : dev_(Config()) {
    fs_ = std::make_unique<SimFileSystem>(&dev_, SimFileSystem::Options{});
    wal_ = std::make_unique<Wal>(fs_->Open("wal.log"), Wal::Options{});
  }

  static SsdConfig Config() {
    SsdConfig c = SsdConfig::Tiny(true);
    c.geometry.blocks_per_plane = 128;
    c.geometry.pages_per_block = 32;
    return c;
  }

  WalRecord Put(TxnId txn, const std::string& key, const std::string& value,
                const std::string& old = "", bool has_old = false) {
    WalRecord r;
    r.type = WalRecordType::kPut;
    r.txn = txn;
    r.tree = 1;
    r.key = key;
    r.value = value;
    r.has_old = has_old;
    r.old_value = old;
    return r;
  }

  SsdDevice dev_;
  std::unique_ptr<SimFileSystem> fs_;
  std::unique_ptr<Wal> wal_;
};

TEST_F(WalTest, RecordEncodeDecodeRoundTrip) {
  WalRecord in = Put(7, "the-key", "the-value", "old-value", true);
  const std::string payload = in.Encode();
  WalRecord out;
  ASSERT_TRUE(WalRecord::Decode(payload, &out));
  EXPECT_EQ(out.type, WalRecordType::kPut);
  EXPECT_EQ(out.txn, 7u);
  EXPECT_EQ(out.tree, 1u);
  EXPECT_EQ(out.key, "the-key");
  EXPECT_EQ(out.value, "the-value");
  EXPECT_TRUE(out.has_old);
  EXPECT_EQ(out.old_value, "old-value");
}

TEST_F(WalTest, DecodeRejectsTruncation) {
  const std::string payload = Put(1, "k", "v").Encode();
  for (size_t cut : {0ul, 1ul, 5ul, payload.size() - 1}) {
    WalRecord out;
    EXPECT_FALSE(WalRecord::Decode(Slice(payload.data(), cut), &out))
        << "cut at " << cut;
  }
}

TEST_F(WalTest, AppendAssignsMonotonicLsns) {
  const Lsn a = wal_->Append(Put(1, "a", "1"));
  const Lsn b = wal_->Append(Put(1, "b", "2"));
  EXPECT_EQ(a, 0u);
  EXPECT_GT(b, a);
  EXPECT_GT(wal_->next_lsn(), b);
}

TEST_F(WalTest, SyncThenReadBack) {
  IoContext io;
  wal_->Append(Put(1, "x", "1"));
  wal_->Append(Put(1, "y", "2"));
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal_->ReadFrom(io, 0, wal_->generation(), &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "x");
  EXPECT_EQ(records[1].key, "y");
  EXPECT_EQ(records[0].lsn, 0u);
}

TEST_F(WalTest, ReadStopsAtUnwrittenTail) {
  IoContext io;
  wal_->Append(Put(1, "written", "1"));
  ASSERT_TRUE(wal_->WriteOut(io).ok());
  wal_->Append(Put(1, "buffered-only", "2"));  // Never written.

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal_->ReadFrom(io, 0, wal_->generation(), &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "written");
}

TEST_F(WalTest, GenerationFiltersStaleFrames) {
  IoContext io;
  wal_->Append(Put(1, "old-gen", "1"));
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());

  // Recycle: new generation starting at 0; old frames beyond the new tail
  // must not be replayed.
  wal_->ResetTo(0, wal_->generation() + 1);
  wal_->Append(Put(2, "new-gen", "2"));
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal_->ReadFrom(io, 0, wal_->generation(), &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "new-gen");
}

TEST_F(WalTest, TruncateTailPreventsStaleFrameResurrection) {
  IoContext io;
  // Padding off: the scenario below needs byte-exact frame alignment, and
  // the resurrection hazard it guards against is independent of sector
  // sealing (the hole is torn *between* surviving frames of one sync).
  Wal wal(fs_->Open("wal2.log"), Wal::Options{64 * kMiB, nullptr, 0});
  Wal* w = &wal;
  // Durable prefix: one 40-byte frame ("a"/"1": 12-byte header + 28
  // payload... sizes asserted below, the alignment is the whole point).
  w->Append(Put(1, "a", "1"));
  ASSERT_TRUE(w->SyncTo(io, w->next_lsn()).ok());

  // Two more frames reach the file; then a crash loses the FIRST of them
  // while the second survives (the volatile-cache hole). Fake the hole by
  // smashing the first frame's CRC in place.
  const Lsn torn = w->Append(Put(2, "victim", "x"));
  const Lsn stale = w->Append(Put(3, "stale", "y"));
  ASSERT_TRUE(w->SyncTo(io, w->next_lsn()).ok());
  SimFile* f = fs_->Open("wal2.log");
  ASSERT_TRUE(f->Write(io.now, torn + 8, std::string(4, '\xFF')).status.ok());

  // Recovery: replay stops at the torn frame.
  std::vector<WalRecord> records;
  Lsn resume = 0;
  ASSERT_TRUE(w->ReadFrom(io, 0, w->generation(), &records, &resume).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "a");
  ASSERT_EQ(resume, torn);
  w->ResumeAt(resume, w->generation());
  ASSERT_TRUE(w->TruncateTail(resume).ok());

  // New life appends a frame of EXACTLY the torn frame's size ("kk"/"zzzzz"
  // matches "victim"/"x"), so without the truncation the read cursor would
  // land precisely on the stranded intact frame and resurrect "stale".
  const Lsn fresh = w->Append(Put(4, "kk", "zzzzz"));
  ASSERT_TRUE(w->SyncTo(io, w->next_lsn()).ok());
  ASSERT_EQ(w->next_lsn(), stale);  // The dangerous alignment holds.

  std::vector<WalRecord> again;
  ASSERT_TRUE(w->ReadFrom(io, 0, w->generation(), &again).ok());
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0].key, "a");
  EXPECT_EQ(again[1].key, "kk");
  EXPECT_EQ(again[1].lsn, fresh);
}

TEST_F(WalTest, TruncateTailIsANoOpAtOrPastEof) {
  IoContext io;
  wal_->Append(Put(1, "a", "1"));
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());
  SimFile* f = fs_->Open("wal.log");
  const uint64_t size = f->size();
  ASSERT_TRUE(wal_->TruncateTail(size).ok());
  EXPECT_EQ(f->size(), size);
  ASSERT_TRUE(wal_->TruncateTail(size + 100).ok());
  EXPECT_EQ(f->size(), size);
}

TEST_F(WalTest, EnsureWrittenHonorsWalRule) {
  IoContext io;
  const Lsn lsn = wal_->Append(Put(1, "page-lsn", "v"));
  EXPECT_EQ(wal_->written_lsn(), 0u);
  ASSERT_TRUE(wal_->EnsureWritten(io, lsn).ok());
  EXPECT_GT(wal_->written_lsn(), lsn);
  // Already written: no-op.
  const Lsn before = wal_->written_lsn();
  ASSERT_TRUE(wal_->EnsureWritten(io, lsn).ok());
  EXPECT_EQ(wal_->written_lsn(), before);
}

TEST_F(WalTest, GroupCommitRidesShareSyncs) {
  IoContext io1{0};
  wal_->Append(Put(1, "a", "1"));
  const Lsn l1 = wal_->next_lsn();
  ASSERT_TRUE(wal_->SyncTo(io1, l1).ok());

  // A second committer whose record was already covered and whose clock is
  // before the first sync's completion rides it.
  IoContext io2{io1.now / 2};
  ASSERT_TRUE(wal_->SyncTo(io2, 0).ok());
  EXPECT_EQ(wal_->stats().group_rides, 1u);
  EXPECT_EQ(io2.now, io1.now);
}

TEST_F(WalTest, SurvivesDevicePowerCycleWhenSynced) {
  IoContext io;
  wal_->Append(Put(1, "durable", "yes"));
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());
  const uint32_t gen = wal_->generation();

  dev_.PowerCut(io.now + 1);
  dev_.PowerOn();

  // Fresh Wal object over the same file (host restart).
  Wal reopened(fs_->Open("wal.log"), Wal::Options{});
  std::vector<WalRecord> records;
  IoContext io2;
  ASSERT_TRUE(reopened.ReadFrom(io2, 0, gen, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "durable");
}

TEST_F(WalTest, UnsyncedTailLostOnVolatileDevice) {
  SsdConfig vc = Config();
  vc.durable_cache = false;
  vc.exposes_torn_writes = true;
  SsdDevice vdev(vc);
  SimFileSystem vfs(&vdev, SimFileSystem::Options{});
  Wal wal(vfs.Open("wal.log"), Wal::Options{});

  IoContext io;
  wal.Append(Put(1, "lost", "1"));
  ASSERT_TRUE(wal.WriteOut(io).ok());  // Written but never flushed.
  const uint32_t gen = wal.generation();

  vdev.PowerCut(io.now + kSecond);
  vdev.PowerOn();

  Wal reopened(vfs.Open("wal.log"), Wal::Options{});
  std::vector<WalRecord> records;
  IoContext io2;
  ASSERT_TRUE(reopened.ReadFrom(io2, 0, gen, &records).ok());
  EXPECT_TRUE(records.empty());  // The durability gap the paper closes.
}

TEST_F(WalTest, SyncPadsTailToSectorBoundary) {
  IoContext io;
  wal_->Append(Put(1, "a", "1"));
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());
  EXPECT_EQ(wal_->next_lsn() % 4096, 0u);
  EXPECT_GT(wal_->stats().pad_bytes, 0u);

  // Re-syncing with nothing new must not grow the log.
  const Lsn sealed = wal_->next_lsn();
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());
  EXPECT_EQ(wal_->next_lsn(), sealed);

  wal_->Append(Put(2, "b", "2"));
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());

  // Pads are consumed by the reader, never replayed; the resume point
  // includes them.
  std::vector<WalRecord> records;
  Lsn end = 0;
  ASSERT_TRUE(
      wal_->ReadFrom(io, 0, wal_->generation(), &records, &end).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "b");
  EXPECT_EQ(end, wal_->next_lsn());
}

// The bug the crash harness found: an append does a read-modify-write of
// the log's tail sector. Without sector sealing, a power cut shearing the
// NAND program of that rewrite destroys previously FSYNCED commit frames
// sharing the sector — acked durability lost on any volatile-cache device
// that exposes torn writes. With padding, synced sectors are never
// rewritten, so a torn later sync can only lose its own (unacked) frames.
TEST_F(WalTest, SectorPaddingShieldsSyncedFramesFromTornRewrites) {
  SsdConfig vc = Config();
  vc.durable_cache = false;
  vc.exposes_torn_writes = true;
  SsdDevice vdev(vc);
  SimFileSystem::Options fso;
  fso.write_barriers = true;
  SimFileSystem vfs(&vdev, fso);
  Wal wal(vfs.Open("wal.log"), Wal::Options{});

  IoContext io;
  wal.Append(Put(1, "durable", "1"));
  ASSERT_TRUE(wal.SyncTo(io, wal.next_lsn()).ok());
  const uint32_t gen = wal.generation();

  // A later append reaches the file, then power dies inside the fsync:
  // the in-flight destage program is sheared (torn-write exposure). The
  // sealed tail keeps the rewrite out of the synced frame's sector, so
  // the shear can only take down the torn sync's own (unacked) frames.
  wal.Append(Put(2, "torn", "2"));
  ASSERT_TRUE(wal.WriteOut(io).ok());
  vdev.SchedulePowerCut(io.now + 1);
  EXPECT_FALSE(wal.SyncTo(io, wal.next_lsn()).ok());
  vdev.PowerOn();

  Wal reopened(vfs.Open("wal.log"), Wal::Options{});
  std::vector<WalRecord> records;
  IoContext io2;
  ASSERT_TRUE(reopened.ReadFrom(io2, 0, gen, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "durable");
}

TEST_F(WalTest, ManyRecordsReadBackInOrder) {
  IoContext io;
  for (int i = 0; i < 500; ++i) {
    wal_->Append(Put(i, "key" + std::to_string(i), std::string(i % 200, 'v')));
  }
  ASSERT_TRUE(wal_->SyncTo(io, wal_->next_lsn()).ok());
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal_->ReadFrom(io, 0, wal_->generation(), &records).ok());
  ASSERT_EQ(records.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(records[i].key, "key" + std::to_string(i));
    EXPECT_EQ(records[i].txn, static_cast<TxnId>(i));
  }
}

}  // namespace
}  // namespace durassd
