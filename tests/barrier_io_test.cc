// Barrier-enabled I/O stack (epoch-based ordering without waiting):
//
//   - Epoch power-cut property sweep (120 seeded cut instants): with
//     BARRIER commands sealing epochs between bursts, the survivor set
//     after a cut may reorder freely *within* an epoch but never across
//     one — no write of epoch N+1 survives while a write of epoch N is
//     lost — even on the unordered queue, where only the epoch floor
//     provides the guarantee.
//   - Fault-injection interaction: NAND program failures force the
//     destage scheduler to re-drive writes from older epochs; the epoch
//     guarantee and the device's own epoch oracle must hold regardless.
//   - Equivalence: with exactly one write per epoch, the barrier clamp
//     degenerates to the ordered-NCQ ack clamp — acknowledgment times are
//     bit-identical, and so are power-cut survivor sets.
//   - Group commit: replacing the commit fsync with a barrier neither
//     splits acknowledged groups nor loses acked commits across a cut.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "db/io_context.h"
#include "db/wal.h"
#include "host/sim_file.h"
#include "sim/client_scheduler.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;

std::string Value(uint64_t version, uint32_t nsec) {
  std::string v = "bar-" + std::to_string(version) + "-";
  v.resize(static_cast<size_t>(nsec) * kSector, 'x');
  return v;
}

SsdConfig SmallConfig(bool ordered) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  cfg.ordered_queue = ordered;
  // Roomy buffer so mixed-size commands acknowledge firmware-bound and
  // out of submission order on the unordered queue (see ordered_ncq_test).
  cfg.write_buffer_sectors = 256;
  cfg.cache_capacity_sectors = 512;
  cfg.capacitor_budget_bytes = 4 * kMiB;
  return cfg;
}

struct EpochCmd {
  CmdId id;
  Lpn lpn;
  uint32_t nsec;
  uint64_t version;
  uint64_t epoch;
};

/// Submits bursts of mixed-size writes, sealing an epoch with a BARRIER
/// after each burst *without awaiting the writes* — the barrier orders the
/// stream while bursts keep overlapping inside the device (ordering
/// without waiting). Stops starting bursts at `stop_at` (0 = never).
/// `*end` receives the latest acknowledgment/completion instant.
std::vector<EpochCmd> RunEpochBursts(SsdDevice* dev, uint64_t seed,
                                     SimTime stop_at, SimTime* end) {
  Random rng(seed);
  std::vector<EpochCmd> cmds;
  SimTime t = 0;
  SimTime latest = 0;
  Lpn next_lpn = 0;
  for (uint64_t burst = 0; burst < 12; ++burst) {
    if (stop_at != 0 && t >= stop_at) break;
    for (int i = 0; i < 6; ++i) {
      const uint32_t nsec = (rng.Next() % 2 == 0) ? 8 : 1;
      const uint64_t version = cmds.size();
      const CmdId id = dev->Submit(
          t, BlockDevice::Command::MakeWrite(next_lpn, Value(version, nsec)));
      cmds.push_back({id, next_lpn, nsec, version, burst});
      latest = std::max(latest, dev->Find(id)->done);
      next_lpn += nsec;
    }
    const BlockDevice::Result b = dev->Barrier(t);
    if (!b.status.ok()) break;
    latest = std::max(latest, b.done);
    // The next burst starts when the barrier completes — microseconds
    // later, long before the sealed epoch's writes finish acknowledging.
    t = b.done;
  }
  *end = latest;
  return cmds;
}

/// Classifies a command after the cut: +1 fully readable, 0 fully absent
/// (zeros), -1 torn/garbage (always a violation on a durable device).
int Survived(SsdDevice* dev, const EpochCmd& c) {
  std::string got;
  if (!dev->Read(0, c.lpn, c.nsec, &got).status.ok()) return -1;
  if (got == Value(c.version, c.nsec)) return 1;
  if (got == std::string(static_cast<size_t>(c.nsec) * kSector, '\0')) {
    return 0;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Epoch power-cut property sweep
// ---------------------------------------------------------------------------

TEST(BarrierEpochPowerCut, SurvivorsNeverCrossEpochs) {
  uint64_t total_clamps = 0;
  int instants = 0;
  int intra_epoch_partial = 0;
  for (uint64_t seed : {101u, 202u, 303u}) {
    SimTime total = 0;
    {
      // The unordered queue: only the epoch floor orders anything.
      SsdDevice probe(SmallConfig(false));
      SimTime end = 0;
      RunEpochBursts(&probe, seed, 0, &end);
      total = end;
      EXPECT_GT(probe.stats().barriers, 0u);
    }
    for (int f = 1; f <= 40; ++f) {
      ++instants;
      const SimTime cut = total * f / 41 + f;  // Off-grid instants.
      SsdDevice dev(SmallConfig(false));
      SimTime end = 0;
      const std::vector<EpochCmd> cmds = RunEpochBursts(&dev, seed, cut, &end);
      dev.PowerCut(std::max<SimTime>(cut, 1));
      dev.PowerOn();

      int64_t max_survivor_epoch = -1;
      int64_t min_lost_epoch = static_cast<int64_t>(cmds.size()) + 1;
      std::map<uint64_t, std::pair<bool, bool>> per_epoch;  // (lost, kept)
      for (const EpochCmd& c : cmds) {
        const int s = Survived(&dev, c);
        ASSERT_GE(s, 0) << "torn command " << c.version << " seed " << seed
                        << " cut " << cut;
        if (s == 1) {
          max_survivor_epoch =
              std::max(max_survivor_epoch, static_cast<int64_t>(c.epoch));
          per_epoch[c.epoch].second = true;
        } else {
          min_lost_epoch =
              std::min(min_lost_epoch, static_cast<int64_t>(c.epoch));
          per_epoch[c.epoch].first = true;
        }
      }
      // The epoch property: a loss in epoch N kills every later epoch.
      // Losing and keeping within ONE epoch is legal (and must occur
      // somewhere in the sweep, or the property would be vacuous).
      EXPECT_LE(max_survivor_epoch, min_lost_epoch)
          << "cross-epoch survivor, seed " << seed << " cut " << cut;
      for (const auto& [epoch, lk] : per_epoch) {
        if (lk.first && lk.second) intra_epoch_partial++;
      }
      EXPECT_EQ(dev.stats().epoch_ordering_violations, 0u)
          << "seed " << seed << " cut " << cut;
      EXPECT_EQ(dev.stats().ordering_violations, 0u);
      total_clamps += dev.stats().epoch_ack_clamps;
    }
  }
  EXPECT_GE(instants, 120);
  // The epoch floor really engaged: next-epoch writes would otherwise
  // acknowledge before the previous epoch's stragglers.
  EXPECT_GT(total_clamps, 0u);
  // And some cut landed inside an epoch's inversion window, proving the
  // check distinguishes intra-epoch freedom from cross-epoch order.
  EXPECT_GT(intra_epoch_partial, 0);
}

// ---------------------------------------------------------------------------
// Fault injection: program-failure re-drives from older epochs
// ---------------------------------------------------------------------------

SsdConfig FaultyBarrierConfig(uint64_t seed) {
  SsdConfig cfg = SmallConfig(false);
  cfg.faults.seed = seed * 0x9E3779B97F4A7C15ull + 0xBA881E8ull;
  cfg.faults.read_bit_flip_mean = 1.5;
  cfg.faults.read_bit_flip_per_erase = 0.05;
  cfg.faults.program_fail_rate = 0.05;
  cfg.faults.erase_fail_rate = 0.005;
  cfg.ecc_correctable_bits = 24;
  return cfg;
}

TEST(BarrierRedrive, ProgramFailuresPreserveEpochOrder) {
  uint64_t total_program_fails = 0;
  for (uint64_t seed : {7u, 17u, 27u}) {
    SimTime total = 0;
    {
      SsdDevice probe(FaultyBarrierConfig(seed));
      SimTime end = 0;
      RunEpochBursts(&probe, seed, 0, &end);
      total = end;
      total_program_fails += probe.fault_stats().program_fails;
    }
    for (int f = 1; f <= 10; ++f) {
      const SimTime cut = total * f / 11 + f;
      SsdDevice dev(FaultyBarrierConfig(seed));
      SimTime end = 0;
      const std::vector<EpochCmd> cmds = RunEpochBursts(&dev, seed, cut, &end);
      dev.PowerCut(std::max<SimTime>(cut, 1));
      dev.PowerOn();

      int64_t max_survivor_epoch = -1;
      int64_t min_lost_epoch = static_cast<int64_t>(cmds.size()) + 1;
      for (const EpochCmd& c : cmds) {
        const int s = Survived(&dev, c);
        ASSERT_GE(s, 0) << "torn command " << c.version << " under faults, "
                        << "seed " << seed << " cut " << cut;
        if (s == 1) {
          max_survivor_epoch =
              std::max(max_survivor_epoch, static_cast<int64_t>(c.epoch));
        } else {
          min_lost_epoch =
              std::min(min_lost_epoch, static_cast<int64_t>(c.epoch));
        }
      }
      EXPECT_LE(max_survivor_epoch, min_lost_epoch)
          << "re-driven program broke epoch order, seed " << seed << " cut "
          << cut;
      EXPECT_EQ(dev.stats().epoch_ordering_violations, 0u)
          << "seed " << seed << " cut " << cut;
    }
  }
  // The fault model really fired: re-drives actually happened somewhere.
  EXPECT_GT(total_program_fails, 0u);
}

// ---------------------------------------------------------------------------
// Equivalence: one write per epoch == ordered NCQ, bit for bit
// ---------------------------------------------------------------------------

TEST(BarrierEquivalence, OneWriteEpochsMatchOrderedNcqBitForBit) {
  // Device A: ordered NCQ, no barriers. Device B: unordered queue, a
  // BARRIER after every write (epochs of exactly one write). Identical
  // submission schedule; every acknowledgment must match exactly — the
  // barrier costs nothing on the write path because it acquires no shared
  // resource (no bus slot, no firmware slot, no queue entry).
  SsdDevice a(SmallConfig(true));
  SsdDevice b(SmallConfig(false));
  Random rng(4242);
  std::vector<std::pair<CmdId, CmdId>> ids;
  std::vector<EpochCmd> cmds;  // For the survivor comparison (B's view).
  SimTime t = 0;
  SimTime latest = 0;
  Lpn next_lpn = 0;
  for (int burst = 0; burst < 8; ++burst) {
    SimTime burst_done = t;
    for (int i = 0; i < 6; ++i) {
      const uint32_t nsec = (rng.Next() % 2 == 0) ? 8 : 1;
      const uint64_t version = cmds.size();
      const std::string data = Value(version, nsec);
      const CmdId ia =
          a.Submit(t, BlockDevice::Command::MakeWrite(next_lpn, data));
      const CmdId ib =
          b.Submit(t, BlockDevice::Command::MakeWrite(next_lpn, data));
      const BlockDevice::Result bar = b.Barrier(t);
      ASSERT_TRUE(bar.status.ok());
      ids.push_back({ia, ib});
      cmds.push_back({ib, next_lpn, nsec, version, cmds.size()});
      burst_done = std::max(burst_done, a.Find(ia)->done);
      next_lpn += nsec;
    }
    latest = std::max(latest, burst_done);
    t = burst_done;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    const BlockDevice::Completion ca = a.Await(ids[i].first);
    const BlockDevice::Completion cb = b.Await(ids[i].second);
    ASSERT_TRUE(ca.status.ok());
    ASSERT_TRUE(cb.status.ok());
    ASSERT_EQ(ca.done, cb.done) << "ack " << i << " diverged";
  }
  // The degenerate-epoch clamp engaged exactly as often as the NCQ clamp.
  EXPECT_GT(a.stats().ordered_ack_clamps, 0u);
  EXPECT_EQ(b.stats().epoch_ack_clamps, a.stats().ordered_ack_clamps);

  // Same cut => bit-identical survivor sets.
  const SimTime cut = latest / 2 + 3;
  a.PowerCut(cut);
  b.PowerCut(cut);
  a.PowerOn();
  b.PowerOn();
  EXPECT_EQ(b.stats().epoch_ordering_violations, 0u);
  for (const EpochCmd& c : cmds) {
    std::string ga, gb;
    const bool ra = a.Read(0, c.lpn, c.nsec, &ga).status.ok();
    const bool rb = b.Read(0, c.lpn, c.nsec, &gb).status.ok();
    ASSERT_EQ(ra, rb) << "survivor set diverged at command " << c.version;
    if (ra) EXPECT_EQ(ga, gb) << "survivor data diverged at " << c.version;
  }
}

// ---------------------------------------------------------------------------
// Group commit interaction
// ---------------------------------------------------------------------------

SsdConfig GroupCommitDeviceConfig() {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.geometry = FlashGeometry::Tiny();
  dc.geometry.blocks_per_plane = 256;
  dc.geometry.pages_per_block = 32;
  dc.capacitor_budget_bytes = 16 * kMiB;
  return dc;
}

Database::Options BarrierDbOptions() {
  Database::Options dbo;
  dbo.pool_bytes = 2 * kMiB;
  dbo.double_write = false;
  dbo.checkpoint_log_bytes = 4 * kMiB;
  dbo.checkpoint_queue_depth = 8;
  dbo.durability_mode = DurabilityMode::kBarrier;
  return dbo;
}

TEST(BarrierGroupCommit, WalBarrierNeverSplitsAnAckedGroup) {
  SsdDevice dev(GroupCommitDeviceConfig());
  SimFileSystem fs(&dev, {});
  MetricsRegistry metrics;
  Wal::Options wo;
  wo.metrics = &metrics;
  wo.durability_mode = DurabilityMode::kBarrier;
  Wal wal(fs.Open("wal"), wo);
  IoContext io;

  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.txn = 1;

  // Two committers append before either syncs; the first barrier covers
  // both records, so the second rides it: one group of two, exactly as in
  // fsync mode — the barrier lands inside the group without splitting it.
  const Lsn a = wal.Append(rec);
  const Lsn b = wal.Append(rec);
  const SimTime entered = io.now;
  ASSERT_TRUE(wal.SyncTo(io, a).ok());
  IoContext io2;
  io2.now = entered;
  ASSERT_TRUE(wal.SyncTo(io2, b).ok());

  EXPECT_EQ(wal.stats().group_rides, 1u);
  EXPECT_EQ(wal.stats().sync_groups, 1u);
  EXPECT_EQ(wal.stats().max_group_commit, 2u);
  EXPECT_EQ(io2.now, io.now);  // Both durable at the same instant.
  // Only the leader issued a barrier; the rider rode it.
  EXPECT_EQ(wal.stats().barrier_commits, 1u);
  const MetricCounter* c = metrics.Counter("wal.barrier_commits");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 1u);
}

/// Runs `total_ops` single-put transactions from `clients` interleaved
/// committers in barrier mode. Returns the acked key/values; `*end`
/// receives the virtual end time.
std::map<std::string, std::string> RunBarrierCommitters(
    SsdDevice* dev, SimFileSystem* fs, uint32_t clients, uint64_t total_ops,
    SimTime cut, SimTime* end, uint64_t* max_group) {
  IoContext io;
  if (cut > 0) dev->SchedulePowerCut(cut);
  std::map<std::string, std::string> acked;
  auto dbo = Database::Open(io, fs, fs, BarrierDbOptions());
  EXPECT_TRUE(dbo.ok());
  if (!dbo.ok()) return acked;
  std::unique_ptr<Database> db = std::move(*dbo);
  auto tree = db->CreateTree(io, "t");
  EXPECT_TRUE(tree.ok());
  if (!tree.ok()) return acked;

  std::vector<uint32_t> op_count(clients, 0);
  SimTime end_time = io.now;
  bool stopped = false;
  const auto fn = [&](uint32_t client, SimTime now) -> SimTime {
    end_time = std::max(end_time, now);
    if (stopped) return now;
    IoContext cio{now};
    const std::string key =
        "c" + std::to_string(client) + "-" + std::to_string(op_count[client]);
    const std::string value = "v" + key;
    op_count[client]++;
    auto txn = db->Begin(cio);
    if (txn.ok() && db->Put(cio, *txn, *tree, key, value).ok() &&
        db->Commit(cio, *txn).ok()) {
      acked[key] = value;
    } else {
      stopped = true;
    }
    end_time = std::max(end_time, cio.now);
    return cio.now;
  };
  ClientScheduler::Run(clients, total_ops, io.now, fn);
  *end = end_time;
  if (max_group != nullptr) *max_group = db->wal_stats().max_group_commit;
  return acked;
}

TEST(BarrierGroupCommit, AckedCommitsSurviveMidRunPowerCut) {
  SimTime total = 0;
  {
    SsdDevice dev(GroupCommitDeviceConfig());
    SimFileSystem fs(&dev, {});
    uint64_t groups = 0;
    const auto acked =
        RunBarrierCommitters(&dev, &fs, 8, 48, 0, &total, &groups);
    EXPECT_EQ(acked.size(), 48u);
    // Barrier commits are ~100x cheaper than a flush drain, so committers
    // serialize instead of queueing behind a long flush — large groups
    // legitimately disappear (grouping exists to amortize the expensive
    // fsync the barrier just removed). The accounting must still be sane,
    // and the WAL-level test above proves riders share a barrier when
    // clocks do overlap.
    EXPECT_GE(groups, 1u);
    EXPECT_GT(dev.stats().barriers, 0u);
  }

  for (double frac : {0.35, 0.6, 0.85}) {
    SsdDevice dev(GroupCommitDeviceConfig());
    SimFileSystem fs(&dev, {});
    const SimTime cut = static_cast<SimTime>(total * frac) + 7;
    SimTime end = 0;
    const std::map<std::string, std::string> acked =
        RunBarrierCommitters(&dev, &fs, 8, 48, cut, &end, nullptr);

    if (dev.powered()) {
      dev.CancelScheduledPowerCut();
      dev.PowerCut(std::max(cut, end));
    }
    dev.PowerOn();
    EXPECT_EQ(dev.stats().epoch_ordering_violations, 0u) << "cut " << cut;

    IoContext io;
    io.AdvanceTo(end + kMillisecond);
    auto reopened = Database::Open(io, &fs, &fs, BarrierDbOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<Database> db = std::move(*reopened);
    if (acked.empty()) continue;
    auto tree = db->GetTreeId("t");
    ASSERT_TRUE(tree.ok()) << "schema lost despite acked commits";
    for (const auto& [key, value] : acked) {
      std::string got;
      const Status s = db->Get(io, *tree, key, &got);
      ASSERT_TRUE(s.ok()) << "acked commit lost: " << key << " cut " << cut
                          << ": " << s.ToString();
      EXPECT_EQ(got, value) << "acked commit corrupted: " << key;
    }
  }
}

}  // namespace
}  // namespace durassd
