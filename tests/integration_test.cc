// Full-stack integration tests: realistic workloads over the full stack
// (engine -> file system -> device -> FTL -> NAND) with power failures
// injected at adversarial moments, verifying the end-to-end ACID claims of
// the paper across the configuration matrix.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "db/database.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/keys.h"

namespace durassd {
namespace {

struct Stack {
  explicit Stack(bool durable, bool barriers, bool dwb, uint64_t seed = 1) {
    SsdConfig dc = durable ? SsdConfig::DuraSsd() : SsdConfig::SsdA();
    dc.geometry = FlashGeometry::Tiny();
    dc.geometry.blocks_per_plane = 256;
    dc.geometry.pages_per_block = 32;
    dc.capacitor_budget_bytes = 16 * kMiB;
    device = std::make_unique<SsdDevice>(dc);
    SimFileSystem::Options fso;
    fso.write_barriers = barriers;
    fs = std::make_unique<SimFileSystem>(device.get(), fso);
    options.pool_bytes = 2 * kMiB;
    options.double_write = dwb;
    options.checkpoint_log_bytes = 2 * kMiB;  // Frequent checkpoints.
    rng = Random(seed);
  }

  Status Open() {
    auto d = Database::Open(io, fs.get(), fs.get(), options);
    if (!d.ok()) return d.status();
    db = std::move(*d);
    return Status::OK();
  }

  void Crash(SimTime at) {
    db.reset();
    device->PowerCut(at);
    device->PowerOn();
    io.now = 0;
  }

  IoContext io;
  std::unique_ptr<SsdDevice> device;
  std::unique_ptr<SimFileSystem> fs;
  std::unique_ptr<Database> db;
  Database::Options options;
  Random rng{1};
};

/// Runs a random workload tracking the committed state; crashes at a
/// random virtual time between operation boundaries; verifies recovery.
void RandomCrashRound(Stack& s, std::map<std::string, std::string>& model,
                      uint32_t tree, int ops, bool verify_all) {
  // Work phase.
  SimTime last_commit_time = s.io.now;
  std::map<std::string, std::string> pending = model;
  for (int i = 0; i < ops; ++i) {
    auto txn = s.db->Begin(s.io);
    ASSERT_TRUE(txn.ok());
    const std::string key = "k" + std::to_string(s.rng.Uniform(150));
    if (s.rng.Bernoulli(0.8)) {
      const std::string value = "v" + std::to_string(s.rng.Next() % 100000);
      ASSERT_TRUE(s.db->Put(s.io, *txn, tree, key, value).ok());
      pending[key] = value;
    } else {
      Status st = s.db->Delete(s.io, *txn, tree, key);
      ASSERT_TRUE(st.ok() || st.IsNotFound());
      pending.erase(key);
    }
    ASSERT_TRUE(s.db->Commit(s.io, *txn).ok());
    model = pending;
    last_commit_time = s.io.now;
  }

  // Crash slightly after the last commit completed (all acked).
  s.Crash(last_commit_time + s.rng.Uniform(100));
  ASSERT_TRUE(s.Open().ok()) << "recovery failed";

  if (verify_all) {
    auto tid = s.db->GetTreeId("t");
    ASSERT_TRUE(tid.ok());
    for (const auto& [k, v] : model) {
      std::string got;
      ASSERT_TRUE(s.db->Get(s.io, *tid, k, &got).ok()) << k;
      EXPECT_EQ(got, v) << k;
    }
    // And nothing extra: spot-check absent keys.
    for (int i = 0; i < 20; ++i) {
      const std::string k = "k" + std::to_string(s.rng.Uniform(150));
      std::string got;
      const Status st = s.db->Get(s.io, *tid, k, &got);
      if (model.count(k) == 0) {
        EXPECT_TRUE(st.IsNotFound()) << k;
      }
    }
  }
}

class EndToEndCrashTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    DuraSsdConfigs, EndToEndCrashTest,
    ::testing::Values(std::make_tuple(true, true),    // barriers, dwb
                      std::make_tuple(true, false),   // barriers only
                      std::make_tuple(false, true),   // dwb only
                      std::make_tuple(false, false)));  // OFF/OFF

TEST_P(EndToEndCrashTest, RepeatedRandomCrashesOnDuraSsd) {
  const auto [barriers, dwb] = GetParam();
  Stack s(/*durable=*/true, barriers, dwb, /*seed=*/barriers * 2 + dwb);
  ASSERT_TRUE(s.Open().ok());
  auto tree = s.db->CreateTree(s.io, "t");
  ASSERT_TRUE(tree.ok());

  std::map<std::string, std::string> model;
  for (int round = 0; round < 6; ++round) {
    auto tid = s.db->GetTreeId("t");
    ASSERT_TRUE(tid.ok());
    RandomCrashRound(s, model, *tid, 80, /*verify_all=*/true);
  }
}

TEST(EndToEndCrashTest, VolatileWithBarriersAlsoSafe) {
  Stack s(/*durable=*/false, /*barriers=*/true, /*dwb=*/true, 9);
  ASSERT_TRUE(s.Open().ok());
  auto tree = s.db->CreateTree(s.io, "t");
  ASSERT_TRUE(tree.ok());
  std::map<std::string, std::string> model;
  for (int round = 0; round < 4; ++round) {
    auto tid = s.db->GetTreeId("t");
    RandomCrashRound(s, model, *tid, 60, /*verify_all=*/true);
  }
}

TEST(EndToEndCrashTest, MidTransactionCrashPreservesAtomicity) {
  Stack s(true, false, false, 17);
  ASSERT_TRUE(s.Open().ok());
  auto tree = s.db->CreateTree(s.io, "t");
  for (int i = 0; i < 30; ++i) {
    auto txn = s.db->Begin(s.io);
    ASSERT_TRUE(
        s.db->Put(s.io, *txn, *tree, "base" + std::to_string(i), "x").ok());
    ASSERT_TRUE(s.db->Commit(s.io, *txn).ok());
  }
  // Open transaction with several ops, never committed.
  auto txn = s.db->Begin(s.io);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.db->Put(s.io, *txn, *tree, "base" + std::to_string(i),
                          "CLOBBERED").ok());
    ASSERT_TRUE(
        s.db->Put(s.io, *txn, *tree, "new" + std::to_string(i), "y").ok());
  }
  s.Crash(s.io.now + 1);
  ASSERT_TRUE(s.Open().ok());
  auto tid = s.db->GetTreeId("t");
  for (int i = 0; i < 30; ++i) {
    std::string v;
    ASSERT_TRUE(
        s.db->Get(s.io, *tid, "base" + std::to_string(i), &v).ok());
    EXPECT_EQ(v, "x") << i;  // Loser txn fully undone.
  }
  std::string v;
  EXPECT_TRUE(s.db->Get(s.io, *tid, "new0", &v).IsNotFound());
}

TEST(EndToEndCrashTest, CrashDuringCheckpointIsRecoverable) {
  Stack s(true, true, true, 23);
  s.options.checkpoint_log_bytes = 64 * kKiB;  // Checkpoint very often.
  ASSERT_TRUE(s.Open().ok());
  auto tree = s.db->CreateTree(s.io, "t");
  std::map<std::string, std::string> model;
  // Many small rounds; with the tiny checkpoint interval, several crashes
  // land near or inside checkpoint activity.
  for (int round = 0; round < 8; ++round) {
    auto tid = s.db->GetTreeId("t");
    RandomCrashRound(s, model, *tid, 40, /*verify_all=*/true);
  }
  (void)tree;
}

// --------------------------- KvStore end-to-end ---------------------------

TEST(EndToEndCrashTest, KvStoreRandomCrashRounds) {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.geometry = FlashGeometry::Tiny();
  dc.geometry.blocks_per_plane = 256;
  dc.geometry.pages_per_block = 32;
  SsdDevice device(dc);
  SimFileSystem fs(&device, SimFileSystem::Options{false, 1, 1024, 256});

  Random rng(31);
  std::map<std::string, std::string> committed;
  IoContext io;
  for (int round = 0; round < 5; ++round) {
    KvStore::Options ko;
    ko.batch_size = 1;  // Every update committed.
    auto store = KvStore::Open(io, &fs, "s.couch", ko);
    ASSERT_TRUE(store.ok());
    // Recovered state must match the committed model.
    for (const auto& [k, v] : committed) {
      std::string got;
      ASSERT_TRUE((*store)->Get(io, k, &got).ok())
          << "round " << round << " key " << k;
      EXPECT_EQ(got, v);
    }
    for (int i = 0; i < 60; ++i) {
      const std::string k = "doc" + std::to_string(rng.Uniform(40));
      const std::string v = "v" + std::to_string(rng.Next() % 9999);
      ASSERT_TRUE((*store)->Put(io, k, v).ok());
      committed[k] = v;
    }
    const SimTime cut = io.now + rng.Uniform(1000);
    store->reset();
    device.PowerCut(cut);
    device.PowerOn();
    io.now = 0;
  }
}

}  // namespace
}  // namespace durassd
