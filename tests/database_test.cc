#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "db/database.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

/// Harness owning a device + file systems + database, with crash/reopen.
class DbHarness {
 public:
  struct Config {
    bool durable_cache = true;
    bool write_barriers = true;
    bool double_write = true;
    uint32_t page_size = 4 * kKiB;
  };

  explicit DbHarness(Config cfg) : cfg_(cfg) {
    SsdConfig dc = cfg.durable_cache ? SsdConfig::DuraSsd() : SsdConfig::SsdA();
    dc.geometry = FlashGeometry::Tiny();
    dc.geometry.blocks_per_plane = 192;
    dc.geometry.pages_per_block = 32;   // ~192 MiB raw.
    dc.write_buffer_sectors = 256;
    dc.cache_capacity_sectors = 1024;
    dc.capacitor_budget_bytes = 16 * kMiB;
    device_ = std::make_unique<SsdDevice>(dc);
    SimFileSystem::Options fso;
    fso.write_barriers = cfg.write_barriers;
    fs_ = std::make_unique<SimFileSystem>(device_.get(), fso);
  }

  Status OpenDb() {
    Database::Options o;
    o.page_size = cfg_.page_size;
    o.pool_bytes = 2 * kMiB;
    o.double_write = cfg_.double_write;
    o.checkpoint_log_bytes = 8 * kMiB;
    auto db = Database::Open(io_, fs_.get(), fs_.get(), o);
    if (!db.ok()) return db.status();
    db_ = std::move(*db);
    return Status::OK();
  }

  /// Host crash + device power failure at the current virtual time, then
  /// device reboot. The database object (host RAM) is destroyed.
  void Crash() {
    db_.reset();
    device_->PowerCut(io_.now);
    device_->PowerOn();
    io_.now = 0;
  }

  Database* db() { return db_.get(); }
  IoContext& io() { return io_; }

  // Convenience single-op transactions.
  Status PutTxn(uint32_t tree, const std::string& k, const std::string& v) {
    auto txn = db_->Begin(io_);
    if (!txn.ok()) return txn.status();
    Status s = db_->Put(io_, *txn, tree, k, v);
    if (!s.ok()) return s;
    return db_->Commit(io_, *txn);
  }

 private:
  Config cfg_;
  IoContext io_;
  std::unique_ptr<SsdDevice> device_;
  std::unique_ptr<SimFileSystem> fs_;
  std::unique_ptr<Database> db_;
};

// ---------------------------------------------------------------------------
// Basic engine behaviour
// ---------------------------------------------------------------------------

TEST(DatabaseTest, CreatePutGetCommit) {
  DbHarness h({});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(h.PutTxn(*tree, "alpha", "1").ok());

  std::string v;
  ASSERT_TRUE(h.db()->Get(h.io(), *tree, "alpha", &v).ok());
  EXPECT_EQ(v, "1");
  EXPECT_EQ(h.db()->stats().txns_committed, 1u);
}

TEST(DatabaseTest, GetTreeIdByName) {
  DbHarness h({});
  ASSERT_TRUE(h.OpenDb().ok());
  auto t1 = h.db()->CreateTree(h.io(), "nodes");
  auto t2 = h.db()->CreateTree(h.io(), "links");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*h.db()->GetTreeId("nodes"), *t1);
  EXPECT_EQ(*h.db()->GetTreeId("links"), *t2);
  EXPECT_TRUE(h.db()->GetTreeId("absent").status().IsNotFound());
  EXPECT_FALSE(h.db()->CreateTree(h.io(), "nodes").ok());  // Duplicate.
}

TEST(DatabaseTest, MultiOpTransactionAtomicViaAbort) {
  DbHarness h({});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  ASSERT_TRUE(h.PutTxn(*tree, "stable", "before").ok());

  auto txn = h.db()->Begin(h.io());
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(h.db()->Put(h.io(), *txn, *tree, "stable", "changed").ok());
  ASSERT_TRUE(h.db()->Put(h.io(), *txn, *tree, "fresh", "x").ok());
  ASSERT_TRUE(h.db()->Delete(h.io(), *txn, *tree, "stable").ok());
  ASSERT_TRUE(h.db()->Abort(h.io(), *txn).ok());

  std::string v;
  ASSERT_TRUE(h.db()->Get(h.io(), *tree, "stable", &v).ok());
  EXPECT_EQ(v, "before");
  EXPECT_TRUE(h.db()->Get(h.io(), *tree, "fresh", &v).IsNotFound());
}

TEST(DatabaseTest, SingleActiveTransactionEnforced) {
  DbHarness h({});
  ASSERT_TRUE(h.OpenDb().ok());
  auto t1 = h.db()->Begin(h.io());
  ASSERT_TRUE(t1.ok());
  EXPECT_FALSE(h.db()->Begin(h.io()).ok());
  ASSERT_TRUE(h.db()->Commit(h.io(), *t1).ok());
  EXPECT_TRUE(h.db()->Begin(h.io()).ok());
}

TEST(DatabaseTest, ScanAndCount) {
  DbHarness h({});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  for (int i = 0; i < 50; ++i) {
    char key[8];
    snprintf(key, sizeof(key), "%03d", i);
    ASSERT_TRUE(h.PutTxn(*tree, key, "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(h.db()->Scan(h.io(), *tree, "010", 5, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].first, "010");
  uint64_t n = 0;
  ASSERT_TRUE(h.db()->CountRange(h.io(), *tree, "000", "025", 1000, &n).ok());
  EXPECT_EQ(n, 25u);
}

TEST(DatabaseTest, EvictionUnderTinyPoolStillCorrect) {
  DbHarness h({});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  const std::string value(200, 'x');
  const int n = 12000;  // ~2.5 MiB of rows: exceeds the 2 MiB pool.
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(h.PutTxn(*tree, "key" + std::to_string(i), value).ok());
  }
  EXPECT_GT(h.db()->pool_stats().evictions, 0u);
  for (int i = 0; i < n; i += 131) {
    std::string v;
    ASSERT_TRUE(h.db()->Get(h.io(), *tree, "key" + std::to_string(i), &v).ok())
        << i;
    EXPECT_EQ(v, value);
  }
  EXPECT_GT(h.db()->pool_stats().misses, 0u);
}

TEST(DatabaseTest, CheckpointAndReopenCleanly) {
  DbHarness h({});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.PutTxn(*tree, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(h.db()->Checkpoint(h.io()).ok());
  h.Crash();  // Even a crash right after checkpoint must be clean.
  ASSERT_TRUE(h.OpenDb().ok());
  auto tid = h.db()->GetTreeId("t");
  ASSERT_TRUE(tid.ok());
  for (int i = 0; i < 100; ++i) {
    std::string v;
    ASSERT_TRUE(h.db()->Get(h.io(), *tid, "k" + std::to_string(i), &v).ok());
  }
}

// ---------------------------------------------------------------------------
// Crash recovery: committed data must survive (durable configurations)
// ---------------------------------------------------------------------------

struct CrashParam {
  bool durable_cache;
  bool write_barriers;
  bool double_write;
  uint32_t page_size;
};

class CrashRecoveryTest : public ::testing::TestWithParam<CrashParam> {};

// The configurations in which the stack promises durability: either the
// device has a durable cache (DuraSSD — barriers may be off!) or barriers
// are on so fsync reaches stable media.
INSTANTIATE_TEST_SUITE_P(
    DurableConfigs, CrashRecoveryTest,
    ::testing::Values(
        CrashParam{true, true, true, 4096},    // DuraSSD, default MySQL.
        CrashParam{true, true, false, 4096},   // DuraSSD, no double-write.
        CrashParam{true, false, true, 4096},   // DuraSSD, nobarrier.
        CrashParam{true, false, false, 4096},  // DuraSSD OFF/OFF (the paper's
                                               // headline config).
        CrashParam{true, false, false, 8192},
        CrashParam{true, false, false, 16384},
        CrashParam{false, true, true, 4096}));  // Volatile SSD, barriers+dwb.

TEST_P(CrashRecoveryTest, CommittedTransactionsSurviveCrash) {
  const CrashParam p = GetParam();
  DbHarness h({p.durable_cache, p.write_barriers, p.double_write,
               p.page_size});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  ASSERT_TRUE(tree.ok());

  std::map<std::string, std::string> committed;
  Random rng(42);
  for (int i = 0; i < 400; ++i) {
    const std::string k = "key" + std::to_string(rng.Uniform(200));
    const std::string v = "val" + std::to_string(i);
    ASSERT_TRUE(h.PutTxn(*tree, k, v).ok());
    committed[k] = v;
  }

  h.Crash();
  ASSERT_TRUE(h.OpenDb().ok()) << "recovery failed";
  auto tid = h.db()->GetTreeId("t");
  ASSERT_TRUE(tid.ok());
  for (const auto& [k, v] : committed) {
    std::string got;
    ASSERT_TRUE(h.db()->Get(h.io(), *tid, k, &got).ok()) << k;
    EXPECT_EQ(got, v) << k;
  }
}

TEST_P(CrashRecoveryTest, LoserTransactionRolledBack) {
  const CrashParam p = GetParam();
  DbHarness h({p.durable_cache, p.write_barriers, p.double_write,
               p.page_size});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  ASSERT_TRUE(h.PutTxn(*tree, "acct", "100").ok());

  // Uncommitted multi-op transaction in flight at the crash.
  auto txn = h.db()->Begin(h.io());
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(h.db()->Put(h.io(), *txn, *tree, "acct", "0").ok());
  ASSERT_TRUE(h.db()->Put(h.io(), *txn, *tree, "loser", "x").ok());

  h.Crash();
  ASSERT_TRUE(h.OpenDb().ok());
  auto tid = h.db()->GetTreeId("t");
  std::string v;
  ASSERT_TRUE(h.db()->Get(h.io(), *tid, "acct", &v).ok());
  EXPECT_EQ(v, "100");  // Atomicity: the uncommitted update vanished.
  EXPECT_TRUE(h.db()->Get(h.io(), *tid, "loser", &v).IsNotFound());
}

TEST_P(CrashRecoveryTest, RepeatedCrashesConverge) {
  const CrashParam p = GetParam();
  DbHarness h({p.durable_cache, p.write_barriers, p.double_write,
               p.page_size});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  ASSERT_TRUE(tree.ok());
  std::map<std::string, std::string> committed;

  for (int round = 0; round < 5; ++round) {
    auto tid = h.db()->GetTreeId("t");
    ASSERT_TRUE(tid.ok());
    for (int i = 0; i < 60; ++i) {
      const std::string k = "r" + std::to_string(round) + "k" +
                            std::to_string(i % 20);
      const std::string v = "v" + std::to_string(round * 100 + i);
      ASSERT_TRUE(h.PutTxn(*tid, k, v).ok());
      committed[k] = v;
    }
    h.Crash();
    ASSERT_TRUE(h.OpenDb().ok()) << "round " << round;
  }

  auto tid = h.db()->GetTreeId("t");
  for (const auto& [k, v] : committed) {
    std::string got;
    ASSERT_TRUE(h.db()->Get(h.io(), *tid, k, &got).ok()) << k;
    EXPECT_EQ(got, v) << k;
  }
}

// ---------------------------------------------------------------------------
// The paper's negative results: what goes wrong WITHOUT a durable cache
// ---------------------------------------------------------------------------

TEST(CrashSemanticsTest, VolatileNoBarrierLosesCommittedData) {
  // Barriers off on a volatile-cache SSD: fsync never flushes, so committed
  // transactions can evaporate — the reason OFF/OFF is unsafe without
  // DuraSSD (Sec. 2.2).
  DbHarness h({/*durable_cache=*/false, /*write_barriers=*/false,
               /*double_write=*/true, 4096});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(h.PutTxn(*tree, "k" + std::to_string(i), "v").ok());
  }
  h.Crash();

  // Recovery may succeed (an empty-looking database) or fail; either way,
  // committed data must be missing — that is the data-loss anomaly.
  bool lost = false;
  if (h.OpenDb().ok()) {
    auto tid = h.db()->GetTreeId("t");
    if (!tid.ok()) {
      lost = true;
    } else {
      for (int i = 0; i < 50 && !lost; ++i) {
        std::string v;
        if (!h.db()->Get(h.io(), *tid, "k" + std::to_string(i), &v).ok()) {
          lost = true;
        }
      }
    }
  } else {
    lost = true;
  }
  EXPECT_TRUE(lost);
}

TEST(CrashSemanticsTest, DuraSsdNoBarrierKeepsCommittedData) {
  // The same nobarrier configuration on DuraSSD is safe — the paper's core
  // claim (Sec. 2.2).
  DbHarness h({/*durable_cache=*/true, /*write_barriers=*/false,
               /*double_write=*/false, 4096});
  ASSERT_TRUE(h.OpenDb().ok());
  auto tree = h.db()->CreateTree(h.io(), "t");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(h.PutTxn(*tree, "k" + std::to_string(i), "v").ok());
  }
  h.Crash();
  ASSERT_TRUE(h.OpenDb().ok());
  auto tid = h.db()->GetTreeId("t");
  ASSERT_TRUE(tid.ok());
  for (int i = 0; i < 50; ++i) {
    std::string v;
    EXPECT_TRUE(h.db()->Get(h.io(), *tid, "k" + std::to_string(i), &v).ok())
        << i;
  }
}

}  // namespace
}  // namespace durassd
