#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "db/double_write_buffer.h"
#include "db/page.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kPage = 4 * kKiB;

class DwbTest : public ::testing::Test {
 protected:
  DwbTest() : dev_(Config()) {
    fs_ = std::make_unique<SimFileSystem>(&dev_, SimFileSystem::Options{});
    dwb_ = std::make_unique<DoubleWriteBuffer>(
        fs_->Open("dwb"), fs_->Open("data"),
        DoubleWriteBuffer::Options{kPage, 4});
  }

  static SsdConfig Config() {
    SsdConfig c = SsdConfig::Tiny(true);
    c.geometry.blocks_per_plane = 128;
    c.geometry.pages_per_block = 32;
    return c;
  }

  std::string SealedImage(PageId id, char fill) {
    Page page(kPage);
    page.Format(id, PageType::kBTreeLeaf);
    std::string cell;
    cell.resize(2);
    const uint16_t len = 2 + 32;
    memcpy(cell.data(), &len, 2);
    cell.append(std::string(32, fill));
    page.InsertCell(0, cell);
    page.SealChecksum();
    return std::string(page.data(), page.size());
  }

  IoContext io_;
  SsdDevice dev_;
  std::unique_ptr<SimFileSystem> fs_;
  std::unique_ptr<DoubleWriteBuffer> dwb_;
};

TEST_F(DwbTest, BatchFlushesAtCapacity) {
  for (PageId id = 0; id < 3; ++id) {
    ASSERT_TRUE(dwb_->Add(io_, id, SealedImage(id, 'a')).ok());
  }
  EXPECT_EQ(dwb_->stats().batches, 0u);  // Below batch size: pending.
  ASSERT_TRUE(dwb_->Add(io_, 3, SealedImage(3, 'a')).ok());
  EXPECT_EQ(dwb_->stats().batches, 1u);
  EXPECT_EQ(dwb_->stats().pages_double_written, 4u);
}

TEST_F(DwbTest, HomeLocationWrittenAfterFlush) {
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_TRUE(dwb_->Add(io_, id, SealedImage(id, 'h')).ok());
  }
  std::string raw;
  ASSERT_TRUE(
      fs_->Open("data")->Read(io_.now, 2 * kPage, kPage, &raw).status.ok());
  Page page(kPage);
  page.CopyFrom(raw);
  EXPECT_TRUE(page.VerifyChecksum());
  EXPECT_EQ(page.page_id(), 2u);
}

TEST_F(DwbTest, CoalescesSamePageInBatch) {
  ASSERT_TRUE(dwb_->Add(io_, 7, SealedImage(7, 'o')).ok());
  ASSERT_TRUE(dwb_->Add(io_, 7, SealedImage(7, 'n')).ok());
  const std::string* img = dwb_->PendingImage(7);
  ASSERT_NE(img, nullptr);
  ASSERT_TRUE(dwb_->FlushBatch(io_).ok());
  EXPECT_EQ(dwb_->stats().pages_double_written, 1u);
}

TEST_F(DwbTest, RecoverImagesReturnsIntactCopies) {
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_TRUE(dwb_->Add(io_, id, SealedImage(id, 'r')).ok());
  }
  std::vector<std::pair<PageId, std::string>> images;
  ASSERT_TRUE(dwb_->RecoverImages(io_, &images).ok());
  ASSERT_EQ(images.size(), 4u);
  for (const auto& [id, img] : images) {
    Page page(kPage);
    page.CopyFrom(img);
    EXPECT_TRUE(page.VerifyChecksum());
    EXPECT_EQ(page.page_id(), id);
  }
}

TEST_F(DwbTest, RecoverSkipsTornRegionCopies) {
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_TRUE(dwb_->Add(io_, id, SealedImage(id, 't')).ok());
  }
  // Tear one dwb slot by overwriting half of it.
  SimFile* dwb_file = fs_->Open("dwb");
  ASSERT_TRUE(dwb_file
                  ->Write(io_.now, 1 * kPage + kPage / 2,
                          std::string(kPage / 2, '\0'))
                  .status.ok());
  std::vector<std::pair<PageId, std::string>> images;
  ASSERT_TRUE(dwb_->RecoverImages(io_, &images).ok());
  EXPECT_EQ(images.size(), 3u);  // The torn copy is rejected by checksum.
}

TEST_F(DwbTest, TornHomePageRestoredEndToEnd) {
  // Write a batch (dwb + home), then tear the home location and verify the
  // dwb copy can restore it — the InnoDB recovery path.
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_TRUE(dwb_->Add(io_, id, SealedImage(id, 'e')).ok());
  }
  SimFile* data = fs_->Open("data");
  ASSERT_TRUE(data->Write(io_.now, 1 * kPage + 1024,
                          std::string(2048, '\xAB')).status.ok());
  // Home page 1 now fails its checksum.
  std::string raw;
  ASSERT_TRUE(data->Read(io_.now, kPage, kPage, &raw).status.ok());
  Page torn(kPage);
  torn.CopyFrom(raw);
  EXPECT_FALSE(torn.VerifyChecksum());

  std::vector<std::pair<PageId, std::string>> images;
  ASSERT_TRUE(dwb_->RecoverImages(io_, &images).ok());
  for (const auto& [id, img] : images) {
    if (id == 1) {
      ASSERT_TRUE(data->Write(io_.now, kPage, img).status.ok());
    }
  }
  ASSERT_TRUE(data->Read(io_.now, kPage, kPage, &raw).status.ok());
  Page restored(kPage);
  restored.CopyFrom(raw);
  EXPECT_TRUE(restored.VerifyChecksum());
}

TEST_F(DwbTest, FlushBatchEmptyIsNoop) {
  ASSERT_TRUE(dwb_->FlushBatch(io_).ok());
  EXPECT_EQ(dwb_->stats().batches, 0u);
}

}  // namespace
}  // namespace durassd
