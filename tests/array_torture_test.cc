// CI torture entry point for the multi-device array stack: seed-range
// sweeps of the crash harness mounted on mirrored ArrayDevices, with
// whole-device kills and online rebuilds racing the power cut. Same
// environment contract as crash_torture_test:
//
//   DURASSD_TORTURE_SEEDS=lo:hi   inclusive seed range   (default 100:103)
//   DURASSD_TORTURE_FAIL_FILE=p   append one reproducer line per violation
//   DURASSD_TORTURE_REPRO="..."   run EXACTLY this one scenario instead of
//                                 the sweep (paste a printed repro line)
//
// Every violation line round-trips through Options::FromString, so pasting
// it into DURASSD_TORTURE_REPRO reproduces the failure deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/crash_harness.h"

namespace durassd {
namespace {

using Engine = CrashHarness::Engine;

void ParseSeedRange(uint64_t* lo, uint64_t* hi) {
  *lo = 100;
  *hi = 103;
  const char* env = std::getenv("DURASSD_TORTURE_SEEDS");
  if (env == nullptr) return;
  uint64_t a = 0, b = 0;
  if (std::sscanf(env, "%llu:%llu", reinterpret_cast<unsigned long long*>(&a),
                  reinterpret_cast<unsigned long long*>(&b)) == 2 &&
      a <= b) {
    *lo = a;
    *hi = b;
  }
}

void AppendFailures(const std::vector<std::string>& violations) {
  const char* path = std::getenv("DURASSD_TORTURE_FAIL_FILE");
  if (path == nullptr || violations.empty()) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  for (const std::string& v : violations) {
    std::fprintf(f, "%s\n", v.c_str());
  }
  std::fclose(f);
}

void TortureOne(const CrashHarness::Options& o, int* failures) {
  const CrashHarness::Report rep = CrashHarness::Run(o);
  if (rep.ok) return;
  ++*failures;
  AppendFailures(rep.violations);
  for (const std::string& v : rep.violations) {
    ADD_FAILURE() << v;
  }
  ADD_FAILURE() << "repro: DURASSD_TORTURE_REPRO=\"" << o.ToString() << "\"";
}

/// If DURASSD_TORTURE_REPRO is set, runs that single pasted scenario and
/// returns true (the sweep is skipped — this is the debugging mode).
bool MaybeRunRepro() {
  const char* repro = std::getenv("DURASSD_TORTURE_REPRO");
  if (repro == nullptr) return false;
  int failures = 0;
  TortureOne(CrashHarness::Options::FromString(repro), &failures);
  EXPECT_EQ(failures, 0) << "pasted repro still violates";
  return true;
}

// The golden equivalence the tentpole demands, pushed through the full
// engine stack: a one-member mirrored array under the harness must produce
// a Report identical to the raw-device harness for the same Options.
TEST(ArrayTorture, SingleMemberArrayReportMatchesRawStack) {
  if (MaybeRunRepro()) return;
  for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
    for (bool durable : {true, false}) {
      CrashHarness::Options raw;
      raw.engine = engine;
      raw.durable_cache = durable;
      raw.ops = 40;
      raw.keyspace = 32;
      raw.seed = 7;
      raw.cut_fraction = 0.55;
      raw.durability_mode = durable ? DurabilityMode::kDurableOrderedNcq
                                    : DurabilityMode::kVolatileFlush;
      CrashHarness::Options golden = raw;
      golden.array_mirrors = 1;

      const auto a = CrashHarness::Run(raw);
      const auto b = CrashHarness::Run(golden);
      EXPECT_EQ(a.ok, b.ok);
      EXPECT_EQ(a.cuts, b.cuts);
      EXPECT_EQ(a.recovered, b.recovered);
      EXPECT_EQ(a.commit_in_flight, b.commit_in_flight);
      EXPECT_EQ(a.commits_acked, b.commits_acked);
      EXPECT_EQ(a.snapshot_matched, b.snapshot_matched);
      EXPECT_TRUE(b.ok) << (b.violations.empty() ? "" : b.violations[0]);
    }
  }
}

TEST(ArrayTorture, SeedRangeSweep) {
  if (MaybeRunRepro()) return;
  uint64_t lo = 0, hi = 0;
  ParseSeedRange(&lo, &hi);
  int failures = 0;
  uint64_t ran = 0;
  for (uint64_t seed = lo; seed <= hi; ++seed) {
    for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
      for (double cut : {0.35, 0.7}) {
        // Mirrored pair, primary killed mid-run; on alternating scenarios
        // a hot spare starts rebuilding immediately so the cut can land
        // mid-copy. Kill lands before the cut on half the scenarios and
        // after it on the other half (then it never fires — also valid).
        CrashHarness::Options o;
        o.engine = engine;
        o.durable_cache = true;
        o.write_barriers = true;
        o.double_write = true;
        o.ops = 48;
        o.keyspace = 32;
        o.seed = seed;
        o.cut_fraction = cut;
        o.durability_mode = DurabilityMode::kDurableOrderedNcq;
        o.array_mirrors = 2;
        o.array_kill_fraction = cut < 0.5 ? 0.6 : 0.3;
        o.array_rebuild = (seed + (cut < 0.5 ? 0 : 1)) % 2 == 0;
        o.nested_cut = seed % 2 == 0 && cut < 0.5;
        TortureOne(o, &failures);
        ++ran;

        // Volatile-cache mirrored deployment: prefix-tier invariants must
        // hold through failover too.
        CrashHarness::Options v = o;
        v.durable_cache = false;
        v.write_barriers = false;
        v.durability_mode = DurabilityMode::kVolatileFlush;
        v.nested_cut = false;
        TortureOne(v, &failures);
        ++ran;
      }
    }
  }
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(ran, (hi - lo + 1) * 8);
}

}  // namespace
}  // namespace durassd
