// CI torture entry point for the tiered (flash-extended-cache) stack:
// seed-range sweeps of the crash harness mounted on a TieredDevice — a
// durable-cache flash tier journaling its cache directory over an HDD
// capacity tier — so cuts land mid-destage, mid-admission, and mid-
// checkpoint. Same environment contract as crash_torture_test:
//
//   DURASSD_TORTURE_SEEDS=lo:hi   inclusive seed range   (default 100:103)
//   DURASSD_TORTURE_FAIL_FILE=p   append one reproducer line per violation
//   DURASSD_TORTURE_REPRO="..."   run EXACTLY this one scenario instead of
//                                 the sweep (paste a printed repro line)
//
// Every violation line round-trips through Options::FromString, so pasting
// it into DURASSD_TORTURE_REPRO reproduces the failure deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/crash_harness.h"

namespace durassd {
namespace {

using Engine = CrashHarness::Engine;

void ParseSeedRange(uint64_t* lo, uint64_t* hi) {
  *lo = 100;
  *hi = 103;
  const char* env = std::getenv("DURASSD_TORTURE_SEEDS");
  if (env == nullptr) return;
  uint64_t a = 0, b = 0;
  if (std::sscanf(env, "%llu:%llu", reinterpret_cast<unsigned long long*>(&a),
                  reinterpret_cast<unsigned long long*>(&b)) == 2 &&
      a <= b) {
    *lo = a;
    *hi = b;
  }
}

void AppendFailures(const std::vector<std::string>& violations) {
  const char* path = std::getenv("DURASSD_TORTURE_FAIL_FILE");
  if (path == nullptr || violations.empty()) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  for (const std::string& v : violations) {
    std::fprintf(f, "%s\n", v.c_str());
  }
  std::fclose(f);
}

void TortureOne(const CrashHarness::Options& o, int* failures) {
  const CrashHarness::Report rep = CrashHarness::Run(o);
  if (rep.ok) return;
  ++*failures;
  AppendFailures(rep.violations);
  for (const std::string& v : rep.violations) {
    ADD_FAILURE() << v;
  }
  ADD_FAILURE() << "repro: DURASSD_TORTURE_REPRO=\"" << o.ToString() << "\"";
}

/// If DURASSD_TORTURE_REPRO is set, runs that single pasted scenario and
/// returns true (the sweep is skipped — this is the debugging mode).
bool MaybeRunRepro() {
  const char* repro = std::getenv("DURASSD_TORTURE_REPRO");
  if (repro == nullptr) return false;
  int failures = 0;
  TortureOne(CrashHarness::Options::FromString(repro), &failures);
  EXPECT_EQ(failures, 0) << "pasted repro still violates";
  return true;
}

// Host acks on the tiered stack are flash-journal acks, so the stack earns
// the kStrict oracle: recovery must succeed and reproduce the committed
// snapshot — warm or cold, admit-all or scan-bypass, any destage cadence.
TEST(TieredTorture, SeedRangeSweep) {
  if (MaybeRunRepro()) return;
  uint64_t lo = 0, hi = 0;
  ParseSeedRange(&lo, &hi);
  int failures = 0;
  uint64_t ran = 0;
  for (uint64_t seed = lo; seed <= hi; ++seed) {
    for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
      for (double cut : {0.3, 0.75}) {
        CrashHarness::Options o;
        o.engine = engine;
        o.tiered = true;
        o.ops = 48;
        o.keyspace = 32;
        o.seed = seed;
        o.cut_fraction = cut;
        // Rotate the tier knobs across the range: tiny destage batches
        // keep a round in flight at most instants; a small flash tier
        // forces eviction pressure; alternating admission exercises both
        // policies; cold-start scenarios prove correctness never depended
        // on warmth.
        o.tier_flash_pct = seed % 2 == 0 ? 10.0 : 4.0;
        o.tier_admission = (seed + (cut < 0.5 ? 0 : 1)) % 2;
        o.tier_destage_batch = cut < 0.5 ? 8 : 24;
        o.tier_warm = (seed + (engine == Engine::kDatabase ? 0 : 1)) % 2 == 0;
        o.nested_cut = seed % 2 == 0 && cut < 0.5;
        TortureOne(o, &failures);
        ++ran;
      }
    }
  }
  EXPECT_EQ(failures, 0);
  // 4 scenarios per seed; the default range keeps local runs quick.
  EXPECT_EQ(ran, (hi - lo + 1) * 4);
}

}  // namespace
}  // namespace durassd
