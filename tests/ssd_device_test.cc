#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;

std::string SectorData(char fill) { return std::string(kSector, fill); }

// ---------------------------------------------------------------------------
// Functional round trips
// ---------------------------------------------------------------------------

TEST(SsdDeviceTest, WriteThenReadRoundTrips) {
  SsdDevice dev(SsdConfig::Tiny(true));
  const auto w = dev.Write(0, 5, SectorData('a'));
  ASSERT_TRUE(w.status.ok());
  EXPECT_GT(w.done, 0);

  std::string out;
  const auto r = dev.Read(w.done, 5, 1, &out);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(out, SectorData('a'));
}

TEST(SsdDeviceTest, MultiSectorWriteRoundTrips) {
  SsdDevice dev(SsdConfig::Tiny(true));
  std::string data = SectorData('1') + SectorData('2') + SectorData('3');
  const auto w = dev.Write(0, 10, data);
  ASSERT_TRUE(w.status.ok());

  std::string out;
  ASSERT_TRUE(dev.Read(w.done, 10, 3, &out).status.ok());
  EXPECT_EQ(out, data);
}

TEST(SsdDeviceTest, TimingOnlyCachedWriteFallsThroughToMediaOnDataRead) {
  // Regression: a timing-only device (store_data = false) keeps dataless
  // cache entries for its write buffer. A read that asks for real bytes
  // (out != nullptr) must not be "served" zeros from such an entry — it has
  // to fall through to the FTL like the cache miss it semantically is.
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.store_data = false;
  SsdDevice dev(cfg);
  const auto w = dev.Write(0, 4, SectorData('t') + SectorData('u'));
  ASSERT_TRUE(w.status.ok());
  const auto f = dev.Flush(w.done);  // Both sectors now live on NAND.
  ASSERT_TRUE(f.status.ok());

  const uint64_t flash_reads_before = dev.flash().stats().reads;
  std::string out;
  ASSERT_TRUE(dev.Read(f.done, 4, 2, &out).status.ok());
  EXPECT_EQ(out.size(), static_cast<size_t>(2 * kSector));
  EXPECT_GT(dev.flash().stats().reads, flash_reads_before)
      << "dataless cache entry served a data read without touching NAND";
  EXPECT_EQ(dev.stats().cache_read_hits, 0u);
  EXPECT_EQ(dev.stats().cache_read_misses, 2u);

  // Timing-only probes (out == nullptr) still count as cache hits: the
  // entries are resident, and golden-timing baselines rely on that.
  ASSERT_TRUE(dev.Read(f.done, 4, 2, nullptr).status.ok());
  EXPECT_EQ(dev.stats().cache_read_hits, 2u);
}

TEST(SsdDeviceTest, UnwrittenSectorsReadAsZeros) {
  SsdDevice dev(SsdConfig::Tiny(true));
  std::string out;
  ASSERT_TRUE(dev.Read(0, 42, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('\0'));
}

TEST(SsdDeviceTest, RejectsMisalignedAndOutOfRange) {
  SsdDevice dev(SsdConfig::Tiny(true));
  EXPECT_FALSE(dev.Write(0, 0, "short").status.ok());
  EXPECT_FALSE(dev.Write(0, dev.num_sectors(), SectorData('x')).status.ok());
  EXPECT_FALSE(dev.Read(0, dev.num_sectors(), 1, nullptr).status.ok());
  EXPECT_FALSE(dev.Read(0, 0, 0, nullptr).status.ok());
}

TEST(SsdDeviceTest, OverwriteReturnsLatestFromCache) {
  SsdDevice dev(SsdConfig::Tiny(true));
  auto w1 = dev.Write(0, 3, SectorData('x'));
  auto w2 = dev.Write(w1.done, 3, SectorData('y'));
  std::string out;
  ASSERT_TRUE(dev.Read(w2.done, 3, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('y'));
}

TEST(SsdDeviceTest, OfflineDeviceRejectsEverything) {
  SsdDevice dev(SsdConfig::Tiny(true));
  dev.PowerCut(0);
  EXPECT_TRUE(dev.Write(0, 0, SectorData('x')).status.IsDeviceOffline());
  EXPECT_TRUE(dev.Read(0, 0, 1, nullptr).status.IsDeviceOffline());
  EXPECT_TRUE(dev.Flush(0).status.IsDeviceOffline());
}

// ---------------------------------------------------------------------------
// Timing shapes (the physics behind Table 1)
// ---------------------------------------------------------------------------

TEST(SsdDeviceTest, CachedWriteAcksFasterThanWriteThrough) {
  SsdConfig on = SsdConfig::Tiny(true);
  SsdConfig off = SsdConfig::Tiny(true);
  off.cache_enabled = false;
  SsdDevice cached(on);
  SsdDevice through(off);

  const SimTime t_cached = cached.Write(0, 0, SectorData('a')).done;
  const SimTime t_through = through.Write(0, 0, SectorData('a')).done;
  // Cache ack ~ bus+fw (tens of us); write-through pays NAND program +
  // mapping persist (ms).
  EXPECT_LT(t_cached * 5, t_through);
}

TEST(SsdDeviceTest, FlushWaitsForOutstandingDestages) {
  SsdDevice dev(SsdConfig::Tiny(true));
  const auto w = dev.Write(0, 0, SectorData('a'));
  const auto f = dev.Flush(w.done);
  ASSERT_TRUE(f.status.ok());
  // Flush completion covers the NAND program + mapping persist + overhead.
  EXPECT_GT(f.done, w.done + dev.config().geometry.program_latency);
}

TEST(SsdDeviceTest, FlushWithNothingDirtyIsCheap) {
  SsdDevice dev(SsdConfig::Tiny(true));
  const auto w = dev.Write(0, 0, SectorData('a'));
  const auto f1 = dev.Flush(w.done);
  const auto f2 = dev.Flush(f1.done);
  EXPECT_LT(f2.done - f1.done, kMillisecond);  // Second flush: no work.
}

TEST(SsdDeviceTest, PairedSectorsHalveProgramCount) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  // 8 single-sector writes => pending-half pairing => ~4 programs.
  SimTime t = 0;
  for (Lpn l = 0; l < 8; ++l) {
    t = dev.Write(t, l, SectorData('p')).done;
  }
  EXPECT_LE(dev.flash().stats().programs, 4u);
}

TEST(SsdDeviceTest, WriteAmplificationNearOneForSequentialPairs) {
  SsdDevice dev(SsdConfig::Tiny(true));
  SimTime t = 0;
  for (Lpn l = 0; l < 64; ++l) t = dev.Write(t, l, SectorData('s')).done;
  const auto f = dev.Flush(t);
  // 64 x 4KB host = 32 x 8KB programs => WA ~= 1.0 (plus <= one partial).
  EXPECT_NEAR(dev.WriteAmplification(), 1.0, 0.1);
  (void)f;
}

// ---------------------------------------------------------------------------
// Durable cache: atomicity + durability across power failure (Sec. 3.2/3.4)
// ---------------------------------------------------------------------------

TEST(SsdDeviceTest, DurableCacheSurvivesPowerCutWithoutFlush) {
  SsdDevice dev(SsdConfig::Tiny(true));
  const auto w = dev.Write(0, 7, SectorData('D'));
  ASSERT_TRUE(w.status.ok());

  dev.PowerCut(w.done + 1);  // Acked, never flushed, destage in flight.
  dev.PowerOn();

  std::string out;
  ASSERT_TRUE(dev.Read(0, 7, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('D'));
  EXPECT_EQ(dev.stats().capacitor_overruns, 0u);
}

TEST(SsdDeviceTest, DurableCacheReplaysManyDirtySectors) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  SimTime t = 0;
  for (Lpn l = 0; l < 20; ++l) {
    const auto w = dev.Write(t, l, SectorData('a' + l % 26));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  dev.PowerCut(t + 1);
  const SimTime recovery = dev.PowerOn();
  EXPECT_GT(recovery, 0);

  for (Lpn l = 0; l < 20; ++l) {
    std::string out;
    ASSERT_TRUE(dev.Read(0, l, 1, &out).status.ok());
    EXPECT_EQ(out, SectorData('a' + l % 26)) << "lpn " << l;
  }
}

TEST(SsdDeviceTest, DurableCacheDiscardsIncompleteCommandWhole) {
  SsdDevice dev(SsdConfig::Tiny(true));
  std::string data = SectorData('1') + SectorData('2');
  const auto w = dev.Write(0, 0, data);
  ASSERT_TRUE(w.status.ok());

  // Cut before the ack: the command never completed; both sectors revert.
  dev.PowerCut(w.done - 1);
  dev.PowerOn();

  std::string out;
  ASSERT_TRUE(dev.Read(0, 0, 2, &out).status.ok());
  EXPECT_EQ(out, SectorData('\0') + SectorData('\0'));
  EXPECT_GE(dev.stats().dropped_incomplete, 1u);
}

TEST(SsdDeviceTest, DurableCacheNeverExposesTornPages) {
  // Overwrite repeatedly and cut mid-destage; the acknowledged version (old
  // or new, depending on the ack boundary) must read back whole.
  for (int cut_us : {10, 50, 100, 400, 800, 1200}) {
    SsdDevice dev(SsdConfig::Tiny(true));
    auto w1 = dev.Write(0, 0, SectorData('A'));
    ASSERT_TRUE(w1.status.ok());
    auto f = dev.Flush(w1.done);
    auto w2 = dev.Write(f.done, 0, SectorData('B'));
    ASSERT_TRUE(w2.status.ok());

    const SimTime cut = f.done + cut_us * kMicrosecond;
    dev.PowerCut(cut);
    dev.PowerOn();

    std::string out;
    ASSERT_TRUE(dev.Read(0, 0, 1, &out).status.ok());
    const bool whole_a = out == SectorData('A');
    const bool whole_b = out == SectorData('B');
    EXPECT_TRUE(whole_a || whole_b) << "cut at +" << cut_us << "us";
    if (cut >= w2.done) {
      // Acked before the cut: durability demands the new version.
      EXPECT_TRUE(whole_b) << "cut at +" << cut_us << "us";
    }
  }
}

TEST(SsdDeviceTest, CoalescedOverwriteRestoresPriorAckedVersion) {
  SsdDevice dev(SsdConfig::Tiny(true));
  const auto w1 = dev.Write(0, 4, SectorData('x'));
  ASSERT_TRUE(w1.status.ok());
  const auto w2 = dev.Write(w1.done, 4, SectorData('y'));
  ASSERT_TRUE(w2.status.ok());

  dev.PowerCut(w2.done - 1);  // Second command incomplete.
  dev.PowerOn();

  std::string out;
  ASSERT_TRUE(dev.Read(0, 4, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('x'));
}

TEST(SsdDeviceTest, CleanShutdownNeedsNoReplay) {
  SsdDevice dev(SsdConfig::Tiny(true));
  const auto w = dev.Write(0, 9, SectorData('c'));
  ASSERT_TRUE(dev.Shutdown(w.done).ok());
  const SimTime boot = dev.PowerOn();
  EXPECT_LT(boot, 10 * kMillisecond);
  EXPECT_EQ(dev.stats().replayed_pages, 0u);

  std::string out;
  ASSERT_TRUE(dev.Read(0, 9, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('c'));
}

// ---------------------------------------------------------------------------
// Volatile cache: data loss and torn writes (the other 13 of 15 SSDs)
// ---------------------------------------------------------------------------

TEST(SsdDeviceTest, VolatileCacheLosesUnflushedAckedWrites) {
  SsdDevice dev(SsdConfig::Tiny(false));
  ASSERT_FALSE(dev.has_durable_cache());
  const auto w = dev.Write(0, 7, SectorData('L'));
  ASSERT_TRUE(w.status.ok());

  dev.PowerCut(w.done + kSecond);  // Long after ack — still unflushed.
  dev.PowerOn();

  std::string out;
  ASSERT_TRUE(dev.Read(0, 7, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('\0'));  // Acked data gone.
}

TEST(SsdDeviceTest, VolatileCacheKeepsFlushedWrites) {
  SsdDevice dev(SsdConfig::Tiny(false));
  const auto w = dev.Write(0, 7, SectorData('F'));
  const auto f = dev.Flush(w.done);
  ASSERT_TRUE(f.status.ok());

  dev.PowerCut(f.done + 1);
  dev.PowerOn();

  std::string out;
  ASSERT_TRUE(dev.Read(0, 7, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('F'));
}

TEST(SsdDeviceTest, VolatileFlushPreservesPrefixProperty) {
  // Writes w0..w9, flush, w10..w19, cut: exactly w0..w9 survive.
  SsdDevice dev(SsdConfig::Tiny(false));
  SimTime t = 0;
  for (Lpn l = 0; l < 10; ++l) t = dev.Write(t, l, SectorData('1')).done;
  t = dev.Flush(t).done;
  for (Lpn l = 10; l < 20; ++l) t = dev.Write(t, l, SectorData('2')).done;

  dev.PowerCut(t + kSecond);
  dev.PowerOn();

  for (Lpn l = 0; l < 10; ++l) {
    std::string out;
    ASSERT_TRUE(dev.Read(0, l, 1, &out).status.ok());
    EXPECT_EQ(out, SectorData('1')) << l;
  }
  for (Lpn l = 10; l < 20; ++l) {
    std::string out;
    ASSERT_TRUE(dev.Read(0, l, 1, &out).status.ok());
    EXPECT_EQ(out, SectorData('\0')) << l;
  }
}

TEST(SsdDeviceTest, WriteThroughCutMidProgramExposesTornPage) {
  SsdConfig cfg = SsdConfig::Tiny(false);
  cfg.cache_enabled = false;  // O_DIRECT-style write-through.
  SsdDevice dev(cfg);

  auto w1 = dev.Write(0, 0, SectorData('O'));
  ASSERT_TRUE(w1.status.ok());
  auto w2 = dev.Write(w1.done, 0, SectorData('N'));
  ASSERT_TRUE(w2.status.ok());

  // Cut while the second (overwrite) program is on the NAND bus.
  dev.PowerCut(w2.done - dev.config().geometry.program_latency / 2 -
               dev.config().geometry.program_latency /* persist cost */);
  dev.PowerOn();

  std::string out;
  ASSERT_TRUE(dev.Read(0, 0, 1, &out).status.ok());
  // Neither whole-old nor whole-new: a shorn page is visible.
  EXPECT_NE(out, SectorData('O'));
  EXPECT_NE(out, SectorData('N'));
}

TEST(SsdDeviceTest, DurableConfigReportsAtomicSupport) {
  SsdDevice dura(SsdConfig::Tiny(true));
  SsdDevice vol(SsdConfig::Tiny(false));
  EXPECT_TRUE(dura.supports_atomic_write());
  EXPECT_TRUE(dura.has_durable_cache());
  EXPECT_FALSE(vol.supports_atomic_write());
}

// ---------------------------------------------------------------------------
// Capacitor budget (Sec. 3.1: "dozens of megabytes")
// ---------------------------------------------------------------------------

TEST(SsdDeviceTest, DumpFitsCapacitorBudgetUnderFullWriteBuffer) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  // Saturate the write buffer, then cut mid-burst.
  SimTime t = 0;
  for (Lpn l = 0; l < cfg.write_buffer_sectors * 2; ++l) {
    const auto w = dev.Write(t, l % dev.num_sectors(), SectorData('b'));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  dev.PowerCut(t - kMicrosecond);
  EXPECT_EQ(dev.stats().capacitor_overruns, 0u);
  dev.PowerOn();
}

TEST(SsdDeviceTest, ReplayIsIdempotentAcrossDoubleFailure) {
  // Power cut, reboot, immediately cut again before any new I/O: recovery
  // must still produce the same state.
  SsdDevice dev(SsdConfig::Tiny(true));
  const auto w = dev.Write(0, 3, SectorData('R'));
  ASSERT_TRUE(w.status.ok());
  dev.PowerCut(w.done + 1);
  dev.PowerOn();
  dev.PowerCut(1);  // Immediately after boot.
  dev.PowerOn();

  std::string out;
  ASSERT_TRUE(dev.Read(0, 3, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('R'));
}

}  // namespace
}  // namespace durassd
