#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flash/flash_array.h"
#include "ssd/ftl.h"

namespace durassd {
namespace {

class FtlTest : public ::testing::Test {
 protected:
  FtlTest()
      : flash_(FlashArray::Options{FlashGeometry::Tiny(), true}),
        ftl_(&flash_, Ftl::Options{4 * kKiB, 0.25, 2, 2}) {}

  std::string SectorData(char fill) const { return std::string(4 * kKiB, fill); }

  Status WriteOne(SimTime now, Lpn lpn, const std::string& data,
                  SimTime* done = nullptr) {
    SimTime start = 0;
    SimTime d = 0;
    std::vector<Ftl::SectorWrite> w{{lpn, &data}};
    Status s = ftl_.ProgramSectors(now, w, &start, &d);
    if (done != nullptr) *done = d;
    return s;
  }

  FlashArray flash_;
  Ftl ftl_;
};

TEST_F(FtlTest, UnmappedSectorReadsZerosInstantly) {
  std::string out;
  SimTime done = 0;
  ASSERT_TRUE(ftl_.ReadSector(123, 5, &out, &done).ok());
  EXPECT_EQ(done, 123);  // No media access for unmapped sectors.
  EXPECT_EQ(out, std::string(4 * kKiB, '\0'));
  EXPECT_FALSE(ftl_.IsMapped(5));
}

TEST_F(FtlTest, WriteReadRoundTrip) {
  const std::string data = SectorData('a');
  SimTime done = 0;
  ASSERT_TRUE(WriteOne(0, 7, data, &done).ok());
  EXPECT_TRUE(ftl_.IsMapped(7));

  std::string out;
  ftl_.ReadSector(done, 7, &out);
  EXPECT_EQ(out, data);
}

TEST_F(FtlTest, PairsTwoSectorsIntoOneProgram) {
  const std::string a = SectorData('a');
  const std::string b = SectorData('b');
  SimTime start = 0, done = 0;
  std::vector<Ftl::SectorWrite> w{{10, &a}, {11, &b}};
  ASSERT_TRUE(ftl_.ProgramSectors(0, w, &start, &done).ok());
  EXPECT_EQ(flash_.stats().programs, 1u);  // One 8KB program for both.

  std::string out;
  ftl_.ReadSector(done, 10, &out);
  EXPECT_EQ(out, a);
  ftl_.ReadSector(done, 11, &out);
  EXPECT_EQ(out, b);
}

TEST_F(FtlTest, OverwriteSupersedesOldVersion) {
  ASSERT_TRUE(WriteOne(0, 3, SectorData('1')).ok());
  SimTime done = 0;
  ASSERT_TRUE(WriteOne(kMillisecond, 3, SectorData('2'), &done).ok());
  std::string out;
  ftl_.ReadSector(done, 3, &out);
  EXPECT_EQ(out, SectorData('2'));
}

TEST_F(FtlTest, RejectsLpnBeyondCapacity) {
  SimTime start = 0, done = 0;
  const std::string d = SectorData('x');
  std::vector<Ftl::SectorWrite> w{{ftl_.logical_sectors(), &d}};
  EXPECT_FALSE(ftl_.ProgramSectors(0, w, &start, &done).ok());
}

TEST_F(FtlTest, RejectsOversizedGroup) {
  const std::string d = SectorData('x');
  std::vector<Ftl::SectorWrite> w{{0, &d}, {1, &d}, {2, &d}};
  SimTime start = 0, done = 0;
  EXPECT_FALSE(ftl_.ProgramSectors(0, w, &start, &done).ok());
}

TEST_F(FtlTest, GarbageCollectionReclaimsSpaceUnderOverwrites) {
  // Working set far below logical capacity, overwritten many times: the FTL
  // must GC and never run out of space.
  const uint64_t hot = 16;
  SimTime t = 0;
  for (int round = 0; round < 200; ++round) {
    for (uint64_t l = 0; l < hot; ++l) {
      SimTime done = 0;
      ASSERT_TRUE(WriteOne(t, l, SectorData('A' + (round % 26)), &done).ok())
          << "round " << round << " lpn " << l;
      t = done;
    }
  }
  EXPECT_GT(ftl_.stats().gc_runs, 0u);
  EXPECT_GT(ftl_.stats().gc_erases, 0u);

  // All hot sectors still readable with the latest content.
  for (uint64_t l = 0; l < hot; ++l) {
    std::string out;
    ftl_.ReadSector(t, l, &out);
    EXPECT_EQ(out, SectorData('A' + (199 % 26)));
  }
}

TEST_F(FtlTest, GcPreservesEveryLiveSector) {
  // Fill a large fraction of logical space with distinct contents, then
  // overwrite half; verify everything after GC activity.
  const uint64_t n = ftl_.logical_sectors() / 2;
  SimTime t = 0;
  for (uint64_t l = 0; l < n; ++l) {
    SimTime done = 0;
    ASSERT_TRUE(WriteOne(t, l, SectorData('a' + l % 26), &done).ok());
    t = done;
  }
  for (uint64_t l = 0; l < n; l += 2) {
    SimTime done = 0;
    ASSERT_TRUE(WriteOne(t, l, SectorData('A' + l % 26), &done).ok());
    t = done;
  }
  for (uint64_t l = 0; l < n; ++l) {
    std::string out;
    ftl_.ReadSector(t, l, &out);
    EXPECT_EQ(out[0], l % 2 == 0 ? 'A' + static_cast<char>(l % 26)
                                 : 'a' + static_cast<char>(l % 26))
        << "lpn " << l;
  }
}

// --------------------------- Mapping persistence --------------------------

TEST_F(FtlTest, RollbackRevertsUnpersistedWrites) {
  SimTime done = 0;
  ASSERT_TRUE(WriteOne(0, 1, SectorData('o'), &done).ok());
  ftl_.PersistMapping();  // 'o' is now stable.

  ASSERT_TRUE(WriteOne(done, 1, SectorData('n'), &done).ok());
  EXPECT_EQ(ftl_.dirty_mapping_entries(), 1u);

  ftl_.PowerCutRollback(done + kSecond, Ftl::PowerCutExposure::kNone);
  std::string out;
  ftl_.ReadSector(0, 1, &out);
  EXPECT_EQ(out, SectorData('o'));  // Lost write: old data visible.
  EXPECT_EQ(ftl_.dirty_mapping_entries(), 0u);
}

TEST_F(FtlTest, RollbackUnmapsNeverPersistedSector) {
  SimTime done = 0;
  ASSERT_TRUE(WriteOne(0, 9, SectorData('x'), &done).ok());
  ftl_.PowerCutRollback(done + kSecond, Ftl::PowerCutExposure::kNone);
  EXPECT_FALSE(ftl_.IsMapped(9));
  std::string out;
  ftl_.ReadSector(0, 9, &out);
  EXPECT_EQ(out, SectorData('\0'));
}

TEST_F(FtlTest, ExposeStartedKeepsInFlightMapping) {
  SimTime done = 0;
  ASSERT_TRUE(WriteOne(0, 4, SectorData('t'), &done).ok());
  // Cut in the middle of the program with the expose flag (the commodity-SSD
  // anomaly): the mapping keeps pointing at the torn page.
  flash_.PowerCut(done - 10);
  ftl_.PowerCutRollback(done - 10, Ftl::PowerCutExposure::kStarted);

  EXPECT_TRUE(ftl_.IsMapped(4));
  std::string out;
  bool torn = false;
  ftl_.ReadSector(0, 4, &out, nullptr, &torn);
  EXPECT_TRUE(torn);
  // First half new, second half shorn.
  EXPECT_EQ(out.substr(0, 2 * kKiB), std::string(2 * kKiB, 't'));
  EXPECT_EQ(out.substr(2 * kKiB), std::string(2 * kKiB, '\0'));
}

TEST_F(FtlTest, RollbackAfterOverwriteRestoresPersistedVersion) {
  SimTime done = 0;
  ASSERT_TRUE(WriteOne(0, 2, SectorData('p'), &done).ok());
  ftl_.PersistMapping();
  // Two unpersisted overwrites.
  ASSERT_TRUE(WriteOne(done, 2, SectorData('q'), &done).ok());
  ASSERT_TRUE(WriteOne(done, 2, SectorData('r'), &done).ok());

  ftl_.PowerCutRollback(done + kSecond, Ftl::PowerCutExposure::kNone);
  std::string out;
  ftl_.ReadSector(0, 2, &out);
  EXPECT_EQ(out, SectorData('p'));
}

TEST_F(FtlTest, GcForcesPersistenceOfReclaimedRollbackTargets) {
  // Persist a version, then churn enough to force the old physical page
  // through GC. Rollback must NOT resurrect a mapping into an erased block.
  SimTime done = 0;
  ASSERT_TRUE(WriteOne(0, 0, SectorData('v'), &done).ok());
  ftl_.PersistMapping();
  ASSERT_TRUE(WriteOne(done, 0, SectorData('w'), &done).ok());

  SimTime t = done;
  for (int round = 0; round < 300; ++round) {
    const Lpn l = 1 + (round % 20);
    ASSERT_TRUE(WriteOne(t, l, SectorData('z'), &done).ok());
    t = done;
  }
  ASSERT_GT(ftl_.stats().gc_runs, 0u);

  ftl_.PowerCutRollback(t + kSecond, Ftl::PowerCutExposure::kNone);
  std::string out;
  ftl_.ReadSector(0, 0, &out);
  // Either the new value survived (force-persisted by GC) or the old one
  // was restored — never garbage/zeros.
  EXPECT_TRUE(out == SectorData('w') || out == SectorData('v'));
}

// --------------------------- Dump area ------------------------------------

TEST_F(FtlTest, DumpAreaProgramsAndReadsBack) {
  std::string payload = "dump-entry";
  ASSERT_TRUE(ftl_.ProgramDumpPage(0, payload).ok());
  std::string back;
  ASSERT_TRUE(ftl_.ReadDumpPage(0, &back).ok());
  EXPECT_EQ(back.substr(0, payload.size()), payload);

  const SimTime erased = ftl_.EraseDumpArea(0);
  EXPECT_GT(erased, 0);
  EXPECT_TRUE(ftl_.ProgramDumpPage(0, payload).ok());  // Usable again.
}

TEST_F(FtlTest, DumpAreaIsOutsideNormalAllocation) {
  // Writing the whole logical space must never touch dump blocks.
  SimTime t = 0;
  for (uint64_t l = 0; l < ftl_.logical_sectors(); ++l) {
    SimTime done = 0;
    ASSERT_TRUE(WriteOne(t, l, SectorData('d'), &done).ok());
    t = done;
  }
  ASSERT_TRUE(ftl_.ProgramDumpPage(0, "still-clean").ok());
}

TEST_F(FtlTest, DumpAreaExhaustionReported) {
  EXPECT_TRUE(
      ftl_.ProgramDumpPage(ftl_.dump_area_pages(), "x").IsOutOfSpace());
}

}  // namespace
}  // namespace durassd
