// Asynchronous submit/complete path + ordered NCQ:
//
//   - API semantics: Submit/Poll/Await/Find, queue-depth stalls, power-cut
//     abort of in-flight commands, sync wrappers == submit+await.
//   - Ordered-queue property sweep (>= 50 seeded cut instants per mode):
//     in ordered mode the commands surviving a power cut are always a
//     *prefix* of the submission order; in unordered mode survivors are a
//     sane subset (each command all-or-nothing, never garbage) and at
//     least one cut lands on an acknowledgment inversion (non-prefix).
//   - Group commit: every acknowledged commit survives a power cut that
//     lands with commits in flight, and the WAL's group accounting detects
//     commits sharing one device sync.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "db/io_context.h"
#include "db/wal.h"
#include "host/sim_file.h"
#include "sim/client_scheduler.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;

std::string Value(uint64_t version, uint32_t nsec) {
  std::string v = "cmd-" + std::to_string(version) + "-";
  v.resize(static_cast<size_t>(nsec) * kSector, 'x');
  return v;
}

SsdConfig SmallConfig(bool ordered) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  cfg.ordered_queue = ordered;
  // A roomy write buffer keeps acknowledgments firmware-bound rather than
  // destage-bound, so mixed-size commands really do acknowledge out of
  // submission order on the unordered queue (with Tiny's 32 frames, FIFO
  // frame recycling serializes acks after the first burst and the sweep
  // would never catch an inversion). The capacitor must cover the buffer.
  cfg.write_buffer_sectors = 256;
  cfg.cache_capacity_sectors = 512;
  cfg.capacitor_budget_bytes = 4 * kMiB;
  return cfg;
}

// ---------------------------------------------------------------------------
// API semantics
// ---------------------------------------------------------------------------

TEST(AsyncApi, SyncWrappersMatchSubmitAwait) {
  SsdDevice a(SmallConfig(true));
  SsdDevice b(SmallConfig(true));
  Random rng(7);
  SimTime ta = 0, tb = 0;
  for (int i = 0; i < 40; ++i) {
    const Lpn lpn = rng.Uniform(32);
    const std::string data = Value(i, 1);
    const BlockDevice::Result ra = a.Write(ta, lpn, data);

    const CmdId id =
        b.Submit(tb, BlockDevice::Command::MakeWrite(lpn, data));
    const BlockDevice::Completion cb = b.Await(id);
    ASSERT_EQ(ra.status.ok(), cb.status.ok()) << "op " << i;
    ASSERT_EQ(ra.done, cb.done) << "op " << i;
    ta = ra.done;
    tb = cb.done;
  }
  const BlockDevice::Result fa = a.Flush(ta);
  const CmdId fid = b.Submit(tb, BlockDevice::Command::MakeFlush());
  EXPECT_EQ(fa.done, b.Await(fid).done);
}

TEST(AsyncApi, PollReturnsCompletionsInDoneOrder) {
  SsdDevice dev(SmallConfig(false));
  std::vector<CmdId> ids;
  for (int i = 0; i < 6; ++i) {
    // Mixed sizes submitted at the same instant: completion order differs
    // from submission order on the unordered queue.
    const uint32_t nsec = (i % 2 == 0) ? 8 : 1;
    ids.push_back(dev.Submit(
        0, BlockDevice::Command::MakeWrite(static_cast<Lpn>(i) * 8,
                                           Value(i, nsec))));
  }
  EXPECT_EQ(dev.pending_completions(), 6u);
  EXPECT_TRUE(dev.Poll(0).empty());  // Nothing observable at t=0.
  EXPECT_LT(dev.EarliestPendingDone(), kMaxSimTime);

  const std::vector<BlockDevice::Completion> done = dev.Poll(kMaxSimTime);
  ASSERT_EQ(done.size(), 6u);
  EXPECT_EQ(dev.pending_completions(), 0u);
  for (size_t i = 1; i < done.size(); ++i) {
    EXPECT_LE(done[i - 1].done, done[i].done);
  }
  for (const BlockDevice::Completion& c : done) {
    EXPECT_TRUE(c.status.ok());
    EXPECT_GE(c.done, c.submit);
  }
}

TEST(AsyncApi, QueueDepthLimitStallsSubmission) {
  SsdConfig cfg = SmallConfig(true);
  cfg.host_queue_depth = 1;
  SsdDevice limited(cfg);
  SsdDevice unlimited(SmallConfig(true));

  for (int i = 0; i < 8; ++i) {
    SimTime entered = 0;
    limited.Submit(
        0, BlockDevice::Command::MakeWrite(static_cast<Lpn>(i), Value(i, 1)),
        &entered);
    unlimited.Submit(
        0, BlockDevice::Command::MakeWrite(static_cast<Lpn>(i), Value(i, 1)));
    if (i > 0) {
      EXPECT_GT(entered, 0) << "submission " << i << " not stalled";
    }
  }
  EXPECT_GT(limited.submit_stalls(), 0u);
  EXPECT_GT(limited.submit_stall_time(), 0);
  EXPECT_EQ(unlimited.submit_stalls(), 0u);

  // The QD histogram saw every submission, never above the limit + 1.
  const Histogram* h = limited.metrics().GetHistogram("ssd.qd");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 8u);
}

TEST(AsyncApi, FindPeeksWithoutConsumingAndUnknownAwaitFails) {
  SsdDevice dev(SmallConfig(true));
  const CmdId id = dev.Submit(0, BlockDevice::Command::MakeWrite(0, Value(1, 1)));
  const BlockDevice::Completion* peek = dev.Find(id);
  ASSERT_NE(peek, nullptr);
  EXPECT_TRUE(peek->status.ok());
  EXPECT_EQ(dev.pending_completions(), 1u);  // Find consumed nothing.

  const BlockDevice::Completion c = dev.Await(id);
  EXPECT_TRUE(c.status.ok());
  EXPECT_EQ(dev.Find(id), nullptr);
  EXPECT_FALSE(dev.Await(id).status.ok());  // Unknown id.
}

TEST(AsyncApi, PowerCutAbortsInFlightCommands) {
  SsdDevice dev(SmallConfig(true));
  std::vector<CmdId> ids;
  SimTime max_ack = 0;
  for (int i = 0; i < 8; ++i) {
    const CmdId id = dev.Submit(
        0, BlockDevice::Command::MakeWrite(static_cast<Lpn>(i) * 8,
                                           Value(i, 8)));
    ids.push_back(id);
    max_ack = std::max(max_ack, dev.Find(id)->done);
  }
  const SimTime cut = max_ack / 2;
  dev.PowerCut(cut);

  bool any_aborted = false;
  for (CmdId id : ids) {
    const BlockDevice::Completion c = dev.Await(id);
    if (c.status.ok()) {
      EXPECT_LE(c.done, cut);  // Completed before the lights went out.
    } else {
      any_aborted = true;
      EXPECT_TRUE(c.status.IsDeviceOffline()) << c.status.ToString();
      EXPECT_EQ(c.done, cut);  // Aborted at the cut instant.
    }
  }
  EXPECT_TRUE(any_aborted);
}

TEST(AsyncApi, SimFileAsyncWriteMatchesSyncWrite) {
  SsdDevice da(SmallConfig(true));
  SsdDevice db(SmallConfig(true));
  SimFileSystem fa(&da, {});
  SimFileSystem fb(&db, {});
  SimFile* sync_file = fa.Open("f");
  SimFile* async_file = fb.Open("f");

  Random rng(99);
  SimTime ta = 0, tb = 0;
  for (int i = 0; i < 20; ++i) {
    // Unaligned sizes exercise the read-modify-write edges too.
    const uint64_t offset = rng.Uniform(64) * 1024;
    const std::string data((rng.Next() % 3 + 1) * 5000, 'a' + i % 26);
    const SimFile::IoResult r = sync_file->Write(ta, offset, data);
    ASSERT_TRUE(r.status.ok());

    const CmdId id = async_file->SubmitWrite(tb, offset, data);
    const SimFile::Completion c = async_file->Await(id);
    ASSERT_TRUE(c.status.ok());
    ASSERT_EQ(r.done, c.done) << "op " << i;
    ta = r.done;
    tb = c.done;
  }
  EXPECT_EQ(sync_file->size(), async_file->size());
  std::string sa, sb;
  ASSERT_TRUE(sync_file->Read(ta, 0, sync_file->size(), &sa).status.ok());
  ASSERT_TRUE(async_file->Read(tb, 0, async_file->size(), &sb).status.ok());
  EXPECT_EQ(sa, sb);
}

// ---------------------------------------------------------------------------
// Ordered-NCQ power-cut prefix property
// ---------------------------------------------------------------------------

struct SubmittedCmd {
  CmdId id;
  Lpn lpn;
  uint32_t nsec;
  uint64_t version;
};

/// Submits bursts of mixed-size writes to distinct LPN ranges without
/// awaiting them (bursts overlap inside the device). Stops *starting*
/// bursts at `stop_at` (0 = never), so a cut shortly after the last burst
/// began lands with commands genuinely in flight.
std::vector<SubmittedCmd> RunBursts(SsdDevice* dev, uint64_t seed,
                                    SimTime stop_at, SimTime* end) {
  Random rng(seed);
  std::vector<SubmittedCmd> cmds;
  SimTime t = 0;
  Lpn next_lpn = 0;
  for (int burst = 0; burst < 10; ++burst) {
    if (stop_at != 0 && t >= stop_at) break;
    SimTime burst_done = t;
    for (int i = 0; i < 6; ++i) {
      const uint32_t nsec = (rng.Next() % 2 == 0) ? 8 : 1;
      const uint64_t version = cmds.size();
      const CmdId id = dev->Submit(
          t, BlockDevice::Command::MakeWrite(next_lpn, Value(version, nsec)));
      cmds.push_back({id, next_lpn, nsec, version});
      burst_done = std::max(burst_done, dev->Find(id)->done);
      next_lpn += nsec;
    }
    t = burst_done;
  }
  *end = t;
  return cmds;
}

/// Classifies each command after the cut: +1 fully readable, 0 fully
/// absent (zeros), -1 torn/garbage (always a violation on a durable
/// device).
int Survived(SsdDevice* dev, const SubmittedCmd& c) {
  std::string got;
  if (!dev->Read(0, c.lpn, c.nsec, &got).status.ok()) return -1;
  if (got == Value(c.version, c.nsec)) return 1;
  if (got == std::string(static_cast<size_t>(c.nsec) * kSector, '\0')) {
    return 0;
  }
  return -1;
}

TEST(OrderedNcqPowerCut, SurvivorsAreAlwaysAPrefixOfSubmissionOrder) {
  uint64_t total_clamps = 0;
  int instants = 0;
  for (uint64_t seed : {11u, 22u, 33u}) {
    SimTime total = 0;
    {
      SsdDevice probe(SmallConfig(true));
      SimTime end = 0;
      RunBursts(&probe, seed, 0, &end);
      total = end;
    }
    for (int f = 1; f <= 20; ++f) {
      ++instants;
      const SimTime cut = total * f / 21 + f;  // Off-grid instants.
      SsdDevice dev(SmallConfig(true));
      SimTime end = 0;
      const std::vector<SubmittedCmd> cmds =
          RunBursts(&dev, seed, cut, &end);
      dev.PowerCut(std::max<SimTime>(cut, 1));
      dev.PowerOn();

      int last_survivor = -1;
      int first_lost = static_cast<int>(cmds.size());
      for (size_t i = 0; i < cmds.size(); ++i) {
        const int s = Survived(&dev, cmds[i]);
        ASSERT_GE(s, 0) << "torn command " << i << " seed " << seed
                        << " cut " << cut;
        if (s == 1) {
          last_survivor = static_cast<int>(i);
        } else {
          first_lost = std::min(first_lost, static_cast<int>(i));
        }
      }
      // The prefix property: nothing may survive beyond the first loss.
      EXPECT_LT(last_survivor, first_lost)
          << "non-prefix survivors, seed " << seed << " cut " << cut;
      EXPECT_EQ(dev.stats().ordering_violations, 0u);
      total_clamps += dev.stats().ordered_ack_clamps;
    }
  }
  EXPECT_GE(instants, 50);
  // The clamp really engaged somewhere: without it these mixed-size bursts
  // acknowledge out of order (the unordered sweep below proves that).
  EXPECT_GT(total_clamps, 0u);
}

TEST(UnorderedNcqPowerCut, SurvivorsAreSaneSubsetAndInversionsHappen) {
  int instants = 0;
  int non_prefix_cuts = 0;
  for (uint64_t seed : {11u, 22u, 33u}) {
    SimTime total = 0;
    {
      SsdDevice probe(SmallConfig(false));
      SimTime end = 0;
      RunBursts(&probe, seed, 0, &end);
      total = end;
    }
    for (int f = 1; f <= 20; ++f) {
      ++instants;
      const SimTime cut = total * f / 21 + f;
      SsdDevice dev(SmallConfig(false));
      SimTime end = 0;
      const std::vector<SubmittedCmd> cmds =
          RunBursts(&dev, seed, cut, &end);
      dev.PowerCut(std::max<SimTime>(cut, 1));
      dev.PowerOn();

      int last_survivor = -1;
      int first_lost = static_cast<int>(cmds.size());
      for (size_t i = 0; i < cmds.size(); ++i) {
        // Still all-or-nothing per command (durable cache), but order is
        // not guaranteed.
        const int s = Survived(&dev, cmds[i]);
        ASSERT_GE(s, 0) << "torn command " << i << " seed " << seed
                        << " cut " << cut;
        if (s == 1) {
          last_survivor = static_cast<int>(i);
        } else {
          first_lost = std::min(first_lost, static_cast<int>(i));
        }
      }
      if (last_survivor > first_lost) non_prefix_cuts++;
      EXPECT_EQ(dev.stats().ordered_ack_clamps, 0u);
    }
  }
  EXPECT_GE(instants, 50);
  // The unordered queue really does acknowledge out of submission order:
  // some cut must land inside an inversion window.
  EXPECT_GT(non_prefix_cuts, 0);
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

SsdConfig GroupCommitDeviceConfig() {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.geometry = FlashGeometry::Tiny();
  dc.geometry.blocks_per_plane = 256;
  dc.geometry.pages_per_block = 32;
  dc.capacitor_budget_bytes = 16 * kMiB;
  return dc;
}

Database::Options GroupCommitDbOptions() {
  Database::Options dbo;
  dbo.pool_bytes = 2 * kMiB;
  dbo.double_write = false;
  dbo.checkpoint_log_bytes = 4 * kMiB;
  dbo.checkpoint_queue_depth = 8;  // Exercise the async destage path.
  return dbo;
}

/// Runs `total_ops` single-put transactions from `clients` interleaved
/// committers. Returns the set of acknowledged (committed-OK) key/values;
/// `*end` receives the virtual end time. Stops issuing once a commit
/// fails (the scheduled power cut tripped).
std::map<std::string, std::string> RunCommitters(
    SsdDevice* dev, SimFileSystem* fs, uint32_t clients, uint64_t total_ops,
    SimTime cut, SimTime* end, uint64_t* max_group) {
  IoContext io;
  if (cut > 0) dev->SchedulePowerCut(cut);
  std::map<std::string, std::string> acked;
  auto dbo = Database::Open(io, fs, fs, GroupCommitDbOptions());
  EXPECT_TRUE(dbo.ok());
  if (!dbo.ok()) return acked;
  std::unique_ptr<Database> db = std::move(*dbo);
  auto tree = db->CreateTree(io, "t");
  EXPECT_TRUE(tree.ok());
  if (!tree.ok()) return acked;

  std::vector<uint32_t> op_count(clients, 0);
  SimTime end_time = io.now;
  bool stopped = false;
  // Per-operation IoContext seeded from the client's local clock (the
  // TPC-C idiom): concurrent committers really do share device syncs.
  const auto fn = [&](uint32_t client, SimTime now) -> SimTime {
    end_time = std::max(end_time, now);
    if (stopped) return now;
    IoContext cio{now};
    const std::string key =
        "c" + std::to_string(client) + "-" + std::to_string(op_count[client]);
    const std::string value = "v" + key;
    op_count[client]++;
    auto txn = db->Begin(cio);
    if (txn.ok() && db->Put(cio, *txn, *tree, key, value).ok() &&
        db->Commit(cio, *txn).ok()) {
      acked[key] = value;
    } else {
      stopped = true;  // The cut (or degradation) interrupted this commit.
    }
    end_time = std::max(end_time, cio.now);
    return cio.now;
  };
  ClientScheduler::Run(clients, total_ops, io.now, fn);
  *end = end_time;
  if (max_group != nullptr) *max_group = db->wal_stats().max_group_commit;
  return acked;
}

TEST(GroupCommit, EveryAckedCommitSurvivesMidRunPowerCut) {
  // Probe: learn the cut-free duration of the committer workload.
  // Barriers stay ON: the commit fsync issues a real FLUSH, whose long
  // completion window is what concurrent committers coalesce into — the
  // cut can then land with a multi-commit group in flight. (The nobarrier
  // durable-cache deployment is covered by the crash-torture sweep.)
  SimTime total = 0;
  {
    SsdDevice dev(GroupCommitDeviceConfig());
    SimFileSystem fs(&dev, {});
    uint64_t groups = 0;
    const auto acked =
        RunCommitters(&dev, &fs, 8, 48, 0, &total, &groups);
    EXPECT_EQ(acked.size(), 48u);
    // Real grouping occurred: at least one device sync carried 2+ commits.
    EXPECT_GE(groups, 2u) << "no group commit formed in the probe run";
  }

  for (double frac : {0.35, 0.6, 0.85}) {
    SsdDevice dev(GroupCommitDeviceConfig());
    SimFileSystem fs(&dev, {});
    const SimTime cut = static_cast<SimTime>(total * frac) + 7;
    SimTime end = 0;
    const std::map<std::string, std::string> acked =
        RunCommitters(&dev, &fs, 8, 48, cut, &end, nullptr);

    if (dev.powered()) {
      dev.CancelScheduledPowerCut();
      dev.PowerCut(std::max(cut, end));
    }
    dev.PowerOn();

    IoContext io;
    io.AdvanceTo(end + kMillisecond);
    auto reopened = Database::Open(io, &fs, &fs, GroupCommitDbOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<Database> db = std::move(*reopened);
    if (acked.empty()) continue;  // The cut beat even the first commit.
    auto tree = db->GetTreeId("t");
    ASSERT_TRUE(tree.ok()) << "schema lost despite acked commits";
    for (const auto& [key, value] : acked) {
      std::string got;
      const Status s = db->Get(io, *tree, key, &got);
      ASSERT_TRUE(s.ok()) << "acked commit lost: " << key << " cut " << cut
                          << ": " << s.ToString();
      EXPECT_EQ(got, value) << "acked commit corrupted: " << key;
    }
  }
}

TEST(GroupCommit, WalAccountingDetectsSharedSyncs) {
  SsdDevice dev(GroupCommitDeviceConfig());
  SimFileSystem fs(&dev, {});  // Barriers on: syncs really flush.
  MetricsRegistry metrics;
  Wal::Options wo;
  wo.metrics = &metrics;
  Wal wal(fs.Open("wal"), wo);
  IoContext io;

  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.txn = 1;

  // Two committers append before either syncs; the first sync covers both
  // records, so the second rides it: one group of two.
  const Lsn a = wal.Append(rec);
  const Lsn b = wal.Append(rec);
  const SimTime entered = io.now;
  ASSERT_TRUE(wal.SyncTo(io, a).ok());
  IoContext io2;
  io2.now = entered;  // The second committer's clock is still at the start.
  ASSERT_TRUE(wal.SyncTo(io2, b).ok());

  EXPECT_EQ(wal.stats().group_rides, 1u);
  EXPECT_EQ(wal.stats().sync_groups, 1u);
  EXPECT_EQ(wal.stats().max_group_commit, 2u);
  EXPECT_EQ(io2.now, io.now);  // Both durable at the same instant.

  // A later, separate commit opens a new group and closes the old one
  // into the histogram.
  const Lsn c = wal.Append(rec);
  ASSERT_TRUE(wal.SyncTo(io, c).ok());
  EXPECT_EQ(wal.stats().sync_groups, 2u);
  const Histogram* h = metrics.GetHistogram("wal.group_commit_size");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);  // The closed group of size 2.
}

}  // namespace
}  // namespace durassd
