#include <gtest/gtest.h>

#include <string>

#include "ssd/hdd_device.h"

namespace durassd {
namespace {

HddDevice::Config SmallHdd(bool cache_on = true) {
  HddDevice::Config c;
  c.num_sectors = 4096;
  c.cache_enabled = cache_on;
  c.write_cache_sectors = 64;
  return c;
}

std::string SectorData(char fill) { return std::string(4 * kKiB, fill); }

TEST(HddDeviceTest, WriteReadRoundTrip) {
  HddDevice hdd(SmallHdd());
  const auto w = hdd.Write(0, 9, SectorData('h'));
  ASSERT_TRUE(w.status.ok());
  std::string out;
  ASSERT_TRUE(hdd.Read(w.done, 9, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('h'));
}

TEST(HddDeviceTest, UnwrittenReadsZeros) {
  HddDevice hdd(SmallHdd());
  std::string out;
  ASSERT_TRUE(hdd.Read(0, 100, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('\0'));
}

TEST(HddDeviceTest, CachedWriteAcksFasterThanUncached) {
  HddDevice cached(SmallHdd(true));
  HddDevice raw(SmallHdd(false));
  const SimTime t1 = cached.Write(0, 0, SectorData('x')).done;
  const SimTime t2 = raw.Write(0, 0, SectorData('x')).done;
  // Cache ack at bus speed; uncached pays seek + rotation (ms).
  EXPECT_LT(t1 * 10, t2);
  EXPECT_GT(t2, 3 * kMillisecond);
}

TEST(HddDeviceTest, QueueDepthImprovesServiceTime) {
  // Back-to-back requests at high queue depth are served faster per op
  // (elevator scheduling) than isolated ones.
  HddDevice hdd(SmallHdd(false));
  SimTime isolated_start = 0;
  const SimTime isolated = hdd.Write(isolated_start, 0, SectorData('a')).done;

  HddDevice busy(SmallHdd(false));
  SimTime done_first = 0, done_last = 0;
  for (int i = 0; i < 64; ++i) {
    const auto w = busy.Write(0, i, SectorData('b'));  // All arrive at once.
    if (i == 0) done_first = w.done;
    done_last = w.done;
  }
  const SimTime avg = done_last / 64;
  EXPECT_LT(avg, isolated);
  (void)done_first;
}

TEST(HddDeviceTest, FlushDrainsCache) {
  HddDevice hdd(SmallHdd(true));
  const auto w = hdd.Write(0, 5, SectorData('f'));
  const auto f = hdd.Flush(w.done);
  ASSERT_TRUE(f.status.ok());
  EXPECT_GT(f.done, w.done);  // Waited for the media pass.
}

TEST(HddDeviceTest, PowerCutLosesInFlightWrites) {
  HddDevice hdd(SmallHdd(true));
  const auto w = hdd.Write(0, 5, SectorData('L'));
  // Cut right after the ack: destage to platter is still in flight.
  hdd.PowerCut(w.done + 1);
  hdd.PowerOn();
  std::string out;
  ASSERT_TRUE(hdd.Read(0, 5, 1, &out).status.ok());
  EXPECT_NE(out, SectorData('L'));  // Lost or sheared — never intact.
}

TEST(HddDeviceTest, PowerCutAfterFlushKeepsData) {
  HddDevice hdd(SmallHdd(true));
  const auto w = hdd.Write(0, 5, SectorData('K'));
  const auto f = hdd.Flush(w.done);
  hdd.PowerCut(f.done + 1);
  hdd.PowerOn();
  std::string out;
  ASSERT_TRUE(hdd.Read(0, 5, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('K'));
}

TEST(HddDeviceTest, PowerCutMidWriteShearsSector) {
  HddDevice hdd(SmallHdd(false));  // Write-through.
  auto w1 = hdd.Write(0, 3, SectorData('O'));
  auto w2 = hdd.Write(w1.done, 3, SectorData('N'));
  hdd.PowerCut(w2.done - 100 * kMicrosecond);  // Mid media pass.
  hdd.PowerOn();
  std::string out;
  ASSERT_TRUE(hdd.Read(0, 3, 1, &out).status.ok());
  EXPECT_NE(out, SectorData('O'));
  EXPECT_NE(out, SectorData('N'));  // Torn.
}

TEST(HddDeviceTest, ReportsNoAtomicityOrDurableCache) {
  HddDevice hdd(SmallHdd());
  EXPECT_FALSE(hdd.supports_atomic_write());
  EXPECT_FALSE(hdd.has_durable_cache());
}

TEST(HddDeviceTest, OfflineRejectsOps) {
  HddDevice hdd(SmallHdd());
  hdd.PowerCut(0);
  EXPECT_TRUE(hdd.Write(0, 0, SectorData('x')).status.IsDeviceOffline());
  EXPECT_TRUE(hdd.Read(0, 0, 1, nullptr).status.IsDeviceOffline());
  hdd.PowerOn();
  EXPECT_TRUE(hdd.Write(0, 0, SectorData('x')).status.ok());
}

TEST(HddDeviceTest, RejectsOutOfRange) {
  HddDevice hdd(SmallHdd());
  EXPECT_FALSE(hdd.Write(0, 4096, SectorData('x')).status.ok());
  EXPECT_FALSE(hdd.Read(0, 4095, 2, nullptr).status.ok());
}

TEST(HddDeviceTest, ScheduledCutTripsOnSubmissionAtOrPastInstant) {
  HddDevice hdd(SmallHdd());
  hdd.SchedulePowerCut(10 * kMillisecond);
  ASSERT_TRUE(hdd.scheduled_cut_armed());
  const auto w = hdd.Write(10 * kMillisecond, 0, SectorData('x'));
  EXPECT_TRUE(w.status.IsDeviceOffline());
  EXPECT_EQ(w.done, 10 * kMillisecond);  // Completion snaps to the cut.
  EXPECT_FALSE(hdd.powered());
  EXPECT_FALSE(hdd.scheduled_cut_armed());
  EXPECT_EQ(hdd.scheduled_cuts_tripped(), 1u);
}

TEST(HddDeviceTest, ScheduledCutGuardsCompletionCausality) {
  // An uncached write submitted BEFORE the instant whose media completion
  // lands PAST it must not be acknowledged — the same causality guard
  // SsdDevice::CutBeforeCompletion applies (a media pass costs ms, so an
  // instant shortly after submission always lands mid-command).
  HddDevice hdd(SmallHdd(false));
  hdd.SchedulePowerCut(100 * kMicrosecond);
  const auto w = hdd.Write(0, 3, SectorData('G'));
  EXPECT_TRUE(w.status.IsDeviceOffline());
  EXPECT_EQ(w.done, 100 * kMicrosecond);
  EXPECT_FALSE(hdd.powered());
  // The torn/lost shear of the reverted command is the device's normal
  // power-cut behavior: never the full new value.
  hdd.PowerOn();
  std::string out;
  ASSERT_TRUE(hdd.Read(0, 3, 1, &out).status.ok());
  EXPECT_NE(out, SectorData('G'));
}

TEST(HddDeviceTest, ScheduledCutSparesCacheAckedWrite) {
  // A cached write acks at bus speed, long before the armed instant: the
  // ack stands (the data may still die with the volatile cache — that is
  // the honest volatile-cache contract, not a causality violation).
  HddDevice hdd(SmallHdd(true));
  hdd.SchedulePowerCut(50 * kMillisecond);
  const auto w = hdd.Write(0, 7, SectorData('c'));
  EXPECT_TRUE(w.status.ok());
  EXPECT_LT(w.done, 50 * kMillisecond);
  EXPECT_TRUE(hdd.powered());
}

TEST(HddDeviceTest, CancelScheduledCutDisarms) {
  HddDevice hdd(SmallHdd());
  hdd.SchedulePowerCut(1 * kMicrosecond);
  hdd.CancelScheduledPowerCut();
  EXPECT_FALSE(hdd.scheduled_cut_armed());
  const auto w = hdd.Write(5 * kMillisecond, 0, SectorData('y'));
  EXPECT_TRUE(w.status.ok());
  EXPECT_TRUE(hdd.powered());
  EXPECT_EQ(hdd.scheduled_cuts_tripped(), 0u);
}

}  // namespace
}  // namespace durassd
