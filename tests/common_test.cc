#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/resource.h"
#include "common/slice.h"
#include "common/status.h"

namespace durassd {
namespace {

// --------------------------- Status ---------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("torn page 17");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "Corruption: torn page 17");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::IoError().IsIoError());
  EXPECT_TRUE(Status::DeviceOffline().IsDeviceOffline());
  EXPECT_TRUE(Status::OutOfSpace().IsOutOfSpace());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::DataLoss().IsDataLoss());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
}

TEST(StatusTest, ResourceExhaustedIsItsOwnCode) {
  // Distinct from kOutOfSpace: OutOfSpace is a transient allocation failure
  // (GC may reclaim space); ResourceExhausted is the permanent read-only
  // degraded condition.
  const Status re = Status::ResourceExhausted("spares gone");
  EXPECT_FALSE(re.ok());
  EXPECT_TRUE(re.IsResourceExhausted());
  EXPECT_FALSE(re.IsOutOfSpace());
  EXPECT_FALSE(Status::OutOfSpace().IsResourceExhausted());
  EXPECT_EQ(re.ToString(), "ResourceExhausted: spares gone");
  EXPECT_EQ(Status::ResourceExhausted().ToString(),
            "ResourceExhausted: resource exhausted");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  StatusOr<int> bad(Status::NotFound("x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

// --------------------------- Slice ----------------------------------------

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
}

TEST(SliceTest, RemovePrefix) {
  Slice s("hello world");
  s.remove_prefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

// --------------------------- CRC32C ---------------------------------------

TEST(Crc32cTest, KnownVector) {
  // Standard check vector: CRC-32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(4096, 'a');
  const uint32_t before = Crc32c(data.data(), data.size());
  data[2048] ^= 0x01;
  EXPECT_NE(before, Crc32c(data.data(), data.size()));
}

TEST(Crc32cTest, SeedChaining) {
  const uint32_t direct = Crc32c("abcdef", 6);
  const uint32_t part = Crc32c("abc", 3);
  EXPECT_EQ(direct, Crc32c("def", 3, part));
}

// --------------------------- Coding ---------------------------------------

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  Slice in(buf);
  uint32_t v = 0;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xDEADBEEFu);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint64_t v = 0;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFull);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "world");
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(b.ToString(), "");
  EXPECT_EQ(c.ToString(), "world");
  EXPECT_FALSE(GetLengthPrefixed(&in, &a));  // Exhausted.
}

TEST(CodingTest, GetLengthPrefixedRejectsUnderflow) {
  std::string buf;
  PutFixed32(&buf, 100);  // Claims 100 bytes, provides none.
  Slice in(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

// --------------------------- Random ---------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    const uint64_t x = r.UniformRange(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random r(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.Bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(ZipfianTest, SkewsTowardHotKeys) {
  Random r(5);
  ZipfianGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(r)]++;
  // Item 0 should dominate; top-10 should absorb a large share.
  EXPECT_GT(counts[0], counts[500] * 10);
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[i];
  EXPECT_GT(top10, 100000 / 4);
}

TEST(ZipfianTest, ScrambledCoversRangeAndStaysSkewed) {
  Random r(6);
  ZipfianGenerator zipf(100, 0.99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = zipf.NextScrambled(r);
    ASSERT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 50u);  // Spreads across the space.
}

// --------------------------- Histogram ------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * kMillisecond);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1 * kMillisecond);
  EXPECT_EQ(h.max(), 100 * kMillisecond);
  EXPECT_NEAR(h.Mean(), 50.5 * kMillisecond, kMillisecond);
  // Geometric buckets: allow ~7% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50 * kMillisecond,
              5.0 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99 * kMillisecond,
              8.0 * kMillisecond);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, all;
  Random r(9);
  for (int i = 0; i < 500; ++i) {
    const SimTime v = static_cast<SimTime>(r.Uniform(1000000)) + 1;
    ((i % 2 == 0) ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.Mean(), all.Mean());
  EXPECT_EQ(a.Percentile(75), all.Percentile(75));
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0);
  EXPECT_EQ(h.max(), 0);
}

// --------------------------- ResourceTimeline -----------------------------

TEST(ResourceTimelineTest, SerializesAtCapacityOne) {
  ResourceTimeline r(1);
  auto g1 = r.Acquire(0, 100);
  auto g2 = r.Acquire(0, 100);
  EXPECT_EQ(g1.start, 0);
  EXPECT_EQ(g1.done, 100);
  EXPECT_EQ(g2.start, 100);
  EXPECT_EQ(g2.done, 200);
}

TEST(ResourceTimelineTest, ParallelUpToCapacity) {
  ResourceTimeline r(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.Acquire(0, 50).start, 0);
  }
  EXPECT_EQ(r.Acquire(0, 50).start, 50);  // Fourth waits.
}

TEST(ResourceTimelineTest, IdleGapsDoNotAccumulate) {
  ResourceTimeline r(1);
  r.Acquire(0, 10);
  auto g = r.Acquire(1000, 10);  // Arrives long after idle.
  EXPECT_EQ(g.start, 1000);
}

TEST(ResourceTimelineTest, AllFreeReportsDrainTime) {
  ResourceTimeline r(2);
  r.Acquire(0, 100);
  r.Acquire(0, 300);
  EXPECT_EQ(r.AllFree(), 300);
}

}  // namespace
}  // namespace durassd
