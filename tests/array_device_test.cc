#include "array/array_device.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;

std::string SectorData(char fill, uint32_t nsec = 1) {
  return std::string(static_cast<size_t>(nsec) * kSector, fill);
}

// ---------------------------------------------------------------------------
// Golden identity: a single-member array is the raw device, bit for bit.
// ---------------------------------------------------------------------------

/// Drives an identical deterministic command mix against two devices and
/// requires every acknowledgement instant and status to match exactly.
void ExpectBitIdenticalTiming(BlockDevice& a, BlockDevice& b) {
  SimTime ta = 0, tb = 0;
  for (int i = 0; i < 40; ++i) {
    const Lpn lpn = static_cast<Lpn>((i * 7) % 50);
    const uint32_t nsec = 1 + (i % 3);
    const std::string data = SectorData(static_cast<char>('a' + i % 26), nsec);
    const auto wa = a.Write(ta, lpn, data);
    const auto wb = b.Write(tb, lpn, data);
    ASSERT_EQ(wa.status.code(), wb.status.code()) << "write " << i;
    ASSERT_EQ(wa.done, wb.done) << "write " << i;
    ta = wa.done;
    tb = wb.done;
    if (i % 5 == 4) {
      std::string oa, ob;
      const auto ra = a.Read(ta, lpn, nsec, &oa);
      const auto rb = b.Read(tb, lpn, nsec, &ob);
      ASSERT_EQ(ra.done, rb.done) << "read " << i;
      ASSERT_EQ(oa, ob) << "read " << i;
      ta = ra.done;
      tb = rb.done;
    }
    if (i % 11 == 10) {
      const auto fa = a.Flush(ta);
      const auto fb = b.Flush(tb);
      ASSERT_EQ(fa.done, fb.done) << "flush " << i;
      ta = fa.done;
      tb = fb.done;
    }
    if (i % 13 == 12) {
      const auto ba = a.Barrier(ta);
      const auto bb = b.Barrier(tb);
      ASSERT_EQ(ba.done, bb.done) << "barrier " << i;
      ta = ba.done;
      tb = bb.done;
    }
  }
  ASSERT_EQ(ta, tb);
}

TEST(ArrayGolden, SingleMemberMirrorMatchesRawDeviceBitForBit) {
  SsdDevice raw(SsdConfig::Tiny(true));
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 1, ArrayConfig{});
  ExpectBitIdenticalTiming(raw, *arr);
}

TEST(ArrayGolden, SingleMemberStripeMatchesRawDeviceBitForBit) {
  // A stripe unit smaller than the largest command forces unit-boundary
  // splits, which must merge back into the verbatim original command on a
  // one-member array.
  ArrayConfig ac;
  ac.stripe_unit_sectors = 2;
  SsdDevice raw(SsdConfig::Tiny(true));
  auto arr = MakeStripedArray(SsdConfig::Tiny(true), 1, ac);
  ExpectBitIdenticalTiming(raw, *arr);
}

TEST(ArrayGolden, SingleMemberFlagsMatchRawDevice) {
  SsdDevice raw(SsdConfig::Tiny(true));
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 1, ArrayConfig{});
  EXPECT_EQ(arr->sector_size(), raw.sector_size());
  EXPECT_EQ(arr->num_sectors(), raw.num_sectors());
  EXPECT_EQ(arr->supports_atomic_write(), raw.supports_atomic_write());
  EXPECT_EQ(arr->has_durable_cache(), raw.has_durable_cache());
  EXPECT_EQ(arr->ordered_writes(), raw.ordered_writes());
  EXPECT_EQ(arr->supports_barrier(), raw.supports_barrier());
}

TEST(ArrayGolden, SingleMemberScheduledCutMatchesRawDevice) {
  SsdDevice raw(SsdConfig::Tiny(true));
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 1, ArrayConfig{});
  // Learn a mid-run instant from a dry run of the same workload.
  SsdDevice probe(SsdConfig::Tiny(true));
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) t = probe.Write(t, i, SectorData('p')).done;
  const SimTime cut = t / 2;

  raw.SchedulePowerCut(cut);
  arr->SchedulePowerCut(cut);
  SimTime ta = 0, tb = 0;
  for (int i = 0; i < 10; ++i) {
    const auto wa = raw.Write(ta, i, SectorData('p'));
    const auto wb = arr->Write(tb, i, SectorData('p'));
    ASSERT_EQ(wa.status.code(), wb.status.code()) << i;
    ASSERT_EQ(wa.done, wb.done) << i;
    ta = std::max(ta, wa.done);
    tb = std::max(tb, wb.done);
  }
  EXPECT_EQ(raw.powered(), arr->powered());
  ASSERT_EQ(raw.PowerOn() > 0, arr->PowerOn() > 0);
  for (int i = 0; i < 10; ++i) {
    std::string oa, ob;
    const auto ra = raw.Read(1 + i, i, 1, &oa);
    const auto rb = arr->Read(1 + i, i, 1, &ob);
    ASSERT_EQ(ra.status.code(), rb.status.code()) << i;
    ASSERT_EQ(oa, ob) << i;
  }
}

// ---------------------------------------------------------------------------
// Striped layout
// ---------------------------------------------------------------------------

TEST(ArrayStriped, DataRoundTripsAcrossMembers) {
  ArrayConfig ac;
  ac.stripe_unit_sectors = 2;
  auto arr = MakeStripedArray(SsdConfig::Tiny(true), 3, ac);
  EXPECT_EQ(arr->num_sectors(), 3 * arr->member(0).num_sectors());

  // A write spanning several stripe units lands on every member.
  std::string data;
  for (uint32_t i = 0; i < 8; ++i) {
    data += SectorData(static_cast<char>('A' + i));
  }
  const auto w = arr->Write(0, 1, data);
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  for (uint32_t m = 0; m < 3; ++m) {
    EXPECT_GT(arr->member(m).stats().host_written_sectors, 0u) << m;
  }

  std::string out;
  const auto r = arr->Read(w.done, 1, 8, &out);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(out, data);

  // Unaligned single-sector readback too.
  std::string one;
  ASSERT_TRUE(arr->Read(r.done, 5, 1, &one).status.ok());
  EXPECT_EQ(one, SectorData('E'));
}

TEST(ArrayStriped, MultiMemberDropsOrderingAndBarrierGuarantees) {
  auto arr = MakeStripedArray(SsdConfig::Tiny(true), 2, ArrayConfig{});
  EXPECT_TRUE(arr->has_durable_cache());
  EXPECT_FALSE(arr->ordered_writes());
  EXPECT_FALSE(arr->supports_barrier());
}

TEST(ArrayStriped, MemberDeathFailsArrayStickily) {
  ArrayConfig ac;
  ac.stripe_unit_sectors = 2;
  auto arr = MakeStripedArray(SsdConfig::Tiny(true), 2, ac);
  const auto w0 = arr->Write(0, 0, SectorData('a', 4));
  ASSERT_TRUE(w0.status.ok());
  SimTime t = w0.done;

  arr->fault_injector().KillMemberAt(1, t + 1);
  // This write spans both members; the member-1 shard dies.
  const auto w1 = arr->Write(t + 2, 0, SectorData('b', 4));
  EXPECT_TRUE(w1.status.IsIoError()) << w1.status.ToString();
  EXPECT_EQ(arr->health(), ArrayDevice::Health::kFailed);
  EXPECT_TRUE(arr->degraded());
  EXPECT_EQ(arr->stats().member_deaths, 1u);

  // Sticky: later writes are rejected with the PR-3 degraded signal.
  const auto w2 = arr->Write(w1.done + 1, 0, SectorData('c', 2));
  EXPECT_TRUE(w2.status.IsResourceExhausted());
  EXPECT_GT(arr->stats().degraded_write_rejects, 0u);

  // Reads whose range lives on the surviving member still work.
  std::string out;
  const auto r = arr->Read(w2.done + 1, 0, 2, &out);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
}

// ---------------------------------------------------------------------------
// Mirrored layout: replication, failover, supervisor
// ---------------------------------------------------------------------------

TEST(ArrayMirrored, WriteReplicatesAckGatesOnSlowestReplica) {
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ArrayConfig{});
  EXPECT_EQ(arr->num_sectors(), arr->member(0).num_sectors());
  const auto w = arr->Write(0, 3, SectorData('m'));
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(arr->member(0).stats().host_written_sectors, 1u);
  EXPECT_EQ(arr->member(1).stats().host_written_sectors, 1u);

  // Reads are served by the primary only.
  std::string out;
  ASSERT_TRUE(arr->Read(w.done, 3, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('m'));
  EXPECT_EQ(arr->member(0).stats().host_reads, 1u);
  EXPECT_EQ(arr->member(1).stats().host_reads, 0u);
  EXPECT_EQ(arr->stats().redirected_reads, 0u);
}

TEST(ArrayMirrored, PrimaryDeathFailsOverReadsAndWrites) {
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ArrayConfig{});
  const auto w = arr->Write(0, 7, SectorData('x'));
  ASSERT_TRUE(w.status.ok());

  arr->fault_injector().KillMemberAt(0, w.done + 1);
  // The read that discovers the death must transparently retry on the
  // survivor and still return the data.
  std::string out;
  const auto r = arr->Read(w.done + 2, 7, 1, &out);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(out, SectorData('x'));
  EXPECT_GE(arr->stats().redirected_reads, 1u);
  EXPECT_EQ(arr->health(), ArrayDevice::Health::kDegraded);
  EXPECT_TRUE(arr->degraded());

  // Writes continue on the survivor (partial replica set).
  const auto w2 = arr->Write(r.done, 8, SectorData('y'));
  ASSERT_TRUE(w2.status.ok());
  EXPECT_GE(arr->stats().redirected_writes, 1u);
  std::string out2;
  ASSERT_TRUE(arr->Read(w2.done, 8, 1, &out2).status.ok());
  EXPECT_EQ(out2, SectorData('y'));
}

TEST(ArrayMirrored, AllMembersDeadFailsArray) {
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ArrayConfig{});
  const auto w = arr->Write(0, 0, SectorData('a'));
  ASSERT_TRUE(w.status.ok());
  arr->fault_injector().KillMemberAt(0, w.done + 1);
  arr->fault_injector().KillMemberAt(1, w.done + 1);
  const auto w2 = arr->Write(w.done + 2, 1, SectorData('b'));
  EXPECT_FALSE(w2.status.ok());
  EXPECT_EQ(arr->health(), ArrayDevice::Health::kFailed);
  const auto w3 = arr->Write(w2.done + 1, 1, SectorData('c'));
  EXPECT_TRUE(w3.status.IsResourceExhausted());
}

TEST(ArraySupervisor, HungCommandTimesOutAndRetrySucceeds) {
  ArrayConfig ac;
  ac.command_deadline_ns = 500 * kMicrosecond;
  ac.retry_backoff_ns = 100 * kMicrosecond;
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ArrayConfig{ac});
  // Member 0's next command answers 50ms late — far past the deadline.
  arr->fault_injector().HangCommandAfter(0, 0, 50 * kMillisecond);
  const auto w = arr->Write(0, 4, SectorData('h'));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  EXPECT_EQ(arr->stats().timeouts, 1u);
  EXPECT_EQ(arr->stats().retries, 1u);
  EXPECT_EQ(arr->health(), ArrayDevice::Health::kOptimal);
  // The retry cost is visible in the ack: deadline + backoff at minimum.
  EXPECT_GT(w.done, 600 * kMicrosecond);

  std::string out;
  ASSERT_TRUE(arr->Read(w.done, 4, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('h'));
}

TEST(ArraySupervisor, PersistentHangEscalatesToMemberDeathAndFailover) {
  ArrayConfig ac;
  ac.command_deadline_ns = 500 * kMicrosecond;
  ac.retry_limit = 2;
  ac.retry_backoff_ns = 100 * kMicrosecond;
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ac);
  // Every attempt (initial + 2 retries) hangs forever.
  for (uint64_t n = 0; n < 3; ++n) {
    arr->fault_injector().HangCommandAfter(0, n, kMaxSimTime);
  }
  const auto w = arr->Write(0, 9, SectorData('z'));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();  // Survivor acked.
  EXPECT_EQ(arr->stats().timeouts, 3u);
  EXPECT_EQ(arr->stats().retries, 2u);
  EXPECT_EQ(arr->stats().member_deaths, 1u);
  EXPECT_EQ(arr->member_state(0), ArrayDevice::MemberState::kDead);
  EXPECT_EQ(arr->health(), ArrayDevice::Health::kDegraded);
  EXPECT_GT(arr->metrics().counters().at("array.timeouts"), 0u);
}

TEST(ArraySupervisor, TransientOutageRidesThroughOnBackoff) {
  ArrayConfig ac;
  ac.retry_limit = 4;
  ac.retry_backoff_ns = 200 * kMicrosecond;
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ac);
  const SimTime t0 = 1 * kMillisecond;
  arr->fault_injector().TransientOutage(0, 0, t0 + 300 * kMicrosecond);
  const auto w = arr->Write(t0, 2, SectorData('t'));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  EXPECT_GE(arr->stats().transient_rejects, 1u);
  EXPECT_GE(arr->stats().retries, 1u);
  EXPECT_EQ(arr->stats().member_deaths, 0u);
  EXPECT_EQ(arr->health(), ArrayDevice::Health::kOptimal);
  // Both replicas hold the write despite the outage window.
  EXPECT_EQ(arr->member(0).stats().host_written_sectors, 1u);
  EXPECT_EQ(arr->member(1).stats().host_written_sectors, 1u);
}

// ---------------------------------------------------------------------------
// Online rebuild
// ---------------------------------------------------------------------------

/// Kills member 0 at `t`+1 (tripped by a dummy write) and returns the ack
/// time of that write.
SimTime KillPrimary(ArrayDevice& arr, SimTime t) {
  arr.fault_injector().KillMemberAt(0, t + 1);
  const auto w = arr.Write(t + 2, 0, std::string(arr.sector_size(), 'k'));
  EXPECT_TRUE(w.status.ok());
  return w.done;
}

TEST(ArrayRebuild, CompletesRestoresRedundancyAndData) {
  ArrayConfig ac;
  ac.rebuild_batch_sectors = 8;
  ac.rebuild_interval_ns = 20 * kMicrosecond;
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ac);
  SimTime t = 0;
  for (Lpn l = 0; l < 10; ++l) {
    t = arr->Write(t, l, SectorData(static_cast<char>('a' + l))).done;
  }
  t = KillPrimary(*arr, t);
  ASSERT_EQ(arr->health(), ArrayDevice::Health::kDegraded);

  ASSERT_TRUE(arr->StartRebuild(t, 0).ok());
  EXPECT_TRUE(arr->rebuild_active());
  int guard = 0;
  while (arr->rebuild_active() && ++guard < 100000) {
    t += 1 * kMillisecond;
    arr->PumpRebuild(t);
  }
  ASSERT_FALSE(arr->rebuild_active());
  EXPECT_EQ(arr->stats().rebuilds_completed, 1u);
  EXPECT_EQ(arr->health(), ArrayDevice::Health::kOptimal);
  EXPECT_FALSE(arr->degraded());
  EXPECT_EQ(arr->rebuild_cursor(), arr->member(0).num_sectors());

  // Reads now come from the rebuilt member 0 again — and must see
  // everything, including the write that rode through the failover.
  const SimTime tr = std::max(t, arr->rebuild_last_batch_done()) + 1;
  std::string out;
  ASSERT_TRUE(arr->Read(tr, 0, 1, &out).status.ok());
  EXPECT_EQ(out, std::string(arr->sector_size(), 'k'));
  for (Lpn l = 1; l < 10; ++l) {
    std::string o;
    ASSERT_TRUE(arr->Read(tr + l, l, 1, &o).status.ok()) << l;
    EXPECT_EQ(o, SectorData(static_cast<char>('a' + l))) << l;
  }
  EXPECT_GT(arr->member(0).stats().host_reads, 0u);
}

TEST(ArrayRebuild, RateLimiterBoundsCopyProgress) {
  ArrayConfig ac;
  ac.rebuild_batch_sectors = 4;
  ac.rebuild_interval_ns = 1 * kMillisecond;
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ac);
  SimTime t = arr->Write(0, 0, SectorData('s')).done;
  t = KillPrimary(*arr, t);
  ASSERT_TRUE(arr->StartRebuild(t, 0).ok());
  // Pump 5ms of virtual time: at 4 sectors per >=1ms batch the copy cannot
  // have moved more than ~6 batches' worth.
  arr->PumpRebuild(t + 5 * kMillisecond);
  EXPECT_LE(arr->stats().rebuild_copied_sectors, 6u * 4u);
  EXPECT_GT(arr->stats().rebuild_copied_sectors, 0u);
  EXPECT_TRUE(arr->rebuild_active());
}

TEST(ArrayRebuild, StripedArrayRejectsRebuild) {
  auto arr = MakeStripedArray(SsdConfig::Tiny(true), 2, ArrayConfig{});
  const Status s = arr->StartRebuild(0, 0);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
}

TEST(ArrayRebuild, AutoRebuildStartsOnDeath) {
  ArrayConfig ac;
  ac.auto_rebuild = true;
  ac.rebuild_batch_sectors = 8;
  ac.rebuild_interval_ns = 20 * kMicrosecond;
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ac);
  SimTime t = arr->Write(0, 1, SectorData('q')).done;
  t = KillPrimary(*arr, t);
  // The next command notices the dead slot and hot-swaps the spare in.
  t = arr->Write(t + 1, 2, SectorData('r')).done;
  EXPECT_TRUE(arr->rebuild_active());
  EXPECT_EQ(arr->stats().rebuilds_started, 1u);
}

// ---------------------------------------------------------------------------
// The acceptance sweep: 60 power-cut instants across a rebuild window.
// Zero acknowledged sectors may be lost — checked against the survivor
// right after recovery AND against the rebuilt member once the resumed
// copy completes (the divergence-rewind machinery is what this bites on).
// ---------------------------------------------------------------------------

TEST(ArrayRebuildCrash, SixtyInstantPowerCutSweepLosesNoAckedSector) {
  int cuts_mid_rebuild = 0;
  for (int inst = 0; inst < 60; ++inst) {
    SCOPED_TRACE("instant " + std::to_string(inst));
    ArrayConfig ac;
    ac.rebuild_batch_sectors = 4;
    ac.rebuild_interval_ns = 30 * kMicrosecond;
    auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ac);
    const uint32_t ss = arr->sector_size();

    // Oracle: an acknowledged write must never be lost, but a write the cut
    // left UN-acknowledged may legitimately have reached durable media
    // before power died (torn-write semantics) — so a sector may read back
    // as its last acked value or any un-acked overwrite issued after it.
    // Anything OLDER than the acked value is a real loss.
    std::map<Lpn, std::string> acked;
    std::map<Lpn, std::vector<std::string>> maybe;
    SimTime t = 0;
    auto put = [&](Lpn l, char tag) {
      const std::string d(ss, tag);
      const auto w = arr->Write(t, l, d);
      if (w.status.ok()) {
        acked[l] = d;
        maybe[l].clear();
        t = w.done;
      } else {
        maybe[l].push_back(d);
      }
      return w.status.ok();
    };
    auto legal = [&](Lpn l, const std::string& out) {
      if (out == acked[l]) return true;
      for (const std::string& m : maybe[l]) {
        if (out == m) return true;
      }
      return false;
    };

    for (Lpn l = 0; l < 12; ++l) {
      ASSERT_TRUE(put(l, static_cast<char>('a' + l)));
    }
    t = KillPrimary(*arr, t);
    acked[0] = std::string(ss, 'k');  // KillPrimary's ride-through write.
    maybe[0].clear();
    ASSERT_TRUE(arr->StartRebuild(t, 0).ok());

    // Arm the cut somewhere across the rebuild + foreground window.
    const SimTime cut = t + (inst + 1) * 120 * kMicrosecond;
    arr->SchedulePowerCut(cut);

    // Foreground overwrites hammer the already-copied region (divergence
    // bait) and fresh sectors alike until the cut trips.
    for (int i = 0; i < 200 && arr->powered(); ++i) {
      t += 40 * kMicrosecond;
      put(static_cast<Lpn>(i % 16), static_cast<char>('A' + i % 26));
    }
    if (arr->powered()) {
      arr->CancelScheduledPowerCut();
      arr->PowerCut(std::max(cut, t));
    }
    if (arr->rebuild_active() && arr->rebuild_cursor() > 0 &&
        arr->rebuild_cursor() < arr->member(0).num_sectors()) {
      cuts_mid_rebuild++;
    }

    arr->PowerOn();

    // Every acked sector must read back — first from the survivor.
    SimTime tr = 1;
    for (const auto& [l, d] : acked) {
      std::string out;
      const auto r = arr->Read(tr, l, 1, &out);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      ASSERT_TRUE(legal(l, out))
          << "lpn " << l << " (survivor view): got '" << out[0]
          << "', acked '" << d[0] << "'";
      tr = r.done;
    }

    // Resume the rebuild to completion, then verify again: reads now come
    // from the rebuilt member, which must be byte-identical.
    int guard = 0;
    while (arr->rebuild_active() && ++guard < 100000) {
      tr += 1 * kMillisecond;
      arr->PumpRebuild(tr);
    }
    ASSERT_FALSE(arr->rebuild_active());
    tr = std::max(tr, arr->rebuild_last_batch_done()) + 1;
    for (const auto& [l, d] : acked) {
      std::string out;
      const auto r = arr->Read(tr, l, 1, &out);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      ASSERT_TRUE(legal(l, out))
          << "lpn " << l << " (rebuilt-primary view): got '" << out[0]
          << "', acked '" << d[0] << "'";
      tr = r.done;
    }
  }
  // The sweep must actually have exercised mid-rebuild cuts.
  EXPECT_GT(cuts_mid_rebuild, 5);
}

// ---------------------------------------------------------------------------
// Async path + metrics
// ---------------------------------------------------------------------------

TEST(ArrayAsync, SubmitPollSurfacesFailoverResults) {
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ArrayConfig{});
  const std::string d = SectorData('u');
  const CmdId id =
      arr->Submit(0, BlockDevice::Command::MakeWrite(11, Slice(d)));
  const auto c = arr->Await(id);
  EXPECT_TRUE(c.status.ok());
  EXPECT_GT(c.done, 0);

  arr->fault_injector().KillMemberAt(0, c.done + 1);
  std::string out;
  const CmdId id2 = arr->Submit(
      c.done + 2, BlockDevice::Command::MakeRead(11, 1, &out));
  const auto c2 = arr->Await(id2);
  EXPECT_TRUE(c2.status.ok()) << c2.status.ToString();
  EXPECT_EQ(out, d);
  EXPECT_GE(arr->stats().redirected_reads, 1u);
}

TEST(ArrayMetrics, CountersTrackFailoverActivity) {
  auto arr = MakeMirroredArray(SsdConfig::Tiny(true), 2, ArrayConfig{});
  const auto w = arr->Write(0, 1, SectorData('c'));
  arr->fault_injector().KillMemberAt(0, w.done + 1);
  std::string out;
  ASSERT_TRUE(arr->Read(w.done + 2, 1, 1, &out).status.ok());
  const auto& c = arr->metrics().counters();
  EXPECT_EQ(c.at("array.member_deaths"), 1u);
  EXPECT_GE(c.at("array.redirected_reads"), 1u);
  EXPECT_EQ(c.at("array.retries"), 0u);
}

}  // namespace
}  // namespace durassd
