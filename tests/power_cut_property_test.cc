// Property-style sweeps: power is cut at MANY different virtual instants
// spread across a random workload's execution, and for every cut instant
// the device-level ACID-ish invariants are checked:
//
//   Durable cache (DuraSSD):
//     P1  every sector whose write command was acknowledged before the cut
//         reads back exactly as written (durability),
//     P2  every other sector reads back as its previous acknowledged value
//         or zeros (atomicity — never torn, never garbage),
//     P3  recovery is idempotent under an immediate second failure.
//
//   Volatile cache (SSD-A model):
//     P4  flushed prefixes survive,
//     P5  anything can be missing after the last flush — but what *is*
//         readable is either an acknowledged value or zeros or (only in
//         exposure windows) a detectably-torn page.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;
constexpr uint32_t kLpns = 24;  // Small space => frequent overwrites.

std::string Value(uint64_t version) {
  std::string v = "ver-" + std::to_string(version) + "-";
  v.resize(kSector, 'q');
  return v;
}

struct AckEvent {
  SimTime ack;
  Lpn lpn;
  uint64_t version;
};

/// Replays a deterministic random single-sector write history on a fresh
/// device, stopping at the first op issued at or after `stop_issuing_at`
/// (0 = run everything). Power can only be cut at the execution frontier —
/// never "in the past" — like in the physical world.
std::vector<AckEvent> RunHistory(SsdDevice* dev, uint64_t seed, int ops,
                                 SimTime stop_issuing_at, SimTime* end) {
  Random rng(seed);
  std::vector<AckEvent> events;
  SimTime t = 0;
  for (int i = 0; i < ops; ++i) {
    if (stop_issuing_at != 0 && t >= stop_issuing_at) break;
    const Lpn lpn = rng.Uniform(kLpns);
    const auto w = dev->Write(t, lpn, Value(i));
    EXPECT_TRUE(w.status.ok());
    t = w.done;
    events.push_back({w.done, lpn, static_cast<uint64_t>(i)});
  }
  *end = t;
  return events;
}

/// Latest acknowledged version of each LPN strictly before `cut`.
std::map<Lpn, uint64_t> AckedStateAt(const std::vector<AckEvent>& events,
                                     SimTime cut) {
  std::map<Lpn, uint64_t> state;
  for (const AckEvent& e : events) {
    if (e.ack <= cut) state[e.lpn] = e.version;
  }
  return state;
}

class DurablePowerCutSweep : public ::testing::TestWithParam<int> {};

// 16 cut points spread across the run (fractional positions 1/17..16/17).
INSTANTIATE_TEST_SUITE_P(CutPoints, DurablePowerCutSweep,
                         ::testing::Range(1, 17));

TEST_P(DurablePowerCutSweep, AckedWritesDurableAndAtomic) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  SsdDevice dev(cfg);

  // Dry run to learn the total duration, then a real run that stops
  // issuing at the cut fraction.
  SimTime total = 0;
  {
    SsdDevice probe(cfg);
    RunHistory(&probe, 1234, 120, 0, &total);
  }
  const SimTime cut = total * GetParam() / 17 + GetParam();  // Off-grid.
  SimTime end = 0;
  const std::vector<AckEvent> events =
      RunHistory(&dev, 1234, 120, cut, &end);

  dev.PowerCut(std::max(cut, end > 0 ? events.back().ack - 1 : cut));
  dev.PowerOn();

  const std::map<Lpn, uint64_t> expected = AckedStateAt(events, cut);
  for (Lpn lpn = 0; lpn < kLpns; ++lpn) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, lpn, 1, &got).status.ok());
    auto it = expected.find(lpn);
    if (it != expected.end()) {
      // P1: exactly the last acknowledged value.
      EXPECT_EQ(got, Value(it->second))
          << "lpn " << lpn << " cut " << cut << " (durability)";
    } else {
      // P2: never written before the cut (or only un-acked): zeros.
      EXPECT_EQ(got, std::string(kSector, '\0'))
          << "lpn " << lpn << " cut " << cut << " (atomicity)";
    }
  }
  EXPECT_EQ(dev.stats().capacitor_overruns, 0u);
}

TEST_P(DurablePowerCutSweep, RecoveryIdempotentUnderSecondFailure) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  SsdDevice dev(cfg);

  SimTime total = 0;
  {
    SsdDevice probe(cfg);
    RunHistory(&probe, 77, 100, 0, &total);
  }
  const SimTime cut = total * GetParam() / 17 + 3;
  SimTime end = 0;
  const std::vector<AckEvent> events = RunHistory(&dev, 77, 100, cut, &end);

  dev.PowerCut(cut);
  dev.PowerOn();
  dev.PowerCut(1);  // P3: fail again immediately after boot.
  dev.PowerOn();

  const std::map<Lpn, uint64_t> expected = AckedStateAt(events, cut);
  for (const auto& [lpn, version] : expected) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, lpn, 1, &got).status.ok());
    EXPECT_EQ(got, Value(version)) << "lpn " << lpn << " cut " << cut;
  }
}

// --------------------------- Faulty-media sweep -----------------------------

/// Same P1-P3 invariants, but the NAND now misbehaves: every read carries
/// raw bit errors (mean 1.5 + wear), and programs/erases fail with nonzero
/// probability. The ECC budget is sized so an uncorrectable read is
/// essentially impossible; everything else (read retries, program retries,
/// grown bad blocks, dump-page failures) must be fully absorbed by the
/// device without losing a single acknowledged write.
SsdConfig FaultyTinyConfig() {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  cfg.faults.seed = 0xFA171E5ull;
  cfg.faults.read_bit_flip_mean = 1.5;
  cfg.faults.read_bit_flip_per_erase = 0.05;
  cfg.faults.program_fail_rate = 0.01;
  cfg.faults.erase_fail_rate = 0.005;
  cfg.ecc_correctable_bits = 24;  // P(Poisson(~1.5) > 24) ~ 0.
  return cfg;
}

class FaultyDurablePowerCutSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(CutPoints, FaultyDurablePowerCutSweep,
                         ::testing::Range(1, 17));

TEST_P(FaultyDurablePowerCutSweep, AckedWritesDurableUnderMediaFaults) {
  const SsdConfig cfg = FaultyTinyConfig();
  SsdDevice dev(cfg);

  SimTime total = 0;
  {
    SsdDevice probe(cfg);
    RunHistory(&probe, 1234, 120, 0, &total);
  }
  const SimTime cut = total * GetParam() / 17 + GetParam();
  SimTime end = 0;
  const std::vector<AckEvent> events =
      RunHistory(&dev, 1234, 120, cut, &end);

  dev.PowerCut(std::max(cut, end > 0 ? events.back().ack - 1 : cut));
  dev.PowerOn();

  const std::map<Lpn, uint64_t> expected = AckedStateAt(events, cut);
  for (Lpn lpn = 0; lpn < kLpns; ++lpn) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, lpn, 1, &got).status.ok());
    auto it = expected.find(lpn);
    if (it != expected.end()) {
      EXPECT_EQ(got, Value(it->second))
          << "lpn " << lpn << " cut " << cut << " (durability under faults)";
    } else {
      EXPECT_EQ(got, std::string(kSector, '\0'))
          << "lpn " << lpn << " cut " << cut << " (atomicity under faults)";
    }
  }
  EXPECT_EQ(dev.stats().capacitor_overruns, 0u);
  const SsdDevice::FaultStats fs = dev.fault_stats();
  EXPECT_EQ(fs.uncorrectable_reads, 0u);
  EXPECT_GT(fs.ecc_corrected, 0u);  // The fault model really was active.
}

TEST_P(FaultyDurablePowerCutSweep, RecoveryIdempotentUnderMediaFaults) {
  const SsdConfig cfg = FaultyTinyConfig();
  SsdDevice dev(cfg);

  SimTime total = 0;
  {
    SsdDevice probe(cfg);
    RunHistory(&probe, 77, 100, 0, &total);
  }
  const SimTime cut = total * GetParam() / 17 + 3;
  SimTime end = 0;
  const std::vector<AckEvent> events = RunHistory(&dev, 77, 100, cut, &end);

  dev.PowerCut(cut);
  dev.PowerOn();
  dev.PowerCut(1);  // Second failure right after boot, faults still live.
  dev.PowerOn();

  const std::map<Lpn, uint64_t> expected = AckedStateAt(events, cut);
  for (const auto& [lpn, version] : expected) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, lpn, 1, &got).status.ok());
    EXPECT_EQ(got, Value(version)) << "lpn " << lpn << " cut " << cut;
  }
  EXPECT_EQ(dev.fault_stats().uncorrectable_reads, 0u);
}

class VolatilePowerCutSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(CutPoints, VolatilePowerCutSweep,
                         ::testing::Range(1, 9));

TEST_P(VolatilePowerCutSweep, FlushedPrefixSurvivesRestIsSane) {
  SsdConfig cfg = SsdConfig::Tiny(false);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  SsdDevice dev(cfg);

  // Write a batch, flush, write another batch, cut at a param-dependent
  // point after the flush.
  Random rng(GetParam());
  std::map<Lpn, uint64_t> flushed;
  SimTime t = 0;
  for (int i = 0; i < 40; ++i) {
    const Lpn lpn = rng.Uniform(kLpns);
    const auto w = dev.Write(t, lpn, Value(i));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
    flushed[lpn] = i;
  }
  const auto f = dev.Flush(t);
  ASSERT_TRUE(f.status.ok());
  t = f.done;

  std::map<Lpn, uint64_t> after;
  for (int i = 40; i < 70; ++i) {
    const Lpn lpn = rng.Uniform(kLpns);
    const auto w = dev.Write(t, lpn, Value(i));
    t = w.done;
    after[lpn] = i;
  }
  const SimTime cut = f.done + (t - f.done) * GetParam() / 9 + 1;
  dev.PowerCut(cut);
  dev.PowerOn();

  for (const auto& [lpn, version] : flushed) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, lpn, 1, &got).status.ok());
    // P4/P5: the flushed value survives unless a post-flush overwrite of
    // this lpn... which on this volatile model rolls back to the flushed
    // value. Either way we must read an acknowledged value, never garbage.
    bool acceptable = got == Value(version);
    if (!acceptable) {
      auto it = after.find(lpn);
      if (it != after.end()) acceptable = got == Value(it->second);
    }
    EXPECT_TRUE(acceptable) << "lpn " << lpn << " cut " << cut;
  }
}

// --------------------------- Write-amplification property ------------------

class WriteAmpSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, WriteAmpSweep, ::testing::Values(1, 2, 3));

TEST_P(WriteAmpSweep, PairingKeepsAmplificationBounded) {
  // Random single-sector writes over a bounded space: the 4KB pairing
  // (two sectors per 8KB program) must keep WA near 1 before GC, and
  // bounded (< 3) even with heavy GC churn.
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 48;
  cfg.geometry.pages_per_block = 16;
  cfg.over_provision = 0.2;
  cfg.store_data = false;
  SsdDevice dev(cfg);

  Random rng(GetParam());
  const uint64_t span = dev.num_sectors() / 2;
  const std::string payload(kSector, 'w');
  SimTime t = 0;
  for (int i = 0; i < 12000; ++i) {
    const auto w = dev.Write(t, rng.Uniform(span), payload);
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  EXPECT_GT(dev.ftl().stats().gc_runs, 0u);  // Churn really happened.
  EXPECT_LT(dev.WriteAmplification(), 3.0);
  EXPECT_GE(dev.WriteAmplification(), 0.95);
}

}  // namespace
}  // namespace durassd
