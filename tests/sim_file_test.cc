#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

class SimFileTest : public ::testing::Test {
 protected:
  static SsdConfig DeviceConfig() {
    SsdConfig c = SsdConfig::Tiny(true);
    c.geometry.blocks_per_plane = 256;
    c.geometry.pages_per_block = 32;  // ~200 MiB usable.
    return c;
  }
  static SimFileSystem::Options FsOptions() {
    SimFileSystem::Options o;
    o.chunk_sectors = 64;
    return o;
  }

  SimFileTest() : dev_(DeviceConfig()) {
    fs_ = std::make_unique<SimFileSystem>(&dev_, FsOptions());
  }

  SsdDevice dev_;
  std::unique_ptr<SimFileSystem> fs_;
};

TEST_F(SimFileTest, OpenCreatesAndReopensSameFile) {
  SimFile* a = fs_->Open("x");
  SimFile* b = fs_->Open("x");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(fs_->Exists("x"));
  EXPECT_FALSE(fs_->Exists("y"));
}

TEST_F(SimFileTest, WholeSectorWriteReadRoundTrip) {
  SimFile* f = fs_->Open("f");
  const std::string data(8192, 'a');
  const auto w = f->Write(0, 0, data);
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(f->size(), 8192u);

  std::string out;
  const auto r = f->Read(w.done, 0, 8192, &out);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(out, data);
}

TEST_F(SimFileTest, UnalignedWriteReadModifyWrites) {
  SimFile* f = fs_->Open("f");
  const std::string base(4096, 'b');
  auto w = f->Write(0, 0, base);
  // Overwrite bytes 100..200 only.
  w = f->Write(w.done, 100, std::string(100, 'X'));
  ASSERT_TRUE(w.status.ok());

  std::string out;
  ASSERT_TRUE(f->Read(w.done, 0, 4096, &out).status.ok());
  EXPECT_EQ(out.substr(0, 100), std::string(100, 'b'));
  EXPECT_EQ(out.substr(100, 100), std::string(100, 'X'));
  EXPECT_EQ(out.substr(200), std::string(4096 - 200, 'b'));
}

TEST_F(SimFileTest, WriteSpanningChunkBoundary) {
  SimFile* f = fs_->Open("f");
  const uint64_t chunk_bytes =
      static_cast<uint64_t>(fs_->options().chunk_sectors) * 4096;
  // Tiny device: make sure the file can span two chunks.
  const std::string data(3 * 4096, 'c');
  const auto w = f->Write(0, chunk_bytes - 4096, data);
  ASSERT_TRUE(w.status.ok());
  std::string out;
  ASSERT_TRUE(
      f->Read(w.done, chunk_bytes - 4096, data.size(), &out).status.ok());
  EXPECT_EQ(out, data);
}

TEST_F(SimFileTest, ReadOfHoleReturnsZeros) {
  SimFile* f = fs_->Open("f");
  std::string out;
  const auto r = f->Read(0, 0, 4096, &out);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(out, std::string(4096, '\0'));
}

TEST_F(SimFileTest, SyncWithBarriersFlushesDevice) {
  SimFile* f = fs_->Open("f");
  const auto w = f->Write(0, 0, std::string(4096, 's'));
  const uint64_t before = dev_.stats().flushes;
  const auto s = f->Sync(w.done);
  ASSERT_TRUE(s.status.ok());
  EXPECT_GT(dev_.stats().flushes, before);
  EXPECT_GT(fs_->stats().flush_cmds, 0u);
}

TEST_F(SimFileTest, SyncWithoutBarriersSkipsFlush) {
  SimFileSystem::Options o = FsOptions();
  o.write_barriers = false;
  SimFileSystem nofs(&dev_, o);
  SimFile* f = nofs.Open("f");
  const auto w = f->Write(0, 0, std::string(4096, 's'));
  const auto s = f->Sync(w.done);
  ASSERT_TRUE(s.status.ok());
  EXPECT_EQ(nofs.stats().flush_cmds, 0u);
  // Nobarrier fsync is orders of magnitude cheaper.
  EXPECT_LT(s.done - w.done, 200 * kMicrosecond);
}

TEST_F(SimFileTest, NobarrierSyncSkipsJournalWhenMetadataClean) {
  SimFileSystem::Options o = FsOptions();
  o.write_barriers = false;
  SimFileSystem nofs(&dev_, o);
  SimFile* f = nofs.Open("f");
  ASSERT_TRUE(f->Allocate(16 * 4096).ok());  // Preallocate (fio-style).
  auto s = f->Sync(0);                       // Journals the allocation.
  const uint64_t journals = nofs.stats().journal_writes;
  // In-place write, no metadata change:
  const auto w = f->Write(s.done, 0, std::string(4096, 'z'));
  s = f->Sync(w.done);
  EXPECT_EQ(nofs.stats().journal_writes, journals);
}

TEST_F(SimFileTest, AllocateExtendsWithoutWrites) {
  SimFile* f = fs_->Open("f");
  ASSERT_TRUE(f->Allocate(64 * 4096).ok());
  EXPECT_EQ(f->size(), 64u * 4096);
  EXPECT_TRUE(f->metadata_dirty());
}

TEST_F(SimFileTest, TruncateShrinksLogicalSize) {
  SimFile* f = fs_->Open("f");
  ASSERT_TRUE(f->Write(0, 0, std::string(8192, 't')).status.ok());
  ASSERT_TRUE(f->Truncate(4096).ok());
  EXPECT_EQ(f->size(), 4096u);
}

TEST_F(SimFileTest, RenameMovesFile) {
  SimFile* f = fs_->Open("old");
  ASSERT_TRUE(f->Write(0, 0, std::string(4096, 'r')).status.ok());
  ASSERT_TRUE(fs_->Rename("old", "new").ok());
  EXPECT_FALSE(fs_->Exists("old"));
  ASSERT_TRUE(fs_->Exists("new"));
  std::string out;
  ASSERT_TRUE(fs_->Open("new")->Read(0, 0, 4096, &out).status.ok());
  EXPECT_EQ(out[0], 'r');
  EXPECT_TRUE(fs_->Rename("absent", "x").IsNotFound());
  EXPECT_FALSE(fs_->Rename("new", "new").ok());
}

TEST_F(SimFileTest, RemoveThenReopenIsEmpty) {
  SimFile* f = fs_->Open("f");
  ASSERT_TRUE(f->Write(0, 0, std::string(4096, 'd')).status.ok());
  ASSERT_TRUE(fs_->Remove("f").ok());
  SimFile* again = fs_->Open("f");
  EXPECT_EQ(again->size(), 0u);
}

TEST_F(SimFileTest, FsyncBatchingSharesDeviceFlushes) {
  SimFile* f = fs_->Open("f");
  // Three syncs whose arrival times overlap a queued flush should produce
  // fewer device flushes than syncs.
  auto w1 = f->Write(0, 0, std::string(4096, '1'));
  auto s1 = f->Sync(w1.done);
  auto w2 = f->Write(w1.done + 1000, 4096, std::string(4096, '2'));
  f->Sync(w2.done);
  auto w3 = f->Write(w1.done + 2000, 8192, std::string(4096, '3'));
  auto s3 = f->Sync(w3.done);
  EXPECT_EQ(fs_->stats().syncs, 3u);
  // s2 and s3 share the second flush window (group commit).
  EXPECT_LE(dev_.stats().flushes, 2u + 1u);
  EXPECT_GE(s3.done, s1.done);
}

TEST_F(SimFileTest, FileSystemFullReported) {
  SimFile* f = fs_->Open("big");
  // ~200 MiB device: allocating 10 GiB must fail.
  EXPECT_TRUE(f->Allocate(10 * kGiB).IsOutOfSpace());
}

}  // namespace
}  // namespace durassd
