#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "db/buffer_pool.h"
#include "db/double_write_buffer.h"
#include "db/page.h"
#include "db/wal.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPage = 4 * kKiB;

  BufferPoolTest() : dev_(Config()) {
    fs_ = std::make_unique<SimFileSystem>(&dev_, SimFileSystem::Options{});
    wal_ = std::make_unique<Wal>(fs_->Open("wal"), Wal::Options{});
    // 16 frames only: eviction pressure is immediate.
    pool_ = std::make_unique<BufferPool>(
        fs_->Open("data"), wal_.get(), nullptr,
        BufferPool::Options{16 * kPage, kPage, false, 0});
  }

  static SsdConfig Config() {
    SsdConfig c = SsdConfig::Tiny(true);
    c.geometry.blocks_per_plane = 128;
    c.geometry.pages_per_block = 32;
    return c;
  }

  /// Creates page `id` with a recognizable body and unpins it.
  void MakePage(PageId id, char fill) {
    auto ref = pool_->Fix(io_, id, /*create=*/true);
    ASSERT_TRUE(ref.ok());
    (*ref)->Format(id, PageType::kBTreeLeaf);
    std::string cell;
    cell.resize(2);
    const uint16_t len = 2 + 64;
    memcpy(cell.data(), &len, 2);
    cell.append(std::string(64, fill));
    ASSERT_TRUE((*ref)->InsertCell(0, cell));
    pool_->MarkDirty(id, 1, 0);
  }

  char PageFill(PageId id) {
    auto ref = pool_->Fix(io_, id, /*create=*/false);
    EXPECT_TRUE(ref.ok());
    if (!ref.ok()) return '?';
    return (*ref)->CellAt(0).data()[2];
  }

  IoContext io_;
  SsdDevice dev_;
  std::unique_ptr<SimFileSystem> fs_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, FixCreateThenHit) {
  MakePage(1, 'a');
  EXPECT_EQ(pool_->stats().misses, 1u);
  EXPECT_EQ(PageFill(1), 'a');
  EXPECT_EQ(pool_->stats().hits, 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackAndReloads) {
  for (PageId id = 0; id < 40; ++id) MakePage(id, 'a' + id % 26);
  EXPECT_GT(pool_->stats().evictions, 0u);
  EXPECT_GT(pool_->stats().dirty_evictions, 0u);
  // Evicted pages reload from the device with intact contents.
  for (PageId id = 0; id < 40; ++id) {
    EXPECT_EQ(PageFill(id), static_cast<char>('a' + id % 26)) << id;
  }
}

TEST_F(BufferPoolTest, PinPreventsEviction) {
  MakePage(0, 'p');
  auto pinned = pool_->Fix(io_, 0, false);
  ASSERT_TRUE(pinned.ok());
  // Flood the pool; page 0 must survive in memory.
  for (PageId id = 1; id < 64; ++id) MakePage(id, 'x');
  EXPECT_EQ((*pinned)->CellAt(0).data()[2], 'p');
  // And it was never evicted: fixing it again is a hit.
  const uint64_t misses = pool_->stats().misses;
  auto again = pool_->Fix(io_, 0, false);
  EXPECT_EQ(pool_->stats().misses, misses);
}

TEST_F(BufferPoolTest, NoStealKeepsTxnPagesResident) {
  MakePage(0, 't');
  pool_->MarkDirty(0, 1, /*txn=*/42);  // Owned by an active transaction.
  const uint64_t writes_before = dev_.stats().host_writes;
  for (PageId id = 1; id < 64; ++id) MakePage(id, 'x');
  // Page 0 was never written out (no-steal)...
  auto ref = pool_->Fix(io_, 0, false);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->CellAt(0).data()[2], 't');
  ref->Release();
  // ...until the transaction releases it.
  pool_->ClearOwner(0, 42);
  for (PageId id = 64; id < 96; ++id) MakePage(id, 'y');
  (void)writes_before;
  EXPECT_EQ(PageFill(0), 't');
}

TEST_F(BufferPoolTest, WalRuleLogBeforeData) {
  MakePage(0, 'w');
  const Lsn lsn = wal_->Append(WalRecord{WalRecordType::kPut, 1, 1, "k",
                                         "v", false, "", kInvalidLsn});
  pool_->MarkDirty(0, lsn, 0);
  EXPECT_EQ(wal_->written_lsn(), 0u);
  ASSERT_TRUE(pool_->FlushAll(io_).ok());
  // Flushing the page forced the log out first.
  EXPECT_GT(wal_->written_lsn(), 0u);
}

TEST_F(BufferPoolTest, FlushAllCleansEverything) {
  for (PageId id = 0; id < 10; ++id) MakePage(id, 'f');
  ASSERT_TRUE(pool_->FlushAll(io_).ok());
  const uint64_t evictions = pool_->stats().dirty_evictions;
  // After a flush, evictions need no further writes.
  for (PageId id = 10; id < 40; ++id) {
    auto ref = pool_->Fix(io_, id, true);
    ASSERT_TRUE(ref.ok());  // Clean frames reused without write-back.
  }
  EXPECT_EQ(pool_->stats().dirty_evictions, evictions);
}

TEST_F(BufferPoolTest, CorruptPageDetectedOnRead) {
  MakePage(3, 'c');
  ASSERT_TRUE(pool_->FlushAll(io_).ok());
  pool_->DropAllForCrash();
  // Corrupt the on-device bytes behind the pool's back.
  SimFile* data = fs_->Open("data");
  std::string garbage(kPage, 0x5A);
  ASSERT_TRUE(data->Write(io_.now, 3 * kPage, garbage).status.ok());

  auto ref = pool_->Fix(io_, 3, /*create=*/false);
  EXPECT_FALSE(ref.ok());
  EXPECT_TRUE(ref.status().IsCorruption());
}

TEST_F(BufferPoolTest, DoubleWritePendingImageServesReads) {
  DoubleWriteBuffer dwb(fs_->Open("dwb"), fs_->Open("data"),
                        DoubleWriteBuffer::Options{kPage, 8});
  BufferPool pool(fs_->Open("data"), wal_.get(), &dwb,
                  BufferPool::Options{16 * kPage, kPage, false, 0});
  // Dirty a page, let it go through the (batched, still pending) DWB.
  auto ref = pool.Fix(io_, 5, true);
  ASSERT_TRUE(ref.ok());
  (*ref)->Format(5, PageType::kBTreeLeaf);
  pool.MarkDirty(5, 1, 0);
  ref->Release();
  // Force the frame out: image now sits in the DWB's pending batch.
  for (PageId id = 100; id < 140; ++id) {
    auto r = pool.Fix(io_, id, true);
    ASSERT_TRUE(r.ok());
    (*r)->Format(id, PageType::kBTreeLeaf);
    pool.MarkDirty(id, 1, 0);
  }
  // Reading page 5 back must hit the pending image, not the stale home.
  auto back = pool.Fix(io_, 5, false);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->page_id(), 5u);
  EXPECT_EQ((*back)->type(), PageType::kBTreeLeaf);
}

TEST_F(BufferPoolTest, MissRatioReflectsWorkingSet) {
  for (PageId id = 0; id < 8; ++id) MakePage(id, 'm');
  for (int round = 0; round < 50; ++round) {
    for (PageId id = 0; id < 8; ++id) PageFill(id);
  }
  // Working set fits: the steady-state ratio collapses.
  EXPECT_LT(pool_->stats().MissRatio(), 0.05);
}

}  // namespace
}  // namespace durassd
