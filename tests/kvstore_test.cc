#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "db/io_context.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

class KvHarness {
 public:
  KvHarness(bool durable_cache, bool write_barriers, uint32_t batch_size) {
    SsdConfig dc =
        durable_cache ? SsdConfig::DuraSsd() : SsdConfig::SsdA();
    dc.geometry = FlashGeometry::Tiny();
    dc.geometry.blocks_per_plane = 256;
    dc.geometry.pages_per_block = 32;  // ~256 MiB raw.
    dc.write_buffer_sectors = 256;
    dc.cache_capacity_sectors = 1024;
    dc.capacitor_budget_bytes = 16 * kMiB;
    device_ = std::make_unique<SsdDevice>(dc);
    SimFileSystem::Options fso;
    fso.write_barriers = write_barriers;
    fs_ = std::make_unique<SimFileSystem>(device_.get(), fso);
    batch_size_ = batch_size;
  }

  Status OpenStore() {
    KvStore::Options o;
    o.batch_size = batch_size_;
    auto s = KvStore::Open(io_, fs_.get(), "bucket.couch", o);
    if (!s.ok()) return s.status();
    store_ = std::move(*s);
    return Status::OK();
  }

  void Crash() {
    store_.reset();
    device_->PowerCut(io_.now);
    device_->PowerOn();
    io_.now = 0;
  }

  KvStore* store() { return store_.get(); }
  IoContext& io() { return io_; }

 private:
  std::unique_ptr<SsdDevice> device_;
  std::unique_ptr<SimFileSystem> fs_;
  std::unique_ptr<KvStore> store_;
  uint32_t batch_size_;
  IoContext io_;
};

TEST(KvStoreTest, PutGetRoundTrip) {
  KvHarness h(true, true, 1);
  ASSERT_TRUE(h.OpenStore().ok());
  ASSERT_TRUE(h.store()->Put(h.io(), "doc1", "{\"a\":1}").ok());
  std::string v;
  ASSERT_TRUE(h.store()->Get(h.io(), "doc1", &v).ok());
  EXPECT_EQ(v, "{\"a\":1}");
  EXPECT_EQ(h.store()->doc_count(), 1u);
}

TEST(KvStoreTest, GetMissingNotFound) {
  KvHarness h(true, true, 1);
  ASSERT_TRUE(h.OpenStore().ok());
  std::string v;
  EXPECT_TRUE(h.store()->Get(h.io(), "nope", &v).IsNotFound());
}

TEST(KvStoreTest, UpdateReplacesDocument) {
  KvHarness h(true, true, 1);
  ASSERT_TRUE(h.OpenStore().ok());
  ASSERT_TRUE(h.store()->Put(h.io(), "k", "v1").ok());
  ASSERT_TRUE(h.store()->Put(h.io(), "k", "v2").ok());
  std::string v;
  ASSERT_TRUE(h.store()->Get(h.io(), "k", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(h.store()->doc_count(), 1u);
}

TEST(KvStoreTest, DeleteRemoves) {
  KvHarness h(true, true, 1);
  ASSERT_TRUE(h.OpenStore().ok());
  ASSERT_TRUE(h.store()->Put(h.io(), "k", "v").ok());
  ASSERT_TRUE(h.store()->Delete(h.io(), "k").ok());
  std::string v;
  EXPECT_TRUE(h.store()->Get(h.io(), "k", &v).IsNotFound());
  EXPECT_EQ(h.store()->doc_count(), 0u);
  EXPECT_TRUE(h.store()->Delete(h.io(), "k").IsNotFound());
}

TEST(KvStoreTest, ManyDocsSplitTree) {
  KvHarness h(true, true, 100);
  ASSERT_TRUE(h.OpenStore().ok());
  const std::string value(1024, 'd');  // YCSB-sized documents.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        h.store()->Put(h.io(), "user" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(h.store()->Commit(h.io()).ok());
  EXPECT_EQ(h.store()->doc_count(), 2000u);
  for (int i = 0; i < 2000; i += 37) {
    std::string v;
    ASSERT_TRUE(h.store()->Get(h.io(), "user" + std::to_string(i), &v).ok())
        << i;
    EXPECT_EQ(v.size(), value.size());
  }
}

TEST(KvStoreTest, RandomizedMatchesModel) {
  KvHarness h(true, true, 10);
  ASSERT_TRUE(h.OpenStore().ok());
  Random rng(23);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 4000; ++op) {
    const std::string key = "k" + std::to_string(rng.Uniform(300));
    if (rng.Bernoulli(0.7)) {
      const std::string value = "v" + std::to_string(rng.Next() % 10000);
      ASSERT_TRUE(h.store()->Put(h.io(), key, value).ok());
      model[key] = value;
    } else {
      const Status s = h.store()->Delete(h.io(), key);
      if (model.erase(key) > 0) {
        EXPECT_TRUE(s.ok());
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    }
  }
  EXPECT_EQ(h.store()->doc_count(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(h.store()->Get(h.io(), k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
}

TEST(KvStoreTest, BatchSizeControlsFsyncFrequency) {
  KvHarness h1(true, true, 1);
  KvHarness h100(true, true, 100);
  ASSERT_TRUE(h1.OpenStore().ok());
  ASSERT_TRUE(h100.OpenStore().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(h1.store()->Put(h1.io(), "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(
        h100.store()->Put(h100.io(), "k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(h1.store()->stats().commits, 200u);
  EXPECT_EQ(h100.store()->stats().commits, 2u);
  // Fewer fsyncs => dramatically less virtual time (Table 5's effect).
  EXPECT_LT(h100.io().now * 5, h1.io().now);
}

TEST(KvStoreTest, CommittedBatchesSurviveCrash) {
  KvHarness h(true, true, 10);
  ASSERT_TRUE(h.OpenStore().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.store()->Put(h.io(), "k" + std::to_string(i), "v").ok());
  }
  // 100 puts at batch 10 => all committed.
  h.Crash();
  ASSERT_TRUE(h.OpenStore().ok());
  EXPECT_EQ(h.store()->doc_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    std::string v;
    ASSERT_TRUE(h.store()->Get(h.io(), "k" + std::to_string(i), &v).ok())
        << i;
  }
}

TEST(KvStoreTest, UncommittedTailLostOnCrash) {
  KvHarness h(true, true, 100);
  ASSERT_TRUE(h.OpenStore().ok());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(h.store()->Put(h.io(), "k" + std::to_string(i), "v").ok());
  }
  // 150 puts at batch 100: one commit at 100; 50 in the tail.
  h.Crash();
  ASSERT_TRUE(h.OpenStore().ok());
  EXPECT_EQ(h.store()->doc_count(), 100u);
  std::string v;
  EXPECT_TRUE(h.store()->Get(h.io(), "k99", &v).ok());
  EXPECT_TRUE(h.store()->Get(h.io(), "k100", &v).IsNotFound());
}

TEST(KvStoreTest, VolatileNoBarrierLosesCommittedBatches) {
  // The Couchbase version of the paper's warning: barriers off on a
  // volatile device, commits evaporate.
  KvHarness h(false, false, 1);
  ASSERT_TRUE(h.OpenStore().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(h.store()->Put(h.io(), "k" + std::to_string(i), "v").ok());
  }
  h.Crash();
  ASSERT_TRUE(h.OpenStore().ok());
  EXPECT_LT(h.store()->doc_count(), 30u);
}

TEST(KvStoreTest, DuraSsdNoBarrierKeepsCommittedBatches) {
  KvHarness h(true, false, 1);
  ASSERT_TRUE(h.OpenStore().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(h.store()->Put(h.io(), "k" + std::to_string(i), "v").ok());
  }
  h.Crash();
  ASSERT_TRUE(h.OpenStore().ok());
  EXPECT_EQ(h.store()->doc_count(), 30u);
}

TEST(KvStoreTest, CompactionShrinksFileAndPreservesData) {
  KvHarness h(true, true, 50);
  ASSERT_TRUE(h.OpenStore().ok());
  const std::string value(512, 'c');
  // Overwrite a small key set many times: mostly garbage.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(h.store()
                      ->Put(h.io(), "k" + std::to_string(i),
                            value + std::to_string(round))
                      .ok());
    }
  }
  ASSERT_TRUE(h.store()->Commit(h.io()).ok());
  const uint64_t before = h.store()->file_bytes();
  ASSERT_TRUE(h.store()->Compact(h.io()).ok());
  EXPECT_LT(h.store()->file_bytes(), before / 4);
  for (int i = 0; i < 50; ++i) {
    std::string v;
    ASSERT_TRUE(h.store()->Get(h.io(), "k" + std::to_string(i), &v).ok());
    EXPECT_EQ(v, value + "19");
  }
  EXPECT_EQ(h.store()->stats().compactions, 1u);
}

TEST(KvStoreTest, CrashAfterCompactionRecovers) {
  KvHarness h(true, true, 10);
  ASSERT_TRUE(h.OpenStore().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.store()->Put(h.io(), "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(h.store()->Compact(h.io()).ok());
  h.Crash();
  ASSERT_TRUE(h.OpenStore().ok());
  EXPECT_EQ(h.store()->doc_count(), 100u);
}

TEST(KvStoreTest, EachUpdateRewritesRootToLeafPath) {
  // Sec. 4.3.3: an update appends the doc plus every node on the path.
  KvHarness h(true, true, 1000000);  // Never auto-commit.
  ASSERT_TRUE(h.OpenStore().ok());
  const std::string value(1024, 'p');
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(
        h.store()->Put(h.io(), "doc" + std::to_string(i), value).ok());
  }
  const uint64_t nodes_before = h.store()->stats().node_appends;
  ASSERT_TRUE(h.store()->Put(h.io(), "doc0", value).ok());
  const uint64_t path_nodes = h.store()->stats().node_appends - nodes_before;
  EXPECT_GE(path_nodes, 2u);  // Root + leaf at least.
  EXPECT_LE(path_nodes, 5u);
}

}  // namespace
}  // namespace durassd
