// Crash-consistency torture sweeps: the CrashHarness oracle across the
// configuration matrix (durable vs volatile cache x barriers x double-write
// x engine), fsync-mode sweeps, nested cuts during recovery, and cuts with
// NAND fault injection live.
//
// ctest runs every TEST in its own process, so coverage arithmetic cannot
// rely on cross-test state: the sweep lists below are file-scope constants
// shared by the sweep tests AND the pure-arithmetic coverage test, which
// asserts the acceptance floor of >= 200 (seed x cut x config) combos.
#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "sim/crash_harness.h"

namespace durassd {
namespace {

using Engine = CrashHarness::Engine;

// --------------------------- Shared sweep lists ----------------------------

constexpr uint64_t kSeeds[] = {1, 7, 13};
constexpr double kCuts[] = {0.15, 0.35, 0.55, 0.8};

struct DbConfig {
  bool durable;
  bool barriers;
  bool dwb;
};
constexpr DbConfig kDbConfigs[] = {
    {true, true, true},   {true, true, false},  {true, false, true},
    {true, false, false}, {false, true, true},  {false, true, false},
    {false, false, true}, {false, false, false},
};

struct KvConfig {
  bool durable;
  bool barriers;
  uint32_t batch;
};
constexpr KvConfig kKvConfigs[] = {
    {true, true, 1},  {true, true, 8},  {true, false, 1},  {true, false, 8},
    {false, true, 1}, {false, true, 8}, {false, false, 1}, {false, false, 8},
};

constexpr uint64_t kSyncSeeds[] = {3, 9};
constexpr double kSyncCuts[] = {0.2, 0.5, 0.85};

constexpr double kNestedCuts[] = {0.3, 0.7};   // x2 engines x durable/volatile
constexpr uint64_t kFaultSeeds[] = {5, 11, 17};  // x2 engines

constexpr uint64_t kBarrierSeeds[] = {2, 8, 19};
constexpr double kBarrierCuts[] = {0.2, 0.45, 0.7, 0.9};

constexpr size_t kDbMatrixCombos =
    std::size(kDbConfigs) * std::size(kSeeds) * std::size(kCuts);
constexpr size_t kKvMatrixCombos =
    std::size(kKvConfigs) * std::size(kSeeds) * std::size(kCuts);
constexpr size_t kSyncModeCombos =
    2 * std::size(kSyncSeeds) * std::size(kSyncCuts);  // durable x volatile
constexpr size_t kNestedCombos = 2 * 2 * std::size(kNestedCuts);
constexpr size_t kFaultCombos = 2 * std::size(kFaultSeeds);
// Barrier commit mode: engines x durable/volatile x seeds x cuts.
constexpr size_t kBarrierModeCombos =
    2 * 2 * std::size(kBarrierSeeds) * std::size(kBarrierCuts);
// Boundary-snapped cut instants: 2 modes x engines x seeds x cuts.
constexpr size_t kBoundaryCombos =
    2 * 2 * std::size(kBarrierSeeds) * std::size(kBarrierCuts);
constexpr size_t kBarrierFaultCombos = 2 * std::size(kBarrierSeeds);

TEST(CrashHarnessCoverage, SweepsAtLeastTwoHundredCombos) {
  constexpr size_t total = kDbMatrixCombos + kKvMatrixCombos +
                           kSyncModeCombos + kNestedCombos + kFaultCombos +
                           kBarrierModeCombos + kBoundaryCombos +
                           kBarrierFaultCombos;
  static_assert(total >= 200, "torture coverage shrank below the floor");
  EXPECT_GE(total, 200u) << "db=" << kDbMatrixCombos
                         << " kv=" << kKvMatrixCombos
                         << " sync=" << kSyncModeCombos
                         << " nested=" << kNestedCombos
                         << " fault=" << kFaultCombos
                         << " barrier=" << kBarrierModeCombos
                         << " boundary=" << kBoundaryCombos
                         << " barrier_fault=" << kBarrierFaultCombos;
}

// --------------------------- Helpers ---------------------------------------

CrashHarness::Options Quick() {
  CrashHarness::Options o;
  o.ops = 48;
  o.keyspace = 32;
  return o;
}

void ExpectClean(const CrashHarness::Options& o) {
  const CrashHarness::Report rep = CrashHarness::Run(o);
  std::string all;
  for (const std::string& v : rep.violations) all += "\n  " + v;
  EXPECT_TRUE(rep.ok) << o.ToString() << all;
}

// --------------------------- Database matrix -------------------------------

class DbMatrix : public ::testing::TestWithParam<int> {};

TEST_P(DbMatrix, SurvivesRandomizedCuts) {
  const DbConfig& c = kDbConfigs[GetParam()];
  for (uint64_t seed : kSeeds) {
    for (double cut : kCuts) {
      CrashHarness::Options o = Quick();
      o.engine = Engine::kDatabase;
      o.durable_cache = c.durable;
      o.write_barriers = c.barriers;
      o.double_write = c.dwb;
      o.seed = seed;
      o.cut_fraction = cut;
      ExpectClean(o);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, DbMatrix,
                         ::testing::Range(0, static_cast<int>(
                                                 std::size(kDbConfigs))));

// --------------------------- KvStore matrix --------------------------------

class KvMatrix : public ::testing::TestWithParam<int> {};

TEST_P(KvMatrix, SurvivesRandomizedCuts) {
  const KvConfig& c = kKvConfigs[GetParam()];
  for (uint64_t seed : kSeeds) {
    for (double cut : kCuts) {
      CrashHarness::Options o = Quick();
      o.engine = Engine::kKvStore;
      o.durable_cache = c.durable;
      o.write_barriers = c.barriers;
      o.kv_batch_size = c.batch;
      o.seed = seed;
      o.cut_fraction = cut;
      ExpectClean(o);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, KvMatrix,
                         ::testing::Range(0, static_cast<int>(
                                                 std::size(kKvConfigs))));

// --------------------------- fsync-mode sweep ------------------------------

// Commercial-RDBMS O_DSYNC mode (Sec. 4.3.2): fsync after every page write.
TEST(DbSyncModeSweep, SyncEveryPageWriteSurvivesCuts) {
  for (bool durable : {true, false}) {
    for (uint64_t seed : kSyncSeeds) {
      for (double cut : kSyncCuts) {
        CrashHarness::Options o = Quick();
        o.engine = Engine::kDatabase;
        o.durable_cache = durable;
        o.write_barriers = true;
        o.double_write = true;
        o.sync_every_page_write = true;
        o.seed = seed;
        o.cut_fraction = cut;
        ExpectClean(o);
      }
    }
  }
}

// --------------------------- Nested cuts -----------------------------------

// A second power cut lands in the middle of recovering from the first.
TEST(NestedCutSweep, RecoveryItselfIsCrashSafe) {
  for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
    for (bool durable : {true, false}) {
      for (double cut : kNestedCuts) {
        CrashHarness::Options o = Quick();
        o.engine = engine;
        o.durable_cache = durable;
        o.write_barriers = true;
        o.double_write = true;
        o.kv_batch_size = 4;
        o.seed = 21;
        o.cut_fraction = cut;
        o.nested_cut = true;
        ExpectClean(o);
      }
    }
  }
}

// --------------------------- Fault injection -------------------------------

// Power cuts with the NAND fault model live: bit errors within the ECC
// budget plus occasional program/erase failures. Invariants are unchanged —
// the device must absorb the faults.
TEST(FaultInjectionSweep, CutsUnderNandFaults) {
  for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
    for (uint64_t seed : kFaultSeeds) {
      CrashHarness::Options o = Quick();
      o.engine = engine;
      o.durable_cache = true;
      o.write_barriers = true;
      o.double_write = true;
      o.kv_batch_size = 4;
      o.seed = seed;
      o.cut_fraction = 0.45;
      o.inject_faults = true;
      ExpectClean(o);
    }
  }
}

// --------------------------- Barrier commit mode ---------------------------

// Engines committing via BARRIER submission instead of fsync. On the
// durable device the epoch machinery provides ordering (and the epoch
// oracle audits every cut); on the volatile device the barrier degenerates
// to a full fsync and the usual tier invariants apply unchanged.
TEST(BarrierModeSweep, SurvivesRandomizedCuts) {
  for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
    for (bool durable : {true, false}) {
      for (uint64_t seed : kBarrierSeeds) {
        for (double cut : kBarrierCuts) {
          CrashHarness::Options o = Quick();
          o.engine = engine;
          o.durable_cache = durable;
          o.write_barriers = true;
          o.double_write = true;
          o.kv_batch_size = 4;
          o.durability_mode = DurabilityMode::kBarrier;
          o.seed = seed;
          o.cut_fraction = cut;
          ExpectClean(o);
        }
      }
    }
  }
}

// Cuts snapped to barrier-seal / flush-completion instants enumerated from
// the probe-pass device trace — the exact moments the epoch changes hands,
// where an ordering bug would surface. Swept in both commit modes so flush
// boundaries are exercised too.
TEST(BarrierBoundarySweep, CutsAtEpochEdges) {
  for (DurabilityMode mode :
       {DurabilityMode::kDurableOrderedNcq, DurabilityMode::kBarrier}) {
    for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
      for (uint64_t seed : kBarrierSeeds) {
        for (double cut : kBarrierCuts) {
          CrashHarness::Options o = Quick();
          o.engine = engine;
          o.durable_cache = true;
          o.write_barriers = true;
          o.double_write = true;
          o.kv_batch_size = 4;
          o.durability_mode = mode;
          o.cut_at_barrier_boundary = true;
          o.seed = seed;
          o.cut_fraction = cut;
          ExpectClean(o);
        }
      }
    }
  }
}

// Barrier mode with the NAND fault model live: program failures force the
// destage scheduler to re-drive writes from already-sealed epochs; the
// epoch guarantee must hold regardless.
TEST(BarrierFaultSweep, CutsUnderNandFaults) {
  for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
    for (uint64_t seed : kBarrierSeeds) {
      CrashHarness::Options o = Quick();
      o.engine = engine;
      o.durable_cache = true;
      o.write_barriers = true;
      o.double_write = true;
      o.kv_batch_size = 4;
      o.durability_mode = DurabilityMode::kBarrier;
      o.inject_faults = true;
      o.seed = seed;
      o.cut_fraction = 0.55;
      ExpectClean(o);
    }
  }
}

// Negative self-test: forge a cross-epoch reordering into the recovered
// state and require the oracle to reject it. A clean report here would
// mean the oracle is blind to exactly the corruption barriers prevent.
TEST(BarrierOracleSelfTest, PlantedCrossEpochReorderIsRejected) {
  for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
    Tracer tracer;
    CrashHarness::Options o = Quick();
    o.engine = engine;
    o.durable_cache = true;
    o.write_barriers = true;
    o.double_write = true;
    o.kv_batch_size = 4;
    o.durability_mode = DurabilityMode::kBarrier;
    o.plant_epoch_reorder = true;
    o.seed = 23;
    o.cut_fraction = 0.9;  // Plenty of sealed commits to revert one of.
    o.tracer = &tracer;
    const CrashHarness::Report rep = CrashHarness::Run(o);
    EXPECT_FALSE(rep.ok) << o.ToString()
                         << "\n  oracle accepted a forged cross-epoch "
                            "reordering";
    EXPECT_FALSE(rep.violations.empty());
    bool traced = false;
    for (const TraceEvent& e : tracer.Events()) {
      if (e.type == TraceEventType::kInvariantViolation) traced = true;
    }
    EXPECT_TRUE(traced) << "violation not recorded in the tracer";
  }
}

// --------------------------- Report plumbing -------------------------------

TEST(CrashHarnessReport, IsDeterministicAndSelfDescribing) {
  CrashHarness::Options o = Quick();
  o.engine = Engine::kDatabase;
  o.seed = 42;
  o.cut_fraction = 0.5;
  const CrashHarness::Report a = CrashHarness::Run(o);
  const CrashHarness::Report b = CrashHarness::Run(o);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.cuts, b.cuts);
  EXPECT_EQ(a.recovery_attempts, b.recovery_attempts);
  EXPECT_EQ(a.commits_acked, b.commits_acked);
  EXPECT_EQ(a.snapshot_matched, b.snapshot_matched);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_GE(a.cuts, 1);
  // The reproducer string names every knob.
  const std::string repro = o.ToString();
  EXPECT_NE(repro.find("seed=42"), std::string::npos) << repro;
  EXPECT_NE(repro.find("cut_fraction="), std::string::npos) << repro;
}

TEST(CrashHarnessReport, ReproStringRoundTripsThroughFromString) {
  // Flip every representable knob away from its default, serialize, parse
  // back, and re-serialize: the two strings must be identical — this is
  // what makes a printed DURASSD_TORTURE_REPRO line trustworthy.
  CrashHarness::Options o;
  o.engine = Engine::kKvStore;
  o.durable_cache = false;
  o.write_barriers = false;
  o.double_write = false;
  o.sync_every_page_write = true;
  o.ordered_queue = false;
  o.log_structured_destage = true;
  o.checkpoint_queue_depth = 8;
  o.kv_batch_size = 16;
  o.seed = 987654321;
  o.ops = 37;
  o.ops_per_txn = 5;
  o.keyspace = 17;
  o.cut_fraction = 0.375;
  o.nested_cut = true;
  o.inject_faults = true;
  o.durability_mode = DurabilityMode::kBarrier;
  o.cut_at_barrier_boundary = true;
  o.plant_epoch_reorder = true;
  o.array_mirrors = 3;
  o.array_kill_fraction = 0.125;
  o.array_rebuild = true;
  const std::string line = o.ToString();
  const CrashHarness::Options back = CrashHarness::Options::FromString(line);
  EXPECT_EQ(back.ToString(), line);

  // And parsing the defaults' string gives back the defaults.
  const CrashHarness::Options d;
  EXPECT_EQ(CrashHarness::Options::FromString(d.ToString()).ToString(),
            d.ToString());
  // A parsed scenario runs identically to the original Options.
  CrashHarness::Options q = Quick();
  q.seed = 31;
  const auto a = CrashHarness::Run(q);
  const auto b = CrashHarness::Run(CrashHarness::Options::FromString(
      q.ToString()));
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.commits_acked, b.commits_acked);
  EXPECT_EQ(a.snapshot_matched, b.snapshot_matched);
}

TEST(ArrayHarness, MirroredFailoverWithRebuildSurvivesCut) {
  // The full-stack array scenario: engine on a mirrored pair, primary
  // killed mid-run with a hot-spare rebuild racing the power cut. The
  // kStrict oracle is unchanged — failover must be invisible to the engine.
  for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
    CrashHarness::Options o = Quick();
    o.engine = engine;
    o.seed = 11;
    o.cut_fraction = 0.6;
    o.array_mirrors = 2;
    o.array_kill_fraction = 0.3;
    o.array_rebuild = true;
    const CrashHarness::Report rep = CrashHarness::Run(o);
    EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? o.ToString()
                                                   : rep.violations[0]);
    EXPECT_TRUE(rep.recovered);
  }
}

TEST(CrashHarnessReport, RecordsViolationsInAttachedTracer) {
  // A healthy run records no kInvariantViolation events.
  Tracer tracer;
  CrashHarness::Options o = Quick();
  o.engine = Engine::kKvStore;
  o.seed = 4;
  o.cut_fraction = 0.6;
  o.tracer = &tracer;
  const CrashHarness::Report rep = CrashHarness::Run(o);
  EXPECT_TRUE(rep.ok);
  for (const TraceEvent& e : tracer.Events()) {
    EXPECT_NE(e.type, TraceEventType::kInvariantViolation);
  }
}

}  // namespace
}  // namespace durassd
