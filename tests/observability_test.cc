// Tests for the observability layer: histogram percentile math (property-
// checked against exact sorted-sample percentiles), MetricsRegistry,
// Tracer, the JSON writer/parser pair, the bench --json schema, the
// host_writes accounting fix, and the no-perturbation guarantee.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_json.h"
#include "common/histogram.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "db/database.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

// ---------------------------------------------------------------------------
// Histogram percentiles: property test against exact order statistics.

SimTime ExactPercentile(std::vector<SimTime> samples, double p) {
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 100) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(rank + 0.5)];
}

// The histogram buckets grow ~4% geometrically, so any reported percentile
// must sit within one bucket ratio of the exact order statistic.
void CheckPercentiles(const std::vector<SimTime>& samples) {
  Histogram h;
  for (SimTime s : samples) h.Record(s);
  ASSERT_EQ(h.count(), samples.size());
  for (double p : {0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const double exact = static_cast<double>(ExactPercentile(samples, p));
    const double got = static_cast<double>(h.Percentile(p));
    // 5% relative tolerance (bucket ratio ~4%) plus 2ns absolute slack for
    // the tiny-value buckets.
    EXPECT_NEAR(got, exact, 0.05 * exact + 2.0)
        << "p=" << p << " exact=" << exact << " got=" << got;
    EXPECT_GE(h.Percentile(p), h.min()) << "p=" << p;
    EXPECT_LE(h.Percentile(p), h.max()) << "p=" << p;
  }
}

TEST(HistogramPropertyTest, UniformSamples) {
  Random rng(11);
  std::vector<SimTime> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(static_cast<SimTime>(rng.Uniform(10 * kMillisecond)) + 1);
  }
  CheckPercentiles(samples);
}

TEST(HistogramPropertyTest, LogNormalSamples) {
  Random rng(12);
  std::vector<SimTime> samples;
  for (int i = 0; i < 20000; ++i) {
    // Box-Muller normal, exponentiated: spans ~1us..100ms like real fsync
    // latency tails.
    const double u1 = rng.NextDouble() + 1e-12;
    const double u2 = rng.NextDouble();
    const double n = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530718 * u2);
    samples.push_back(static_cast<SimTime>(std::exp(13.0 + 1.5 * n)) + 1);
  }
  CheckPercentiles(samples);
}

TEST(HistogramPropertyTest, PointMass) {
  // Every sample identical: all percentiles must equal that value exactly
  // (the pre-fix code reported the bucket upper bound instead).
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(123456);
  for (double p : {0.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 123456) << "p=" << p;
  }
}

TEST(HistogramPropertyTest, TwoPointMass) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(1000);
  for (int i = 0; i < 10; ++i) h.Record(1000000);
  EXPECT_EQ(h.Percentile(50), 1000);
  EXPECT_EQ(h.Percentile(99), 1000000);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000000);
}

TEST(HistogramEdgeTest, MergeIntoEmptyAndReset) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 100; ++i) b.Record(i * 1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
  EXPECT_EQ(a.Percentile(50), b.Percentile(50));

  // Merging an empty histogram changes nothing.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());

  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 0);
  EXPECT_EQ(a.Percentile(50), 0);

  // A reset histogram records fresh samples correctly (stale min/max gone).
  a.Record(777);
  EXPECT_EQ(a.min(), 777);
  EXPECT_EQ(a.max(), 777);
  EXPECT_EQ(a.Percentile(50), 777);
}

TEST(HistogramEdgeTest, ZeroAndNegativeClampedSafely) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.max(), 0);
}

// ---------------------------------------------------------------------------
// JSON writer + parser.

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter w;
  w.BeginObject();
  w.Key("iops");
  w.Double(1234.5);
  w.Key("ok");
  w.Bool(true);
  w.Key("tags");
  w.BeginArray();
  w.String("a");
  w.Int(-3);
  w.Null();
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("n");
  w.Uint(7);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"iops\":1234.5,\"ok\":true,\"tags\":[\"a\",-3,null],"
            "\"nested\":{\"n\":7}}");
}

TEST(JsonWriterTest, EscapesControlAndQuotes) {
  JsonWriter w;
  w.BeginObject();
  w.Key("k\"ey");
  w.String("line1\nline2\ttab\\slash");
  w.EndObject();
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &v));
  const JsonValue* s = v.Find("k\"ey");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->AsString(), "line1\nline2\ttab\\slash");
}

TEST(JsonParserTest, ParsesScalarsAndRejectsMalformed) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("[1, -2.5, 1e3, true, false, null, \"x\"]", &v));
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.AsArray().size(), 7u);
  EXPECT_DOUBLE_EQ(v.AsArray()[1].AsDouble(), -2.5);
  EXPECT_DOUBLE_EQ(v.AsArray()[2].AsDouble(), 1000.0);
  EXPECT_TRUE(v.AsArray()[3].AsBool());
  EXPECT_EQ(v.AsArray()[6].AsString(), "x");

  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &v));
  EXPECT_FALSE(JsonValue::Parse("[1,", &v));
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing", &v));
  EXPECT_FALSE(JsonValue::Parse("", &v));
}

TEST(JsonRoundTripTest, WriterOutputAlwaysParses) {
  JsonWriter w;
  w.BeginObject();
  w.Key("raw");
  w.Raw("{\"pre\":[1,2]}");
  w.Key("d");
  w.Double(0.1);
  w.EndObject();
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &v));
  const JsonValue* raw = v.Find("raw");
  ASSERT_NE(raw, nullptr);
  ASSERT_NE(raw->Find("pre"), nullptr);
  EXPECT_EQ(raw->Find("pre")->AsArray().size(), 2u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

TEST(MetricsRegistryTest, StablePointersAndIdempotentRegistration) {
  MetricsRegistry m;
  MetricCounter* c = m.Counter("ssd.writes");
  *c = 5;
  // Registering more metrics must not move existing nodes (std::map).
  for (int i = 0; i < 100; ++i) m.Counter("pad." + std::to_string(i));
  EXPECT_EQ(m.Counter("ssd.writes"), c);
  EXPECT_EQ(*m.Counter("ssd.writes"), 5u);

  MetricGauge* g = m.Gauge("ssd.util");
  *g = 0.75;
  EXPECT_EQ(m.Gauge("ssd.util"), g);

  Histogram* h = m.GetHistogram("ssd.lat_ns");
  h->Record(100);
  EXPECT_EQ(m.GetHistogram("ssd.lat_ns"), h);
  EXPECT_EQ(m.histograms().at("ssd.lat_ns").count(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesEverythingPointersSurvive) {
  MetricsRegistry m;
  MetricCounter* c = m.Counter("c");
  MetricGauge* g = m.Gauge("g");
  Histogram* h = m.GetHistogram("h");
  *c = 9;
  *g = 3.5;
  h->Record(42);
  m.Reset();
  EXPECT_EQ(*c, 0u);
  EXPECT_EQ(*g, 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Pointers still live and usable.
  ++*c;
  EXPECT_EQ(m.counters().at("c"), 1u);
}

TEST(MetricsRegistryTest, SnapshotJsonParsesWithAllSections) {
  MetricsRegistry m;
  *m.Counter("a.count") = 3;
  *m.Gauge("a.gauge") = 1.5;
  m.GetHistogram("a.lat")->Record(1000);
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(m.ToJson(), &v));
  ASSERT_NE(v.Find("counters"), nullptr);
  ASSERT_NE(v.Find("gauges"), nullptr);
  ASSERT_NE(v.Find("histograms"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("counters")->Find("a.count")->AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(v.Find("gauges")->Find("a.gauge")->AsDouble(), 1.5);
  const JsonValue* h = v.Find("histograms")->Find("a.lat");
  ASSERT_NE(h, nullptr);
  for (const char* key : {"count", "mean", "min", "p25", "p50", "p75", "p90",
                          "p99", "p999", "max"}) {
    EXPECT_NE(h->Find(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(h->Find("count")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(h->Find("p50")->AsDouble(), 1000.0);
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(TracerTest, RecordsTypedEventsInOrder) {
  Tracer t(16);
  t.Record(10, TraceEventType::kCmdStart, 5, 8);
  t.Record(20, TraceEventType::kCmdAck, 5, 8);
  const auto events = t.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].t, 10);
  EXPECT_EQ(events[0].type, TraceEventType::kCmdStart);
  EXPECT_EQ(events[0].a0, 5u);
  EXPECT_EQ(events[0].a1, 8u);
  EXPECT_EQ(events[1].type, TraceEventType::kCmdAck);
  EXPECT_EQ(t.recorded(), 2u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, RingWrapDropsOldestKeepsNewest) {
  Tracer t(8);
  for (uint64_t i = 0; i < 20; ++i) {
    t.Record(static_cast<SimTime>(i), TraceEventType::kWalAppend, i, 0);
  }
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  const auto events = t.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest retained is #12, newest is #19, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a0, 12 + i);
  }
}

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t(8);
  t.set_enabled(false);
  t.Record(1, TraceEventType::kFsync, 0, 0);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.size(), 0u);
  t.set_enabled(true);
  t.Record(2, TraceEventType::kFsync, 0, 0);
  EXPECT_EQ(t.recorded(), 1u);
}

TEST(TracerTest, JsonlExportOneValidObjectPerLine) {
  Tracer t(8);
  t.Record(100, TraceEventType::kFlushStart, 3, 0);
  t.Record(250, TraceEventType::kFlushDone, 150, 3);
  std::string out;
  t.AppendJsonl(&out);
  std::istringstream lines(out);
  std::string line;
  std::vector<JsonValue> parsed;
  while (std::getline(lines, line)) {
    JsonValue v;
    ASSERT_TRUE(JsonValue::Parse(line, &v)) << line;
    parsed.push_back(v);
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].Find("type")->AsString(),
            TraceEventTypeName(TraceEventType::kFlushStart));
  EXPECT_DOUBLE_EQ(parsed[0].Find("t")->AsDouble(), 100.0);
  EXPECT_DOUBLE_EQ(parsed[1].Find("a0")->AsDouble(), 150.0);
}

TEST(TracerTest, DegradedModeEventNamesAreStable) {
  // The trace schema is an external contract (JSONL consumers key on these
  // strings): the degraded-mode events must keep their names.
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kDegraded), "degraded");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kTxnAbort), "txn_abort");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kInvariantViolation),
               "invariant_violation");
}

TEST(MetricsRegistryTest, DegradedModeCountersRegisteredUpFront) {
  // Device side: both counters exist (at zero) from construction, so a
  // metrics scrape sees the schema before anything degrades.
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 128;  // Room for the default DB layout.
  cfg.geometry.pages_per_block = 32;
  SsdDevice dev(cfg);
  const auto& c = dev.metrics().counters();
  ASSERT_NE(c.find("ftl.degraded_entries"), c.end());
  ASSERT_NE(c.find("ssd.degraded_rejects"), c.end());
  EXPECT_EQ(c.at("ftl.degraded_entries"), 0u);
  EXPECT_EQ(c.at("ssd.degraded_rejects"), 0u);

  // Engine side, same contract.
  SimFileSystem fs(&dev, SimFileSystem::Options{});
  IoContext io;
  auto db = Database::Open(io, &fs, &fs, Database::Options{});
  ASSERT_TRUE(db.ok());
  const auto& dc = (*db)->metrics().counters();
  ASSERT_NE(dc.find("db.degraded_aborts"), dc.end());
  EXPECT_EQ(dc.at("db.degraded_aborts"), 0u);

  auto kv = KvStore::Open(io, &fs, "obs.couch", KvStore::Options{});
  ASSERT_TRUE(kv.ok());
  const auto& kc = (*kv)->metrics().counters();
  ASSERT_NE(kc.find("kv.degraded_aborts"), kc.end());
  EXPECT_EQ(kc.at("kv.degraded_aborts"), 0u);
}

TEST(TracerTest, DeviceEmitsCmdAndFlushEvents) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  Tracer tracer(1 << 12);
  dev.set_tracer(&tracer);
  const std::string data(cfg.sector_size, 'x');
  SimTime t = 0;
  for (Lpn l = 0; l < 4; ++l) t = dev.Write(t, l, data).done;
  t = dev.Flush(t).done;
  std::string payload;
  dev.Read(t, 0, 1, &payload);

  uint64_t starts = 0, acks = 0, flush_starts = 0, flush_dones = 0, reads = 0;
  for (const TraceEvent& e : tracer.Events()) {
    switch (e.type) {
      case TraceEventType::kCmdStart: starts++; break;
      case TraceEventType::kCmdAck: acks++; break;
      case TraceEventType::kFlushStart: flush_starts++; break;
      case TraceEventType::kFlushDone: flush_dones++; break;
      case TraceEventType::kReadStart: reads++; break;
      default: break;
    }
  }
  EXPECT_EQ(starts, 4u);
  EXPECT_EQ(acks, 4u);
  EXPECT_EQ(flush_starts, 1u);
  EXPECT_EQ(flush_dones, 1u);
  EXPECT_EQ(reads, 1u);
}

TEST(TracerTest, DeviceRegistersLatencyHistograms) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  const std::string data(cfg.sector_size, 'x');
  SimTime t = 0;
  for (Lpn l = 0; l < 8; ++l) t = dev.Write(t, l, data).done;
  const auto& hists = dev.metrics().histograms();
  ASSERT_NE(hists.find("ssd.ncq_wait_ns"), hists.end());
  ASSERT_NE(hists.find("ssd.fw_ns"), hists.end());
  EXPECT_EQ(hists.at("ssd.fw_ns").count(), 8u);
  ASSERT_NE(hists.find("ftl.program_ns"), hists.end());
}

// ---------------------------------------------------------------------------
// Bench --json schema.

TEST(BenchJsonTest, DocumentMatchesSchema) {
  Histogram lat;
  for (int i = 1; i <= 100; ++i) lat.Record(i * 1000);
  MetricsRegistry reg;
  *reg.Counter("db.commits") = 42;

  BenchJson json("unit_test_bench", "", true);
  json.Config("ops", uint64_t{1000}).Config("threads", uint64_t{4});
  BenchResult row("cfg=a");
  row.Param("barriers", true)
      .Throughput(9876.5, "iops")
      .LatencyNs(lat)
      .Value("write_amplification", 1.25)
      .Metrics(reg);
  json.Add(std::move(row));

  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(json.Document(), &v));
  EXPECT_DOUBLE_EQ(v.Find("schema_version")->AsDouble(), 1.0);
  EXPECT_EQ(v.Find("bench")->AsString(), "unit_test_bench");
  EXPECT_TRUE(v.Find("quick")->AsBool());
  EXPECT_DOUBLE_EQ(v.Find("config")->Find("ops")->AsDouble(), 1000.0);
  ASSERT_TRUE(v.Find("results")->is_array());
  ASSERT_EQ(v.Find("results")->AsArray().size(), 1u);

  const JsonValue& r = v.Find("results")->AsArray()[0];
  EXPECT_EQ(r.Find("name")->AsString(), "cfg=a");
  EXPECT_TRUE(r.Find("params")->Find("barriers")->AsBool());
  EXPECT_DOUBLE_EQ(r.Find("throughput")->Find("value")->AsDouble(), 9876.5);
  EXPECT_EQ(r.Find("throughput")->Find("unit")->AsString(), "iops");
  const JsonValue* l = r.Find("latency_ns");
  ASSERT_NE(l, nullptr);
  EXPECT_DOUBLE_EQ(l->Find("count")->AsDouble(), 100.0);
  // p50 of 1k..100k uniform grid: within one bucket of 50000.
  EXPECT_NEAR(l->Find("p50")->AsDouble(), 50000.0, 3000.0);
  EXPECT_DOUBLE_EQ(r.Find("values")->Find("write_amplification")->AsDouble(),
                   1.25);
  EXPECT_DOUBLE_EQ(r.Find("metrics")->Find("counters")->Find("db.commits")
                       ->AsDouble(), 42.0);
  // Sections not populated are absent, not null.
  EXPECT_EQ(r.Find("device"), nullptr);
}

TEST(BenchJsonTest, DeviceSectionHasStatsFaultsMetrics) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  const std::string data(cfg.sector_size, 'x');
  dev.Write(0, 0, data);

  BenchJson json("dev_bench", "", false);
  BenchResult row("only");
  row.Device(dev);
  json.Add(std::move(row));
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(json.Document(), &v));
  const JsonValue& r = v.Find("results")->AsArray()[0];
  const JsonValue* d = r.Find("device");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->Find("stats")->Find("host_writes")->AsDouble(), 1.0);
  EXPECT_NE(d->Find("faults")->Find("program_fails"), nullptr);
  EXPECT_NE(d->Find("metrics")->Find("histograms"), nullptr);
}

TEST(BenchJsonTest, PathFromArgsBothForms) {
  const char* a1[] = {"bin", "--quick", "--json", "/tmp/x.json"};
  EXPECT_EQ(BenchJson::PathFromArgs(4, const_cast<char**>(a1)), "/tmp/x.json");
  const char* a2[] = {"bin", "--json=/tmp/y.json"};
  EXPECT_EQ(BenchJson::PathFromArgs(2, const_cast<char**>(a2)), "/tmp/y.json");
  const char* a3[] = {"bin", "--quick"};
  EXPECT_EQ(BenchJson::PathFromArgs(2, const_cast<char**>(a3)), "");
  // Trailing --json with no value is ignored, not an out-of-bounds read.
  const char* a4[] = {"bin", "--json"};
  EXPECT_EQ(BenchJson::PathFromArgs(2, const_cast<char**>(a4)), "");
}

// ---------------------------------------------------------------------------
// host_writes accounting fix: failed writes must not count.

TEST(WriteAccountingTest, FailedWriteThroughProgramDoesNotCount) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.cache_enabled = false;  // Write-through: program before ack.
  cfg.program_retry_limit = 0;  // First program failure surfaces to host.
  SsdDevice dev(cfg);
  const std::string data(cfg.sector_size, 'x');

  dev.fault_injector().FailProgramAfter(0);
  const auto fail = dev.Write(0, 0, data);
  ASSERT_FALSE(fail.status.ok());
  EXPECT_EQ(dev.stats().host_writes, 0u);
  EXPECT_EQ(dev.stats().host_written_sectors, 0u);

  // A subsequent successful write counts exactly once.
  const auto ok = dev.Write(fail.done, 0, data);
  ASSERT_TRUE(ok.status.ok());
  EXPECT_EQ(dev.stats().host_writes, 1u);
  EXPECT_EQ(dev.stats().host_written_sectors, 1u);
}

TEST(WriteAccountingTest, SuccessfulWritesCountSectors) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  const std::string data(2 * cfg.sector_size, 'x');
  SimTime t = 0;
  for (int i = 0; i < 3; ++i) t = dev.Write(t, 0, data).done;
  EXPECT_EQ(dev.stats().host_writes, 3u);
  EXPECT_EQ(dev.stats().host_written_sectors, 6u);
}

// ---------------------------------------------------------------------------
// Read-cache accounting: every host-read sector is either a hit or a miss.

TEST(ReadAccountingTest, HitsPlusMissesEqualHostReadSectors) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);
  const std::string data(cfg.sector_size, 'r');
  SimTime t = 0;
  for (Lpn l = 0; l < 6; ++l) t = dev.Write(t, l, data).done;

  std::string out;
  // Full hit: both sectors resident.
  ASSERT_TRUE(dev.Read(t, 0, 2, &out).status.ok());
  // Full miss: never written (unmapped reads count as misses too).
  ASSERT_TRUE(dev.Read(t, 40, 2, &out).status.ok());
  // Partial: one resident sector, one unwritten.
  ASSERT_TRUE(dev.Read(t, 5, 2, &out).status.ok());

  const SsdDevice::Stats& s = dev.stats();
  EXPECT_EQ(s.host_read_sectors, 6u);
  EXPECT_EQ(s.cache_read_hits + s.cache_read_misses, s.host_read_sectors);
  EXPECT_EQ(s.cache_read_hits, 3u);
  EXPECT_EQ(s.cache_read_misses, 3u);
  EXPECT_EQ(s.cache_full_hits, 1u);
  EXPECT_EQ(s.cache_partial_hits, 1u);

  // The MetricsRegistry mirrors are registered up front and agree.
  const auto& c = dev.metrics().counters();
  ASSERT_NE(c.find("ssd.cache_read_sectors"), c.end());
  ASSERT_NE(c.find("ssd.cache_read_misses"), c.end());
  ASSERT_NE(c.find("ssd.log_segments"), c.end());
  EXPECT_EQ(c.at("ssd.cache_read_sectors"), s.cache_read_hits);
  EXPECT_EQ(c.at("ssd.cache_read_misses"), s.cache_read_misses);
}

// ---------------------------------------------------------------------------
// No-perturbation guarantee: observability never advances virtual time.

TEST(NoPerturbationTest, TracedRunIsBitIdenticalToUntracedRun) {
  FioJob job;
  job.threads = 8;
  job.ops = 4000;
  job.block_bytes = 4 * kKiB;
  job.working_set_bytes = 8 * kMiB;

  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.store_data = false;

  SsdDevice plain(cfg);
  const FioResult base = RunFio(&plain, job);

  SsdDevice traced(cfg);
  Tracer tracer(1 << 14);
  traced.set_tracer(&tracer);
  const FioResult instrumented = RunFio(&traced, job);

  // Virtual-time results must be bit-identical with tracing attached and
  // every metrics histogram recording.
  EXPECT_EQ(instrumented.duration, base.duration);
  EXPECT_DOUBLE_EQ(instrumented.iops, base.iops);
  EXPECT_EQ(instrumented.latency.count(), base.latency.count());
  EXPECT_EQ(instrumented.latency.min(), base.latency.min());
  EXPECT_EQ(instrumented.latency.max(), base.latency.max());
  EXPECT_EQ(instrumented.latency.Percentile(99), base.latency.Percentile(99));
  EXPECT_EQ(traced.stats().host_written_sectors,
            plain.stats().host_written_sectors);

  // The instrumented run actually observed something.
  EXPECT_GT(tracer.recorded(), 0u);
  EXPECT_GT(traced.metrics().histograms().at("ssd.ncq_wait_ns").count(), 0u);
}

}  // namespace
}  // namespace durassd
