#include <gtest/gtest.h>

#include <memory>

#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "sim/client_scheduler.h"
#include "ssd/device_factory.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/fiosim.h"
#include "workloads/keys.h"
#include "workloads/linkbench.h"
#include "workloads/tpcc.h"
#include "workloads/ycsb.h"

namespace durassd {
namespace {

// --------------------------- keys -----------------------------------------

TEST(KeysTest, BigEndianOrderMatchesNumericOrder) {
  EXPECT_LT(KeyU64(1), KeyU64(2));
  EXPECT_LT(KeyU64(255), KeyU64(256));
  EXPECT_LT(KeyU64(0xFFFF), KeyU64(0x10000));
  EXPECT_LT(KeyU64U32(5, 9), KeyU64U32(6, 0));
  EXPECT_LT(KeyU64U32U64(1, 2, 3), KeyU64U32U64(1, 2, 4));
  EXPECT_LT(KeyU64U32U64(1, 2, 0xFFFFFFFFFFull), KeyU64U32U64(1, 3, 0));
}

// --------------------------- ClientScheduler ------------------------------

TEST(ClientSchedulerTest, RunsExactOpCount) {
  uint64_t count = 0;
  const auto fn = [&](uint32_t, SimTime now) {
    count++;
    return now + kMillisecond;
  };
  const auto r = ClientScheduler::Run(4, 100, 0, fn);
  EXPECT_EQ(r.ops, 100u);
  EXPECT_EQ(count, 100u);
  // 100 ops over 4 clients at 1ms each => makespan 25ms.
  EXPECT_EQ(r.makespan, 25 * kMillisecond);
  EXPECT_NEAR(r.OpsPerSecond(), 4000.0, 1.0);
}

TEST(ClientSchedulerTest, ResumesEarliestClientFirst) {
  std::vector<uint32_t> order;
  const auto fn = [&](uint32_t client, SimTime now) {
    order.push_back(client);
    // Client 0 is slow, others fast: after the first round, client 0
    // should appear less often.
    return now + (client == 0 ? 10 * kMillisecond : kMillisecond);
  };
  ClientScheduler::Run(2, 12, 0, fn);
  int c0 = 0;
  for (uint32_t c : order) c0 += (c == 0);
  EXPECT_LT(c0, 4);
}

TEST(ClientSchedulerTest, HonorsStartTime) {
  SimTime first = -1;
  const auto fn = [&](uint32_t, SimTime now) {
    if (first < 0) first = now;
    return now + kMillisecond;
  };
  const auto r = ClientScheduler::Run(1, 5, 7 * kSecond, fn);
  EXPECT_EQ(first, 7 * kSecond);
  EXPECT_EQ(r.makespan, 5 * kMillisecond);  // Start excluded.
}

// --------------------------- fiosim ---------------------------------------

TEST(FioSimTest, FsyncFrequencyMonotonicallyImprovesIops) {
  double prev = 0;
  for (uint32_t every : {1u, 16u, 0u}) {
    auto dev = MakeDevice(DeviceModel::kDuraSsd, true, false);
    FioJob job;
    job.ops = 2000;
    job.fsync_every = every;
    const double iops = RunFio(dev.get(), job).iops;
    EXPECT_GT(iops, prev);
    prev = iops;
  }
}

TEST(FioSimTest, NoBarrierBeatsBarrierAtFsync1) {
  auto dev1 = MakeDevice(DeviceModel::kDuraSsd, true, false);
  auto dev2 = MakeDevice(DeviceModel::kDuraSsd, true, false);
  FioJob job;
  job.ops = 2000;
  job.fsync_every = 1;
  job.write_barriers = true;
  const double with_barrier = RunFio(dev1.get(), job).iops;
  job.write_barriers = false;
  const double without = RunFio(dev2.get(), job).iops;
  EXPECT_GT(without, with_barrier * 10);  // Table 1's headline effect.
}

TEST(FioSimTest, ReadsScaleWithThreads) {
  auto dev1 = MakeDevice(DeviceModel::kDuraSsd, true, false);
  auto dev128 = MakeDevice(DeviceModel::kDuraSsd, true, false);
  FioJob job;
  job.mode = FioJob::Mode::kRandRead;
  job.ops = 5000;
  job.threads = 1;
  const double single = RunFio(dev1.get(), job).iops;
  job.threads = 128;
  const double many = RunFio(dev128.get(), job).iops;
  EXPECT_GT(many, single * 3);
}

TEST(FioSimTest, SmallerPagesGiveHigherReadIops) {
  double prev = 0;
  for (uint32_t block : {16u * kKiB, 8u * kKiB, 4u * kKiB}) {
    auto dev = MakeDevice(DeviceModel::kDuraSsd, true, false);
    FioJob job;
    job.mode = FioJob::Mode::kRandRead;
    job.block_bytes = block;
    job.threads = 128;
    job.ops = 5000;
    const double iops = RunFio(dev.get(), job).iops;
    EXPECT_GT(iops, prev);  // Table 2's page-size effect.
    prev = iops;
  }
}

// --------------------------- LinkBench ------------------------------------

struct DbFixture {
  DbFixture(bool barriers, bool dwb, uint32_t page_size = 4096) {
    SsdConfig dc = SsdConfig::DuraSsd();
    dc.geometry = FlashGeometry::Tiny();
    dc.geometry.blocks_per_plane = 256;
    dc.geometry.pages_per_block = 32;
    device = std::make_unique<SsdDevice>(dc);
    SimFileSystem::Options fso;
    fso.write_barriers = barriers;
    fs = std::make_unique<SimFileSystem>(device.get(), fso);
    Database::Options dbo;
    dbo.page_size = page_size;
    dbo.pool_bytes = 2 * kMiB;
    dbo.double_write = dwb;
    auto opened = Database::Open(io, fs.get(), fs.get(), dbo);
    EXPECT_TRUE(opened.ok());
    db = std::move(*opened);
  }
  IoContext io;
  std::unique_ptr<SsdDevice> device;
  std::unique_ptr<SimFileSystem> fs;
  std::unique_ptr<Database> db;
};

TEST(LinkBenchTest, LoadsAndRunsAllOpTypes) {
  DbFixture f(false, false);
  LinkBench::Config lc;
  lc.num_nodes = 2000;
  lc.clients = 8;
  lc.requests = 3000;
  LinkBench bench(f.db.get(), lc);
  ASSERT_TRUE(bench.Load(f.io).ok());
  auto result = bench.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ops, 3000u);
  EXPECT_GT(result->tps, 0);
  // All ten operation types exercised at this request count.
  EXPECT_EQ(result->latencies.size(),
            static_cast<size_t>(LinkOp::kNumOps));
  uint64_t total = 0;
  for (const auto& [op, hist] : result->latencies) total += hist.count();
  EXPECT_EQ(total, 3000u);
}

TEST(LinkBenchTest, BarriersOffIsFaster) {
  double tps[2];
  for (int barriers = 0; barriers < 2; ++barriers) {
    DbFixture f(barriers == 1, true);
    LinkBench::Config lc;
    lc.num_nodes = 2000;
    lc.clients = 16;
    lc.requests = 2000;
    LinkBench bench(f.db.get(), lc);
    ASSERT_TRUE(bench.Load(f.io).ok());
    tps[barriers] = (*bench.Run()).tps;
  }
  EXPECT_GT(tps[0], tps[1]);  // OFF faster than ON.
}

TEST(LinkBenchTest, OpNamesAndMixAreComplete) {
  for (int i = 0; i < static_cast<int>(LinkOp::kNumOps); ++i) {
    EXPECT_STRNE(LinkOpName(static_cast<LinkOp>(i)), "?");
  }
  EXPECT_FALSE(LinkOpIsWrite(LinkOp::kGetLinkList));
  EXPECT_TRUE(LinkOpIsWrite(LinkOp::kAddLink));
}

// --------------------------- YCSB -----------------------------------------

TEST(YcsbTest, RunsAgainstKvStore) {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.geometry = FlashGeometry::Tiny();
  dc.geometry.blocks_per_plane = 256;
  dc.geometry.pages_per_block = 32;
  SsdDevice dev(dc);
  SimFileSystem fs(&dev, SimFileSystem::Options{});
  IoContext io;
  KvStore::Options ko;
  ko.batch_size = 10;
  auto store = KvStore::Open(io, &fs, "y.couch", ko);
  ASSERT_TRUE(store.ok());

  Ycsb::Config yc;
  yc.records = 2000;
  yc.operations = 3000;
  Ycsb bench(store->get(), yc);
  ASSERT_TRUE(bench.Load(io).ok());
  auto result = bench.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->ops_per_sec, 0);
  EXPECT_GT(result->read_latency.count(), 0u);
  EXPECT_GT(result->update_latency.count(), 0u);
  EXPECT_EQ(result->read_latency.count() + result->update_latency.count(),
            3000u);
}

TEST(YcsbTest, LargerBatchIsFaster) {
  double ops[2];
  int i = 0;
  for (uint32_t batch : {1u, 50u}) {
    SsdConfig dc = SsdConfig::DuraSsd();
    dc.geometry = FlashGeometry::Tiny();
    dc.geometry.blocks_per_plane = 256;
    dc.geometry.pages_per_block = 32;
    SsdDevice dev(dc);
    SimFileSystem fs(&dev, SimFileSystem::Options{});
    IoContext io;
    KvStore::Options ko;
    ko.batch_size = batch;
    auto store = KvStore::Open(io, &fs, "y.couch", ko);
    Ycsb::Config yc;
    yc.records = 1000;
    yc.operations = 1500;
    yc.update_fraction = 1.0;
    Ycsb bench(store->get(), yc);
    ASSERT_TRUE(bench.Load(io).ok());
    ops[i++] = (*bench.Run()).ops_per_sec;
  }
  EXPECT_GT(ops[1], ops[0] * 3);  // Table 5's effect.
}

// --------------------------- TPC-C -----------------------------------------

TEST(TpccTest, LoadsAndRunsAllTransactionTypes) {
  DbFixture f(false, false);
  Tpcc::Config tc;
  tc.warehouses = 2;
  tc.items = 500;
  tc.customers_per_district = 30;
  tc.clients = 8;
  tc.transactions = 2000;
  Tpcc bench(f.db.get(), tc);
  ASSERT_TRUE(bench.Load(f.io).ok());
  auto result = bench.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->tpmc, 0);
  // ~45% of 2000 transactions are NewOrders.
  EXPECT_NEAR(static_cast<double>(result->new_orders), 900.0, 150.0);
  EXPECT_GT(result->new_order_latency.count(), 0u);
}

TEST(TpccTest, BarrierOffBeatsBarrierOn) {
  double tpmc[2];
  for (int barriers = 0; barriers < 2; ++barriers) {
    DbFixture f(barriers == 1, false);
    Tpcc::Config tc;
    tc.warehouses = 2;
    tc.items = 500;
    tc.customers_per_district = 30;
    tc.clients = 8;
    tc.transactions = 1000;
    Tpcc bench(f.db.get(), tc);
    ASSERT_TRUE(bench.Load(f.io).ok());
    tpmc[barriers] = (*bench.Run()).tpmc;
  }
  EXPECT_GT(tpmc[0], tpmc[1] * 2);  // Table 4's effect.
}

}  // namespace
}  // namespace durassd
