#include "tier/tiered_device.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/crash_harness.h"
#include "ssd/ssd_config.h"

namespace durassd {
namespace {

constexpr uint32_t kSs = 4 * kKiB;

std::string SectorData(char fill) { return std::string(kSs, fill); }

/// A small tier for unit tests: ~192 flash cache slots (Tiny geometry)
/// over a 1024-sector (4 MiB) HDD capacity tier.
TieredConfig SmallTier(bool store_data = true) {
  TieredConfig tc;
  tc.flash = SsdConfig::Tiny(/*durable=*/true);
  tc.flash.store_data = store_data;
  tc.capacity_is_hdd = true;
  tc.capacity_hdd.num_sectors = 1024;
  tc.capacity_hdd.write_cache_sectors = 64;
  tc.flash_pct = 25.0;
  tc.destage_batch = 16;
  tc.destage_idle_ns = 500 * kMicrosecond;
  tc.destage_idle_min = 4;
  tc.free_reserve_slots = 8;
  tc.evict_batch = 8;
  return tc;
}

TEST(TieredDevice, ReportsTierProperties) {
  auto tier = MakeTieredDevice(SmallTier());
  EXPECT_EQ(tier->num_sectors(), 1024u);  // Host sees the capacity tier.
  EXPECT_TRUE(tier->supports_atomic_write());
  EXPECT_TRUE(tier->has_durable_cache());
  EXPECT_TRUE(tier->ordered_writes());
  EXPECT_FALSE(tier->supports_barrier());
  EXPECT_GT(tier->cache_slots(), 100u);
  EXPECT_LT(tier->cache_slots(), tier->num_sectors());
  EXPECT_GE(tier->map_ring_pages(), 8u);
}

TEST(TieredDevice, WriteReadRoundTripThroughFlash) {
  auto tier = MakeTieredDevice(SmallTier());
  const auto w = tier->Write(0, 7, SectorData('a'));
  ASSERT_TRUE(w.status.ok());
  std::string out;
  const auto r = tier->Read(w.done, 7, 1, &out);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(out, SectorData('a'));
  EXPECT_EQ(tier->stats().tier_read_hits, 1u);
  EXPECT_EQ(tier->stats().tier_read_misses, 0u);
}

TEST(TieredDevice, UnwrittenSectorsReadZerosFromCapacity) {
  auto tier = MakeTieredDevice(SmallTier());
  std::string out;
  ASSERT_TRUE(tier->Read(0, 500, 1, &out).status.ok());
  EXPECT_EQ(out, SectorData('\0'));
  EXPECT_EQ(tier->stats().tier_read_misses, 1u);
}

TEST(TieredDevice, MultiSectorReadMixesHitAndMissRuns) {
  auto tier = MakeTieredDevice(SmallTier());
  SimTime t = 0;
  t = tier->Write(t, 10, SectorData('x')).done;
  t = tier->Write(t, 12, SectorData('y')).done;
  // Sectors 10..13: 10 and 12 are cached, 11 and 13 come from capacity.
  std::string out;
  const auto r = tier->Read(t, 10, 4, &out);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(out.substr(0, kSs), SectorData('x'));
  EXPECT_EQ(out.substr(kSs, kSs), SectorData('\0'));
  EXPECT_EQ(out.substr(2 * kSs, kSs), SectorData('y'));
  EXPECT_EQ(out.substr(3 * kSs, kSs), SectorData('\0'));
  EXPECT_EQ(tier->stats().tier_read_hits, 2u);
  EXPECT_EQ(tier->stats().tier_read_misses, 2u);
}

TEST(TieredDevice, ReadMissAdmitsAndSecondReadHits) {
  auto tier = MakeTieredDevice(SmallTier());
  // Plant data directly on the capacity member (a cold sector).
  auto& cap = tier->capacity_tier();
  SimTime t = cap.Write(0, 42, SectorData('c')).done;
  t = cap.Flush(t).done;

  std::string out;
  const auto r1 = tier->Read(t, 42, 1, &out);
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(out, SectorData('c'));
  EXPECT_EQ(tier->stats().tier_read_misses, 1u);
  EXPECT_EQ(tier->stats().admitted_sectors, 1u);

  const auto r2 = tier->Read(r1.done + kMicrosecond, 42, 1, &out);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(out, SectorData('c'));
  EXPECT_EQ(tier->stats().tier_read_hits, 1u);
  // Flash serves the admitted copy much faster than the disk fetched it.
  EXPECT_LT(r2.done - (r1.done + kMicrosecond), (r1.done - t) / 4);
}

TEST(TieredDevice, GroupDestageCoalescesSortedVictimsIntoOneRun) {
  TieredConfig tc = SmallTier();
  tc.destage_batch = 64;  // No batch trigger below: idle drains instead.
  auto tier = MakeTieredDevice(tc);
  // Dirty 32 contiguous sectors in SHUFFLED order — the LBA-sorted
  // multi-victim round must still reach the disk as one sequential run.
  SimTime t = 0;
  for (int i = 0; i < 32; ++i) {
    const Lpn l = 100 + ((i * 13) % 32);
    const auto w = tier->Write(t, l, SectorData(static_cast<char>('A' + i)));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  ASSERT_EQ(tier->stats().destage_batches, 0u);
  ASSERT_EQ(tier->dirty_slots(), 32u);

  // Go idle past the threshold; the next command entry fires the round.
  const auto r = tier->Read(t + 3 * kMillisecond, 100, 1, nullptr);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(tier->stats().destage_batches, 1u);
  EXPECT_EQ(tier->stats().destage_sectors, 32u);
  EXPECT_LE(tier->stats().destage_runs, 2u);  // Coalesced, not per-page.
  EXPECT_EQ(tier->dirty_slots(), 0u);
}

TEST(TieredDevice, ShutdownDestagesEverythingToCapacity) {
  auto tier = MakeTieredDevice(SmallTier());
  SimTime t = 0;
  for (Lpn l = 0; l < 24; ++l) {
    const auto w = tier->Write(
        t, l, SectorData(static_cast<char>('a' + static_cast<int>(l))));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  ASSERT_TRUE(tier->Shutdown(t).ok());
  EXPECT_EQ(tier->dirty_slots(), 0u);
  // The capacity member alone holds every byte (the tier is powered off).
  auto& cap = tier->capacity_tier();
  SimTime tr = cap.PowerOn() + 1;
  for (Lpn l = 0; l < 24; ++l) {
    std::string out;
    const auto r = cap.Read(tr, l, 1, &out);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(out, SectorData(static_cast<char>('a' + static_cast<int>(l))))
        << "lpn " << l;
    tr = r.done;
  }
}

TEST(TieredDevice, EvictionKeepsDirectoryConsistentBeyondCacheSize) {
  auto tier = MakeTieredDevice(SmallTier());
  const uint64_t slots = tier->cache_slots();
  const uint64_t span = slots * 2;  // Twice the cache: forces eviction.
  ASSERT_LE(span, tier->num_sectors());
  SimTime t = 0;
  for (Lpn l = 0; l < span; ++l) {
    const auto w =
        tier->Write(t, l, SectorData(static_cast<char>('a' + (l % 26))));
    ASSERT_TRUE(w.status.ok()) << "lpn " << l;
    t = w.done;
  }
  EXPECT_GT(tier->stats().destage_sectors, 0u);
  EXPECT_GT(tier->stats().evictions, 0u);
  for (Lpn l = 0; l < span; l += 7) {
    std::string out;
    const auto r = tier->Read(t, l, 1, &out);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(out, SectorData(static_cast<char>('a' + (l % 26)))) << l;
    t = r.done;
  }
}

// ---------------------------------------------------------------------------
// Admission bypass (the scan-resistance property)
// ---------------------------------------------------------------------------

TEST(TieredDevice, SequentialScanBypassesAdmissionAndPreservesHitRatio) {
  TieredConfig tc = SmallTier();
  tc.seq_run_sectors = 64;
  auto tier = MakeTieredDevice(tc);

  // Hot set: write (and thereby cache) sectors 0..31, then warm-up reads.
  SimTime t = 0;
  for (Lpn l = 0; l < 32; ++l) {
    t = tier->Write(t, l, SectorData('h')).done;
  }
  for (Lpn l = 0; l < 32; ++l) {
    const auto r = tier->Read(t, l, 1, nullptr);
    ASSERT_TRUE(r.status.ok());
    t = r.done;
  }
  ASSERT_EQ(tier->stats().tier_read_misses, 0u);
  const uint64_t admitted_before = tier->stats().admitted_sectors;

  // A backup-style scan: 64-sector sequential commands over a cold range.
  // Each command's run is already >= seq_run_sectors, so nothing from the
  // scan may be admitted (and nothing hot may be evicted for it).
  for (Lpn l = 256; l < 768; l += 64) {
    const auto r = tier->Read(t, l, 64, nullptr);
    ASSERT_TRUE(r.status.ok());
    t = r.done;
  }
  EXPECT_EQ(tier->stats().admitted_sectors, admitted_before);
  EXPECT_EQ(tier->stats().bypassed_sectors, 512u);

  // The hot set is untouched: re-reads still hit, 100%.
  const uint64_t misses_before = tier->stats().tier_read_misses;
  for (Lpn l = 0; l < 32; ++l) {
    const auto r = tier->Read(t, l, 1, nullptr);
    ASSERT_TRUE(r.status.ok());
    t = r.done;
  }
  EXPECT_EQ(tier->stats().tier_read_misses, misses_before);
}

TEST(TieredDevice, AdmitAllPolicyLetsScansIntoTheCache) {
  // The control arm of the property above: with kAll the identical scan
  // IS admitted (this is what would flush the hot set on a bigger scan).
  TieredConfig tc = SmallTier();
  tc.admission = TieredConfig::Admission::kAll;
  auto tier = MakeTieredDevice(tc);
  SimTime t = 0;
  for (Lpn l = 256; l < 384; l += 64) {
    const auto r = tier->Read(t, l, 64, nullptr);
    ASSERT_TRUE(r.status.ok());
    t = r.done;
  }
  EXPECT_GT(tier->stats().admitted_sectors, 0u);
  EXPECT_EQ(tier->stats().bypassed_sectors, 0u);
}

// ---------------------------------------------------------------------------
// Crash safety
// ---------------------------------------------------------------------------

TEST(TieredDevice, SixtyInstantPowerCutSweepLosesNoAckedSector) {
  int warm_recoveries = 0;
  for (int inst = 0; inst < 60; ++inst) {
    SCOPED_TRACE("instant " + std::to_string(inst));
    auto tier = MakeTieredDevice(SmallTier());

    // Oracle: the tier is atomic + ordered, so a sector must read back its
    // last ACKED value — or a NEWER un-acked overwrite whose journal page
    // happened to become durable before the cut. Never anything older.
    std::map<Lpn, std::string> acked;
    std::map<Lpn, std::vector<std::string>> maybe;
    SimTime t = 0;
    auto put = [&](Lpn l, char tag) {
      const std::string d(kSs, tag);
      const auto w = tier->Write(t, l, d);
      if (w.status.ok()) {
        acked[l] = d;
        maybe[l].clear();
        t = w.done;
      } else {
        maybe[l].push_back(d);
      }
    };

    for (Lpn l = 0; l < 12; ++l) {
      put(l, static_cast<char>('a' + static_cast<int>(l)));
    }
    ASSERT_TRUE(tier->powered());

    const SimTime cut = t + (inst + 1) * 150 * kMicrosecond;
    tier->SchedulePowerCut(cut);
    // Hammer overwrites + fresh sectors until the cut trips; mix in reads
    // so admission and destage state are live when power dies.
    for (int i = 0; i < 400 && tier->powered(); ++i) {
      t += 60 * kMicrosecond;
      put(static_cast<Lpn>(i % 40), static_cast<char>('A' + i % 26));
      if (i % 7 == 0 && tier->powered()) {
        const auto r =
            tier->Read(t, static_cast<Lpn>(200 + i % 16), 1, nullptr);
        if (r.status.ok()) t = r.done;
      }
    }
    if (tier->powered()) {
      tier->CancelScheduledPowerCut();
      tier->PowerCut(std::max(cut, t));
    } else {
      EXPECT_GT(tier->stats().scheduled_cuts_tripped, 0u);
    }

    tier->PowerOn();
    if (tier->stats().recovered_entries > 0) warm_recoveries++;

    SimTime tr = 1;
    for (const auto& [l, d] : acked) {
      std::string out;
      const auto r = tier->Read(tr, l, 1, &out);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      bool legal = out == d;
      for (const std::string& m : maybe[l]) {
        if (out == m) legal = true;
      }
      ASSERT_TRUE(legal) << "lpn " << l << ": got '" << out[0]
                         << "', acked '" << d[0] << "'";
      tr = r.done;
    }
  }
  // The warm-directory claim: recovery must actually rebuild entries in
  // (nearly) every instant of the sweep, not just survive.
  EXPECT_GT(warm_recoveries, 50);
}

TEST(TieredDevice, WarmRecoveryRewarmsFasterThanColdStart) {
  // A/B: identical stacks and workload; only warm_recovery differs.
  struct Probe {
    uint64_t misses;
    SimTime duration;
  };
  auto run = [](TieredDevice& tier) {
    SimTime t = 0;
    for (Lpn l = 0; l < 48; ++l) {
      t = tier.Write(t, l, SectorData(static_cast<char>('a' + l % 26))).done;
    }
    tier.PowerCut(t + 1);
    tier.PowerOn();
    // Rewarm probe: re-read the hot set and count misses.
    const uint64_t misses0 = tier.stats().tier_read_misses;
    SimTime tr = tier.last_recovery_duration() + 1;
    const SimTime probe_start = tr;
    for (Lpn l = 0; l < 48; ++l) {
      std::string out;
      const auto r = tier.Read(tr, l, 1, &out);
      EXPECT_TRUE(r.status.ok());
      EXPECT_EQ(out, SectorData(static_cast<char>('a' + l % 26))) << l;
      tr = r.done;
    }
    return Probe{tier.stats().tier_read_misses - misses0, tr - probe_start};
  };

  TieredConfig cold_cfg = SmallTier();
  cold_cfg.warm_recovery = false;
  auto warm = MakeTieredDevice(SmallTier());
  auto cold = MakeTieredDevice(cold_cfg);
  const Probe w = run(*warm);
  const Probe c = run(*cold);

  EXPECT_EQ(w.misses, 0u);   // Warm: the directory survived the cut.
  EXPECT_EQ(c.misses, 48u);  // Cold: every hot sector re-fetched from disk.
  EXPECT_EQ(warm->stats().cold_resets, 0u);
  EXPECT_EQ(cold->stats().cold_resets, 1u);
  EXPECT_GT(warm->stats().recovered_entries, 0u);
  // The cold rewarm pays disk fetches: an order of magnitude slower.
  EXPECT_LT(w.duration * 10, c.duration);
}

TEST(TieredDevice, MapRingWrapsThroughCheckpointsAndStillRecovers) {
  TieredConfig tc = SmallTier();
  tc.map_pages = 8;  // Tiny ring: wraps and checkpoints constantly.
  auto tier = MakeTieredDevice(tc);
  constexpr int kIters = 2500;
  constexpr Lpn kKeys = 64;
  SimTime t = 0;
  for (int i = 0; i < kIters; ++i) {
    const Lpn l = static_cast<Lpn>(i) % kKeys;
    const auto w =
        tier->Write(t, l, SectorData(static_cast<char>('a' + i % 26)));
    ASSERT_TRUE(w.status.ok()) << "iter " << i;
    t = w.done;
  }
  EXPECT_GE(tier->stats().map_checkpoints, 3u);

  tier->PowerCut(t + 1);
  tier->PowerOn();
  SimTime tr = 1;
  for (Lpn l = 0; l < kKeys; ++l) {
    // Last value written to l: the largest i < kIters with i % kKeys == l.
    const int last = static_cast<int>(
        l < kIters % kKeys ? (kIters / kKeys) * kKeys + l
                           : (kIters / kKeys - 1) * kKeys + l);
    std::string out;
    const auto r = tier->Read(tr, l, 1, &out);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(out, SectorData(static_cast<char>('a' + last % 26))) << l;
    tr = r.done;
  }
}

TEST(TieredDevice, TimingOnlyModeMatchesStoreDataTiming) {
  // The sim_ring_ journal mirror must make timing-only runs (benches)
  // behave identically to real-bytes runs — including across a power cut.
  auto real = MakeTieredDevice(SmallTier(/*store_data=*/true));
  auto sim = MakeTieredDevice(SmallTier(/*store_data=*/false));
  SimTime tr = 0, ts = 0;
  for (int i = 0; i < 200; ++i) {
    const Lpn l = static_cast<Lpn>((i * 37) % 300);
    if (i % 3 == 2) {
      const auto a = real->Read(tr, l, 1, nullptr);
      const auto b = sim->Read(ts, l, 1, nullptr);
      ASSERT_TRUE(a.status.ok());
      ASSERT_TRUE(b.status.ok());
      ASSERT_EQ(a.done, b.done) << "read " << i;
      tr = a.done;
      ts = b.done;
    } else {
      const auto a = real->Write(tr, l, SectorData('w'));
      const auto b = sim->Write(ts, l, SectorData('w'));
      ASSERT_TRUE(a.status.ok());
      ASSERT_TRUE(b.status.ok());
      ASSERT_EQ(a.done, b.done) << "write " << i;
      tr = a.done;
      ts = b.done;
    }
  }
  real->PowerCut(tr + 5);
  sim->PowerCut(ts + 5);
  // The flash member's own PowerOn replay charge differs between modes
  // (pre-existing SsdDevice behavior), which skews absolute clocks — and
  // with them the HDD's rotational phase. So post-cut the claim is
  // FUNCTIONAL parity: the mirror recovered the identical directory, and
  // the recovered cache classifies every subsequent access identically.
  tr = real->PowerOn();
  ts = sim->PowerOn();
  EXPECT_EQ(real->stats().recovered_entries, sim->stats().recovered_entries);
  EXPECT_EQ(real->stats().recovered_dirty, sim->stats().recovered_dirty);
  for (int i = 0; i < 50; ++i) {
    const Lpn l = static_cast<Lpn>((i * 29) % 300);
    const auto a = i % 2 ? real->Write(tr, l, SectorData('z'))
                         : real->Read(tr, l, 1, nullptr);
    const auto b = i % 2 ? sim->Write(ts, l, SectorData('z'))
                         : sim->Read(ts, l, 1, nullptr);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    tr = a.done;
    ts = b.done;
  }
  EXPECT_EQ(real->stats().tier_read_hits, sim->stats().tier_read_hits);
  EXPECT_EQ(real->stats().tier_read_misses, sim->stats().tier_read_misses);
  EXPECT_EQ(real->stats().admitted_sectors, sim->stats().admitted_sectors);
  EXPECT_EQ(real->dirty_slots(), sim->dirty_slots());
}

// ---------------------------------------------------------------------------
// Torture repro round-trip (the copy-pasteable repro line)
// ---------------------------------------------------------------------------

TEST(TieredDevice, HarnessOptionsTieredKnobsRoundTrip) {
  CrashHarness::Options o;
  o.engine = CrashHarness::Engine::kKvStore;
  o.tiered = true;
  o.tier_flash_pct = 17.5;
  o.tier_admission = 0;
  o.tier_destage_batch = 9;
  o.tier_warm = false;
  o.seed = 4242;
  o.cut_fraction = 0.37;
  const CrashHarness::Options p =
      CrashHarness::Options::FromString(o.ToString());
  EXPECT_EQ(p.engine, o.engine);
  EXPECT_EQ(p.tiered, o.tiered);
  EXPECT_DOUBLE_EQ(p.tier_flash_pct, o.tier_flash_pct);
  EXPECT_EQ(p.tier_admission, o.tier_admission);
  EXPECT_EQ(p.tier_destage_batch, o.tier_destage_batch);
  EXPECT_EQ(p.tier_warm, o.tier_warm);
  EXPECT_EQ(p.seed, o.seed);
  EXPECT_DOUBLE_EQ(p.cut_fraction, o.cut_fraction);
  // Full-line stability: parsing the reprinted line changes nothing.
  EXPECT_EQ(p.ToString(), o.ToString());
}

}  // namespace
}  // namespace durassd
