// Satellite determinism regression: the sharded engine must produce
// bit-identical results regardless of the host thread count. Each shard
// runs a full mirrored-array crash-torture scenario (CrashHarness with
// member kill + online rebuild) from inside its client loop, so the
// heavyweight work really lands on whichever host worker owns the shard
// that epoch — and the composite of every shard's Report, schedule log,
// and executor result must not change across {1, 2, 4, 8} threads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/crash_harness.h"
#include "sim/sim_executor.h"

namespace durassd {
namespace {

/// Deterministic pseudo-random service time for (client, now).
SimTime Service(uint32_t client, SimTime now, uint64_t salt) {
  uint64_t h = now ^ (client * 0x9E3779B97F4A7C15ull) ^ salt;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return 1 + (h % (2 * kMicrosecond));
}

std::string Format(const CrashHarness::Report& r) {
  std::string s = "ok=" + std::to_string(r.ok) +
                  " cuts=" + std::to_string(r.cuts) +
                  " attempts=" + std::to_string(r.recovery_attempts) +
                  " recovered=" + std::to_string(r.recovered) +
                  " in_flight=" + std::to_string(r.commit_in_flight) +
                  " acked=" + std::to_string(r.commits_acked) +
                  " snapshot=" + std::to_string(r.snapshot_matched) +
                  " degraded=" + std::to_string(r.degraded);
  for (const std::string& v : r.violations) s += " V[" + v + "]";
  return s;
}

CrashHarness::Options TortureOptions(uint32_t shard) {
  CrashHarness::Options o;
  o.engine = shard % 2 == 0 ? CrashHarness::Engine::kDatabase
                            : CrashHarness::Engine::kKvStore;
  o.seed = 7000 + shard;
  o.ops = 60;
  o.keyspace = 48;
  o.cut_fraction = 0.35 + 0.1 * shard;
  o.array_mirrors = 2;
  o.array_kill_fraction = 0.45;
  o.array_rebuild = true;
  return o;
}

std::string RunOnce(uint32_t threads) {
  SimExecutor::Options opts;
  opts.epoch_ns = 20 * kMicrosecond;
  opts.host_threads = threads;
  constexpr uint32_t kShards = 4;

  std::vector<std::string> reports(kShards);
  std::vector<std::string> logs(kShards);
  std::vector<ShardedExecutor::Shard> shards;
  for (uint32_t s = 0; s < kShards; ++s) {
    shards.push_back(
        {/*num_clients=*/2, /*total_ops=*/40,
         [s, &reports, &logs](uint32_t client, SimTime now) {
           // Events within a shard are serial, so this guard is safe: the
           // torture scenario runs exactly once, on whichever host worker
           // happens to own the shard at that moment.
           if (reports[s].empty()) {
             reports[s] = Format(CrashHarness::Run(TortureOptions(s)));
           }
           const SimTime done = now + Service(client, now, 11 + s);
           logs[s] += std::to_string(client) + "@" + std::to_string(now) +
                      ";";
           return done;
         }});
  }
  ShardedExecutor xe(opts, std::move(shards));
  const auto results = xe.RunShards(/*start_time=*/0);

  std::string composite;
  for (uint32_t s = 0; s < kShards; ++s) {
    composite += "[shard " + std::to_string(s) +
                 " ops=" + std::to_string(results[s].ops) +
                 " makespan=" + std::to_string(results[s].makespan) + " " +
                 reports[s] + "]" + logs[s] + "\n";
  }
  return composite;
}

TEST(ShardedDeterminismTest, MirroredArrayTortureIdenticalAcrossThreads) {
  const std::string golden = RunOnce(1);
  ASSERT_NE(golden.find("recovered=1"), std::string::npos) << golden;
  ASSERT_EQ(golden.find("V["), std::string::npos) << golden;
  for (const uint32_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(golden, RunOnce(threads)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace durassd
