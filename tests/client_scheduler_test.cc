// ClientScheduler determinism: (local clock, FIFO) resume order, think
// time, and the degenerate zero-result cases.
#include <gtest/gtest.h>

#include <vector>

#include "sim/client_scheduler.h"

namespace durassd {
namespace {

TEST(ClientScheduler, FifoTieBreakAmongEqualClocks) {
  // Every operation takes exactly 10 time units, so after the first round
  // all clients' clocks collide at 10, then 20, ... The FIFO rule says the
  // client that became runnable first resumes first: the resume order must
  // be round-robin in the order of the *previous* round, never reshuffled
  // by index or heap layout.
  std::vector<uint32_t> resumed;
  const auto fn = [&](uint32_t client, SimTime now) -> SimTime {
    resumed.push_back(client);
    return now + 10;
  };
  const ClientScheduler::RunResult r = ClientScheduler::Run(3, 9, 0, fn);
  EXPECT_EQ(r.ops, 9u);
  EXPECT_EQ(r.makespan, 30);
  const std::vector<uint32_t> want = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(resumed, want);
}

TEST(ClientScheduler, FifoOrderFollowsBecameRunnableNotIndex) {
  // Engineer a collision where the *higher*-index client became runnable
  // first: client 0 runs two quick ops (0→3, 3→20) while client 1 runs one
  // long op (0→20). Client 1's re-enqueue (when its op completes) happens
  // before client 0's second re-enqueue, so at the t=20 collision FIFO
  // must resume client 1 first. An index tie-break would pick client 0 —
  // this pins the documented FIFO guarantee.
  std::vector<uint32_t> resumed;
  std::vector<uint32_t> op_count(2, 0);
  const auto fn = [&](uint32_t client, SimTime now) -> SimTime {
    resumed.push_back(client);
    const uint32_t op = op_count[client]++;
    if (client == 0 && op == 0) return now + 3;
    if (client == 0 && op == 1) return now + 17;  // 3 -> 20.
    if (client == 1 && op == 0) return now + 20;
    return now + 10;  // Later rounds: everyone collides again.
  };
  const ClientScheduler::RunResult r = ClientScheduler::Run(2, 6, 0, fn);
  EXPECT_EQ(r.ops, 6u);
  // t=0: 0 then 1 (index order at start). t=3: 0 again (lowest clock).
  // t=20: both runnable, client 1 enqueued first -> 1 then 0. t=30: same.
  const std::vector<uint32_t> want = {0, 1, 0, 1, 0, 1};
  EXPECT_EQ(resumed, want);
}

TEST(ClientScheduler, ThinkTimeDelaysResubmission) {
  std::vector<SimTime> starts;
  const auto fn = [&](uint32_t, SimTime now) -> SimTime {
    starts.push_back(now);
    return now + 5;
  };
  ClientScheduler::Options opts;
  opts.think_time = 95;
  const ClientScheduler::RunResult r =
      ClientScheduler::Run(1, 3, 0, fn, opts);
  EXPECT_EQ(r.ops, 3u);
  const std::vector<SimTime> want = {0, 100, 200};
  EXPECT_EQ(starts, want);
  // Makespan ends at the last op's completion, not after its think time.
  EXPECT_EQ(r.makespan, 205);
}

TEST(ClientScheduler, DeterministicAcrossRuns) {
  const auto run = [] {
    std::vector<uint32_t> resumed;
    const auto fn = [&](uint32_t client, SimTime now) -> SimTime {
      resumed.push_back(client);
      return now + 7 + (client * 3) % 5;
    };
    ClientScheduler::Run(4, 24, 0, fn);
    return resumed;
  };
  EXPECT_EQ(run(), run());
}

TEST(ClientScheduler, ZeroClientsReturnsZeroResult) {
  bool called = false;
  const auto fn = [&](uint32_t, SimTime now) -> SimTime {
    called = true;
    return now;
  };
  const ClientScheduler::RunResult r = ClientScheduler::Run(0, 100, 50, fn);
  EXPECT_FALSE(called);
  EXPECT_EQ(r.ops, 0u);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.OpsPerSecond(), 0.0);
}

TEST(ClientScheduler, ZeroOpsReturnsZeroResult) {
  bool called = false;
  const auto fn = [&](uint32_t, SimTime now) -> SimTime {
    called = true;
    return now;
  };
  const ClientScheduler::RunResult r = ClientScheduler::Run(8, 0, 50, fn);
  EXPECT_FALSE(called);
  EXPECT_EQ(r.ops, 0u);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.OpsPerSecond(), 0.0);
}

}  // namespace
}  // namespace durassd
