// Log-structured destage segments (ROADMAP item 2):
//   - segments append to the reserved log region and read back exactly after
//     a clean reboot,
//   - a power cut at any of 60+ instants recovers every acknowledged sector
//     (capacitor dump + checksummed segment replay),
//   - a segment whose header page is lost on recovery is counted torn and
//     truncated without losing any acknowledged sector,
//   - the append cursor wraps, reclaiming log blocks (relocating any live
//     sectors) without corrupting data,
//   - on a flush-heavy workload the log mode programs measurably fewer NAND
//     pages than in-place lazy destage (the write-amplification win).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;

SsdConfig LogConfig() {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  cfg.write_buffer_sectors = 256;
  cfg.cache_capacity_sectors = 512;
  cfg.capacitor_budget_bytes = 4 * kMiB;
  cfg.destage_batch_pages = 256;
  cfg.destage_mode = SsdConfig::DestageMode::kLogStructured;
  return cfg;
}

std::string Value(int i, char tag = 'l') {
  std::string v = std::string(1, tag) + "-sector-" + std::to_string(i) + "-";
  v.resize(kSector, 'p');
  return v;
}

TEST(LogDestageTest, SegmentsAppendAndReadBackAfterReboot) {
  SsdConfig cfg = LogConfig();
  SsdDevice dev(cfg);
  ASSERT_TRUE(dev.UseLogDestage());
  ASSERT_GT(dev.SegmentSectors(), 0u);

  constexpr int kWrites = 64;
  SimTime t = 0;
  for (int i = 0; i < kWrites; ++i) {
    const auto w = dev.Write(t, static_cast<Lpn>(i), Value(i));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  EXPECT_GT(dev.stats().log_segments, 0u);
  EXPECT_GT(dev.ftl().stats().log_appends, 0u);

  // Clean shutdown drains the partial tail segment; after reboot the cache
  // is cold, so every read must come from the log-mapped NAND pages.
  ASSERT_TRUE(dev.Shutdown(t).ok());
  dev.PowerOn();
  for (int i = 0; i < kWrites; ++i) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, static_cast<Lpn>(i), 1, &got).status.ok());
    EXPECT_EQ(got, Value(i)) << "lpn " << i;
  }
}

TEST(LogDestageTest, CacheServesReadsWithRealBytes) {
  SsdDevice dev(LogConfig());
  SimTime t = 0;
  for (int i = 0; i < 8; ++i) {
    t = dev.Write(t, static_cast<Lpn>(i), Value(i, 'c')).done;
  }
  // While resident, reads are cache hits carrying the written bytes.
  const uint64_t flash_reads_before = dev.flash().stats().reads;
  for (int i = 0; i < 8; ++i) {
    std::string got;
    ASSERT_TRUE(dev.Read(t, static_cast<Lpn>(i), 1, &got).status.ok());
    EXPECT_EQ(got, Value(i, 'c')) << "lpn " << i;
  }
  EXPECT_EQ(dev.flash().stats().reads, flash_reads_before);
  EXPECT_GE(dev.stats().cache_read_hits, 8u);
}

// The power-cut oracle: every command acknowledged before the cut must read
// back intact after recovery, for 60 distinct cut instants. In log mode most
// destaged sectors live in segments; the rest exist only in the dump.
TEST(LogDestageTest, PowerCutSweepRecoversEveryAckedSector) {
  constexpr int kWrites = 150;

  // Dry run to learn the ack times and total duration.
  std::vector<SimTime> acks(kWrites, 0);
  SimTime end = 0;
  {
    SsdDevice dev(LogConfig());
    SimTime t = 0;
    for (int i = 0; i < kWrites; ++i) {
      auto r = dev.Write(t, static_cast<Lpn>(i), Value(i));
      ASSERT_TRUE(r.status.ok());
      acks[i] = r.done;
      t = r.done;
    }
    end = t;
  }
  ASSERT_GT(end, 0);

  uint64_t total_dumped = 0;
  uint64_t total_segments = 0;
  uint64_t total_replayed = 0;
  const int kCuts = 60;  // >= 60 distinct instants (acceptance floor).
  for (int c = 1; c <= kCuts; ++c) {
    const SimTime cut = 1 + (end * c) / (kCuts + 1);
    SsdDevice dev(LogConfig());
    SimTime t = 0;
    for (int i = 0; i < kWrites && t < cut; ++i) {
      t = dev.Write(t, static_cast<Lpn>(i), Value(i)).done;
    }
    dev.PowerCut(cut);
    dev.PowerOn();
    total_dumped += dev.stats().dumped_pages;
    total_segments += dev.stats().log_segments;
    total_replayed += dev.stats().log_replayed_segments;
    // No torn tail may drop a sector the host was told is durable.
    EXPECT_EQ(dev.stats().log_dropped_sectors, 0u) << "cut=" << cut;
    for (int i = 0; i < kWrites; ++i) {
      if (acks[i] > cut) break;
      std::string got;
      ASSERT_TRUE(dev.Read(0, static_cast<Lpn>(i), 1, &got).status.ok());
      EXPECT_EQ(got, Value(i)) << "cut=" << cut << " lost acked write " << i;
    }
  }
  // The sweep must have exercised both recovery paths.
  EXPECT_GT(total_dumped, 0u);
  EXPECT_GT(total_segments, 0u);
  EXPECT_GT(total_replayed, 0u);
}

TEST(LogDestageTest, LostSegmentHeaderIsCountedTornWithoutDataLoss) {
  SsdConfig cfg = LogConfig();
  cfg.read_retry_limit = 0;  // One-shot scripted flips must not be retried.
  SsdDevice dev(cfg);

  constexpr int kWrites = 48;
  SimTime t = 0;
  for (int i = 0; i < kWrites; ++i) {
    t = dev.Write(t, static_cast<Lpn>(i), Value(i, 'h')).done;
  }
  ASSERT_GT(dev.stats().log_segments, 0u);

  dev.PowerCut(t);
  // The first flash read after the cut is the newest segment's header page
  // (RecoverCache validates newest to oldest): make it uncorrectable.
  dev.fault_injector().FlipBitsOnReadAfter(0, 4096);
  dev.PowerOn();

  EXPECT_GE(dev.stats().log_torn_segments, 1u);
  EXPECT_EQ(dev.stats().log_dropped_sectors, 0u);
  // The segment's mappings survived the capacitor quiesce, so no
  // acknowledged sector may be lost to the unreadable header.
  for (int i = 0; i < kWrites; ++i) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, static_cast<Lpn>(i), 1, &got).status.ok());
    EXPECT_EQ(got, Value(i, 'h')) << "lpn " << i;
  }
}

TEST(LogDestageTest, AppendCursorWrapsAndReclaimsWithoutCorruption) {
  SsdConfig cfg = LogConfig();
  cfg.log_blocks_per_plane = 2;  // 2 * 16 * 4 = 128 log pages: wraps fast.
  SsdDevice dev(cfg);
  ASSERT_TRUE(dev.UseLogDestage());

  // Enough volume to lap the log region several times. A narrow LPN range
  // leaves live sectors inside reclaimed log blocks (relocation coverage)
  // while fresh LPNs keep appending.
  constexpr int kRounds = 5;
  constexpr int kSpan = 120;
  SimTime t = 0;
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kSpan; ++i) {
      const auto w =
          dev.Write(t, static_cast<Lpn>(i), Value(r * 1000 + i, 'w'));
      ASSERT_TRUE(w.status.ok());
      t = w.done;
    }
  }
  EXPECT_GT(dev.ftl().stats().log_reclaims, 0u);

  ASSERT_TRUE(dev.Shutdown(t).ok());
  dev.PowerOn();
  for (int i = 0; i < kSpan; ++i) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, static_cast<Lpn>(i), 1, &got).status.ok());
    EXPECT_EQ(got, Value((kRounds - 1) * 1000 + i, 'w')) << "lpn " << i;
  }
}

// The tentpole's why: on a flush-heavy small-write workload, in-place lazy
// destage is forced to program partial pages at every FLUSH, while the log
// mode leaves acknowledged sectors coalescing (they are already durable)
// and programs only full sequential segments.
TEST(LogDestageTest, LogModeLowersWriteAmplification) {
  auto run = [](SsdConfig::DestageMode mode) {
    SsdConfig cfg = LogConfig();
    cfg.destage_mode = mode;
    cfg.log_segment_pages = 15;  // 30-sector segments: 1/16 header overhead.
    SsdDevice dev(cfg);
    Random rng(17);
    SimTime t = 0;
    for (int i = 0; i < 300; ++i) {
      const Lpn lpn = rng.Uniform(dev.num_sectors());
      const auto w = dev.Write(t, lpn, Value(i, 'a'));
      EXPECT_TRUE(w.status.ok());
      t = w.done;
      if (i % 3 == 2) t = dev.Flush(t).done;  // Commit-like cadence.
    }
    EXPECT_TRUE(dev.Shutdown(t).ok());
    return dev.WriteAmplification();
  };
  const double wa_in_place = run(SsdConfig::DestageMode::kInPlace);
  const double wa_log = run(SsdConfig::DestageMode::kLogStructured);
  EXPECT_GT(wa_in_place, 0.0);
  EXPECT_GT(wa_log, 0.0);
  EXPECT_LT(wa_log, wa_in_place)
      << "log=" << wa_log << " in_place=" << wa_in_place;
}

// Acceptance guard: a device configured with the legacy in-place mode is
// bit-identical — in time and in NAND operation counts — to one that has
// never heard of the log (the DestageMode knob defaults to kInPlace, so
// this pins "no perturbation when off").
TEST(LogDestageTest, InPlaceModeUnperturbedByLogPlumbing) {
  SsdConfig base = SsdConfig::Tiny(true);
  base.geometry.blocks_per_plane = 64;
  base.geometry.pages_per_block = 16;

  SsdConfig explicit_in_place = base;
  explicit_in_place.destage_mode = SsdConfig::DestageMode::kInPlace;

  SsdDevice a(base);
  SsdDevice b(explicit_in_place);
  ASSERT_FALSE(a.UseLogDestage());
  ASSERT_FALSE(b.UseLogDestage());
  ASSERT_EQ(a.num_sectors(), b.num_sectors());

  Random rng(23);
  SimTime ta = 0;
  SimTime tb = 0;
  for (int i = 0; i < 120; ++i) {
    const Lpn lpn = rng.Uniform(a.num_sectors());
    const std::string v = Value(i, 'g');
    const auto wa = a.Write(ta, lpn, v);
    const auto wb = b.Write(tb, lpn, v);
    ASSERT_TRUE(wa.status.ok());
    ASSERT_TRUE(wb.status.ok());
    ASSERT_EQ(wa.done, wb.done) << "write " << i;
    ta = wa.done;
    tb = wb.done;
    if (i % 10 == 9) {
      const auto fa = a.Flush(ta);
      const auto fb = b.Flush(tb);
      ASSERT_EQ(fa.done, fb.done) << "flush after write " << i;
      ta = fa.done;
      tb = fb.done;
    }
  }
  EXPECT_EQ(a.flash().stats().programs, b.flash().stats().programs);
  EXPECT_EQ(a.flash().stats().erases, b.flash().stats().erases);
  EXPECT_EQ(a.stats().log_segments, 0u);
  EXPECT_EQ(b.stats().log_segments, 0u);
}

}  // namespace
}  // namespace durassd
