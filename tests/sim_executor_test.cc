// SimExecutor contract tests: the serial loop and the sharded epoch-barrier
// engine must produce identical schedules wherever the contract says so
// (1 shard == serial, any epoch width, any host thread count), multi-shard
// runs must be deterministic in the host thread count, and cross-shard
// posts must arrive in (delivery time, sender, sequence) order with the
// one-epoch visibility clamp.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/sim_executor.h"
#include "sim/thread_pool.h"

namespace durassd {
namespace {

/// Deterministic pseudo-random service time for (client, now).
SimTime Service(uint32_t client, SimTime now, uint64_t salt) {
  uint64_t h = now ^ (client * 0x9E3779B97F4A7C15ull) ^ salt;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return 1 + (h % (3 * kMicrosecond));
}

/// Runs `fn`-style clients and records the exact resume schedule as a
/// string: "client@now->done;..." — the bit-identity artifact.
struct ScheduleProbe {
  std::string log;
  uint64_t salt;

  SimExecutor::ClientFn Fn() {
    return [this](uint32_t client, SimTime now) {
      const SimTime done = now + Service(client, now, salt);
      log += std::to_string(client) + "@" + std::to_string(now) + "->" +
             std::to_string(done) + ";";
      return done;
    };
  }
};

TEST(ThreadPoolTest, RunBatchExecutesEverythingAndWaits) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunBatch(batch);
  EXPECT_EQ(count.load(), 64);  // RunBatch is a barrier.
  pool.RunBatch(batch);
  EXPECT_EQ(count.load(), 128);
}

TEST(ThreadPoolTest, ScheduleAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(SimExecutorTest, SerialMatchesShardedSingleShardAnyThreads) {
  for (const uint32_t threads : {1u, 2u, 4u}) {
    for (const SimTime epoch : {kMicrosecond, 100 * kMicrosecond,
                                10 * kMillisecond}) {
      SimExecutor::Options opts;
      opts.think_time = 500;
      ScheduleProbe serial{.log = "", .salt = 42};
      SerialExecutor se(opts);
      const auto sr = se.Run(7, 200, 1000, serial.Fn());

      opts.epoch_ns = epoch;
      opts.host_threads = threads;
      ScheduleProbe sharded{.log = "", .salt = 42};
      ShardedExecutor xe(opts, {});
      const auto xr = xe.Run(7, 200, 1000, sharded.Fn());

      EXPECT_EQ(sr.ops, xr.ops) << "threads=" << threads;
      EXPECT_EQ(sr.makespan, xr.makespan)
          << "threads=" << threads << " epoch=" << epoch;
      EXPECT_EQ(serial.log, sharded.log)
          << "threads=" << threads << " epoch=" << epoch;
    }
  }
}

TEST(SimExecutorTest, RunClientsEnvRoutingDefaultIsSerial) {
  // Whatever DURASSD_EXECUTOR says, RunClients must produce the serial
  // schedule (sharded mode routes through 1 shard == bit-identical).
  SimExecutor::Options opts;
  ScheduleProbe a{.log = "", .salt = 7};
  SerialExecutor se(opts);
  const auto sr = se.Run(3, 60, 0, a.Fn());
  ScheduleProbe b{.log = "", .salt = 7};
  const auto rr = RunClients(3, 60, 0, b.Fn(), opts);
  EXPECT_EQ(sr.ops, rr.ops);
  EXPECT_EQ(sr.makespan, rr.makespan);
  EXPECT_EQ(a.log, b.log);
}

/// Multi-shard runs: the per-shard schedules and results must not depend
/// on the host thread count.
TEST(SimExecutorTest, MultiShardDeterministicAcrossThreadCounts) {
  auto run_once = [](uint32_t threads, std::string* all_logs) {
    SimExecutor::Options opts;
    opts.epoch_ns = 50 * kMicrosecond;
    opts.host_threads = threads;
    std::vector<ScheduleProbe> probes(4);
    std::vector<ShardedExecutor::Shard> shards;
    for (uint32_t s = 0; s < 4; ++s) {
      probes[s].salt = 1000 + s;
      shards.push_back({/*num_clients=*/3 + s, /*total_ops=*/150, probes[s].Fn()});
    }
    ShardedExecutor xe(opts, std::move(shards));
    const auto results = xe.RunShards(/*start_time=*/0);
    all_logs->clear();
    for (uint32_t s = 0; s < 4; ++s) {
      *all_logs += "[shard " + std::to_string(s) + " ops=" +
                   std::to_string(results[s].ops) + " makespan=" +
                   std::to_string(results[s].makespan) + "]" + probes[s].log;
    }
  };
  std::string golden;
  run_once(1, &golden);
  ASSERT_FALSE(golden.empty());
  for (const uint32_t threads : {2u, 4u, 8u}) {
    std::string log;
    run_once(threads, &log);
    EXPECT_EQ(golden, log) << "threads=" << threads;
  }
}

/// Cross-shard posts: delivered at the target in (delivery time, sender,
/// sequence) order, never earlier than the end of the posting window.
TEST(SimExecutorTest, CrossShardPostOrderingAndClamp) {
  auto run_once = [](uint32_t threads) {
    SimExecutor::Options opts;
    opts.epoch_ns = 10 * kMicrosecond;
    opts.host_threads = threads;
    // Built in two phases because shards capture the executor pointer.
    ShardedExecutor* xe_raw = nullptr;
    std::string delivered;      // Written only by shard 1's worker.
    std::string posted;         // Written only by shard 0's worker.
    std::vector<ShardedExecutor::Shard> shards(2);
    shards[0].num_clients = 2;
    shards[0].total_ops = 40;
    shards[0].fn = [&](uint32_t client, SimTime now) {
      const SimTime done = now + Service(client, now, 5);
      posted += std::to_string(now) + ";";
      xe_raw->Post(0, 1, done, [&delivered, client, done](SimTime at) {
        delivered += std::to_string(client) + ":" + std::to_string(done) +
                     "@" + std::to_string(at) + ";";
        EXPECT_GE(at, done);  // Never delivered before the requested time.
      });
      return done;
    };
    shards[1].num_clients = 1;
    shards[1].total_ops = 40;
    shards[1].fn = [](uint32_t client, SimTime now) {
      return now + Service(client, now, 6);
    };
    auto xe = std::make_unique<ShardedExecutor>(opts, std::move(shards));
    xe_raw = xe.get();
    xe->RunShards(0);
    return posted + "|" + delivered;
  };
  const std::string golden = run_once(1);
  ASSERT_NE(golden.find("|"), std::string::npos);
  ASSERT_NE(golden.find("@"), std::string::npos);
  for (const uint32_t threads : {2u, 4u}) {
    EXPECT_EQ(golden, run_once(threads)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace durassd
