// Graceful degradation: FTL spare-block exhaustion flips the device into a
// sticky read-only mode (Status::ResourceExhausted on writes); engines abort
// their in-flight transaction cleanly, keep serving reads, and a reboot of
// the degraded device still recovers a consistent (read-only) state.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/trace.h"
#include "db/database.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

// Drives the device into degraded mode from the outside: scripts every
// upcoming NAND program to fail, then issues host writes to two scratch
// LPNs (two distinct pages, so single-sector commands pair up and destage)
// until block retirement has consumed every spare block and the FTL gives
// up. The scratch writes that fail are rolled back by the device, so any
// engine files living on lower LPNs are untouched.
// The helper (and the degradation trips below) need every scratch write to
// reach NAND synchronously; the lazy destage scheduler would absorb the
// alternating rewrites in the durable cache and never program at all, so
// these tests pin the legacy eager destage path.
SsdConfig EagerDestage(SsdConfig cfg) {
  cfg.destage_batch_pages = 1;
  return cfg;
}

void ExhaustSpares(SsdDevice& dev, IoContext& io) {
  for (uint64_t i = 0; i < (1u << 14); ++i) {
    dev.fault_injector().FailProgramAfter(i);
  }
  const std::string sector(dev.sector_size(), 'x');
  const Lpn a = dev.num_sectors() - 1;
  const Lpn b = dev.num_sectors() - 2;
  for (int i = 0; i < (1 << 12) && !dev.degraded(); ++i) {
    auto r = dev.Write(io.now, (i % 2) ? a : b, sector);
    io.AdvanceTo(r.done);
    if (r.status.IsResourceExhausted()) break;
  }
  ASSERT_TRUE(dev.degraded()) << "spare exhaustion did not trip";
  // Return the media to health: degradation is an FTL state now, and the
  // leftover scripted failures must not sabotage the capacitor dump at a
  // later power cut.
  dev.fault_injector().ClearScripts();
}

// --------------------------- Device level ---------------------------------

TEST(DegradedDeviceTest, SpareExhaustionEntersStickyReadOnly) {
  SsdDevice dev(EagerDestage(SsdConfig::Tiny(true)));
  Tracer tracer;
  dev.set_tracer(&tracer);
  IoContext io;

  // Some data makes it to stable media before the spares run out.
  const std::string before(dev.sector_size(), 'd');
  ASSERT_TRUE(dev.Write(io.now, 0, before).status.ok());
  ASSERT_TRUE(dev.Write(io.now, 1, std::string(dev.sector_size(), 'e'))
                  .status.ok());
  io.AdvanceTo(dev.Flush(io.now).done);

  ExhaustSpares(dev, io);

  // Writes are refused with the dedicated (permanent) status code.
  const std::string payload(dev.sector_size(), 'z');
  auto w = dev.Write(io.now, 2, payload);
  EXPECT_TRUE(w.status.IsResourceExhausted()) << w.status.ToString();
  EXPECT_GE(dev.stats().degraded_write_rejects, 1u);
  auto f = dev.Flush(io.now);
  EXPECT_TRUE(f.status.ok()) << "flush of already-durable data must work";

  // Reads of previously flushed data keep working.
  std::string got;
  auto r = dev.Read(io.now, 0, 1, &got);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(got, before);

  // The transition was observable: metrics counter + trace event.
  EXPECT_GE(dev.metrics().counters().at("ftl.degraded_entries"), 1u);
  EXPECT_GE(dev.metrics().counters().at("ssd.degraded_rejects"), 1u);
  bool saw_degraded_event = false;
  for (const TraceEvent& e : tracer.Events()) {
    saw_degraded_event |= (e.type == TraceEventType::kDegraded);
  }
  EXPECT_TRUE(saw_degraded_event);

  // Sticky: a power cycle does not resurrect write service, but the data
  // survives it.
  dev.PowerCut(io.now + 1);
  dev.PowerOn();
  io.now = 0;
  EXPECT_TRUE(dev.degraded());
  EXPECT_TRUE(dev.Write(io.now, 2, payload).status.IsResourceExhausted());
  got.clear();
  ASSERT_TRUE(dev.Read(io.now, 0, 1, &got).status.ok());
  EXPECT_EQ(got, before);
}

TEST(DegradedDeviceTest, AsyncSubmitPollAwaitSurfaceDegradedErrors) {
  // Degradation must be visible through the async command path too: a
  // rejected write's ResourceExhausted status has to surface on completion
  // (Poll and Await agree), not get swallowed inside the queue, and
  // interleaved reads must still complete fine.
  SsdDevice dev(EagerDestage(SsdConfig::Tiny(true)));
  IoContext io;
  const std::string before(dev.sector_size(), 'd');
  ASSERT_TRUE(dev.Write(io.now, 0, before).status.ok());
  io.AdvanceTo(dev.Flush(io.now).done);

  ExhaustSpares(dev, io);

  // A degraded write submitted asynchronously: Await surfaces the error.
  const std::string payload(dev.sector_size(), 'z');
  const CmdId w1 =
      dev.Submit(io.now, BlockDevice::Command::MakeWrite(2, Slice(payload)));
  const auto cw1 = dev.Await(w1);
  EXPECT_TRUE(cw1.status.IsResourceExhausted()) << cw1.status.ToString();

  // A batch of in-flight commands — two doomed writes around a good read —
  // all complete through Poll with their own statuses.
  std::string got;
  const CmdId w2 =
      dev.Submit(io.now, BlockDevice::Command::MakeWrite(3, Slice(payload)));
  const CmdId r1 =
      dev.Submit(io.now, BlockDevice::Command::MakeRead(0, 1, &got));
  const CmdId w3 =
      dev.Submit(io.now, BlockDevice::Command::MakeWrite(4, Slice(payload)));
  int seen = 0;
  bool read_ok = false;
  int write_rejects = 0;
  for (SimTime t = io.now; seen < 3; t += 10 * kMicrosecond) {
    for (const auto& c : dev.Poll(t)) {
      ++seen;
      if (c.id == r1) {
        read_ok = c.status.ok();
      } else {
        EXPECT_TRUE(c.id == w2 || c.id == w3);
        if (c.status.IsResourceExhausted()) ++write_rejects;
      }
    }
    ASSERT_LT(t, io.now + kSecond) << "async completions never drained";
  }
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(write_rejects, 2);
  EXPECT_EQ(got, before);

  // Find() peeks at the unconsumed record with the same terminal status.
  const CmdId w4 =
      dev.Submit(io.now, BlockDevice::Command::MakeWrite(5, Slice(payload)));
  ASSERT_NE(dev.Find(w4), nullptr);
  EXPECT_TRUE(dev.Find(w4)->status.IsResourceExhausted());
  EXPECT_TRUE(dev.Await(w4).status.IsResourceExhausted());
}

// --------------------------- Database -------------------------------------

struct DbStack {
  DbStack() {
    SsdConfig dc = SsdConfig::DuraSsd();
    dc.geometry = FlashGeometry::Tiny();
    dc.geometry.blocks_per_plane = 64;
    dc.geometry.pages_per_block = 32;
    dc.capacitor_budget_bytes = 16 * kMiB;
    device = std::make_unique<SsdDevice>(EagerDestage(dc));
    device->set_tracer(&tracer);
    SimFileSystem::Options fso;
    fso.write_barriers = true;
    fs = std::make_unique<SimFileSystem>(device.get(), fso);
    options.pool_bytes = 2 * kMiB;
    options.double_write = true;
    options.checkpoint_log_bytes = 2 * kMiB;
  }

  Status Open() {
    auto d = Database::Open(io, fs.get(), fs.get(), options);
    if (!d.ok()) return d.status();
    db = std::move(*d);
    db->set_tracer(&tracer);
    return Status::OK();
  }

  IoContext io;
  Tracer tracer;
  std::unique_ptr<SsdDevice> device;
  std::unique_ptr<SimFileSystem> fs;
  std::unique_ptr<Database> db;
  Database::Options options;
};

TEST(DegradedDatabaseTest, AbortsInFlightTxnKeepsServingReadsAndReboots) {
  DbStack s;
  ASSERT_TRUE(s.Open().ok());
  auto tree = s.db->CreateTree(s.io, "t");
  ASSERT_TRUE(tree.ok());

  // Committed history that must survive everything below.
  for (int i = 0; i < 20; ++i) {
    auto txn = s.db->Begin(s.io);
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(s.db->Put(s.io, *txn, *tree, "k" + std::to_string(i),
                          "v" + std::to_string(i))
                    .ok());
    ASSERT_TRUE(s.db->Commit(s.io, *txn).ok());
  }
  // Persist the mapping + home pages so the later capacitor dump and the
  // reboot recovery have nothing dirty left to write.
  ASSERT_TRUE(s.db->Checkpoint(s.io).ok());

  ExhaustSpares(*s.device, s.io);

  // The next transaction dies at commit (the WAL fsync hits the degraded
  // device); the database must abort it cleanly and flip read-only.
  auto txn = s.db->Begin(s.io);
  ASSERT_TRUE(txn.ok());
  Status put = s.db->Put(s.io, *txn, *tree, "doomed", "never");
  Status commit =
      put.ok() ? s.db->Commit(s.io, *txn) : put;
  ASSERT_TRUE(commit.IsResourceExhausted()) << commit.ToString();
  EXPECT_TRUE(s.db->read_only());
  EXPECT_EQ(s.db->stats().degraded_aborts, 1u);
  EXPECT_GE(s.db->metrics().counters().at("db.degraded_aborts"), 1u);

  // The aborted mutation is invisible; committed data keeps serving.
  std::string got;
  EXPECT_TRUE(s.db->Get(s.io, *tree, "doomed", &got).IsNotFound());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        s.db->Get(s.io, *tree, "k" + std::to_string(i), &got).ok())
        << i;
    EXPECT_EQ(got, "v" + std::to_string(i));
  }

  // Every mutating entry point is refused with the same status.
  EXPECT_TRUE(s.db->Begin(s.io).status().IsResourceExhausted());
  EXPECT_TRUE(s.db->Checkpoint(s.io).IsResourceExhausted());
  EXPECT_TRUE(s.db->CreateTree(s.io, "u").status().IsResourceExhausted());

  // The abort showed up in the trace.
  bool saw_abort = false;
  for (const TraceEvent& e : s.tracer.Events()) {
    saw_abort |= (e.type == TraceEventType::kTxnAbort);
  }
  EXPECT_TRUE(saw_abort);

  // Reboot the degraded device: recovery must still produce a consistent
  // database — read-only, with all committed data intact.
  s.db.reset();
  s.device->PowerCut(s.io.now + 1);
  s.device->PowerOn();
  s.io.now = 0;
  ASSERT_TRUE(s.device->degraded());
  ASSERT_TRUE(s.Open().ok()) << "recovery of a degraded device must succeed";
  EXPECT_TRUE(s.db->read_only());
  auto tid = s.db->GetTreeId("t");
  ASSERT_TRUE(tid.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        s.db->Get(s.io, *tid, "k" + std::to_string(i), &got).ok())
        << i;
    EXPECT_EQ(got, "v" + std::to_string(i));
  }
  EXPECT_TRUE(s.db->Get(s.io, *tid, "doomed", &got).IsNotFound());
}

// --------------------------- KvStore ---------------------------------------

TEST(DegradedKvStoreTest, RollsBackInFlightBatchAndStaysReadable) {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.geometry = FlashGeometry::Tiny();
  dc.geometry.blocks_per_plane = 64;
  dc.geometry.pages_per_block = 32;
  dc.capacitor_budget_bytes = 16 * kMiB;
  SsdDevice dev(EagerDestage(dc));
  Tracer tracer;
  dev.set_tracer(&tracer);
  SimFileSystem::Options fso;
  fso.write_barriers = true;
  SimFileSystem fs(&dev, fso);

  IoContext io;
  KvStore::Options ko;
  ko.batch_size = 4;
  auto opened = KvStore::Open(io, &fs, "s.couch", ko);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<KvStore> kv = std::move(*opened);
  kv->set_tracer(&tracer);

  // Two full committed batches.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        kv->Put(io, "k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_EQ(kv->stats().commits, 2u);
  ASSERT_EQ(kv->doc_count(), 8u);

  ExhaustSpares(dev, io);

  // Three puts buffer in the tail; the fourth fills the batch, triggers the
  // header write, hits the degraded device, and the whole batch rolls back.
  ASSERT_TRUE(kv->Put(io, "t0", "x").ok());
  ASSERT_TRUE(kv->Put(io, "t1", "x").ok());
  ASSERT_TRUE(kv->Put(io, "t2", "x").ok());
  Status st = kv->Put(io, "t3", "x");
  ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(kv->read_only());
  EXPECT_EQ(kv->stats().degraded_aborts, 1u);
  EXPECT_GE(kv->metrics().counters().at("kv.degraded_aborts"), 1u);

  // State rolled back to the last durable header: the committed eight docs,
  // none of the in-flight batch.
  EXPECT_EQ(kv->doc_count(), 8u);
  std::string got;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv->Get(io, "k" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, "v" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(kv->Get(io, "t" + std::to_string(i), &got).IsNotFound()) << i;
  }

  // Further mutations are refused; reads keep working.
  EXPECT_TRUE(kv->Put(io, "more", "x").IsResourceExhausted());
  EXPECT_TRUE(kv->Delete(io, "k0").IsResourceExhausted());
  ASSERT_TRUE(kv->Get(io, "k0", &got).ok());

  bool saw_abort = false;
  for (const TraceEvent& e : tracer.Events()) {
    saw_abort |= (e.type == TraceEventType::kTxnAbort);
  }
  EXPECT_TRUE(saw_abort);

  // Reboot: the store recovers to the same committed state.
  kv.reset();
  dev.PowerCut(io.now + 1);
  dev.PowerOn();
  io.now = 0;
  ASSERT_TRUE(dev.degraded());
  auto reopened = KvStore::Open(io, &fs, "s.couch", ko);
  ASSERT_TRUE(reopened.ok())
      << "recovery of a degraded device must succeed: "
      << reopened.status().ToString();
  kv = std::move(*reopened);
  EXPECT_EQ(kv->doc_count(), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv->Get(io, "k" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace durassd
