// Properties of the parallelism-aware lazy destage scheduler:
//   - idle-aware allocation never programs a busy plane while a fully idle
//     plane (free channel included) exists,
//   - sustained write throughput is monotone in the channel count,
//   - a power cut at any instant recovers every acknowledged sector, even
//     ones whose NAND program was never issued (capacitor dump coverage),
//   - overwrite absorption and multi-plane pairing actually fire,
//   - the legacy knobs reproduce the seed (eager, blind round-robin) timing
//     bit-for-bit, keeping the A/B baseline honest.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "flash/flash_array.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;

// --- Idle-aware allocation -------------------------------------------------

TEST(NextIdlePlaneTest, NeverPicksBusyPlaneWhileIdlePlaneExists) {
  FlashGeometry g;
  g.channels = 2;
  g.packages_per_channel = 2;
  g.chips_per_package = 1;
  g.planes_per_chip = 2;  // 8 planes.
  g.blocks_per_plane = 8;
  FlashArray flash(FlashArray::Options{g, false});
  const uint32_t n = g.total_planes();

  Random rng(7);
  SimTime now = 0;
  for (int trial = 0; trial < 300; ++trial) {
    // Make a random subset of planes busy by starting erases on them.
    now += g.erase_latency * 2;  // Everything idle again.
    uint32_t busy_mask = static_cast<uint32_t>(rng.Next() % (1u << n));
    for (uint32_t p = 0; p < n; ++p) {
      if (busy_mask & (1u << p)) {
        ASSERT_TRUE(flash
                        .EraseBlock(now, p, static_cast<uint32_t>(
                                                rng.Next() % g.blocks_per_plane))
                        .ok());
      }
    }
    const uint32_t picked = flash.NextIdlePlane(now);
    bool any_idle = false;
    for (uint32_t p = 0; p < n; ++p) {
      if (flash.plane_ready_time(p) <= now) any_idle = true;
    }
    if (any_idle) {
      EXPECT_LE(flash.plane_ready_time(picked), now)
          << "picked busy plane " << picked << " with mask " << busy_mask;
    }
  }
}

TEST(NextIdlePlaneTest, GroupedPickRespectsSiblingBusyTimes) {
  FlashGeometry g;
  g.channels = 2;
  g.packages_per_channel = 2;
  g.chips_per_package = 1;
  g.planes_per_chip = 2;
  g.blocks_per_plane = 8;
  FlashArray flash(FlashArray::Options{g, false});
  const uint32_t n = g.total_planes();

  Random rng(11);
  SimTime now = 0;
  for (int trial = 0; trial < 300; ++trial) {
    now += g.erase_latency * 2;
    uint32_t busy_mask = static_cast<uint32_t>(rng.Next() % (1u << n));
    for (uint32_t p = 0; p < n; ++p) {
      if (busy_mask & (1u << p)) {
        ASSERT_TRUE(flash.EraseBlock(now, p, 0).ok());
      }
    }
    const uint32_t first = flash.NextIdlePlane(now, 2);
    ASSERT_EQ(first % 2, 0u) << "multi-plane pick must be chip-aligned";
    bool any_idle_pair = false;
    for (uint32_t p = 0; p + 1 < n; p += 2) {
      if (flash.plane_ready_time(p) <= now &&
          flash.plane_ready_time(p + 1) <= now) {
        any_idle_pair = true;
      }
    }
    if (any_idle_pair) {
      EXPECT_LE(flash.plane_ready_time(first), now);
      EXPECT_LE(flash.plane_ready_time(first + 1), now);
    }
  }
}

TEST(NextIdlePlaneTest, StripesRoundRobinWhenAllIdle) {
  FlashArray flash(FlashArray::Options{FlashGeometry::Tiny(), false});
  const uint32_t n = FlashGeometry::Tiny().total_planes();
  std::vector<uint32_t> picks;
  for (uint32_t i = 0; i < n; ++i) picks.push_back(flash.NextIdlePlane(0));
  for (uint32_t i = 1; i < n; ++i) {
    EXPECT_NE(picks[i], picks[i - 1]) << "all-idle picks must stripe";
  }
}

// --- Channel-count monotonicity --------------------------------------------

SimTime MediaBoundRunEnd(uint32_t channels) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.geometry.channels = channels;
  cfg.geometry.packages_per_channel = 2;
  cfg.geometry.chips_per_package = 2;
  cfg.geometry.planes_per_chip = 2;
  cfg.geometry.blocks_per_plane = 256;
  cfg.fw_parallelism = 32;
  cfg.fw_write_base = 10 * kMicrosecond;
  cfg.write_buffer_sectors = 128;
  cfg.cache_capacity_sectors = 256;
  cfg.store_data = false;
  SsdDevice dev(cfg);
  const std::string data(kSector, 'm');
  Random rng(5);
  SimTime t = 0;
  for (int i = 0; i < 2000; ++i) {
    t = dev.Write(t, rng.Uniform(dev.num_sectors()), data).done;
  }
  return dev.Flush(t).done;
}

TEST(DestageSchedulerTest, ThroughputMonotoneInChannelCount) {
  // More channels = more planes = at least as fast. Allow 2% slack for
  // allocation-order noise.
  SimTime prev = MediaBoundRunEnd(1);
  for (uint32_t channels : {2u, 4u, 8u}) {
    const SimTime end = MediaBoundRunEnd(channels);
    EXPECT_LE(end, prev + prev / 50)
        << "channels=" << channels << " slower than half the channels";
    prev = end;
  }
}

// --- Power-cut recovery of acked-but-unissued sectors ----------------------

SsdConfig LazyCutConfig() {
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 16;
  cfg.write_buffer_sectors = 256;  // Large: most sectors stay pending.
  cfg.cache_capacity_sectors = 512;
  cfg.capacitor_budget_bytes = 4 * kMiB;
  cfg.destage_batch_pages = 256;  // Threshold unreachable: fully lazy.
  return cfg;
}

TEST(DestageSchedulerTest, PowerCutRecoversAckedButUnissuedSectors) {
  // Deterministic workload, replayed once per cut instant. Every command
  // acknowledged before the cut must read back intact after recovery — in
  // lazy mode most of them were never issued to NAND and exist only in the
  // capacitor dump.
  constexpr int kWrites = 150;
  auto value = [](int i) {
    std::string v = "sector-" + std::to_string(i) + "-";
    v.resize(kSector, 'p');
    return v;
  };

  // Dry run to learn the ack times and total duration.
  std::vector<SimTime> acks(kWrites, 0);
  SimTime end = 0;
  {
    SsdDevice dev(LazyCutConfig());
    SimTime t = 0;
    for (int i = 0; i < kWrites; ++i) {
      auto r = dev.Write(t, static_cast<Lpn>(i), value(i));
      ASSERT_TRUE(r.status.ok());
      acks[i] = r.done;
      t = r.done;
    }
    end = t;
  }
  ASSERT_GT(end, 0);

  uint64_t total_dumped = 0;
  const int kCuts = 60;  // >= 50 distinct instants.
  for (int c = 1; c <= kCuts; ++c) {
    const SimTime cut = 1 + (end * c) / (kCuts + 1);
    SsdDevice dev(LazyCutConfig());
    SimTime t = 0;
    for (int i = 0; i < kWrites && t < cut; ++i) {
      t = dev.Write(t, static_cast<Lpn>(i), value(i)).done;
    }
    dev.PowerCut(cut);
    dev.PowerOn();
    total_dumped += dev.stats().dumped_pages;
    for (int i = 0; i < kWrites; ++i) {
      if (acks[i] > cut) break;
      std::string got;
      ASSERT_TRUE(dev.Read(0, static_cast<Lpn>(i), 1, &got).status.ok());
      EXPECT_EQ(got, value(i)) << "cut=" << cut << " lost acked write " << i;
    }
  }
  // The sweep must actually have exercised the dump path.
  EXPECT_GT(total_dumped, 0u);
}

// --- Absorption and multi-plane pairing ------------------------------------

TEST(DestageSchedulerTest, OverwriteAbsorptionSavesPrograms) {
  SsdConfig cfg = LazyCutConfig();
  SsdDevice dev(cfg);
  const int kSectors = 64;
  // Burst: submit everything at t=0 so the media saturates and sectors
  // accumulate in the scheduler, then overwrite the same range. Rewrites of
  // pending sectors update the batch in place.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kSectors; ++i) {
      const std::string v(kSector, static_cast<char>('a' + round));
      ASSERT_TRUE(dev.Write(0, static_cast<Lpn>(i), v).status.ok());
    }
  }
  EXPECT_GT(dev.stats().destage_absorbed, 0u);
  SimTime end = dev.Flush(1).done;
  // Absorbed rewrites never cost a program: strictly fewer pages programmed
  // than sectors written / sectors-per-page.
  EXPECT_LT(dev.flash().stats().programs +
                2 * dev.flash().stats().multi_plane_programs,
            static_cast<uint64_t>(3 * kSectors) / 2);
  // And the final contents are the last round's.
  for (int i = 0; i < kSectors; ++i) {
    std::string got;
    ASSERT_TRUE(dev.Read(end, static_cast<Lpn>(i), 1, &got).status.ok());
    EXPECT_EQ(got, std::string(kSector, 'c'));
  }
}

TEST(DestageSchedulerTest, MultiPlaneProgramsPairSiblingPlanes) {
  SsdConfig cfg = LazyCutConfig();
  cfg.multi_plane_program = true;
  {
    SsdDevice dev(cfg);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(
          dev.Write(0, static_cast<Lpn>(i), std::string(kSector, 'x')).status.ok());
    }
    dev.Flush(1);
    EXPECT_GT(dev.flash().stats().multi_plane_programs, 0u);
  }
  cfg.multi_plane_program = false;
  {
    SsdDevice dev(cfg);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(
          dev.Write(0, static_cast<Lpn>(i), std::string(kSector, 'x')).status.ok());
    }
    dev.Flush(1);
    EXPECT_EQ(dev.flash().stats().multi_plane_programs, 0u);
  }
}

// --- Legacy A/B baseline ----------------------------------------------------

TEST(DestageSchedulerTest, LegacyFlagsReproduceSeedTiming) {
  // Golden fingerprint of the pre-scheduler device (eager per-command
  // destage, blind round-robin allocation, no multi-plane). The legacy
  // knobs must keep that path bit-identical so A/B comparisons stay valid.
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.store_data = false;
  cfg.destage_batch_pages = 1;
  cfg.idle_aware_allocation = false;
  cfg.multi_plane_program = false;
  {
    SsdDevice dev(cfg);
    const std::string data(kSector, 'w');
    Random rng(3);
    SimTime t = 0;
    for (int i = 0; i < 2000; ++i) {
      t = dev.Write(t, rng.Uniform(dev.num_sectors()), data).done;
    }
    EXPECT_EQ(t, 129652000);
    EXPECT_EQ(dev.Flush(t).done, 135272480);
    EXPECT_EQ(dev.stats().write_stalls, 0u);
    EXPECT_EQ(dev.flash().stats().programs, 1000u);
    EXPECT_EQ(dev.flash().stats().multi_plane_programs, 0u);
    EXPECT_EQ(dev.stats().destage_absorbed, 0u);
  }
  {
    SsdDevice dev(cfg);
    const std::string data(kSector, 'r');
    SimTime t = 0;
    for (Lpn l = 0; l < 4096; ++l) t = dev.Write(t, l, data).done;
    Random rng(4);
    for (int i = 0; i < 2000; ++i) {
      t = dev.Read(t, rng.Uniform(4096), 1, nullptr).done;
    }
    EXPECT_EQ(t, 294421296);
  }
}

}  // namespace
}  // namespace durassd
