// NAND fault-injection coverage: scripted program/erase failures, the ECC
// read-retry policy, bad-block retirement, and the zero-rate identity
// guarantee (an injector that never fires must not perturb the simulation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flash/fault_model.h"
#include "flash/flash_array.h"
#include "flash/geometry.h"
#include "ssd/ftl.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSector = 4 * kKiB;

std::string SectorData(char fill) { return std::string(kSector, fill); }

// --------------------------- FlashArray level -------------------------------

TEST(FaultInjectionFlashTest, ScriptedProgramFailConsumesPage) {
  FlashArray flash(FlashArray::Options{FlashGeometry::Tiny(), true});
  const FlashGeometry& g = flash.geometry();

  flash.fault_injector().FailProgramAfter(0);
  SimTime done = 0;
  const Status st = flash.ProgramPage(0, g.MakePpn(0, 0, 0), "x", &done);
  EXPECT_TRUE(st.IsIoError());
  EXPECT_GT(done, 0);  // The failed program still took full program time.
  EXPECT_EQ(flash.stats().program_fails, 1u);
  EXPECT_EQ(flash.page_state(g.MakePpn(0, 0, 0)), PageState::kInvalid);
  // The in-order cursor advanced past the dead page: the next page programs.
  EXPECT_EQ(flash.next_program_page(0, 0), 1u);
  EXPECT_TRUE(flash.ProgramPage(done, g.MakePpn(0, 0, 1), "y", &done).ok());
}

TEST(FaultInjectionFlashTest, ScriptedEraseFailGrowsBadBlock) {
  FlashArray flash(FlashArray::Options{FlashGeometry::Tiny(), true});
  const FlashGeometry& g = flash.geometry();
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), "a", &done).ok());

  flash.fault_injector().FailEraseAfter(0);
  EXPECT_TRUE(flash.EraseBlock(done, 0, 0).IsIoError());
  EXPECT_EQ(flash.stats().erase_fails, 1u);
  EXPECT_EQ(flash.stats().bad_blocks, 1u);
  EXPECT_TRUE(flash.is_bad_block(0, 0));

  // A bad block refuses programs and further erases.
  EXPECT_TRUE(flash.ProgramPage(done, g.MakePpn(0, 0, 1), "b", &done)
                  .IsIoError());
  EXPECT_TRUE(flash.EraseBlock(done, 0, 0).IsIoError());
  EXPECT_EQ(flash.stats().erase_fails, 1u);  // Bad-block guard, not a fail.
}

TEST(FaultInjectionFlashTest, RawReaderSeesFlippedBits) {
  FlashArray flash(FlashArray::Options{FlashGeometry::Tiny(), true});
  const FlashGeometry& g = flash.geometry();
  const std::string data(g.page_size, 'd');
  SimTime done = 0;
  ASSERT_TRUE(flash.ProgramPage(0, g.MakePpn(0, 0, 0), data, &done).ok());

  // A fault-unaware caller (no raw_bit_errors out-param) gets the flips
  // applied to the returned bytes.
  flash.fault_injector().FlipBitsOnReadAfter(0, 3);
  std::string out;
  flash.ReadPage(done, g.MakePpn(0, 0, 0), &out);
  EXPECT_NE(out, data);

  // An ECC-aware caller gets pristine bytes plus the raw error count.
  flash.fault_injector().FlipBitsOnReadAfter(0, 3);
  uint32_t raw = 0;
  flash.ReadPage(done, g.MakePpn(0, 0, 0), &out, &raw);
  EXPECT_EQ(raw, 3u);
  EXPECT_EQ(out, data);
}

// ------------------------------- Ftl level ----------------------------------

class FaultInjectionFtlTest : public ::testing::Test {
 protected:
  FaultInjectionFtlTest()
      : flash_(FlashArray::Options{FlashGeometry::Tiny(), true}),
        ftl_(&flash_, Ftl::Options{4 * kKiB, 0.25, 2, 2}) {}

  Status WriteOne(SimTime now, Lpn lpn, const std::string& data,
                  SimTime* done = nullptr) {
    std::vector<Ftl::SectorWrite> w{{lpn, &data}};
    SimTime start = 0;
    SimTime d = 0;
    Status s = ftl_.ProgramSectors(now, w, &start, &d);
    if (done != nullptr) *done = d;
    return s;
  }

  FlashArray flash_;
  Ftl ftl_;
};

TEST_F(FaultInjectionFtlTest, ProgramFailIsRetriedAndBlockRetired) {
  SimTime t = 0;
  for (Lpn l = 0; l < 6; ++l) {
    ASSERT_TRUE(WriteOne(t, l, SectorData('a' + l), &t).ok());
  }

  flash_.fault_injector().FailProgramAfter(0);
  ASSERT_TRUE(WriteOne(t, 6, SectorData('x'), &t).ok());  // Transparent.

  EXPECT_EQ(flash_.stats().program_fails, 1u);
  EXPECT_EQ(ftl_.stats().program_retries, 1u);
  EXPECT_EQ(flash_.stats().bad_blocks, 1u);  // Failed block retired.

  // Every acknowledged sector — including those that lived in the retired
  // block and were relocated — reads back exactly.
  for (Lpn l = 0; l <= 6; ++l) {
    std::string out;
    ASSERT_TRUE(ftl_.ReadSector(t, l, &out).ok()) << "lpn " << l;
    EXPECT_EQ(out, SectorData(l == 6 ? 'x' : 'a' + l)) << "lpn " << l;
  }
}

TEST_F(FaultInjectionFtlTest, GcSurvivesEraseFailure) {
  // The first erase this FTL ever issues is a GC erase; script it to fail.
  flash_.fault_injector().FailEraseAfter(0);

  SimTime t = 0;
  for (int round = 0; round < 400; ++round) {
    const Lpn l = round % 12;
    ASSERT_TRUE(WriteOne(t, l, SectorData('a' + l % 26), &t).ok());
  }
  ASSERT_GT(ftl_.stats().gc_runs, 0u);
  EXPECT_EQ(flash_.stats().erase_fails, 1u);
  EXPECT_EQ(flash_.stats().bad_blocks, 1u);

  for (Lpn l = 0; l < 12; ++l) {
    std::string out;
    ASSERT_TRUE(ftl_.ReadSector(t, l, &out).ok());
    EXPECT_EQ(out, SectorData('a' + l % 26)) << "lpn " << l;
  }
}

TEST_F(FaultInjectionFtlTest, EccCorrectsWithinBudget) {
  SimTime t = 0;
  ASSERT_TRUE(WriteOne(0, 3, SectorData('e'), &t).ok());

  flash_.fault_injector().FlipBitsOnReadAfter(0, 5);  // Budget is 8.
  std::string out;
  ASSERT_TRUE(ftl_.ReadSector(t, 3, &out).ok());
  EXPECT_EQ(out, SectorData('e'));
  EXPECT_EQ(ftl_.stats().ecc_corrected, 5u);
  EXPECT_EQ(ftl_.stats().read_retries, 0u);
  EXPECT_EQ(ftl_.stats().uncorrectable_reads, 0u);
}

TEST_F(FaultInjectionFtlTest, ReadRetryRecoversFromBurstErrors) {
  SimTime t = 0;
  ASSERT_TRUE(WriteOne(0, 3, SectorData('r'), &t).ok());

  // First sense returns 20 raw errors (over the budget of 8); the retry
  // senses clean.
  flash_.fault_injector().FlipBitsOnReadAfter(0, 20);
  std::string out;
  SimTime done = 0;
  ASSERT_TRUE(ftl_.ReadSector(t, 3, &out, &done).ok());
  EXPECT_EQ(out, SectorData('r'));
  EXPECT_EQ(ftl_.stats().read_retries, 1u);
  EXPECT_EQ(ftl_.stats().uncorrectable_reads, 0u);
  EXPECT_EQ(flash_.stats().reads, 2u);  // Initial read + one retry.
}

TEST(FaultInjectionEccTest, UncorrectableReadReportsCorruption) {
  FlashArray flash(FlashArray::Options{FlashGeometry::Tiny(), true});
  // Tight ECC: 2 correctable bits, 2 retries.
  Ftl ftl(&flash, Ftl::Options{4 * kKiB, 0.25, 2, 2, 2, 2, 3});

  const std::string data = SectorData('u');
  std::vector<Ftl::SectorWrite> w{{7, &data}};
  SimTime start = 0;
  SimTime done = 0;
  ASSERT_TRUE(ftl.ProgramSectors(0, w, &start, &done).ok());

  // Initial read and both retries all come back over budget.
  flash.fault_injector().FlipBitsOnReadAfter(0, 10);
  flash.fault_injector().FlipBitsOnReadAfter(1, 10);
  flash.fault_injector().FlipBitsOnReadAfter(2, 10);
  std::string out;
  const Status st = ftl.ReadSector(done, 7, &out);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(ftl.stats().read_retries, 2u);
  EXPECT_EQ(ftl.stats().uncorrectable_reads, 1u);
}

// ----------------------------- Device level ---------------------------------

TEST(FaultInjectionDeviceTest, ScriptedProgramFailsAreInvisibleToHost) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);

  SimTime t = 0;
  for (Lpn l = 0; l < 8; ++l) {
    const auto w = dev.Write(t, l, SectorData('A' + l));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  // Fail the next two NAND programs (destages of the writes below).
  dev.fault_injector().FailProgramAfter(0);
  dev.fault_injector().FailProgramAfter(1);
  for (Lpn l = 8; l < 12; ++l) {
    const auto w = dev.Write(t, l, SectorData('A' + l));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  const auto f = dev.Flush(t);
  ASSERT_TRUE(f.status.ok());
  t = f.done;

  const SsdDevice::FaultStats fs = dev.fault_stats();
  EXPECT_EQ(fs.program_fails, 2u);
  EXPECT_GE(fs.retired_blocks, 1u);

  // Power-cycle so reads come from NAND, not the device cache.
  dev.PowerCut(t + kSecond);
  dev.PowerOn();
  for (Lpn l = 0; l < 12; ++l) {
    std::string got;
    const auto r = dev.Read(0, l, 1, &got);
    ASSERT_TRUE(r.status.ok()) << "lpn " << l;
    EXPECT_EQ(got, SectorData('A' + l)) << "lpn " << l;
  }
  EXPECT_EQ(dev.fault_stats().uncorrectable_reads, 0u);
}

TEST(FaultInjectionDeviceTest, ArmedButSilentInjectorChangesNothing) {
  // A device whose injector can fire (enabled) but never actually does must
  // produce bit-identical timing and stats to a fault-free device.
  SsdConfig plain_cfg = SsdConfig::Tiny(true);
  SsdDevice plain(plain_cfg);

  SsdConfig armed_cfg = SsdConfig::Tiny(true);
  SsdDevice armed(armed_cfg);
  armed.fault_injector().FailProgramAfter(1u << 30);  // Never reached.

  SimTime tp = 0;
  SimTime ta = 0;
  for (int i = 0; i < 60; ++i) {
    const Lpn lpn = i % 16;
    const auto wp = plain.Write(tp, lpn, SectorData('a' + i % 26));
    const auto wa = armed.Write(ta, lpn, SectorData('a' + i % 26));
    ASSERT_TRUE(wp.status.ok());
    ASSERT_TRUE(wa.status.ok());
    ASSERT_EQ(wp.done, wa.done) << "write " << i;
    tp = wp.done;
    ta = wa.done;
  }
  for (Lpn l = 0; l < 16; ++l) {
    std::string gp;
    std::string ga;
    const auto rp = plain.Read(tp, l, 1, &gp);
    const auto ra = armed.Read(ta, l, 1, &ga);
    ASSERT_TRUE(rp.status.ok());
    ASSERT_TRUE(ra.status.ok());
    EXPECT_EQ(rp.done, ra.done);
    EXPECT_EQ(gp, ga);
  }
  EXPECT_EQ(plain.flash().stats().reads, armed.flash().stats().reads);
  EXPECT_EQ(plain.flash().stats().programs, armed.flash().stats().programs);
  EXPECT_EQ(plain.flash().stats().erases, armed.flash().stats().erases);
  EXPECT_EQ(plain.ftl().stats().ecc_corrected, 0u);
  EXPECT_EQ(armed.ftl().stats().ecc_corrected, 0u);
}

TEST(FaultInjectionDeviceTest, LostDumpHeaderFallsBackToFullScan) {
  // The dump header page is the single point replay trusts for the entry
  // count. Lose it to an uncorrectable read and recovery must degrade to
  // the full self-describing scan — not drop the dump.
  SsdConfig cfg = SsdConfig::Tiny(true);
  cfg.read_retry_limit = 0;      // One-shot scripted flips stay effective.
  cfg.ecc_correctable_bits = 8;  // Budget far below the scripted burst.
  SsdDevice dev(cfg);

  // Enough back-to-back writes to saturate the media: the tail sectors are
  // still pending (never issued) at the cut, so they exist only in the dump.
  SimTime t = 0;
  for (Lpn l = 0; l < 16; ++l) {
    const auto w = dev.Write(t, l, SectorData('H' + l));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  dev.PowerCut(t);
  ASSERT_GT(dev.stats().dumped_pages, 0u);
  // First flash read after the cut is ReplayDump's header read.
  dev.fault_injector().FlipBitsOnReadAfter(0, 4096);
  dev.PowerOn();

  EXPECT_GE(dev.fault_stats().uncorrectable_reads, 1u);
  EXPECT_GT(dev.stats().replayed_pages, 0u);  // Fallback scan found entries.
  for (Lpn l = 0; l < 16; ++l) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, l, 1, &got).status.ok()) << "lpn " << l;
    EXPECT_EQ(got, SectorData('H' + l)) << "lpn " << l;
  }
}

TEST(FaultInjectionDeviceTest, DumpSurvivesProgramFailDuringCapacitorDump) {
  SsdConfig cfg = SsdConfig::Tiny(true);
  SsdDevice dev(cfg);

  SimTime t = 0;
  for (Lpn l = 0; l < 6; ++l) {
    const auto w = dev.Write(t, l, SectorData('D' + l));
    ASSERT_TRUE(w.status.ok());
    t = w.done;
  }
  // Cut power immediately — the cached sectors go through the capacitor
  // dump, and one dump-page program fails mid-dump.
  dev.fault_injector().FailProgramAfter(2);
  dev.PowerCut(t);
  dev.PowerOn();

  for (Lpn l = 0; l < 6; ++l) {
    std::string got;
    ASSERT_TRUE(dev.Read(0, l, 1, &got).status.ok());
    EXPECT_EQ(got, SectorData('D' + l)) << "lpn " << l;
  }
  EXPECT_EQ(dev.stats().capacitor_overruns, 0u);
}

}  // namespace
}  // namespace durassd
