#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/page.h"

namespace durassd {
namespace {

std::string MakeCell(const std::string& body) {
  std::string cell;
  const uint16_t len = static_cast<uint16_t>(2 + body.size());
  cell.append(reinterpret_cast<const char*>(&len), 2);
  cell.append(body);
  return cell;
}

std::string CellBody(Slice cell) {
  return std::string(cell.data() + 2, cell.size() - 2);
}

TEST(PageTest, FormatInitializesHeader) {
  Page page(4096);
  page.Format(42, PageType::kBTreeLeaf);
  EXPECT_EQ(page.header()->magic, Page::kMagic);
  EXPECT_EQ(page.page_id(), 42u);
  EXPECT_EQ(page.type(), PageType::kBTreeLeaf);
  EXPECT_EQ(page.nslots(), 0u);
  EXPECT_EQ(page.header()->aux1, kInvalidPageId);
}

TEST(PageTest, InsertAndReadCells) {
  Page page(4096);
  page.Format(1, PageType::kBTreeLeaf);
  ASSERT_TRUE(page.InsertCell(0, MakeCell("bbb")));
  ASSERT_TRUE(page.InsertCell(0, MakeCell("aaa")));
  ASSERT_TRUE(page.InsertCell(2, MakeCell("ccc")));
  ASSERT_EQ(page.nslots(), 3u);
  EXPECT_EQ(CellBody(page.CellAt(0)), "aaa");
  EXPECT_EQ(CellBody(page.CellAt(1)), "bbb");
  EXPECT_EQ(CellBody(page.CellAt(2)), "ccc");
}

TEST(PageTest, RemoveCellShiftsSlots) {
  Page page(4096);
  page.Format(1, PageType::kBTreeLeaf);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(page.InsertCell(i, MakeCell(std::string(1, 'a' + i))));
  }
  page.RemoveCell(1);  // Remove "b".
  ASSERT_EQ(page.nslots(), 4u);
  EXPECT_EQ(CellBody(page.CellAt(0)), "a");
  EXPECT_EQ(CellBody(page.CellAt(1)), "c");
  EXPECT_EQ(CellBody(page.CellAt(3)), "e");
}

TEST(PageTest, InsertFailsWhenFull) {
  Page page(4096);
  page.Format(1, PageType::kBTreeLeaf);
  const std::string big(500, 'x');
  int inserted = 0;
  while (page.InsertCell(0, MakeCell(big))) inserted++;
  EXPECT_GT(inserted, 5);
  EXPECT_LT(inserted, 10);
  // Free space is honestly reported.
  EXPECT_LT(page.FreeSpace(), 504u);
}

TEST(PageTest, CompactReclaimsRemovedCells) {
  Page page(4096);
  page.Format(1, PageType::kBTreeLeaf);
  const std::string big(500, 'x');
  std::vector<int> slots;
  while (page.InsertCell(0, MakeCell(big))) {
  }
  const uint16_t n = page.nslots();
  // Remove every other cell, then a same-size insert must succeed again
  // (possibly via internal compaction).
  for (uint16_t i = n; i-- > 0;) {
    if (i % 2 == 0) page.RemoveCell(i);
  }
  EXPECT_TRUE(page.InsertCell(0, MakeCell(big)));
  EXPECT_EQ(CellBody(page.CellAt(0)), big);
}

TEST(PageTest, ReplaceCellSameSizeInPlace) {
  Page page(4096);
  page.Format(1, PageType::kBTreeLeaf);
  ASSERT_TRUE(page.InsertCell(0, MakeCell("old")));
  ASSERT_TRUE(page.ReplaceCell(0, MakeCell("new")));
  EXPECT_EQ(CellBody(page.CellAt(0)), "new");
  EXPECT_EQ(page.nslots(), 1u);
}

TEST(PageTest, ReplaceCellGrows) {
  Page page(4096);
  page.Format(1, PageType::kBTreeLeaf);
  ASSERT_TRUE(page.InsertCell(0, MakeCell("a")));
  ASSERT_TRUE(page.InsertCell(1, MakeCell("z")));
  ASSERT_TRUE(page.ReplaceCell(0, MakeCell(std::string(100, 'A'))));
  EXPECT_EQ(CellBody(page.CellAt(0)), std::string(100, 'A'));
  EXPECT_EQ(CellBody(page.CellAt(1)), "z");
}

TEST(PageTest, ChecksumRoundTrip) {
  Page page(4096);
  page.Format(7, PageType::kBTreeLeaf);
  ASSERT_TRUE(page.InsertCell(0, MakeCell("payload")));
  page.SealChecksum();
  EXPECT_TRUE(page.VerifyChecksum());
}

TEST(PageTest, ChecksumDetectsTornWrite) {
  Page page(4096);
  page.Format(7, PageType::kBTreeLeaf);
  ASSERT_TRUE(page.InsertCell(0, MakeCell("payload")));
  page.SealChecksum();

  // Simulate a shorn write: tail of the page replaced by zeros.
  std::string raw(page.data(), page.size());
  for (size_t i = raw.size() / 2; i < raw.size(); ++i) raw[i] = '\0';
  Page torn(4096);
  torn.CopyFrom(raw);
  EXPECT_FALSE(torn.VerifyChecksum());
}

TEST(PageTest, ChecksumDetectsSingleBitRot) {
  Page page(4096);
  page.Format(7, PageType::kMeta);
  page.SealChecksum();
  std::string raw(page.data(), page.size());
  raw[2000] ^= 0x40;
  Page rotten(4096);
  rotten.CopyFrom(raw);
  EXPECT_FALSE(rotten.VerifyChecksum());
}

TEST(PageTest, SupportsAllConfiguredSizes) {
  for (uint32_t size : {4096u, 8192u, 16384u}) {
    Page page(size);
    page.Format(1, PageType::kBTreeLeaf);
    int inserted = 0;
    while (page.InsertCell(0, MakeCell(std::string(100, 'k')))) inserted++;
    // Capacity scales roughly with page size.
    EXPECT_GT(inserted, static_cast<int>(size / 128));
    page.SealChecksum();
    EXPECT_TRUE(page.VerifyChecksum());
  }
}

}  // namespace
}  // namespace durassd
