// CI torture entry point: a seed-range sweep of the crash harness meant to
// run long under sanitizers. The range is injected by the environment so CI
// can scale it without a rebuild:
//
//   DURASSD_TORTURE_SEEDS=lo:hi   inclusive seed range   (default 100:105)
//   DURASSD_TORTURE_FAIL_FILE=p   append one reproducer line per violation
//                                 (uploaded as a CI artifact on failure)
//   DURASSD_TORTURE_REPRO="..."   run EXACTLY this one scenario instead of
//                                 the sweep (paste a printed repro line)
//
// Every violation string is self-contained: each failure also prints a
// single copy-pasteable `DURASSD_TORTURE_REPRO="..."` line that re-runs
// that exact scenario via CrashHarness::Options::FromString.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/crash_harness.h"

namespace durassd {
namespace {

using Engine = CrashHarness::Engine;

void ParseSeedRange(uint64_t* lo, uint64_t* hi) {
  *lo = 100;
  *hi = 105;
  const char* env = std::getenv("DURASSD_TORTURE_SEEDS");
  if (env == nullptr) return;
  uint64_t a = 0, b = 0;
  if (std::sscanf(env, "%llu:%llu", reinterpret_cast<unsigned long long*>(&a),
                  reinterpret_cast<unsigned long long*>(&b)) == 2 &&
      a <= b) {
    *lo = a;
    *hi = b;
  }
}

void AppendFailures(const std::vector<std::string>& violations) {
  const char* path = std::getenv("DURASSD_TORTURE_FAIL_FILE");
  if (path == nullptr || violations.empty()) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  for (const std::string& v : violations) {
    std::fprintf(f, "%s\n", v.c_str());
  }
  std::fclose(f);
}

void TortureOne(const CrashHarness::Options& o, int* failures) {
  const CrashHarness::Report rep = CrashHarness::Run(o);
  if (rep.ok) return;
  ++*failures;
  AppendFailures(rep.violations);
  for (const std::string& v : rep.violations) {
    ADD_FAILURE() << v;
  }
  ADD_FAILURE() << "repro: DURASSD_TORTURE_REPRO=\"" << o.ToString() << "\"";
}

/// If DURASSD_TORTURE_REPRO is set, runs that single pasted scenario and
/// returns true (the sweep is skipped — this is the debugging mode).
bool MaybeRunRepro() {
  const char* repro = std::getenv("DURASSD_TORTURE_REPRO");
  if (repro == nullptr) return false;
  int failures = 0;
  TortureOne(CrashHarness::Options::FromString(repro), &failures);
  EXPECT_EQ(failures, 0) << "pasted repro still violates";
  return true;
}

TEST(CrashTorture, SeedRangeSweep) {
  if (MaybeRunRepro()) return;
  uint64_t lo = 0, hi = 0;
  ParseSeedRange(&lo, &hi);
  int failures = 0;
  uint64_t ran = 0;
  for (uint64_t seed = lo; seed <= hi; ++seed) {
    // Per seed: both engines across the three durability deployments
    // (volatile + flush, durable + ordered NCQ, barrier-enabled), two cut
    // points each, plus a nested-cut and a fault-injection scenario on
    // alternating seeds.
    for (Engine engine : {Engine::kDatabase, Engine::kKvStore}) {
      for (DurabilityMode mode :
           {DurabilityMode::kVolatileFlush, DurabilityMode::kDurableOrderedNcq,
            DurabilityMode::kBarrier}) {
        for (double cut : {0.25, 0.65}) {
          CrashHarness::Options o;
          o.engine = engine;
          o.durable_cache = mode != DurabilityMode::kVolatileFlush;
          o.write_barriers = true;
          o.double_write = true;
          o.kv_batch_size = 4;
          o.ops = 48;
          o.keyspace = 32;
          o.seed = seed;
          o.cut_fraction = cut;
          o.durability_mode = mode;
          // Barrier scenarios snap half their cuts to epoch edges, where
          // a cross-epoch ordering bug would surface.
          o.cut_at_barrier_boundary =
              mode == DurabilityMode::kBarrier && cut >= 0.5;
          o.nested_cut = (seed % 2 == 0) && cut < 0.5;
          o.inject_faults = (seed % 2 == 1) && cut >= 0.5;
          // Alternate the queue mode and exercise async checkpoint
          // destage on half the scenarios, so cuts land with commands in
          // flight in both ordered and unordered modes across the range.
          o.ordered_queue = (seed % 2 == 0);
          o.checkpoint_queue_depth = cut < 0.5 ? 8 : 1;
          // Rotate the destage placement too: durable-cache scenarios on
          // alternating seed+cut parity run the log-structured segment
          // path, so checksummed replay faces the same oracle.
          o.log_structured_destage =
              o.durable_cache && ((seed + (cut < 0.5 ? 0 : 1)) % 2 == 0);
          TortureOne(o, &failures);
          ++ran;
        }
      }

      // Tiered stack (flash extended cache over HDD): host acks are flash-
      // journal acks, so the kStrict oracle applies. Rotate warmth and
      // admission across the range; tiny destage batches keep a group
      // destage in flight at most cut instants.
      CrashHarness::Options t;
      t.engine = engine;
      t.tiered = true;
      t.ops = 48;
      t.keyspace = 32;
      t.seed = seed;
      t.cut_fraction = engine == Engine::kDatabase ? 0.4 : 0.7;
      t.tier_destage_batch = 8;
      t.tier_admission = seed % 2;
      t.tier_warm = (seed + (engine == Engine::kDatabase ? 0 : 1)) % 2 == 0;
      t.nested_cut = seed % 2 == 0;
      TortureOne(t, &failures);
      ++ran;
    }
  }
  EXPECT_EQ(failures, 0);
  // 14 scenarios per seed (12 raw-stack + 2 tiered); the default range
  // keeps local runs quick.
  EXPECT_EQ(ran, (hi - lo + 1) * 14);
}

}  // namespace
}  // namespace durassd
