#include "tier/tiered_device.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"

namespace durassd {
namespace {

/// Journal page layout (one flash sector):
///   magic u32 | type u8 | seq u64 | group u64 | idx u32 | of u32 |
///   count u32 | count x (op u8, slot u32, cap_lpn u64) | crc32c u32
/// The CRC seals everything before it; the rest of the sector is zero.
constexpr uint32_t kMapMagic = 0x7E1ECA5Eu;
constexpr size_t kPageHeaderBytes = 4 + 1 + 8 + 8 + 4 + 4 + 4;
constexpr size_t kEntryBytes = 1 + 4 + 8;

}  // namespace

uint32_t TieredDevice::EntriesPerPage() const {
  return static_cast<uint32_t>(
      (cfg_.flash.sector_size - kPageHeaderBytes - 4) / kEntryBytes);
}

TieredDevice::TieredDevice(TieredConfig config) : cfg_(std::move(config)) {
  // The commit-point semantics (journal ack implies data acks; acked
  // commands atomic + durable) require the durable ordered write cache.
  cfg_.flash.durable_cache = true;
  cfg_.flash.ordered_queue = true;
  cfg_.flash.cache_enabled = true;
  store_data_ = cfg_.flash.store_data;
  cfg_.capacity_hdd.store_data = store_data_;
  cfg_.capacity_ssd.store_data = store_data_;
  cfg_.capacity_hdd.sector_size = cfg_.flash.sector_size;
  cfg_.capacity_ssd.sector_size = cfg_.flash.sector_size;

  flash_ = std::make_unique<SsdDevice>(cfg_.flash);
  if (cfg_.capacity_is_hdd) {
    capacity_ = std::make_unique<HddDevice>(cfg_.capacity_hdd);
  } else {
    capacity_ = std::make_unique<SsdDevice>(cfg_.capacity_ssd);
  }
  capacity_sectors_ = capacity_->num_sectors();

  // Size the cache and the map ring. The ring must hold two full
  // checkpoints plus the delta window between them with slack, so the
  // writer can never lap the live window (see DESIGN.md §14).
  const uint64_t flash_sectors = flash_->num_sectors();
  const uint32_t epp = EntriesPerPage();
  const double pct = std::clamp(cfg_.flash_pct, 0.01, 100.0);
  uint64_t want = static_cast<uint64_t>(
      pct / 100.0 * static_cast<double>(capacity_sectors_));
  want = std::max<uint64_t>(want, 16);
  uint64_t slots = std::min(want, flash_sectors > 64 ? flash_sectors - 64 : 1);
  ckpt_pages_ = static_cast<uint32_t>((slots + epp - 1) / epp);
  if (ckpt_pages_ == 0) ckpt_pages_ = 1;
  map_pages_ = cfg_.map_pages != 0 ? cfg_.map_pages : 4 * ckpt_pages_ + 16;
  map_pages_ = static_cast<uint32_t>(
      std::min<uint64_t>(map_pages_, flash_sectors / 2));
  if (map_pages_ < 8) map_pages_ = 8;
  // Clamp the slot count to what the chosen ring can checkpoint and what
  // the flash tier has left after the ring.
  const uint64_t ring_max_slots =
      map_pages_ > 20 ? (static_cast<uint64_t>(map_pages_) - 16) / 4 * epp
                      : epp;
  slots = std::min({slots, ring_max_slots, flash_sectors - map_pages_});
  if (slots == 0) slots = 1;
  ckpt_pages_ = static_cast<uint32_t>((slots + epp - 1) / epp);
  if (ckpt_pages_ == 0) ckpt_pages_ = 1;
  ckpt_interval_ =
      std::max<uint32_t>(4, (map_pages_ - 2 * ckpt_pages_) / 2);

  slots_.assign(static_cast<size_t>(slots), Slot{});
  RebuildFreeList();
  if (!store_data_) sim_ring_.resize(map_pages_);
  scratch_.assign(cfg_.flash.sector_size, '\0');

  c_hits_ = metrics_.Counter("tier.read_hits");
  c_misses_ = metrics_.Counter("tier.read_misses");
  c_admitted_ = metrics_.Counter("tier.admitted_sectors");
  c_bypassed_ = metrics_.Counter("tier.bypassed_sectors");
  c_destage_sectors_ = metrics_.Counter("tier.destage_sectors");
  c_destage_runs_ = metrics_.Counter("tier.destage_runs");
  c_map_page_writes_ = metrics_.Counter("tier.map_page_writes");
  c_evictions_ = metrics_.Counter("tier.evictions");

  // Seed the ring with an empty checkpoint so recovery always finds a
  // complete base, even after a cut on a freshly-deployed device.
  Status st;
  SimTime done = 0;
  WriteCheckpoint(0, &done, &st);
  assert(st.ok());
}

void TieredDevice::RebuildFreeList() {
  free_slots_.clear();
  for (size_t s = slots_.size(); s-- > 0;) {
    if (!slots_[s].valid) free_slots_.push_back(static_cast<uint32_t>(s));
  }
}

// ---------------------------------------------------------------------------
// Journal encode/decode
// ---------------------------------------------------------------------------

std::string TieredDevice::EncodePage(const MapPage& p) const {
  std::string out;
  out.reserve(cfg_.flash.sector_size);
  PutFixed32(&out, kMapMagic);
  out.push_back(p.is_checkpoint ? '\1' : '\0');
  PutFixed64(&out, p.seq);
  PutFixed64(&out, p.group);
  PutFixed32(&out, p.idx);
  PutFixed32(&out, p.of);
  PutFixed32(&out, static_cast<uint32_t>(p.deltas.size()));
  for (const MapDelta& d : p.deltas) {
    out.push_back(static_cast<char>(d.op));
    PutFixed32(&out, d.slot);
    PutFixed64(&out, d.cap_lpn);
  }
  PutFixed32(&out, Crc32c(out.data(), out.size()));
  out.resize(cfg_.flash.sector_size, '\0');
  return out;
}

bool TieredDevice::DecodePage(Slice raw, MapPage* out) const {
  if (raw.size() < kPageHeaderBytes + 4) return false;
  const char* p = raw.data();
  if (DecodeFixed32(p) != kMapMagic) return false;
  const uint32_t count = DecodeFixed32(p + 29);
  const size_t used = kPageHeaderBytes + static_cast<size_t>(count) * kEntryBytes;
  if (used + 4 > raw.size()) return false;
  if (DecodeFixed32(p + used) != Crc32c(p, used)) return false;
  out->valid = true;
  out->is_checkpoint = p[4] != '\0';
  out->seq = DecodeFixed64(p + 5);
  out->group = DecodeFixed64(p + 13);
  out->idx = DecodeFixed32(p + 21);
  out->of = DecodeFixed32(p + 25);
  out->deltas.clear();
  out->deltas.reserve(count);
  const char* e = p + kPageHeaderBytes;
  for (uint32_t i = 0; i < count; ++i, e += kEntryBytes) {
    MapDelta d;
    d.op = static_cast<uint8_t>(e[0]);
    d.slot = DecodeFixed32(e + 1);
    d.cap_lpn = DecodeFixed64(e + 5);
    out->deltas.push_back(d);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Journal writer
// ---------------------------------------------------------------------------

SimTime TieredDevice::WriteOpenPage(SimTime t, Status* st) {
  MapPage p;
  p.valid = true;
  p.is_checkpoint = false;
  p.seq = map_seq_;
  p.deltas = open_deltas_;
  Slice payload;
  std::string encoded;
  if (store_data_) {
    encoded = EncodePage(p);
    payload = Slice(encoded);
  } else {
    payload = Slice(scratch_.data(), cfg_.flash.sector_size);
  }
  const Result r = flash_->Write(t, map_ring_pos_, payload);
  if (!r.status.ok()) {
    *st = r.status;
    return r.done;
  }
  ++stats_.map_page_writes;
  ++*c_map_page_writes_;
  if (!store_data_) {
    auto& vers = sim_ring_[map_ring_pos_];
    vers.push_back({std::move(p), r.done});
    // Versions superseded by one already durable at the current frontier
    // can never be a cut's survivor.
    while (vers.size() > 1 && vers[1].ack <= t) vers.erase(vers.begin());
  }
  return r.done;
}

void TieredDevice::CloseOpenPage(SimTime t, SimTime* done, Status* st) {
  map_ring_pos_ = (map_ring_pos_ + 1) % map_pages_;
  ++map_seq_;
  open_deltas_.clear();
  ++closed_since_ckpt_;
  if (closed_since_ckpt_ >= ckpt_interval_) {
    WriteCheckpoint(std::max(t, *done), done, st);
  }
}

void TieredDevice::WriteCheckpoint(SimTime t, SimTime* done, Status* st) {
  std::vector<MapDelta> entries;
  entries.reserve(dir_.size());
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].valid) continue;
    entries.push_back({slots_[s].dirty ? kOpMapDirty : kOpMapClean, s,
                       slots_[s].cap_lpn});
  }
  const uint32_t epp = EntriesPerPage();
  const uint32_t of = std::max<uint32_t>(
      1, static_cast<uint32_t>((entries.size() + epp - 1) / epp));
  const uint64_t group = map_seq_;
  SimTime when = t;
  for (uint32_t i = 0; i < of; ++i) {
    MapPage p;
    p.valid = true;
    p.is_checkpoint = true;
    p.seq = map_seq_++;
    p.group = group;
    p.idx = i;
    p.of = of;
    const size_t lo = static_cast<size_t>(i) * epp;
    const size_t hi = std::min(entries.size(), lo + epp);
    if (lo < hi) p.deltas.assign(entries.begin() + lo, entries.begin() + hi);
    Slice payload;
    std::string encoded;
    if (store_data_) {
      encoded = EncodePage(p);
      payload = Slice(encoded);
    } else {
      payload = Slice(scratch_.data(), cfg_.flash.sector_size);
    }
    const Result r = flash_->Write(when, map_ring_pos_, payload);
    if (!r.status.ok()) {
      *st = r.status;
      return;
    }
    ++stats_.map_page_writes;
    ++*c_map_page_writes_;
    if (!store_data_) {
      auto& vers = sim_ring_[map_ring_pos_];
      vers.push_back({std::move(p), r.done});
      while (vers.size() > 1 && vers[1].ack <= when) vers.erase(vers.begin());
    }
    *done = std::max(*done, r.done);
    map_ring_pos_ = (map_ring_pos_ + 1) % map_pages_;
  }
  open_deltas_.clear();
  closed_since_ckpt_ = 0;
  ++stats_.map_checkpoints;
}

SimTime TieredDevice::AppendMapDeltas(SimTime t,
                                      const std::vector<MapDelta>& deltas,
                                      Status* st) {
  if (deltas.empty()) return t;
  const size_t cap = EntriesPerPage();
  SimTime done = t;
  size_t i = 0;
  while (i < deltas.size() && st->ok()) {
    const size_t remaining = deltas.size() - i;
    // A delta batch that fits one page must land in ONE page write — that
    // write is the command's atomic commit point. Oversized batches chunk
    // (and are atomic per chunk; host commands never get near the limit).
    if (open_deltas_.size() >= cap ||
        (i == 0 && remaining <= cap &&
         open_deltas_.size() + remaining > cap)) {
      CloseOpenPage(t, &done, st);
      if (!st->ok()) break;
    }
    const size_t take = std::min(remaining, cap - open_deltas_.size());
    open_deltas_.insert(open_deltas_.end(), deltas.begin() + i,
                        deltas.begin() + i + take);
    i += take;
    done = std::max(done, WriteOpenPage(std::max(t, done), st));
  }
  return done;
}

// ---------------------------------------------------------------------------
// Allocation / eviction / destage
// ---------------------------------------------------------------------------

void TieredDevice::EnsureFreeSlots(SimTime t, size_t want, bool allow_destage,
                                   Status* st) {
  while (free_slots_.size() < want && st->ok()) {
    // Clock sweep (second chance) for a batch of clean victims.
    std::vector<uint32_t> victims;
    const size_t nslots = slots_.size();
    for (size_t scanned = 0;
         victims.size() < cfg_.evict_batch && scanned < 2 * nslots;
         ++scanned) {
      const uint32_t s = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % static_cast<uint32_t>(nslots);
      Slot& sl = slots_[s];
      if (!sl.valid || sl.dirty) continue;
      if (sl.ref) {
        sl.ref = false;
        continue;
      }
      victims.push_back(s);
    }
    if (victims.empty()) {
      // Everything is dirty (or invalid): only a destage round can mint
      // clean victims.
      if (!allow_destage || dirty_count_ == 0) return;
      DestageRound(t, cfg_.destage_batch, st);
      continue;
    }
    // The batch invalidation is journaled BEFORE any reuse: a reused
    // slot's data write is submitted after this page write, so the ordered
    // flash queue guarantees a cut can never leave new bytes under a
    // surviving old mapping.
    std::vector<MapDelta> deltas;
    deltas.reserve(victims.size());
    for (const uint32_t s : victims) {
      deltas.push_back({kOpInvalidate, s, slots_[s].cap_lpn});
      dir_.erase(slots_[s].cap_lpn);
      slots_[s] = Slot{};
      free_slots_.push_back(s);
      ++stats_.evictions;
      ++*c_evictions_;
    }
    AppendMapDeltas(t, deltas, st);
  }
}

bool TieredDevice::AcquireSlot(SimTime t, uint32_t* slot, Status* st) {
  if (free_slots_.empty()) {
    EnsureFreeSlots(t, std::max<size_t>(1, cfg_.free_reserve_slots),
                    /*allow_destage=*/true, st);
  } else if (free_slots_.size() < cfg_.free_reserve_slots) {
    EnsureFreeSlots(t, cfg_.free_reserve_slots, /*allow_destage=*/false, st);
  }
  if (!st->ok() || free_slots_.empty()) return false;
  *slot = free_slots_.back();
  free_slots_.pop_back();
  return true;
}

SimTime TieredDevice::DestageRound(SimTime t, uint32_t max_victims,
                                   Status* st) {
  if (dirty_count_ == 0 || max_victims == 0) return t;
  // Victim selection: an LBA-order sweep from the cursor (elevator-style),
  // wrapping once. dir_ is a sorted map, so this is a cheap ordered walk.
  std::vector<std::pair<Lpn, uint32_t>> victims;
  auto it = dir_.lower_bound(destage_cursor_);
  for (size_t examined = 0;
       victims.size() < max_victims && examined < dir_.size(); ++examined) {
    if (it == dir_.end()) it = dir_.begin();
    if (slots_[it->second].dirty) victims.emplace_back(it->first, it->second);
    ++it;
  }
  if (victims.empty()) return t;
  destage_cursor_ = victims.back().first + 1;
  std::sort(victims.begin(), victims.end());

  // Phase 1: pull victim bytes off the flash tier.
  std::vector<std::string> bytes(store_data_ ? victims.size() : 0);
  SimTime tr = t;
  for (size_t i = 0; i < victims.size(); ++i) {
    const Result r = flash_->Read(t, SlotDataLpn(victims[i].second), 1,
                                  store_data_ ? &bytes[i] : nullptr);
    if (!r.status.ok()) {
      *st = r.status;
      return tr;
    }
    tr = std::max(tr, r.done);
  }

  // Phase 2: coalesce into contiguous runs — the capacity tier sees a few
  // large sorted writes, not per-page random ones.
  SimTime tw = tr;
  size_t i = 0;
  while (i < victims.size()) {
    size_t j = i + 1;
    while (j < victims.size() && victims[j].first == victims[j - 1].first + 1) {
      ++j;
    }
    const size_t run = j - i;
    Slice payload;
    std::string run_buf;
    if (store_data_) {
      run_buf.reserve(run * cfg_.flash.sector_size);
      for (size_t k = i; k < j; ++k) run_buf.append(bytes[k]);
      payload = Slice(run_buf);
    } else {
      const size_t nbytes = run * cfg_.flash.sector_size;
      if (scratch_.size() < nbytes) scratch_.assign(nbytes, '\0');
      payload = Slice(scratch_.data(), nbytes);
    }
    const Result r = capacity_->Write(tr, victims[i].first, payload);
    if (!r.status.ok()) {
      *st = r.status;
      return tw;
    }
    tw = std::max(tw, r.done);
    ++stats_.destage_runs;
    ++*c_destage_runs_;
    i = j;
  }

  // Phase 3: the capacity tier's cache is volatile — only a completed
  // FLUSH makes the copies durable, and only then may the journal mark
  // the slots clean. A cut in between merely re-destages.
  const Result f = capacity_->Flush(tw);
  if (!f.status.ok()) {
    *st = f.status;
    return tw;
  }
  std::vector<MapDelta> deltas;
  deltas.reserve(victims.size());
  for (const auto& [lpn, slot] : victims) {
    slots_[slot].dirty = false;
    --dirty_count_;
    deltas.push_back({kOpMarkClean, slot, lpn});
  }
  const SimTime tj = AppendMapDeltas(f.done, deltas, st);
  ++stats_.destage_batches;
  stats_.destage_sectors += victims.size();
  *c_destage_sectors_ += victims.size();
  return tj;
}

void TieredDevice::MaybeDestage(SimTime now) {
  // Idle opportunism: the gap that just ended belonged to the devices —
  // issue the round at the idle start so it used quiet capacity time.
  if (dirty_count_ >= cfg_.destage_idle_min && last_activity_ > 0 &&
      now > last_activity_ &&
      now - last_activity_ >= cfg_.destage_idle_ns) {
    Status st;
    DestageRound(last_activity_, cfg_.destage_batch, &st);
  }
}

// ---------------------------------------------------------------------------
// Command execution
// ---------------------------------------------------------------------------

BlockDevice::Result TieredDevice::Execute(SimTime t, const Command& cmd) {
  if (!powered_) return {Status::DeviceOffline("tier powered off"), t};
  if (cut_armed_ && t >= scheduled_cut_) {
    const SimTime cut = scheduled_cut_;
    ++stats_.scheduled_cuts_tripped;
    PowerCut(cut);
    return {Status::DeviceOffline("scheduled power cut"), cut};
  }
  MaybeDestage(t);

  Result r;
  switch (cmd.op) {
    case Command::Op::kWrite:
      r = DoWrite(t, cmd.lpn, cmd.data);
      break;
    case Command::Op::kRead:
      r = DoRead(t, cmd.lpn, cmd.nsec, cmd.out);
      break;
    case Command::Op::kFlush:
    case Command::Op::kBarrier:
      // No native barrier: acked writes are already durable, so an
      // ordering point degenerates to the (cheap) flash drain.
      r = DoFlush(t);
      break;
  }

  if (cut_armed_ && r.done > scheduled_cut_) {
    // Causality guard (ArrayDevice/SsdDevice contract): a command whose
    // completion lands past the armed instant must not be acknowledged.
    // Member effects carrying post-cut timestamps are reverted by each
    // member's own PowerCut rollback; the directory is rebuilt from the
    // journal the flash rolled back consistently.
    const SimTime cut = scheduled_cut_;
    ++stats_.scheduled_cuts_tripped;
    PowerCut(cut);
    return {Status::DeviceOffline("scheduled power cut"), cut};
  }
  if (r.status.ok()) last_activity_ = std::max(last_activity_, r.done);
  return r;
}

BlockDevice::Result TieredDevice::DoWrite(SimTime now, Lpn lpn, Slice data) {
  if (data.empty() || data.size() % cfg_.flash.sector_size != 0) {
    return {Status::InvalidArgument("write size not sector-aligned"), now};
  }
  const uint32_t nsec =
      static_cast<uint32_t>(data.size() / cfg_.flash.sector_size);
  if (lpn + nsec > capacity_sectors_) {
    return {Status::InvalidArgument("write beyond device capacity"), now};
  }
  ++stats_.host_writes;
  stats_.host_written_sectors += nsec;

  // Remap-always: every sector goes to a FRESH slot; the old slot (and its
  // bytes) stay untouched until the journal's commit point supersedes
  // them, which is what makes the whole command atomic.
  Status st;
  std::vector<uint32_t> placed;
  placed.reserve(nsec);
  SimTime data_done = now;
  for (uint32_t i = 0; i < nsec; ++i) {
    uint32_t slot = 0;
    if (!AcquireSlot(now, &slot, &st)) {
      for (const uint32_t s : placed) free_slots_.push_back(s);
      return {st.ok() ? Status::ResourceExhausted("no cache slot") : st, now};
    }
    Slice sector;
    if (store_data_) {
      sector = Slice(data.data() + static_cast<size_t>(i) * cfg_.flash.sector_size,
                     cfg_.flash.sector_size);
    } else {
      sector = Slice(scratch_.data(), cfg_.flash.sector_size);
    }
    const Result dr = flash_->Write(now, SlotDataLpn(slot), sector);
    if (!dr.status.ok()) {
      free_slots_.push_back(slot);
      for (const uint32_t s : placed) free_slots_.push_back(s);
      return {dr.status, dr.done};
    }
    data_done = std::max(data_done, dr.done);
    placed.push_back(slot);
  }

  // Commit: in-memory remap plus the journal delta batch [invalidate old,
  // map new dirty]. Data writes precede the journal write in the ordered
  // flash queue, so journal-acked implies data-acked.
  std::vector<MapDelta> deltas;
  deltas.reserve(2 * nsec);
  for (uint32_t i = 0; i < nsec; ++i) {
    const Lpn l = lpn + i;
    const uint32_t ns = placed[i];
    auto it = dir_.find(l);
    if (it != dir_.end()) {
      const uint32_t old = it->second;
      deltas.push_back({kOpInvalidate, old, l});
      if (slots_[old].dirty) --dirty_count_;
      slots_[old] = Slot{};
      free_slots_.push_back(old);
      dir_.erase(it);
    }
    deltas.push_back({kOpMapDirty, ns, l});
    slots_[ns] = Slot{l, true, true, true};
    dir_[l] = ns;
    ++dirty_count_;
  }
  const SimTime jdone = AppendMapDeltas(now, deltas, &st);
  if (!st.ok()) return {st, jdone};
  const SimTime ack = std::max(data_done, jdone);

  // Batch-threshold trigger: drain a sorted group once enough is dirty.
  // The round extends member timelines (realistic interference for later
  // commands) but never this command's already-computed ack.
  if (dirty_count_ >= cfg_.destage_batch) {
    Status dst;
    DestageRound(ack, cfg_.destage_batch, &dst);
  }
  return {Status::OK(), ack};
}

BlockDevice::Result TieredDevice::DoRead(SimTime now, Lpn lpn, uint32_t nsec,
                                         std::string* out) {
  if (nsec == 0 || lpn + nsec > capacity_sectors_) {
    return {Status::InvalidArgument("read beyond device capacity"), now};
  }
  ++stats_.host_reads;
  stats_.host_read_sectors += nsec;

  // Sequential-scan detection: a run of back-to-back LBAs long enough to
  // look like a backup/table scan stops polluting the cache.
  bool scan = false;
  if (cfg_.admission == TieredConfig::Admission::kBypassSequential) {
    seq_run_ = (lpn == seq_last_end_) ? seq_run_ + nsec : nsec;
    seq_last_end_ = lpn + nsec;
    scan = seq_run_ >= cfg_.seq_run_sectors;
  }
  const bool admit_misses = !scan;

  if (out != nullptr) {
    out->clear();
    out->reserve(static_cast<size_t>(nsec) * cfg_.flash.sector_size);
  }

  struct MissRun {
    Lpn lpn;
    uint32_t nsec;
    std::string bytes;  ///< Capacity bytes (store_data + admission only).
  };
  std::vector<MissRun> misses;
  SimTime done = now;
  uint32_t i = 0;
  while (i < nsec) {
    const Lpn l = lpn + i;
    auto it = dir_.find(l);
    if (it != dir_.end()) {
      // Hit run: extend while the mapping stays slot-contiguous so one
      // flash command covers it.
      const uint32_t start_slot = it->second;
      slots_[start_slot].ref = true;
      uint32_t run = 1;
      while (i + run < nsec) {
        auto jt = dir_.find(l + run);
        if (jt == dir_.end() || jt->second != start_slot + run) break;
        slots_[jt->second].ref = true;
        ++run;
      }
      std::string tmp;
      const Result r = flash_->Read(now, SlotDataLpn(start_slot), run,
                                    out != nullptr ? &tmp : nullptr);
      if (!r.status.ok()) return {r.status, r.done};
      if (out != nullptr) out->append(tmp);
      done = std::max(done, r.done);
      stats_.tier_read_hits += run;
      *c_hits_ += run;
      i += run;
    } else {
      uint32_t run = 1;
      while (i + run < nsec && dir_.find(l + run) == dir_.end()) ++run;
      MissRun mr{l, run, {}};
      std::string* dst = nullptr;
      if (out != nullptr || (admit_misses && store_data_)) dst = &mr.bytes;
      const Result r = capacity_->Read(now, l, run, dst);
      if (!r.status.ok()) return {r.status, r.done};
      if (out != nullptr) out->append(mr.bytes);
      done = std::max(done, r.done);
      stats_.tier_read_misses += run;
      *c_misses_ += run;
      if (admit_misses) {
        misses.push_back(std::move(mr));
      } else {
        stats_.bypassed_sectors += run;
        *c_bypassed_ += run;
      }
      i += run;
    }
  }

  // Admission: populate the cache from the fetched bytes once they are
  // available (at `done`). Never force a destage on the read path — when
  // the free pool and clean victims run out, the miss just stays cold.
  // Data write first, journal (kOpMapClean) after: a cut in between
  // leaves the slot unmapped, which is merely a cold sector.
  if (!misses.empty()) {
    Status st;
    std::vector<MapDelta> deltas;
    bool full = false;
    for (const MissRun& mr : misses) {
      for (uint32_t k = 0; k < mr.nsec && !full; ++k) {
        if (free_slots_.empty()) {
          EnsureFreeSlots(done, cfg_.free_reserve_slots,
                          /*allow_destage=*/false, &st);
          if (!st.ok() || free_slots_.empty()) {
            full = true;
            break;
          }
        }
        const uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        Slice sector;
        if (store_data_) {
          sector = Slice(mr.bytes.data() +
                             static_cast<size_t>(k) * cfg_.flash.sector_size,
                         cfg_.flash.sector_size);
        } else {
          sector = Slice(scratch_.data(), cfg_.flash.sector_size);
        }
        const Result wr = flash_->Write(done, SlotDataLpn(slot), sector);
        if (!wr.status.ok()) {
          free_slots_.push_back(slot);
          full = true;
          break;
        }
        const Lpn l = mr.lpn + k;
        deltas.push_back({kOpMapClean, slot, l});
        slots_[slot] = Slot{l, true, false, true};
        dir_[l] = slot;
        ++stats_.admitted_sectors;
        ++*c_admitted_;
      }
    }
    if (!deltas.empty()) AppendMapDeltas(done, deltas, &st);
  }
  return {Status::OK(), done};
}

BlockDevice::Result TieredDevice::DoFlush(SimTime now) {
  ++stats_.flushes;
  // Acked data is already durable on the flash tier (cache + journal are
  // capacitor-protected); FLUSH only drains the flash tier's own state.
  return flash_->Flush(now);
}

// ---------------------------------------------------------------------------
// Power events & recovery
// ---------------------------------------------------------------------------

void TieredDevice::PowerCut(SimTime t) {
  cut_armed_ = false;
  if (!powered_) return;
  powered_ = false;
  flash_->PowerCut(t);
  capacity_->PowerCut(t);
  if (!store_data_) {
    // Mirror the flash tier's rollback: a journal page version acked
    // after the cut never reached durability.
    for (auto& vers : sim_ring_) {
      while (!vers.empty() && vers.back().ack > t) vers.pop_back();
      if (vers.size() > 1) vers.erase(vers.begin(), vers.end() - 1);
    }
  }
  AbortInFlight(t);
}

void TieredDevice::ApplyDelta(const MapDelta& d) {
  if (d.slot >= slots_.size()) return;
  switch (d.op) {
    case kOpInvalidate: {
      Slot& sl = slots_[d.slot];
      if (sl.valid) {
        auto it = dir_.find(sl.cap_lpn);
        if (it != dir_.end() && it->second == d.slot) dir_.erase(it);
        sl = Slot{};
      }
      break;
    }
    case kOpMapDirty:
    case kOpMapClean: {
      Slot& sl = slots_[d.slot];
      if (sl.valid) {
        auto it = dir_.find(sl.cap_lpn);
        if (it != dir_.end() && it->second == d.slot) dir_.erase(it);
      }
      auto other = dir_.find(d.cap_lpn);
      if (other != dir_.end() && other->second != d.slot) {
        slots_[other->second] = Slot{};
        dir_.erase(other);
      }
      sl = Slot{d.cap_lpn, true, d.op == kOpMapDirty, false};
      dir_[d.cap_lpn] = d.slot;
      break;
    }
    case kOpMarkClean: {
      Slot& sl = slots_[d.slot];
      if (sl.valid && sl.cap_lpn == d.cap_lpn) sl.dirty = false;
      break;
    }
    default:
      break;
  }
}

SimTime TieredDevice::RecoverDirectory(SimTime t) {
  // Scan the whole ring. With real bytes each page is read back and CRC
  // validated; in timing-only mode the ack-pruned mirror supplies the
  // content while the same scan time is charged.
  std::vector<std::pair<uint32_t, MapPage>> pages;
  SimTime done = t;
  if (store_data_) {
    std::string buf;
    for (uint32_t p = 0; p < map_pages_; ++p) {
      const Result r = flash_->Read(t, p, 1, &buf);
      if (!r.status.ok()) continue;
      done = std::max(done, r.done);
      MapPage mp;
      if (DecodePage(Slice(buf), &mp)) pages.emplace_back(p, std::move(mp));
    }
  } else {
    // Same page-by-page scan as the real path so the charged recovery
    // time is bit-identical; content comes from the ack-pruned mirror.
    for (uint32_t p = 0; p < map_pages_; ++p) {
      const Result r = flash_->Read(t, p, 1, nullptr);
      if (r.status.ok()) done = std::max(done, r.done);
      if (!sim_ring_[p].empty()) {
        pages.emplace_back(p, sim_ring_[p].back().page);
      }
    }
  }
  stats_.recovery_map_pages_valid = pages.size();

  // Newest complete checkpoint group (group id = seq of fragment 0, so
  // the largest complete group id is the newest checkpoint).
  std::map<uint64_t, std::map<uint32_t, const MapPage*>> groups;
  for (const auto& [pos, p] : pages) {
    if (p.is_checkpoint) groups[p.group][p.idx] = &p;
  }
  const std::map<uint32_t, const MapPage*>* best = nullptr;
  uint64_t best_group = 0;
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    const uint32_t of = it->second.begin()->second->of;
    if (it->second.size() == of) {
      bool complete = true;
      for (uint32_t i = 0; i < of; ++i) {
        if (it->second.find(i) == it->second.end()) {
          complete = false;
          break;
        }
      }
      if (complete) {
        best = &it->second;
        best_group = it->first;
        break;
      }
    }
  }

  dir_.clear();
  std::fill(slots_.begin(), slots_.end(), Slot{});
  uint64_t base_seq = 0;
  if (best != nullptr) {
    for (const auto& [idx, p] : *best) {
      for (const MapDelta& d : p->deltas) ApplyDelta(d);
      base_seq = std::max(base_seq, p->seq);
    }
  }
  // Delta pages newer than the checkpoint, ascending seq. The ring writer
  // never laps the live window and the flash rollback loses suffixes only,
  // so the surviving post-checkpoint deltas are gap-free.
  std::vector<const MapPage*> deltas;
  for (const auto& [pos, p] : pages) {
    if (!p.is_checkpoint && p.seq > base_seq) deltas.push_back(&p);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const MapPage* a, const MapPage* b) { return a->seq < b->seq; });
  for (const MapPage* p : deltas) {
    for (const MapDelta& d : p->deltas) ApplyDelta(d);
  }

  // Reset the writer past the newest surviving page.
  uint64_t max_seq = best != nullptr ? base_seq : 0;
  uint32_t max_pos = map_pages_ - 1;  // Fresh device: open page starts at 0.
  for (const auto& [pos, p] : pages) {
    if (p.seq >= max_seq) {
      max_seq = p.seq;
      max_pos = pos;
    }
  }
  map_seq_ = max_seq + 1;
  map_ring_pos_ = (max_pos + 1) % map_pages_;
  open_deltas_.clear();
  closed_since_ckpt_ = deltas.size();

  dirty_count_ = 0;
  stats_.recovered_entries = 0;
  stats_.recovered_dirty = 0;
  for (const Slot& sl : slots_) {
    if (!sl.valid) continue;
    ++stats_.recovered_entries;
    if (sl.dirty) {
      ++dirty_count_;
      ++stats_.recovered_dirty;
    }
  }
  RebuildFreeList();
  clock_hand_ = 0;
  destage_cursor_ = 0;
  (void)best_group;
  return done;
}

SimTime TieredDevice::DropDirectory(SimTime t, Status* st) {
  // Cold-start conversion: dirty data must still reach the capacity tier
  // (correctness is not optional — only warmth is), then the directory is
  // dropped via a fresh empty checkpoint.
  while (dirty_count_ > 0 && st->ok()) {
    t = DestageRound(t, cfg_.destage_batch, st);
  }
  if (!st->ok()) return t;
  dir_.clear();
  std::fill(slots_.begin(), slots_.end(), Slot{});
  dirty_count_ = 0;
  RebuildFreeList();
  clock_hand_ = 0;
  SimTime done = t;
  WriteCheckpoint(t, &done, st);
  ++stats_.cold_resets;
  return done;
}

SimTime TieredDevice::PowerOn() {
  if (powered_) return 0;
  SimTime dur = std::max(flash_->PowerOn(), capacity_->PowerOn());
  powered_ = true;
  SimTime t = RecoverDirectory(dur);
  if (!cfg_.warm_recovery) {
    Status st;
    t = DropDirectory(t, &st);
  }
  seq_last_end_ = kInvalidLpn;
  seq_run_ = 0;
  last_activity_ = t;
  last_recovery_duration_ = t;
  return t;
}

Status TieredDevice::Shutdown(SimTime now) {
  if (!powered_) return Status::DeviceOffline("tier powered off");
  Status st;
  SimTime t = now;
  while (dirty_count_ > 0 && st.ok()) {
    t = DestageRound(t, cfg_.destage_batch, &st);
  }
  if (!st.ok()) return st;
  const Result f = capacity_->Flush(t);
  if (!f.status.ok()) return f.status;
  t = std::max(t, f.done);
  const Status fs = flash_->Shutdown(t);
  if (!fs.ok()) return fs;
  capacity_->PowerCut(t);  // Cache flushed, nothing in flight: clean off.
  powered_ = false;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TieredConfig TieredDefaults(DeviceModel flash_model, bool store_data) {
  TieredConfig tc;
  tc.flash = SsdConfigForModel(flash_model == DeviceModel::kHdd
                                   ? DeviceModel::kDuraSsd
                                   : flash_model,
                               /*cache_on=*/true, store_data);
  tc.flash.durable_cache = true;
  tc.flash.ordered_queue = true;
  tc.capacity_is_hdd = true;
  tc.capacity_hdd = HddConfigForModel(/*cache_on=*/true, store_data);
  return tc;
}

std::unique_ptr<TieredDevice> MakeTieredDevice(TieredConfig cfg) {
  return std::make_unique<TieredDevice>(std::move(cfg));
}

}  // namespace durassd
