#ifndef DURASSD_TIER_TIERED_DEVICE_H_
#define DURASSD_TIER_TIERED_DEVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "host/block_device.h"
#include "ssd/device_factory.h"
#include "ssd/hdd_device.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {

/// Configuration of a TieredDevice: a small durable-cache flash tier
/// fronting a large, cheap capacity tier (FaCE-style flash extended cache).
struct TieredConfig {
  std::string name = "Tiered";

  /// The flash tier. Must be a durable-cache, ordered-queue config (the
  /// persistent directory's commit-point semantics rely on both).
  SsdConfig flash = SsdConfig::DuraSsd();

  /// The capacity tier: the HDD model by default, or a commodity
  /// volatile-cache SSD when capacity_is_hdd is false.
  bool capacity_is_hdd = true;
  HddDevice::Config capacity_hdd;
  SsdConfig capacity_ssd = SsdConfig::SsdA();

  /// Cache size as a percentage of the capacity tier, clamped to what the
  /// flash tier can actually hold after the map region is carved out.
  double flash_pct = 10.0;

  /// Read-miss admission policy. Writes ALWAYS land on flash — that is the
  /// durability story — admission only controls whether a read miss
  /// populates the cache.
  enum class Admission {
    kAll,               ///< Every miss is admitted.
    kBypassSequential,  ///< Scan-like sequential runs bypass the cache so a
                        ///< backup cannot flush the hot set.
  };
  Admission admission = Admission::kBypassSequential;
  /// A read stream whose consecutive-LBA run reaches this many sectors is
  /// classified as a scan (admission bypass until the run breaks).
  uint32_t seq_run_sectors = 64;

  /// Dirty victims per group destage round. Victims are taken in LBA order
  /// and coalesced into contiguous runs, so the capacity tier sees few,
  /// large, sorted writes instead of per-page random ones.
  uint32_t destage_batch = 64;
  /// Idle opportunism: when the host has been quiet for destage_idle_ns
  /// and at least destage_idle_min sectors are dirty, a round is issued at
  /// the idle start so the capacity tier's quiet time is used.
  SimTime destage_idle_ns = 2 * kMillisecond;
  uint32_t destage_idle_min = 8;

  /// Free-slot low-water mark: allocation refills the free pool by
  /// batch-invalidating clean victims (one journal write for the batch).
  uint32_t free_reserve_slots = 16;
  /// Clean victims invalidated per refill round.
  uint32_t evict_batch = 32;

  /// Warm recovery (the FaCE claim): rebuild the full directory from the
  /// on-flash journal at PowerOn. When false the device still recovers and
  /// destages dirty entries (correctness is never optional) but then drops
  /// the directory — the cold-start baseline the rewarm A/B measures.
  bool warm_recovery = true;

  /// Flash sectors reserved for the directory journal ring. 0 = auto:
  /// sized from the slot count so a full checkpoint plus its delta window
  /// always fits with slack.
  uint32_t map_pages = 0;
};

/// Flash as an extended cache over a cheap capacity tier (FaCE lineage of
/// the paper; ROADMAP item 4's tiered half). Composes two existing device
/// models under one BlockDevice:
///
///  - Writes: every sector goes to a fresh flash slot; one journal page
///    write — a delta batch [invalidate old slot, map new slot -> LBA
///    dirty] appended to the checksummed on-flash map region — is the
///    atomic commit point. The flash tier's ordered queue guarantees the
///    journal ack implies the data acks, so an acknowledged command is
///    atomic + durable (ack = journal ack).
///  - Reads: directory hits are served from flash; misses fetch from the
///    capacity tier as coalesced runs and are admitted (journaled clean)
///    unless the stream looks like a sequential scan.
///  - Destage: dirty victims are drained in LBA-sorted multi-victim
///    batches, written to the capacity tier as contiguous runs, FLUSHed
///    (the HDD track cache is volatile), and only then journaled clean —
///    a cut between flush and journal merely re-destages.
///  - Recovery: the journal ring (delta pages + periodic full checkpoints,
///    each page CRC32C-sealed) is scanned at PowerOn and the directory
///    rebuilt — a WARM cache after a power cut, FaCE's faster-recovery
///    claim, validated by the crash harness's tiered scenarios.
///
/// Power-cut model: like ArrayDevice, the tier arms its own scheduled cut
/// and guards both Execute entry and completion causality; member effects
/// carrying post-cut timestamps are reverted by each member's own PowerCut
/// rollback, and the directory is rebuilt solely from the journal the
/// flash tier rolled back consistently.
class TieredDevice : public BlockDevice {
 public:
  struct Stats {
    uint64_t host_writes = 0;
    uint64_t host_written_sectors = 0;
    uint64_t host_reads = 0;
    uint64_t host_read_sectors = 0;
    uint64_t tier_read_hits = 0;     ///< Sectors served from flash.
    uint64_t tier_read_misses = 0;   ///< Sectors fetched from capacity.
    uint64_t admitted_sectors = 0;   ///< Misses admitted into the cache.
    uint64_t bypassed_sectors = 0;   ///< Misses bypassed as scan traffic.
    uint64_t destage_batches = 0;    ///< Group-destage rounds.
    uint64_t destage_sectors = 0;    ///< Dirty sectors destaged.
    uint64_t destage_runs = 0;       ///< Contiguous capacity writes issued
                                     ///< (sectors/runs = mean run length).
    uint64_t evictions = 0;          ///< Clean slots invalidated for reuse.
    uint64_t map_page_writes = 0;    ///< Journal page programs (deltas).
    uint64_t map_checkpoints = 0;    ///< Full directory checkpoints.
    uint64_t flushes = 0;
    uint64_t scheduled_cuts_tripped = 0;
    // --- Last PowerOn recovery ---
    uint64_t recovered_entries = 0;  ///< Directory entries rebuilt.
    uint64_t recovered_dirty = 0;    ///< ... of which were dirty.
    uint64_t recovery_map_pages_valid = 0;  ///< CRC-clean journal pages.
    uint64_t cold_resets = 0;        ///< Cold-start conversions performed.

    double hit_ratio() const {
      const uint64_t total = tier_read_hits + tier_read_misses;
      return total == 0 ? 0.0
                        : static_cast<double>(tier_read_hits) /
                              static_cast<double>(total);
    }
  };

  explicit TieredDevice(TieredConfig config);
  ~TieredDevice() override = default;

  TieredDevice(const TieredDevice&) = delete;
  TieredDevice& operator=(const TieredDevice&) = delete;

  // --- BlockDevice ---
  uint32_t sector_size() const override { return cfg_.flash.sector_size; }
  /// The host sees the capacity tier's address space; flash is invisible.
  uint64_t num_sectors() const override { return capacity_sectors_; }
  void PowerCut(SimTime t) override;
  SimTime PowerOn() override;
  /// The journal page write is a single-sector atomic commit point for the
  /// whole command (one command's deltas never split across pages when
  /// they fit one, and host commands are far below the ~300-entry page
  /// capacity).
  bool supports_atomic_write() const override { return true; }
  bool has_durable_cache() const override { return true; }
  /// Host acks equal flash journal acks, which the flash tier's ordered
  /// queue keeps monotone in submission order: a cut loses a suffix.
  bool ordered_writes() const override { return true; }
  bool supports_barrier() const override { return false; }

  /// Arms a power cut (crash-harness hook; same contract as
  /// SsdDevice/ArrayDevice::SchedulePowerCut). Members are NOT armed: the
  /// tier guards its own Execute and cascades PowerCut to both members.
  void SchedulePowerCut(SimTime t) {
    scheduled_cut_ = t;
    cut_armed_ = true;
  }
  void CancelScheduledPowerCut() { cut_armed_ = false; }
  bool scheduled_cut_armed() const { return cut_armed_; }

  /// Clean shutdown: destage every dirty sector, flush the capacity tier,
  /// journal the clean state, then shut both members down.
  Status Shutdown(SimTime now);

  bool powered() const { return powered_; }
  bool degraded() const { return flash_->degraded(); }
  uint64_t epoch_ordering_violations() const {
    return flash_->stats().epoch_ordering_violations;
  }

  const TieredConfig& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }
  SsdDevice& flash_tier() { return *flash_; }
  const SsdDevice& flash_tier() const { return *flash_; }
  BlockDevice& capacity_tier() { return *capacity_; }

  uint64_t cache_slots() const { return slots_.size(); }
  uint32_t map_ring_pages() const { return map_pages_; }
  uint64_t dirty_slots() const { return dirty_count_; }
  uint64_t free_slots() const { return free_slots_.size(); }
  /// Virtual duration of the last PowerOn (members + journal scan +
  /// optional cold conversion).
  SimTime last_recovery_duration() const { return last_recovery_duration_; }

  /// `tier.*` counters; hot-path updates go through stable pointers.
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Attaches a tracer to the flash tier (the member whose flush/barrier
  /// completions are the commit boundaries the host observes).
  void set_tracer(Tracer* tracer) { flash_->set_tracer(tracer); }

 protected:
  Result Execute(SimTime t, const Command& cmd) override;

 private:
  /// One cache slot's in-memory state (authoritative copy is the journal).
  struct Slot {
    Lpn cap_lpn = kInvalidLpn;
    bool valid = false;
    bool dirty = false;
    bool ref = false;  ///< Clock second-chance bit (not journaled).
  };

  /// One journal delta. `op` values are the on-flash encoding.
  struct MapDelta {
    uint8_t op = 0;  ///< kOpInvalidate/kOpMapDirty/kOpMarkClean/kOpMapClean.
    uint32_t slot = 0;
    Lpn cap_lpn = 0;
  };
  static constexpr uint8_t kOpInvalidate = 0;
  static constexpr uint8_t kOpMapDirty = 1;
  static constexpr uint8_t kOpMarkClean = 2;
  static constexpr uint8_t kOpMapClean = 3;

  /// A decoded journal page (delta page or checkpoint fragment).
  struct MapPage {
    bool valid = false;
    bool is_checkpoint = false;
    uint64_t seq = 0;
    uint64_t group = 0;  ///< Checkpoint: seq of the group's first page.
    uint32_t idx = 0;    ///< Checkpoint: fragment index within the group.
    uint32_t of = 0;     ///< Checkpoint: total fragments in the group.
    std::vector<MapDelta> deltas;
  };

  /// Timing-only mode (store_data == false): the journal's logical content
  /// is mirrored in memory, version-stamped with each page write's ack so
  /// a power cut prunes exactly what the flash rollback would.
  struct SimPageVersion {
    MapPage page;
    SimTime ack = 0;
  };

  Result DoWrite(SimTime now, Lpn lpn, Slice data);
  Result DoRead(SimTime now, Lpn lpn, uint32_t nsec, std::string* out);
  Result DoFlush(SimTime now);

  Lpn SlotDataLpn(uint32_t slot) const { return map_pages_ + slot; }
  uint32_t EntriesPerPage() const;

  /// Appends `deltas` to the journal: the open ring page is cumulatively
  /// rewritten in place (the durable cache absorbs the rewrites), closing
  /// pages and checkpointing as thresholds hit. Returns the ack of the
  /// last page write (>= t). Deltas that fit one page are never split —
  /// that page write is the command's atomic commit point.
  SimTime AppendMapDeltas(SimTime t, const std::vector<MapDelta>& deltas,
                          Status* st);
  /// Seals the open delta page (no I/O — its last rewrite is already
  /// durable) and advances the ring; triggers a checkpoint when due.
  void CloseOpenPage(SimTime t, SimTime* done, Status* st);
  /// Serializes the whole directory into `of` checkpoint fragments written
  /// at the ring cursor.
  void WriteCheckpoint(SimTime t, SimTime* done, Status* st);
  /// Writes the open page's current cumulative content at the ring cursor.
  SimTime WriteOpenPage(SimTime t, Status* st);
  std::string EncodePage(const MapPage& p) const;
  bool DecodePage(Slice raw, MapPage* out) const;

  /// Pops a free slot, refilling the pool (clean-victim batch
  /// invalidation, forced destage when everything is dirty) as needed.
  /// Returns false when no slot can be produced (pathological sizing).
  bool AcquireSlot(SimTime t, uint32_t* slot, Status* st);
  /// Refills the free pool to `want` via clock-swept clean victims; when
  /// `allow_destage`, an all-dirty cache is drained first.
  void EnsureFreeSlots(SimTime t, size_t want, bool allow_destage,
                       Status* st);
  /// One multi-victim group destage round: up to `max_victims` dirty slots
  /// in LBA order, coalesced into contiguous capacity runs, flushed, then
  /// journaled clean. Returns the round's completion time (t when idle).
  SimTime DestageRound(SimTime t, uint32_t max_victims, Status* st);
  /// Batch/idle triggers, evaluated on command entry and exit.
  void MaybeDestage(SimTime now);

  /// Rebuilds the directory from the journal at time t (real page reads +
  /// CRC validation when store_data; the ack-pruned mirror otherwise, with
  /// the same scan time charged). Returns the post-scan time.
  SimTime RecoverDirectory(SimTime t);
  /// Cold-start conversion: destage all dirty, drop the directory, write a
  /// fresh empty checkpoint. Correctness-preserving — only warmth is lost.
  SimTime DropDirectory(SimTime t, Status* st);

  void ApplyDelta(const MapDelta& d);
  void RebuildFreeList();

  TieredConfig cfg_;
  MetricsRegistry metrics_;
  std::unique_ptr<SsdDevice> flash_;
  std::unique_ptr<BlockDevice> capacity_;
  uint64_t capacity_sectors_ = 0;

  // --- Directory ---
  std::vector<Slot> slots_;
  std::map<Lpn, uint32_t> dir_;  ///< Capacity LBA -> slot (sorted: the
                                 ///< destage sweep walks it in LBA order).
  std::vector<uint32_t> free_slots_;
  uint64_t dirty_count_ = 0;
  uint32_t clock_hand_ = 0;
  Lpn destage_cursor_ = 0;  ///< LBA sweep position (elevator-ish).

  // --- Journal ring ---
  uint32_t map_pages_ = 0;        ///< Ring size in flash sectors.
  uint32_t ckpt_pages_ = 0;       ///< Worst-case fragments per checkpoint.
  uint32_t ckpt_interval_ = 0;    ///< Delta pages closed between checkpoints.
  uint32_t map_ring_pos_ = 0;     ///< Ring slot of the open page.
  uint64_t map_seq_ = 1;          ///< Seq of the open page.
  uint64_t closed_since_ckpt_ = 0;
  std::vector<MapDelta> open_deltas_;  ///< Cumulative open-page content.
  /// Timing-only journal mirror (empty when store_data).
  std::vector<std::vector<SimPageVersion>> sim_ring_;

  // --- Admission (sequential-scan detection) ---
  Lpn seq_last_end_ = kInvalidLpn;
  uint64_t seq_run_ = 0;

  bool powered_ = true;
  bool cut_armed_ = false;
  SimTime scheduled_cut_ = 0;
  SimTime last_activity_ = 0;
  SimTime last_recovery_duration_ = 0;
  bool store_data_ = true;
  std::string scratch_;  ///< Zero payload for timing-only member writes.

  Stats stats_;
  MetricCounter* c_hits_;
  MetricCounter* c_misses_;
  MetricCounter* c_admitted_;
  MetricCounter* c_bypassed_;
  MetricCounter* c_destage_sectors_;
  MetricCounter* c_destage_runs_;
  MetricCounter* c_map_page_writes_;
  MetricCounter* c_evictions_;
};

/// Factory seam for benches, tests, and the crash harness: flash tier from
/// the Table-1 preset line-up (device_factory's SsdConfigForModel), HDD
/// capacity tier from the factory's HDD preset.
TieredConfig TieredDefaults(DeviceModel flash_model, bool store_data);
std::unique_ptr<TieredDevice> MakeTieredDevice(TieredConfig cfg);

}  // namespace durassd

#endif  // DURASSD_TIER_TIERED_DEVICE_H_
