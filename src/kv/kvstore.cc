#include "kv/kvstore.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/crc32c.h"

namespace durassd {

namespace {
constexpr uint32_t kHeaderMagic = 0xC0C4B453;
constexpr uint32_t kBlockSize = 4 * kKiB;
constexpr uint8_t kChunkDoc = 1;
constexpr uint8_t kChunkNode = 2;
// Chunk framing: [total_len u32][crc u32][type u8][body].
constexpr uint32_t kChunkOverhead = 9;
}  // namespace

uint32_t KvStore::Node::SerializedSize() const {
  uint32_t size = kChunkOverhead + 3;  // count u16 + leaf u8.
  for (const Entry& e : entries) {
    size += 2 + 8 + 4 + static_cast<uint32_t>(e.key.size());
  }
  return size;
}

KvStore::KvStore(SimFileSystem* fs, SimFile* file, std::string name,
                 Options options)
    : fs_(fs),
      file_(file),
      name_(std::move(name)),
      opts_(options),
      h_commit_ns_(metrics_.GetHistogram("kv.commit_ns")),
      h_fsync_ns_(metrics_.GetHistogram("kv.fsync_ns")),
      c_degraded_aborts_(metrics_.Counter("kv.degraded_aborts")) {}

void KvStore::NoteCommitted() {
  committed_root_ = root_;
  committed_seq_ = seq_;
  committed_doc_count_ = doc_count_;
  committed_live_bytes_ = live_bytes_;
  committed_boundary_ = tail_base_;
}

void KvStore::RestoreCommitted() {
  root_ = committed_root_;
  seq_ = committed_seq_;
  doc_count_ = committed_doc_count_;
  live_bytes_ = committed_live_bytes_;
  tail_base_ = committed_boundary_;
  append_offset_ = committed_boundary_;
  tail_.clear();
  updates_since_commit_ = 0;
  // Cached nodes at or past the boundary describe the discarded tail.
  node_cache_.erase(node_cache_.lower_bound(committed_boundary_),
                    node_cache_.end());
}

Status KvStore::ReadOnlyError() const {
  return Status::ResourceExhausted("kvstore is read-only: " +
                                   degraded_reason_);
}

void KvStore::EnterReadOnly(IoContext& io, const Status& cause) {
  if (read_only_) return;
  read_only_ = true;
  degraded_reason_ = cause.message();
  const uint64_t dropped = seq_ - committed_seq_;
  RestoreCommitted();
  stats_.degraded_aborts++;
  ++*c_degraded_aborts_;
  if (tracer_) {
    tracer_->Record(io.now, TraceEventType::kTxnAbort, dropped,
                    static_cast<uint64_t>(cause.code()));
  }
}

StatusOr<std::unique_ptr<KvStore>> KvStore::Open(IoContext& io,
                                                 SimFileSystem* fs,
                                                 const std::string& name,
                                                 Options options) {
  const bool existing = fs->Exists(name);
  SimFile* file = fs->Open(name);
  auto store = std::unique_ptr<KvStore>(
      new KvStore(fs, file, name, options));
  if (existing && file->size() > 0) {
    DURASSD_RETURN_IF_ERROR(store->Recover(io));
  }
  return store;
}

// ---------------------------------------------------------------------------
// Chunk encoding
// ---------------------------------------------------------------------------

uint64_t KvStore::AppendChunk(uint8_t type, Slice body, uint32_t* total_len) {
  const uint64_t off = tail_base_ + tail_.size();
  std::string framed;
  framed.push_back(static_cast<char>(type));
  framed.append(body.data(), body.size());
  PutFixed32(&tail_, static_cast<uint32_t>(framed.size()) + 8);
  PutFixed32(&tail_, Crc32c(framed.data(), framed.size()));
  tail_.append(framed);
  *total_len = static_cast<uint32_t>(framed.size()) + 8;
  append_offset_ = tail_base_ + tail_.size();
  return off;
}

KvStore::NodeRef KvStore::AppendNode(const Node& node) {
  std::string body;
  body.push_back(node.leaf ? 1 : 0);
  PutFixed32(&body, static_cast<uint32_t>(node.entries.size()));
  for (const Entry& e : node.entries) {
    PutLengthPrefixed(&body, e.key);
    PutFixed64(&body, e.off);
    PutFixed32(&body, e.len);
  }
  uint32_t len = 0;
  const uint64_t off = AppendChunk(kChunkNode, body, &len);
  stats_.node_appends++;
  node_cache_[off] = node;
  if (node_cache_.size() > 4096) {
    // Immutable cache: evicting the oldest offsets is safe and cheap.
    node_cache_.erase(node_cache_.begin(),
                      std::next(node_cache_.begin(), 1024));
  }
  return NodeRef{off, len};
}

uint64_t KvStore::AppendDoc(Slice key, Slice value, uint32_t* len) {
  std::string body;
  PutLengthPrefixed(&body, key);
  PutLengthPrefixed(&body, value);
  const uint64_t off = AppendChunk(kChunkDoc, body, len);
  stats_.doc_appends++;
  return off;
}

Status KvStore::LoadNode(IoContext& io, NodeRef ref, Node* out) {
  auto cached = node_cache_.find(ref.off);
  if (cached != node_cache_.end()) {
    *out = cached->second;
    return Status::OK();
  }
  std::string raw;
  if (ref.off >= tail_base_) {
    raw = tail_.substr(ref.off - tail_base_, ref.len);
  } else {
    const SimFile::IoResult r = file_->Read(io.now, ref.off, ref.len, &raw);
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
  }
  if (raw.size() < kChunkOverhead) return Status::Corruption("short node");
  Slice in(raw);
  uint32_t total = 0, crc = 0;
  GetFixed32(&in, &total);
  GetFixed32(&in, &crc);
  if (total != raw.size() ||
      Crc32c(in.data(), in.size()) != crc) {
    return Status::Corruption("node chunk crc mismatch");
  }
  if (in[0] != kChunkNode) return Status::Corruption("not a node chunk");
  in.remove_prefix(1);

  Node node;
  if (in.empty()) return Status::Corruption("node body empty");
  node.leaf = in[0] != 0;
  in.remove_prefix(1);
  uint32_t count = 0;
  if (!GetFixed32(&in, &count)) return Status::Corruption("node count");
  node.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice key;
    uint64_t off = 0;
    uint32_t len = 0;
    if (!GetLengthPrefixed(&in, &key) || !GetFixed64(&in, &off) ||
        !GetFixed32(&in, &len)) {
      return Status::Corruption("node entry truncated");
    }
    node.entries.push_back(Entry{key.ToString(), off, len});
  }
  node_cache_[ref.off] = node;
  *out = std::move(node);
  return Status::OK();
}

Status KvStore::LoadDoc(IoContext& io, uint64_t off, uint32_t len,
                        std::string* key, std::string* value) {
  std::string raw;
  if (off >= tail_base_) {
    raw = tail_.substr(off - tail_base_, len);
  } else {
    const SimFile::IoResult r = file_->Read(io.now, off, len, &raw);
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
  }
  if (raw.size() < kChunkOverhead) return Status::Corruption("short doc");
  Slice in(raw);
  uint32_t total = 0, crc = 0;
  GetFixed32(&in, &total);
  GetFixed32(&in, &crc);
  if (total != raw.size() || Crc32c(in.data(), in.size()) != crc) {
    return Status::Corruption("doc chunk crc mismatch");
  }
  if (in[0] != kChunkDoc) return Status::Corruption("not a doc chunk");
  in.remove_prefix(1);
  Slice k, v;
  if (!GetLengthPrefixed(&in, &k) || !GetLengthPrefixed(&in, &v)) {
    return Status::Corruption("doc truncated");
  }
  if (key != nullptr) *key = k.ToString();
  if (value != nullptr) *value = v.ToString();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// COW B+-tree
// ---------------------------------------------------------------------------

Status KvStore::CowInsertRec(IoContext& io, NodeRef ref, Slice key,
                             bool is_delete, uint64_t doc_off,
                             uint32_t doc_len, bool* found, CowResult* out) {
  Node node;
  DURASSD_RETURN_IF_ERROR(LoadNode(io, ref, &node));

  if (node.leaf) {
    auto it = std::lower_bound(
        node.entries.begin(), node.entries.end(), key,
        [](const Entry& e, Slice k) { return Slice(e.key).compare(k) < 0; });
    const bool exact =
        it != node.entries.end() && Slice(it->key).compare(key) == 0;
    *found = exact;
    if (is_delete) {
      if (!exact) return Status::NotFound();
      live_bytes_ -= it->len;
      node.entries.erase(it);
    } else if (exact) {
      live_bytes_ += doc_len;
      live_bytes_ -= it->len;
      it->off = doc_off;
      it->len = doc_len;
    } else {
      live_bytes_ += doc_len;
      node.entries.insert(it, Entry{key.ToString(), doc_off, doc_len});
    }
  } else {
    // Find the child to descend into: last entry with key <= target.
    auto it = std::upper_bound(
        node.entries.begin(), node.entries.end(), key,
        [](Slice k, const Entry& e) { return k.compare(e.key) < 0; });
    if (it == node.entries.begin()) {
      // Smaller than every separator: descend leftmost (and its key will
      // be lowered implicitly by the child rewrite).
      it = node.entries.begin();
    } else {
      --it;
    }
    CowResult child;
    DURASSD_RETURN_IF_ERROR(CowInsertRec(io, NodeRef{it->off, it->len}, key,
                                         is_delete, doc_off, doc_len, found,
                                         &child));
    it->off = child.left.off;
    it->len = child.left.len;
    // Keep the separator = min key of the child subtree.
    {
      Node left_child;
      DURASSD_RETURN_IF_ERROR(LoadNode(io, child.left, &left_child));
      if (!left_child.entries.empty()) {
        it->key = left_child.entries.front().key;
      }
    }
    if (child.split) {
      node.entries.insert(std::next(it),
                          Entry{child.sep, child.right.off, child.right.len});
    }
  }

  // Serialize (splitting if oversized).
  if (node.SerializedSize() > opts_.node_size && node.entries.size() >= 2) {
    Node right;
    right.leaf = node.leaf;
    const size_t mid = node.entries.size() / 2;
    right.entries.assign(node.entries.begin() + mid, node.entries.end());
    node.entries.resize(mid);
    out->left = AppendNode(node);
    out->split = true;
    out->sep = right.entries.front().key;
    out->right = AppendNode(right);
  } else {
    out->left = AppendNode(node);
    out->split = false;
  }
  return Status::OK();
}

StatusOr<KvStore::NodeRef> KvStore::CowUpdate(IoContext& io, NodeRef root,
                                              Slice key, bool is_delete,
                                              uint64_t doc_off,
                                              uint32_t doc_len, bool* found) {
  *found = false;
  if (root.len == 0) {
    if (is_delete) return Status::NotFound();
    Node leaf;
    leaf.leaf = true;
    leaf.entries.push_back(Entry{key.ToString(), doc_off, doc_len});
    live_bytes_ += doc_len;
    return AppendNode(leaf);
  }
  CowResult res;
  DURASSD_RETURN_IF_ERROR(CowInsertRec(io, root, key, is_delete, doc_off,
                                       doc_len, found, &res));
  if (!res.split) return res.left;
  Node new_root;
  new_root.leaf = false;
  Node left_child;
  DURASSD_RETURN_IF_ERROR(LoadNode(io, res.left, &left_child));
  const std::string left_key =
      left_child.entries.empty() ? "" : left_child.entries.front().key;
  new_root.entries.push_back(Entry{left_key, res.left.off, res.left.len});
  new_root.entries.push_back(Entry{res.sep, res.right.off, res.right.len});
  return AppendNode(new_root);
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

Status KvStore::Put(IoContext& io, Slice key, Slice value) {
  if (read_only_) return ReadOnlyError();
  stats_.puts++;
  uint32_t doc_len = 0;
  const uint64_t doc_off = AppendDoc(key, value, &doc_len);
  bool found = false;
  StatusOr<NodeRef> new_root =
      CowUpdate(io, root_, key, /*is_delete=*/false, doc_off, doc_len,
                &found);
  if (!new_root.ok()) return new_root.status();
  root_ = *new_root;
  if (!found) doc_count_++;
  seq_++;
  updates_since_commit_++;
  Status s = MaybeCommit(io);
  if (s.IsResourceExhausted()) {
    EnterReadOnly(io, s);
    return ReadOnlyError();
  }
  return s;
}

Status KvStore::Delete(IoContext& io, Slice key) {
  if (read_only_) return ReadOnlyError();
  stats_.deletes++;
  bool found = false;
  StatusOr<NodeRef> new_root =
      CowUpdate(io, root_, key, /*is_delete=*/true, 0, 0, &found);
  if (!new_root.ok()) return new_root.status();
  root_ = *new_root;
  doc_count_--;
  seq_++;
  updates_since_commit_++;
  Status s = MaybeCommit(io);
  if (s.IsResourceExhausted()) {
    EnterReadOnly(io, s);
    return ReadOnlyError();
  }
  return s;
}

Status KvStore::Get(IoContext& io, Slice key, std::string* value) {
  stats_.gets++;
  if (root_.len == 0) return Status::NotFound();
  NodeRef ref = root_;
  for (int depth = 0; depth < 64; ++depth) {
    Node node;
    DURASSD_RETURN_IF_ERROR(LoadNode(io, ref, &node));
    if (node.leaf) {
      auto it = std::lower_bound(
          node.entries.begin(), node.entries.end(), key,
          [](const Entry& e, Slice k) { return Slice(e.key).compare(k) < 0; });
      if (it == node.entries.end() || Slice(it->key).compare(key) != 0) {
        return Status::NotFound();
      }
      return LoadDoc(io, it->off, it->len, nullptr, value);
    }
    auto it = std::upper_bound(
        node.entries.begin(), node.entries.end(), key,
        [](Slice k, const Entry& e) { return k.compare(e.key) < 0; });
    if (it == node.entries.begin()) return Status::NotFound();
    --it;
    ref = NodeRef{it->off, it->len};
  }
  return Status::Corruption("tree too deep");
}

Status KvStore::MaybeCommit(IoContext& io) {
  if (updates_since_commit_ >= opts_.batch_size) {
    return Commit(io);
  }
  return Status::OK();
}

Status KvStore::WriteHeader(IoContext& io) {
  // Pad to the next 4KB boundary, then append the header block.
  const uint64_t size_now = tail_base_ + tail_.size();
  const uint64_t pad =
      (kBlockSize - size_now % kBlockSize) % kBlockSize;
  tail_.append(pad, '\0');

  std::string body;
  PutFixed32(&body, kHeaderMagic);
  PutFixed64(&body, seq_);
  PutFixed64(&body, root_.off);
  PutFixed32(&body, root_.len);
  PutFixed64(&body, doc_count_);
  PutFixed64(&body, live_bytes_);
  std::string block;
  PutFixed32(&block, Crc32c(body.data(), body.size()));
  block.append(body);
  block.resize(kBlockSize, '\0');
  tail_.append(block);
  append_offset_ = tail_base_ + tail_.size();

  // Write data (everything buffered), then make it durable. The fsync
  // orders the header after the data it points to when barriers are on;
  // kBarrier gets the same ordering from the device's epoch machinery
  // without waiting on media.
  const SimFile::IoResult w = file_->Write(io.now, tail_base_, tail_);
  DURASSD_RETURN_IF_ERROR(w.status);
  io.AdvanceTo(w.done);
  const SimTime sync_start = io.now;
  const bool use_barrier =
      opts_.durability_mode == DurabilityMode::kBarrier;
  const SimFile::IoResult s =
      use_barrier ? file_->Barrier(io.now) : file_->Sync(io.now);
  DURASSD_RETURN_IF_ERROR(s.status);
  if (use_barrier) stats_.barrier_commits++;
  io.AdvanceTo(s.done);
  h_fsync_ns_->Record(io.now - sync_start);
  // Group-commit accounting: headers whose fsync coalesced into the same
  // device sync (same completion instant) share one durability point.
  if (s.done == last_sync_done_) {
    cur_group_++;
  } else {
    cur_group_ = 1;
    stats_.sync_groups++;
    last_sync_done_ = s.done;
  }
  stats_.max_group_commit = std::max(stats_.max_group_commit, cur_group_);
  if (tracer_) {
    tracer_->Record(io.now, TraceEventType::kFsync, seq_,
                    static_cast<uint64_t>(io.now - sync_start));
  }

  tail_base_ = append_offset_;
  tail_.clear();
  NoteCommitted();
  return Status::OK();
}

Status KvStore::Commit(IoContext& io) {
  if (read_only_) return ReadOnlyError();
  if (updates_since_commit_ == 0 && tail_.empty()) return Status::OK();
  const SimTime entered = io.now;
  stats_.commits++;
  updates_since_commit_ = 0;
  {
    Status s = WriteHeader(io);
    if (s.IsResourceExhausted()) {
      EnterReadOnly(io, s);
      return ReadOnlyError();
    }
    DURASSD_RETURN_IF_ERROR(s);
  }
  h_commit_ns_->Record(io.now - entered);
  if (tracer_) {
    tracer_->Record(io.now, TraceEventType::kKvCommit, seq_,
                    static_cast<uint64_t>(io.now - entered));
  }
  if (opts_.auto_compact && file_bytes() > 0 &&
      static_cast<double>(live_bytes_) <
          static_cast<double>(file_bytes()) *
              (1.0 - opts_.compact_garbage_ratio)) {
    return Compact(io);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery & compaction
// ---------------------------------------------------------------------------

Status KvStore::Recover(IoContext& io) {
  const uint64_t file_size = file_->size();
  uint64_t boundary = file_size / kBlockSize * kBlockSize;
  // Scan backward over 4KB boundaries for the newest intact header whose
  // root node is readable.
  while (boundary >= kBlockSize) {
    const uint64_t header_off = boundary - kBlockSize;
    std::string block;
    const SimFile::IoResult r =
        file_->Read(io.now, header_off, kBlockSize, &block);
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    boundary -= kBlockSize;
    if (block.size() < 44) continue;
    Slice in(block);
    uint32_t crc = 0, magic = 0;
    GetFixed32(&in, &crc);
    const char* body = in.data();
    Slice peek = in;
    GetFixed32(&peek, &magic);
    if (magic != kHeaderMagic) continue;
    if (Crc32c(body, 40) != crc) continue;
    Slice parse(body, 40);
    uint64_t seq = 0, root_off = 0, docs = 0, live = 0;
    uint32_t m = 0, root_len = 0;
    GetFixed32(&parse, &m);
    GetFixed64(&parse, &seq);
    GetFixed64(&parse, &root_off);
    GetFixed32(&parse, &root_len);
    GetFixed64(&parse, &docs);
    GetFixed64(&parse, &live);

    // Validate the root.
    root_ = NodeRef{root_off, root_len};
    if (root_len != 0) {
      Node probe;
      tail_base_ = header_off + kBlockSize;  // So LoadNode reads the file.
      if (!LoadNode(io, root_, &probe).ok()) continue;
    }
    seq_ = seq;
    doc_count_ = docs;
    live_bytes_ = live;
    append_offset_ = header_off + kBlockSize;
    tail_base_ = append_offset_;
    stats_.recovered_seq = seq;
    // Drop anything beyond the recovered header so a later backward scan
    // cannot resurrect a stale newer-looking header.
    DURASSD_RETURN_IF_ERROR(file_->Truncate(append_offset_));
    NoteCommitted();
    return Status::OK();
  }
  // No intact header: empty store.
  root_ = NodeRef{};
  seq_ = 0;
  doc_count_ = 0;
  live_bytes_ = 0;
  append_offset_ = 0;
  tail_base_ = 0;
  NoteCommitted();
  return Status::OK();
}

Status KvStore::Compact(IoContext& io) {
  if (read_only_) return ReadOnlyError();
  Status s = CompactImpl(io);
  if (s.IsResourceExhausted()) {
    // The original file still exists (the swap never happened): reopen it
    // and fall back to the last committed state, read-only.
    file_ = fs_->Open(name_);
    node_cache_.clear();
    EnterReadOnly(io, s);
    return ReadOnlyError();
  }
  return s;
}

Status KvStore::CompactImpl(IoContext& io) {
  stats_.compactions++;
  // Walk the tree collecting live documents in key order.
  std::vector<std::pair<std::string, std::string>> docs;
  docs.reserve(doc_count_);
  if (root_.len != 0) {
    std::vector<NodeRef> stack{root_};
    while (!stack.empty()) {
      const NodeRef ref = stack.back();
      stack.pop_back();
      Node node;
      DURASSD_RETURN_IF_ERROR(LoadNode(io, ref, &node));
      if (node.leaf) {
        for (const Entry& e : node.entries) {
          std::string key, value;
          DURASSD_RETURN_IF_ERROR(LoadDoc(io, e.off, e.len, &key, &value));
          docs.emplace_back(std::move(key), std::move(value));
        }
      } else {
        for (auto it = node.entries.rbegin(); it != node.entries.rend();
             ++it) {
          stack.push_back(NodeRef{it->off, it->len});
        }
      }
    }
  }
  std::sort(docs.begin(), docs.end());

  // Rebuild into a fresh file. A leftover temp from an interrupted earlier
  // compaction is expected (NotFound is fine); any other removal failure
  // must abort the compaction rather than corrupt the swap below.
  const std::string tmp_name = name_ + ".compact";
  const Status rm = fs_->Remove(tmp_name);
  if (!rm.ok() && !rm.IsNotFound()) return rm;
  SimFile* fresh = fs_->Open(tmp_name);
  file_ = fresh;
  node_cache_.clear();
  root_ = NodeRef{};
  append_offset_ = 0;
  tail_base_ = 0;
  tail_.clear();
  live_bytes_ = 0;
  doc_count_ = 0;
  const uint64_t seq_keep = seq_;
  for (const auto& [k, v] : docs) {
    uint32_t len = 0;
    const uint64_t off = AppendDoc(k, v, &len);
    bool found = false;
    StatusOr<NodeRef> nr =
        CowUpdate(io, root_, k, /*is_delete=*/false, off, len, &found);
    if (!nr.ok()) return nr.status();
    root_ = *nr;
    doc_count_++;
  }
  seq_ = seq_keep;
  DURASSD_RETURN_IF_ERROR(WriteHeader(io));

  // Swap the compacted file in under the original name (CouchStore does an
  // atomic rename).
  DURASSD_RETURN_IF_ERROR(fs_->Remove(name_));
  DURASSD_RETURN_IF_ERROR(fs_->Rename(tmp_name, name_));
  file_ = fs_->Open(name_);
  return Status::OK();
}

}  // namespace durassd
