#ifndef DURASSD_KV_KVSTORE_H_
#define DURASSD_KV_KVSTORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/trace.h"
#include "db/io_context.h"
#include "host/durability_mode.h"
#include "host/sim_file.h"

namespace durassd {

/// Document store modeled on Couchbase's CouchStore engine (Sec. 4.3.3):
/// an append-only file holding documents and the copy-on-write B+-tree that
/// indexes them. Every update appends the new document and fresh copies of
/// all tree nodes on the root-to-leaf path (the ~20KB-per-update pattern
/// the paper describes); a commit pads to a 4KB boundary and appends a
/// checksummed header block, fsyncing according to the batch-size knob:
///
///   batch_size = k  =>  one fsync per k updates (Table 5's sweep).
///
/// Recovery scans backward for the most recent intact header, exactly like
/// CouchStore; updates after the last durable header are lost (the
/// durability window the batch size trades away).
class KvStore {
 public:
  struct Options {
    uint32_t node_size = 4 * kKiB;  ///< B+-tree node target size.
    uint32_t batch_size = 1;        ///< Updates per fsync.
    /// Compact when garbage exceeds this fraction of the file.
    double compact_garbage_ratio = 0.7;
    bool auto_compact = false;
    /// How a batch commit's header write is made durable. kBarrier submits
    /// a barrier instead of waiting on fsync: the durable-cache epoch
    /// ordering guarantees header-after-payload across a power cut.
    DurabilityMode durability_mode = DurabilityMode::kDurableOrderedNcq;
  };

  struct Stats {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
    uint64_t commits = 0;
    uint64_t node_appends = 0;
    uint64_t doc_appends = 0;
    uint64_t compactions = 0;
    uint64_t recovered_seq = 0;
    uint64_t lost_updates_on_recovery = 0;
    uint64_t degraded_aborts = 0;  ///< In-flight batches dropped on device
                                   ///< degradation.
    /// Group-commit accounting (mirrors Wal::Stats): commits whose header
    /// fsync resolved to the same device-sync completion instant — the
    /// file system / device coalesced them into one FLUSH — form a group.
    uint64_t sync_groups = 0;
    uint64_t max_group_commit = 0;
    uint64_t barrier_commits = 0;  ///< Commits made durable via a barrier
                                   ///< submission instead of an fsync wait.
  };

  static StatusOr<std::unique_ptr<KvStore>> Open(IoContext& io,
                                                 SimFileSystem* fs,
                                                 const std::string& name,
                                                 Options options);

  /// Upsert. Buffers in the tail; becomes durable at the next commit.
  Status Put(IoContext& io, Slice key, Slice value);
  Status Get(IoContext& io, Slice key, std::string* value);
  Status Delete(IoContext& io, Slice key);

  /// Forces out the current batch (data, then header, each fsynced —
  /// whether fsync reaches the media depends on the file system's
  /// write-barrier setting, as everywhere else).
  Status Commit(IoContext& io);

  /// Copies live documents into a fresh file and swaps it in.
  Status Compact(IoContext& io);

  /// True once the store switched to read-only because the device entered
  /// degraded mode. The in-flight (uncommitted) batch was rolled back to
  /// the last durable header; reads keep working.
  bool read_only() const { return read_only_; }

  uint64_t doc_count() const { return doc_count_; }
  uint64_t file_bytes() const { return append_offset_; }
  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t committed_seq() const { return seq_; }
  const Stats& stats() const { return stats_; }

  /// Store-level latency attribution (commit, header fsync).
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Attaches (or detaches, with nullptr) an event tracer. Recording never
  /// advances virtual time.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  struct Entry {
    std::string key;
    uint64_t off;
    uint32_t len;
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    uint32_t SerializedSize() const;
  };
  struct NodeRef {
    uint64_t off = 0;
    uint32_t len = 0;
  };

  KvStore(SimFileSystem* fs, SimFile* file, std::string name,
          Options options);

  Status Recover(IoContext& io);
  Status LoadNode(IoContext& io, NodeRef ref, Node* out);
  Status LoadDoc(IoContext& io, uint64_t off, uint32_t len, std::string* key,
                 std::string* value);
  /// Appends a chunk to the tail buffer; returns its (final) offset.
  uint64_t AppendChunk(uint8_t type, Slice body, uint32_t* total_len);
  NodeRef AppendNode(const Node& node);
  uint64_t AppendDoc(Slice key, Slice value, uint32_t* len);

  /// COW upsert/delete; returns the new root.
  StatusOr<NodeRef> CowUpdate(IoContext& io, NodeRef root, Slice key,
                              bool is_delete, uint64_t doc_off,
                              uint32_t doc_len, bool* found);
  struct CowResult {
    // One node, or two plus the separator key of the right node.
    NodeRef left;
    bool split = false;
    std::string sep;
    NodeRef right;
  };
  Status CowInsertRec(IoContext& io, NodeRef ref, Slice key, bool is_delete,
                      uint64_t doc_off, uint32_t doc_len, bool* found,
                      CowResult* out);

  Status WriteHeader(IoContext& io);
  Status MaybeCommit(IoContext& io);
  Status CompactImpl(IoContext& io);
  /// Remembers the current (durable) state as the rollback target for
  /// degraded-mode aborts.
  void NoteCommitted();
  /// Rolls tree/tail state back to the last durable header.
  void RestoreCommitted();
  void EnterReadOnly(IoContext& io, const Status& cause);
  Status ReadOnlyError() const;

  SimFileSystem* fs_;
  SimFile* file_;
  std::string name_;
  Options opts_;

  NodeRef root_;            ///< {0,0} = empty tree.
  uint64_t append_offset_ = 0;
  std::string tail_;        ///< Appended but not yet written to the file.
  uint64_t tail_base_ = 0;  ///< File offset of tail_[0].
  uint32_t updates_since_commit_ = 0;
  uint64_t seq_ = 0;
  uint64_t doc_count_ = 0;
  uint64_t live_bytes_ = 0;

  /// Immutable node cache (COW nodes never change once written).
  std::map<uint64_t, Node> node_cache_;

  bool read_only_ = false;
  std::string degraded_reason_;
  /// Group-commit tracking: completion instant of the device sync backing
  /// the open commit group, and the commits it has carried so far.
  SimTime last_sync_done_ = -1;
  uint64_t cur_group_ = 0;
  /// State at the last durable header (the degraded-abort rollback target).
  NodeRef committed_root_;
  uint64_t committed_seq_ = 0;
  uint64_t committed_doc_count_ = 0;
  uint64_t committed_live_bytes_ = 0;
  uint64_t committed_boundary_ = 0;  ///< File offset just past that header.

  Stats stats_;

  MetricsRegistry metrics_;
  Tracer* tracer_ = nullptr;
  /// Registered in the constructor (always non-null).
  Histogram* h_commit_ns_;
  Histogram* h_fsync_ns_;
  MetricCounter* c_degraded_aborts_;
};

}  // namespace durassd

#endif  // DURASSD_KV_KVSTORE_H_
