#ifndef DURASSD_SSD_HDD_DEVICE_H_
#define DURASSD_SSD_HDD_DEVICE_H_

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/resource.h"
#include "common/types.h"
#include "host/block_device.h"

namespace durassd {

/// Magnetic disk model (the paper's baseline: Seagate Cheetah 15K.6,
/// 146.8GB, 16MB track cache). A single actuator serves requests whose
/// positioning cost shrinks with queue depth (elevator scheduling); the
/// volatile track cache acknowledges writes early and destages in sorted
/// order. Power loss drops unflushed cache contents and can shear the
/// sector being written.
class HddDevice : public BlockDevice {
 public:
  struct Config {
    std::string name = "HDD";
    uint32_t sector_size = 4 * kKiB;
    uint64_t num_sectors = (16ull * kGiB) / (4 * kKiB);
    bool cache_enabled = true;
    uint32_t write_cache_sectors = 4096;  ///< 16 MiB / 4 KiB.

    SimTime avg_seek = 3600 * kMicrosecond;
    SimTime half_rotation = 2000 * kMicrosecond;  ///< 15K rpm.
    SimTime fixed_overhead = 700 * kMicrosecond;
    double transfer_bytes_per_ns = 0.17;  ///< ~170 MB/s media rate.

    /// Elevator gain: service factor = 1 + gain * min(q, window) / window.
    double read_elevator_gain = 3.9;
    uint32_t read_elevator_window = 128;
    double write_elevator_gain = 2.3;
    uint32_t write_elevator_window = 64;

    double bus_bytes_per_ns = 0.60;
    SimTime bus_cmd_overhead = 3 * kMicrosecond;

    bool store_data = true;
  };

  explicit HddDevice(Config config);

  uint32_t sector_size() const override { return cfg_.sector_size; }
  uint64_t num_sectors() const override { return cfg_.num_sectors; }
  void PowerCut(SimTime t) override;
  SimTime PowerOn() override;
  bool supports_atomic_write() const override { return false; }
  bool has_durable_cache() const override { return false; }

  /// Arms a power cut at virtual time `t` (same contract as
  /// SsdDevice/ArrayDevice::SchedulePowerCut): the first command observed at
  /// or after the instant — or whose completion would land past it — trips
  /// PowerCut(t) and fails DeviceOffline instead of being acknowledged, so
  /// the acked-durability oracle holds on the disk exactly as on the SSDs
  /// (a completion later than the cut cannot causally have been delivered).
  void SchedulePowerCut(SimTime t) {
    scheduled_cut_ = t;
    cut_armed_ = true;
  }
  void CancelScheduledPowerCut() { cut_armed_ = false; }
  bool scheduled_cut_armed() const { return cut_armed_; }
  uint64_t scheduled_cuts_tripped() const { return scheduled_cuts_tripped_; }

  bool powered() const { return powered_; }
  const Config& config() const { return cfg_; }

 protected:
  Result Execute(SimTime t, const Command& cmd) override;

 private:
  Result DoWrite(SimTime now, Lpn lpn, Slice data);
  Result DoRead(SimTime now, Lpn lpn, uint32_t nsec, std::string* out);
  Result DoFlush(SimTime now);

  struct CachedWrite {
    std::string data;
    SimTime ack;
    SimTime media_start;
    SimTime media_done;
  };
  struct InFlight {
    Lpn lpn;
    uint32_t nsec;
    SimTime start;
    SimTime done;
    std::string new_data;
  };

  /// Positioning + transfer cost for `nsec` sectors at queue depth q.
  SimTime ServiceTime(uint32_t nsec, bool is_write, uint32_t q) const;
  uint32_t QueueDepth(SimTime t);
  void CommitToMedia(Lpn lpn, Slice data);
  SimTime DestageToMedia(SimTime t, Lpn lpn, Slice data, SimTime* start_out);

  Config cfg_;
  ResourceTimeline bus_;
  ResourceTimeline arm_;  ///< The single actuator.
  std::unordered_map<Lpn, std::string> media_;
  std::vector<bool> torn_;
  std::unordered_map<Lpn, CachedWrite> cache_;
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<SimTime>>
      outstanding_;
  std::vector<InFlight> inflight_;
  bool powered_ = true;
  bool cut_armed_ = false;
  SimTime scheduled_cut_ = 0;
  uint64_t scheduled_cuts_tripped_ = 0;
  SimTime max_time_seen_ = 0;
  SimTime last_flush_done_ = 0;
};

}  // namespace durassd

#endif  // DURASSD_SSD_HDD_DEVICE_H_
