#ifndef DURASSD_SSD_DESTAGE_SCHEDULER_H_
#define DURASSD_SSD_DESTAGE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace durassd {

/// Lazy destage scheduler between the write cache and the FTL (Sec. 3.1.1:
/// a few MB of durable buffer suffice to fill every internal pipeline).
/// Dirty sectors accumulate here after acknowledgement and are issued to
/// NAND in batches — up to one page per plane per round — instead of
/// synchronously inside each write command. Pending sectors pair into full
/// pages at drain time (better pairing than the eager one-sector
/// "pending half"), and two full pages drain as one multi-plane program
/// when the owner supports it.
///
/// Durability is unaffected: acknowledged-but-unissued sectors sit in the
/// durable cache with program_done == never, which is exactly what the
/// capacitor dump saves on power failure. The scheduler only changes *when
/// NAND is programmed*, never when the host is told data is durable.
///
/// Drain triggers (all invoked by the owner):
///   - batch threshold: a full batch of pages is pending (DrainRound),
///   - frame pressure: the write buffer is out of frames (DrainAll),
///   - FLUSH CACHE / clean shutdown (DrainAll),
///   - idle threshold: the device exploits its own idle time,
///   - power cut: the dump covers pending sectors; Clear() drops them.
class DestageScheduler {
 public:
  /// Owner-side destage executors. The scheduler decides *what* to issue
  /// and *how it is grouped*; the owner performs the program and its cache
  /// bookkeeping (program windows, frame release times, histograms).
  class Sink {
   public:
    virtual ~Sink() = default;
    /// Programs one page of 1..sectors_per_page cached sectors.
    virtual Status DestagePage(SimTime t, const std::vector<Lpn>& group) = 0;
    /// Programs two full pages as one multi-plane command on sibling
    /// planes of the least-busy chip.
    virtual Status DestagePagePair(SimTime t, const std::vector<Lpn>& a,
                                   const std::vector<Lpn>& b) = 0;
  };

  struct Options {
    uint32_t sectors_per_page = 2;
    /// Pages one DrainRound may issue (~ one per plane per round).
    uint32_t batch_pages = 256;
    /// Pair two full pages into one multi-plane program command.
    bool multi_plane = false;
  };

  DestageScheduler(Sink* sink, Options options)
      : sink_(sink), opts_(options) {}

  DestageScheduler(const DestageScheduler&) = delete;
  DestageScheduler& operator=(const DestageScheduler&) = delete;

  /// Queues a dirty sector for destage. Returns false when the sector is
  /// already pending — the rewrite was absorbed in place (the caller
  /// refreshed the cached bytes) and no second NAND program will happen.
  bool Add(Lpn lpn, SimTime now);

  bool IsPending(Lpn lpn) const { return pending_.count(lpn) != 0; }
  /// Drops one sector (a rejected command's rollback, or entry removal).
  void Remove(Lpn lpn) { pending_.erase(lpn); }
  /// Drops everything (power cut: the capacitor dump already saved it).
  void Clear();

  size_t pending_sectors() const { return pending_.size(); }
  /// Full pages currently formable from pending sectors.
  size_t pending_full_pages() const {
    return pending_.size() / opts_.sectors_per_page;
  }
  bool empty() const { return pending_.empty(); }
  /// Virtual time of the most recent Add (idle-threshold trigger).
  SimTime last_add_time() const { return last_add_time_; }

  /// Issues up to max_pages *full* pages at time t (batch_pages when 0),
  /// leaving a partial tail pending so it can pair with future writes.
  /// Stops at the first destage error (unissued sectors stay pending for a
  /// later retry). Frame-pressure callers pass the plane count — one page
  /// per plane per round — so most of the buffer keeps absorbing rewrites.
  Status DrainRound(SimTime t, size_t max_pages = 0);
  /// Issues everything pending, partial tail included (FLUSH, shutdown,
  /// frame pressure).
  Status DrainAll(SimTime t);

  /// Pops up to `max_sectors` pending sectors in arrival order (stale fifo
  /// entries skipped), removing them from the pending set. Log-structured
  /// destage uses this to build one segment and issue it as a whole; the
  /// caller owns the popped sectors and must re-Add any it fails to
  /// program.
  std::vector<Lpn> TakePending(size_t max_sectors);

 private:
  Status Drain(SimTime t, size_t max_pages, bool include_partial);
  /// Drops fifo_ entries whose LPN is no longer pending (absorbed rewrites
  /// keep their original queue position; removed sectors leave holes).
  void CompactFifo();

  Sink* sink_;
  Options opts_;
  /// Issue order. May contain stale LPNs (no longer in pending_); drains
  /// skip them and CompactFifo bounds the growth.
  std::deque<Lpn> fifo_;
  std::unordered_set<Lpn> pending_;
  SimTime last_add_time_ = 0;
};

}  // namespace durassd

#endif  // DURASSD_SSD_DESTAGE_SCHEDULER_H_
