#ifndef DURASSD_SSD_SSD_DEVICE_H_
#define DURASSD_SSD_SSD_DEVICE_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "flash/flash_array.h"
#include "host/block_device.h"
#include "ssd/destage_scheduler.h"
#include "ssd/ftl.h"
#include "ssd/ssd_config.h"

namespace durassd {

/// The simulated SSD: DRAM device cache, atomic writer, flusher, NCQ,
/// power-off detection and recovery manager over a NAND FlashArray + FTL
/// (Fig. 3 of the paper). One class models both DuraSSD (durable_cache on)
/// and commodity volatile-cache SSDs; the HDD lives in HddDevice.
///
/// Semantics implemented:
///  - Atomic writer (Sec. 3.2): a write command is atomic from the moment
///    it is acknowledged. Commands not fully transferred when power fails
///    are discarded whole; acknowledged ones are replayed from the dump
///    area on reboot (durable cache) or rolled back (volatile cache).
///  - Flusher (Sec. 3.1.1): destage is scheduled the moment data lands in
///    the cache, striped round-robin across planes for parallelism, with
///    two 4KB sectors paired per 8KB NAND program.
///  - FLUSH CACHE (Sec. 3.3): drains outstanding destages and persists the
///    mapping journal; cost grows with dirty state (Fig. 2).
///  - Recovery manager (Sec. 3.4): on power failure the durable cache and
///    dirty mapping entries are dumped to reserved clean blocks within the
///    capacitor budget; on reboot the dump is replayed idempotently.
class SsdDevice : public BlockDevice, private DestageScheduler::Sink {
 public:
  struct Stats {
    uint64_t host_writes = 0;        ///< Write commands.
    uint64_t host_written_sectors = 0;
    uint64_t host_reads = 0;
    uint64_t host_read_sectors = 0;
    uint64_t cache_read_hits = 0;    ///< Sectors served from the cache.
    uint64_t cache_read_misses = 0;  ///< Sectors that went to the FTL
                                     ///< (host_read_sectors = hits+misses).
    uint64_t cache_full_hits = 0;    ///< Read commands fully cache-served.
    uint64_t cache_partial_hits = 0; ///< Read commands with a sector mix.
    uint64_t flushes = 0;
    uint64_t write_stalls = 0;       ///< Writes that waited for a frame.
    SimTime write_stall_time = 0;
    uint64_t dumped_pages = 0;       ///< Pages saved on capacitor power.
    uint64_t replayed_pages = 0;     ///< Pages replayed at reboot.
    uint64_t dropped_incomplete = 0; ///< Un-acked commands discarded whole.
    uint64_t capacitor_overruns = 0; ///< Dump exceeded the budget (bug).
    uint64_t reads_stalled_by_flush = 0;  ///< Reads behind FLUSH CACHE.
    uint64_t degraded_write_rejects = 0;  ///< Writes refused in degraded
                                          ///< (read-only) mode.
    uint64_t scheduled_cuts_tripped = 0;  ///< SchedulePowerCut firings.
    uint64_t ordered_ack_clamps = 0;      ///< Ordered-NCQ ack monotonization.
    uint64_t ordering_violations = 0;     ///< Ordered mode: a power cut kept
                                          ///< a write submitted after a lost
                                          ///< one (must stay 0).
    uint64_t destage_absorbed = 0;   ///< Rewrites absorbed by a pending,
                                     ///< not-yet-issued destage (no second
                                     ///< NAND program).
    uint64_t destage_batches = 0;    ///< Scheduler drain rounds issued.
    uint64_t barriers = 0;           ///< BARRIER commands (epochs sealed).
    uint64_t epoch_ack_clamps = 0;   ///< Acks raised to the sealed-epoch
                                     ///< floor (epoch-monotone ack order).
    uint64_t epoch_ordering_violations = 0;  ///< A power cut kept a write
                                             ///< from a newer epoch while
                                             ///< losing one from an older
                                             ///< epoch (must stay 0).
    // --- Log-structured destage (destage_mode == kLogStructured) ---
    uint64_t log_segments = 0;         ///< Segments appended to the log.
    uint64_t log_segment_sectors = 0;  ///< Sectors destaged via segments.
    uint64_t log_replayed_segments = 0;  ///< Segments validated clean on
                                         ///< recovery.
    uint64_t log_torn_segments = 0;    ///< Segments with a lost header or a
                                       ///< failed sector checksum.
    uint64_t log_recovered_sectors = 0;  ///< Sectors checksum-validated OK.
    uint64_t log_dropped_sectors = 0;  ///< Torn sectors truncated (unmapped)
                                       ///< by recovery validation.
  };

  /// Device-level view of NAND fault handling, aggregated from the FTL
  /// (ECC policy) and the flash array (media failures). All zero when no
  /// faults are injected.
  struct FaultStats {
    uint64_t ecc_corrected = 0;       ///< Raw bit errors corrected by ECC.
    uint64_t read_retries = 0;        ///< Page re-reads past the ECC budget.
    uint64_t uncorrectable_reads = 0; ///< Reads lost despite retries.
    uint64_t program_fails = 0;       ///< NAND program-status failures.
    uint64_t erase_fails = 0;         ///< NAND erase-status failures.
    uint64_t retired_blocks = 0;      ///< Grown bad blocks out of service.
  };

  explicit SsdDevice(SsdConfig config);
  ~SsdDevice() override = default;

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  // --- BlockDevice ---
  uint32_t sector_size() const override { return cfg_.sector_size; }
  uint64_t num_sectors() const override { return ftl_.logical_sectors(); }
  void PowerCut(SimTime t) override;
  SimTime PowerOn() override;
  bool supports_atomic_write() const override { return cfg_.durable_cache; }
  bool has_durable_cache() const override { return cfg_.durable_cache; }
  /// Ordered NCQ (Sec. 3.3): with a durable cache and cfg_.ordered_queue,
  /// acknowledgement order equals submission order, so a power cut can only
  /// lose a *suffix* of the submitted write stream. PowerCut checks the
  /// invariant (stats().ordering_violations).
  bool ordered_writes() const override {
    return cfg_.durable_cache && cfg_.ordered_queue && cfg_.cache_enabled;
  }
  /// Barrier-enabled (Won et al.): a BARRIER seals the current epoch; the
  /// epoch ack clamp then keeps every later write's acknowledgement at or
  /// after the sealed epoch's last ack. Since a durable cache survives by
  /// ack <= cut, a power cut always recovers an epoch-consistent prefix —
  /// intra-epoch reordering allowed, cross-epoch never. Requires the
  /// durable cache: "durably framed" means acked into capacitor-protected
  /// frames, which volatile caches cannot provide.
  bool supports_barrier() const override {
    return cfg_.durable_cache && cfg_.cache_enabled;
  }

  /// Clean shutdown: FLUSH CACHE then power down without the emergency flag.
  Status Shutdown(SimTime now);

  /// Arms a power cut at virtual time `t`: the first command issued at
  /// now >= t first executes PowerCut(t) and then fails with DeviceOffline.
  /// This is how the crash harness cuts power mid-engine-call (including
  /// mid-recovery): the cut takes effect *inside* the engine's sequence of
  /// device operations rather than between host-visible steps. One-shot;
  /// a manual PowerCut() disarms it.
  void SchedulePowerCut(SimTime t) {
    scheduled_cut_ = t;
    cut_armed_ = true;
  }
  void CancelScheduledPowerCut() { cut_armed_ = false; }
  bool scheduled_cut_armed() const { return cut_armed_; }

  /// True once the FTL has entered sticky read-only degraded mode (spare
  /// exhaustion / failed retirement relocation). Writes fail with
  /// kResourceExhausted; reads keep working across power cycles.
  bool degraded() const { return ftl_.degraded(); }

  bool powered() const { return powered_; }
  const SsdConfig& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }
  const Ftl& ftl() const { return ftl_; }
  const FlashArray& flash() const { return flash_; }
  FaultStats fault_stats() const {
    return {ftl_.stats().ecc_corrected,       ftl_.stats().read_retries,
            ftl_.stats().uncorrectable_reads, flash_.stats().program_fails,
            flash_.stats().erase_fails,       flash_.stats().bad_blocks};
  }
  /// Live fault-injection scripting hook (tests).
  FaultInjector& fault_injector() { return flash_.fault_injector(); }

  /// Per-layer latency attribution (NCQ wait, bus, firmware, frame stalls,
  /// destage, flush drain) plus the FTL's own metrics.
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Attaches an event tracer (device + FTL events). Pass nullptr to
  /// detach. Recording never advances virtual time.
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    ftl_.set_tracer(tracer);
  }
  Tracer* tracer() const { return tracer_; }

  /// Host-level write amplification: NAND bytes programmed / host bytes
  /// written (GC included). The endurance argument of Sec. 1 & 6.
  double WriteAmplification() const;

  /// Log-structured destage active? Requires the lazy scheduler and the
  /// durable cache: acked-but-pending sectors stay durable via the
  /// capacitor dump while they wait to fill a whole segment.
  bool UseLogDestage() const {
    return UseScheduler() && cfg_.durable_cache &&
           cfg_.destage_mode == SsdConfig::DestageMode::kLogStructured &&
           ftl_.log_pages_total() > 0;
  }
  /// Data pages per log segment (the header page is extra).
  uint32_t SegmentDataPages() const { return log_segment_pages_; }
  uint32_t SegmentSectors() const {
    return log_segment_pages_ * ftl_.sectors_per_page();
  }

 protected:
  Result Execute(SimTime t, const Command& cmd) override;

 private:
  struct CacheEntry {
    std::string data;          ///< Sector bytes; empty in timing-only mode.
    SimTime ack = 0;           ///< Command acknowledged (atomicity point).
    uint64_t seq = 0;          ///< Submission sequence of the owning command.
    uint64_t epoch = 0;        ///< Barrier epoch the owning command joined.
    SimTime program_issue = 0;  ///< NAND program issued (kNeverProgrammed
                                ///< until then); dump/rollback hinge on it.
    SimTime program_start = 0;
    SimTime program_done = 0;  ///< kNeverProgrammed until destage scheduled.
    // One-deep history for the coalescing rollback corner case: if the
    // overwriting command turns out incomplete at a power cut, the
    // previously acknowledged version is restored.
    bool has_prev = false;
    std::string prev_data;
    SimTime prev_ack = 0;
    uint64_t prev_seq = 0;
    uint64_t prev_epoch = 0;
  };

  static constexpr SimTime kNeverProgrammed =
      std::numeric_limits<SimTime>::max();

  /// Grows dump_blocks_per_plane so the reserved dump area can cover every
  /// write-buffer frame when the lazy scheduler is enabled (acknowledged-
  /// but-unissued sectors all need a dump page at a power cut).
  static SsdConfig SizeDumpArea(SsdConfig cfg);
  /// Single-command executors (the pre-async Write/Read/Flush bodies),
  /// dispatched from Execute.
  Result DoWrite(SimTime now, Lpn lpn, Slice data);
  Result DoRead(SimTime now, Lpn lpn, uint32_t nsec, std::string* out);
  Result DoFlush(SimTime now);
  Result DoBarrier(SimTime now);

  SimTime BusTime(uint32_t nsec, bool is_write) const;
  SimTime FwTime(uint32_t nsec, bool is_write) const;
  /// Lazy destage scheduling active (destage_batch_pages > 1)? When false
  /// the device takes the legacy eager path: one destage per host command,
  /// issued synchronously at acknowledgement (the A/B baseline).
  bool UseScheduler() const {
    return cfg_.cache_enabled && cfg_.destage_batch_pages > 1;
  }
  /// Drains pending scheduler sectors into sequential log segments at time
  /// t: full segments only, plus a final short segment when
  /// `include_partial`. Sectors a failed append could not program are
  /// re-queued.
  Status DrainLogSegments(SimTime t, bool include_partial);
  /// Builds and appends one segment (header page: LPN map + per-sector
  /// CRC32C, then data pages) from `taken`, mapping each data sector and
  /// recording its program window.
  Status AppendLogSegment(SimTime t, const std::vector<Lpn>& taken);
  /// Recovery pass over the log directory (newest segment first): reads
  /// each segment header, validates every still-mapped sector's bytes
  /// against the header's CRC32C, and truncates (unmaps) torn sectors. A
  /// segment whose header is gone — torn tail, or pages freed by the
  /// power-cut rollback — is counted torn and its rolled-back sectors are
  /// simply skipped. Returns the virtual time the scan+validation cost.
  SimTime RecoverCache();
  /// Blocks until a write-buffer frame is free; returns the (possibly
  /// delayed) time at which the frame was obtained. In lazy mode, frames
  /// are held by both in-flight programs (outstanding_) and pending
  /// scheduler sectors; pressure first converts pending into programs.
  SimTime AcquireFrame(SimTime t);
  /// Destages `group` (1..sectors_per_page sectors) at time t, updating the
  /// cache entries' program windows.
  Status DestageGroup(SimTime t, const std::vector<Lpn>& group);
  // --- DestageScheduler::Sink ---
  /// Never issue a sector's program before its command's ack (crash
  /// semantics rely on issue >= ack; see the definition).
  SimTime ClampToAcks(SimTime t, const std::vector<Lpn>& group) const;
  Status DestagePage(SimTime t, const std::vector<Lpn>& group) override;
  Status DestagePagePair(SimTime t, const std::vector<Lpn>& a,
                         const std::vector<Lpn>& b) override;
  /// Idle-threshold drain: pending sectors older than destage_idle_ns are
  /// destaged when the next host command arrives (the device used its own
  /// idle time). Called on DoWrite/DoRead/DoFlush entry.
  void MaybeIdleDrain(SimTime now);
  /// Records the program window for a destaged group and releases its
  /// frames at program completion.
  void FinishDestage(const std::vector<Lpn>& group, SimTime issue,
                     SimTime start, SimTime done);
  void InsertCacheEntry(Lpn lpn, Slice sector, SimTime ack, uint64_t seq,
                        uint64_t epoch);
  void EvictCleanIfNeeded();
  /// Mapping-journal persistence cost for `entries` dirty mapping entries.
  SimTime MappingPersistCost(size_t entries) const;
  void DumpOnCapacitor(SimTime t);
  SimTime ReplayDump();
  /// Fires an armed SchedulePowerCut whose time has arrived. Returns true
  /// when the cut tripped (the caller must fail with DeviceOffline).
  bool MaybeTripScheduledCut(SimTime now);
  /// Causality guard for armed cuts: a command that would only COMPLETE
  /// after the scheduled instant must not be acknowledged — the power died
  /// mid-command. Fires the cut (rolling media state back to the cut time;
  /// the command's already-applied effects carry post-cut timestamps, which
  /// is exactly what PowerCut's rollback machinery reverts) and returns
  /// true, in which case the caller must fail with DeviceOffline. Without
  /// this, a flush spanning the cut instant would be acknowledged and then
  /// silently undone — an acked-durability violation the host can observe.
  bool CutBeforeCompletion(SimTime done);
  /// Removes the cache entries a failed write command inserted (restoring
  /// the one-deep history), so un-destaged data from a rejected command
  /// cannot be dumped or served later.
  void RollbackCommandEntries(Lpn lpn, uint32_t nsec, SimTime ack);

  SsdConfig cfg_;
  /// Declared before ftl_ (construction order): the FTL registers its own
  /// metrics into this registry.
  MetricsRegistry metrics_;
  FlashArray flash_;
  Ftl ftl_;

  ResourceTimeline bus_;   ///< Half-duplex host link (SATA).
  ResourceTimeline fw_;    ///< Firmware command pipeline.
  ResourceTimeline ncq_;   ///< Command-queue slots.

  std::unordered_map<Lpn, CacheEntry> cache_;
  std::deque<Lpn> cache_fifo_;
  /// Completion times of scheduled destages (frame accounting).
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<SimTime>>
      outstanding_;
  /// An unpaired 4KB sector awaiting a partner for an 8KB program (legacy
  /// eager mode only; the scheduler pairs at drain time instead).
  bool has_pending_half_ = false;
  Lpn pending_half_lpn_ = kInvalidLpn;
  /// Lazy destage scheduler (UseScheduler(); no-op in legacy eager mode).
  DestageScheduler scheduler_;

  /// One appended log segment: where its header and data pages landed.
  /// The simulator keeps this directory in controller RAM as the scan
  /// index; recovery still reads and checksums the on-media header, so a
  /// torn or reused segment is detected by content, not bookkeeping.
  struct LogSegmentRec {
    uint64_t seq = 0;
    Ppn header_ppn = 0;
    std::vector<Ppn> data_ppns;
    uint32_t sectors = 0;
  };
  /// Segments not yet known-persistent (cleared by clean shutdown and
  /// after recovery validation), newest at the back. Bounded by one full
  /// lap of the log region — anything older has been overwritten.
  std::deque<LogSegmentRec> log_dir_;
  uint64_t log_seq_ = 0;
  /// Resolved segment size (data pages; 0 when log mode is off).
  uint32_t log_segment_pages_ = 0;

  bool powered_ = true;
  bool emergency_shutdown_ = false;
  bool cut_armed_ = false;
  SimTime scheduled_cut_ = 0;
  SimTime max_time_seen_ = 0;
  /// Ordered NCQ: acknowledgement time of the last write command, used to
  /// clamp acks monotone in submission order (see ordered_writes()).
  SimTime last_ordered_ack_ = 0;
  /// Submission sequence number of write commands (ordering invariant).
  uint64_t write_seq_ = 0;
  /// Barrier epochs. Zero until the first BARRIER arrives, so the epoch
  /// machinery is inert (bit-for-bit identical timing) on hosts that never
  /// submit barriers. A BARRIER seals epoch N by raising the ack floor to
  /// the sealed epoch's last ack and bumping cur_epoch_; later writes clamp
  /// their ack to the floor, making acks epoch-monotone.
  uint64_t cur_epoch_ = 0;
  SimTime epoch_floor_ack_ = 0;  ///< Max ack of all sealed epochs.
  SimTime epoch_max_ack_ = 0;    ///< Max ack within the open epoch.
  uint64_t epoch_writes_ = 0;    ///< Write commands in the open epoch.
  SimTime last_flush_start_ = -1;
  SimTime last_flush_done_ = -1;
  /// Recent FLUSH CACHE service windows (reads arriving inside one wait).
  std::deque<std::pair<SimTime, SimTime>> flush_windows_;
  /// Logical dump contents in timing-only mode (store_data == false).
  std::vector<Lpn> dump_lpns_timing_only_;
  uint32_t dump_pages_used_ = 0;

  Stats stats_;

  Tracer* tracer_ = nullptr;
  /// Registered per-layer latency histograms (always non-null).
  Histogram* h_ncq_wait_ns_;
  Histogram* h_bus_ns_;
  Histogram* h_fw_ns_;
  Histogram* h_frame_stall_ns_;
  Histogram* h_destage_ns_;
  Histogram* h_flush_drain_ns_;
  MetricCounter* c_degraded_rejects_;
  MetricCounter* c_destage_absorbed_;  ///< "ssd.destage_absorbed" counter.
  MetricCounter* c_barriers_;          ///< "ssd.barriers" counter.
  MetricCounter* c_cache_read_sectors_;  ///< "ssd.cache_read_sectors" (hits).
  MetricCounter* c_cache_read_misses_;   ///< "ssd.cache_read_misses".
  MetricCounter* c_log_segments_;        ///< "ssd.log_segments" counter.
  Histogram* h_epoch_size_;  ///< Writes per sealed epoch ("ssd.epoch_size").
  Histogram* h_qd_;  ///< In-flight depth at each submission ("ssd.qd").
};

}  // namespace durassd

#endif  // DURASSD_SSD_SSD_DEVICE_H_
