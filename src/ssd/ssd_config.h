#ifndef DURASSD_SSD_SSD_CONFIG_H_
#define DURASSD_SSD_SSD_CONFIG_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/types.h"
#include "flash/fault_model.h"
#include "flash/geometry.h"

namespace durassd {

/// Full configuration of a simulated SSD. The presets at the bottom model
/// the four devices of the paper's Table 1: DuraSSD (512MB durable cache),
/// SSD-A (512MB volatile cache), SSD-B (128MB volatile cache), and — via
/// HddDevice — a Seagate Cheetah 15K.6 disk.
struct SsdConfig {
  std::string name = "DuraSSD";
  FlashGeometry geometry;

  /// Logical sector (mapping granularity): the paper's DuraSSD maps 4KB
  /// logical pages onto 8KB NAND pages (Sec. 3.1.2).
  uint32_t sector_size = 4 * kKiB;

  /// Fraction of raw flash reserved for over-provisioning (GC headroom).
  double over_provision = 0.07;
  /// GC starts when a plane's free-block list drops below this.
  uint32_t gc_free_block_threshold = 2;
  /// Blocks per plane reserved as the power-loss dump area (Sec. 3.4.1).
  uint32_t dump_blocks_per_plane = 2;

  // --- Destage placement policy (ROADMAP item 2, dm-writeboost style) ---
  /// How the lazy destage scheduler places drained sectors on NAND:
  enum class DestageMode {
    /// Per-page programs through the page-mapping FTL's normal allocator
    /// (the paper's design, and the bit-identical legacy behavior).
    kInPlace,
    /// Coalesce the pending buffer into large sequential log segments
    /// (header page with the LPN map + per-sector CRC32C, then data pages
    /// striped one per plane) appended to a dedicated log region. Segments
    /// are validated by checksum on recovery and a torn tail segment is
    /// truncated. Requires the durable cache and the lazy scheduler
    /// (destage_batch_pages > 1); ignored otherwise.
    kLogStructured,
  };
  DestageMode destage_mode = DestageMode::kInPlace;
  /// Blocks per plane reserved as the sequential log region. 0 = auto:
  /// max(2, blocks_per_plane / 8) when kLogStructured, none for kInPlace.
  uint32_t log_blocks_per_plane = 0;
  /// Data pages per log segment (the header page is extra). 0 = auto: one
  /// page per plane minus the header, clamped so the segment's LPN map +
  /// CRCs fit one header page.
  uint32_t log_segment_pages = 0;

  // --- Device cache ---
  /// Write cache enabled ("Storage Cache ON" rows of Table 1). When false
  /// the device is write-through: each write programs NAND synchronously
  /// and persists its mapping entry before acknowledging.
  bool cache_enabled = true;
  /// Capacitor-backed cache (the DuraSSD contribution). When true, every
  /// acknowledged write is atomic + durable; on power failure the cache and
  /// dirty mapping entries are dumped to the dump area on capacitor power.
  bool durable_cache = false;
  /// Write-buffer frames (in sectors). The paper argues a few MB suffices
  /// to fill all pipelines (Sec. 3.1.1): 2048 x 4KB = 8 MiB default.
  uint32_t write_buffer_sectors = 2048;
  /// Total cache entries retained for read hits (write buffer + clean).
  uint32_t cache_capacity_sectors = 16384;
  /// Bytes the tantalum capacitors can flush after power loss ("dozens of
  /// megabytes", Sec. 3.1). The dump must fit or recovery is incomplete.
  uint64_t capacitor_budget_bytes = 64 * kMiB;

  // --- Destage scheduler (Sec. 3.1.1: lazy destage fills every pipeline) ---
  /// Pages per drain round the scheduler may issue (up to one page per
  /// plane per round). 1 = legacy eager destage: every write programs NAND
  /// synchronously at acknowledgement, exactly the pre-scheduler path (A/B
  /// baseline). >1 = lazy batching: dirty sectors accumulate in the write
  /// buffer and drain on frame pressure, FLUSH, power-cut dump, or the idle
  /// threshold.
  uint32_t destage_batch_pages = 256;
  /// Pair two full pages onto sibling planes of one chip as a single
  /// multi-plane program command (chip-level interleaving, Sec. 2.3).
  /// Only takes effect in lazy mode (destage_batch_pages > 1).
  bool multi_plane_program = true;
  /// Choose the least-busy plane (plane busy_until + channel occupancy) for
  /// each destage program instead of blind round-robin. Round-robin remains
  /// the tie-break so allocation stays deterministic and striped. false =
  /// legacy blind round-robin.
  bool idle_aware_allocation = true;
  /// Lazy mode: dirty sectors older than this are destaged when the next
  /// host command arrives (the device exploits its own idle time).
  SimTime destage_idle_ns = 1 * kMillisecond;

  // --- Host interface & firmware timing ---
  /// SATA 3.0-class bus.
  double bus_write_bytes_per_ns = 0.60;  ///< ~600 MB/s effective.
  double bus_read_bytes_per_ns = 0.55;   ///< ~550 MB/s effective.
  SimTime bus_cmd_overhead = 3 * kMicrosecond;
  /// Firmware command pipeline: `fw_parallelism` commands processed
  /// concurrently, each costing fw_base + fw_per_extra_sector * (nsec-1).
  uint32_t fw_parallelism = 3;
  SimTime fw_write_base = 55 * kMicrosecond;
  SimTime fw_write_per_extra_sector = 50 * kMicrosecond;
  SimTime fw_read_base = 4 * kMicrosecond;
  SimTime fw_read_per_extra_sector = 2 * kMicrosecond;

  // --- FLUSH CACHE cost model (Fig. 2) ---
  /// Fixed firmware overhead of a FLUSH CACHE: quiescing queues and
  /// persisting FTL metadata/journal.
  SimTime flush_fixed_overhead = 3200 * kMicrosecond;
  /// Mapping entries that fit one NAND journal page when persisting.
  uint32_t mapping_entries_per_page = 1024;
  /// The firmware checkpoints its mapping journal on its own once this many
  /// entries are dirty, like real controllers do; only writes after the
  /// last internal checkpoint are at risk on a volatile device.
  uint32_t mapping_autopersist_threshold = 65536;

  /// Whether a power cut during a flush (or during write-through) can leave
  /// a mapping entry pointing at a torn page — the anomaly Zheng et al.
  /// (FAST'13) observed on 13 of 15 commodity SSDs. Always false in effect
  /// for a durable cache device.
  bool exposes_torn_writes = true;

  /// NCQ depth (SATA: 31/32 outstanding commands).
  uint32_t ncq_depth = 32;
  /// Host submission-window limit for the asynchronous Submit path: a
  /// Submit stalls (in virtual time) while this many commands are in
  /// flight. 0 = unlimited, which keeps purely synchronous callers'
  /// timing identical to the pre-async model.
  uint32_t host_queue_depth = 0;
  /// Ordered command queue (DuraSSD firmware feature, Sec. 3.3). Keeps the
  /// host-visible completion order equal to arrival order so WAL ordering
  /// survives without barriers.
  bool ordered_queue = true;
  /// How FLUSH CACHE is implemented (Sec. 3.3 discusses both):
  enum class FlushMode {
    /// Drain the cache and persist the mapping — the T13 semantics every
    /// commodity device implements.
    kFullFlush,
    /// The alternative the paper leaves as future work: with a durable
    /// cache, FLUSH CACHE only needs to enforce ordering, so it completes
    /// once all previously arrived commands are acknowledged — no drain.
    /// Lets unmodified hosts (barriers ON) get nobarrier-class speed.
    /// Ignored (treated as kFullFlush) on volatile-cache devices.
    kOrderedNoDrain,
  };
  FlushMode flush_mode = FlushMode::kFullFlush;

  /// Store real bytes (tests) or run timing-only (large benchmarks).
  bool store_data = true;

  // --- NAND fault injection & ECC (all-zero rates = exact seed behavior) ---
  /// Fault injector knobs; see FaultInjector::Options. Defaults inject
  /// nothing and perturb nothing.
  FaultInjector::Options faults;
  /// Raw bit errors per page the controller's ECC corrects in one shot.
  uint32_t ecc_correctable_bits = 8;
  /// Read-retry attempts when raw errors exceed the ECC budget.
  uint32_t read_retry_limit = 4;
  /// Fresh pages tried when a NAND program reports failure.
  uint32_t program_retry_limit = 3;

  /// Log-region reservation with the 0 = auto default resolved. Zero unless
  /// the device actually runs log-structured destage (which needs the lazy
  /// scheduler on a durable-cache device).
  uint32_t resolved_log_blocks_per_plane() const {
    if (destage_mode != DestageMode::kLogStructured || !cache_enabled ||
        !durable_cache || destage_batch_pages <= 1) {
      return 0;
    }
    const uint32_t want = log_blocks_per_plane != 0
                              ? log_blocks_per_plane
                              : std::max(2u, geometry.blocks_per_plane / 8);
    // Never eat into the dump area or the last few main-area blocks.
    const uint32_t ceiling =
        geometry.blocks_per_plane > dump_blocks_per_plane + 4
            ? geometry.blocks_per_plane - dump_blocks_per_plane - 4
            : 0;
    return std::min(want, ceiling);
  }

  /// Data pages per log segment with the 0 = auto default resolved: one
  /// page per plane (minus the header page), clamped so the header's LPN
  /// map + per-sector CRC32C entries fit one page.
  uint32_t resolved_log_segment_pages() const {
    uint32_t pages = log_segment_pages != 0
                         ? log_segment_pages
                         : std::max(1u, geometry.total_planes() - 1);
    // Header layout: magic u32 + seq u64 + count u32 + count * (lpn u64 +
    // crc u32) + header crc u32 = 20 + 12 * count bytes.
    const uint32_t sectors_per_page = geometry.page_size / sector_size;
    const uint32_t max_sectors = (geometry.page_size - 20) / 12;
    pages = std::min(pages, std::max(1u, max_sectors / sectors_per_page));
    return pages;
  }

  uint64_t logical_sectors() const {
    const double usable =
        static_cast<double>(geometry.total_bytes()) * (1.0 - over_provision);
    // Dump area and log region are also carved out of raw capacity.
    const uint64_t reserved_blocks =
        static_cast<uint64_t>(dump_blocks_per_plane) +
        resolved_log_blocks_per_plane();
    const uint64_t reserved_bytes = reserved_blocks * geometry.total_planes() *
                                    geometry.pages_per_block *
                                    geometry.page_size;
    const double net = usable - static_cast<double>(reserved_bytes);
    return net <= 0 ? 0 : static_cast<uint64_t>(net) / sector_size;
  }

  // ---------------------------------------------------------------------
  // Presets (calibrated against Table 1; see EXPERIMENTS.md).
  // ---------------------------------------------------------------------

  /// The paper's prototype: durable 512MB cache, ordered NCQ, 4KB mapping.
  static SsdConfig DuraSsd() {
    SsdConfig c;
    c.name = "DuraSSD";
    c.durable_cache = true;
    c.exposes_torn_writes = false;
    c.ordered_queue = true;
    return c;
  }

  /// Commodity SSD-A: 512MB volatile cache, slower firmware.
  static SsdConfig SsdA() {
    SsdConfig c;
    c.name = "SSD-A";
    c.durable_cache = false;
    c.fw_write_base = 82 * kMicrosecond;
    c.flush_fixed_overhead = 2900 * kMicrosecond;
    c.ordered_queue = false;
    return c;
  }

  /// Commodity SSD-B: 128MB volatile cache, cheap flush but slow commands.
  static SsdConfig SsdB() {
    SsdConfig c;
    c.name = "SSD-B";
    c.durable_cache = false;
    c.fw_write_base = 112 * kMicrosecond;
    c.flush_fixed_overhead = 900 * kMicrosecond;
    c.write_buffer_sectors = 512;
    c.cache_capacity_sectors = 4096;
    c.ordered_queue = false;
    // SSD-B programs faster NAND but has fewer channels.
    c.geometry.channels = 4;
    c.geometry.blocks_per_plane = 2 * 96;
    c.geometry.program_latency = 700 * kMicrosecond;
    return c;
  }

  /// Small-geometry variant of any preset, for unit tests.
  static SsdConfig Tiny(bool durable = true) {
    SsdConfig c = durable ? DuraSsd() : SsdA();
    c.geometry = FlashGeometry::Tiny();
    c.write_buffer_sectors = 32;
    c.cache_capacity_sectors = 64;
    c.dump_blocks_per_plane = 2;
    c.capacitor_budget_bytes = 1 * kMiB;
    c.over_provision = 0.25;
    return c;
  }
};

}  // namespace durassd

#endif  // DURASSD_SSD_SSD_CONFIG_H_
