#include "ssd/hdd_device.h"

#include <algorithm>
#include <cassert>

namespace durassd {

HddDevice::HddDevice(Config config)
    : cfg_(std::move(config)), bus_(1), arm_(1) {
  torn_.assign(cfg_.num_sectors, false);
}

SimTime HddDevice::ServiceTime(uint32_t nsec, bool is_write,
                               uint32_t q) const {
  const double gain =
      is_write ? cfg_.write_elevator_gain : cfg_.read_elevator_gain;
  const uint32_t window =
      is_write ? cfg_.write_elevator_window : cfg_.read_elevator_window;
  const double factor =
      1.0 + gain * static_cast<double>(std::min(q, window)) / window;
  const double positioning = static_cast<double>(cfg_.avg_seek) +
                             static_cast<double>(cfg_.half_rotation);
  const double transfer = static_cast<double>(nsec) * cfg_.sector_size /
                          cfg_.transfer_bytes_per_ns;
  return static_cast<SimTime>(positioning / factor + transfer) +
         cfg_.fixed_overhead;
}

uint32_t HddDevice::QueueDepth(SimTime t) {
  while (!outstanding_.empty() && outstanding_.top() <= t) {
    outstanding_.pop();
  }
  return static_cast<uint32_t>(outstanding_.size()) + 1;
}

void HddDevice::CommitToMedia(Lpn lpn, Slice data) {
  if (!cfg_.store_data) return;
  const uint32_t nsec = static_cast<uint32_t>(data.size() / cfg_.sector_size);
  for (uint32_t i = 0; i < nsec; ++i) {
    media_[lpn + i].assign(
        data.data() + static_cast<size_t>(i) * cfg_.sector_size,
        cfg_.sector_size);
    torn_[lpn + i] = false;
  }
}

SimTime HddDevice::DestageToMedia(SimTime t, Lpn lpn, Slice data,
                                  SimTime* start_out) {
  const uint32_t nsec =
      std::max<uint32_t>(1, static_cast<uint32_t>(data.size() / cfg_.sector_size));
  const SimTime service = ServiceTime(nsec, /*is_write=*/true, QueueDepth(t));
  const ResourceTimeline::Grant g = arm_.Acquire(t, service);
  outstanding_.push(g.done);
  inflight_.push_back({lpn, nsec, g.start, g.done, data.ToString()});
  if (inflight_.size() > 2048) {
    std::erase_if(inflight_, [this](const InFlight& w) {
      return w.done <= max_time_seen_;
    });
  }
  CommitToMedia(lpn, data);
  *start_out = g.start;
  return g.done;
}

BlockDevice::Result HddDevice::Execute(SimTime t, const Command& cmd) {
  if (cut_armed_ && t >= scheduled_cut_) {
    const SimTime cut = scheduled_cut_;
    ++scheduled_cuts_tripped_;
    PowerCut(cut);
    return {Status::DeviceOffline("scheduled power cut"), cut};
  }
  Result r;
  switch (cmd.op) {
    case Command::Op::kWrite:
      r = DoWrite(t, cmd.lpn, cmd.data);
      break;
    case Command::Op::kRead:
      r = DoRead(t, cmd.lpn, cmd.nsec, cmd.out);
      break;
    case Command::Op::kFlush:
    case Command::Op::kBarrier:
      // No barrier support on disk: ordering requires the full drain.
      r = DoFlush(t);
      break;
  }
  if (cut_armed_ && r.status.ok() && r.done > scheduled_cut_) {
    // Causality guard (SsdDevice::CutBeforeCompletion's contract): a
    // completion past the armed instant must not be acknowledged — power
    // failed first. PowerCut's shear/clear rollback reverts the effects
    // the dispatch above already applied.
    const SimTime cut = scheduled_cut_;
    ++scheduled_cuts_tripped_;
    PowerCut(cut);
    return {Status::DeviceOffline("scheduled power cut"), cut};
  }
  return r;
}

BlockDevice::Result HddDevice::DoWrite(SimTime now, Lpn lpn, Slice data) {
  if (!powered_) return {Status::DeviceOffline(), now};
  if (data.empty() || data.size() % cfg_.sector_size != 0) {
    return {Status::InvalidArgument("write size not sector-aligned"), now};
  }
  const uint32_t nsec = static_cast<uint32_t>(data.size() / cfg_.sector_size);
  if (lpn + nsec > cfg_.num_sectors) {
    return {Status::InvalidArgument("write beyond device capacity"), now};
  }
  max_time_seen_ = std::max(max_time_seen_, now);

  const SimTime bus_time =
      static_cast<SimTime>(data.size() / cfg_.bus_bytes_per_ns) +
      cfg_.bus_cmd_overhead;
  const ResourceTimeline::Grant bus = bus_.Acquire(now, bus_time);

  if (!cfg_.cache_enabled) {
    SimTime start = 0;
    const SimTime done = DestageToMedia(bus.done, lpn, data, &start);
    max_time_seen_ = std::max(max_time_seen_, done);
    return {Status::OK(), done};
  }

  // Track-cache path: ack once transferred; destage asynchronously. Frames
  // bound the dirty backlog.
  SimTime t = bus.done;
  while (!outstanding_.empty() && outstanding_.top() <= t) outstanding_.pop();
  while (outstanding_.size() + nsec > cfg_.write_cache_sectors &&
         !outstanding_.empty()) {
    t = std::max(t, outstanding_.top());
    outstanding_.pop();
  }
  const SimTime ack = t;
  SimTime start = 0;
  const SimTime media_done = DestageToMedia(ack, lpn, data, &start);
  if (cfg_.store_data) {
    for (uint32_t i = 0; i < nsec; ++i) {
      CachedWrite& cw = cache_[lpn + i];
      cw.data.assign(data.data() + static_cast<size_t>(i) * cfg_.sector_size,
                     cfg_.sector_size);
      cw.ack = ack;
      cw.media_start = start;
      cw.media_done = media_done;
    }
  }
  max_time_seen_ = std::max(max_time_seen_, ack);
  return {Status::OK(), ack};
}

BlockDevice::Result HddDevice::DoRead(SimTime now, Lpn lpn, uint32_t nsec,
                                      std::string* out) {
  if (!powered_) return {Status::DeviceOffline(), now};
  if (nsec == 0 || lpn + nsec > cfg_.num_sectors) {
    return {Status::InvalidArgument("read beyond device capacity"), now};
  }
  max_time_seen_ = std::max(max_time_seen_, now);

  const SimTime service = ServiceTime(nsec, /*is_write=*/false,
                                      QueueDepth(now));
  const ResourceTimeline::Grant g = arm_.Acquire(now, service);
  outstanding_.push(g.done);
  const SimTime bus_time =
      static_cast<SimTime>(static_cast<double>(nsec) * cfg_.sector_size /
                           cfg_.bus_bytes_per_ns) +
      cfg_.bus_cmd_overhead;
  const ResourceTimeline::Grant bus = bus_.Acquire(g.done, bus_time);

  if (out != nullptr) {
    out->clear();
    for (uint32_t i = 0; i < nsec; ++i) {
      auto cit = cache_.find(lpn + i);
      if (cit != cache_.end()) {
        out->append(cit->second.data);
        continue;
      }
      auto mit = media_.find(lpn + i);
      if (mit != media_.end()) {
        out->append(mit->second);
      } else {
        out->append(cfg_.sector_size, '\0');
      }
    }
  }
  max_time_seen_ = std::max(max_time_seen_, bus.done);
  return {Status::OK(), bus.done};
}

BlockDevice::Result HddDevice::DoFlush(SimTime now) {
  if (!powered_) return {Status::DeviceOffline(), now};
  max_time_seen_ = std::max(max_time_seen_, now);
  // Flushes serialize in the drive's firmware.
  const SimTime start = std::max(now, last_flush_done_);
  SimTime done = start + cfg_.bus_cmd_overhead;
  while (!outstanding_.empty()) {
    done = std::max(done, outstanding_.top());
    outstanding_.pop();
  }
  last_flush_done_ = done;
  if (done > start) {
    (void)bus_.Acquire(start, done - start);  // Flush stalls the link.
  }
  max_time_seen_ = std::max(max_time_seen_, done);
  return {Status::OK(), done};
}

void HddDevice::PowerCut(SimTime t) {
  cut_armed_ = false;
  if (!powered_) return;
  powered_ = false;

  // Writes whose media pass had not finished: roll back or shear.
  for (const InFlight& w : inflight_) {
    if (w.done <= t) continue;
    if (!cfg_.store_data) continue;
    // The media pass had not finished: the command is sheared. First half
    // of the leading sector made it; the rest of the command did not.
    // (Commands that had not even started are treated the same —
    // deliberately pessimistic for a volatile in-place device.)
    for (uint32_t i = 0; i < w.nsec; ++i) {
      auto mit = media_.find(w.lpn + i);
      if (mit == media_.end()) continue;
      std::string& bytes = mit->second;
      if (i == 0) {
        for (size_t b = bytes.size() / 2; b < bytes.size(); ++b) {
          bytes[b] = '\0';
        }
      } else {
        // Later sectors of the command had not been written at all; they
        // read back as stale/empty.
        bytes.assign(cfg_.sector_size, '\0');
      }
      torn_[w.lpn + i] = true;
    }
  }
  inflight_.clear();

  // Unflushed cache contents are gone; anything only in the track cache
  // (media write incomplete) was handled above.
  cache_.clear();
  while (!outstanding_.empty()) outstanding_.pop();
  bus_.Reset();
  arm_.Reset();
  max_time_seen_ = 0;
  last_flush_done_ = 0;  // The clock restarts at zero after PowerOn.
  AbortInFlight(t);
}

SimTime HddDevice::PowerOn() {
  if (powered_) return 0;
  powered_ = true;
  return 2 * kMillisecond;  // Spin-up is seconds on real disks; irrelevant.
}

}  // namespace durassd
