#include "ssd/destage_scheduler.h"

#include <algorithm>

namespace durassd {

bool DestageScheduler::Add(Lpn lpn, SimTime now) {
  last_add_time_ = now;
  if (!pending_.insert(lpn).second) {
    return false;  // Absorbed: already pending, bytes refreshed in place.
  }
  fifo_.push_back(lpn);
  return true;
}

void DestageScheduler::Clear() {
  fifo_.clear();
  pending_.clear();
}

void DestageScheduler::CompactFifo() {
  if (fifo_.size() <= 2 * pending_.size() + 64) return;
  std::deque<Lpn> live;
  for (Lpn lpn : fifo_) {
    if (pending_.count(lpn) != 0) live.push_back(lpn);
  }
  fifo_ = std::move(live);
}

std::vector<Lpn> DestageScheduler::TakePending(size_t max_sectors) {
  std::vector<Lpn> out;
  out.reserve(std::min(max_sectors, pending_.size()));
  while (!fifo_.empty() && out.size() < max_sectors) {
    const Lpn lpn = fifo_.front();
    fifo_.pop_front();
    if (pending_.erase(lpn) == 0) continue;  // Stale (absorbed or removed).
    out.push_back(lpn);
  }
  return out;
}

Status DestageScheduler::DrainRound(SimTime t, size_t max_pages) {
  if (max_pages == 0) max_pages = opts_.batch_pages;
  return Drain(t, max_pages, /*include_partial=*/false);
}

Status DestageScheduler::DrainAll(SimTime t) {
  while (!pending_.empty()) {
    DURASSD_RETURN_IF_ERROR(
        Drain(t, opts_.batch_pages, /*include_partial=*/true));
  }
  return Status::OK();
}

Status DestageScheduler::Drain(SimTime t, size_t max_pages,
                               bool include_partial) {
  CompactFifo();

  // Pair pending sectors into pages in arrival order. Stale fifo entries
  // (absorbed or removed since) are skipped; each group is removed from
  // pending_ only once its program was issued, so a failed issue leaves
  // the remainder queued for a later retry.
  std::vector<std::vector<Lpn>> groups;
  std::vector<Lpn> group;
  std::unordered_set<Lpn> staged;
  for (Lpn lpn : fifo_) {
    if (groups.size() == max_pages) break;
    if (pending_.count(lpn) == 0 || staged.count(lpn) != 0) continue;
    staged.insert(lpn);
    group.push_back(lpn);
    if (group.size() == opts_.sectors_per_page) {
      groups.push_back(std::move(group));
      group.clear();
    }
  }
  if (include_partial && !group.empty() && groups.size() < max_pages) {
    groups.push_back(std::move(group));
  }

  size_t i = 0;
  while (i < groups.size()) {
    const bool full_pair =
        opts_.multi_plane && i + 1 < groups.size() &&
        groups[i].size() == opts_.sectors_per_page &&
        groups[i + 1].size() == opts_.sectors_per_page;
    if (full_pair) {
      DURASSD_RETURN_IF_ERROR(
          sink_->DestagePagePair(t, groups[i], groups[i + 1]));
      for (Lpn lpn : groups[i]) pending_.erase(lpn);
      for (Lpn lpn : groups[i + 1]) pending_.erase(lpn);
      i += 2;
    } else {
      DURASSD_RETURN_IF_ERROR(sink_->DestagePage(t, groups[i]));
      for (Lpn lpn : groups[i]) pending_.erase(lpn);
      i += 1;
    }
  }
  return Status::OK();
}

}  // namespace durassd
