#include "ssd/ftl.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace durassd {

Ftl::Ftl(FlashArray* flash, Options options)
    : flash_(flash), opts_(options) {
  if (opts_.metrics != nullptr) {
    h_program_ns_ = opts_.metrics->GetHistogram("ftl.program_ns");
    h_gc_relocation_ns_ = opts_.metrics->GetHistogram("ftl.gc_relocation_ns");
    c_ecc_retries_ = opts_.metrics->Counter("ftl.ecc_retries");
    c_gc_runs_ = opts_.metrics->Counter("ftl.gc_runs");
    c_degraded_entries_ = opts_.metrics->Counter("ftl.degraded_entries");
  }
  const FlashGeometry& g = flash_->geometry();
  assert(g.page_size % opts_.sector_size == 0);
  sectors_per_page_ = g.page_size / opts_.sector_size;
  assert(sectors_per_page_ >= 1 && sectors_per_page_ <= 4);
  assert(opts_.dump_blocks_per_plane + opts_.log_blocks_per_plane <
         g.blocks_per_plane);

  first_dump_block_ = g.blocks_per_plane - opts_.dump_blocks_per_plane;
  first_log_block_ = first_dump_block_ - opts_.log_blocks_per_plane;
  log_pages_total_ = static_cast<uint64_t>(opts_.log_blocks_per_plane) *
                     g.total_planes() * g.pages_per_block;
  dump_ppns_.reserve(static_cast<size_t>(opts_.dump_blocks_per_plane) *
                     g.total_planes() * g.pages_per_block);
  for (uint32_t plane = 0; plane < g.total_planes(); ++plane) {
    for (uint32_t b = first_dump_block_; b < g.blocks_per_plane; ++b) {
      for (uint32_t p = 0; p < g.pages_per_block; ++p) {
        dump_ppns_.push_back(g.MakePpn(plane, b, p));
      }
    }
  }

  const uint64_t reserved_bytes =
      (static_cast<uint64_t>(dump_ppns_.size()) + log_pages_total_) *
      g.page_size;
  const double usable = (static_cast<double>(g.total_bytes()) -
                         static_cast<double>(reserved_bytes)) *
                        (1.0 - opts_.over_provision);
  logical_sectors_ =
      usable <= 0 ? 0 : static_cast<uint64_t>(usable) / opts_.sector_size;

  reverse_.assign(g.total_pages() * sectors_per_page_, kInvalidLpn);
  planes_.resize(g.total_planes());
  for (auto& plane : planes_) {
    plane.free_blocks.reserve(first_log_block_);
    // LIFO: push in reverse so block 0 is allocated first (determinism).
    for (uint32_t b = first_log_block_; b-- > 0;) {
      plane.free_blocks.push_back(b);
    }
  }
}

StatusOr<Ppn> Ftl::AllocatePage(SimTime now, uint32_t plane_idx, bool for_gc) {
  const FlashGeometry& g = flash_->geometry();
  PlaneAlloc& plane = planes_[plane_idx];

  if (!for_gc && plane.free_blocks.size() <= opts_.gc_free_block_threshold &&
      plane.active_block != ~0u) {
    DURASSD_RETURN_IF_ERROR(RunGc(now, plane_idx));
  }

  if (plane.active_block == ~0u || plane.next_page >= g.pages_per_block) {
    // A block can go bad while parked on the free list (e.g. a failed dump
    // erase); skip those.
    while (!plane.free_blocks.empty() &&
           flash_->is_bad_block(plane_idx, plane.free_blocks.back())) {
      plane.free_blocks.pop_back();
    }
    if (plane.free_blocks.empty()) {
      return Status::OutOfSpace("plane has no erased blocks");
    }
    plane.active_block = plane.free_blocks.back();
    plane.free_blocks.pop_back();
    plane.next_page = 0;
  }
  const Ppn ppn = g.MakePpn(plane_idx, plane.active_block, plane.next_page);
  plane.next_page++;
  return ppn;
}

StatusOr<Ppn> Ftl::AllocateAndProgram(SimTime now, uint32_t plane_idx,
                                      bool for_gc, Slice data, SimTime* done,
                                      SimTime* start) {
  const FlashGeometry& g = flash_->geometry();
  for (uint32_t attempt = 0; attempt <= opts_.program_retry_limit; ++attempt) {
    StatusOr<Ppn> ppn_or = AllocatePage(now, plane_idx, for_gc);
    if (!ppn_or.ok()) return ppn_or;
    const Ppn ppn = *ppn_or;
    Status st = flash_->ProgramPage(now, ppn, data, done, start);
    if (st.ok()) return ppn;
    if (!st.IsIoError()) return st;
    // The die reported program failure. Close the block, queue it for
    // retirement (its live pages move out in DrainRetirements), and retry
    // on a fresh one.
    stats_.program_retries++;
    QueueRetirement(plane_idx, g.BlockOf(ppn));
  }
  return Status::IoError("program retries exhausted");
}

Status Ftl::ReadPageChecked(SimTime now, Ppn ppn, std::string* page,
                            SimTime* done) {
  uint32_t raw = 0;
  SimTime t = flash_->ReadPage(now, ppn, page, &raw);
  for (uint32_t retry = 0;
       raw > opts_.ecc_correctable_bits && retry < opts_.read_retry_limit;
       ++retry) {
    // Read-retry: re-sense with shifted thresholds; each attempt rolls a
    // fresh raw error count and costs a full page read.
    stats_.read_retries++;
    if (c_ecc_retries_ != nullptr) ++*c_ecc_retries_;
    t = flash_->ReadPage(t, ppn, page, &raw);
  }
  if (done != nullptr) *done = t;
  if (raw > opts_.ecc_correctable_bits) {
    stats_.uncorrectable_reads++;
    if (page != nullptr) flash_->fault_injector().CorruptPage(page, raw);
    return Status::Corruption("uncorrectable NAND read");
  }
  stats_.ecc_corrected += raw;
  return Status::OK();
}

bool Ftl::IsRetirePending(uint32_t plane, uint32_t block) const {
  return retire_pending_set_.count(RetireKey(plane, block)) != 0;
}

void Ftl::QueueRetirement(uint32_t plane_idx, uint32_t block) {
  PlaneAlloc& plane = planes_[plane_idx];
  if (plane.active_block == block) {
    plane.active_block = ~0u;
    plane.next_page = 0;
  }
  std::erase(plane.free_blocks, block);
  if (flash_->is_bad_block(plane_idx, block)) return;
  if (IsRetirePending(plane_idx, block)) return;
  retire_pending_.emplace_back(plane_idx, block);
  retire_pending_set_.insert(RetireKey(plane_idx, block));
}

void Ftl::DrainRetirements(SimTime now) {
  // Worklist, not recursion: a program failure during relocation queues
  // another block and this loop picks it up.
  while (!retire_pending_.empty()) {
    const auto [plane, block] = retire_pending_.back();
    retire_pending_.pop_back();
    retire_pending_set_.erase(RetireKey(plane, block));
    Status st = RelocateLiveSectors(now, plane, block);
    if (!st.ok()) {
      // Could not move the live data out. Leave the block pending: it is
      // excluded from allocation and GC, and its pages stay readable.
      retire_pending_.emplace_back(plane, block);
      retire_pending_set_.insert(RetireKey(plane, block));
      if (st.IsOutOfSpace()) {
        // No healthy destination exists for the live data, and none will
        // appear — the device can no longer guarantee writes.
        EnterDegraded(now, plane,
                      "retirement relocation failed: " + st.message());
      }
      return;
    }
    flash_->RetireBlock(plane, block);
  }
}

void Ftl::EnterDegraded(SimTime now, uint32_t plane, std::string reason) {
  if (degraded_) return;
  degraded_ = true;
  degraded_reason_ = std::move(reason);
  if (c_degraded_entries_ != nullptr) ++*c_degraded_entries_;
  if (tracer_ != nullptr) {
    tracer_->Record(now, TraceEventType::kDegraded, plane,
                    flash_->stats().bad_blocks);
  }
}

void Ftl::KillSlot(uint64_t packed) {
  const Ppn ppn = PpnOf(packed);
  const uint32_t slot = SlotOf(packed);
  reverse_[ppn * sectors_per_page_ + slot] = kInvalidLpn;
  // The physical page dies when its last live sector dies.
  bool any_live = false;
  for (uint32_t s = 0; s < sectors_per_page_; ++s) {
    if (reverse_[ppn * sectors_per_page_ + s] != kInvalidLpn) {
      any_live = true;
      break;
    }
  }
  if (!any_live) flash_->MarkInvalid(ppn);
}

void Ftl::RecordDelta(Lpn lpn, SimTime issue, SimTime start, SimTime done) {
  auto it = delta_.find(lpn);
  if (it == delta_.end()) {
    auto mit = map_.find(lpn);
    const uint64_t old_packed = mit == map_.end() ? kUnmapped : mit->second;
    delta_.emplace(lpn, DeltaRec{old_packed, issue, start, done});
  } else {
    it->second.last_issue = issue;
    it->second.last_start = start;
    it->second.last_done = done;
  }
}

Status Ftl::ValidateSectors(const std::vector<SectorWrite>& sectors) {
  if (sectors.empty() || sectors.size() > sectors_per_page_) {
    return Status::InvalidArgument("bad sector count for one program");
  }
  if (degraded_) {
    stats_.degraded_rejects++;
    return Status::ResourceExhausted("device is read-only: " +
                                     degraded_reason_);
  }
  const bool have_data = sectors[0].data != nullptr;
  for (const SectorWrite& s : sectors) {
    if (s.lpn >= logical_sectors_) {
      return Status::InvalidArgument("lpn beyond logical capacity");
    }
    if (have_data &&
        (s.data == nullptr || s.data->size() != opts_.sector_size)) {
      return Status::InvalidArgument("sector data size mismatch");
    }
  }
  return Status::OK();
}

uint32_t Ftl::PickPlane(SimTime now, uint32_t group) {
  if (opts_.idle_aware_allocation) {
    return flash_->NextIdlePlane(now, group);
  }
  // Legacy blind round-robin; group > 1 aligns down to the group boundary.
  const uint32_t plane_idx = (rr_plane_ / group) * group;
  rr_plane_ = (plane_idx + group) % static_cast<uint32_t>(planes_.size());
  return plane_idx;
}

namespace {
/// Concatenates a batch's sector payloads into one physical-page image
/// (live sectors first, rest stays erased). Empty in timing-only mode.
std::string AssemblePage(const std::vector<Ftl::SectorWrite>& sectors,
                         uint32_t page_size) {
  std::string page_data;
  if (sectors[0].data != nullptr) {
    page_data.reserve(page_size);
    for (const Ftl::SectorWrite& s : sectors) {
      page_data.append(*s.data);
    }
  }
  return page_data;
}
}  // namespace

Status Ftl::ProgramSectors(SimTime now,
                           const std::vector<SectorWrite>& sectors,
                           SimTime* start, SimTime* done) {
  DURASSD_RETURN_IF_ERROR(ValidateSectors(sectors));

  const uint32_t plane_idx = PickPlane(now);
  const std::string page_data =
      AssemblePage(sectors, flash_->geometry().page_size);

  SimTime prog_done = 0;
  SimTime prog_start = now;
  StatusOr<Ppn> ppn_or =
      AllocateAndProgram(now, plane_idx, /*for_gc=*/false, page_data,
                         &prog_done, &prog_start);
  if (!ppn_or.ok()) {
    const Status& st = ppn_or.status();
    if (st.IsOutOfSpace()) {
      // Spare exhaustion: no erased block exists and GC found nothing to
      // reclaim — a permanent condition, so enter read-only degraded mode.
      // (A plain IoError — program retries exhausted — stays transient:
      // the failed block is already queued for retirement and a host retry
      // lands on fresh flash.) Existing data is intact and readable.
      EnterDegraded(now, plane_idx, st.message());
      stats_.degraded_rejects++;
      return Status::ResourceExhausted("device is read-only: " +
                                       st.message());
    }
    return st;
  }
  const Ppn ppn = *ppn_or;
  stats_.host_programs++;
  if (h_program_ns_ != nullptr) h_program_ns_->Record(prog_done - now);
  // prog_start is the true cell-program start reported by the flash layer —
  // after the channel transfer and any wait for a busy plane — which is
  // what the torn-write model keys on.

  for (uint32_t slot = 0; slot < sectors.size(); ++slot) {
    const Lpn lpn = sectors[slot].lpn;
    RecordDelta(lpn, now, prog_start, prog_done);
    auto it = map_.find(lpn);
    if (it != map_.end()) KillSlot(it->second);
    map_[lpn] = Pack(ppn, slot);
    reverse_[ppn * sectors_per_page_ + slot] = lpn;
  }

  // Blocks that failed a program during this call get their live data
  // moved out and are taken out of service.
  DrainRetirements(now);

  *start = prog_start;
  *done = prog_done;
  return Status::OK();
}

Status Ftl::ProgramSectorsMultiPlane(SimTime now,
                                     const std::vector<SectorWrite>& a,
                                     const std::vector<SectorWrite>& b,
                                     SimTime* start, SimTime* done) {
  DURASSD_RETURN_IF_ERROR(ValidateSectors(a));
  DURASSD_RETURN_IF_ERROR(ValidateSectors(b));
  const FlashGeometry& g = flash_->geometry();
  if (g.planes_per_chip < 2) {
    return Status::InvalidArgument("geometry has no sibling planes");
  }

  const uint32_t plane0 = PickPlane(now, g.planes_per_chip);
  const uint32_t plane1 = plane0 + 1;
  const std::string data0 = AssemblePage(a, g.page_size);
  const std::string data1 = AssemblePage(b, g.page_size);

  // Allocate both pages up front. If the sibling allocation fails, the
  // first plane's page was reserved but never programmed — roll its
  // allocation cursor back so the FTL and flash in-order cursors agree.
  StatusOr<Ppn> p0_or = AllocatePage(now, plane0, /*for_gc=*/false);
  if (!p0_or.ok()) {
    const Status& st = p0_or.status();
    if (st.IsOutOfSpace()) {
      EnterDegraded(now, plane0, st.message());
      stats_.degraded_rejects++;
      return Status::ResourceExhausted("device is read-only: " +
                                       st.message());
    }
    return st;
  }
  StatusOr<Ppn> p1_or = AllocatePage(now, plane1, /*for_gc=*/false);
  if (!p1_or.ok()) {
    planes_[plane0].next_page--;
    const Status& st = p1_or.status();
    if (st.IsOutOfSpace()) {
      EnterDegraded(now, plane1, st.message());
      stats_.degraded_rejects++;
      return Status::ResourceExhausted("device is read-only: " +
                                       st.message());
    }
    return st;
  }

  Ppn ppn0 = *p0_or;
  Ppn ppn1 = *p1_or;
  bool failed[2] = {false, false};
  SimTime mp_start = now;
  SimTime mp_done = now;
  Status st = flash_->ProgramPagesMultiPlane(now, ppn0, ppn1, data0, data1,
                                             &mp_done, &mp_start, failed);
  SimTime start0 = mp_start, done0 = mp_done;
  SimTime start1 = mp_start, done1 = mp_done;
  if (!st.ok()) {
    if (!st.IsIoError()) return st;
    // The die reported program failure on one (or both) pages. Queue the
    // failed block(s) for retirement and re-drive each failed page as a
    // single-plane program on its own plane; the sibling that succeeded
    // keeps its data.
    if (failed[0]) {
      stats_.program_retries++;
      QueueRetirement(plane0, g.BlockOf(ppn0));
    }
    if (failed[1]) {
      stats_.program_retries++;
      QueueRetirement(plane1, g.BlockOf(ppn1));
    }
    Status redrive = Status::OK();
    if (failed[0]) {
      StatusOr<Ppn> re = AllocateAndProgram(mp_done, plane0, /*for_gc=*/false,
                                            data0, &done0, &start0);
      if (re.ok()) {
        ppn0 = *re;
      } else {
        redrive = re.status();
      }
    }
    if (redrive.ok() && failed[1]) {
      StatusOr<Ppn> re = AllocateAndProgram(mp_done, plane1, /*for_gc=*/false,
                                            data1, &done1, &start1);
      if (re.ok()) {
        ppn1 = *re;
      } else {
        redrive = re.status();
      }
    }
    if (!redrive.ok()) {
      // One page could not be placed anywhere. No mapping was updated, so
      // the caller may re-issue both batches; orphan any page that did
      // program so GC reclaims it.
      if (!failed[0] || ppn0 != *p0_or) flash_->MarkInvalid(ppn0);
      if (!failed[1]) flash_->MarkInvalid(ppn1);
      if (redrive.IsOutOfSpace()) {
        EnterDegraded(now, failed[0] ? plane0 : plane1, redrive.message());
        stats_.degraded_rejects++;
        return Status::ResourceExhausted("device is read-only: " +
                                         redrive.message());
      }
      return redrive;
    }
  }

  stats_.host_programs += 2;
  if (h_program_ns_ != nullptr) {
    h_program_ns_->Record(done0 - now);
    h_program_ns_->Record(done1 - now);
  }

  const std::vector<SectorWrite>* batches[2] = {&a, &b};
  const Ppn ppns[2] = {ppn0, ppn1};
  const SimTime starts[2] = {start0, start1};
  const SimTime dones[2] = {done0, done1};
  for (int i = 0; i < 2; ++i) {
    const std::vector<SectorWrite>& sectors = *batches[i];
    for (uint32_t slot = 0; slot < sectors.size(); ++slot) {
      const Lpn lpn = sectors[slot].lpn;
      RecordDelta(lpn, now, starts[i], dones[i]);
      auto it = map_.find(lpn);
      if (it != map_.end()) KillSlot(it->second);
      map_[lpn] = Pack(ppns[i], slot);
      reverse_[ppns[i] * sectors_per_page_ + slot] = lpn;
    }
  }

  DrainRetirements(now);

  *start = std::min(start0, start1);
  *done = std::max(done0, done1);
  return Status::OK();
}

Status Ftl::ReadSector(SimTime now, Lpn lpn, std::string* out, SimTime* done,
                       bool* torn) {
  if (torn != nullptr) *torn = false;
  auto it = map_.find(lpn);
  if (it == map_.end()) {
    if (out != nullptr) out->assign(opts_.sector_size, '\0');
    if (done != nullptr) *done = now;  // Map lookup only; no media access.
    return Status::OK();
  }
  const Ppn ppn = PpnOf(it->second);
  const uint32_t slot = SlotOf(it->second);

  std::string page;
  const Status st = ReadPageChecked(now, ppn, out ? &page : nullptr, done);
  if (out != nullptr) {
    // Even on an uncorrectable read the (corrupted) bytes are handed back,
    // so host-level checksums observe the damage instead of a silent zero.
    out->assign(page, static_cast<size_t>(slot) * opts_.sector_size,
                opts_.sector_size);
    out->resize(opts_.sector_size, '\0');
  }
  if (torn != nullptr) *torn = flash_->IsTorn(ppn);
  return st;
}

Status Ftl::RunGc(SimTime now, uint32_t plane_idx) {
  PlaneAlloc& plane = planes_[plane_idx];
  stats_.gc_runs++;
  if (c_gc_runs_ != nullptr) ++*c_gc_runs_;
  if (tracer_ != nullptr) {
    tracer_->Record(now, TraceEventType::kGcStart, plane_idx);
  }

  // Greedy victim: fewest valid pages among full (non-active, non-free,
  // non-dump, non-log) blocks; erase count breaks ties (mild wear leveling).
  uint32_t victim = ~0u;
  uint32_t best_valid = std::numeric_limits<uint32_t>::max();
  uint32_t best_wear = std::numeric_limits<uint32_t>::max();
  for (uint32_t b = 0; b < first_log_block_; ++b) {
    if (b == plane.active_block) continue;
    if (flash_->is_bad_block(plane_idx, b)) continue;
    if (IsRetirePending(plane_idx, b)) continue;
    if (std::find(plane.free_blocks.begin(), plane.free_blocks.end(), b) !=
        plane.free_blocks.end()) {
      continue;
    }
    const uint32_t valid = flash_->valid_pages_in_block(plane_idx, b);
    const uint32_t wear = flash_->erase_count(plane_idx, b);
    if (valid < best_valid || (valid == best_valid && wear < best_wear)) {
      victim = b;
      best_valid = valid;
      best_wear = wear;
    }
  }
  if (victim == ~0u) {
    return Status::OutOfSpace("gc found no victim block");
  }

  DURASSD_RETURN_IF_ERROR(RelocateLiveSectors(now, plane_idx, victim));
  if (h_gc_relocation_ns_ != nullptr) {
    h_gc_relocation_ns_->Record(std::max<SimTime>(0, last_relocation_done_ -
                                                         now));
  }

  SimTime erase_done = 0;
  const Status erase_st =
      flash_->EraseBlock(now, plane_idx, victim, &erase_done);
  if (erase_st.ok()) {
    stats_.gc_erases++;
    plane.free_blocks.push_back(victim);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(erase_st.ok() ? erase_done : last_relocation_done_,
                    TraceEventType::kGcEnd, plane_idx,
                    last_relocation_moved_);
  }
  // An erase failure grew a bad block: nothing was reclaimed, but the live
  // data already moved out, so GC itself still succeeded.
  return Status::OK();
}

Status Ftl::RelocateLiveSectors(SimTime now, uint32_t plane_idx,
                                uint32_t block) {
  const FlashGeometry& g = flash_->geometry();
  last_relocation_done_ = now;
  last_relocation_moved_ = 0;

  // Collect live sectors, re-pairing them two per program.
  std::vector<std::pair<Lpn, std::string>> live;
  for (uint32_t p = 0; p < g.pages_per_block; ++p) {
    const Ppn ppn = g.MakePpn(plane_idx, block, p);
    std::string page;
    bool read_done = false;
    for (uint32_t s = 0; s < sectors_per_page_; ++s) {
      const Lpn lpn = reverse_[ppn * sectors_per_page_ + s];
      if (lpn == kInvalidLpn) continue;
      if (!read_done) {
        // An uncorrectable read here is not fatal to the move: the bytes
        // (with their damage) still travel, and host checksums catch it.
        Status read_st = ReadPageChecked(now, ppn, &page, nullptr);
        (void)read_st;
        stats_.gc_reads++;
        read_done = true;
      }
      live.emplace_back(
          lpn, page.empty()
                   ? std::string()
                   : page.substr(static_cast<size_t>(s) * opts_.sector_size,
                                 opts_.sector_size));
    }
  }

  for (size_t i = 0; i < live.size(); i += sectors_per_page_) {
    std::string page_data;
    const size_t count = std::min<size_t>(sectors_per_page_, live.size() - i);
    for (size_t j = 0; j < count; ++j) {
      if (!live[i + j].second.empty()) {
        page_data.append(live[i + j].second);
      }
    }
    SimTime done = 0;
    StatusOr<Ppn> dst_or =
        AllocateAndProgram(now, plane_idx, /*for_gc=*/true, page_data, &done);
    if (!dst_or.ok()) return dst_or.status();
    const Ppn dst = *dst_or;
    stats_.gc_programs++;
    last_relocation_done_ = std::max(last_relocation_done_, done);
    last_relocation_moved_ += count;
    for (size_t j = 0; j < count; ++j) {
      const Lpn lpn = live[i + j].first;
      // Old slot dies; mapping follows the data. Delta is untouched: a GC
      // move does not change what the host wrote, only where it lives, and
      // rollback targets are handled below.
      auto it = map_.find(lpn);
      assert(it != map_.end());
      KillSlot(it->second);
      it->second = Pack(dst, static_cast<uint32_t>(j));
      reverse_[dst * sectors_per_page_ + j] = lpn;
    }
  }

  ForcePersistDeltaIn(plane_idx, block);
  return Status::OK();
}

void Ftl::ForcePersistDeltaIn(uint32_t plane_idx, uint32_t block) {
  const FlashGeometry& g = flash_->geometry();
  // Rollback targets living in the block are about to be erased (or
  // retired) for good: a real controller journals the mapping before
  // erasing, so these entries are effectively persisted now and can no
  // longer roll back.
  for (auto it = delta_.begin(); it != delta_.end();) {
    bool drop = false;
    if (it->second.old_packed != kUnmapped) {
      const Ppn old_ppn = PpnOf(it->second.old_packed);
      if (g.PlaneOf(old_ppn) == plane_idx && g.BlockOf(old_ppn) == block) {
        drop = true;
      }
    }
    if (drop) {
      stats_.forced_persists++;
      it = delta_.erase(it);
    } else {
      ++it;
    }
  }
}

void Ftl::PersistMapping() { delta_.clear(); }

std::vector<Lpn> Ftl::DirtyMappingLpns() const {
  std::vector<Lpn> out;
  out.reserve(delta_.size());
  for (const auto& [lpn, rec] : delta_) out.push_back(lpn);
  return out;
}

void Ftl::PowerCutRollback(SimTime t, PowerCutExposure exposure) {
  for (auto& [lpn, rec] : delta_) {
    const SimTime kept_from = exposure == PowerCutExposure::kIssued
                                  ? rec.last_issue
                                  : rec.last_start;
    if (exposure != PowerCutExposure::kNone && kept_from <= t) {
      // The mapping journal had already recorded this entry when the
      // program was issued: the (possibly torn) new page stays visible.
      continue;
    }
    // Lost write: revert to the persisted mapping.
    auto it = map_.find(lpn);
    if (it != map_.end()) {
      KillSlot(it->second);
      if (rec.old_packed == kUnmapped) {
        map_.erase(it);
      } else {
        const Ppn old_ppn = PpnOf(rec.old_packed);
        const uint32_t old_slot = SlotOf(rec.old_packed);
        it->second = rec.old_packed;
        reverse_[old_ppn * sectors_per_page_ + old_slot] = lpn;
        if (flash_->page_state(old_ppn) == PageState::kInvalid) {
          flash_->RevalidatePage(old_ppn);
        }
      }
    }
  }
  delta_.clear();
}

Ppn Ftl::DumpAreaPpn(uint32_t index) const {
  assert(index < dump_ppns_.size());
  return dump_ppns_[index];
}

Status Ftl::ProgramDumpPage(uint32_t index, Slice data) {
  if (index >= dump_ppns_.size()) {
    return Status::OutOfSpace("dump area exhausted");
  }
  SimTime done = 0;
  // Timing is irrelevant on capacitor power; issue at the end of time seen.
  return flash_->ProgramPage(0, dump_ppns_[index], data, &done);
}

Status Ftl::ReadDumpPage(uint32_t index, std::string* out) {
  if (index >= dump_ppns_.size()) {
    return Status::InvalidArgument("dump page index out of range");
  }
  return ReadPageChecked(0, dump_ppns_[index], out, nullptr);
}

SimTime Ftl::EraseDumpArea(SimTime now) {
  const FlashGeometry& g = flash_->geometry();
  SimTime done = now;
  for (uint32_t plane = 0; plane < g.total_planes(); ++plane) {
    for (uint32_t b = first_dump_block_; b < g.blocks_per_plane; ++b) {
      if (flash_->is_bad_block(plane, b)) continue;
      if (flash_->next_program_page(plane, b) == 0) {
        continue;  // Already clean.
      }
      SimTime erase_done = 0;
      const Status st = flash_->EraseBlock(now, plane, b, &erase_done);
      if (!st.ok()) {
        // Grown bad dump block: drop its pages from the dump sequence so
        // future dumps skip it. Capacity shrinks; correctness holds.
        std::erase_if(dump_ppns_, [&](Ppn p) {
          return g.PlaneOf(p) == plane && g.BlockOf(p) == b;
        });
        continue;
      }
      done = std::max(done, erase_done);
    }
  }
  return done;
}

Status Ftl::PrepareLogBlock(SimTime now, uint32_t plane, uint32_t block) {
  if (flash_->next_program_page(plane, block) == 0) {
    return Status::OK();  // Still erased from the previous lap.
  }
  // FIFO log cleaning: by the time the head wraps back, most sectors in
  // the oldest row have been superseded; the few survivors move into the
  // main area through the regular relocation path (for_gc allocations, so
  // this cannot recurse into GC).
  DURASSD_RETURN_IF_ERROR(RelocateLiveSectors(now, plane, block));
  stats_.log_reclaims++;
  SimTime erase_done = 0;
  const Status st = flash_->EraseBlock(now, plane, block, &erase_done);
  // An erase failure grew a bad block; the append cursor skips it.
  (void)st;
  return Status::OK();
}

StatusOr<Ppn> Ftl::AppendLogPage(SimTime now, Slice data, SimTime* start,
                                 SimTime* done) {
  if (log_pages_total_ == 0) {
    return Status::InvalidArgument("no log region reserved");
  }
  if (degraded_) {
    stats_.degraded_rejects++;
    return Status::ResourceExhausted("device is read-only: " +
                                     degraded_reason_);
  }
  const FlashGeometry& g = flash_->geometry();
  const uint32_t planes = g.total_planes();
  for (uint64_t attempt = 0; attempt < log_pages_total_; ++attempt) {
    const uint64_t idx = log_head_ % log_pages_total_;
    const uint32_t plane = static_cast<uint32_t>(idx % planes);
    const uint64_t off = idx / planes;
    const uint32_t block =
        first_log_block_ + static_cast<uint32_t>(off / g.pages_per_block);
    const uint32_t page = static_cast<uint32_t>(off % g.pages_per_block);
    if (flash_->is_bad_block(plane, block)) {
      log_head_++;
      continue;
    }
    if (page == 0) {
      // Entering a block: reclaim it if the previous lap wrote it.
      DURASSD_RETURN_IF_ERROR(PrepareLogBlock(now, plane, block));
      if (flash_->is_bad_block(plane, block)) {
        log_head_++;
        continue;
      }
    }
    const Ppn ppn = g.MakePpn(plane, block, page);
    const Status st = flash_->ProgramPage(now, ppn, data, done, start);
    log_head_++;  // The page is consumed whether or not the program stuck.
    if (st.ok()) {
      stats_.host_programs++;
      stats_.log_appends++;
      if (h_program_ns_ != nullptr) h_program_ns_->Record(*done - now);
      return ppn;
    }
    if (!st.IsIoError()) return st;
    // Program-status failure: the garbage page stays behind (recovery's
    // checksums reject it) and the append retries on the next page.
    stats_.program_retries++;
  }
  return Status::IoError("log region has no programmable page");
}

void Ftl::MapLogSector(Lpn lpn, Ppn ppn, uint32_t slot, SimTime issue,
                       SimTime start, SimTime done) {
  RecordDelta(lpn, issue, start, done);
  auto it = map_.find(lpn);
  if (it != map_.end()) KillSlot(it->second);
  map_[lpn] = Pack(ppn, slot);
  reverse_[ppn * sectors_per_page_ + slot] = lpn;
}

bool Ftl::IsMappedTo(Lpn lpn, Ppn ppn, uint32_t slot) const {
  auto it = map_.find(lpn);
  return it != map_.end() && it->second == Pack(ppn, slot);
}

bool Ftl::UnmapIfPointsTo(Lpn lpn, Ppn ppn, uint32_t slot) {
  auto it = map_.find(lpn);
  if (it == map_.end() || it->second != Pack(ppn, slot)) return false;
  KillSlot(it->second);
  map_.erase(it);
  delta_.erase(lpn);
  return true;
}

Status Ftl::ReadPhysicalPage(SimTime now, Ppn ppn, std::string* out,
                             SimTime* done) {
  return ReadPageChecked(now, ppn, out, done);
}

}  // namespace durassd
