#include "ssd/ftl.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace durassd {

Ftl::Ftl(FlashArray* flash, Options options)
    : flash_(flash), opts_(options) {
  const FlashGeometry& g = flash_->geometry();
  assert(g.page_size % opts_.sector_size == 0);
  sectors_per_page_ = g.page_size / opts_.sector_size;
  assert(sectors_per_page_ >= 1 && sectors_per_page_ <= 4);
  assert(opts_.dump_blocks_per_plane < g.blocks_per_plane);

  first_dump_block_ = g.blocks_per_plane - opts_.dump_blocks_per_plane;
  dump_area_pages_ =
      opts_.dump_blocks_per_plane * g.total_planes() * g.pages_per_block;

  const uint64_t dump_bytes = static_cast<uint64_t>(dump_area_pages_) *
                              g.page_size;
  const double usable =
      (static_cast<double>(g.total_bytes()) - static_cast<double>(dump_bytes)) *
      (1.0 - opts_.over_provision);
  logical_sectors_ =
      usable <= 0 ? 0 : static_cast<uint64_t>(usable) / opts_.sector_size;

  reverse_.assign(g.total_pages() * sectors_per_page_, kInvalidLpn);
  planes_.resize(g.total_planes());
  for (auto& plane : planes_) {
    plane.free_blocks.reserve(first_dump_block_);
    // LIFO: push in reverse so block 0 is allocated first (determinism).
    for (uint32_t b = first_dump_block_; b-- > 0;) {
      plane.free_blocks.push_back(b);
    }
  }
}

StatusOr<Ppn> Ftl::AllocatePage(SimTime now, uint32_t plane_idx, bool for_gc) {
  const FlashGeometry& g = flash_->geometry();
  PlaneAlloc& plane = planes_[plane_idx];

  if (!for_gc && plane.free_blocks.size() <= opts_.gc_free_block_threshold &&
      plane.active_block != ~0u) {
    DURASSD_RETURN_IF_ERROR(RunGc(now, plane_idx));
  }

  if (plane.active_block == ~0u || plane.next_page >= g.pages_per_block) {
    if (plane.free_blocks.empty()) {
      return Status::OutOfSpace("plane has no erased blocks");
    }
    plane.active_block = plane.free_blocks.back();
    plane.free_blocks.pop_back();
    plane.next_page = 0;
  }
  const Ppn ppn = g.MakePpn(plane_idx, plane.active_block, plane.next_page);
  plane.next_page++;
  return ppn;
}

void Ftl::KillSlot(uint64_t packed) {
  const Ppn ppn = PpnOf(packed);
  const uint32_t slot = SlotOf(packed);
  reverse_[ppn * sectors_per_page_ + slot] = kInvalidLpn;
  // The physical page dies when its last live sector dies.
  bool any_live = false;
  for (uint32_t s = 0; s < sectors_per_page_; ++s) {
    if (reverse_[ppn * sectors_per_page_ + s] != kInvalidLpn) {
      any_live = true;
      break;
    }
  }
  if (!any_live) flash_->MarkInvalid(ppn);
}

void Ftl::RecordDelta(Lpn lpn, SimTime start, SimTime done) {
  auto it = delta_.find(lpn);
  if (it == delta_.end()) {
    auto mit = map_.find(lpn);
    const uint64_t old_packed = mit == map_.end() ? kUnmapped : mit->second;
    delta_.emplace(lpn, DeltaRec{old_packed, start, done});
  } else {
    it->second.last_start = start;
    it->second.last_done = done;
  }
}

Status Ftl::ProgramSectors(SimTime now,
                           const std::vector<SectorWrite>& sectors,
                           SimTime* start, SimTime* done) {
  if (sectors.empty() || sectors.size() > sectors_per_page_) {
    return Status::InvalidArgument("bad sector count for one program");
  }
  for (const SectorWrite& s : sectors) {
    if (s.lpn >= logical_sectors_) {
      return Status::InvalidArgument("lpn beyond logical capacity");
    }
  }

  const uint32_t plane_idx = rr_plane_;
  rr_plane_ = (rr_plane_ + 1) % planes_.size();

  StatusOr<Ppn> ppn_or = AllocatePage(now, plane_idx, /*for_gc=*/false);
  if (!ppn_or.ok()) return ppn_or.status();
  const Ppn ppn = *ppn_or;

  // Assemble the physical page: live sectors first, rest stays erased.
  std::string page_data;
  const bool have_data = sectors[0].data != nullptr;
  if (have_data) {
    page_data.reserve(flash_->geometry().page_size);
    for (const SectorWrite& s : sectors) {
      assert(s.data != nullptr && s.data->size() == opts_.sector_size);
      page_data.append(*s.data);
    }
  }

  SimTime prog_done = 0;
  DURASSD_RETURN_IF_ERROR(
      flash_->ProgramPage(now, ppn, page_data, &prog_done));
  stats_.host_programs++;
  // ProgramPage's completion includes channel wait; its start is what the
  // torn-write model keys on. Recompute conservatively as now (transfer
  // begins immediately); the flash layer tracks the precise program window.
  const SimTime prog_start = now;

  for (uint32_t slot = 0; slot < sectors.size(); ++slot) {
    const Lpn lpn = sectors[slot].lpn;
    RecordDelta(lpn, prog_start, prog_done);
    auto it = map_.find(lpn);
    if (it != map_.end()) KillSlot(it->second);
    map_[lpn] = Pack(ppn, slot);
    reverse_[ppn * sectors_per_page_ + slot] = lpn;
  }

  *start = prog_start;
  *done = prog_done;
  return Status::OK();
}

SimTime Ftl::ReadSector(SimTime now, Lpn lpn, std::string* out, bool* torn) {
  if (torn != nullptr) *torn = false;
  auto it = map_.find(lpn);
  if (it == map_.end()) {
    if (out != nullptr) out->assign(opts_.sector_size, '\0');
    return now;  // Map lookup only; no media access.
  }
  const Ppn ppn = PpnOf(it->second);
  const uint32_t slot = SlotOf(it->second);

  std::string page;
  const SimTime done = flash_->ReadPage(now, ppn, out ? &page : nullptr);
  if (out != nullptr) {
    out->assign(page, static_cast<size_t>(slot) * opts_.sector_size,
                opts_.sector_size);
    out->resize(opts_.sector_size, '\0');
  }
  if (torn != nullptr) *torn = flash_->IsTorn(ppn);
  return done;
}

Status Ftl::RunGc(SimTime now, uint32_t plane_idx) {
  const FlashGeometry& g = flash_->geometry();
  PlaneAlloc& plane = planes_[plane_idx];
  stats_.gc_runs++;

  // Greedy victim: fewest valid pages among full (non-active, non-free,
  // non-dump) blocks; erase count breaks ties (mild wear leveling).
  uint32_t victim = ~0u;
  uint32_t best_valid = std::numeric_limits<uint32_t>::max();
  uint32_t best_wear = std::numeric_limits<uint32_t>::max();
  for (uint32_t b = 0; b < first_dump_block_; ++b) {
    if (b == plane.active_block) continue;
    if (std::find(plane.free_blocks.begin(), plane.free_blocks.end(), b) !=
        plane.free_blocks.end()) {
      continue;
    }
    const uint32_t valid = flash_->valid_pages_in_block(plane_idx, b);
    const uint32_t wear = flash_->erase_count(plane_idx, b);
    if (valid < best_valid || (valid == best_valid && wear < best_wear)) {
      victim = b;
      best_valid = valid;
      best_wear = wear;
    }
  }
  if (victim == ~0u) {
    return Status::OutOfSpace("gc found no victim block");
  }

  // Relocate live sectors, re-pairing them two per program.
  std::vector<std::pair<Lpn, std::string>> live;
  for (uint32_t p = 0; p < g.pages_per_block; ++p) {
    const Ppn ppn = g.MakePpn(plane_idx, victim, p);
    std::string page;
    bool read_done = false;
    for (uint32_t s = 0; s < sectors_per_page_; ++s) {
      const Lpn lpn = reverse_[ppn * sectors_per_page_ + s];
      if (lpn == kInvalidLpn) continue;
      if (!read_done) {
        flash_->ReadPage(now, ppn, &page);
        stats_.gc_reads++;
        read_done = true;
      }
      live.emplace_back(
          lpn, page.empty()
                   ? std::string()
                   : page.substr(static_cast<size_t>(s) * opts_.sector_size,
                                 opts_.sector_size));
    }
  }

  for (size_t i = 0; i < live.size(); i += sectors_per_page_) {
    StatusOr<Ppn> dst_or = AllocatePage(now, plane_idx, /*for_gc=*/true);
    if (!dst_or.ok()) return dst_or.status();
    const Ppn dst = *dst_or;

    std::string page_data;
    const size_t count = std::min<size_t>(sectors_per_page_, live.size() - i);
    for (size_t j = 0; j < count; ++j) {
      if (!live[i + j].second.empty()) {
        page_data.append(live[i + j].second);
      }
    }
    SimTime done = 0;
    DURASSD_RETURN_IF_ERROR(flash_->ProgramPage(now, dst, page_data, &done));
    stats_.gc_programs++;
    for (size_t j = 0; j < count; ++j) {
      const Lpn lpn = live[i + j].first;
      // Old slot dies; mapping follows the data. Delta is untouched: a GC
      // move does not change what the host wrote, only where it lives, and
      // rollback targets are handled below.
      auto it = map_.find(lpn);
      assert(it != map_.end());
      KillSlot(it->second);
      it->second = Pack(dst, static_cast<uint32_t>(j));
      reverse_[dst * sectors_per_page_ + j] = lpn;
    }
  }

  // Rollback targets living in the victim are about to be erased for good:
  // a real controller journals the mapping before erasing, so these entries
  // are effectively persisted now and can no longer roll back.
  for (auto it = delta_.begin(); it != delta_.end();) {
    bool drop = false;
    if (it->second.old_packed != kUnmapped) {
      const Ppn old_ppn = PpnOf(it->second.old_packed);
      if (g.PlaneOf(old_ppn) == plane_idx && g.BlockOf(old_ppn) == victim) {
        drop = true;
      }
    }
    if (drop) {
      stats_.forced_persists++;
      it = delta_.erase(it);
    } else {
      ++it;
    }
  }

  flash_->EraseBlock(now, plane_idx, victim);
  stats_.gc_erases++;
  plane.free_blocks.push_back(victim);
  return Status::OK();
}

void Ftl::PersistMapping() { delta_.clear(); }

std::vector<Lpn> Ftl::DirtyMappingLpns() const {
  std::vector<Lpn> out;
  out.reserve(delta_.size());
  for (const auto& [lpn, rec] : delta_) out.push_back(lpn);
  return out;
}

void Ftl::PowerCutRollback(SimTime t, bool expose_started_programs) {
  for (auto& [lpn, rec] : delta_) {
    if (expose_started_programs && rec.last_start <= t) {
      // The mapping journal had already recorded this entry when the
      // program was issued: the (possibly torn) new page stays visible.
      continue;
    }
    // Lost write: revert to the persisted mapping.
    auto it = map_.find(lpn);
    if (it != map_.end()) {
      KillSlot(it->second);
      if (rec.old_packed == kUnmapped) {
        map_.erase(it);
      } else {
        const Ppn old_ppn = PpnOf(rec.old_packed);
        const uint32_t old_slot = SlotOf(rec.old_packed);
        it->second = rec.old_packed;
        reverse_[old_ppn * sectors_per_page_ + old_slot] = lpn;
        if (flash_->page_state(old_ppn) == PageState::kInvalid) {
          flash_->RevalidatePage(old_ppn);
        }
      }
    }
  }
  delta_.clear();
}

Ppn Ftl::DumpAreaPpn(uint32_t index) const {
  const FlashGeometry& g = flash_->geometry();
  const uint32_t pages_per_plane_dump =
      opts_.dump_blocks_per_plane * g.pages_per_block;
  const uint32_t plane = index / pages_per_plane_dump;
  const uint32_t rem = index % pages_per_plane_dump;
  const uint32_t block = first_dump_block_ + rem / g.pages_per_block;
  const uint32_t page = rem % g.pages_per_block;
  return g.MakePpn(plane, block, page);
}

Status Ftl::ProgramDumpPage(uint32_t index, Slice data) {
  if (index >= dump_area_pages_) {
    return Status::OutOfSpace("dump area exhausted");
  }
  SimTime done = 0;
  // Timing is irrelevant on capacitor power; issue at the end of time seen.
  return flash_->ProgramPage(0, DumpAreaPpn(index), data, &done);
}

std::string Ftl::ReadDumpPage(uint32_t index) {
  std::string page;
  flash_->ReadPage(0, DumpAreaPpn(index), &page);
  return page;
}

SimTime Ftl::EraseDumpArea(SimTime now) {
  const FlashGeometry& g = flash_->geometry();
  SimTime done = now;
  for (uint32_t plane = 0; plane < g.total_planes(); ++plane) {
    for (uint32_t b = first_dump_block_; b < g.blocks_per_plane; ++b) {
      if (flash_->next_program_page(plane, b) == 0) {
        continue;  // Already clean.
      }
      done = std::max(done, flash_->EraseBlock(now, plane, b));
    }
  }
  return done;
}

}  // namespace durassd
