#include "ssd/device_factory.h"

#include "ssd/hdd_device.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {

const char* DeviceModelName(DeviceModel model) {
  switch (model) {
    case DeviceModel::kHdd:
      return "HDD";
    case DeviceModel::kSsdA:
      return "SSD-A";
    case DeviceModel::kSsdB:
      return "SSD-B";
    case DeviceModel::kDuraSsd:
      return "DuraSSD";
  }
  return "?";
}

std::unique_ptr<BlockDevice> MakeDevice(DeviceModel model, bool cache_on,
                                        bool store_data) {
  if (model == DeviceModel::kHdd) {
    return std::make_unique<HddDevice>(HddConfigForModel(cache_on, store_data));
  }
  return std::make_unique<SsdDevice>(
      SsdConfigForModel(model, cache_on, store_data));
}

HddDevice::Config HddConfigForModel(bool cache_on, bool store_data) {
  HddDevice::Config hc;
  hc.cache_enabled = cache_on;
  hc.store_data = store_data;
  return hc;
}

SsdConfig SsdConfigForModel(DeviceModel model, bool cache_on,
                            bool store_data) {
  SsdConfig c;
  switch (model) {
    case DeviceModel::kSsdA:
      c = SsdConfig::SsdA();
      break;
    case DeviceModel::kSsdB:
      c = SsdConfig::SsdB();
      break;
    default:
      c = SsdConfig::DuraSsd();
      break;
  }
  c.cache_enabled = cache_on;
  c.store_data = store_data;
  return c;
}

std::unique_ptr<BlockDevice> MakeDeviceForDurabilityMode(DurabilityMode mode,
                                                         bool store_data) {
  return MakeDevice(mode == DurabilityMode::kVolatileFlush
                        ? DeviceModel::kSsdA
                        : DeviceModel::kDuraSsd,
                    /*cache_on=*/true, store_data);
}

bool WriteBarriersForDurabilityMode(DurabilityMode mode) {
  return mode != DurabilityMode::kDurableOrderedNcq;
}

}  // namespace durassd
