#ifndef DURASSD_SSD_DEVICE_FACTORY_H_
#define DURASSD_SSD_DEVICE_FACTORY_H_

#include <memory>
#include <string>

#include "host/block_device.h"
#include "host/durability_mode.h"
#include "ssd/hdd_device.h"
#include "ssd/ssd_config.h"

namespace durassd {

/// The device line-up of the paper's Table 1.
enum class DeviceModel {
  kHdd,      ///< Seagate Cheetah 15K.6 class disk, 16MB track cache.
  kSsdA,     ///< Commodity SSD, 512MB volatile cache.
  kSsdB,     ///< Commodity SSD, 128MB volatile cache.
  kDuraSsd,  ///< The prototype: 512MB capacitor-backed durable cache.
};

const char* DeviceModelName(DeviceModel model);

/// Builds a device. `cache_on` maps to the "Storage Cache ON/OFF" rows;
/// `store_data` selects real-bytes vs timing-only mode.
std::unique_ptr<BlockDevice> MakeDevice(DeviceModel model, bool cache_on,
                                        bool store_data);

/// The SsdConfig preset behind `model` with the cache/data knobs applied.
/// This is the single place the Table-1 line-up maps to configs; array
/// builders use it to derive identical member (and spare) devices without
/// duplicating the preset mapping. `model` must not be kHdd.
SsdConfig SsdConfigForModel(DeviceModel model, bool cache_on, bool store_data);

/// The HDD preset (Table 1's Cheetah 15K.6 row) with the cache/data knobs
/// applied — the counterpart of SsdConfigForModel for kHdd, and the default
/// capacity tier of a TieredDevice.
HddDevice::Config HddConfigForModel(bool cache_on, bool store_data);

/// The deployment each durability mode contrasts (see DurabilityMode):
/// kVolatileFlush -> SSD-A (volatile cache; fsync issues FLUSH CACHE),
/// kDurableOrderedNcq / kBarrier -> DuraSSD (capacitor-backed cache; the
/// former relies on the ordered NCQ, the latter on BARRIER epochs).
std::unique_ptr<BlockDevice> MakeDeviceForDurabilityMode(DurabilityMode mode,
                                                         bool store_data);

/// Whether a host running in `mode` should mount with write barriers —
/// i.e. whether fsync must issue FLUSH CACHE for durability. Only the
/// paper's DuraSSD deployment (kDurableOrderedNcq) can drop them; barrier
/// mode keeps them so that fsync-for-durability boundaries (checkpoints,
/// clean shutdown) still reach media.
bool WriteBarriersForDurabilityMode(DurabilityMode mode);

}  // namespace durassd

#endif  // DURASSD_SSD_DEVICE_FACTORY_H_
