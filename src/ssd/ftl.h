#ifndef DURASSD_SSD_FTL_H_
#define DURASSD_SSD_FTL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "flash/flash_array.h"

namespace durassd {

/// Page-mapping flash translation layer with 4KB mapping granularity over
/// 8KB NAND pages (Sec. 3.1.2): two logical sectors share one physical page.
/// Owns logical->physical mapping, page allocation (striped round-robin
/// across planes for parallelism), greedy garbage collection, the reserved
/// dump area, and the mapping-persistence crash model:
///
///   - RAM mapping is authoritative during normal operation.
///   - A "delta" tracks entries modified since the last persistence point.
///   - On a volatile device, power loss rolls the delta back (lost writes),
///     optionally keeping entries whose NAND program had already begun —
///     which is how commodity SSDs expose torn writes (FAST'13).
///   - On DuraSSD the delta is dumped on capacitor power and merged at
///     reboot, so nothing rolls back.
class Ftl {
 public:
  struct Options {
    uint32_t sector_size = 4 * kKiB;
    double over_provision = 0.07;
    uint32_t gc_free_block_threshold = 2;
    uint32_t dump_blocks_per_plane = 2;
    // --- ECC / fault handling (only exercised when faults are injected) ---
    /// Raw bit errors per page the ECC corrects in one shot.
    uint32_t ecc_correctable_bits = 8;
    /// Re-reads attempted when the raw error count exceeds the ECC budget
    /// (real controllers retry with shifted read voltages).
    uint32_t read_retry_limit = 4;
    /// Fresh pages tried when a program reports failure before giving up.
    uint32_t program_retry_limit = 3;
    /// Pick the least-busy plane (plane busy_until + channel occupancy,
    /// via FlashArray::NextIdlePlane) for each host program instead of
    /// blind round-robin. false = legacy round-robin (A/B baseline).
    bool idle_aware_allocation = false;
    /// Owner's metrics registry; the FTL registers its own metrics under
    /// the "ftl." prefix. May be null (no metrics collected).
    MetricsRegistry* metrics = nullptr;
    /// Blocks per plane reserved as the sequential log region, carved out
    /// directly below the dump area. 0 = no log region (legacy layout,
    /// bit-identical allocation behavior).
    uint32_t log_blocks_per_plane = 0;
  };

  struct SectorWrite {
    Lpn lpn;
    const std::string* data;  ///< nullptr in timing-only mode.
  };

  struct Stats {
    uint64_t host_programs = 0;
    uint64_t gc_runs = 0;
    uint64_t gc_reads = 0;
    uint64_t gc_programs = 0;
    uint64_t gc_erases = 0;
    uint64_t forced_persists = 0;  ///< Delta entries force-persisted by GC.
    uint64_t ecc_corrected = 0;       ///< Raw bit errors corrected by ECC.
    uint64_t read_retries = 0;        ///< Re-reads past the ECC budget.
    uint64_t uncorrectable_reads = 0; ///< Reads lost despite retries.
    uint64_t program_retries = 0;     ///< Programs retried on a fresh page.
    uint64_t degraded_rejects = 0;    ///< Host programs rejected while
                                      ///< degraded.
    uint64_t log_appends = 0;         ///< Pages appended to the log region.
    uint64_t log_reclaims = 0;        ///< Log blocks reclaimed (live data
                                      ///< relocated + erased) on wrap.
  };

  Ftl(FlashArray* flash, Options options);

  Ftl(const Ftl&) = delete;
  Ftl& operator=(const Ftl&) = delete;

  uint32_t sector_size() const { return opts_.sector_size; }
  uint32_t sectors_per_page() const { return sectors_per_page_; }
  uint64_t logical_sectors() const { return logical_sectors_; }

  /// Programs 1..sectors_per_page() logical sectors into one NAND page
  /// (pairing two 4KB sectors per 8KB program when possible). Reports the
  /// program's start and completion times. Runs GC first if the target
  /// plane is low on free blocks.
  Status ProgramSectors(SimTime now, const std::vector<SectorWrite>& sectors,
                        SimTime* start, SimTime* done);

  /// Programs two pages with one multi-plane command on the two sibling
  /// planes of the least-busy chip (Sec. 2.3 chip-level interleaving): both
  /// transfers serialize on the channel, then both planes program
  /// concurrently. `a` and `b` each follow ProgramSectors' contract. On an
  /// injected program failure the failed page is transparently re-driven as
  /// a single-plane program; mapping updates happen only once every sector
  /// has landed, so a hard failure leaves the mapping untouched. `start` /
  /// `done` receive the union program window. Requires a geometry with at
  /// least two planes per chip.
  Status ProgramSectorsMultiPlane(SimTime now,
                                  const std::vector<SectorWrite>& a,
                                  const std::vector<SectorWrite>& b,
                                  SimTime* start, SimTime* done);

  /// Reads one logical sector. Unmapped sectors read as zeros with zero
  /// media cost beyond the firmware's map lookup. `done`, if non-null,
  /// receives the virtual completion time (including any ECC read-retries).
  /// `torn`, if non-null, reports whether the backing physical page was
  /// shorn by a power cut. Returns kCorruption when raw bit errors exceed
  /// the ECC budget after all retries; `out` then holds the corrupted bytes
  /// so the host's checksums can see the damage.
  Status ReadSector(SimTime now, Lpn lpn, std::string* out,
                    SimTime* done = nullptr, bool* torn = nullptr);

  bool IsMapped(Lpn lpn) const { return map_.count(lpn) != 0; }

  // --- Log region (log-structured destage, ROADMAP item 2) ---
  /// Total pages in the reserved log region (0 = no log region).
  uint64_t log_pages_total() const { return log_pages_total_; }
  /// Appends one physical page at the log head cursor, which advances
  /// strictly sequentially through the log region, striped one page per
  /// plane per row. Wrapping into a previously written block first
  /// relocates its still-live sectors into the main area and erases it
  /// (FIFO log cleaning). A failed program skips that page and tries the
  /// next one. Leaves the mapping untouched — the caller maps data pages
  /// with MapLogSector; header pages are never mapped.
  StatusOr<Ppn> AppendLogPage(SimTime now, Slice data, SimTime* start,
                              SimTime* done);
  /// Points `lpn` at (ppn, slot) of a freshly appended log data page:
  /// kills the superseded slot, updates the map, and records the delta
  /// exactly like ProgramSectors — so power-cut rollback treats a sector
  /// destaged through the log identically to one destaged in place.
  void MapLogSector(Lpn lpn, Ppn ppn, uint32_t slot, SimTime issue,
                    SimTime start, SimTime done);
  /// True iff `lpn` currently maps exactly to (ppn, slot). Recovery uses
  /// this to skip log-directory entries superseded by later writes,
  /// relocations, or rollback.
  bool IsMappedTo(Lpn lpn, Ppn ppn, uint32_t slot) const;
  /// Unmaps `lpn` iff it still points at (ppn, slot) — checksum-validated
  /// torn-segment truncation on recovery. Returns true when unmapped.
  bool UnmapIfPointsTo(Lpn lpn, Ppn ppn, uint32_t slot);
  /// Reads a raw physical page through the ECC model (log segment
  /// validation on recovery). Same contract as the internal checked read:
  /// kCorruption with the damaged bytes in `out` when uncorrectable.
  Status ReadPhysicalPage(SimTime now, Ppn ppn, std::string* out,
                          SimTime* done);

  // --- Mapping persistence / crash model ---
  size_t dirty_mapping_entries() const { return delta_.size(); }
  /// Marks everything persisted (called when a FLUSH CACHE completes, or
  /// after a successful durable-cache dump replay).
  void PersistMapping();
  /// Which unpersisted mapping entries survive a power cut at `t`.
  enum class PowerCutExposure {
    /// Every delta entry rolls back to its persisted value (lost writes).
    kNone,
    /// Entries whose program was *issued* by `t` keep the new mapping: the
    /// durable-cache model, where capacitor power runs every issued NAND
    /// operation to completion (Sec. 3.4.1).
    kIssued,
    /// Entries whose cell program had *started* by `t` keep the new
    /// (possibly torn) mapping: the commodity-SSD model that exposes torn
    /// writes (FAST'13). Programs issued but not yet started by `t` roll
    /// back, matching FlashArray::PowerCut returning those pages to kFree.
    kStarted,
  };
  /// Power cut at `t`: entries in the delta roll back to their persisted
  /// value except those `exposure` keeps.
  void PowerCutRollback(SimTime t, PowerCutExposure exposure);
  /// LPNs with unpersisted mapping entries (dump sizing on DuraSSD).
  std::vector<Lpn> DirtyMappingLpns() const;

  // --- Dump area (Sec. 3.4.1): reserved clean blocks, one dump page per
  // cached sector, always erased during normal operation. A dump block
  // whose erase fails is dropped from the sequence (grown bad block), so
  // the page count can shrink over the device's life. ---
  uint32_t dump_area_pages() const {
    return static_cast<uint32_t>(dump_ppns_.size());
  }
  Ppn DumpAreaPpn(uint32_t index) const;
  /// Programs `data` into the index-th dump page, bypassing the mapping.
  /// Used on capacitor power, so the caller ignores timing.
  Status ProgramDumpPage(uint32_t index, Slice data);
  /// Reads the index-th dump page through ECC. Returns InvalidArgument for
  /// an out-of-range index and kCorruption for an uncorrectable read (the
  /// corrupted bytes are still placed in `out` for the caller's checksums).
  Status ReadDumpPage(uint32_t index, std::string* out);
  /// Erases all dump blocks; returns completion time. Blocks whose erase
  /// fails become grown bad blocks and leave the dump sequence.
  SimTime EraseDumpArea(SimTime now);

  const Stats& stats() const { return stats_; }
  FlashArray* flash() { return flash_; }

  // --- Degraded (read-only) mode ---
  /// True once the FTL has run out of healthy blocks (spare exhaustion or a
  /// retirement relocation that could not complete). Sticky: the physical
  /// condition does not heal, so the flag survives power cycles. Host
  /// programs are rejected with kResourceExhausted; reads keep working.
  bool degraded() const { return degraded_; }
  const std::string& degraded_reason() const { return degraded_reason_; }

  /// Attaches (or detaches, with nullptr) an event tracer for GC events.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Free blocks currently available in the given plane (test hook).
  size_t free_blocks_in_plane(uint32_t plane) const {
    return planes_[plane].free_blocks.size();
  }

 private:
  static constexpr uint64_t kUnmapped = ~0ull;

  struct PlaneAlloc {
    std::vector<uint32_t> free_blocks;   ///< Erased blocks (LIFO).
    uint32_t active_block = ~0u;
    uint32_t next_page = 0;
  };
  struct DeltaRec {
    uint64_t old_packed;  ///< Persisted value (kUnmapped if none).
    SimTime last_issue;   ///< Issue time of the most recent program.
    SimTime last_start;   ///< True cell-program start (after channel wait).
    SimTime last_done;
  };

  static uint64_t Pack(Ppn ppn, uint32_t slot) { return ppn * 4 + slot; }
  static Ppn PpnOf(uint64_t packed) { return packed / 4; }
  static uint32_t SlotOf(uint64_t packed) {
    return static_cast<uint32_t>(packed % 4);
  }

  /// Returns the next erased physical page on the round-robin plane,
  /// running GC when the plane is short on free blocks. `for_gc` allocs
  /// skip the GC trigger (they consume the reserved headroom).
  StatusOr<Ppn> AllocatePage(SimTime now, uint32_t plane, bool for_gc);
  /// AllocatePage + ProgramPage with transparent retry: a program that
  /// reports failure closes the block, queues it for retirement, and tries
  /// again on a fresh page (up to program_retry_limit times).
  StatusOr<Ppn> AllocateAndProgram(SimTime now, uint32_t plane, bool for_gc,
                                   Slice data, SimTime* done,
                                   SimTime* start = nullptr);
  /// Plane chooser for host programs: idle-aware (least-busy plane with
  /// round-robin tie-break) or legacy blind round-robin per Options.
  /// `group` > 1 returns the first plane of an aligned group (multi-plane).
  uint32_t PickPlane(SimTime now, uint32_t group = 1);
  /// Validates one ProgramSectors batch (count, lpn range, data sizes) and
  /// rejects when degraded.
  Status ValidateSectors(const std::vector<SectorWrite>& sectors);
  /// Reads a full physical page through the ECC model: up to
  /// read_retry_limit re-reads while the raw error count exceeds
  /// ecc_correctable_bits, then kCorruption (with the bit flips
  /// materialized into `page`) if still over budget.
  Status ReadPageChecked(SimTime now, Ppn ppn, std::string* page,
                         SimTime* done);
  Status RunGc(SimTime now, uint32_t plane);
  /// Moves every live sector out of the block (shared by GC and block
  /// retirement), then force-persists delta entries whose rollback target
  /// lives inside it.
  Status RelocateLiveSectors(SimTime now, uint32_t plane, uint32_t block);
  void ForcePersistDeltaIn(uint32_t plane, uint32_t block);
  /// Marks a block for retirement after a program failure. Actual
  /// retirement (relocation + RetireBlock) happens in DrainRetirements so
  /// a failure during relocation cannot recurse.
  void QueueRetirement(uint32_t plane, uint32_t block);
  void DrainRetirements(SimTime now);
  bool IsRetirePending(uint32_t plane, uint32_t block) const;
  void KillSlot(uint64_t packed);
  void RecordDelta(Lpn lpn, SimTime issue, SimTime start, SimTime done);
  /// Flips the sticky degraded flag (idempotent) and emits the trace event
  /// and metrics counter for the transition.
  void EnterDegraded(SimTime now, uint32_t plane, std::string reason);
  bool IsDumpBlock(uint32_t block) const {
    return block >= first_dump_block_;
  }
  bool IsLogBlock(uint32_t block) const {
    return block >= first_log_block_ && block < first_dump_block_;
  }
  /// Makes a log block writable again before the wrapping head re-enters
  /// it: still-live sectors relocate into the main area (FIFO cleaning),
  /// then the block is erased. An erase failure grows a bad block the
  /// append cursor skips.
  Status PrepareLogBlock(SimTime now, uint32_t plane, uint32_t block);

  FlashArray* flash_;
  Options opts_;
  uint32_t sectors_per_page_;
  uint64_t logical_sectors_;
  uint32_t first_dump_block_;
  /// Log region: blocks [first_log_block_, first_dump_block_) of every
  /// plane. first_log_block_ == first_dump_block_ when no log region is
  /// reserved (legacy layout).
  uint32_t first_log_block_;
  /// Pages in the log region; 0 disables AppendLogPage.
  uint64_t log_pages_total_ = 0;
  /// Global append cursor (page index into the striped log layout: plane =
  /// idx % planes, then pages in block order within the plane). Wraps.
  uint64_t log_head_ = 0;
  /// Dump pages in program order; shrinks when a dump block goes bad.
  std::vector<Ppn> dump_ppns_;
  static uint64_t RetireKey(uint32_t plane, uint32_t block) {
    return (static_cast<uint64_t>(plane) << 32) | block;
  }

  /// Blocks awaiting retirement after a program failure. The vector is the
  /// ordered worklist; the set mirrors it for O(1) IsRetirePending (which
  /// runs once per program retry and per GC victim candidate).
  std::vector<std::pair<uint32_t, uint32_t>> retire_pending_;
  std::unordered_set<uint64_t> retire_pending_set_;

  std::unordered_map<Lpn, uint64_t> map_;
  /// Reverse map: which LPN lives in each (ppn, slot); kInvalidLpn = dead.
  /// Flat-indexed as ppn * sectors_per_page_ + slot.
  std::vector<Lpn> reverse_;
  std::unordered_map<Lpn, DeltaRec> delta_;
  std::vector<PlaneAlloc> planes_;
  uint32_t rr_plane_ = 0;
  Stats stats_;

  bool degraded_ = false;
  std::string degraded_reason_;

  Tracer* tracer_ = nullptr;
  /// Registered metrics (null when no registry was supplied).
  Histogram* h_program_ns_ = nullptr;
  Histogram* h_gc_relocation_ns_ = nullptr;
  MetricCounter* c_ecc_retries_ = nullptr;
  MetricCounter* c_gc_runs_ = nullptr;
  MetricCounter* c_degraded_entries_ = nullptr;
  /// Completion time / sector count of the latest RelocateLiveSectors,
  /// consumed by RunGc for the gc_relocation_ns sample.
  SimTime last_relocation_done_ = 0;
  uint64_t last_relocation_moved_ = 0;
};

}  // namespace durassd

#endif  // DURASSD_SSD_FTL_H_
