#include "ssd/ssd_device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace durassd {

namespace {
constexpr uint32_t kDumpMagic = 0xD0D0CAFE;
constexpr uint32_t kDumpEntryMagic = 0xD0D0BEEF;
constexpr uint32_t kLogSegmentMagic = 0xD0D01065;
constexpr SimTime kFlushEmptyOverhead = 100 * kMicrosecond;
constexpr SimTime kCleanBootTime = 1 * kMillisecond;
constexpr SimTime kVolatileRecoveryScan = 50 * kMillisecond;
}  // namespace

SsdConfig SsdDevice::SizeDumpArea(SsdConfig cfg) {
  if (!cfg.cache_enabled || cfg.destage_batch_pages <= 1 ||
      !cfg.durable_cache) {
    return cfg;  // Eager mode: the configured dump area is authoritative.
  }
  // Lazy destage widens the dump-eligible window: in the worst case every
  // write-buffer frame holds an acknowledged-but-unissued sector, and each
  // needs its own dump page (plus the header). Grow the reserved area to
  // cover that; the eager path never needed more than the in-flight window.
  const FlashGeometry& g = cfg.geometry;
  const uint64_t pages_per_dump_block =
      static_cast<uint64_t>(g.pages_per_block) * g.total_planes();
  const uint64_t needed_pages = static_cast<uint64_t>(cfg.write_buffer_sectors) + 2;
  const uint32_t needed_blocks = static_cast<uint32_t>(
      (needed_pages + pages_per_dump_block - 1) / pages_per_dump_block);
  cfg.dump_blocks_per_plane =
      std::max(cfg.dump_blocks_per_plane, needed_blocks);
  return cfg;
}

SsdDevice::SsdDevice(SsdConfig config)
    : cfg_(SizeDumpArea(std::move(config))),
      flash_(FlashArray::Options{cfg_.geometry, cfg_.store_data, cfg_.faults}),
      ftl_(&flash_, Ftl::Options{cfg_.sector_size, cfg_.over_provision,
                                 cfg_.gc_free_block_threshold,
                                 cfg_.dump_blocks_per_plane,
                                 cfg_.ecc_correctable_bits,
                                 cfg_.read_retry_limit,
                                 cfg_.program_retry_limit,
                                 cfg_.idle_aware_allocation,
                                 &metrics_,
                                 cfg_.resolved_log_blocks_per_plane()}),
      bus_(1),
      fw_(cfg_.fw_parallelism),
      ncq_(cfg_.ncq_depth),
      scheduler_(this,
                 DestageScheduler::Options{
                     cfg_.geometry.page_size / cfg_.sector_size,
                     cfg_.destage_batch_pages,
                     cfg_.multi_plane_program &&
                         cfg_.geometry.planes_per_chip >= 2}),
      h_ncq_wait_ns_(metrics_.GetHistogram("ssd.ncq_wait_ns")),
      h_bus_ns_(metrics_.GetHistogram("ssd.bus_ns")),
      h_fw_ns_(metrics_.GetHistogram("ssd.fw_ns")),
      h_frame_stall_ns_(metrics_.GetHistogram("ssd.frame_stall_ns")),
      h_destage_ns_(metrics_.GetHistogram("ssd.destage_ns")),
      h_flush_drain_ns_(metrics_.GetHistogram("ssd.flush_drain_ns")),
      c_degraded_rejects_(metrics_.Counter("ssd.degraded_rejects")),
      c_destage_absorbed_(metrics_.Counter("ssd.destage_absorbed")),
      c_barriers_(metrics_.Counter("ssd.barriers")),
      c_cache_read_sectors_(metrics_.Counter("ssd.cache_read_sectors")),
      c_cache_read_misses_(metrics_.Counter("ssd.cache_read_misses")),
      c_log_segments_(metrics_.Counter("ssd.log_segments")),
      h_epoch_size_(metrics_.GetHistogram("ssd.epoch_size")),
      h_qd_(metrics_.GetHistogram("ssd.qd")) {
  set_qd_histogram(h_qd_);
  set_queue_depth_limit(cfg_.host_queue_depth);
  log_segment_pages_ = cfg_.resolved_log_segment_pages();
}

BlockDevice::Result SsdDevice::Execute(SimTime t, const Command& cmd) {
  switch (cmd.op) {
    case Command::Op::kWrite:
      return DoWrite(t, cmd.lpn, cmd.data);
    case Command::Op::kRead:
      return DoRead(t, cmd.lpn, cmd.nsec, cmd.out);
    case Command::Op::kFlush:
      return DoFlush(t);
    case Command::Op::kBarrier:
      // Without barrier support (volatile cache / cache off) the only way
      // to honor the ordering request is the full flush semantics.
      return supports_barrier() ? DoBarrier(t) : DoFlush(t);
  }
  return {Status::InvalidArgument("unknown command op"), t};
}

bool SsdDevice::MaybeTripScheduledCut(SimTime now) {
  if (!cut_armed_ || now < scheduled_cut_) return false;
  cut_armed_ = false;
  stats_.scheduled_cuts_tripped++;
  PowerCut(scheduled_cut_);
  return true;
}

bool SsdDevice::CutBeforeCompletion(SimTime done) {
  if (!cut_armed_ || done <= scheduled_cut_) return false;
  cut_armed_ = false;
  stats_.scheduled_cuts_tripped++;
  PowerCut(scheduled_cut_);
  return true;
}

void SsdDevice::RollbackCommandEntries(Lpn lpn, uint32_t nsec, SimTime ack) {
  for (uint32_t i = 0; i < nsec; ++i) {
    auto it = cache_.find(lpn + i);
    if (it == cache_.end() || it->second.ack != ack) continue;
    CacheEntry& e = it->second;
    if (e.program_done != kNeverProgrammed) continue;  // Already destaged.
    if (has_pending_half_ && pending_half_lpn_ == lpn + i) {
      has_pending_half_ = false;
      pending_half_lpn_ = kInvalidLpn;
    }
    if (e.has_prev) {
      e.data = std::move(e.prev_data);
      e.ack = e.prev_ack;
      e.seq = e.prev_seq;
      e.epoch = e.prev_epoch;
      e.has_prev = false;
      e.program_issue = kNeverProgrammed;
      e.program_start = 0;
      e.program_done = kNeverProgrammed;
      // The restored version must reach NAND (again): re-queue it. If the
      // failed overwrite had been absorbed, the pending slot simply keeps
      // pointing at the now-restored bytes.
      if (UseScheduler()) scheduler_.Add(lpn + i, e.ack);
    } else {
      if (UseScheduler()) scheduler_.Remove(lpn + i);
      cache_.erase(it);
    }
  }
}

SimTime SsdDevice::BusTime(uint32_t nsec, bool is_write) const {
  const double rate =
      is_write ? cfg_.bus_write_bytes_per_ns : cfg_.bus_read_bytes_per_ns;
  const double bytes = static_cast<double>(nsec) * cfg_.sector_size;
  return static_cast<SimTime>(bytes / rate) + cfg_.bus_cmd_overhead;
}

SimTime SsdDevice::FwTime(uint32_t nsec, bool is_write) const {
  if (is_write) {
    return cfg_.fw_write_base + cfg_.fw_write_per_extra_sector * (nsec - 1);
  }
  return cfg_.fw_read_base + cfg_.fw_read_per_extra_sector * (nsec - 1);
}

SimTime SsdDevice::AcquireFrame(SimTime t) {
  while (!outstanding_.empty() && outstanding_.top() <= t) {
    outstanding_.pop();
  }
  // Frames are held by in-flight programs and, in lazy mode, by pending
  // scheduler sectors (absorbed rewrites re-use their frame and never
  // reach here).
  const size_t in_use =
      outstanding_.size() +
      (UseScheduler() ? scheduler_.pending_sectors() : 0);
  if (in_use >= cfg_.write_buffer_sectors) {
    // Frame pressure. Draining moves sectors from pending to outstanding —
    // the sum (and thus the pressure) is unchanged until a program_done
    // passes — so drain only while the media has a free slot: once one
    // page per plane is in flight the media is saturated and further
    // programs would only queue at the planes while forfeiting their
    // chance to absorb a rewrite. Only full pages drain — a partial tail
    // stays pending to pair with future writes. A drain failure leaves
    // sectors pending; the degraded checks on the command path surface it.
    const size_t media_slots = static_cast<size_t>(
        cfg_.geometry.total_planes() * ftl_.sectors_per_page());
    if (UseLogDestage()) {
      if (scheduler_.pending_sectors() >= SegmentSectors() &&
          outstanding_.size() < media_slots) {
        stats_.destage_batches++;
        if (tracer_) {
          tracer_->Record(t, TraceEventType::kDestageBatch,
                          scheduler_.pending_sectors(), 2);
        }
        (void)DrainLogSegments(t, /*include_partial=*/false);
        while (!outstanding_.empty() && outstanding_.top() <= t) {
          outstanding_.pop();
        }
      }
      if (outstanding_.empty() && !scheduler_.empty()) {
        // Nothing in flight to wait on: a short tail segment beats a stall.
        stats_.destage_batches++;
        if (tracer_) {
          tracer_->Record(t, TraceEventType::kDestageBatch,
                          scheduler_.pending_sectors(), 2);
        }
        (void)DrainLogSegments(t, /*include_partial=*/true);
        while (!outstanding_.empty() && outstanding_.top() <= t) {
          outstanding_.pop();
        }
      }
    } else {
      if (UseScheduler() && scheduler_.pending_full_pages() > 0 &&
          outstanding_.size() < media_slots) {
        stats_.destage_batches++;
        if (tracer_) {
          tracer_->Record(t, TraceEventType::kDestageBatch,
                          scheduler_.pending_sectors(), 2);
        }
        (void)scheduler_.DrainRound(t, cfg_.geometry.total_planes());
        while (!outstanding_.empty() && outstanding_.top() <= t) {
          outstanding_.pop();
        }
      }
      if (outstanding_.empty() && UseScheduler() && !scheduler_.empty()) {
        // Nothing in flight to wait on and the buffer is all pending partial
        // pages (tiny buffers): force them out, half-filled or not.
        stats_.destage_batches++;
        if (tracer_) {
          tracer_->Record(t, TraceEventType::kDestageBatch,
                          scheduler_.pending_sectors(), 2);
        }
        (void)scheduler_.DrainAll(t);
        while (!outstanding_.empty() && outstanding_.top() <= t) {
          outstanding_.pop();
        }
      }
    }
    if (!outstanding_.empty()) {
      const SimTime freed = outstanding_.top();
      outstanding_.pop();
      stats_.write_stalls++;
      stats_.write_stall_time += freed - t;
      h_frame_stall_ns_->Record(freed - t);
      return freed;
    }
  }
  return t;
}

void SsdDevice::InsertCacheEntry(Lpn lpn, Slice sector, SimTime ack,
                                 uint64_t seq, uint64_t epoch) {
  const auto [it, inserted] = cache_.try_emplace(lpn);
  CacheEntry& e = it->second;
  if (!inserted) {
    // Coalesce: keep the displaced acknowledged version for the incomplete-
    // overwrite rollback corner (Sec. 3.2's "old copies are discarded",
    // with one-deep history for atomicity of the in-flight command).
    e.has_prev = true;
    e.prev_data = std::move(e.data);
    e.prev_ack = e.ack;
    e.prev_seq = e.seq;
    e.prev_epoch = e.epoch;
  }
  if (cfg_.store_data) {
    e.data.assign(sector.data(), sector.size());
  }
  e.ack = ack;
  e.seq = seq;
  e.epoch = epoch;
  e.program_issue = kNeverProgrammed;
  e.program_start = 0;
  e.program_done = kNeverProgrammed;
  // A resident entry keeps its FIFO slot: pushing again would bloat the
  // FIFO with one stale duplicate per hot-sector rewrite.
  if (inserted) cache_fifo_.push_back(lpn);
  EvictCleanIfNeeded();
}

void SsdDevice::EvictCleanIfNeeded() {
  while (cache_.size() > cfg_.cache_capacity_sectors &&
         !cache_fifo_.empty()) {
    const Lpn victim = cache_fifo_.front();
    cache_fifo_.pop_front();
    auto it = cache_.find(victim);
    if (it == cache_.end()) continue;                 // Stale FIFO entry.
    if (victim == pending_half_lpn_ && has_pending_half_) continue;
    if (it->second.program_done == kNeverProgrammed ||
        it->second.program_done > max_time_seen_) {
      // Still dirty in flight; re-queue and stop (frames bound this).
      cache_fifo_.push_back(victim);
      break;
    }
    cache_.erase(it);
  }
}

void SsdDevice::FinishDestage(const std::vector<Lpn>& group, SimTime issue,
                              SimTime start, SimTime done) {
  for (Lpn lpn : group) {
    CacheEntry& e = cache_[lpn];
    e.program_issue = issue;
    e.program_start = start;
    e.program_done = done;
    outstanding_.push(done);
  }
}

Status SsdDevice::DestageGroup(SimTime t, const std::vector<Lpn>& group) {
  std::vector<Ftl::SectorWrite> writes;
  writes.reserve(group.size());
  for (Lpn lpn : group) {
    auto it = cache_.find(lpn);
    assert(it != cache_.end());
    writes.push_back(
        {lpn, cfg_.store_data ? &it->second.data : nullptr});
  }
  SimTime start = 0;
  SimTime done = 0;
  DURASSD_RETURN_IF_ERROR(ftl_.ProgramSectors(t, writes, &start, &done));
  h_destage_ns_->Record(done - t);
  if (tracer_) {
    tracer_->Record(done, TraceEventType::kDestageDone, group[0], group.size());
  }
  FinishDestage(group, t, start, done);
  return Status::OK();
}

SimTime SsdDevice::ClampToAcks(SimTime t, const std::vector<Lpn>& group) const {
  // A sector's NAND program may never be issued before its command was
  // acknowledged: the eager path issued exactly at the ack, and the crash
  // semantics lean on issue >= ack (a kept mapping after the capacitor
  // quiesce implies the command was acked before the cut, so a partially
  // issued command can never read back torn).
  for (Lpn lpn : group) {
    auto it = cache_.find(lpn);
    if (it != cache_.end()) t = std::max(t, it->second.ack);
  }
  return t;
}

Status SsdDevice::DestagePage(SimTime t, const std::vector<Lpn>& group) {
  return DestageGroup(ClampToAcks(t, group), group);
}

Status SsdDevice::DestagePagePair(SimTime t, const std::vector<Lpn>& a,
                                  const std::vector<Lpn>& b) {
  t = std::max(ClampToAcks(t, a), ClampToAcks(t, b));
  std::vector<Ftl::SectorWrite> wa, wb;
  wa.reserve(a.size());
  wb.reserve(b.size());
  for (Lpn lpn : a) {
    auto it = cache_.find(lpn);
    assert(it != cache_.end());
    wa.push_back({lpn, cfg_.store_data ? &it->second.data : nullptr});
  }
  for (Lpn lpn : b) {
    auto it = cache_.find(lpn);
    assert(it != cache_.end());
    wb.push_back({lpn, cfg_.store_data ? &it->second.data : nullptr});
  }
  SimTime start = 0;
  SimTime done = 0;
  DURASSD_RETURN_IF_ERROR(
      ftl_.ProgramSectorsMultiPlane(t, wa, wb, &start, &done));
  h_destage_ns_->Record(done - t);
  if (tracer_) {
    tracer_->Record(done, TraceEventType::kDestageDone, a[0],
                    a.size() + b.size());
  }
  FinishDestage(a, t, start, done);
  FinishDestage(b, t, start, done);
  return Status::OK();
}

void SsdDevice::MaybeIdleDrain(SimTime now) {
  if (!UseScheduler() || scheduler_.empty()) return;
  const SimTime deadline = scheduler_.last_add_time() + cfg_.destage_idle_ns;
  if (now < deadline) return;
  // Log mode keeps sub-segment tails coalescing in the durable cache: they
  // are already ack-durable via the capacitor, and draining a short segment
  // wastes a header page and fragments the log region.
  if (UseLogDestage() && scheduler_.pending_sectors() < SegmentSectors()) {
    return;
  }
  // The device used its own idle time: the drain is issued at the idle
  // deadline, which is causally safe (every pending byte was cached by
  // then) and models destage having happened before this command arrived.
  stats_.destage_batches++;
  if (tracer_) {
    tracer_->Record(deadline, TraceEventType::kDestageBatch,
                    scheduler_.pending_sectors(), 1);
  }
  if (UseLogDestage()) {
    (void)DrainLogSegments(deadline, /*include_partial=*/false);
  } else {
    (void)scheduler_.DrainAll(deadline);
  }
}

BlockDevice::Result SsdDevice::DoWrite(SimTime now, Lpn lpn, Slice data) {
  if (MaybeTripScheduledCut(now)) return {Status::DeviceOffline(), now};
  if (!powered_) return {Status::DeviceOffline(), now};
  if (ftl_.degraded()) {
    // Sticky read-only mode: refuse before touching the cache so nothing
    // from this command can be dumped or replayed later.
    stats_.degraded_write_rejects++;
    ++*c_degraded_rejects_;
    return {Status::ResourceExhausted("device is read-only: " +
                                      ftl_.degraded_reason()),
            now};
  }
  if (data.empty() || data.size() % cfg_.sector_size != 0) {
    return {Status::InvalidArgument("write size not sector-aligned"), now};
  }
  const uint32_t nsec = static_cast<uint32_t>(data.size() / cfg_.sector_size);
  if (lpn + nsec > num_sectors()) {
    return {Status::InvalidArgument("write beyond device capacity"), now};
  }
  max_time_seen_ = std::max(max_time_seen_, now);
  MaybeIdleDrain(now);
  if (tracer_) tracer_->Record(now, TraceEventType::kCmdStart, lpn, nsec);

  const SimTime est = BusTime(nsec, true) + FwTime(nsec, true);
  const ResourceTimeline::Grant slot = ncq_.Acquire(now, est);
  const ResourceTimeline::Grant bus =
      bus_.Acquire(slot.start, BusTime(nsec, true));
  const ResourceTimeline::Grant fw = fw_.Acquire(bus.done, FwTime(nsec, true));
  h_ncq_wait_ns_->Record(slot.start - now);
  h_bus_ns_->Record(bus.done - bus.start);
  h_fw_ns_->Record(fw.done - fw.start);

  if (!cfg_.cache_enabled) {
    // Write-through: program synchronously and persist the mapping entry
    // before acknowledging — the path on which a power cut exposes a torn
    // page to the host.
    SimTime last_done = fw.done;
    std::vector<Ftl::SectorWrite> group;
    std::vector<std::string> sectors(nsec);
    for (uint32_t i = 0; i < nsec; ++i) {
      if (cfg_.store_data) {
        sectors[i].assign(data.data() + static_cast<size_t>(i) * cfg_.sector_size,
                          cfg_.sector_size);
      }
      group.push_back({lpn + i, cfg_.store_data ? &sectors[i] : nullptr});
      if (group.size() == ftl_.sectors_per_page() || i + 1 == nsec) {
        SimTime start = 0;
        SimTime done = 0;
        Status s = ftl_.ProgramSectors(fw.done, group, &start, &done);
        if (!s.ok()) return {s, now};
        last_done = std::max(last_done, done);
        group.clear();
      }
    }
    const SimTime ack =
        last_done + MappingPersistCost(ftl_.dirty_mapping_entries());
    if (CutBeforeCompletion(ack)) return {Status::DeviceOffline(), now};
    ftl_.PersistMapping();
    max_time_seen_ = std::max(max_time_seen_, ack);
    // Counted here, not at entry: a failed program above must not inflate
    // host_written_sectors (it would understate WriteAmplification()).
    stats_.host_writes++;
    stats_.host_written_sectors += nsec;
    if (tracer_) tracer_->Record(ack, TraceEventType::kCmdAck, lpn, nsec);
    return {Status::OK(), ack};
  }

  // Cached path: acknowledge once all sectors are in the durable (or
  // volatile) cache. In legacy eager mode destage is issued synchronously
  // at acknowledgement; in lazy mode sectors join the destage scheduler
  // and NAND programs happen in batches across all planes.
  SimTime t = fw.done;
  if (UseScheduler()) {
    // Overwrite absorption: a sector whose destage is still unissued keeps
    // its frame — only genuinely new dirty sectors acquire one.
    for (uint32_t i = 0; i < nsec; ++i) {
      if (!scheduler_.IsPending(lpn + i)) t = AcquireFrame(t);
    }
  } else {
    for (uint32_t i = 0; i < nsec; ++i) t = AcquireFrame(t);
  }
  SimTime ack = t;
  if (ordered_writes() && ack < last_ordered_ack_) {
    // Ordered NCQ (Sec. 3.3): the firmware acknowledges writes in
    // submission order, so a small write overtaking a large one in the
    // pipeline still acks after it. Destage inherits the clamped time,
    // which is what makes a power cut lose only a suffix of the stream.
    ack = last_ordered_ack_;
    stats_.ordered_ack_clamps++;
  }
  if (cur_epoch_ > 0 && ack < epoch_floor_ack_) {
    // Barrier epochs: no write of epoch N+1 may acknowledge before every
    // write of epoch N. Because durable-cache survival at a power cut is
    // exactly ack <= cut, and ClampToAcks keeps program issue >= ack,
    // this single clamp yields both guarantees the barrier contract
    // needs: epoch-prefix recovery, and no epoch-N+1 program before
    // epoch N is durably framed.
    ack = epoch_floor_ack_;
    stats_.epoch_ack_clamps++;
  }
  const uint64_t seq = ++write_seq_;

  for (uint32_t i = 0; i < nsec; ++i) {
    InsertCacheEntry(lpn + i,
                     Slice(data.data() + static_cast<size_t>(i) * cfg_.sector_size,
                           cfg_.sector_size),
                     ack, seq, cur_epoch_);
  }

  if (UseScheduler()) {
    for (uint32_t i = 0; i < nsec; ++i) {
      if (!scheduler_.Add(lpn + i, ack)) {
        // Rewrite of a sector whose destage had not been issued: the batch
        // was updated in place, saving one NAND program.
        stats_.destage_absorbed++;
        ++*c_destage_absorbed_;
      }
    }
    if (UseLogDestage()) {
      // Log-structured destage has exactly one trigger here: a full
      // segment's worth of pending sectors. No idle-media opportunism —
      // issuing sub-segment batches would fragment the log and forfeit
      // the sequential-program win the mode exists for.
      while (scheduler_.pending_sectors() >= SegmentSectors()) {
        stats_.destage_batches++;
        if (tracer_) {
          tracer_->Record(ack, TraceEventType::kDestageBatch,
                          scheduler_.pending_sectors(), 0);
        }
        Status s = DrainLogSegments(ack, /*include_partial=*/false);
        if (!s.ok()) {
          RollbackCommandEntries(lpn, nsec, ack);
          return {s, now};
        }
      }
      if (ftl_.dirty_mapping_entries() > cfg_.mapping_autopersist_threshold) {
        ftl_.PersistMapping();
      }
      if (CutBeforeCompletion(ack)) return {Status::DeviceOffline(), now};
      if (ordered_writes()) last_ordered_ack_ = ack;
      epoch_max_ack_ = std::max(epoch_max_ack_, ack);
      epoch_writes_++;
      max_time_seen_ = std::max(max_time_seen_, ack);
      stats_.host_writes++;
      stats_.host_written_sectors += nsec;
      if (tracer_) tracer_->Record(ack, TraceEventType::kCmdAck, lpn, nsec);
      return {Status::OK(), ack};
    }
    const bool batch_ready =
        scheduler_.pending_full_pages() >= cfg_.destage_batch_pages;
    // Idle-media opportunism: while fewer than one page per plane is in
    // flight the media has spare slots, so lazily holding sectors back
    // only lengthens frame residency — drain a round now. Once the media
    // saturates (outstanding covers every plane) this stops firing and
    // pending sectors accumulate to absorb rewrites instead.
    while (!outstanding_.empty() && outstanding_.top() <= ack) {
      outstanding_.pop();
    }
    const bool media_idle =
        outstanding_.size() < static_cast<size_t>(cfg_.geometry.total_planes() *
                                                  ftl_.sectors_per_page()) &&
        scheduler_.pending_full_pages() > 0;
    if (batch_ready || media_idle) {
      stats_.destage_batches++;
      if (tracer_) {
        tracer_->Record(ack, TraceEventType::kDestageBatch,
                        scheduler_.pending_sectors(), batch_ready ? 0 : 1);
      }
      Status s = batch_ready
                     ? scheduler_.DrainRound(ack)
                     : scheduler_.DrainRound(ack, cfg_.geometry.total_planes());
      if (!s.ok()) {
        // The command is rejected as a whole: un-insert its cache entries so
        // a later power cut cannot dump (and replay) data the host was told
        // failed.
        RollbackCommandEntries(lpn, nsec, ack);
        return {s, now};
      }
    }
  } else {
    std::vector<Lpn> group;
    for (uint32_t i = 0; i < nsec; ++i) {
      const Lpn cur = lpn + i;
      if (has_pending_half_ && pending_half_lpn_ == cur) {
        // Rewriting the pending half: it stays pending with fresh data.
        continue;
      }
      group.push_back(cur);
      if (group.size() == ftl_.sectors_per_page()) {
        Status s = DestageGroup(ack, group);
        if (!s.ok()) {
          // The command is rejected as a whole: un-insert its cache entries
          // so a later power cut cannot dump (and replay) data the host was
          // told failed.
          RollbackCommandEntries(lpn, nsec, ack);
          return {s, now};
        }
        group.clear();
      }
    }
    if (!group.empty()) {
      assert(group.size() == 1);
      if (has_pending_half_ && cache_.count(pending_half_lpn_) != 0 &&
          pending_half_lpn_ != group[0]) {
        group.push_back(pending_half_lpn_);
        has_pending_half_ = false;
        pending_half_lpn_ = kInvalidLpn;
        Status s = DestageGroup(ack, group);
        if (!s.ok()) {
          RollbackCommandEntries(lpn, nsec, ack);
          return {s, now};
        }
      } else if (ftl_.sectors_per_page() > 1) {
        has_pending_half_ = true;
        pending_half_lpn_ = group[0];
      } else {
        Status s = DestageGroup(ack, group);
        if (!s.ok()) {
          RollbackCommandEntries(lpn, nsec, ack);
          return {s, now};
        }
      }
    }
  }

  // Firmware-internal mapping checkpoint (invisible to the host).
  if (ftl_.dirty_mapping_entries() > cfg_.mapping_autopersist_threshold) {
    ftl_.PersistMapping();
  }

  if (CutBeforeCompletion(ack)) return {Status::DeviceOffline(), now};
  if (ordered_writes()) last_ordered_ack_ = ack;
  // Epoch bookkeeping is unconditional (pure state, no timing effect) so
  // the first BARRIER correctly seals everything written since boot.
  epoch_max_ack_ = std::max(epoch_max_ack_, ack);
  epoch_writes_++;
  max_time_seen_ = std::max(max_time_seen_, ack);
  stats_.host_writes++;
  stats_.host_written_sectors += nsec;
  if (tracer_) tracer_->Record(ack, TraceEventType::kCmdAck, lpn, nsec);
  return {Status::OK(), ack};
}

BlockDevice::Result SsdDevice::DoRead(SimTime now, Lpn lpn, uint32_t nsec,
                                      std::string* out) {
  if (MaybeTripScheduledCut(now)) return {Status::DeviceOffline(), now};
  if (!powered_) return {Status::DeviceOffline(), now};
  if (nsec == 0 || lpn + nsec > num_sectors()) {
    return {Status::InvalidArgument("read beyond device capacity"), now};
  }
  max_time_seen_ = std::max(max_time_seen_, now);
  MaybeIdleDrain(now);
  stats_.host_reads++;
  stats_.host_read_sectors += nsec;
  if (tracer_) tracer_->Record(now, TraceEventType::kReadStart, lpn, nsec);

  // FLUSH CACHE is a non-queued command: reads arriving while one is being
  // processed wait for it (writes still land in the cache). This is the
  // read-latency-variability mechanism of Sec. 1/2 — a read blocked behind
  // a flush costs milliseconds instead of tens of microseconds.
  for (auto it = flush_windows_.rbegin(); it != flush_windows_.rend(); ++it) {
    if (now >= it->first && now < it->second) {
      now = it->second;
      stats_.reads_stalled_by_flush++;
      break;
    }
    if (now >= it->second) break;  // Windows are ordered; no older match.
  }

  const SimTime est = FwTime(nsec, false) + BusTime(nsec, false);
  const ResourceTimeline::Grant slot = ncq_.Acquire(now, est);
  const ResourceTimeline::Grant fw =
      fw_.Acquire(slot.start, FwTime(nsec, false));
  h_ncq_wait_ns_->Record(slot.start - now);
  h_fw_ns_->Record(fw.done - fw.start);

  if (out != nullptr) {
    out->clear();
    out->reserve(static_cast<size_t>(nsec) * cfg_.sector_size);
  }
  SimTime media_done = fw.done;
  Status read_status = Status::OK();
  uint32_t hit_sectors = 0;
  for (uint32_t i = 0; i < nsec; ++i) {
    const Lpn cur = lpn + i;
    auto it = cache_.find(cur);
    // A cache entry serves the read only when it can actually supply the
    // bytes: always in timing-only runs (out == nullptr), and in data runs
    // only when the frame holds a payload. A timing-only write followed by
    // a data read must fall through to the media — returning zeros for a
    // mapped sector would corrupt the host (the original read-path bug).
    const bool hit = it != cache_.end() &&
                     (out == nullptr || !it->second.data.empty());
    if (hit) {
      stats_.cache_read_hits++;
      ++*c_cache_read_sectors_;
      hit_sectors++;
      if (out != nullptr) out->append(it->second.data);
      continue;
    }
    stats_.cache_read_misses++;
    ++*c_cache_read_misses_;
    std::string sector;
    SimTime done = fw.done;
    const Status rs =
        ftl_.ReadSector(fw.done, cur, out != nullptr ? &sector : nullptr,
                        &done);
    media_done = std::max(media_done, done);
    if (out != nullptr) out->append(sector);
    if (!rs.ok() && read_status.ok()) read_status = rs;
  }
  if (hit_sectors == nsec) {
    stats_.cache_full_hits++;
  } else if (hit_sectors > 0) {
    stats_.cache_partial_hits++;
  }

  const ResourceTimeline::Grant bus =
      bus_.Acquire(media_done, BusTime(nsec, false));
  h_bus_ns_->Record(bus.done - bus.start);
  if (CutBeforeCompletion(bus.done)) return {Status::DeviceOffline(), now};
  max_time_seen_ = std::max(max_time_seen_, bus.done);
  if (tracer_) tracer_->Record(bus.done, TraceEventType::kReadDone, lpn, nsec);
  // An uncorrectable sector is still transferred (with its damage) so the
  // host's checksums can diagnose it, but the command reports the error.
  return {read_status, bus.done};
}

SimTime SsdDevice::MappingPersistCost(size_t entries) const {
  if (entries == 0) return 0;
  const size_t pages =
      (entries + cfg_.mapping_entries_per_page - 1) /
      cfg_.mapping_entries_per_page;
  return static_cast<SimTime>(pages) * cfg_.geometry.program_latency;
}

BlockDevice::Result SsdDevice::DoFlush(SimTime now) {
  if (MaybeTripScheduledCut(now)) return {Status::DeviceOffline(), now};
  if (!powered_) return {Status::DeviceOffline(), now};
  max_time_seen_ = std::max(max_time_seen_, now);
  stats_.flushes++;

  if (!cfg_.cache_enabled) {
    // Write-through device: nothing cached, mapping persisted per write.
    const SimTime done = now + cfg_.bus_cmd_overhead + kFlushEmptyOverhead;
    if (CutBeforeCompletion(done)) return {Status::DeviceOffline(), now};
    return {Status::OK(), done};
  }

  if (cfg_.durable_cache &&
      cfg_.flush_mode == SsdConfig::FlushMode::kOrderedNoDrain) {
    // Sec. 3.3's alternative semantics: every acknowledged write is already
    // durable, so the flush only asserts ordering. All commands that
    // arrived before it are acknowledged by construction (synchronous
    // acks), so the command completes at queue-processing cost.
    const SimTime done = now + cfg_.bus_cmd_overhead + 25 * kMicrosecond;
    if (CutBeforeCompletion(done)) return {Status::DeviceOffline(), now};
    return {Status::OK(), done};
  }

  // Log-structured destage skips the FLUSH drain on purpose: the mode
  // requires the durable cache, so every acknowledged pending sector is
  // already covered by the capacitor dump, and forcing a partial segment
  // out here would fragment the log for zero durability gain.
  if (UseScheduler() && !UseLogDestage() && !scheduler_.empty()) {
    // FLUSH CACHE drains the write cache: everything pending is issued
    // before the drain wait below, partial page included.
    stats_.destage_batches++;
    if (tracer_) {
      tracer_->Record(now, TraceEventType::kDestageBatch,
                      scheduler_.pending_sectors(), 3);
    }
    Status s = scheduler_.DrainAll(now);
    if (!s.ok()) return {s, now};
  }
  if (has_pending_half_ && cache_.count(pending_half_lpn_) != 0) {
    std::vector<Lpn> group{pending_half_lpn_};
    has_pending_half_ = false;
    pending_half_lpn_ = kInvalidLpn;
    Status s = DestageGroup(now, group);
    if (!s.ok()) return {s, now};
  }
  has_pending_half_ = false;

  // FLUSH CACHE commands are serialized by the firmware: a flush arriving
  // while another is in progress queues behind it. A flush arriving before
  // an already-queued flush has *started* piggybacks on it — every write
  // acknowledged before that start time is covered by it. This is where
  // group commit materializes at the device level.
  if (last_flush_start_ >= now) {
    if (CutBeforeCompletion(last_flush_done_)) {
      return {Status::DeviceOffline(), now};
    }
    return {Status::OK(), last_flush_done_};
  }
  const SimTime start = std::max(now, last_flush_done_);

  SimTime drain = start;
  const bool had_work =
      !outstanding_.empty() || ftl_.dirty_mapping_entries() > 0;
  const uint64_t outstanding_destages = outstanding_.size();
  if (tracer_) {
    tracer_->Record(start, TraceEventType::kFlushStart, outstanding_destages,
                    ftl_.dirty_mapping_entries());
  }
  while (!outstanding_.empty()) {
    drain = std::max(drain, outstanding_.top());
    outstanding_.pop();
  }
  h_flush_drain_ns_->Record(drain - start);
  const SimTime persist = MappingPersistCost(ftl_.dirty_mapping_entries());
  ftl_.PersistMapping();

  const SimTime done =
      drain + persist +
      (had_work ? cfg_.flush_fixed_overhead : kFlushEmptyOverhead);
  if (tracer_) {
    tracer_->Record(done, TraceEventType::kFlushDone,
                    static_cast<uint64_t>(done - start), outstanding_destages);
  }
  last_flush_start_ = start;
  last_flush_done_ = done;
  flush_windows_.emplace_back(start, done);
  if (flush_windows_.size() > 64) flush_windows_.pop_front();
  // After the window bookkeeping on purpose: if the armed cut lands inside
  // this flush, PowerCut must see the flush as in progress (torn-write
  // exposure on volatile devices).
  if (CutBeforeCompletion(done)) return {Status::DeviceOffline(), now};
  max_time_seen_ = std::max(max_time_seen_, done);
  return {Status::OK(), done};
}

BlockDevice::Result SsdDevice::DoBarrier(SimTime now) {
  if (MaybeTripScheduledCut(now)) return {Status::DeviceOffline(), now};
  if (!powered_) return {Status::DeviceOffline(), now};
  max_time_seen_ = std::max(max_time_seen_, now);

  // A BARRIER is an ordering token, not I/O: the firmware snapshots the ack
  // floor of everything received so far and tags later writes with the next
  // epoch. It does not drain, does not touch NAND, and deliberately does
  // not acquire the bus/fw/NCQ pipelines — command processing cost only.
  // (Synchronous acks mean every prior write of this epoch is already
  // acknowledged — i.e. durably framed in the capacitor-backed cache — so
  // sealing is pure bookkeeping.)
  const SimTime done = now + cfg_.bus_cmd_overhead + 2 * kMicrosecond;
  if (CutBeforeCompletion(done)) return {Status::DeviceOffline(), now};

  epoch_floor_ack_ = std::max(epoch_floor_ack_, epoch_max_ack_);
  stats_.barriers++;
  ++*c_barriers_;
  h_epoch_size_->Record(static_cast<int64_t>(epoch_writes_));
  if (tracer_) {
    tracer_->Record(done, TraceEventType::kBarrier, cur_epoch_, epoch_writes_);
  }
  cur_epoch_++;
  epoch_writes_ = 0;
  max_time_seen_ = std::max(max_time_seen_, done);
  return {Status::OK(), done};
}

void SsdDevice::DumpOnCapacitor(SimTime t) {
  // Everything acknowledged but not yet safely on NAND must reach the dump
  // area on capacitor power (Sec. 3.4.1), together with the dirty mapping
  // entries. Completed programs survive via the dumped mapping delta.
  std::vector<std::pair<Lpn, const std::string*>> to_dump;
  for (const auto& [lpn, e] : cache_) {
    if (e.ack > t || e.program_done <= t) continue;
    if (UseScheduler() && e.program_issue <= t) {
      // The program was issued by the cut: the capacitor quiesce runs it to
      // completion and the mapping survives the rollback (kIssued), so the
      // sector needs no dump page. Skipping these keeps the dump within the
      // reserved area even though lazy destage leaves far more entries with
      // an open [ack, program_done) window than the eager path ever did.
      continue;
    }
    to_dump.emplace_back(lpn, &e.data);
  }
  const uint64_t dump_bytes =
      (static_cast<uint64_t>(to_dump.size()) + 1) * cfg_.geometry.page_size +
      ftl_.dirty_mapping_entries() * 12;
  if (dump_bytes > cfg_.capacitor_budget_bytes ||
      to_dump.size() + 1 > ftl_.dump_area_pages()) {
    stats_.capacitor_overruns++;
    // A real device would brown out mid-dump; we keep going so tests can
    // detect the overrun via stats instead of undefined behavior.
  }

  if (!cfg_.store_data) {
    dump_lpns_timing_only_.clear();
    for (const auto& [lpn, data] : to_dump) {
      dump_lpns_timing_only_.push_back(lpn);
    }
    stats_.dumped_pages += to_dump.size();
    dump_pages_used_ = static_cast<uint32_t>(to_dump.size());
    if (tracer_) {
      tracer_->Record(t, TraceEventType::kDump, to_dump.size(),
                      stats_.capacitor_overruns);
    }
    return;
  }

  // Header page, then one dump page per cached sector. Header and entries
  // carry CRCs so replay can detect dump pages damaged by bit errors, and
  // entries are self-describing (own magic), so a failed entry program is
  // retried on the next dump page and replay tolerates the gap. A lost
  // header degrades replay to a full scan rather than losing the dump.
  std::string header;
  PutFixed32(&header, kDumpMagic);
  PutFixed32(&header, static_cast<uint32_t>(to_dump.size()));
  PutFixed32(&header, Crc32c(header.data(), header.size()));
  ftl_.ProgramDumpPage(0, header);
  uint32_t index = 1;
  uint64_t written = 0;
  for (const auto& [lpn, data] : to_dump) {
    std::string page;
    PutFixed32(&page, kDumpEntryMagic);
    PutFixed64(&page, lpn);
    PutFixed32(&page, static_cast<uint32_t>(data->size()));
    PutFixed32(&page, Crc32c(data->data(), data->size()));
    page.append(*data);
    bool stored = false;
    while (index < ftl_.dump_area_pages()) {
      const bool ok = ftl_.ProgramDumpPage(index, page).ok();
      index++;
      if (ok) {
        stored = true;
        break;
      }
    }
    if (!stored) {
      stats_.capacitor_overruns++;
      break;
    }
    written++;
  }
  stats_.dumped_pages += written;
  dump_pages_used_ = index;
  if (tracer_) {
    tracer_->Record(t, TraceEventType::kDump, written,
                    stats_.capacitor_overruns);
  }
}

void SsdDevice::PowerCut(SimTime t) {
  if (!powered_) return;
  cut_armed_ = false;
  powered_ = false;
  emergency_shutdown_ = true;
  if (tracer_) {
    tracer_->Record(t, TraceEventType::kPowerCut,
                    cfg_.durable_cache ? 1 : 0, 0);
  }

  if (cfg_.durable_cache) {
    // The capacitor budget covers NAND operations already issued to the
    // dies (Sec. 3.4.1): programs and erases in flight run to completion,
    // so nothing shears. This matters beyond host writes — GC and
    // bad-block retirement move live sectors whose only copy is the
    // in-flight destination program; shearing those would lose data no
    // dump replay could restore.
    flash_.QuiesceInFlight();
  }
  flash_.PowerCut(t);
  bus_.Reset();
  fw_.Reset();
  ncq_.Reset();

  if (cfg_.durable_cache) {
    // Discard commands whose transfer had not completed (atomic writer,
    // Sec. 3.2), restoring the previously acknowledged version if any.
    // In ordered mode, verify the suffix-loss guarantee while doing so: no
    // surviving entry may have been submitted after a dropped one.
    uint64_t min_dropped_seq = ~0ull;
    uint64_t max_kept_seq = 0;
    uint64_t min_dropped_epoch = ~0ull;
    uint64_t max_kept_epoch = 0;
    for (auto it = cache_.begin(); it != cache_.end();) {
      CacheEntry& e = it->second;
      if (e.ack > t) {
        stats_.dropped_incomplete++;
        min_dropped_seq = std::min(min_dropped_seq, e.seq);
        min_dropped_epoch = std::min(min_dropped_epoch, e.epoch);
        if (e.has_prev && e.prev_ack <= t) {
          e.data = std::move(e.prev_data);
          e.ack = e.prev_ack;
          e.seq = e.prev_seq;
          e.epoch = e.prev_epoch;
          e.has_prev = false;
          e.program_issue = kNeverProgrammed;
          e.program_start = 0;
          e.program_done = kNeverProgrammed;  // Needs replay.
          max_kept_seq = std::max(max_kept_seq, e.seq);
          max_kept_epoch = std::max(max_kept_epoch, e.epoch);
          ++it;
        } else {
          if (e.has_prev) {
            min_dropped_seq = std::min(min_dropped_seq, e.prev_seq);
            min_dropped_epoch = std::min(min_dropped_epoch, e.prev_epoch);
          }
          it = cache_.erase(it);
        }
      } else {
        max_kept_seq = std::max(max_kept_seq, e.seq);
        max_kept_epoch = std::max(max_kept_epoch, e.epoch);
        ++it;
      }
    }
    if (ordered_writes() && min_dropped_seq < max_kept_seq) {
      stats_.ordering_violations++;
    }
    // Barrier contract: the survivors must form an epoch-consistent cut —
    // losing any write of epoch N while keeping one from epoch M > N is a
    // cross-epoch reordering (intra-epoch reordering is allowed, so equal
    // epochs are fine).
    if (cur_epoch_ > 0 && min_dropped_epoch < max_kept_epoch) {
      stats_.epoch_ordering_violations++;
    }
    if (has_pending_half_ && cache_.count(pending_half_lpn_) == 0) {
      has_pending_half_ = false;
      pending_half_lpn_ = kInvalidLpn;
    }
    // Programs issued after t belong to discarded commands; their mapping
    // entries roll back. Programs *issued* by t keep their mapping — the
    // capacitor runs every issued NAND operation to completion, so keying
    // on issue (not cell-program start) matches QuiesceInFlight above.
    ftl_.PowerCutRollback(t, Ftl::PowerCutExposure::kIssued);
    DumpOnCapacitor(t);
  } else {
    const bool flush_in_progress =
        last_flush_start_ >= 0 && last_flush_start_ <= t &&
        t < last_flush_done_;
    const bool expose = cfg_.exposes_torn_writes && flush_in_progress;
    cache_.clear();
    cache_fifo_.clear();
    ftl_.PowerCutRollback(t, expose ? Ftl::PowerCutExposure::kStarted
                                    : Ftl::PowerCutExposure::kNone);
  }

  has_pending_half_ = false;
  pending_half_lpn_ = kInvalidLpn;
  // Pending scheduler sectors were acknowledged but never issued: on a
  // durable device the dump above saved them (program_done is still
  // "never"), on a volatile one they are lost with the cache.
  scheduler_.Clear();
  while (!outstanding_.empty()) outstanding_.pop();
  last_flush_start_ = last_flush_done_ = -1;
  flush_windows_.clear();
  max_time_seen_ = 0;
  last_ordered_ack_ = 0;  // The device clock restarts at PowerOn.
  cur_epoch_ = 0;         // Epochs are per-power-session, like the NCQ order.
  epoch_floor_ack_ = 0;
  epoch_max_ack_ = 0;
  epoch_writes_ = 0;
  // Host-visible async completions that had not reached their completion
  // instant die with the queue.
  AbortInFlight(t);
}

SimTime SsdDevice::ReplayDump() {
  SimTime t = 0;
  const FlashGeometry& g = cfg_.geometry;
  const SimTime page_read_cost = g.read_latency + g.channel_transfer_time();

  // A dump entry is valid when its magic parses and its payload CRC holds
  // (bit errors past the ECC budget or a shorn program fail both checks).
  const auto parse_entry = [](const std::string& page, Lpn* lpn,
                              std::string* data) {
    Slice p(page);
    uint32_t magic = 0;
    uint64_t l = 0;
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!GetFixed32(&p, &magic) || magic != kDumpEntryMagic) return false;
    if (!GetFixed64(&p, &l) || !GetFixed32(&p, &len) ||
        !GetFixed32(&p, &crc) || p.size() < len) {
      return false;
    }
    if (Crc32c(p.data(), len) != crc) return false;
    *lpn = l;
    data->assign(p.data(), len);
    return true;
  };

  std::vector<std::pair<Lpn, std::string>> entries;
  if (cfg_.store_data) {
    std::string header;
    const Status hs = ftl_.ReadDumpPage(0, &header);
    t += page_read_cost;  // Header read.
    uint32_t count = 0;
    bool header_valid = false;
    if (hs.ok()) {
      Slice h(header);
      uint32_t magic = 0;
      uint32_t crc = 0;
      if (GetFixed32(&h, &magic) && magic == kDumpMagic &&
          GetFixed32(&h, &count) && GetFixed32(&h, &crc)) {
        std::string prefix;
        PutFixed32(&prefix, magic);
        PutFixed32(&prefix, count);
        header_valid = Crc32c(prefix.data(), prefix.size()) == crc;
      }
    }
    if (header_valid) {
      // Entries were written in order but may have gaps where a program
      // failed; scan until `count` valid entries are recovered.
      uint32_t found = 0;
      for (uint32_t i = 1; found < count && i < ftl_.dump_area_pages(); ++i) {
        std::string page;
        const Status ps = ftl_.ReadDumpPage(i, &page);
        t += page_read_cost;
        (void)ps;  // A damaged page simply fails entry parsing below.
        Lpn lpn = 0;
        std::string data;
        if (parse_entry(page, &lpn, &data)) {
          entries.emplace_back(lpn, std::move(data));
          found++;
        }
      }
    } else if (hs.code() != StatusCode::kInvalidArgument) {
      // Header page lost (failed program or uncorrectable read): fall back
      // to scanning the whole dump area for self-describing entries.
      for (uint32_t i = 1; i < ftl_.dump_area_pages(); ++i) {
        std::string page;
        const Status ps = ftl_.ReadDumpPage(i, &page);
        t += page_read_cost;
        (void)ps;
        Lpn lpn = 0;
        std::string data;
        if (parse_entry(page, &lpn, &data)) {
          entries.emplace_back(lpn, std::move(data));
        }
      }
    }
  } else {
    for (Lpn lpn : dump_lpns_timing_only_) {
      entries.emplace_back(lpn, std::string());
    }
    t += static_cast<SimTime>(entries.size() + 1) * page_read_cost;
    dump_lpns_timing_only_.clear();
  }

  // Replay: re-program every dumped sector (idempotent — mapping simply
  // repoints, superseding any shorn page).
  std::vector<Ftl::SectorWrite> group;
  SimTime replay_done = t;
  for (const auto& [lpn, data] : entries) {
    group.push_back({lpn, cfg_.store_data ? &data : nullptr});
    if (group.size() == ftl_.sectors_per_page()) {
      SimTime start = 0;
      SimTime done = 0;
      if (ftl_.ProgramSectors(t, group, &start, &done).ok()) {
        replay_done = std::max(replay_done, done);
        stats_.replayed_pages += group.size();
      }
      group.clear();
    }
  }
  if (!group.empty()) {
    SimTime start = 0;
    SimTime done = 0;
    if (ftl_.ProgramSectors(t, group, &start, &done).ok()) {
      replay_done = std::max(replay_done, done);
      stats_.replayed_pages += group.size();
    }
  }

  ftl_.PersistMapping();
  const SimTime erased = ftl_.EraseDumpArea(replay_done);
  dump_pages_used_ = 0;
  if (tracer_) {
    tracer_->Record(erased, TraceEventType::kReplay, entries.size(),
                    stats_.replayed_pages);
  }
  return erased;
}

Status SsdDevice::DrainLogSegments(SimTime t, bool include_partial) {
  while (scheduler_.pending_sectors() >= SegmentSectors()) {
    DURASSD_RETURN_IF_ERROR(
        AppendLogSegment(t, scheduler_.TakePending(SegmentSectors())));
  }
  if (include_partial && !scheduler_.empty()) {
    DURASSD_RETURN_IF_ERROR(
        AppendLogSegment(t, scheduler_.TakePending(SegmentSectors())));
  }
  return Status::OK();
}

Status SsdDevice::AppendLogSegment(SimTime t, const std::vector<Lpn>& taken) {
  if (taken.empty()) return Status::OK();
  t = ClampToAcks(t, taken);
  const uint32_t spp = ftl_.sectors_per_page();

  // Header: segment sequence plus an (LPN, payload CRC) pair per sector, so
  // replay can both locate every payload and validate it without trusting
  // the (volatile) mapping table. Timing-only runs skip the bytes but still
  // pay the header program.
  std::string header;
  if (cfg_.store_data) {
    PutFixed32(&header, kLogSegmentMagic);
    PutFixed64(&header, log_seq_ + 1);
    PutFixed32(&header, static_cast<uint32_t>(taken.size()));
    for (Lpn lpn : taken) {
      auto it = cache_.find(lpn);
      assert(it != cache_.end());
      PutFixed32(&header,
                 Crc32c(it->second.data.data(), it->second.data.size()));
      PutFixed64(&header, lpn);
    }
    PutFixed32(&header, Crc32c(header.data(), header.size()));
  }

  // A failed append leaves the untouched tail pending again: the sectors
  // stay acknowledged in the durable cache, so durability is unaffected
  // and a later drain (or the capacitor dump) picks them up.
  const auto requeue = [this, t](const std::vector<Lpn>& rest, size_t from) {
    for (size_t i = from; i < rest.size(); ++i) scheduler_.Add(rest[i], t);
  };

  SimTime hdr_start = 0;
  SimTime hdr_done = 0;
  StatusOr<Ppn> hdr =
      ftl_.AppendLogPage(t, Slice(header), &hdr_start, &hdr_done);
  if (!hdr.ok()) {
    requeue(taken, 0);
    return hdr.status();
  }

  LogSegmentRec rec;
  rec.seq = ++log_seq_;
  rec.header_ppn = hdr.value();
  rec.sectors = 0;
  for (size_t off = 0; off < taken.size(); off += spp) {
    const size_t n = std::min<size_t>(spp, taken.size() - off);
    std::string page;
    if (cfg_.store_data) {
      for (size_t j = 0; j < n; ++j) {
        auto it = cache_.find(taken[off + j]);
        assert(it != cache_.end());
        page.append(it->second.data);
      }
    }
    SimTime ps = 0;
    SimTime pd = 0;
    StatusOr<Ppn> ppn = ftl_.AppendLogPage(t, Slice(page), &ps, &pd);
    if (!ppn.ok()) {
      // Keep what was programmed (already mapped below); the header simply
      // over-claims and replay treats the missing tail as never written.
      requeue(taken, off);
      if (rec.sectors > 0) log_dir_.push_back(std::move(rec));
      return ppn.status();
    }
    std::vector<Lpn> group(taken.begin() + off, taken.begin() + off + n);
    for (size_t j = 0; j < n; ++j) {
      ftl_.MapLogSector(group[j], ppn.value(), static_cast<uint32_t>(j), t,
                        ps, pd);
    }
    FinishDestage(group, t, ps, pd);
    h_destage_ns_->Record(pd - t);
    if (tracer_) {
      tracer_->Record(pd, TraceEventType::kDestageDone, group[0],
                      group.size());
    }
    rec.data_ppns.push_back(ppn.value());
    rec.sectors += static_cast<uint32_t>(n);
  }

  stats_.log_segments++;
  stats_.log_segment_sectors += rec.sectors;
  ++*c_log_segments_;
  log_dir_.push_back(std::move(rec));
  // The directory mirrors what a physical scan of the log region would
  // find; once the append cursor laps a segment its pages have been
  // reclaimed, so anything older than one full lap is dead weight.
  const size_t max_dir =
      ftl_.log_pages_total() / (SegmentDataPages() + 1) + 8;
  while (log_dir_.size() > max_dir) log_dir_.pop_front();
  return Status::OK();
}

SimTime SsdDevice::RecoverCache() {
  if (log_dir_.empty()) return 0;
  SimTime t = 0;
  const FlashGeometry& g = cfg_.geometry;
  const SimTime page_read_cost = g.read_latency + g.channel_transfer_time();

  if (!cfg_.store_data) {
    // Timing-only runs: charge the header + data reads a physical replay
    // would perform; the mapping itself already survived via the issued-
    // program rollback rule.
    for (const LogSegmentRec& rec : log_dir_) {
      t += page_read_cost * static_cast<SimTime>(1 + rec.data_ppns.size());
      stats_.log_replayed_segments++;
    }
    log_dir_.clear();
    if (tracer_) {
      tracer_->Record(t, TraceEventType::kReplay, stats_.log_replayed_segments,
                      stats_.log_recovered_sectors);
    }
    return t;
  }

  // Newest to oldest, so the first (ppn, slot) the live mapping confirms
  // for an LPN is its authoritative copy and older ones are skipped.
  std::unordered_set<Lpn> seen;
  const uint32_t spp = ftl_.sectors_per_page();
  for (auto it = log_dir_.rbegin(); it != log_dir_.rend(); ++it) {
    const LogSegmentRec& rec = *it;
    std::string header;
    const Status hs = ftl_.ReadPhysicalPage(t, rec.header_ppn, &header,
                                            nullptr);
    t += page_read_cost;

    bool header_valid = false;
    uint32_t count = 0;
    std::vector<std::pair<Lpn, uint32_t>> map;  // (lpn, payload crc)
    if (hs.ok()) {
      Slice h(header);
      uint32_t magic = 0;
      uint64_t seq = 0;
      if (GetFixed32(&h, &magic) && magic == kLogSegmentMagic &&
          GetFixed64(&h, &seq) && GetFixed32(&h, &count) &&
          h.size() >= static_cast<size_t>(count) * 12 + 4) {
        const size_t crc_pos = 16 + static_cast<size_t>(count) * 12;
        uint32_t stored_crc = 0;
        std::memcpy(&stored_crc, header.data() + crc_pos, sizeof(stored_crc));
        if (Crc32c(header.data(), crc_pos) == stored_crc) {
          header_valid = true;
          for (uint32_t i = 0; i < count; ++i) {
            uint32_t crc = 0;
            uint64_t lpn = 0;
            GetFixed32(&h, &crc);
            GetFixed64(&h, &lpn);
            map.emplace_back(lpn, crc);
          }
        }
      }
    }
    if (!header_valid) {
      // Torn or damaged header — the segment cannot be validated. Its
      // mappings were either rolled back (programs issued after the cut)
      // or point at pages the capacitor quiesce completed; the dump replay
      // that follows re-covers anything acknowledged-but-unissued. Nothing
      // to unmap here: dropping mappings on an unreadable header would
      // convert a detectable error into silent data loss.
      stats_.log_torn_segments++;
      continue;
    }

    stats_.log_replayed_segments++;
    std::string page;
    uint32_t page_idx = ~0u;
    Status page_status = Status::OK();
    for (uint32_t i = 0; i < count; ++i) {
      const auto [lpn, crc] = map[i];
      if (i / spp >= rec.data_ppns.size()) continue;  // Never programmed.
      if (seen.count(lpn) != 0) continue;
      const Ppn ppn = rec.data_ppns[i / spp];
      const uint32_t slot = i % spp;
      if (!ftl_.IsMappedTo(lpn, ppn, slot)) continue;  // Rolled back / stale.
      seen.insert(lpn);
      if (i / spp != page_idx) {
        page_idx = i / spp;
        page.clear();
        page_status = ftl_.ReadPhysicalPage(t, ppn, &page, nullptr);
        t += page_read_cost;
      }
      if (!page_status.ok()) {
        // Uncorrectable read: keep the mapping so host reads see the damage
        // (and its error) instead of silently-recovered zeros.
        stats_.log_recovered_sectors++;
        continue;
      }
      const size_t off = static_cast<size_t>(slot) * cfg_.sector_size;
      if (page.size() >= off + cfg_.sector_size &&
          Crc32c(page.data() + off, cfg_.sector_size) == crc) {
        stats_.log_recovered_sectors++;
      } else {
        // The page reads clean but holds the wrong bytes (shorn program the
        // quiesce missed): truncate — drop the mapping so the dump replay
        // or the pre-overwrite copy wins instead of torn data.
        if (ftl_.UnmapIfPointsTo(lpn, ppn, slot)) {
          stats_.log_dropped_sectors++;
        }
      }
    }
  }
  log_dir_.clear();
  ftl_.PersistMapping();
  if (tracer_) {
    tracer_->Record(t, TraceEventType::kReplay, stats_.log_replayed_segments,
                    stats_.log_recovered_sectors);
  }
  return t;
}

SimTime SsdDevice::PowerOn() {
  if (powered_) return 0;
  powered_ = true;
  cache_.clear();
  cache_fifo_.clear();
  scheduler_.Clear();
  while (!outstanding_.empty()) outstanding_.pop();

  SimTime duration = kCleanBootTime;  // Controller boot + capacitor recharge.
  if (emergency_shutdown_) {
    if (cfg_.durable_cache) {
      // Log-structured destage first: validate every surviving segment
      // against its checksummed header (truncating a torn tail) before the
      // dump replay re-programs acknowledged-but-unissued sectors.
      if (UseLogDestage()) duration += RecoverCache();
      duration += ReplayDump();
    } else {
      duration += kVolatileRecoveryScan;
      ftl_.PersistMapping();
    }
    emergency_shutdown_ = false;
  }
  // Recovery (and anything queued before it) completes under capacitor
  // protection; a later power cut cannot shear it.
  flash_.QuiesceInFlight();
  max_time_seen_ = 0;
  if (tracer_) {
    tracer_->Record(duration, TraceEventType::kPowerOn,
                    static_cast<uint64_t>(duration), 0);
  }
  return duration;
}

Status SsdDevice::Shutdown(SimTime now) {
  if (!powered_) return Status::OK();
  // A clean shutdown must persist pending scheduler sectors even under
  // flush modes that only assert ordering (kOrderedNoDrain).
  if (UseScheduler() && !scheduler_.empty()) {
    stats_.destage_batches++;
    if (tracer_) {
      tracer_->Record(now, TraceEventType::kDestageBatch,
                      scheduler_.pending_sectors(), 3);
    }
    if (UseLogDestage()) {
      DURASSD_RETURN_IF_ERROR(
          DrainLogSegments(now, /*include_partial=*/true));
    } else {
      DURASSD_RETURN_IF_ERROR(scheduler_.DrainAll(now));
    }
  }
  log_dir_.clear();  // Clean shutdown: every segment is fully destaged.
  const Result r = Flush(now);
  DURASSD_RETURN_IF_ERROR(r.status);
  powered_ = false;
  emergency_shutdown_ = false;
  cache_.clear();
  cache_fifo_.clear();
  while (!outstanding_.empty()) outstanding_.pop();
  has_pending_half_ = false;
  pending_half_lpn_ = kInvalidLpn;
  last_ordered_ack_ = 0;
  cur_epoch_ = 0;
  epoch_floor_ack_ = 0;
  epoch_max_ack_ = 0;
  epoch_writes_ = 0;
  return Status::OK();
}

double SsdDevice::WriteAmplification() const {
  const double host_bytes = static_cast<double>(stats_.host_written_sectors) *
                            cfg_.sector_size;
  if (host_bytes == 0) return 0;
  const double nand_bytes = static_cast<double>(flash_.stats().programs) *
                            cfg_.geometry.page_size;
  return nand_bytes / host_bytes;
}

}  // namespace durassd
