#include "host/block_device.h"

#include <algorithm>

namespace durassd {

CmdId BlockDevice::Submit(SimTime now, const Command& cmd,
                          SimTime* submit_time) {
  std::lock_guard<std::recursive_mutex> lock(latch_);
  SimTime t = now;
  while (!inflight_done_.empty() && inflight_done_.top() <= t) {
    inflight_done_.pop();
  }
  if (qd_limit_ > 0) {
    while (inflight_done_.size() >= qd_limit_) {
      const SimTime freed = inflight_done_.top();
      inflight_done_.pop();
      if (freed > t) {
        submit_stalls_++;
        submit_stall_time_ += freed - t;
        t = freed;
      }
    }
  }
  if (h_qd_ != nullptr) {
    h_qd_->Record(static_cast<int64_t>(inflight_done_.size()) + 1);
  }
  const Result r = Execute(t, cmd);
  const CmdId id = next_cmd_id_++;
  inflight_done_.push(r.done);
  pending_.push_back(Completion{id, r.status, t, r.done});
  if (submit_time != nullptr) *submit_time = t;
  return id;
}

std::vector<BlockDevice::Completion> BlockDevice::Poll(SimTime now) {
  std::lock_guard<std::recursive_mutex> lock(latch_);
  std::vector<Completion> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->done <= now) {
      out.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Completion& a, const Completion& b) {
                     return a.done < b.done;
                   });
  return out;
}

BlockDevice::Completion BlockDevice::Await(CmdId id) {
  std::lock_guard<std::recursive_mutex> lock(latch_);
  // Callers typically await the most recent submission; search from the back.
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    if (it->id == id) {
      Completion c = std::move(*it);
      pending_.erase(std::next(it).base());
      return c;
    }
  }
  Completion missing;
  missing.id = id;
  missing.status = Status::InvalidArgument("unknown or consumed command id");
  return missing;
}

const BlockDevice::Completion* BlockDevice::Find(CmdId id) const {
  std::lock_guard<std::recursive_mutex> lock(latch_);
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

SimTime BlockDevice::EarliestPendingDone() const {
  std::lock_guard<std::recursive_mutex> lock(latch_);
  SimTime earliest = kMaxSimTime;
  for (const Completion& c : pending_) {
    earliest = std::min(earliest, c.done);
  }
  return earliest;
}

void BlockDevice::AbortInFlight(SimTime t) {
  std::lock_guard<std::recursive_mutex> lock(latch_);
  for (Completion& c : pending_) {
    if (c.done > t) {
      c.status = Status::DeviceOffline();
      c.done = t;
    }
  }
  while (!inflight_done_.empty()) inflight_done_.pop();
}

BlockDevice::Result BlockDevice::Write(SimTime now, Lpn lpn, Slice data) {
  const CmdId id = Submit(now, Command::MakeWrite(lpn, data));
  const Completion c = Await(id);
  return {c.status, c.done};
}

BlockDevice::Result BlockDevice::Read(SimTime now, Lpn lpn, uint32_t nsec,
                                      std::string* out) {
  const CmdId id = Submit(now, Command::MakeRead(lpn, nsec, out));
  const Completion c = Await(id);
  return {c.status, c.done};
}

BlockDevice::Result BlockDevice::Flush(SimTime now) {
  const CmdId id = Submit(now, Command::MakeFlush());
  const Completion c = Await(id);
  return {c.status, c.done};
}

BlockDevice::Result BlockDevice::Barrier(SimTime now) {
  const CmdId id = Submit(now, Command::MakeBarrier());
  const Completion c = Await(id);
  return {c.status, c.done};
}

}  // namespace durassd
