#ifndef DURASSD_HOST_SIM_FILE_H_
#define DURASSD_HOST_SIM_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "host/block_device.h"

namespace durassd {

class SimFileSystem;

/// A file mapped onto device sectors (extent lists, grown in chunks).
/// Models O_DIRECT semantics: no host page cache, every Write goes to the
/// device; partial-sector writes are read-modify-write. Sync() performs the
/// fsync of Fig. 2: journal (metadata) write, then FLUSH CACHE when write
/// barriers are enabled.
class SimFile {
 public:
  struct IoResult {
    Status status;
    SimTime done = 0;
  };

  struct Completion {
    CmdId id = kInvalidCmdId;
    Status status;
    SimTime submit = 0;
    SimTime done = 0;
  };

  SimFile(const SimFile&) = delete;
  SimFile& operator=(const SimFile&) = delete;

  /// Unsynchronized accessors: stable unless a concurrent Rename /
  /// write is in flight (callers on other threads read them at barriers).
  const std::string& name() const { return name_; }
  uint64_t size() const { return size_; }

  IoResult Write(SimTime now, uint64_t offset, Slice data);
  IoResult Read(SimTime now, uint64_t offset, uint64_t len, std::string* out);

  // --- Asynchronous write path ---
  // A file write fans out into one or more device commands (one per
  // whole-sector run; partial-sector edges fall back to a synchronous
  // read-modify-write). SubmitWrite issues them all at `now` without
  // waiting; the file-level completion materializes when every device
  // command has completed. Completion records survive a device power cut
  // (the device rewrites in-flight ones to DeviceOffline), so a host can
  // always learn the fate of what it submitted.

  /// Submits the write; `*submit_time` (when non-null) receives the service
  /// entry time, which exceeds `now` if the device's queue-depth limit
  /// stalled submission. `data` must stay alive only for the call.
  CmdId SubmitWrite(SimTime now, uint64_t offset, Slice data,
                    SimTime* submit_time = nullptr);
  /// Removes and returns all file-level completions with done <= now.
  std::vector<Completion> Poll(SimTime now);
  /// Waits (in virtual time) for `id` and consumes its completion.
  Completion Await(CmdId id);
  /// Earliest completion time among outstanding submissions (kMaxSimTime
  /// when none) — the instant a bounded-depth submitter should advance to.
  SimTime EarliestPendingDone() const;
  size_t pending_count() const;
  /// fsync(2): persists data + metadata. With barriers on, issues FLUSH
  /// CACHE to the device; with barriers off (the DuraSSD deployment mode),
  /// only the journal write happens and the call returns quickly.
  IoResult Sync(SimTime now);
  /// fdatasync-style sync that skips the metadata/journal write.
  IoResult DataSync(SimTime now);
  /// Barrier-enabled fsync (fbarrier(2) in Won et al.): orders everything
  /// written so far against everything written later, without waiting for
  /// media. On devices without barrier support this degenerates to a full
  /// Sync — ordering can then only be had by draining.
  IoResult Barrier(SimTime now);

  /// Pre-sizes the file (like fallocate); useful for log files.
  Status Allocate(uint64_t new_size);
  Status Truncate(uint64_t new_size);

  /// True when a size/extent change has not been journaled yet.
  bool metadata_dirty() const { return metadata_dirty_; }

 private:
  friend class SimFileSystem;
  SimFile(SimFileSystem* fs, std::string name) : fs_(fs), name_(std::move(name)) {}

  /// Device LPN backing byte `offset`, growing the extent list on demand.
  StatusOr<Lpn> MapOffset(uint64_t offset, bool grow);

  /// An outstanding SubmitWrite. Device commands are combined lazily (via
  /// BlockDevice::Find) so that a power cut that rewrites their statuses is
  /// observed truthfully; `sync_done` folds in any synchronous sub-ops
  /// (partial-sector read-modify-write).
  struct PendingCmd {
    CmdId id;
    Status early_status;  ///< Mapping/argument errors caught at submit.
    SimTime submit;
    SimTime sync_done;
    std::vector<CmdId> parts;  ///< Device-level command ids.
  };
  /// Completion time / final status of `p` as of now (consuming nothing).
  Completion Resolve(const PendingCmd& p) const;

  SimFileSystem* fs_;
  std::string name_;
  uint64_t size_ = 0;
  bool metadata_dirty_ = true;  ///< Creation itself is a metadata change.
  /// Chunked extents: chunk i covers file sectors
  /// [i * chunk_sectors, (i+1) * chunk_sectors).
  std::vector<Lpn> chunks_;
  CmdId next_cmd_id_ = 1;
  std::vector<PendingCmd> pending_;  ///< In submission order.
};

/// Minimal file system over a BlockDevice: bump allocation in fixed-size
/// chunks, a journal area for fsync metadata writes, and a write-barrier
/// switch (the nobarrier mount option the paper toggles).
///
/// Simplification vs a real FS: the namespace and extent maps live in host
/// memory and survive simulated reboots (a journaling FS keeps its metadata
/// consistent; we do not model FS-metadata loss — the paper's experiments
/// never involve it).
///
/// Thread safety (DESIGN.md §13): one file-system latch serializes every
/// public SimFile / SimFileSystem operation (files share the journal
/// cursor, sync-batching windows, and the allocator, so per-file latching
/// would not be sound). Latch order: file-system latch before device latch
/// — file operations call into the device while holding the fs latch, never
/// the reverse. stats() snapshots are for quiesced (barrier) reading.
class SimFileSystem {
 public:
  struct Options {
    bool write_barriers = true;
    /// Journal sectors written per fsync (ext4 ~ one descriptor+commit; we
    /// default to 1 like a small ordered-journal transaction).
    uint32_t journal_sectors_per_sync = 1;
    /// Extent chunk size in sectors (1024 x 4KB = 4 MiB).
    uint32_t chunk_sectors = 1024;
    /// Sectors reserved at LPN 0 for the journal ring.
    uint32_t journal_area_sectors = 256;
  };

  SimFileSystem(BlockDevice* device, Options options);

  SimFileSystem(const SimFileSystem&) = delete;
  SimFileSystem& operator=(const SimFileSystem&) = delete;

  /// Opens (creating if absent) a file.
  SimFile* Open(const std::string& name);
  bool Exists(const std::string& name) const;
  Status Remove(const std::string& name);
  /// Atomic rename (metadata-only, like rename(2) on a journaling FS).
  /// Fails if `to` exists.
  Status Rename(const std::string& from, const std::string& to);

  BlockDevice* device() { return device_; }
  const Options& options() const { return opts_; }
  void set_write_barriers(bool on) {
    std::lock_guard<std::mutex> lock(latch_);
    opts_.write_barriers = on;
  }
  uint64_t allocated_sectors() const {
    std::lock_guard<std::mutex> lock(latch_);
    return next_lpn_;
  }

  struct Stats {
    uint64_t syncs = 0;
    uint64_t batched_syncs = 0;  ///< fsyncs that rode another's commit.
    uint64_t journal_writes = 0;
    uint64_t flush_cmds = 0;  ///< FLUSH CACHE actually sent to the device.
    uint64_t barrier_cmds = 0;  ///< BARRIER commands sent to the device.
    uint64_t batched_barriers = 0;  ///< Barriers that rode another's
                                    ///< barrier or full sync.
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class SimFile;

  StatusOr<Lpn> AllocateChunk();
  SimFile::IoResult SyncInternal(SimTime now, SimFile* file,
                                 bool write_journal);
  SimFile::IoResult BarrierInternal(SimTime now, SimFile* file);

  /// Serializes all public SimFile/SimFileSystem entry points (private
  /// helpers assume it is held). Acquired before the device latch.
  mutable std::mutex latch_;
  BlockDevice* device_;
  Options opts_;
  uint64_t next_lpn_;
  uint32_t journal_cursor_ = 0;
  SimTime last_sync_start_ = -1;
  SimTime last_sync_done_ = -1;
  SimTime last_barrier_start_ = -1;
  SimTime last_barrier_done_ = -1;
  std::unordered_map<std::string, std::unique_ptr<SimFile>> files_;
  Stats stats_;
};

}  // namespace durassd

#endif  // DURASSD_HOST_SIM_FILE_H_
