#ifndef DURASSD_HOST_BLOCK_DEVICE_H_
#define DURASSD_HOST_BLOCK_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace durassd {

/// Host-visible block storage interface. Sector addressing is in logical
/// pages of `sector_size()` bytes (4KB by default — the paper's recommended
/// unit of I/O). All calls carry the caller's virtual issue time and report
/// the virtual completion time, so N logical clients can share one device
/// and contend realistically.
///
/// Two ways to drive the device:
///  - Synchronous `Write`/`Read`/`Flush`: issue one command and wait for it.
///    These are thin wrappers over the asynchronous path below and behave
///    exactly as they always have.
///  - Asynchronous `Submit` + `Poll`/`Await`: keep many commands in flight
///    so the device can overlap bus transfer, firmware processing, and NAND
///    programs across channels — the queue-depth behaviour the paper's
///    throughput claims depend on (Sec. 3.3). A per-device queue-depth
///    limit (`set_queue_depth_limit`) models the host's submission window:
///    when the limit is reached, Submit stalls (in virtual time) until a
///    slot frees.
///
/// In the simulator every command's effects and completion time are computed
/// at submission (virtual time makes this sound); the completion only
/// becomes *observable* through Poll once its `done` instant is reached, or
/// through Await, which waits for it.
///
/// Thread safety (DESIGN.md §13): a per-device latch serializes the whole
/// command path — Submit (including the virtual Execute, so derived command
/// state needs no locking of its own), Poll/Await/Find, and the sync
/// wrappers — making a device safe to hand between executor threads across
/// epoch barriers and safe under concurrent submission. Latch order:
/// file-system latch before device latch; array latch before member latch
/// (an ArrayDevice's Execute calls into member devices, which are distinct
/// objects lower in the order). PowerCut/PowerOn are NOT latched — power
/// events require externally exclusive access (they rewrite completion
/// records wholesale).
class BlockDevice {
 public:
  struct Result {
    Status status;
    SimTime done = 0;  ///< Virtual completion time of the command.
  };

  /// One queued command. `data` (writes) must stay alive for the duration
  /// of the Submit call; `out` (reads) must stay alive until the command's
  /// completion is consumed.
  struct Command {
    enum class Op : uint8_t { kWrite, kRead, kFlush, kBarrier };
    Op op = Op::kFlush;
    Lpn lpn = 0;
    uint32_t nsec = 0;          ///< Sector count (reads).
    Slice data;                 ///< Payload (writes).
    std::string* out = nullptr; ///< Destination (reads); may be null.

    static Command MakeWrite(Lpn lpn, Slice data) {
      Command c;
      c.op = Op::kWrite;
      c.lpn = lpn;
      c.data = data;
      return c;
    }
    static Command MakeRead(Lpn lpn, uint32_t nsec, std::string* out) {
      Command c;
      c.op = Op::kRead;
      c.lpn = lpn;
      c.nsec = nsec;
      c.out = out;
      return c;
    }
    static Command MakeFlush() { return Command{}; }
    static Command MakeBarrier() {
      Command c;
      c.op = Op::kBarrier;
      return c;
    }
  };

  struct Completion {
    CmdId id = kInvalidCmdId;
    Status status;
    SimTime submit = 0;  ///< Service entry time (>= issue time if stalled).
    SimTime done = 0;    ///< Virtual completion time.
  };

  virtual ~BlockDevice() = default;

  virtual uint32_t sector_size() const = 0;
  virtual uint64_t num_sectors() const = 0;

  // --- Asynchronous submit/complete path ---

  /// Submits `cmd` at virtual time `now`. If the number of commands in
  /// flight has reached `queue_depth_limit()`, submission itself blocks in
  /// virtual time until a slot frees; `*submit_time` (when non-null)
  /// receives the actual service entry time. Returns the command id.
  CmdId Submit(SimTime now, const Command& cmd, SimTime* submit_time = nullptr);

  /// Removes and returns all completions with done <= now, ordered by
  /// completion time (ties broken by submission order).
  std::vector<Completion> Poll(SimTime now);

  /// Waits (in virtual time) for command `id` and consumes its completion.
  Completion Await(CmdId id);

  /// Peeks at an unconsumed completion record; null if `id` is unknown or
  /// already consumed. A power cut rewrites in-flight records in place
  /// (status becomes DeviceOffline), so peeked times stay truthful.
  const Completion* Find(CmdId id) const;

  /// Earliest completion time among unconsumed completions, or kMaxSimTime.
  SimTime EarliestPendingDone() const;

  size_t pending_completions() const {
    std::lock_guard<std::recursive_mutex> lock(latch_);
    return pending_.size();
  }

  /// Host submission-window size. 0 (the default) means unlimited, which
  /// preserves the behaviour of purely synchronous callers exactly.
  void set_queue_depth_limit(uint32_t depth) {
    std::lock_guard<std::recursive_mutex> lock(latch_);
    qd_limit_ = depth;
  }
  uint32_t queue_depth_limit() const {
    std::lock_guard<std::recursive_mutex> lock(latch_);
    return qd_limit_;
  }

  /// Submissions that stalled on the queue-depth limit, and the total
  /// virtual time spent stalled.
  uint64_t submit_stalls() const { return submit_stalls_; }
  SimTime submit_stall_time() const { return submit_stall_time_; }

  // --- Synchronous wrappers (Submit + Await) ---

  /// Writes `data` (a multiple of sector_size) starting at `lpn`. With a
  /// durable cache the command is atomic and durable once acknowledged
  /// (Sec. 3.2); on volatile devices it is neither until a Flush.
  Result Write(SimTime now, Lpn lpn, Slice data);

  /// Reads `nsec` sectors into `out` (may be nullptr for timing-only runs);
  /// `out` is resized to nsec * sector_size. Never-written sectors read as
  /// zeros.
  Result Read(SimTime now, Lpn lpn, uint32_t nsec, std::string* out);

  /// FLUSH CACHE: returns once all previously acknowledged writes are on
  /// stable media (and device metadata is persisted). Generated by fsync
  /// when write barriers are enabled (Fig. 2).
  Result Flush(SimTime now);

  /// BARRIER: seals the current write epoch (Won et al., "Barrier Enabled
  /// IO Stack"). The device guarantees that after a power cut the surviving
  /// writes form an epoch-consistent cut — every write of a surviving epoch's
  /// predecessors survives too. Unlike Flush this neither drains the cache
  /// nor waits on media; it is an ordering point, not a durability point.
  /// Only meaningful when supports_barrier(); other devices treat it as
  /// Flush (see each Execute).
  Result Barrier(SimTime now);

  /// Simulated power failure at virtual time `t`. Volatile caches lose
  /// unflushed data; an in-flight media write leaves a torn sector; DuraSSD
  /// dumps its durable cache to the dump area on capacitor power.
  virtual void PowerCut(SimTime t) = 0;

  /// Re-powers the device, running its recovery (Sec. 3.4.2). Returns the
  /// virtual recovery duration. The device clock restarts at zero.
  virtual SimTime PowerOn() = 0;

  /// True when an acknowledged write can never be observed torn.
  virtual bool supports_atomic_write() const = 0;
  /// True when acknowledged writes survive power failure without Flush.
  virtual bool has_durable_cache() const = 0;
  /// True when submission order is a durability-order guarantee: after a
  /// power cut, the surviving write stream is a prefix of the submitted
  /// write stream (the paper's ordered NCQ, Sec. 3.3). Implies
  /// has_durable_cache() in practice — ordering without durability of the
  /// acknowledged prefix would guarantee nothing.
  virtual bool ordered_writes() const { return false; }
  /// True when the device implements the BARRIER command natively: epochs
  /// sealed by Barrier() persist in order across power cuts. File systems
  /// fall back to a full fsync on devices without it.
  virtual bool supports_barrier() const { return false; }

  virtual uint64_t capacity_bytes() const {
    return num_sectors() * sector_size();
  }

 protected:
  /// Executes one command at time `t` (which already reflects any
  /// submission stall) and returns its status + completion time. Implemented
  /// by each device; this is where all timing and state modelling lives.
  virtual Result Execute(SimTime t, const Command& cmd) = 0;

  /// Devices call this from PowerCut(t): unconsumed completions with
  /// done > t are rewritten to fail with DeviceOffline at the cut instant,
  /// and the in-flight accounting window is cleared — power loss kills the
  /// queue.
  void AbortInFlight(SimTime t);

  /// Optional histogram receiving the in-flight command count observed at
  /// each submission (the `ssd.qd` metric).
  void set_qd_histogram(Histogram* h) { h_qd_ = h; }

 private:
  /// Serializes the async command path (see class comment). Held across
  /// Execute. Recursive because a scheduled power cut legitimately trips
  /// *inside* Execute (mid-command), and the device's PowerCut path then
  /// re-enters AbortInFlight on the same thread.
  mutable std::recursive_mutex latch_;
  uint32_t qd_limit_ = 0;  ///< 0 = unlimited.
  CmdId next_cmd_id_ = 1;
  /// Completion times of in-flight commands (queue-depth accounting only;
  /// records are independent of the pending_ list so consuming a completion
  /// early does not free its queue slot before its completion time).
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<SimTime>>
      inflight_done_;
  /// Unconsumed completion records, in submission order.
  std::vector<Completion> pending_;
  uint64_t submit_stalls_ = 0;
  SimTime submit_stall_time_ = 0;
  Histogram* h_qd_ = nullptr;
};

}  // namespace durassd

#endif  // DURASSD_HOST_BLOCK_DEVICE_H_
