#include "host/sim_file.h"

#include <algorithm>
#include <cassert>

namespace durassd {

// ---------------------------------------------------------------------------
// SimFileSystem
// ---------------------------------------------------------------------------

SimFileSystem::SimFileSystem(BlockDevice* device, Options options)
    : device_(device),
      opts_(options),
      next_lpn_(options.journal_area_sectors) {}

SimFile* SimFileSystem::Open(const std::string& name) {
  std::lock_guard<std::mutex> lock(latch_);
  auto it = files_.find(name);
  if (it != files_.end()) return it->second.get();
  auto file = std::unique_ptr<SimFile>(new SimFile(this, name));
  SimFile* raw = file.get();
  files_.emplace(name, std::move(file));
  return raw;
}

bool SimFileSystem::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(latch_);
  return files_.count(name) != 0;
}

Status SimFileSystem::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(latch_);
  // Sectors are leaked (no free-space management); fine for simulation runs.
  if (files_.erase(name) == 0) return Status::NotFound(name);
  return Status::OK();
}

Status SimFileSystem::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(latch_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound(from);
  if (files_.count(to) != 0) return Status::InvalidArgument(to + " exists");
  auto node = files_.extract(it);
  node.key() = to;
  node.mapped()->name_ = to;
  files_.insert(std::move(node));
  return Status::OK();
}

StatusOr<Lpn> SimFileSystem::AllocateChunk() {
  const Lpn start = next_lpn_;
  if (start + opts_.chunk_sectors > device_->num_sectors()) {
    return Status::OutOfSpace("file system full");
  }
  next_lpn_ += opts_.chunk_sectors;
  return start;
}

SimFile::IoResult SimFileSystem::SyncInternal(SimTime now, SimFile* file,
                                              bool write_journal) {
  stats_.syncs++;
  // JBD2-style fsync batching: if a journal commit + FLUSH was *initiated*
  // at or after this caller's writes completed (now <= start), that commit
  // covers them — ride it instead of issuing another. Sound because a
  // device flush covers everything acknowledged before it starts.
  if (opts_.write_barriers && last_sync_start_ >= now) {
    stats_.batched_syncs++;
    if (file != nullptr) file->metadata_dirty_ = false;
    return {Status::OK(), last_sync_done_};
  }
  // Otherwise journal immediately and issue a FLUSH; the device serializes
  // flushes and lets later requests piggyback on a queued one (two-phase
  // group commit emerges from the combination).
  SimTime t = now;
  // With write barriers on we model an ordered-journal fsync (ext4-like):
  // a journal transaction is committed on every fsync. With barriers off
  // (the XFS nobarrier deployment the paper uses for DuraSSD), fsync only
  // journals when the file's metadata actually changed; an O_DIRECT write
  // into preallocated space costs a bare syscall.
  if (write_journal && !opts_.write_barriers && file != nullptr &&
      !file->metadata_dirty()) {
    write_journal = false;
  }
  if (write_journal) {
    // Journal transaction: one (or a few) small ordered writes into the
    // journal ring.
    const uint32_t sector = device_->sector_size();
    std::string zeros(sector, '\0');
    for (uint32_t i = 0; i < opts_.journal_sectors_per_sync; ++i) {
      const Lpn lpn = journal_cursor_ % opts_.journal_area_sectors;
      journal_cursor_++;
      const BlockDevice::Result r = device_->Write(t, lpn, zeros);
      if (!r.status.ok()) return {r.status, t};
      t = r.done;
      stats_.journal_writes++;
    }
  }
  if (file != nullptr) file->metadata_dirty_ = false;
  if (opts_.write_barriers) {
    const BlockDevice::Result r = device_->Flush(t);
    stats_.flush_cmds++;
    last_sync_start_ = t;
    last_sync_done_ = r.done;
    return {r.status, r.done};
  }
  // fsync syscall overhead without a FLUSH CACHE.
  return {Status::OK(), t + 5 * kMicrosecond};
}

SimFile::IoResult SimFileSystem::BarrierInternal(SimTime now, SimFile* file) {
  if (!device_->supports_barrier()) {
    // The ordering request can only be honored by draining: fall back to a
    // full fsync (journal + FLUSH per the mount options).
    return SyncInternal(now, file, /*write_journal=*/true);
  }
  // Group commit, same batching rule as fsync: a barrier *initiated* at or
  // after this caller's writes completed already sealed those writes into
  // its epoch — concurrent committers share one barrier submission. A
  // completed full sync (journal + FLUSH drain) is strictly stronger and
  // covers the request too.
  if (last_barrier_start_ >= now || last_sync_start_ >= now) {
    stats_.batched_barriers++;
    return {Status::OK(),
            last_barrier_start_ >= last_sync_start_ ? last_barrier_done_
                                                    : last_sync_done_};
  }
  // No journal transaction: a BARRIER does not persist metadata, it only
  // orders the data stream. The file's metadata stays dirty so a later
  // real fsync still journals it.
  stats_.barrier_cmds++;
  const BlockDevice::Result r = device_->Barrier(now);
  if (r.status.ok()) {
    last_barrier_start_ = now;
    last_barrier_done_ = r.done;
  }
  return {r.status, r.done};
}

// ---------------------------------------------------------------------------
// SimFile
// ---------------------------------------------------------------------------

StatusOr<Lpn> SimFile::MapOffset(uint64_t offset, bool grow) {
  const uint32_t sector = fs_->device()->sector_size();
  const uint64_t file_sector = offset / sector;
  const uint64_t chunk = file_sector / fs_->options().chunk_sectors;
  while (chunk >= chunks_.size()) {
    if (!grow) return Status::NotFound("offset beyond file extents");
    StatusOr<Lpn> base = fs_->AllocateChunk();
    if (!base.ok()) return base.status();
    chunks_.push_back(*base);
  }
  return chunks_[chunk] + file_sector % fs_->options().chunk_sectors;
}

Status SimFile::Allocate(uint64_t new_size) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  if (new_size == 0) return Status::OK();
  StatusOr<Lpn> last = MapOffset(new_size - 1, /*grow=*/true);
  DURASSD_RETURN_IF_ERROR(last.status());
  if (new_size > size_) {
    size_ = new_size;
    metadata_dirty_ = true;
  }
  return Status::OK();
}

Status SimFile::Truncate(uint64_t new_size) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  // Extents are kept (no hole punching); only the logical size shrinks.
  size_ = new_size;
  return Status::OK();
}

SimFile::IoResult SimFile::Write(SimTime now, uint64_t offset, Slice data) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  if (data.empty()) return {Status::OK(), now};
  BlockDevice* dev = fs_->device();
  const uint32_t sector = dev->sector_size();
  SimTime t = now;
  SimTime done = now;

  uint64_t pos = offset;
  const char* src = data.data();
  uint64_t remaining = data.size();

  while (remaining > 0) {
    const uint32_t in_sector = static_cast<uint32_t>(pos % sector);
    const uint64_t n = std::min<uint64_t>(sector - in_sector, remaining);

    StatusOr<Lpn> lpn = MapOffset(pos, /*grow=*/true);
    if (!lpn.ok()) return {lpn.status(), t};

    if (in_sector == 0 && n == sector) {
      // Fast path: whole aligned sectors — batch as many as possible into
      // one device command (one NCQ command, amortized firmware cost).
      uint64_t run_sectors = 1;
      while (run_sectors * sector < remaining &&
             (pos / sector + run_sectors) % fs_->options().chunk_sectors !=
                 0 &&
             remaining - run_sectors * sector >= sector) {
        run_sectors++;
      }
      const BlockDevice::Result r =
          dev->Write(t, *lpn, Slice(src, run_sectors * sector));
      if (!r.status.ok()) return {r.status, t};
      done = std::max(done, r.done);
      pos += run_sectors * sector;
      src += run_sectors * sector;
      remaining -= run_sectors * sector;
      continue;
    }

    // Partial sector: read-modify-write.
    std::string old;
    const BlockDevice::Result rr = dev->Read(t, *lpn, 1, &old);
    if (!rr.status.ok()) return {rr.status, t};
    t = rr.done;
    old.resize(sector, '\0');
    old.replace(in_sector, n, src, n);
    const BlockDevice::Result wr = dev->Write(t, *lpn, old);
    if (!wr.status.ok()) return {wr.status, t};
    done = std::max(done, wr.done);
    pos += n;
    src += n;
    remaining -= n;
  }

  if (offset + data.size() > size_) {
    size_ = offset + data.size();
    metadata_dirty_ = true;
  }
  return {Status::OK(), done};
}

CmdId SimFile::SubmitWrite(SimTime now, uint64_t offset, Slice data,
                           SimTime* submit_time) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  PendingCmd p;
  p.id = next_cmd_id_++;
  p.early_status = Status::OK();
  p.submit = now;
  p.sync_done = now;
  SimTime first_entry = now;
  bool first = true;

  BlockDevice* dev = fs_->device();
  const uint32_t sector = dev->sector_size();
  uint64_t pos = offset;
  const char* src = data.data();
  uint64_t remaining = data.size();

  while (remaining > 0) {
    const uint32_t in_sector = static_cast<uint32_t>(pos % sector);
    const uint64_t n = std::min<uint64_t>(sector - in_sector, remaining);

    StatusOr<Lpn> lpn = MapOffset(pos, /*grow=*/true);
    if (!lpn.ok()) {
      p.early_status = lpn.status();
      break;
    }

    if (in_sector == 0 && n == sector) {
      // Whole aligned run: same batching as Write(), but via Submit — all
      // runs are issued at `now`, overlapping in the device.
      uint64_t run_sectors = 1;
      while (run_sectors * sector < remaining &&
             (pos / sector + run_sectors) % fs_->options().chunk_sectors !=
                 0 &&
             remaining - run_sectors * sector >= sector) {
        run_sectors++;
      }
      SimTime entered = now;
      p.parts.push_back(
          dev->Submit(now, BlockDevice::Command::MakeWrite(
                               *lpn, Slice(src, run_sectors * sector)),
                      &entered));
      if (first) {
        first_entry = entered;
        first = false;
      }
      pos += run_sectors * sector;
      src += run_sectors * sector;
      remaining -= run_sectors * sector;
      continue;
    }

    // Partial sector: synchronous read-modify-write, folded into the
    // completion (a real kernel would serialize this path anyway).
    std::string old;
    const BlockDevice::Result rr = dev->Read(now, *lpn, 1, &old);
    if (!rr.status.ok()) {
      p.early_status = rr.status;
      break;
    }
    old.resize(sector, '\0');
    old.replace(in_sector, n, src, n);
    const BlockDevice::Result wr = dev->Write(rr.done, *lpn, old);
    if (!wr.status.ok()) {
      p.early_status = wr.status;
      break;
    }
    p.sync_done = std::max(p.sync_done, wr.done);
    pos += n;
    src += n;
    remaining -= n;
  }

  if (p.early_status.ok() && offset + data.size() > size_) {
    size_ = offset + data.size();
    metadata_dirty_ = true;
  }
  if (submit_time != nullptr) *submit_time = first_entry;
  const CmdId id = p.id;
  pending_.push_back(std::move(p));
  return id;
}

SimFile::Completion SimFile::Resolve(const PendingCmd& p) const {
  Completion c;
  c.id = p.id;
  c.status = p.early_status;
  c.submit = p.submit;
  c.done = p.sync_done;
  const BlockDevice* dev = fs_->device();
  for (CmdId part : p.parts) {
    const BlockDevice::Completion* pc = dev->Find(part);
    if (pc == nullptr) continue;  // Already consumed; sync_done covers it.
    c.done = std::max(c.done, pc->done);
    if (c.status.ok() && !pc->status.ok()) c.status = pc->status;
  }
  return c;
}

std::vector<SimFile::Completion> SimFile::Poll(SimTime now) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  std::vector<Completion> out;
  for (size_t i = 0; i < pending_.size();) {
    Completion c = Resolve(pending_[i]);
    if (c.done <= now) {
      // Consume the device-level parts so they do not accumulate.
      for (CmdId part : pending_[i].parts) {
        (void)fs_->device()->Await(part);
      }
      out.push_back(std::move(c));
      pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Completion& a, const Completion& b) {
                     return a.done < b.done;
                   });
  return out;
}

SimFile::Completion SimFile::Await(CmdId id) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].id != id) continue;
    Completion c = Resolve(pending_[i]);
    for (CmdId part : pending_[i].parts) {
      (void)fs_->device()->Await(part);
    }
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
    return c;
  }
  Completion c;
  c.id = id;
  c.status = Status::InvalidArgument("unknown file command id");
  return c;
}

size_t SimFile::pending_count() const {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  return pending_.size();
}

SimTime SimFile::EarliestPendingDone() const {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  SimTime earliest = kMaxSimTime;
  for (const PendingCmd& p : pending_) {
    earliest = std::min(earliest, Resolve(p).done);
  }
  return earliest;
}

SimFile::IoResult SimFile::Read(SimTime now, uint64_t offset, uint64_t len,
                                std::string* out) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  if (out != nullptr) out->clear();
  if (len == 0) return {Status::OK(), now};
  BlockDevice* dev = fs_->device();
  const uint32_t sector = dev->sector_size();
  SimTime done = now;

  uint64_t pos = offset;
  uint64_t remaining = len;
  while (remaining > 0) {
    const uint32_t in_sector = static_cast<uint32_t>(pos % sector);
    StatusOr<Lpn> lpn = MapOffset(pos, /*grow=*/false);
    if (!lpn.ok()) {
      // Reading a hole / beyond extents: zeros.
      if (out != nullptr) out->append(remaining, '\0');
      break;
    }
    // Batch whole-sector runs within a chunk into one command.
    uint64_t run_sectors = 1;
    if (in_sector == 0) {
      while (run_sectors * sector < remaining &&
             (pos / sector + run_sectors) % fs_->options().chunk_sectors !=
                 0) {
        run_sectors++;
      }
    }
    std::string buf;
    const BlockDevice::Result r = dev->Read(
        now, *lpn, static_cast<uint32_t>(run_sectors),
        out != nullptr ? &buf : nullptr);
    if (!r.status.ok()) return {r.status, now};
    done = std::max(done, r.done);
    const uint64_t n =
        std::min<uint64_t>(run_sectors * sector - in_sector, remaining);
    if (out != nullptr) {
      buf.resize(run_sectors * sector, '\0');
      out->append(buf, in_sector, n);
    }
    pos += n;
    remaining -= n;
  }
  return {Status::OK(), done};
}

SimFile::IoResult SimFile::Sync(SimTime now) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  return fs_->SyncInternal(now, this, /*write_journal=*/true);
}

SimFile::IoResult SimFile::DataSync(SimTime now) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  return fs_->SyncInternal(now, this, /*write_journal=*/false);
}

SimFile::IoResult SimFile::Barrier(SimTime now) {
  std::lock_guard<std::mutex> lock(fs_->latch_);
  return fs_->BarrierInternal(now, this);
}

}  // namespace durassd
