#ifndef DURASSD_HOST_DURABILITY_MODE_H_
#define DURASSD_HOST_DURABILITY_MODE_H_

namespace durassd {

/// How a host expresses commit ordering + durability to the device. The
/// three deployments ROADMAP item 3 contrasts:
///
///   kVolatileFlush     — commodity volatile-cache SSD, write barriers on:
///                        every commit fsync issues FLUSH CACHE and waits
///                        for the drain. Durable and ordered, but the host
///                        pays milliseconds per commit (Fig. 2).
///   kDurableOrderedNcq — the paper's DuraSSD deployment (nobarrier mount):
///                        the capacitor-backed cache makes every
///                        acknowledged write durable and the ordered NCQ
///                        keeps acknowledgement order equal to submission
///                        order, so fsync degenerates to a syscall.
///   kBarrier           — barrier-enabled I/O (Won et al., PAPERS.md): a
///                        commit writes its log records and submits a
///                        BARRIER command that seals the current epoch.
///                        The device persists epochs in order — intra-epoch
///                        reordering allowed, cross-epoch never — so the
///                        host gets ordering without waiting on media.
///                        fsync-for-durability remains at boundaries that
///                        genuinely need the media state (checkpoints,
///                        clean shutdown).
///
/// Engines treat kVolatileFlush and kDurableOrderedNcq identically at the
/// call site (both sync through fsync; the cost difference comes from the
/// device + file-system configuration). kBarrier switches the commit call
/// from Sync to Barrier.
enum class DurabilityMode {
  kVolatileFlush,
  kDurableOrderedNcq,
  kBarrier,
};

inline const char* DurabilityModeName(DurabilityMode m) {
  switch (m) {
    case DurabilityMode::kVolatileFlush: return "volatile+flush";
    case DurabilityMode::kDurableOrderedNcq: return "durable+ordered-ncq";
    case DurabilityMode::kBarrier: return "barrier";
  }
  return "unknown";
}

}  // namespace durassd

#endif  // DURASSD_HOST_DURABILITY_MODE_H_
