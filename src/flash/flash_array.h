#ifndef DURASSD_FLASH_FLASH_ARRAY_H_
#define DURASSD_FLASH_FLASH_ARRAY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "flash/fault_model.h"
#include "flash/geometry.h"

namespace durassd {

/// State of one physical NAND page.
enum class PageState : uint8_t {
  kFree,     ///< Erased, programmable.
  kValid,    ///< Programmed and referenced by the mapping table.
  kInvalid,  ///< Programmed but superseded; reclaimable by GC.
};

/// The NAND flash array: channels x packages x chips x planes of blocks of
/// pages. Models:
///   - erase-before-program and in-order programming within a block,
///   - per-plane and per-channel occupancy for latency/parallelism,
///   - real byte storage (optional, for correctness tests),
///   - torn pages when power is cut mid-program (shorn writes),
///   - per-block wear counters.
///
/// All operations take the caller's virtual issue time and return the
/// completion time; the array never blocks.
class FlashArray {
 public:
  struct Options {
    FlashGeometry geometry;
    /// When false, page contents are not stored (timing-only mode for large
    /// benchmarks); reads return zeros.
    bool store_data = true;
    /// NAND fault injection. All-zero rates (the default) keep the array
    /// bit-for-bit identical to a fault-free build.
    FaultInjector::Options faults{};
  };

  explicit FlashArray(Options options);

  FlashArray(const FlashArray&) = delete;
  FlashArray& operator=(const FlashArray&) = delete;

  const FlashGeometry& geometry() const { return opts_.geometry; }

  /// Reads a physical page. `out` may be nullptr (timing only); otherwise it
  /// is resized to page_size. Reading a free page yields zeros. Returns the
  /// virtual completion time. A torn page is returned as-is (the half-old
  /// half-new bytes); callers detect it via checksums, exactly like a host.
  ///
  /// Raw NAND bit errors (from the fault injector, scaling with the block's
  /// wear) are reported two ways:
  ///   - `raw_bit_errors != nullptr`: the caller is ECC-aware. `out` gets the
  ///     pristine stored bytes and `*raw_bit_errors` the rolled raw error
  ///     count; the caller decides correct/retry/corrupt (the FTL's job).
  ///   - `raw_bit_errors == nullptr`: the caller reads raw media. Bit flips
  ///     are applied to `out` directly.
  SimTime ReadPage(SimTime now, Ppn ppn, std::string* out,
                   uint32_t* raw_bit_errors = nullptr);

  /// Programs an erased page. Enforces NAND constraints: the page must be
  /// free and must be the next unwritten page of its block (in-order
  /// programming). `done` receives the completion time; `start` (optional)
  /// receives the true cell-program start — after the channel transfer and
  /// any wait for the plane — which is what the torn-write model keys on.
  ///
  /// An injected program failure returns IoError after charging the full
  /// program latency; the page is left unusable (invalid, no data) and the
  /// in-order cursor advances past it, as on real NAND where a failed
  /// program still consumes the page.
  Status ProgramPage(SimTime now, Ppn ppn, Slice data, SimTime* done,
                     SimTime* start = nullptr);

  /// Two-plane program (Sec. 2.3 chip-level interleaving): programs one page
  /// on each of two sibling planes of the same chip with a single command.
  /// Both page transfers serialize on the channel, then both planes program
  /// concurrently and share one completion time. Page constraints are checked
  /// per page before anything is charged. Injected program failures are
  /// rolled per page (`failed[i]`); the command returns IoError when either
  /// page failed, and the caller re-drives the failed page(s) individually.
  Status ProgramPagesMultiPlane(SimTime now, Ppn ppn0, Ppn ppn1, Slice data0,
                                Slice data1, SimTime* done, SimTime* start,
                                bool failed[2]);

  /// Earliest time the plane can accept a new operation, including its
  /// channel: max(plane busy_until, channel busy_until).
  SimTime plane_ready_time(uint32_t plane) const;
  SimTime channel_busy_until(uint32_t channel) const {
    return channel_busy_[channel];
  }
  uint32_t ChannelOfPlane(uint32_t plane) const;

  /// Least-busy plane chooser for idle-aware allocation: returns the first
  /// cell-idle plane scanning round-robin from an internal cursor (transfer
  /// occupancy on the channel is ignored — it is two orders of magnitude
  /// cheaper than tPROG and skipping over it de-stripes allocation), or the
  /// plane with the minimal ready time (plane AND channel availability)
  /// when every plane is programming. The cursor keeps allocation
  /// deterministic and striped when everything is idle.
  /// `group` > 1 picks the first plane of the best aligned group of
  /// consecutive planes (e.g. group=2 chooses a chip for a multi-plane
  /// program); the group's ready time is the max over its members.
  uint32_t NextIdlePlane(SimTime now, uint32_t group = 1);

  /// Erases a whole block, returning all its pages to kFree. `done` (if
  /// non-null) receives the completion time.
  ///
  /// An injected erase failure grows a bad block: every page becomes
  /// invalid, the block refuses further programs/erases, and IoError is
  /// returned. The block stays bad across power cycles.
  Status EraseBlock(SimTime now, uint32_t plane, uint32_t block,
                    SimTime* done = nullptr);

  /// Marks a block bad at the FTL's request (e.g. after a program failure,
  /// once its live data has been relocated). Pages become invalid and the
  /// block is excluded from further use.
  void RetireBlock(uint32_t plane, uint32_t block);

  bool is_bad_block(uint32_t plane, uint32_t block) const {
    return BlockAt(plane, block).bad;
  }

  FaultInjector& fault_injector() { return faults_; }

  /// Marks a valid page invalid (superseded); bookkeeping only, free of cost.
  void MarkInvalid(Ppn ppn);

  /// Reverses MarkInvalid when a power-cut rollback resurrects the persisted
  /// mapping of a superseded page (the FTL's lost-write model).
  void RevalidatePage(Ppn ppn);

  PageState page_state(Ppn ppn) const { return states_[ppn]; }
  bool IsTorn(Ppn ppn) const;
  uint32_t erase_count(uint32_t plane, uint32_t block) const;
  uint32_t valid_pages_in_block(uint32_t plane, uint32_t block) const;
  uint32_t next_program_page(uint32_t plane, uint32_t block) const;

  /// Virtual time at which the given plane becomes idle.
  SimTime plane_busy_until(uint32_t plane) const {
    return planes_[plane].busy_until;
  }

  /// Cuts power at time `t`. Any program still in flight at `t` leaves its
  /// page torn (only the first quarter of the new bytes survive); any
  /// program not yet begun is rolled back to kFree. In-flight erases leave
  /// the block in an unusable state until re-erased.
  void PowerCut(SimTime t);

  /// Declares all in-flight operations safely completed. Used when recovery
  /// runs under capacitor protection (Sec. 3.4.2: capacitors are recharged
  /// before recovery so a nested power failure cannot shear the replay).
  void QuiesceInFlight() {
    inflight_programs_.clear();
    inflight_erases_.clear();
  }

  struct Stats {
    uint64_t reads = 0;
    uint64_t programs = 0;
    uint64_t multi_plane_programs = 0;  ///< Two-plane commands (2 pages each).
    uint64_t erases = 0;
    uint64_t torn_pages = 0;
    uint64_t program_fails = 0;  ///< Injected page-program failures.
    uint64_t erase_fails = 0;    ///< Injected block-erase failures.
    uint64_t bad_blocks = 0;     ///< Grown bad blocks (erase-fail + retired).
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Block {
    uint32_t erase_count = 0;
    uint32_t next_page = 0;   ///< In-order programming cursor.
    uint32_t valid_count = 0;
    bool bad = false;         ///< Grown bad block; permanently out of service.
  };
  struct Plane {
    SimTime busy_until = 0;
    std::vector<Block> blocks;
  };
  struct InFlightProgram {
    Ppn ppn;
    SimTime start;
    SimTime done;
  };
  struct InFlightErase {
    uint32_t plane;
    uint32_t block;
    SimTime start;
    SimTime done;
  };

  Block& BlockAt(uint32_t plane, uint32_t block) {
    return planes_[plane].blocks[block];
  }
  const Block& BlockAt(uint32_t plane, uint32_t block) const {
    return planes_[plane].blocks[block];
  }
  /// Reserves the channel for one page transfer starting no earlier than t.
  SimTime ReserveChannel(uint32_t channel, SimTime t);
  /// Shared validation for ProgramPage / ProgramPagesMultiPlane: NAND
  /// constraints that must hold before any time is charged.
  Status CheckProgrammable(Ppn ppn, Slice data) const;
  /// Commits one programmed page (fault roll, state/data update, in-flight
  /// record) given its program window. Returns false on an injected
  /// program failure.
  bool CommitProgram(Ppn ppn, Slice data, SimTime prog_start,
                     SimTime prog_done);
  void PruneInFlight(SimTime now);
  /// Shared tail of EraseBlock-failure and RetireBlock: poisons every page
  /// and takes the block out of service.
  void MarkBad(uint32_t plane, uint32_t block);

  Options opts_;
  std::vector<Plane> planes_;
  std::vector<SimTime> channel_busy_;
  std::vector<PageState> states_;
  std::vector<bool> torn_;
  std::unordered_map<Ppn, std::string> data_;
  std::vector<InFlightProgram> inflight_programs_;
  std::vector<InFlightErase> inflight_erases_;
  /// Round-robin tie-break cursor for NextIdlePlane.
  uint32_t alloc_cursor_ = 0;
  SimTime max_seen_time_ = 0;
  Stats stats_;
  FaultInjector faults_;
};

}  // namespace durassd

#endif  // DURASSD_FLASH_FLASH_ARRAY_H_
