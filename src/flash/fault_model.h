#ifndef DURASSD_FLASH_FAULT_MODEL_H_
#define DURASSD_FLASH_FAULT_MODEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "common/types.h"

namespace durassd {

/// Deterministic, seeded NAND fault injector. Decides, per media operation,
/// whether and how the operation misbehaves:
///
///   - reads suffer raw bit errors whose expected count grows with the
///     block's erase count (wear) — the ECC in the FTL corrects up to its
///     budget, retries beyond it, and reports kCorruption past that,
///   - programs can fail (the FTL retries on a fresh page and retires the
///     block),
///   - erases can fail (the block becomes a grown bad block).
///
/// Two mechanisms coexist:
///   1. Rates: continuous per-operation probabilities, for property sweeps
///      and endurance studies.
///   2. Scripts: one-shot fault points keyed by operation ordinal ("fail the
///      3rd program issued from now"), for targeted tests.
///
/// With all rates at zero and no scripted points the injector is inert: it
/// consumes no randomness and every device behavior is bit-for-bit identical
/// to a build without fault injection.
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 0x5EEDFA11ull;
    /// Mean raw bit errors per page read on a fresh (erase_count == 0)
    /// block. Sampled per read (Poisson).
    double read_bit_flip_mean = 0.0;
    /// Additional mean raw bit errors per erase cycle of the block being
    /// read — wear makes reads noisier.
    double read_bit_flip_per_erase = 0.0;
    /// Probability that a page program fails (status fail from the die).
    double program_fail_rate = 0.0;
    /// Probability that a block erase fails, growing a bad block.
    double erase_fail_rate = 0.0;
  };

  FaultInjector() = default;
  explicit FaultInjector(const Options& options)
      : opts_(options), rng_(options.seed) {}

  const Options& options() const { return opts_; }

  /// True when any fault can ever fire. Checked by the flash array before
  /// every decision point so the zero-fault configuration stays on the
  /// exact seed code path.
  bool enabled() const {
    return opts_.read_bit_flip_mean > 0 || opts_.read_bit_flip_per_erase > 0 ||
           opts_.program_fail_rate > 0 || opts_.erase_fail_rate > 0 ||
           !scripted_read_flips_.empty() || !scripted_program_fails_.empty() ||
           !scripted_erase_fails_.empty();
  }

  // --- Decision points (called by FlashArray, one per media op) ---

  /// Raw bit errors for this page read (0 = clean read).
  uint32_t OnRead(Ppn ppn, uint32_t erase_count);
  /// True when this program must fail.
  bool OnProgram(Ppn ppn);
  /// True when this erase must fail.
  bool OnErase(uint32_t plane, uint32_t block);

  // --- Scripted one-shot fault points ---
  // `n` counts matching operations from the moment of scripting: 0 fires on
  // the very next one. Each point fires exactly once.

  void FailProgramAfter(uint64_t n) {
    scripted_program_fails_.insert(programs_seen_ + n);
  }
  void FailEraseAfter(uint64_t n) {
    scripted_erase_fails_.insert(erases_seen_ + n);
  }
  void FlipBitsOnReadAfter(uint64_t n, uint32_t bits) {
    scripted_read_flips_[reads_seen_ + n] = bits;
  }

  /// Drops every pending scripted fault point (rates are untouched). Lets a
  /// test that scripted a fault storm — e.g. to exhaust the spare blocks —
  /// return the media to health afterwards.
  void ClearScripts() {
    scripted_read_flips_.clear();
    scripted_program_fails_.clear();
    scripted_erase_fails_.clear();
  }

  /// Deterministically flips `bits` bit positions in `page`. Used to
  /// materialize an uncorrectable read as actual corrupted bytes.
  void CorruptPage(std::string* page, uint32_t bits);

 private:
  uint32_t SamplePoisson(double mean);

  Options opts_;
  Random rng_{0x5EEDFA11ull};
  uint64_t reads_seen_ = 0;
  uint64_t programs_seen_ = 0;
  uint64_t erases_seen_ = 0;
  std::map<uint64_t, uint32_t> scripted_read_flips_;
  std::set<uint64_t> scripted_program_fails_;
  std::set<uint64_t> scripted_erase_fails_;
};

}  // namespace durassd

#endif  // DURASSD_FLASH_FAULT_MODEL_H_
