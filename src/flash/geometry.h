#ifndef DURASSD_FLASH_GEOMETRY_H_
#define DURASSD_FLASH_GEOMETRY_H_

#include <cstdint>

#include "common/types.h"

namespace durassd {

/// Physical organization and timing of a NAND flash array.
///
/// The default mirrors the paper's running example (Sec. 2.3): 8 channels,
/// 4 packages per channel, 4 chips per package, 2 planes per chip — a
/// theoretical parallelism of 256 — with 8KB physical pages (Sec. 3.1.2:
/// DuraSSD emulates 4KB logical pages over 8KB NAND pages).
struct FlashGeometry {
  uint32_t channels = 8;
  uint32_t packages_per_channel = 4;
  uint32_t chips_per_package = 4;
  uint32_t planes_per_chip = 2;
  uint32_t blocks_per_plane = 96;
  uint32_t pages_per_block = 64;
  uint32_t page_size = 8 * kKiB;  ///< Physical NAND page size.

  // --- Timing (typical enterprise MLC of the paper's era) ---
  SimTime read_latency = 60 * kMicrosecond;      ///< tR: cell array -> page reg
  SimTime program_latency = 800 * kMicrosecond;  ///< tPROG
  SimTime erase_latency = 3 * kMillisecond;      ///< tBERS
  /// Channel transfer rate: ~400 MB/s ONFI-class bus => 2.5 ns per byte.
  double channel_ns_per_byte = 2.5;

  uint32_t total_planes() const {
    return channels * packages_per_channel * chips_per_package *
           planes_per_chip;
  }
  uint64_t pages_per_plane() const {
    return static_cast<uint64_t>(blocks_per_plane) * pages_per_block;
  }
  uint64_t total_pages() const {
    return static_cast<uint64_t>(total_planes()) * pages_per_plane();
  }
  uint64_t total_bytes() const { return total_pages() * page_size; }
  SimTime channel_transfer_time() const {
    return static_cast<SimTime>(channel_ns_per_byte * page_size);
  }

  // --- PPN encoding: ppn = (plane * blocks_per_plane + block)
  //                         * pages_per_block + page ---
  Ppn MakePpn(uint32_t plane, uint32_t block, uint32_t page) const {
    return (static_cast<uint64_t>(plane) * blocks_per_plane + block) *
               pages_per_block +
           page;
  }
  uint32_t PlaneOf(Ppn ppn) const {
    return static_cast<uint32_t>(ppn / pages_per_plane());
  }
  uint32_t BlockOf(Ppn ppn) const {
    return static_cast<uint32_t>((ppn / pages_per_block) % blocks_per_plane);
  }
  uint32_t PageOf(Ppn ppn) const {
    return static_cast<uint32_t>(ppn % pages_per_block);
  }
  uint32_t ChannelOf(Ppn ppn) const {
    // Planes are numbered channel-major, so dividing by planes-per-channel
    // recovers the channel.
    const uint32_t planes_per_channel =
        packages_per_channel * chips_per_package * planes_per_chip;
    return PlaneOf(ppn) / planes_per_channel;
  }

  /// A tiny geometry for unit tests: 2 channels x 1 x 1 x 2 planes,
  /// 8 blocks x 8 pages of 8KB = 4 planes, 256 pages, 2 MiB.
  static FlashGeometry Tiny() {
    FlashGeometry g;
    g.channels = 2;
    g.packages_per_channel = 1;
    g.chips_per_package = 1;
    g.planes_per_chip = 2;
    g.blocks_per_plane = 8;
    g.pages_per_block = 8;
    return g;
  }
};

}  // namespace durassd

#endif  // DURASSD_FLASH_GEOMETRY_H_
