#include "flash/fault_model.h"

#include <cmath>

namespace durassd {

uint32_t FaultInjector::SamplePoisson(double mean) {
  if (mean <= 0.0) return 0;
  // Knuth's method; means here are small (a handful of bit errors per page)
  // so the expected iteration count is tiny.
  const double limit = std::exp(-mean);
  double product = 1.0;
  uint32_t count = 0;
  do {
    product *= rng_.NextDouble();
    ++count;
  } while (product > limit);
  return count - 1;
}

uint32_t FaultInjector::OnRead(Ppn ppn, uint32_t erase_count) {
  (void)ppn;
  const uint64_t ordinal = reads_seen_++;
  auto it = scripted_read_flips_.find(ordinal);
  if (it != scripted_read_flips_.end()) {
    const uint32_t bits = it->second;
    scripted_read_flips_.erase(it);
    return bits;
  }
  const double mean = opts_.read_bit_flip_mean +
                      opts_.read_bit_flip_per_erase * erase_count;
  if (mean <= 0.0) return 0;
  return SamplePoisson(mean);
}

bool FaultInjector::OnProgram(Ppn ppn) {
  (void)ppn;
  const uint64_t ordinal = programs_seen_++;
  auto it = scripted_program_fails_.find(ordinal);
  if (it != scripted_program_fails_.end()) {
    scripted_program_fails_.erase(it);
    return true;
  }
  if (opts_.program_fail_rate <= 0.0) return false;
  return rng_.Bernoulli(opts_.program_fail_rate);
}

bool FaultInjector::OnErase(uint32_t plane, uint32_t block) {
  (void)plane;
  (void)block;
  const uint64_t ordinal = erases_seen_++;
  auto it = scripted_erase_fails_.find(ordinal);
  if (it != scripted_erase_fails_.end()) {
    scripted_erase_fails_.erase(it);
    return true;
  }
  if (opts_.erase_fail_rate <= 0.0) return false;
  return rng_.Bernoulli(opts_.erase_fail_rate);
}

void FaultInjector::CorruptPage(std::string* page, uint32_t bits) {
  if (page == nullptr || page->empty()) return;
  const uint64_t total_bits = static_cast<uint64_t>(page->size()) * 8;
  for (uint32_t i = 0; i < bits; ++i) {
    const uint64_t bit = rng_.Uniform(total_bits);
    (*page)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
}

}  // namespace durassd
