#include "flash/flash_array.h"

#include <algorithm>
#include <limits>

namespace durassd {

FlashArray::FlashArray(Options options)
    : opts_(std::move(options)), faults_(opts_.faults) {
  const FlashGeometry& g = opts_.geometry;
  planes_.resize(g.total_planes());
  for (auto& plane : planes_) {
    plane.blocks.resize(g.blocks_per_plane);
  }
  channel_busy_.assign(g.channels, 0);
  states_.assign(g.total_pages(), PageState::kFree);
  torn_.assign(g.total_pages(), false);
}

SimTime FlashArray::ReserveChannel(uint32_t channel, SimTime t) {
  const SimTime start = std::max(t, channel_busy_[channel]);
  channel_busy_[channel] = start + opts_.geometry.channel_transfer_time();
  return channel_busy_[channel];
}

SimTime FlashArray::ReadPage(SimTime now, Ppn ppn, std::string* out,
                             uint32_t* raw_bit_errors) {
  const FlashGeometry& g = opts_.geometry;
  max_seen_time_ = std::max(max_seen_time_, now);
  stats_.reads++;

  Plane& plane = planes_[g.PlaneOf(ppn)];
  // Cell-array sense, then transfer the page register over the channel.
  const SimTime sense_start = std::max(now, plane.busy_until);
  const SimTime sense_done = sense_start + g.read_latency;
  plane.busy_until = sense_done;
  const SimTime done = ReserveChannel(g.ChannelOf(ppn), sense_done);

  if (out != nullptr) {
    auto it = data_.find(ppn);
    if (it != data_.end()) {
      *out = it->second;
    } else {
      out->assign(g.page_size, '\0');
    }
  }
  if (raw_bit_errors != nullptr) *raw_bit_errors = 0;
  if (faults_.enabled()) {
    const uint32_t raw = faults_.OnRead(
        ppn, BlockAt(g.PlaneOf(ppn), g.BlockOf(ppn)).erase_count);
    if (raw_bit_errors != nullptr) {
      // ECC-aware caller: report the raw error count, keep `out` pristine.
      *raw_bit_errors = raw;
    } else if (raw > 0 && out != nullptr) {
      // Raw-media caller: the flips land in the returned bytes.
      faults_.CorruptPage(out, raw);
    }
  }
  return done;
}

Status FlashArray::CheckProgrammable(Ppn ppn, Slice data) const {
  const FlashGeometry& g = opts_.geometry;
  if (ppn >= states_.size()) {
    return Status::InvalidArgument("ppn out of range");
  }
  if (states_[ppn] != PageState::kFree) {
    return Status::IoError("program to non-erased page");
  }
  const Block& block = BlockAt(g.PlaneOf(ppn), g.BlockOf(ppn));
  if (block.bad) {
    return Status::IoError("program to bad block");
  }
  if (g.PageOf(ppn) != block.next_page) {
    return Status::IoError("out-of-order program within block");
  }
  if (data.size() > g.page_size) {
    return Status::InvalidArgument("data larger than page");
  }
  return Status::OK();
}

bool FlashArray::CommitProgram(Ppn ppn, Slice data, SimTime prog_start,
                               SimTime prog_done) {
  const FlashGeometry& g = opts_.geometry;
  Block& block = BlockAt(g.PlaneOf(ppn), g.BlockOf(ppn));
  if (faults_.enabled() && faults_.OnProgram(ppn)) {
    // The die reports program-status fail after the full program time. The
    // page is consumed (in-order cursor advances) but holds nothing usable;
    // the FTL must retry elsewhere and retire the block.
    stats_.program_fails++;
    states_[ppn] = PageState::kInvalid;
    torn_[ppn] = true;
    block.next_page++;
    data_.erase(ppn);
    return false;
  }
  states_[ppn] = PageState::kValid;
  torn_[ppn] = false;
  block.next_page++;
  block.valid_count++;
  if (opts_.store_data) {
    std::string& stored = data_[ppn];
    stored.assign(data.data(), data.size());
    stored.resize(g.page_size, '\0');
  }
  inflight_programs_.push_back({ppn, prog_start, prog_done});
  return true;
}

Status FlashArray::ProgramPage(SimTime now, Ppn ppn, Slice data,
                               SimTime* done, SimTime* start) {
  const FlashGeometry& g = opts_.geometry;
  max_seen_time_ = std::max(max_seen_time_, now);
  PruneInFlight(now);
  DURASSD_RETURN_IF_ERROR(CheckProgrammable(ppn, data));

  stats_.programs++;
  Plane& plane = planes_[g.PlaneOf(ppn)];
  // Transfer host->page-register over the channel, then program the cells.
  const SimTime xfer_done = ReserveChannel(g.ChannelOf(ppn), now);
  const SimTime prog_start = std::max(xfer_done, plane.busy_until);
  const SimTime prog_done = prog_start + g.program_latency;
  plane.busy_until = prog_done;
  if (start != nullptr) *start = prog_start;
  *done = prog_done;

  if (!CommitProgram(ppn, data, prog_start, prog_done)) {
    return Status::IoError("program failed");
  }
  return Status::OK();
}

Status FlashArray::ProgramPagesMultiPlane(SimTime now, Ppn ppn0, Ppn ppn1,
                                          Slice data0, Slice data1,
                                          SimTime* done, SimTime* start,
                                          bool failed[2]) {
  const FlashGeometry& g = opts_.geometry;
  max_seen_time_ = std::max(max_seen_time_, now);
  PruneInFlight(now);
  failed[0] = failed[1] = false;

  const uint32_t p0 = g.PlaneOf(ppn0);
  const uint32_t p1 = g.PlaneOf(ppn1);
  if (p0 == p1 || p0 / g.planes_per_chip != p1 / g.planes_per_chip) {
    return Status::InvalidArgument(
        "multi-plane program requires distinct sibling planes of one chip");
  }
  DURASSD_RETURN_IF_ERROR(CheckProgrammable(ppn0, data0));
  DURASSD_RETURN_IF_ERROR(CheckProgrammable(ppn1, data1));

  stats_.programs += 2;
  stats_.multi_plane_programs++;
  // Both page registers load over the (shared) channel back to back, then
  // the single program command drives both planes' cells concurrently: one
  // tPROG window, two pages.
  const uint32_t channel = g.ChannelOf(ppn0);
  const SimTime xfer0 = ReserveChannel(channel, now);
  const SimTime xfer1 = ReserveChannel(channel, xfer0);
  const SimTime prog_start = std::max(
      xfer1, std::max(planes_[p0].busy_until, planes_[p1].busy_until));
  const SimTime prog_done = prog_start + g.program_latency;
  planes_[p0].busy_until = prog_done;
  planes_[p1].busy_until = prog_done;
  if (start != nullptr) *start = prog_start;
  *done = prog_done;

  // Program-status is reported (and fault-rolled) per plane, like real
  // multi-plane NAND: one plane can fail while its sibling succeeds.
  failed[0] = !CommitProgram(ppn0, data0, prog_start, prog_done);
  failed[1] = !CommitProgram(ppn1, data1, prog_start, prog_done);
  if (failed[0] || failed[1]) {
    return Status::IoError("multi-plane program failed");
  }
  return Status::OK();
}

uint32_t FlashArray::ChannelOfPlane(uint32_t plane) const {
  const FlashGeometry& g = opts_.geometry;
  const uint32_t planes_per_channel =
      g.packages_per_channel * g.chips_per_package * g.planes_per_chip;
  return plane / planes_per_channel;
}

SimTime FlashArray::plane_ready_time(uint32_t plane) const {
  return std::max(planes_[plane].busy_until,
                  channel_busy_[ChannelOfPlane(plane)]);
}

uint32_t FlashArray::NextIdlePlane(SimTime now, uint32_t group) {
  const uint32_t n = static_cast<uint32_t>(planes_.size());
  if (group == 0 || group > n) group = 1;
  const uint32_t slots = n / group;
  const uint32_t first = (alloc_cursor_ / group) % slots;
  uint32_t best_slot = first;
  SimTime best_ready = std::numeric_limits<SimTime>::max();
  for (uint32_t i = 0; i < slots; ++i) {
    const uint32_t slot = (first + i) % slots;
    SimTime cell_busy = 0;
    SimTime ready = 0;
    for (uint32_t j = 0; j < group; ++j) {
      cell_busy = std::max(cell_busy, planes_[slot * group + j].busy_until);
      ready = std::max(ready, plane_ready_time(slot * group + j));
    }
    if (cell_busy <= now) {
      // Cell-idle: the first such slot from the cursor wins — the
      // round-robin striping tie-break. Channel occupancy is deliberately
      // ignored here: a pending transfer costs tens of microseconds while
      // a program occupies the cells for tPROG, and skipping a whole
      // channel's planes over a transfer makes consecutive batches cluster
      // onto a near-constant plane set (the cursor barely advances), which
      // concentrates freshly written — soon re-read — data on exactly the
      // planes the next batch keeps busy.
      best_slot = slot;
      break;
    }
    // No cell-idle slot: fall back to the earliest actual availability,
    // channel wait included.
    if (ready < best_ready) {
      best_slot = slot;
      best_ready = ready;
    }
  }
  alloc_cursor_ = ((best_slot + 1) * group) % n;
  return best_slot * group;
}

Status FlashArray::EraseBlock(SimTime now, uint32_t plane_idx,
                              uint32_t block_idx, SimTime* done_out) {
  const FlashGeometry& g = opts_.geometry;
  max_seen_time_ = std::max(max_seen_time_, now);
  PruneInFlight(now);

  Plane& plane = planes_[plane_idx];
  Block& block = plane.blocks[block_idx];
  if (block.bad) {
    if (done_out != nullptr) *done_out = now;
    return Status::IoError("erase of bad block");
  }
  stats_.erases++;
  const SimTime start = std::max(now, plane.busy_until);
  const SimTime done = start + g.erase_latency;
  plane.busy_until = done;
  if (done_out != nullptr) *done_out = done;

  if (faults_.enabled() && faults_.OnErase(plane_idx, block_idx)) {
    // Erase-status fail: the block becomes a grown bad block. Its contents
    // are indeterminate, so nothing may trust or reuse it.
    stats_.erase_fails++;
    block.erase_count++;  // The failed cycle still stressed the cells.
    MarkBad(plane_idx, block_idx);
    return Status::IoError("erase failed");
  }

  const Ppn first = g.MakePpn(plane_idx, block_idx, 0);
  for (uint32_t p = 0; p < g.pages_per_block; ++p) {
    states_[first + p] = PageState::kFree;
    torn_[first + p] = false;
    data_.erase(first + p);
  }
  block.erase_count++;
  block.next_page = 0;
  block.valid_count = 0;
  inflight_erases_.push_back({plane_idx, block_idx, start, done});
  return Status::OK();
}

void FlashArray::MarkBad(uint32_t plane_idx, uint32_t block_idx) {
  const FlashGeometry& g = opts_.geometry;
  Block& block = BlockAt(plane_idx, block_idx);
  block.bad = true;
  block.valid_count = 0;
  block.next_page = g.pages_per_block;  // No page is programmable.
  stats_.bad_blocks++;
  const Ppn first = g.MakePpn(plane_idx, block_idx, 0);
  for (uint32_t p = 0; p < g.pages_per_block; ++p) {
    states_[first + p] = PageState::kInvalid;
    torn_[first + p] = true;
    data_.erase(first + p);
  }
}

void FlashArray::RetireBlock(uint32_t plane_idx, uint32_t block_idx) {
  if (BlockAt(plane_idx, block_idx).bad) return;
  MarkBad(plane_idx, block_idx);
}

void FlashArray::MarkInvalid(Ppn ppn) {
  if (states_[ppn] == PageState::kValid) {
    states_[ppn] = PageState::kInvalid;
    const FlashGeometry& g = opts_.geometry;
    Block& block = BlockAt(g.PlaneOf(ppn), g.BlockOf(ppn));
    if (block.valid_count > 0) block.valid_count--;
  }
}

void FlashArray::RevalidatePage(Ppn ppn) {
  if (states_[ppn] == PageState::kInvalid) {
    states_[ppn] = PageState::kValid;
    const FlashGeometry& g = opts_.geometry;
    BlockAt(g.PlaneOf(ppn), g.BlockOf(ppn)).valid_count++;
  }
}

bool FlashArray::IsTorn(Ppn ppn) const { return torn_[ppn]; }

uint32_t FlashArray::erase_count(uint32_t plane, uint32_t block) const {
  return BlockAt(plane, block).erase_count;
}

uint32_t FlashArray::valid_pages_in_block(uint32_t plane,
                                          uint32_t block) const {
  return BlockAt(plane, block).valid_count;
}

uint32_t FlashArray::next_program_page(uint32_t plane, uint32_t block) const {
  return BlockAt(plane, block).next_page;
}

void FlashArray::PruneInFlight(SimTime now) {
  // Keep the in-flight lists short: entries whose completion precedes every
  // possible future power-cut instant (<= max_seen_time_) can never be torn.
  if (inflight_programs_.size() > 4096) {
    std::erase_if(inflight_programs_, [this](const InFlightProgram& p) {
      return p.done <= max_seen_time_;
    });
  }
  if (inflight_erases_.size() > 1024) {
    std::erase_if(inflight_erases_, [this](const InFlightErase& e) {
      return e.done <= max_seen_time_;
    });
  }
  (void)now;
}

void FlashArray::PowerCut(SimTime t) {
  const FlashGeometry& g = opts_.geometry;
  for (const InFlightProgram& p : inflight_programs_) {
    if (p.done <= t) continue;  // Finished before the cut.
    Block& block = BlockAt(g.PlaneOf(p.ppn), g.BlockOf(p.ppn));
    if (p.start >= t) {
      // Never started: the page is still erased.
      states_[p.ppn] = PageState::kFree;
      data_.erase(p.ppn);
      if (block.valid_count > 0) block.valid_count--;
      // The in-order cursor stays where it is; the FTL will treat this
      // block's remaining pages as unusable until erased, which is what a
      // real controller does after an unclean shutdown.
    } else {
      // Interrupted mid-program: a shorn write. Cells are programmed in
      // interleaved passes, so only a prefix (about a quarter) of the page
      // holds trustworthy data; every logical sector sharing the page is
      // torn. The rest reads as erased.
      torn_[p.ppn] = true;
      stats_.torn_pages++;
      if (opts_.store_data) {
        auto it = data_.find(p.ppn);
        if (it != data_.end()) {
          std::string& bytes = it->second;
          for (size_t i = bytes.size() / 4; i < bytes.size(); ++i) {
            bytes[i] = '\0';
          }
        }
      }
    }
  }
  inflight_programs_.clear();

  for (const InFlightErase& e : inflight_erases_) {
    if (e.done <= t) continue;
    // An interrupted erase leaves the block with indeterminate contents;
    // mark every page invalid (and torn) so nothing trusts it until a clean
    // re-erase.
    Block& block = BlockAt(e.plane, e.block);
    const Ppn first = g.MakePpn(e.plane, e.block, 0);
    for (uint32_t p = 0; p < g.pages_per_block; ++p) {
      states_[first + p] = PageState::kInvalid;
      torn_[first + p] = true;
      data_.erase(first + p);
    }
    block.valid_count = 0;
    block.next_page = g.pages_per_block;  // Unusable until erased again.
  }
  inflight_erases_.clear();

  // Plane/channel reservations collapse: after power is restored the device
  // starts idle.
  for (auto& plane : planes_) plane.busy_until = 0;
  std::fill(channel_busy_.begin(), channel_busy_.end(), 0);
  alloc_cursor_ = 0;
  max_seen_time_ = 0;
}

}  // namespace durassd
