#include "db/wal.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"

namespace durassd {

std::string WalRecord::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(type));
  PutFixed64(&out, txn);
  PutFixed32(&out, tree);
  PutLengthPrefixed(&out, key);
  PutLengthPrefixed(&out, value);
  out.push_back(has_old ? 1 : 0);
  PutLengthPrefixed(&out, old_value);
  return out;
}

bool WalRecord::Decode(Slice payload, WalRecord* out) {
  if (payload.empty()) return false;
  out->type = static_cast<WalRecordType>(payload[0]);
  payload.remove_prefix(1);
  uint64_t txn = 0;
  uint32_t tree = 0;
  Slice key, value, old_value;
  if (!GetFixed64(&payload, &txn)) return false;
  if (!GetFixed32(&payload, &tree)) return false;
  if (!GetLengthPrefixed(&payload, &key)) return false;
  if (!GetLengthPrefixed(&payload, &value)) return false;
  if (payload.empty()) return false;
  out->has_old = payload[0] != 0;
  payload.remove_prefix(1);
  if (!GetLengthPrefixed(&payload, &old_value)) return false;
  out->txn = txn;
  out->tree = tree;
  out->key = key.ToString();
  out->value = value.ToString();
  out->old_value = old_value.ToString();
  return true;
}

Wal::Wal(SimFile* file, Options options) : file_(file), opts_(options) {
  if (opts_.metrics != nullptr) {
    h_sync_ns_ = opts_.metrics->GetHistogram("wal.sync_ns");
    h_group_size_ = opts_.metrics->GetHistogram("wal.group_commit_size");
    c_appends_ = opts_.metrics->Counter("wal.appends");
    c_group_rides_ = opts_.metrics->Counter("wal.group_rides");
    c_barrier_commits_ = opts_.metrics->Counter("wal.barrier_commits");
  }
}

namespace {
constexpr uint32_t kFrameHeader = 12;  // [len u32][gen u32][crc u32]
}  // namespace

Lsn Wal::Append(const WalRecord& record) {
  const std::string payload = record.Encode();
  const Lsn lsn = next_lsn_;
  PutFixed32(&tail_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&tail_, generation_);
  PutFixed32(&tail_, Crc32c(payload.data(), payload.size()));
  tail_.append(payload);
  next_lsn_ += kFrameHeader + payload.size();
  stats_.appends++;
  if (c_appends_) ++*c_appends_;
  if (tracer_) {
    tracer_->Record(0, TraceEventType::kWalAppend, lsn, payload.size());
  }
  return lsn;
}

Status Wal::WriteOut(IoContext& io) {
  if (tail_.empty()) return Status::OK();
  const uint64_t offset = written_lsn_;
  const SimFile::IoResult r = file_->Write(io.now, offset, tail_);
  DURASSD_RETURN_IF_ERROR(r.status);
  io.AdvanceTo(r.done);
  stats_.bytes_written += tail_.size();
  written_lsn_ = next_lsn_;
  tail_.clear();
  return Status::OK();
}

void Wal::PadToBoundary() {
  const uint32_t align = opts_.pad_to_bytes;
  if (align == 0 || next_lsn_ % align == 0) return;
  uint64_t gap = align - next_lsn_ % align;
  // A frame needs at least a header plus the one-byte record type; when
  // the hole is smaller, pad through the whole next sector instead.
  if (gap < kFrameHeader + 1) gap += align;
  std::string payload(gap - kFrameHeader, '\0');
  payload[0] = static_cast<char>(WalRecordType::kPad);
  PutFixed32(&tail_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&tail_, generation_);
  PutFixed32(&tail_, Crc32c(payload.data(), payload.size()));
  tail_.append(payload);
  next_lsn_ += gap;
  stats_.pad_bytes += gap;
}

void Wal::NoteCommitDurable(SimTime done) {
  if (done == last_sync_done_) {
    cur_group_++;
  } else {
    if (cur_group_ > 0 && h_group_size_ != nullptr) {
      h_group_size_->Record(static_cast<int64_t>(cur_group_));
    }
    cur_group_ = 1;
    stats_.sync_groups++;
    last_sync_done_ = done;
  }
  stats_.max_group_commit = std::max(stats_.max_group_commit, cur_group_);
}

Status Wal::SyncTo(IoContext& io, Lsn lsn) {
  const SimTime entered = io.now;
  // Group commit: if a device flush already in flight covers this LSN,
  // ride it instead of issuing another (InnoDB's group commit).
  if (lsn < pending_sync_lsn_ && io.now < pending_sync_done_) {
    io.AdvanceTo(pending_sync_done_);
    stats_.group_rides++;
    NoteCommitDurable(pending_sync_done_);
    if (c_group_rides_) ++*c_group_rides_;
    if (h_sync_ns_) h_sync_ns_->Record(io.now - entered);
    return Status::OK();
  }
  // Seal the tail sector before making it durable: once fsynced, this
  // sector must never be rewritten by a later append (a torn rewrite
  // would destroy already-durable frames sharing it).
  if (next_lsn_ > synced_lsn_) PadToBoundary();
  if (lsn > written_lsn_ || !tail_.empty()) {
    DURASSD_RETURN_IF_ERROR(WriteOut(io));
  }
  // Barrier mode (Won et al.): the commit is made durable *and ordered* by
  // the device's epoch machinery — the barrier submission returns at
  // command-processing cost instead of waiting for a flush drain. The
  // other modes pay the fsync (whose cost the device configuration sets).
  const bool use_barrier =
      opts_.durability_mode == DurabilityMode::kBarrier;
  const SimFile::IoResult r =
      use_barrier ? file_->Barrier(io.now) : file_->Sync(io.now);
  DURASSD_RETURN_IF_ERROR(r.status);
  if (use_barrier) {
    stats_.barrier_commits++;
    if (c_barrier_commits_) ++*c_barrier_commits_;
  }
  pending_sync_lsn_ = written_lsn_;
  pending_sync_done_ = r.done;
  synced_lsn_ = written_lsn_;
  io.AdvanceTo(r.done);
  stats_.syncs++;
  NoteCommitDurable(r.done);
  if (h_sync_ns_) h_sync_ns_->Record(io.now - entered);
  return Status::OK();
}

Status Wal::EnsureWritten(IoContext& io, Lsn lsn) {
  if (lsn >= written_lsn_) {
    return WriteOut(io);
  }
  return Status::OK();
}

Status Wal::ReadFrom(IoContext& io, Lsn from, uint32_t gen,
                     std::vector<WalRecord>* out, Lsn* end_lsn) {
  out->clear();
  Lsn pos = from;
  const Lsn end = file_->size();
  while (pos + kFrameHeader <= end) {
    std::string framing;
    SimFile::IoResult r = file_->Read(io.now, pos, kFrameHeader, &framing);
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    Slice f(framing);
    uint32_t len = 0, frame_gen = 0, crc = 0;
    GetFixed32(&f, &len);
    GetFixed32(&f, &frame_gen);
    GetFixed32(&f, &crc);
    if (len == 0 || frame_gen != gen || pos + kFrameHeader + len > end) {
      break;  // Torn tail or stale generation.
    }
    std::string payload;
    r = file_->Read(io.now, pos + kFrameHeader, len, &payload);
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    if (Crc32c(payload.data(), payload.size()) != crc) break;  // Torn tail.
    if (!payload.empty() &&
        payload[0] == static_cast<char>(WalRecordType::kPad)) {
      pos += kFrameHeader + len;  // Sector filler: consume, don't emit.
      continue;
    }
    WalRecord rec;
    if (!WalRecord::Decode(payload, &rec)) break;
    rec.lsn = pos;
    out->push_back(std::move(rec));
    pos += kFrameHeader + len;
  }
  if (end_lsn != nullptr) *end_lsn = pos;
  return Status::OK();
}

Status Wal::TruncateTail(Lsn lsn) {
  if (file_->size() <= lsn) return Status::OK();
  return file_->Truncate(lsn);
}

void Wal::ResetTo(Lsn lsn, uint32_t gen) {
  next_lsn_ = lsn;
  written_lsn_ = lsn;
  synced_lsn_ = lsn;
  last_checkpoint_lsn_ = lsn;
  generation_ = gen;
  tail_.clear();
}

}  // namespace durassd
