#ifndef DURASSD_DB_DATABASE_H_
#define DURASSD_DB_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "common/trace.h"
#include "db/btree.h"
#include "db/buffer_pool.h"
#include "db/double_write_buffer.h"
#include "db/io_context.h"
#include "db/wal.h"
#include "host/sim_file.h"

namespace durassd {

/// minibase: the relational storage engine used as the MySQL/InnoDB (and,
/// with per-write barriers, commercial-RDBMS) stand-in. Provides:
///   - named B+-trees ("tables"),
///   - single-writer transactions with redo/undo WAL and commit-time log
///     sync (fsync per commit, like the paper's configuration),
///   - a buffer pool with LRU eviction and the no-steal rule,
///   - optional InnoDB-style double-write (the atomicity redundancy that
///     DuraSSD eliminates),
///   - sharp checkpoints with log recycling,
///   - deterministic replay + loser-undo crash recovery with torn-page
///     detection via page checksums.
///
/// Concurrency model: the virtual-time scheduler runs one transaction at a
/// time, so no latching/locking is simulated; client concurrency shows up
/// as device/CPU contention, which is what the paper's experiments vary.
class Database : public PageAllocator {
 public:
  struct Options {
    uint32_t page_size = 4 * kKiB;        ///< 4/8/16 KB (the paper's sweep).
    uint64_t pool_bytes = 64 * kMiB;
    bool double_write = true;             ///< InnoDB doublewrite on/off.
    uint32_t dwb_batch_pages = 24;
    uint64_t checkpoint_log_bytes = 64 * kMiB;
    /// CPU time charged per engine operation (32-way, like the testbed).
    SimTime cpu_per_op = 12 * kMicrosecond;
    uint32_t cpu_parallelism = 32;
    /// When true, every page write is followed by fsync — the commercial
    /// RDBMS's O_DSYNC behaviour in the TPC-C experiment (Sec. 4.3.2).
    bool sync_every_page_write = false;
    /// Queue depth for checkpoint page destaging (direct-write path only);
    /// <= 1 keeps the serial pre-async behavior.
    uint32_t checkpoint_queue_depth = 1;
    /// Queue depth for double-write home-location writes; 0 = issue all at
    /// once and wait for the slowest (pre-async behavior).
    uint32_t dwb_home_write_depth = 0;
    /// Commit durability discipline, threaded into the WAL and the
    /// double-write buffer. kBarrier turns fsync-for-ordering into barrier
    /// submissions; checkpoints keep a real fsync (the data pages must be
    /// on media before the checkpoint record claims they are).
    DurabilityMode durability_mode = DurabilityMode::kDurableOrderedNcq;
  };

  struct Stats {
    uint64_t txns_committed = 0;
    uint64_t txns_aborted = 0;
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
    uint64_t scans = 0;
    uint64_t checkpoints = 0;
    uint64_t recovered_records = 0;
    uint64_t undone_loser_txns = 0;
    uint64_t torn_pages_repaired = 0;
    uint64_t degraded_aborts = 0;  ///< In-flight txns aborted on device
                                   ///< degradation.
    /// Checkpoint WAL syncs downgraded to plain write-out because the log
    /// device has an ordered durable queue (Sec. 3.3): every acknowledged
    /// write is already durable and ordered, so the pre-destage FLUSH adds
    /// nothing.
    uint64_t ordered_wal_elisions = 0;
  };

  /// Opens (creating or recovering) a database. `data_fs` holds data +
  /// double-write files; `log_fs` holds the WAL (the paper uses a separate
  /// log device). They may be the same file system.
  static StatusOr<std::unique_ptr<Database>> Open(IoContext& io,
                                                  SimFileSystem* data_fs,
                                                  SimFileSystem* log_fs,
                                                  Options options);

  ~Database() override = default;

  // --- Schema ---
  StatusOr<uint32_t> CreateTree(IoContext& io, const std::string& name);
  StatusOr<uint32_t> GetTreeId(const std::string& name) const;

  // --- Transactions (one active at a time; see class comment) ---
  StatusOr<TxnId> Begin(IoContext& io);
  Status Put(IoContext& io, TxnId txn, uint32_t tree, Slice key, Slice value);
  Status Delete(IoContext& io, TxnId txn, uint32_t tree, Slice key);
  Status Commit(IoContext& io, TxnId txn);
  Status Abort(IoContext& io, TxnId txn);

  // --- Reads (no transaction required) ---
  Status Get(IoContext& io, uint32_t tree, Slice key, std::string* value);
  Status Scan(IoContext& io, uint32_t tree, Slice start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);
  Status CountRange(IoContext& io, uint32_t tree, Slice start, Slice end,
                    size_t cap, uint64_t* count);

  /// Sharp checkpoint: flush everything, advance the master record, and
  /// recycle the log.
  Status Checkpoint(IoContext& io);

  // --- PageAllocator ---
  StatusOr<PageId> AllocatePage(IoContext& io) override;

  /// True once the engine switched to read-only because the device entered
  /// degraded mode (writes failing with kResourceExhausted). Mutations are
  /// rejected; reads keep working from the recovered/committed state.
  bool read_only() const { return read_only_; }

  const Stats& stats() const { return stats_; }
  BufferPool::Stats pool_stats() const { return pool_->stats(); }
  const Wal::Stats& wal_stats() const { return wal_->stats(); }
  const Options& options() const { return opts_; }
  BufferPool* pool() { return pool_.get(); }

  /// Engine-level latency attribution (txn time, commit fsync, WAL sync,
  /// double-write batches).
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Attaches (or detaches, with nullptr) an event tracer for engine +
  /// WAL + double-write events. Recording never advances virtual time.
  void set_tracer(Tracer* tracer);
  Tracer* tracer() const { return tracer_; }

 private:
  struct TreeInfo {
    uint32_t id;
    std::string name;
    PageId root;
  };
  struct UndoOp {
    bool was_put;
    uint32_t tree;
    std::string key;
    bool had_old;
    std::string old_value;
  };
  struct ActiveTxn {
    TxnId id = 0;
    SimTime begin_time = 0;  ///< io.now at Begin (db.txn_ns sample).
    std::vector<UndoOp> undo;
    std::vector<PageId> dirtied;
  };

  Database(SimFileSystem* data_fs, SimFileSystem* log_fs, Options options);

  Status Initialize(IoContext& io);
  Status Recover(IoContext& io);
  Status PutImpl(IoContext& io, TxnId txn, uint32_t tree, Slice key,
                 Slice value);
  Status DeleteImpl(IoContext& io, TxnId txn, uint32_t tree, Slice key);
  Status CommitImpl(IoContext& io, TxnId txn);
  Status CheckpointImpl(IoContext& io);
  /// Switches to read-only mode: rolls the in-flight transaction back
  /// in memory (no WAL appends, no device syncs — the device rejects
  /// writes), then rejects all further mutations.
  void EnterReadOnly(IoContext& io, const Status& cause);
  Status ReadOnlyError() const;
  Status ReplayRecords(IoContext& io, const std::vector<WalRecord>& records);
  std::string SerializeMeta(Lsn ckpt_lsn, uint32_t gen) const;
  Status ParseMeta(Slice blob, Lsn* ckpt_lsn, uint32_t* gen);
  Status WriteMetaPage(IoContext& io, Lsn ckpt_lsn, uint32_t gen);
  /// Pre-replay pass: restore torn home pages from double-write copies.
  Status RepairTornPages(IoContext& io);
  BTree* TreeById(uint32_t id);
  void SyncRootPointers();
  void ChargeCpu(IoContext& io);
  Status MaybeCheckpoint(IoContext& io);

  SimFileSystem* data_fs_;
  SimFileSystem* log_fs_;
  Options opts_;
  /// Declared before wal_/dwb_ construction sites use it (Open passes
  /// &metrics_ into their Options).
  MetricsRegistry metrics_;

  SimFile* data_file_ = nullptr;
  SimFile* dwb_file_ = nullptr;
  SimFile* wal_file_ = nullptr;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<DoubleWriteBuffer> dwb_;
  std::unique_ptr<BufferPool> pool_;

  std::map<std::string, uint32_t> tree_names_;
  std::unordered_map<uint32_t, TreeInfo> tree_info_;
  std::unordered_map<uint32_t, std::unique_ptr<BTree>> trees_;
  uint32_t next_tree_id_ = 1;
  PageId next_page_ = 1;  ///< Page 0 is the meta page.
  TxnId next_txn_ = 1;
  ActiveTxn active_;
  bool in_recovery_ = false;
  /// True when the WAL device guarantees ordered durable acknowledgment
  /// (BlockDevice::ordered_writes); enables the checkpoint sync elision.
  bool log_ordered_ = false;
  bool read_only_ = false;
  /// Set when the in-memory rollback on degradation could not complete:
  /// the cached state is no longer trustworthy, so reads fail too.
  bool poisoned_ = false;
  std::string degraded_reason_;

  ResourceTimeline cpu_;
  Stats stats_;

  Tracer* tracer_ = nullptr;
  /// Registered in the constructor (always non-null).
  Histogram* h_txn_ns_;
  Histogram* h_fsync_ns_;
  MetricCounter* c_degraded_aborts_;
};

}  // namespace durassd

#endif  // DURASSD_DB_DATABASE_H_
