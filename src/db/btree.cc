#include "db/btree.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace durassd {

namespace {
void PutU16(std::string* dst, uint16_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 2);
}
uint16_t GetU16(const char* p) {
  uint16_t v;
  memcpy(&v, p, 2);
  return v;
}
}  // namespace

BTree::BTree(BufferPool* pool, PageAllocator* alloc, PageId root)
    : pool_(pool), alloc_(alloc), root_(root) {}

std::string BTree::EncodeLeafCell(Slice key, Slice value) {
  std::string cell;
  cell.reserve(6 + key.size() + value.size());
  PutU16(&cell, static_cast<uint16_t>(6 + key.size() + value.size()));
  PutU16(&cell, static_cast<uint16_t>(key.size()));
  PutU16(&cell, static_cast<uint16_t>(value.size()));
  cell.append(key.data(), key.size());
  cell.append(value.data(), value.size());
  return cell;
}

std::string BTree::EncodeInternalCell(Slice key, PageId child) {
  std::string cell;
  cell.reserve(12 + key.size());
  PutU16(&cell, static_cast<uint16_t>(12 + key.size()));
  PutU16(&cell, static_cast<uint16_t>(key.size()));
  cell.append(reinterpret_cast<const char*>(&child), 8);
  cell.append(key.data(), key.size());
  return cell;
}

Slice BTree::LeafKey(Slice cell) {
  const uint16_t klen = GetU16(cell.data() + 2);
  return Slice(cell.data() + 6, klen);
}

Slice BTree::LeafValue(Slice cell) {
  const uint16_t klen = GetU16(cell.data() + 2);
  const uint16_t vlen = GetU16(cell.data() + 4);
  return Slice(cell.data() + 6 + klen, vlen);
}

Slice BTree::InternalKey(Slice cell) {
  const uint16_t klen = GetU16(cell.data() + 2);
  return Slice(cell.data() + 12, klen);
}

PageId BTree::InternalChild(Slice cell) {
  PageId child;
  memcpy(&child, cell.data() + 4, 8);
  return child;
}

uint16_t BTree::LowerBound(const Page& page, bool leaf, Slice key,
                           bool* exact) {
  *exact = false;
  uint16_t lo = 0;
  uint16_t hi = page.nslots();
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    const Slice cell = page.CellAt(mid);
    const Slice mid_key = leaf ? LeafKey(cell) : InternalKey(cell);
    const int cmp = mid_key.compare(key);
    if (cmp == 0) {
      *exact = true;
      return mid;
    }
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId BTree::DescendChild(const Page& page, Slice key) {
  bool exact = false;
  const uint16_t slot = LowerBound(page, /*leaf=*/false, key, &exact);
  if (exact) return InternalChild(page.CellAt(slot));
  if (slot == 0) return page.header()->aux1;  // Leftmost child.
  return InternalChild(page.CellAt(slot - 1));
}

StatusOr<PageId> BTree::Create(IoContext& io, BufferPool* pool,
                               PageAllocator* alloc, const MutationCtx& m) {
  StatusOr<PageId> id = alloc->AllocatePage(io);
  if (!id.ok()) return id.status();
  StatusOr<PageRef> ref = pool->Fix(io, *id, /*create=*/true);
  if (!ref.ok()) return ref.status();
  (*ref)->Format(*id, PageType::kBTreeLeaf);
  pool->MarkDirty(*id, m.lsn, m.txn);
  if (m.dirtied != nullptr) m.dirtied->push_back(*id);
  return *id;
}

// Both descents read a node's type *before* latching it (to pick the latch
// mode). This is sound: a page's type byte is written once at Format and
// never again (pages are never freed or repurposed — deletes do not merge),
// and the pin taken by Fix orders the read after any frame reload.

Status BTree::FindLeafRead(IoContext& io, Slice key, bool exclusive_leaf,
                           Latched* leaf) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const PageId root_id = root_.load(std::memory_order_acquire);
    PageId current = root_id;
    Latched parent;
    bool restart = false;
    for (int depth = 0; depth < 64; ++depth) {
      StatusOr<PageRef> ref_or = pool_->Fix(io, current, /*create=*/false);
      if (!ref_or.ok()) return ref_or.status();
      PageRef ref = std::move(*ref_or);
      const PageType type = ref->type();
      if (type != PageType::kBTreeLeaf && type != PageType::kBTreeInternal) {
        return Status::Corruption("unexpected page type in btree descent");
      }
      const bool is_leaf = type == PageType::kBTreeLeaf;
      const int mode = (is_leaf && exclusive_leaf) ? 2 : 1;
      if (mode == 2) {
        ref.latch()->lock();
      } else {
        ref.latch()->lock_shared();
      }
      Latched node(std::move(ref), mode);
      if (depth == 0 &&
          root_.load(std::memory_order_acquire) != root_id) {
        // The root we latched was split from under us; the upper half of
        // its keys now lives under the new root. Retry from the top.
        restart = true;
        break;
      }
      parent.Drop();  // The child latch is held; the parent may go.
      if (is_leaf) {
        *leaf = std::move(node);
        return Status::OK();
      }
      current = DescendChild(*node, key);
      if (current == kInvalidPageId) {
        return Status::Corruption("invalid child pointer");
      }
      parent = std::move(node);
    }
    if (!restart) return Status::Corruption("btree deeper than 64 levels");
  }
  return Status::Busy("btree root kept splitting during descent");
}

Status BTree::FindLeafWrite(IoContext& io, Slice key, size_t leaf_need,
                            std::vector<Latched>* path, Latched* leaf) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    path->clear();
    const PageId root_id = root_.load(std::memory_order_acquire);
    PageId current = root_id;
    bool restart = false;
    for (int depth = 0; depth < 64; ++depth) {
      StatusOr<PageRef> ref_or = pool_->Fix(io, current, /*create=*/false);
      if (!ref_or.ok()) return ref_or.status();
      PageRef ref = std::move(*ref_or);
      const PageType type = ref->type();
      if (type != PageType::kBTreeLeaf && type != PageType::kBTreeInternal) {
        return Status::Corruption("unexpected page type in btree descent");
      }
      ref.latch()->lock();
      Latched node(std::move(ref), 2);
      if (depth == 0 &&
          root_.load(std::memory_order_acquire) != root_id) {
        restart = true;
        break;
      }
      const bool is_leaf = type == PageType::kBTreeLeaf;
      // "Safe" = this node will absorb the worst insert that can reach it
      // without splitting, so no split can propagate above it: retained
      // ancestors are released. The node itself stays in the path — it is
      // where an upward-propagating split stops. InsertCell compacts
      // internally, so FreeSpace() is the exact criterion.
      const size_t need = is_leaf ? leaf_need : WorstInternalNeed();
      if (node->FreeSpace() >= need) path->clear();
      if (is_leaf) {
        *leaf = std::move(node);
        return Status::OK();
      }
      current = DescendChild(*node, key);
      if (current == kInvalidPageId) {
        return Status::Corruption("invalid child pointer");
      }
      path->push_back(std::move(node));
    }
    if (!restart) return Status::Corruption("btree deeper than 64 levels");
  }
  return Status::Busy("btree root kept splitting during descent");
}

Status BTree::Put(IoContext& io, const MutationCtx& m, Slice key,
                  Slice value, std::string* old_value, bool* had_old) {
  if (key.size() > max_key_size() || key.empty()) {
    return Status::InvalidArgument("key size out of range");
  }
  if (value.size() > max_value_size()) {
    return Status::InvalidArgument("value too large");
  }
  if (had_old != nullptr) *had_old = false;

  const std::string cell = EncodeLeafCell(key, value);
  std::vector<Latched> path;
  Latched leaf;
  DURASSD_RETURN_IF_ERROR(
      FindLeafWrite(io, key, cell.size() + 2, &path, &leaf));

  bool exact = false;
  const uint16_t slot = LowerBound(*leaf, /*leaf=*/true, key, &exact);

  if (exact) {
    if (old_value != nullptr) {
      *old_value = LeafValue(leaf->CellAt(slot)).ToString();
    }
    if (had_old != nullptr) *had_old = true;
    if (leaf->ReplaceCell(slot, cell)) {
      Dirty(m, leaf.ref.id());
      return Status::OK();
    }
    // Did not fit even after compaction: fall through to split; the old
    // cell was already removed by ReplaceCell's remove+insert attempt.
    Dirty(m, leaf.ref.id());
    return SplitAndInsert(io, m, std::move(path), std::move(leaf), key, cell);
  }

  if (leaf->InsertCell(slot, cell)) {
    Dirty(m, leaf.ref.id());
    return Status::OK();
  }
  return SplitAndInsert(io, m, std::move(path), std::move(leaf), key, cell);
}

Status BTree::SplitAndInsert(IoContext& io, const MutationCtx& m,
                             std::vector<Latched> path, Latched page,
                             Slice key, const std::string& cell) {
  std::string pending_cell = cell;
  std::string pending_key = key.ToString();

  while (true) {
    const bool is_leaf = page->type() == PageType::kBTreeLeaf;

    // Allocate and format the right sibling. No latch needed: a fresh page
    // is unreachable until the leaf chain / parent cell publishing it is
    // updated, and those updates happen under latches this thread holds.
    StatusOr<PageId> right_id_or = alloc_->AllocatePage(io);
    if (!right_id_or.ok()) return right_id_or.status();
    const PageId right_id = *right_id_or;
    StatusOr<PageRef> right_or = pool_->Fix(io, right_id, /*create=*/true);
    if (!right_or.ok()) return right_or.status();
    PageRef right = std::move(*right_or);
    right->Format(right_id, is_leaf ? PageType::kBTreeLeaf
                                    : PageType::kBTreeInternal);

    // Copy out upper-half cells (slices invalidate on mutation).
    const uint16_t n = page->nslots();
    const uint16_t mid = n / 2;
    std::vector<std::string> moved;
    moved.reserve(n - mid);
    for (uint16_t i = mid; i < n; ++i) {
      moved.emplace_back(page->CellAt(i).ToString());
    }
    std::string separator;
    if (is_leaf) {
      separator = LeafKey(moved[0]).ToString();
      for (size_t i = 0; i < moved.size(); ++i) {
        const bool ok =
            right->InsertCell(static_cast<uint16_t>(i), moved[i]);
        if (!ok) return Status::Corruption("split target overflow");
      }
      // Leaf chaining.
      right->header()->aux1 = page->header()->aux1;
      page->header()->aux1 = right_id;
    } else {
      separator = InternalKey(moved[0]).ToString();
      right->header()->aux1 = InternalChild(moved[0]);  // Leftmost child.
      for (size_t i = 1; i < moved.size(); ++i) {
        const bool ok =
            right->InsertCell(static_cast<uint16_t>(i - 1), moved[i]);
        if (!ok) return Status::Corruption("split target overflow");
      }
    }
    for (uint16_t i = n; i-- > mid;) {
      page->RemoveCell(i);
    }
    page->Compact();

    // Insert the pending cell into the proper half.
    {
      Page* target =
          Slice(pending_key).compare(Slice(separator)) < 0 ? page.ref.get()
                                                           : right.get();
      bool exact = false;
      const uint16_t slot =
          LowerBound(*target, is_leaf, pending_key, &exact);
      // On the leaf level an exact hit is impossible here (handled in Put);
      // on internal levels separators are unique.
      if (!target->InsertCell(slot, pending_cell)) {
        return Status::Corruption("cell does not fit half-full page");
      }
    }
    Dirty(m, page.ref.id());
    Dirty(m, right.id());

    // Propagate the separator upward.
    const std::string up_cell = EncodeInternalCell(separator, right_id);
    if (path.empty()) {
      // Root split: grow the tree. The descent only leaves the path empty
      // when `page` is the root itself (an unsafe non-root node always
      // retains its parent), and its exclusive latch has been held since
      // the root-id re-check, so root_ still names it. Publish the new
      // root id *before* the old root's latch is released (when `page` is
      // destroyed) — concurrent descents re-check root_ after latching.
      StatusOr<PageId> new_root_or = alloc_->AllocatePage(io);
      if (!new_root_or.ok()) return new_root_or.status();
      StatusOr<PageRef> root_or =
          pool_->Fix(io, *new_root_or, /*create=*/true);
      if (!root_or.ok()) return root_or.status();
      (*root_or)->Format(*new_root_or, PageType::kBTreeInternal);
      (*root_or)->header()->aux1 = page.ref.id();
      if (!(*root_or)->InsertCell(0, up_cell)) {
        return Status::Corruption("new root overflow");
      }
      Dirty(m, *new_root_or);
      root_.store(*new_root_or, std::memory_order_release);
      return Status::OK();
    }

    // The parent was retained (exclusively latched) by the descent; no
    // re-fix. `page` and `right` can be released first: their contents are
    // final, key-based descents cannot reach either until the parent
    // (still latched) is updated, and a scan chaining in from the left
    // sibling sees a consistent split — `page`'s chain pointer already
    // routes it through `right`.
    Latched parent = std::move(path.back());
    path.pop_back();
    page.Drop();
    right.Release();
    bool exact = false;
    const uint16_t slot =
        LowerBound(*parent, /*leaf=*/false, separator, &exact);
    if (parent->InsertCell(slot, up_cell)) {
      Dirty(m, parent.ref.id());
      return Status::OK();
    }
    // Parent overflows too: loop with the parent as the page to split.
    pending_cell = up_cell;
    pending_key = separator;
    page = std::move(parent);
  }
}

Status BTree::Get(IoContext& io, Slice key, std::string* value) {
  Latched leaf;
  DURASSD_RETURN_IF_ERROR(
      FindLeafRead(io, key, /*exclusive_leaf=*/false, &leaf));
  bool exact = false;
  const uint16_t slot = LowerBound(*leaf, /*leaf=*/true, key, &exact);
  if (!exact) return Status::NotFound();
  if (value != nullptr) *value = LeafValue(leaf->CellAt(slot)).ToString();
  return Status::OK();
}

Status BTree::Delete(IoContext& io, const MutationCtx& m, Slice key,
                     std::string* old_value, bool* had_old) {
  if (had_old != nullptr) *had_old = false;
  // Delete never merges, so the structure change stops at the leaf: shared
  // crab down, exclusive latch on the leaf only.
  Latched leaf;
  DURASSD_RETURN_IF_ERROR(
      FindLeafRead(io, key, /*exclusive_leaf=*/true, &leaf));
  bool exact = false;
  const uint16_t slot = LowerBound(*leaf, /*leaf=*/true, key, &exact);
  if (!exact) return Status::NotFound();
  if (old_value != nullptr) {
    *old_value = LeafValue(leaf->CellAt(slot)).ToString();
  }
  if (had_old != nullptr) *had_old = true;
  leaf->RemoveCell(slot);
  Dirty(m, leaf.ref.id());
  return Status::OK();
}

Status BTree::ScanFrom(
    IoContext& io, Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  Latched leaf;
  DURASSD_RETURN_IF_ERROR(
      FindLeafRead(io, start, /*exclusive_leaf=*/false, &leaf));
  bool exact = false;
  uint16_t slot = LowerBound(*leaf, /*leaf=*/true, start, &exact);
  while (out->size() < limit) {
    if (slot >= leaf->nslots()) {
      const PageId next = leaf->header()->aux1;
      if (next == kInvalidPageId) break;
      // Hand-over-hand is not needed leaf-to-leaf: pages are never freed,
      // and a split of `next` before we latch it leaves the chain intact.
      leaf.Drop();
      StatusOr<PageRef> next_or = pool_->Fix(io, next, /*create=*/false);
      if (!next_or.ok()) return next_or.status();
      next_or->latch()->lock_shared();
      leaf = Latched(std::move(*next_or), 1);
      slot = 0;
      continue;
    }
    const Slice cell = leaf->CellAt(slot);
    out->emplace_back(LeafKey(cell).ToString(), LeafValue(cell).ToString());
    slot++;
  }
  return Status::OK();
}

Status BTree::CountRange(IoContext& io, Slice start, Slice end, size_t cap,
                         uint64_t* count) {
  *count = 0;
  Latched leaf;
  DURASSD_RETURN_IF_ERROR(
      FindLeafRead(io, start, /*exclusive_leaf=*/false, &leaf));
  bool exact = false;
  uint16_t slot = LowerBound(*leaf, /*leaf=*/true, start, &exact);
  while (*count < cap) {
    if (slot >= leaf->nslots()) {
      const PageId next = leaf->header()->aux1;
      if (next == kInvalidPageId) break;
      leaf.Drop();
      StatusOr<PageRef> next_or = pool_->Fix(io, next, /*create=*/false);
      if (!next_or.ok()) return next_or.status();
      next_or->latch()->lock_shared();
      leaf = Latched(std::move(*next_or), 1);
      slot = 0;
      continue;
    }
    const Slice cell = leaf->CellAt(slot);
    if (!end.empty() && LeafKey(cell).compare(end) >= 0) break;
    (*count)++;
    slot++;
  }
  return Status::OK();
}

}  // namespace durassd
