#ifndef DURASSD_DB_BTREE_H_
#define DURASSD_DB_BTREE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "db/buffer_pool.h"
#include "db/io_context.h"

namespace durassd {

/// Allocates fresh page ids (implemented by Database; allocation order is
/// deterministic, which the replay-based recovery relies on).
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;
  virtual StatusOr<PageId> AllocatePage(IoContext& io) = 0;
};

/// Mutation context threaded through writes: the WAL position stamped into
/// dirtied pages, the owning transaction (no-steal nailing), and the list
/// of dirtied page ids the transaction later releases.
struct MutationCtx {
  Lsn lsn = kInvalidLsn;
  TxnId txn = 0;
  std::vector<PageId>* dirtied = nullptr;
};

/// Disk B+-tree with byte-string keys (memcmp order) and values, built on
/// the buffer pool. Supports upsert, point get, delete, and ordered scans
/// via leaf chaining. Nodes split at overflow; underflow is tolerated
/// (deletes leave sparse pages — reclaimed only by rebuild, like SQLite
/// without vacuum), which keeps recovery-by-replay deterministic.
///
/// Size limits: key <= 1/16 page, value <= 1/8 page, so any two cells fit a
/// fresh page and splits always succeed.
class BTree {
 public:
  BTree(BufferPool* pool, PageAllocator* alloc, PageId root);

  PageId root() const { return root_; }
  uint32_t max_key_size() const { return pool_->page_size() / 16; }
  uint32_t max_value_size() const { return pool_->page_size() / 8; }

  /// Creates a new empty tree and returns its root page id.
  static StatusOr<PageId> Create(IoContext& io, BufferPool* pool,
                                 PageAllocator* alloc, const MutationCtx& m);

  /// Upsert. `old_value`, if non-null, receives the previous value (and
  /// `had_old` whether one existed) — the before-image the WAL needs.
  Status Put(IoContext& io, const MutationCtx& m, Slice key, Slice value,
             std::string* old_value = nullptr, bool* had_old = nullptr);

  Status Get(IoContext& io, Slice key, std::string* value);

  /// Returns NotFound if absent. Captures the before-image like Put.
  Status Delete(IoContext& io, const MutationCtx& m, Slice key,
                std::string* old_value = nullptr, bool* had_old = nullptr);

  /// Scans up to `limit` pairs with key >= start.
  Status ScanFrom(IoContext& io, Slice start, size_t limit,
                  std::vector<std::pair<std::string, std::string>>* out);

  /// Counts pairs in [start, end) up to `cap`.
  Status CountRange(IoContext& io, Slice start, Slice end, size_t cap,
                    uint64_t* count);

 private:
  // Cell encodings (first u16 = total cell length, making cells
  // self-describing for Page::CellAt):
  //  leaf:     [len u16][klen u16][vlen u16][key][value]
  //  internal: [len u16][klen u16][child u64][key]
  static std::string EncodeLeafCell(Slice key, Slice value);
  static std::string EncodeInternalCell(Slice key, PageId child);
  static Slice LeafKey(Slice cell);
  static Slice LeafValue(Slice cell);
  static Slice InternalKey(Slice cell);
  static PageId InternalChild(Slice cell);

  /// First slot whose key >= `key` (lower bound); `exact` set when equal.
  static uint16_t LowerBound(const Page& page, bool leaf, Slice key,
                             bool* exact);
  /// Child to descend into for `key`.
  static PageId DescendChild(const Page& page, Slice key);

  struct PathEntry {
    PageId id;
  };
  Status FindLeaf(IoContext& io, Slice key, std::vector<PathEntry>* path,
                  PageRef* leaf);
  /// Splits the overflowing page at the end of `path` and inserts the
  /// separator upward, growing the tree at the root if needed.
  Status SplitAndInsert(IoContext& io, const MutationCtx& m,
                        std::vector<PathEntry> path, PageRef page,
                        Slice key, const std::string& cell);

  void Dirty(const MutationCtx& m, PageId id) {
    pool_->MarkDirty(id, m.lsn, m.txn);
    if (m.dirtied != nullptr) m.dirtied->push_back(id);
  }

  BufferPool* pool_;
  PageAllocator* alloc_;
  PageId root_;
};

}  // namespace durassd

#endif  // DURASSD_DB_BTREE_H_
