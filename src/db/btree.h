#ifndef DURASSD_DB_BTREE_H_
#define DURASSD_DB_BTREE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "db/buffer_pool.h"
#include "db/io_context.h"

namespace durassd {

/// Allocates fresh page ids (implemented by Database; allocation order is
/// deterministic, which the replay-based recovery relies on).
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;
  virtual StatusOr<PageId> AllocatePage(IoContext& io) = 0;
};

/// Mutation context threaded through writes: the WAL position stamped into
/// dirtied pages, the owning transaction (no-steal nailing), and the list
/// of dirtied page ids the transaction later releases.
struct MutationCtx {
  Lsn lsn = kInvalidLsn;
  TxnId txn = 0;
  std::vector<PageId>* dirtied = nullptr;
};

/// Disk B+-tree with byte-string keys (memcmp order) and values, built on
/// the buffer pool. Supports upsert, point get, delete, and ordered scans
/// via leaf chaining. Nodes split at overflow; underflow is tolerated
/// (deletes leave sparse pages — reclaimed only by rebuild, like SQLite
/// without vacuum), which keeps recovery-by-replay deterministic.
///
/// Size limits: key <= 1/16 page, value <= 1/8 page, so any two cells fit a
/// fresh page and splits always succeed.
///
/// Concurrency (DESIGN.md §13): latch-coupled descent over the buffer
/// pool's per-frame latches. Readers (Get/scans) crab root-to-leaf with
/// shared latches; Delete crabs shared but takes the leaf exclusive (it
/// never merges, so structure changes stop at the leaf); Put crabs with
/// exclusive latches, releasing all retained ancestors whenever it reaches
/// a node that is "safe" — guaranteed to absorb a worst-case separator
/// insert without splitting — so splits propagate only into ancestors whose
/// latches were never dropped. The root id is atomic: a descent latches the
/// root it loaded and re-checks the id afterwards (a root split publishes
/// the new id before unlatching the old root, so the re-check cannot miss
/// it). All latches are acquired strictly top-down, which rules out
/// deadlock. Scans are not snapshot-isolated: the latch chain is released
/// between leaves, so a scan sees each leaf atomically but the range as a
/// whole may interleave with concurrent writers.
class BTree {
 public:
  BTree(BufferPool* pool, PageAllocator* alloc, PageId root);

  PageId root() const { return root_.load(std::memory_order_acquire); }
  uint32_t max_key_size() const { return pool_->page_size() / 16; }
  uint32_t max_value_size() const { return pool_->page_size() / 8; }

  /// Creates a new empty tree and returns its root page id.
  static StatusOr<PageId> Create(IoContext& io, BufferPool* pool,
                                 PageAllocator* alloc, const MutationCtx& m);

  /// Upsert. `old_value`, if non-null, receives the previous value (and
  /// `had_old` whether one existed) — the before-image the WAL needs.
  Status Put(IoContext& io, const MutationCtx& m, Slice key, Slice value,
             std::string* old_value = nullptr, bool* had_old = nullptr);

  Status Get(IoContext& io, Slice key, std::string* value);

  /// Returns NotFound if absent. Captures the before-image like Put.
  Status Delete(IoContext& io, const MutationCtx& m, Slice key,
                std::string* old_value = nullptr, bool* had_old = nullptr);

  /// Scans up to `limit` pairs with key >= start.
  Status ScanFrom(IoContext& io, Slice start, size_t limit,
                  std::vector<std::pair<std::string, std::string>>* out);

  /// Counts pairs in [start, end) up to `cap`.
  Status CountRange(IoContext& io, Slice start, Slice end, size_t cap,
                    uint64_t* count);

 private:
  // Cell encodings (first u16 = total cell length, making cells
  // self-describing for Page::CellAt):
  //  leaf:     [len u16][klen u16][vlen u16][key][value]
  //  internal: [len u16][klen u16][child u64][key]
  static std::string EncodeLeafCell(Slice key, Slice value);
  static std::string EncodeInternalCell(Slice key, PageId child);
  static Slice LeafKey(Slice cell);
  static Slice LeafValue(Slice cell);
  static Slice InternalKey(Slice cell);
  static PageId InternalChild(Slice cell);

  /// First slot whose key >= `key` (lower bound); `exact` set when equal.
  static uint16_t LowerBound(const Page& page, bool leaf, Slice key,
                             bool* exact);
  /// Child to descend into for `key`.
  static PageId DescendChild(const Page& page, Slice key);

  /// A pinned page plus the latch mode held on its frame. Unlatches (then
  /// unpins, via PageRef) on destruction; release order is irrelevant since
  /// latches are only ever *acquired* top-down.
  struct Latched {
    PageRef ref;
    int mode = 0;  ///< 0 = none, 1 = shared, 2 = exclusive.

    Latched() = default;
    Latched(PageRef r, int m) : ref(std::move(r)), mode(m) {}
    Latched(Latched&& o) noexcept : ref(std::move(o.ref)), mode(o.mode) {
      o.mode = 0;
    }
    Latched& operator=(Latched&& o) noexcept {
      if (this != &o) {
        Drop();
        ref = std::move(o.ref);
        mode = o.mode;
        o.mode = 0;
      }
      return *this;
    }
    Latched(const Latched&) = delete;
    Latched& operator=(const Latched&) = delete;
    ~Latched() { Drop(); }

    Page* operator->() { return ref.get(); }
    Page& operator*() { return *ref; }

    /// Releases the latch (keeps the pin).
    void Unlatch() {
      if (mode != 0 && ref.valid()) {
        if (mode == 2) {
          ref.latch()->unlock();
        } else {
          ref.latch()->unlock_shared();
        }
      }
      mode = 0;
    }
    /// Releases the latch, then the pin.
    void Drop() {
      Unlatch();
      ref.Release();
    }
  };

  /// Read-side descent: shared latches down the tree, leaf latched shared
  /// (Get/scans) or exclusive (Delete). On return `leaf` is latched+pinned.
  Status FindLeafRead(IoContext& io, Slice key, bool exclusive_leaf,
                      Latched* leaf);
  /// Write-side descent for Put: exclusive latches, retaining ancestors
  /// while the child may split. `leaf_need` is the worst-case byte cost of
  /// the pending leaf insert (cell + slot). On return `leaf` is latched
  /// exclusive and `path` holds the retained ancestors (empty when the leaf
  /// cannot split, or when the leaf is the root).
  Status FindLeafWrite(IoContext& io, Slice key, size_t leaf_need,
                       std::vector<Latched>* path, Latched* leaf);
  /// Splits the overflowing latched page and inserts the separator upward
  /// through the retained `path`, growing the tree at the root if needed.
  /// Every page mutated here is exclusively latched (retained from the
  /// descent); fresh right siblings need no latch until published, which
  /// happens under the latches already held.
  Status SplitAndInsert(IoContext& io, const MutationCtx& m,
                        std::vector<Latched> path, Latched page,
                        Slice key, const std::string& cell);

  void Dirty(const MutationCtx& m, PageId id) {
    pool_->MarkDirty(id, m.lsn, m.txn);
    if (m.dirtied != nullptr) m.dirtied->push_back(id);
  }

  /// Worst-case separator cell an internal node may have to absorb (cell
  /// header + max key + slot); a node with this much free space is "safe".
  size_t WorstInternalNeed() const { return 12 + max_key_size() + 2; }

  BufferPool* pool_;
  PageAllocator* alloc_;
  /// Root page id; grows monotonically (root splits only). Written under
  /// the old root's exclusive latch, before that latch is released.
  std::atomic<PageId> root_;
};

}  // namespace durassd

#endif  // DURASSD_DB_BTREE_H_
