#include "db/double_write_buffer.h"

#include "db/io_queue.h"
#include "db/page.h"

namespace durassd {

DoubleWriteBuffer::DoubleWriteBuffer(SimFile* dwb_file, SimFile* data_file,
                                     Options options)
    : dwb_file_(dwb_file), data_file_(data_file), opts_(options) {
  if (opts_.metrics != nullptr) {
    h_batch_ns_ = opts_.metrics->GetHistogram("dwb.batch_ns");
  }
}

Status DoubleWriteBuffer::Add(IoContext& io, PageId page_id,
                              std::string image) {
  // Coalesce: a newer image of the same page supersedes the pending one.
  for (auto& [id, img] : pending_) {
    if (id == page_id) {
      img = std::move(image);
      return Status::OK();
    }
  }
  pending_.emplace_back(page_id, std::move(image));
  if (pending_.size() >= opts_.batch_pages) {
    return FlushBatch(io);
  }
  return Status::OK();
}

const std::string* DoubleWriteBuffer::PendingImage(PageId page_id) const {
  for (const auto& [id, img] : pending_) {
    if (id == page_id) return &img;
  }
  return nullptr;
}

Status DoubleWriteBuffer::FlushBatch(IoContext& io) {
  if (pending_.empty()) return Status::OK();
  const SimTime entered = io.now;
  const uint64_t batch_pages = pending_.size();
  stats_.batches++;
  stats_.pages_double_written += pending_.size();

  // 1. One sequential write of the whole batch into the region, then fsync:
  //    after this the images are recoverable.
  std::string blob;
  blob.reserve(pending_.size() * opts_.page_size);
  for (const auto& [id, img] : pending_) blob.append(img);
  const bool use_barrier =
      opts_.durability_mode == DurabilityMode::kBarrier;
  SimFile::IoResult r = dwb_file_->Write(io.now, 0, blob);
  DURASSD_RETURN_IF_ERROR(r.status);
  io.AdvanceTo(r.done);
  r = use_barrier ? dwb_file_->Barrier(io.now) : dwb_file_->Sync(io.now);
  DURASSD_RETURN_IF_ERROR(r.status);
  io.AdvanceTo(r.done);

  // 2. Home-location writes.
  if (opts_.home_write_depth > 0) {
    FileIoQueue queue(data_file_, opts_.home_write_depth);
    for (const auto& [id, img] : pending_) {
      queue.SubmitWrite(io, static_cast<uint64_t>(id) * opts_.page_size,
                        img);
    }
    DURASSD_RETURN_IF_ERROR(queue.Drain(io));
  } else {
    SimTime latest = io.now;
    for (const auto& [id, img] : pending_) {
      const SimFile::IoResult w = data_file_->Write(
          io.now, static_cast<uint64_t>(id) * opts_.page_size, img);
      DURASSD_RETURN_IF_ERROR(w.status);
      if (w.done > latest) latest = w.done;
    }
    io.AdvanceTo(latest);
  }

  // 3. fsync the data file before the region may be overwritten — pure
  // ordering again, so barrier mode barriers instead.
  r = use_barrier ? data_file_->Barrier(io.now) : data_file_->Sync(io.now);
  DURASSD_RETURN_IF_ERROR(r.status);
  io.AdvanceTo(r.done);

  pending_.clear();
  if (h_batch_ns_) h_batch_ns_->Record(io.now - entered);
  if (tracer_) {
    tracer_->Record(io.now, TraceEventType::kDoubleWrite, batch_pages,
                    static_cast<uint64_t>(io.now - entered));
  }
  return Status::OK();
}

Status DoubleWriteBuffer::RecoverImages(
    IoContext& io, std::vector<std::pair<PageId, std::string>>* out) {
  out->clear();
  const uint64_t region_bytes = dwb_file_->size();
  for (uint64_t off = 0; off + opts_.page_size <= region_bytes;
       off += opts_.page_size) {
    std::string raw;
    const SimFile::IoResult r =
        dwb_file_->Read(io.now, off, opts_.page_size, &raw);
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    Page page(opts_.page_size);
    page.CopyFrom(raw);
    if (page.header()->magic != Page::kMagic) continue;
    if (!page.VerifyChecksum()) continue;  // This copy itself is torn.
    out->emplace_back(page.page_id(), std::move(raw));
  }
  return Status::OK();
}

}  // namespace durassd
