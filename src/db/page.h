#ifndef DURASSD_DB_PAGE_H_
#define DURASSD_DB_PAGE_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/types.h"

namespace durassd {

enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,
  kBTreeInternal = 2,
  kBTreeLeaf = 3,
  kOverflow = 4,
};

/// A fixed-size database page (4/8/16 KB) with a checksummed header and a
/// slotted-cell body. Layout:
///
///   [PageHeader][slot offsets: u16 x nslots][... free ...][cells grow down]
///
/// The CRC covers everything except the checksum field itself, which is how
/// torn writes (partial page writes) are detected after a crash — the exact
/// mechanism InnoDB relies on and DuraSSD makes unnecessary.
class Page {
 public:
  static constexpr uint32_t kMagic = 0x4D425047;  // "MBPG"
  struct Header {
    uint32_t magic;
    uint32_t checksum;
    uint64_t page_id;
    uint64_t lsn;
    uint16_t type;
    uint16_t nslots;
    uint32_t cell_start;  ///< Lowest byte used by cells.
    uint32_t garbage;     ///< Bytes freed by removed cells (until Compact).
    uint64_t aux1;        ///< Leaf: next-leaf page id. Meta: next free page.
    uint64_t aux2;        ///< Leaf: unused. Meta: catalog length.
  };
  static constexpr uint32_t kHeaderSize = sizeof(Header);

  explicit Page(uint32_t size) : data_(size, '\0') {}

  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }
  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }
  Slice AsSlice() const { return Slice(data_.data(), data_.size()); }

  Header* header() { return reinterpret_cast<Header*>(data_.data()); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(data_.data());
  }

  void Format(PageId id, PageType type);

  PageId page_id() const { return header()->page_id; }
  PageType type() const { return static_cast<PageType>(header()->type); }
  Lsn lsn() const { return header()->lsn; }
  void set_lsn(Lsn lsn) { header()->lsn = lsn; }

  // --- Slotted cells ---
  uint16_t nslots() const { return header()->nslots; }
  uint32_t FreeSpace() const;
  /// Inserts a cell at slot index (shifting later slots). False if full.
  bool InsertCell(uint16_t index, Slice cell);
  void RemoveCell(uint16_t index);
  Slice CellAt(uint16_t index) const;
  /// Replaces a cell in place if possible, else remove+insert. False if the
  /// replacement does not fit even after compaction.
  bool ReplaceCell(uint16_t index, Slice cell);
  /// Rewrites the page moving all cells to the end (defragmentation).
  void Compact();

  // --- Integrity ---
  /// Computes and stores the checksum; call just before writing to storage.
  void SealChecksum();
  /// True iff the stored checksum matches the contents.
  bool VerifyChecksum() const;

  void CopyFrom(Slice raw);

 private:
  uint16_t* slot_array() {
    return reinterpret_cast<uint16_t*>(data_.data() + kHeaderSize);
  }
  const uint16_t* slot_array() const {
    return reinterpret_cast<const uint16_t*>(data_.data() + kHeaderSize);
  }

  std::string data_;
};

}  // namespace durassd

#endif  // DURASSD_DB_PAGE_H_
