#include "db/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "db/io_queue.h"

namespace durassd {

// ---------------------------------------------------------------------------
// PageRef
// ---------------------------------------------------------------------------

PageRef::PageRef(BufferPool* pool, PageId id, Page* page)
    : pool_(pool), id_(id), page_(page) {}

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), id_(other.id_), page_(other.page_) {
  other.pool_ = nullptr;
  other.page_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  page_ = nullptr;
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(SimFile* data_file, Wal* wal, DoubleWriteBuffer* dwb,
                       Options options)
    : data_file_(data_file),
      wal_(wal),
      dwb_(dwb),
      opts_(options),
      capacity_(options.pool_bytes / options.page_size) {
  assert(capacity_ >= 8);
}

void BufferPool::Unpin(PageId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  assert(it->second->pins > 0);
  it->second->pins--;
}

Status BufferPool::WriteFrame(IoContext& io, Frame& frame) {
  // WAL rule: the log must be durable *on device* up to the page's LSN
  // before the page itself may be written.
  DURASSD_RETURN_IF_ERROR(wal_->EnsureWritten(io, frame.page.lsn()));
  frame.page.SealChecksum();
  if (dwb_ != nullptr) {
    DURASSD_RETURN_IF_ERROR(
        dwb_->Add(io, frame.id, std::string(frame.page.data(),
                                            frame.page.size())));
  } else {
    const SimFile::IoResult r = data_file_->Write(
        io.now, static_cast<uint64_t>(frame.id) * opts_.page_size,
        frame.page.AsSlice());
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    if (opts_.sync_every_write) {
      const SimFile::IoResult s = data_file_->DataSync(io.now);
      DURASSD_RETURN_IF_ERROR(s.status);
      io.AdvanceTo(s.done);
    } else if (opts_.pages_per_data_sync != 0 &&
               ++writes_since_data_sync_ >= opts_.pages_per_data_sync) {
      writes_since_data_sync_ = 0;
      const SimFile::IoResult s = data_file_->DataSync(io.now);
      DURASSD_RETURN_IF_ERROR(s.status);
      io.AdvanceTo(s.done);
    }
  }
  frame.dirty = false;
  return Status::OK();
}

StatusOr<BufferPool::FrameList::iterator> BufferPool::GetFreeFrame(
    IoContext& io, bool for_read) {
  if (lru_.size() < capacity_) {
    lru_.emplace_front(opts_.page_size);
    return lru_.begin();
  }
  // Scan from the LRU tail for an evictable frame.
  for (auto it = std::prev(lru_.end());; --it) {
    Frame& frame = *it;
    const bool evictable = frame.pins == 0 && frame.owner_txn == 0;
    if (evictable) {
      if (frame.dirty) {
        stats_.dirty_evictions++;
        if (for_read) stats_.reads_blocked_by_writes++;
        DURASSD_RETURN_IF_ERROR(WriteFrame(io, frame));
      }
      stats_.evictions++;
      map_.erase(frame.id);
      frame.id = kInvalidPageId;
      frame.dirty = false;
      frame.owner_txn = 0;
      lru_.splice(lru_.begin(), lru_, it);  // Move to front for reuse.
      return lru_.begin();
    }
    if (it == lru_.begin()) break;
  }
  return Status::Busy("no evictable frame (all pinned or owned)");
}

StatusOr<PageRef> BufferPool::Fix(IoContext& io, PageId id, bool create) {
  auto hit = map_.find(id);
  if (hit != map_.end()) {
    stats_.hits++;
    lru_.splice(lru_.begin(), lru_, hit->second);
    Frame& frame = *hit->second;
    frame.pins++;
    return PageRef(this, id, &frame.page);
  }
  stats_.misses++;

  StatusOr<FrameList::iterator> frame_or = GetFreeFrame(io, !create);
  if (!frame_or.ok()) return frame_or.status();
  Frame& frame = **frame_or;
  frame.id = id;
  frame.dirty = false;
  frame.owner_txn = 0;
  frame.pins = 0;

  if (create) {
    frame.page.Format(id, PageType::kFree);
  } else {
    // A pending double-write image is newer than the home location.
    const std::string* pending =
        dwb_ != nullptr ? dwb_->PendingImage(id) : nullptr;
    if (pending != nullptr) {
      frame.page.CopyFrom(*pending);
    } else {
      std::string raw;
      const SimFile::IoResult r = data_file_->Read(
          io.now, static_cast<uint64_t>(id) * opts_.page_size,
          opts_.page_size, &raw);
      if (!r.status.ok()) {
        map_.erase(id);
        return r.status;
      }
      io.AdvanceTo(r.done);
      raw.resize(opts_.page_size, '\0');
      frame.page.CopyFrom(raw);
    }
    if (frame.page.header()->magic != Page::kMagic ||
        !frame.page.VerifyChecksum()) {
      // Undo the mapping; the frame is reusable.
      frame.id = kInvalidPageId;
      return Status::Corruption("page " + std::to_string(id) +
                                " failed checksum (torn or uninitialized)");
    }
  }
  map_[id] = *frame_or;
  frame.pins = 1;
  return PageRef(this, id, &frame.page);
}

void BufferPool::MarkDirty(PageId id, Lsn lsn, TxnId txn) {
  auto it = map_.find(id);
  assert(it != map_.end());
  Frame& frame = *it->second;
  frame.dirty = true;
  frame.owner_txn = txn;
  if (lsn != kInvalidLsn) frame.page.set_lsn(lsn);
}

void BufferPool::ReleaseTxn(TxnId txn) {
  for (auto& frame : lru_) {
    if (frame.owner_txn == txn) frame.owner_txn = 0;
  }
}

void BufferPool::ClearOwner(PageId id, TxnId txn) {
  auto it = map_.find(id);
  if (it != map_.end() && it->second->owner_txn == txn) {
    it->second->owner_txn = 0;
  }
}

Status BufferPool::FlushAll(IoContext& io) {
  if (opts_.checkpoint_queue_depth > 1 && dwb_ == nullptr &&
      !opts_.sync_every_write) {
    return FlushAllBatched(io);
  }
  for (auto& frame : lru_) {
    if (frame.id == kInvalidPageId || !frame.dirty) continue;
    DURASSD_RETURN_IF_ERROR(WriteFrame(io, frame));
    stats_.checkpoint_page_flushes++;
  }
  if (dwb_ != nullptr) {
    DURASSD_RETURN_IF_ERROR(dwb_->FlushBatch(io));
  }
  return Status::OK();
}

Status BufferPool::FlushAllBatched(IoContext& io) {
  // WAL rule, hoisted: make the log durable on device up to the newest
  // dirty page's LSN once, then destage pages with the queue kept full.
  Lsn max_lsn = 0;
  std::vector<Frame*> dirty;
  for (auto& frame : lru_) {
    if (frame.id == kInvalidPageId || !frame.dirty) continue;
    max_lsn = std::max(max_lsn, frame.page.lsn());
    dirty.push_back(&frame);
  }
  if (dirty.empty()) return Status::OK();
  DURASSD_RETURN_IF_ERROR(wal_->EnsureWritten(io, max_lsn));

  FileIoQueue queue(data_file_, opts_.checkpoint_queue_depth);
  uint32_t since_sync = 0;
  for (Frame* frame : dirty) {
    frame->page.SealChecksum();
    queue.SubmitWrite(io,
                      static_cast<uint64_t>(frame->id) * opts_.page_size,
                      frame->page.AsSlice());
    stats_.checkpoint_page_flushes++;
    if (opts_.pages_per_data_sync != 0 &&
        ++since_sync >= opts_.pages_per_data_sync) {
      since_sync = 0;
      DURASSD_RETURN_IF_ERROR(queue.Drain(io));
      const SimFile::IoResult s = data_file_->DataSync(io.now);
      DURASSD_RETURN_IF_ERROR(s.status);
      io.AdvanceTo(s.done);
    }
  }
  DURASSD_RETURN_IF_ERROR(queue.Drain(io));
  for (Frame* frame : dirty) frame->dirty = false;
  return Status::OK();
}

void BufferPool::DropAllForCrash() {
  lru_.clear();
  map_.clear();
}

}  // namespace durassd
