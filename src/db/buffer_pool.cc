#include "db/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "db/io_queue.h"

namespace durassd {

// ---------------------------------------------------------------------------
// PageRef
// ---------------------------------------------------------------------------

PageRef::PageRef(BufferPool* pool, PageId id, Page* page,
                 std::shared_mutex* latch)
    : pool_(pool), id_(id), page_(page), latch_(latch) {}

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_),
      id_(other.id_),
      page_(other.page_),
      latch_(other.latch_) {
  other.pool_ = nullptr;
  other.page_ = nullptr;
  other.latch_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    latch_ = other.latch_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.latch_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  latch_ = nullptr;
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(SimFile* data_file, Wal* wal, DoubleWriteBuffer* dwb,
                       Options options)
    : data_file_(data_file),
      wal_(wal),
      dwb_(dwb),
      opts_(options),
      capacity_(options.pool_bytes / options.page_size) {
  assert(capacity_ >= 8);
  const uint32_t n = std::max<uint32_t>(opts_.shards, 1);
  // Every partition needs room for a tree descent's worth of pins.
  assert(capacity_ / n >= 4);
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->capacity = capacity_ / n + (i < capacity_ % n ? 1 : 0);
    shards_.push_back(std::move(s));
  }
}

void BufferPool::Unpin(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it == shard.map.end()) return;
  assert(it->second->pins > 0);
  it->second->pins--;
}

Status BufferPool::WriteFrame(IoContext& io, Shard& shard, Frame& frame) {
  // WAL rule: the log must be durable *on device* up to the page's LSN
  // before the page itself may be written. The WAL (and the double-write
  // buffer below) are shared across partitions, so concurrent evictions
  // from different partitions serialize on log_mu_ here.
  {
    std::lock_guard<std::mutex> log_lock(log_mu_);
    DURASSD_RETURN_IF_ERROR(wal_->EnsureWritten(io, frame.page.lsn()));
  }
  frame.page.SealChecksum();
  if (dwb_ != nullptr) {
    std::lock_guard<std::mutex> log_lock(log_mu_);
    DURASSD_RETURN_IF_ERROR(
        dwb_->Add(io, frame.id, std::string(frame.page.data(),
                                            frame.page.size())));
  } else {
    const SimFile::IoResult r = data_file_->Write(
        io.now, static_cast<uint64_t>(frame.id) * opts_.page_size,
        frame.page.AsSlice());
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    if (opts_.sync_every_write) {
      const SimFile::IoResult s = data_file_->DataSync(io.now);
      DURASSD_RETURN_IF_ERROR(s.status);
      io.AdvanceTo(s.done);
    } else if (opts_.pages_per_data_sync != 0 &&
               ++shard.writes_since_data_sync >= opts_.pages_per_data_sync) {
      shard.writes_since_data_sync = 0;
      const SimFile::IoResult s = data_file_->DataSync(io.now);
      DURASSD_RETURN_IF_ERROR(s.status);
      io.AdvanceTo(s.done);
    }
  }
  frame.dirty = false;
  return Status::OK();
}

StatusOr<BufferPool::FrameList::iterator> BufferPool::GetFreeFrame(
    IoContext& io, Shard& shard, bool for_read) {
  if (shard.lru.size() < shard.capacity) {
    shard.lru.emplace_front(opts_.page_size);
    return shard.lru.begin();
  }
  // Scan from the LRU tail for an evictable frame. Holders of the frame
  // latch always hold a pin, so pins == 0 also means the latch is free.
  for (auto it = std::prev(shard.lru.end());; --it) {
    Frame& frame = *it;
    const bool evictable = frame.pins == 0 && frame.owner_txn == 0;
    if (evictable) {
      if (frame.dirty) {
        shard.stats.dirty_evictions++;
        if (for_read) shard.stats.reads_blocked_by_writes++;
        DURASSD_RETURN_IF_ERROR(WriteFrame(io, shard, frame));
      }
      shard.stats.evictions++;
      shard.map.erase(frame.id);
      frame.id = kInvalidPageId;
      frame.dirty = false;
      frame.owner_txn = 0;
      shard.lru.splice(shard.lru.begin(), shard.lru, it);  // Front for reuse.
      return shard.lru.begin();
    }
    if (it == shard.lru.begin()) break;
  }
  return Status::Busy("no evictable frame (all pinned or owned)");
}

StatusOr<PageRef> BufferPool::Fix(IoContext& io, PageId id, bool create) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto hit = shard.map.find(id);
  if (hit != shard.map.end()) {
    shard.stats.hits++;
    shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
    Frame& frame = *hit->second;
    frame.pins++;
    return PageRef(this, id, &frame.page, &frame.latch);
  }
  shard.stats.misses++;

  StatusOr<FrameList::iterator> frame_or = GetFreeFrame(io, shard, !create);
  if (!frame_or.ok()) return frame_or.status();
  Frame& frame = **frame_or;
  frame.id = id;
  frame.dirty = false;
  frame.owner_txn = 0;
  frame.pins = 0;

  if (create) {
    frame.page.Format(id, PageType::kFree);
  } else {
    // A pending double-write image is newer than the home location.
    const std::string* pending =
        dwb_ != nullptr ? dwb_->PendingImage(id) : nullptr;
    if (pending != nullptr) {
      frame.page.CopyFrom(*pending);
    } else {
      std::string raw;
      const SimFile::IoResult r = data_file_->Read(
          io.now, static_cast<uint64_t>(id) * opts_.page_size,
          opts_.page_size, &raw);
      if (!r.status.ok()) {
        shard.map.erase(id);
        return r.status;
      }
      io.AdvanceTo(r.done);
      raw.resize(opts_.page_size, '\0');
      frame.page.CopyFrom(raw);
    }
    if (frame.page.header()->magic != Page::kMagic ||
        !frame.page.VerifyChecksum()) {
      // Undo the mapping; the frame is reusable.
      frame.id = kInvalidPageId;
      return Status::Corruption("page " + std::to_string(id) +
                                " failed checksum (torn or uninitialized)");
    }
  }
  shard.map[id] = *frame_or;
  frame.pins = 1;
  return PageRef(this, id, &frame.page, &frame.latch);
}

void BufferPool::MarkDirty(PageId id, Lsn lsn, TxnId txn) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  assert(it != shard.map.end());
  Frame& frame = *it->second;
  frame.dirty = true;
  frame.owner_txn = txn;
  if (lsn != kInvalidLsn) frame.page.set_lsn(lsn);
}

void BufferPool::ReleaseTxn(TxnId txn) {
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    for (auto& frame : sp->lru) {
      if (frame.owner_txn == txn) frame.owner_txn = 0;
    }
  }
}

void BufferPool::ClearOwner(PageId id, TxnId txn) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it != shard.map.end() && it->second->owner_txn == txn) {
    it->second->owner_txn = 0;
  }
}

Status BufferPool::FlushAll(IoContext& io) {
  if (opts_.checkpoint_queue_depth > 1 && dwb_ == nullptr &&
      !opts_.sync_every_write) {
    return FlushAllBatched(io);
  }
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    for (auto& frame : sp->lru) {
      if (frame.id == kInvalidPageId || !frame.dirty) continue;
      DURASSD_RETURN_IF_ERROR(WriteFrame(io, *sp, frame));
      sp->stats.checkpoint_page_flushes++;
    }
  }
  if (dwb_ != nullptr) {
    DURASSD_RETURN_IF_ERROR(dwb_->FlushBatch(io));
  }
  return Status::OK();
}

Status BufferPool::FlushAllBatched(IoContext& io) {
  // WAL rule, hoisted: make the log durable on device up to the newest
  // dirty page's LSN once, then destage pages with the queue kept full.
  // Partitions are walked in order under their mutexes; the checkpoint
  // itself is single-threaded by contract.
  Lsn max_lsn = 0;
  std::vector<Frame*> dirty;
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& sp : shards_) {
    locks.emplace_back(sp->mu);
    for (auto& frame : sp->lru) {
      if (frame.id == kInvalidPageId || !frame.dirty) continue;
      max_lsn = std::max(max_lsn, frame.page.lsn());
      dirty.push_back(&frame);
    }
  }
  if (dirty.empty()) return Status::OK();
  {
    std::lock_guard<std::mutex> log_lock(log_mu_);
    DURASSD_RETURN_IF_ERROR(wal_->EnsureWritten(io, max_lsn));
  }

  FileIoQueue queue(data_file_, opts_.checkpoint_queue_depth);
  uint32_t since_sync = 0;
  uint64_t flushed = 0;
  for (Frame* frame : dirty) {
    frame->page.SealChecksum();
    queue.SubmitWrite(io,
                      static_cast<uint64_t>(frame->id) * opts_.page_size,
                      frame->page.AsSlice());
    flushed++;
    if (opts_.pages_per_data_sync != 0 &&
        ++since_sync >= opts_.pages_per_data_sync) {
      since_sync = 0;
      DURASSD_RETURN_IF_ERROR(queue.Drain(io));
      const SimFile::IoResult s = data_file_->DataSync(io.now);
      DURASSD_RETURN_IF_ERROR(s.status);
      io.AdvanceTo(s.done);
    }
  }
  DURASSD_RETURN_IF_ERROR(queue.Drain(io));
  for (Frame* frame : dirty) frame->dirty = false;
  shards_[0]->stats.checkpoint_page_flushes += flushed;
  return Status::OK();
}

void BufferPool::DropAllForCrash() {
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    sp->lru.clear();
    sp->map.clear();
  }
}

BufferPool::Stats BufferPool::stats() const {
  Stats total;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    total.hits += sp->stats.hits;
    total.misses += sp->stats.misses;
    total.evictions += sp->stats.evictions;
    total.dirty_evictions += sp->stats.dirty_evictions;
    total.reads_blocked_by_writes += sp->stats.reads_blocked_by_writes;
    total.checkpoint_page_flushes += sp->stats.checkpoint_page_flushes;
  }
  return total;
}

}  // namespace durassd
