#include "db/database.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "db/page.h"

namespace durassd {

namespace {
constexpr char kDataFile[] = "data.db";
constexpr char kDwbFile[] = "dwb.db";
constexpr char kWalFile[] = "wal.log";
}  // namespace

Database::Database(SimFileSystem* data_fs, SimFileSystem* log_fs,
                   Options options)
    : data_fs_(data_fs),
      log_fs_(log_fs),
      opts_(options),
      cpu_(options.cpu_parallelism),
      h_txn_ns_(metrics_.GetHistogram("db.txn_ns")),
      h_fsync_ns_(metrics_.GetHistogram("db.fsync_ns")),
      c_degraded_aborts_(metrics_.Counter("db.degraded_aborts")) {}

Status Database::ReadOnlyError() const {
  if (poisoned_) {
    return Status::DataLoss("database poisoned: rollback failed after "
                            "device degradation");
  }
  return Status::ResourceExhausted("database is read-only: " +
                                   degraded_reason_);
}

void Database::EnterReadOnly(IoContext& io, const Status& cause) {
  if (read_only_) return;
  read_only_ = true;
  degraded_reason_ = cause.message();

  // Roll the in-flight transaction back entirely in memory: the device no
  // longer accepts writes, so no WAL records are appended and nothing is
  // synced. The pool pages it dirtied are pinned by the no-steal rule, so
  // the inverse operations hit resident pages and need no evictions.
  if (active_.id != 0) {
    const TxnId txn = active_.id;
    while (!active_.undo.empty()) {
      const UndoOp op = std::move(active_.undo.back());
      active_.undo.pop_back();
      BTree* t = TreeById(op.tree);
      if (t == nullptr) continue;
      MutationCtx m{wal_->next_lsn(), txn, &active_.dirtied};
      Status s;
      if (op.was_put) {
        s = op.had_old ? t->Put(io, m, op.key, op.old_value)
                       : t->Delete(io, m, op.key);
        if (s.IsNotFound()) s = Status::OK();
      } else {
        s = t->Put(io, m, op.key, op.old_value);
      }
      if (!s.ok()) {
        // The cached state now holds a half-undone transaction we cannot
        // finish unwinding; refuse to serve it.
        poisoned_ = true;
        break;
      }
    }
    for (PageId id : active_.dirtied) pool_->ClearOwner(id, txn);
    SyncRootPointers();
    active_ = ActiveTxn{};
    stats_.txns_aborted++;
    stats_.degraded_aborts++;
    ++*c_degraded_aborts_;
    if (tracer_) {
      tracer_->Record(io.now, TraceEventType::kTxnAbort, txn,
                      static_cast<uint64_t>(cause.code()));
    }
  }
}

void Database::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  if (wal_) wal_->set_tracer(tracer);
  if (dwb_) dwb_->set_tracer(tracer);
}

StatusOr<std::unique_ptr<Database>> Database::Open(IoContext& io,
                                                   SimFileSystem* data_fs,
                                                   SimFileSystem* log_fs,
                                                   Options options) {
  const bool existing = data_fs->Exists(kDataFile);
  auto db = std::unique_ptr<Database>(new Database(data_fs, log_fs, options));
  db->data_file_ = data_fs->Open(kDataFile);
  db->dwb_file_ = data_fs->Open(kDwbFile);
  db->wal_file_ = log_fs->Open(kWalFile);
  Wal::Options wal_opts;
  wal_opts.soft_limit_bytes = options.checkpoint_log_bytes;
  wal_opts.metrics = &db->metrics_;
  wal_opts.durability_mode = options.durability_mode;
  db->wal_ = std::make_unique<Wal>(db->wal_file_, wal_opts);
  if (options.double_write) {
    DoubleWriteBuffer::Options dwb_opts;
    dwb_opts.page_size = options.page_size;
    dwb_opts.batch_pages = options.dwb_batch_pages;
    dwb_opts.home_write_depth = options.dwb_home_write_depth;
    dwb_opts.metrics = &db->metrics_;
    dwb_opts.durability_mode = options.durability_mode;
    db->dwb_ = std::make_unique<DoubleWriteBuffer>(db->dwb_file_,
                                                   db->data_file_, dwb_opts);
  }
  BufferPool::Options pool_opts;
  pool_opts.pool_bytes = options.pool_bytes;
  pool_opts.page_size = options.page_size;
  pool_opts.sync_every_write = options.sync_every_page_write;
  pool_opts.checkpoint_queue_depth = options.checkpoint_queue_depth;
  db->pool_ = std::make_unique<BufferPool>(db->data_file_, db->wal_.get(),
                                           db->dwb_.get(), pool_opts);
  db->log_ordered_ = log_fs->device()->ordered_writes();

  if (existing) {
    DURASSD_RETURN_IF_ERROR(db->Recover(io));
  } else {
    DURASSD_RETURN_IF_ERROR(db->Initialize(io));
  }
  return db;
}

Status Database::Initialize(IoContext& io) {
  // Reserve page 0 for the meta page; real content lands at the first
  // checkpoint. Pre-size the data file so offset 0 maps to an extent.
  DURASSD_RETURN_IF_ERROR(data_file_->Allocate(opts_.page_size));
  (void)io;
  return Status::OK();
}

void Database::ChargeCpu(IoContext& io) {
  const ResourceTimeline::Grant g = cpu_.Acquire(io.now, opts_.cpu_per_op);
  io.AdvanceTo(g.done);
}

StatusOr<PageId> Database::AllocatePage(IoContext& io) {
  (void)io;
  return next_page_++;
}

BTree* Database::TreeById(uint32_t id) {
  auto it = trees_.find(id);
  return it == trees_.end() ? nullptr : it->second.get();
}

void Database::SyncRootPointers() {
  for (auto& [id, tree] : trees_) {
    tree_info_[id].root = tree->root();
  }
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

StatusOr<uint32_t> Database::CreateTree(IoContext& io,
                                        const std::string& name) {
  if (read_only_) return ReadOnlyError();
  if (tree_names_.count(name) != 0) {
    return Status::InvalidArgument("tree exists: " + name);
  }
  const uint32_t id = next_tree_id_++;
  if (!in_recovery_) {
    WalRecord rec;
    rec.type = WalRecordType::kCreateTree;
    rec.tree = id;
    rec.value = name;
    wal_->Append(rec);
  }
  MutationCtx m{wal_->next_lsn(), 0, nullptr};
  StatusOr<PageId> root = BTree::Create(io, pool_.get(), this, m);
  if (!root.ok()) return root.status();

  tree_names_[name] = id;
  tree_info_[id] = TreeInfo{id, name, *root};
  trees_[id] = std::make_unique<BTree>(pool_.get(), this, *root);
  return id;
}

StatusOr<uint32_t> Database::GetTreeId(const std::string& name) const {
  auto it = tree_names_.find(name);
  if (it == tree_names_.end()) return Status::NotFound(name);
  return it->second;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

StatusOr<TxnId> Database::Begin(IoContext& io) {
  if (read_only_) return ReadOnlyError();
  if (active_.id != 0) {
    return Status::InvalidArgument("a transaction is already active");
  }
  active_.id = next_txn_++;
  active_.begin_time = io.now;
  active_.undo.clear();
  active_.dirtied.clear();
  if (!in_recovery_) {
    WalRecord rec;
    rec.type = WalRecordType::kBegin;
    rec.txn = active_.id;
    wal_->Append(rec);
  }
  return active_.id;
}

Status Database::Put(IoContext& io, TxnId txn, uint32_t tree, Slice key,
                     Slice value) {
  if (read_only_) return ReadOnlyError();
  Status s = PutImpl(io, txn, tree, key, value);
  if (s.IsResourceExhausted()) {
    EnterReadOnly(io, s);
    return ReadOnlyError();
  }
  return s;
}

Status Database::PutImpl(IoContext& io, TxnId txn, uint32_t tree, Slice key,
                         Slice value) {
  if (txn != active_.id || txn == 0) {
    return Status::InvalidArgument("not the active transaction");
  }
  BTree* t = TreeById(tree);
  if (t == nullptr) return Status::NotFound("no such tree");
  ChargeCpu(io);
  stats_.puts++;

  std::string old_value;
  bool had_old = false;
  // The before-image is captured by the tree operation itself; log first
  // with a placeholder LSN order: append after we know the old value means
  // two passes — instead we pre-read for the undo image, then log, then
  // apply, so the page LSN covers the record.
  // (Pre-read cost: almost always a buffer hit on the page the Put will
  // touch anyway.)
  {
    std::string existing;
    Status s = t->Get(io, key, &existing);
    if (s.ok()) {
      had_old = true;
      old_value = std::move(existing);
    } else if (!s.IsNotFound()) {
      return s;
    }
  }

  WalRecord rec;
  rec.type = WalRecordType::kPut;
  rec.txn = txn;
  rec.tree = tree;
  rec.key = key.ToString();
  rec.value = value.ToString();
  rec.has_old = had_old;
  rec.old_value = old_value;
  const Lsn lsn = wal_->Append(rec);

  MutationCtx m{lsn, txn, &active_.dirtied};
  DURASSD_RETURN_IF_ERROR(t->Put(io, m, key, value));
  active_.undo.push_back(UndoOp{true, tree, rec.key, had_old, old_value});
  SyncRootPointers();
  return Status::OK();
}

Status Database::Delete(IoContext& io, TxnId txn, uint32_t tree, Slice key) {
  if (read_only_) return ReadOnlyError();
  Status s = DeleteImpl(io, txn, tree, key);
  if (s.IsResourceExhausted()) {
    EnterReadOnly(io, s);
    return ReadOnlyError();
  }
  return s;
}

Status Database::DeleteImpl(IoContext& io, TxnId txn, uint32_t tree,
                            Slice key) {
  if (txn != active_.id || txn == 0) {
    return Status::InvalidArgument("not the active transaction");
  }
  BTree* t = TreeById(tree);
  if (t == nullptr) return Status::NotFound("no such tree");
  ChargeCpu(io);
  stats_.deletes++;

  std::string old_value;
  bool had_old = false;
  {
    std::string existing;
    Status s = t->Get(io, key, &existing);
    if (s.ok()) {
      had_old = true;
      old_value = std::move(existing);
    } else if (s.IsNotFound()) {
      return s;  // Nothing to delete; no log record.
    } else {
      return s;
    }
  }

  WalRecord rec;
  rec.type = WalRecordType::kDelete;
  rec.txn = txn;
  rec.tree = tree;
  rec.key = key.ToString();
  rec.has_old = had_old;
  rec.old_value = old_value;
  const Lsn lsn = wal_->Append(rec);

  MutationCtx m{lsn, txn, &active_.dirtied};
  DURASSD_RETURN_IF_ERROR(t->Delete(io, m, key));
  active_.undo.push_back(UndoOp{false, tree, rec.key, had_old, old_value});
  SyncRootPointers();
  return Status::OK();
}

Status Database::Commit(IoContext& io, TxnId txn) {
  if (read_only_) return ReadOnlyError();
  Status s = CommitImpl(io, txn);
  if (s.IsResourceExhausted()) {
    // The commit record never became durable (the sync failed), so the
    // transaction is not committed: abort it in memory and go read-only.
    EnterReadOnly(io, s);
    return ReadOnlyError();
  }
  return s;
}

Status Database::CommitImpl(IoContext& io, TxnId txn) {
  if (txn != active_.id || txn == 0) {
    return Status::InvalidArgument("not the active transaction");
  }
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.txn = txn;
  const Lsn lsn = wal_->Append(rec);
  const SimTime sync_start = io.now;
  DURASSD_RETURN_IF_ERROR(wal_->SyncTo(io, lsn));  // Commit durability.
  h_fsync_ns_->Record(io.now - sync_start);
  if (tracer_) {
    tracer_->Record(io.now, TraceEventType::kFsync, txn,
                    static_cast<uint64_t>(io.now - sync_start));
  }

  const SimTime begin_time = active_.begin_time;
  for (PageId id : active_.dirtied) pool_->ClearOwner(id, txn);
  active_ = ActiveTxn{};
  stats_.txns_committed++;
  h_txn_ns_->Record(io.now - begin_time);
  if (tracer_) {
    tracer_->Record(io.now, TraceEventType::kTxnCommit, txn,
                    static_cast<uint64_t>(io.now - begin_time));
  }
  Status ck = MaybeCheckpoint(io);
  if (ck.IsResourceExhausted()) {
    // The commit itself is durable; the checkpoint that followed hit the
    // degraded device and flipped the engine read-only. Don't report the
    // committed transaction as failed.
    return Status::OK();
  }
  return ck;
}

Status Database::Abort(IoContext& io, TxnId txn) {
  if (read_only_) return ReadOnlyError();
  if (txn != active_.id || txn == 0) {
    return Status::InvalidArgument("not the active transaction");
  }
  // Apply inverse operations in reverse (popping as they complete, so a
  // failure mid-rollback leaves the remainder for EnterReadOnly to finish
  // in memory), logging them as compensations so replay stays
  // deterministic; then close the transaction.
  while (!active_.undo.empty()) {
    const UndoOp op = std::move(active_.undo.back());
    active_.undo.pop_back();
    BTree* t = TreeById(op.tree);
    assert(t != nullptr);
    WalRecord rec;
    rec.txn = txn;
    rec.tree = op.tree;
    rec.key = op.key;
    if (op.was_put) {
      if (op.had_old) {
        rec.type = WalRecordType::kPut;
        rec.value = op.old_value;
      } else {
        rec.type = WalRecordType::kDelete;
      }
    } else {
      // A delete always had an old value.
      rec.type = WalRecordType::kPut;
      rec.value = op.old_value;
    }
    const Lsn lsn = wal_->Append(rec);
    MutationCtx m{lsn, txn, &active_.dirtied};
    Status s;
    if (rec.type == WalRecordType::kPut) {
      s = t->Put(io, m, rec.key, rec.value);
    } else {
      s = t->Delete(io, m, rec.key);
      if (s.IsNotFound()) s = Status::OK();
    }
    if (!s.ok()) {
      if (s.IsResourceExhausted()) {
        // The inverse op did not apply; requeue it and let EnterReadOnly
        // finish the rollback without touching the device.
        active_.undo.push_back(op);
        EnterReadOnly(io, s);
        return ReadOnlyError();
      }
      return s;
    }
  }
  WalRecord rec;
  rec.type = WalRecordType::kAbort;
  rec.txn = txn;
  wal_->Append(rec);

  for (PageId id : active_.dirtied) pool_->ClearOwner(id, txn);
  SyncRootPointers();
  active_ = ActiveTxn{};
  stats_.txns_aborted++;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status Database::Get(IoContext& io, uint32_t tree, Slice key,
                     std::string* value) {
  if (poisoned_) return ReadOnlyError();
  BTree* t = TreeById(tree);
  if (t == nullptr) return Status::NotFound("no such tree");
  ChargeCpu(io);
  stats_.gets++;
  return t->Get(io, key, value);
}

Status Database::Scan(IoContext& io, uint32_t tree, Slice start, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out) {
  if (poisoned_) return ReadOnlyError();
  BTree* t = TreeById(tree);
  if (t == nullptr) return Status::NotFound("no such tree");
  ChargeCpu(io);
  stats_.scans++;
  return t->ScanFrom(io, start, limit, out);
}

Status Database::CountRange(IoContext& io, uint32_t tree, Slice start,
                            Slice end, size_t cap, uint64_t* count) {
  if (poisoned_) return ReadOnlyError();
  BTree* t = TreeById(tree);
  if (t == nullptr) return Status::NotFound("no such tree");
  ChargeCpu(io);
  stats_.scans++;
  return t->CountRange(io, start, end, cap, count);
}

// ---------------------------------------------------------------------------
// Checkpoint & meta page
// ---------------------------------------------------------------------------

std::string Database::SerializeMeta(Lsn ckpt_lsn, uint32_t gen) const {
  std::string blob;
  PutFixed64(&blob, ckpt_lsn);
  PutFixed32(&blob, gen);
  PutFixed64(&blob, next_page_);
  PutFixed32(&blob, next_tree_id_);
  PutFixed32(&blob, static_cast<uint32_t>(tree_info_.size()));
  // Deterministic order (by name) for reproducible meta images.
  for (const auto& [name, id] : tree_names_) {
    const TreeInfo& info = tree_info_.at(id);
    PutFixed32(&blob, info.id);
    PutFixed64(&blob, info.root);
    PutLengthPrefixed(&blob, name);
  }
  return blob;
}

Status Database::ParseMeta(Slice blob, Lsn* ckpt_lsn, uint32_t* gen) {
  uint64_t next_page = 0;
  uint32_t next_tree = 0, n = 0;
  if (!GetFixed64(&blob, ckpt_lsn) || !GetFixed32(&blob, gen) ||
      !GetFixed64(&blob, &next_page) || !GetFixed32(&blob, &next_tree) ||
      !GetFixed32(&blob, &n)) {
    return Status::Corruption("meta blob truncated");
  }
  next_page_ = next_page;
  next_tree_id_ = next_tree;
  tree_names_.clear();
  tree_info_.clear();
  trees_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    uint64_t root = 0;
    Slice name;
    if (!GetFixed32(&blob, &id) || !GetFixed64(&blob, &root) ||
        !GetLengthPrefixed(&blob, &name)) {
      return Status::Corruption("meta tree entry truncated");
    }
    tree_names_[name.ToString()] = id;
    tree_info_[id] = TreeInfo{id, name.ToString(), root};
    trees_[id] = std::make_unique<BTree>(pool_.get(), this, root);
  }
  return Status::OK();
}

Status Database::WriteMetaPage(IoContext& io, Lsn ckpt_lsn, uint32_t gen) {
  SyncRootPointers();
  StatusOr<PageRef> meta = pool_->Fix(io, 0, /*create=*/true);
  if (!meta.ok()) return meta.status();
  (*meta)->Format(0, PageType::kMeta);
  const std::string blob = SerializeMeta(ckpt_lsn, gen);
  std::string cell;
  cell.resize(2);
  const uint16_t len = static_cast<uint16_t>(2 + blob.size());
  memcpy(cell.data(), &len, 2);
  cell.append(blob);
  if (!(*meta)->InsertCell(0, cell)) {
    return Status::Corruption("meta blob exceeds page");
  }
  (*meta)->SealChecksum();

  // Write the meta page through the double-write path (or directly) and
  // make it durable: this is the master-record publish step.
  if (dwb_ != nullptr) {
    DURASSD_RETURN_IF_ERROR(
        dwb_->Add(io, 0, std::string((*meta)->data(), (*meta)->size())));
    DURASSD_RETURN_IF_ERROR(dwb_->FlushBatch(io));
  } else {
    const SimFile::IoResult r =
        data_file_->Write(io.now, 0, (*meta)->AsSlice());
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    const SimFile::IoResult s = data_file_->Sync(io.now);
    DURASSD_RETURN_IF_ERROR(s.status);
    io.AdvanceTo(s.done);
  }
  return Status::OK();
}

Status Database::Checkpoint(IoContext& io) {
  if (read_only_) return ReadOnlyError();
  Status s = CheckpointImpl(io);
  if (s.IsResourceExhausted()) {
    EnterReadOnly(io, s);
    return ReadOnlyError();
  }
  return s;
}

Status Database::CheckpointImpl(IoContext& io) {
  if (active_.id != 0) {
    return Status::InvalidArgument("checkpoint with active transaction");
  }
  stats_.checkpoints++;

  // Phase 1: make the log and all data pages durable. On an ordered
  // durable queue (Sec. 3.3) every acknowledged log write is already
  // durable in submission order, so writing the tail out suffices — the
  // pre-destage fsync (and its sector-sealing pad) is elided.
  if (log_ordered_) {
    DURASSD_RETURN_IF_ERROR(wal_->EnsureWritten(io, wal_->next_lsn()));
    stats_.ordered_wal_elisions++;
  } else {
    DURASSD_RETURN_IF_ERROR(wal_->SyncTo(io, wal_->next_lsn()));
  }
  DURASSD_RETURN_IF_ERROR(pool_->FlushAll(io));
  const SimFile::IoResult r = data_file_->Sync(io.now);
  DURASSD_RETURN_IF_ERROR(r.status);
  io.AdvanceTo(r.done);

  // Phase 2: publish the master record (meta page) pointing at a recycled
  // log. Only after this does recovery switch to the new generation.
  const uint32_t new_gen = wal_->generation() + 1;
  DURASSD_RETURN_IF_ERROR(WriteMetaPage(io, 0, new_gen));
  wal_->ResetTo(0, new_gen);
  return Status::OK();
}

Status Database::MaybeCheckpoint(IoContext& io) {
  if (in_recovery_) return Status::OK();
  if (wal_->bytes_since_checkpoint() < opts_.checkpoint_log_bytes) {
    return Status::OK();
  }
  return Checkpoint(io);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

Status Database::RepairTornPages(IoContext& io) {
  if (dwb_ == nullptr) return Status::OK();
  std::vector<std::pair<PageId, std::string>> images;
  DURASSD_RETURN_IF_ERROR(dwb_->RecoverImages(io, &images));
  for (const auto& [page_id, image] : images) {
    std::string raw;
    const SimFile::IoResult r = data_file_->Read(
        io.now, static_cast<uint64_t>(page_id) * opts_.page_size,
        opts_.page_size, &raw);
    // An uncorrectable device read (ECC exhausted) of a page we hold a
    // double-write copy of is repairable exactly like a torn page; every
    // other read error still aborts recovery.
    const bool device_corruption = r.status.IsCorruption();
    if (!device_corruption) {
      DURASSD_RETURN_IF_ERROR(r.status);
    }
    io.AdvanceTo(r.done);
    raw.resize(opts_.page_size, '\0');
    Page page(opts_.page_size);
    page.CopyFrom(raw);
    const bool home_intact =
        !device_corruption && page.header()->magic == Page::kMagic &&
        page.VerifyChecksum();
    if (!home_intact) {
      const SimFile::IoResult w = data_file_->Write(
          io.now, static_cast<uint64_t>(page_id) * opts_.page_size, image);
      DURASSD_RETURN_IF_ERROR(w.status);
      io.AdvanceTo(w.done);
      stats_.torn_pages_repaired++;
    }
  }
  if (stats_.torn_pages_repaired > 0) {
    const SimFile::IoResult s = data_file_->Sync(io.now);
    DURASSD_RETURN_IF_ERROR(s.status);
    io.AdvanceTo(s.done);
  }
  return Status::OK();
}

Status Database::ReplayRecords(IoContext& io,
                               const std::vector<WalRecord>& records) {
  // Transactions replay through the normal code path; the single-active-
  // transaction invariant means records of one txn are contiguous.
  std::vector<const WalRecord*> open_ops;
  TxnId open_txn = 0;

  for (const WalRecord& rec : records) {
    stats_.recovered_records++;
    switch (rec.type) {
      case WalRecordType::kCreateTree: {
        StatusOr<uint32_t> id = CreateTree(io, rec.value);
        if (!id.ok()) return id.status();
        if (*id != rec.tree) {
          return Status::Corruption("replay tree id mismatch");
        }
        break;
      }
      case WalRecordType::kBegin:
        open_txn = rec.txn;
        open_ops.clear();
        break;
      case WalRecordType::kPut:
      case WalRecordType::kDelete: {
        BTree* t = TreeById(rec.tree);
        if (t == nullptr) return Status::Corruption("replay unknown tree");
        MutationCtx m{rec.lsn, 0, nullptr};
        if (rec.type == WalRecordType::kPut) {
          DURASSD_RETURN_IF_ERROR(t->Put(io, m, rec.key, rec.value));
        } else {
          Status s = t->Delete(io, m, rec.key);
          if (!s.ok() && !s.IsNotFound()) return s;
        }
        if (rec.txn == open_txn) open_ops.push_back(&rec);
        SyncRootPointers();
        break;
      }
      case WalRecordType::kCommit:
      case WalRecordType::kAbort:
        if (rec.txn == open_txn) {
          open_txn = 0;
          open_ops.clear();
        }
        break;
      case WalRecordType::kCheckpoint:
      case WalRecordType::kPad:  // Filtered by ReadFrom; nothing to do.
        break;
    }
  }

  // Undo the loser transaction (at most one, by the single-writer rule)
  // using the logged before-images, newest first.
  if (open_txn != 0 && !open_ops.empty()) {
    stats_.undone_loser_txns++;
    for (auto it = open_ops.rbegin(); it != open_ops.rend(); ++it) {
      const WalRecord& rec = **it;
      BTree* t = TreeById(rec.tree);
      if (t == nullptr) continue;
      MutationCtx m{rec.lsn, 0, nullptr};
      if (rec.type == WalRecordType::kPut) {
        if (rec.has_old) {
          DURASSD_RETURN_IF_ERROR(t->Put(io, m, rec.key, rec.old_value));
        } else {
          Status s = t->Delete(io, m, rec.key);
          if (!s.ok() && !s.IsNotFound()) return s;
        }
      } else {  // kDelete
        DURASSD_RETURN_IF_ERROR(t->Put(io, m, rec.key, rec.old_value));
      }
      SyncRootPointers();
    }
  }
  return Status::OK();
}

Status Database::Recover(IoContext& io) {
  in_recovery_ = true;

  // 1. Repair torn home pages from the double-write region.
  DURASSD_RETURN_IF_ERROR(RepairTornPages(io));

  // 2. Load the master record (meta page). An unreadable meta page on a
  //    fresh database (never checkpointed) means "replay everything from
  //    LSN 0, generation 1, over an empty database".
  Lsn ckpt_lsn = 0;
  uint32_t gen = 1;
  {
    std::string raw;
    const SimFile::IoResult r =
        data_file_->Read(io.now, 0, opts_.page_size, &raw);
    DURASSD_RETURN_IF_ERROR(r.status);
    io.AdvanceTo(r.done);
    raw.resize(opts_.page_size, '\0');
    Page meta(opts_.page_size);
    meta.CopyFrom(raw);
    const bool all_zero = raw.find_first_not_of('\0') == std::string::npos;
    if (meta.header()->magic == Page::kMagic && meta.VerifyChecksum() &&
        meta.type() == PageType::kMeta && meta.nslots() >= 1) {
      Slice cell = meta.CellAt(0);
      cell.remove_prefix(2);  // Cell length.
      DURASSD_RETURN_IF_ERROR(ParseMeta(cell, &ckpt_lsn, &gen));
    } else if (!all_zero) {
      // A master record was written at some point but is now unreadable —
      // a torn meta page with no intact double-write copy. Unrecoverable.
      return Status::Corruption("master record (meta page) is torn");
    } else if (wal_file_->size() == 0) {
      // Nothing was ever logged: clean fresh database.
      in_recovery_ = false;
      return Initialize(io);
    }
    // else: crashed before the first checkpoint — replay everything from
    // LSN 0, generation 1, over an empty database (defaults above).
  }

  // 3. Replay the durable log prefix. The resume point comes from the
  //    scan itself so trailing kPad frames stay sealed: resuming before a
  //    pad would rewrite its (synced) sector in place.
  std::vector<WalRecord> records;
  Lsn resume_lsn = ckpt_lsn;
  DURASSD_RETURN_IF_ERROR(
      wal_->ReadFrom(io, ckpt_lsn, gen, &records, &resume_lsn));
  DURASSD_RETURN_IF_ERROR(ReplayRecords(io, records));
  wal_->ResumeAt(resume_lsn, gen);
  // Drop the torn tail before any new frame is appended at resume_lsn:
  // otherwise a complete stale frame stranded beyond the torn point could
  // be resurrected by a second crash once fresh appends close the gap.
  DURASSD_RETURN_IF_ERROR(wal_->TruncateTail(resume_lsn));

  in_recovery_ = false;

  // 4. Checkpoint immediately: truncates the replayed log and publishes a
  //    clean master record. On a degraded (read-only) device the
  //    checkpoint cannot be written; the recovered state is still fully
  //    served from memory, so recovery succeeds in read-only mode.
  Status ck = CheckpointImpl(io);
  if (ck.IsResourceExhausted()) {
    EnterReadOnly(io, ck);
    return Status::OK();
  }
  return ck;
}

}  // namespace durassd
