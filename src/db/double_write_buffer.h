#ifndef DURASSD_DB_DOUBLE_WRITE_BUFFER_H_
#define DURASSD_DB_DOUBLE_WRITE_BUFFER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "db/io_context.h"
#include "host/durability_mode.h"
#include "host/sim_file.h"

namespace durassd {

/// InnoDB-style double-write buffer (Sec. 2.1): evicted page images are
/// first written sequentially to a dedicated region and fsynced, then
/// written to their home locations, then the data file is fsynced before
/// the region is reused. After a crash, any torn home page is restored from
/// its intact double-write copy. This is exactly the redundancy DuraSSD's
/// atomic page writes make unnecessary.
class DoubleWriteBuffer {
 public:
  struct Options {
    uint32_t page_size = 4 * kKiB;
    /// Pages accumulated in memory before one batched double-write pass.
    uint32_t batch_pages = 16;
    /// Queue depth for the home-location writes of a batch. 0 = issue all
    /// at once and wait for the slowest (the pre-async model, and still
    /// the default); >0 bounds the submission window via the asynchronous
    /// file path.
    uint32_t home_write_depth = 0;
    /// Owner's metrics registry; the buffer registers under the "dwb."
    /// prefix. May be null (no metrics collected).
    MetricsRegistry* metrics = nullptr;
    /// Both fsyncs of the double-write protocol exist to *order* phases
    /// (region images before home writes, home writes before region reuse);
    /// in kBarrier mode they become barrier submissions and the batch stops
    /// waiting on media between phases.
    DurabilityMode durability_mode = DurabilityMode::kDurableOrderedNcq;
  };

  DoubleWriteBuffer(SimFile* dwb_file, SimFile* data_file, Options options);

  /// Queues a sealed page image (checksummed) destined for
  /// `page_id * page_size` in the data file. Triggers a batch flush when
  /// the batch is full.
  Status Add(IoContext& io, PageId page_id, std::string image);

  /// Forces out any pending batch (checkpoint path).
  Status FlushBatch(IoContext& io);

  /// True if the given page has a pending (not yet home-written) image.
  /// The buffer pool must serve reads of such pages from here.
  const std::string* PendingImage(PageId page_id) const;

  /// Recovery: returns the page images in the double-write region whose
  /// checksums are intact.
  Status RecoverImages(IoContext& io,
                       std::vector<std::pair<PageId, std::string>>* out);

  struct Stats {
    uint64_t batches = 0;
    uint64_t pages_double_written = 0;
    uint64_t restored_pages = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Attaches (or detaches, with nullptr) an event tracer.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  SimFile* dwb_file_;
  SimFile* data_file_;
  Options opts_;
  std::vector<std::pair<PageId, std::string>> pending_;
  Stats stats_;

  Tracer* tracer_ = nullptr;
  /// Registered metrics (null when no registry was supplied).
  Histogram* h_batch_ns_ = nullptr;
};

}  // namespace durassd

#endif  // DURASSD_DB_DOUBLE_WRITE_BUFFER_H_
