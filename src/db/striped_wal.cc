#include "db/striped_wal.h"

#include <algorithm>
#include <cassert>

namespace durassd {

StripedWal::StripedWal(SimFileSystem* fs, Options options)
    : fs_(fs), opts_(std::move(options)) {
  const uint32_t n = std::max<uint32_t>(opts_.stripes, 1);
  Wal::Options wal_opts = opts_.wal;
  wal_opts.metrics = nullptr;  // Histograms are single-thread-only.
  stripes_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto st = std::make_unique<Stripe>();
    st->file = fs_->Open(opts_.base_name + "." + std::to_string(i));
    st->wal = std::make_unique<Wal>(st->file, wal_opts);
    stripes_.push_back(std::move(st));
  }
}

StatusOr<uint64_t> StripedWal::Append(IoContext& io, uint32_t stripe,
                                      const std::vector<WalRecord>& records) {
  Stripe& st = *stripes_[stripe % stripes_.size()];
  std::lock_guard<std::mutex> lock(st.mu);
  const uint64_t csn =
      next_csn_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (const WalRecord& r : records) {
    assert(r.type != WalRecordType::kCommit);
    st.wal->Append(r);
  }
  WalRecord marker;
  marker.type = WalRecordType::kCommit;
  marker.txn = csn;
  st.wal->Append(marker);
  st.appends++;
  // Write out (no fsync): the state of a commit whose flush is in flight.
  DURASSD_RETURN_IF_ERROR(st.wal->WriteOut(io));
  st.undurable.push_back(csn);
  return csn;
}

Status StripedWal::SyncStripe(IoContext& io, uint32_t stripe) {
  Stripe& st = *stripes_[stripe % stripes_.size()];
  std::lock_guard<std::mutex> lock(st.mu);
  const Lsn target = st.wal->next_lsn();
  const Wal::Stats before = st.wal->stats();
  DURASSD_RETURN_IF_ERROR(st.wal->SyncTo(io, target));
  const Wal::Stats& after = st.wal->stats();
  st.syncs += after.syncs - before.syncs;
  st.rides += after.group_rides - before.group_rides;
  st.durable_lsn = std::max(st.durable_lsn, target);
  // The stripe log is a prefix log: this sync covers every earlier append.
  while (!st.undurable.empty()) {
    MarkDurable(st.undurable.front());
    st.undurable.pop_front();
  }
  return Status::OK();
}

StatusOr<StripedWal::CommitTicket> StripedWal::Commit(
    IoContext& io, uint32_t stripe, const std::vector<WalRecord>& records) {
  StatusOr<uint64_t> csn_or = Append(io, stripe, records);
  if (!csn_or.ok()) return csn_or.status();
  DURASSD_RETURN_IF_ERROR(SyncStripe(io, stripe));
  {
    Stripe& st = *stripes_[stripe % stripes_.size()];
    std::lock_guard<std::mutex> lock(st.mu);
    st.commits++;
  }
  CommitTicket t;
  t.csn = *csn_or;
  t.durable_at = io.now;
  return t;
}

void StripedWal::MarkDurable(uint64_t csn) {
  std::lock_guard<std::mutex> lock(wm_mu_);
  uint64_t wm = watermark_.load(std::memory_order_relaxed);
  if (csn != wm + 1) {
    durable_above_.insert(csn);
    return;
  }
  wm = csn;
  // Drain any now-contiguous out-of-order frontier.
  auto it = durable_above_.begin();
  while (it != durable_above_.end() && *it == wm + 1) {
    wm = *it;
    it = durable_above_.erase(it);
  }
  watermark_.store(wm, std::memory_order_release);
}

Lsn StripedWal::stripe_durable_lsn(uint32_t stripe) const {
  const Stripe& st = *stripes_[stripe % stripes_.size()];
  std::lock_guard<std::mutex> lock(st.mu);
  return st.durable_lsn;
}

Status StripedWal::Recover(IoContext& io, std::vector<RecoveredCommit>* out) {
  out->clear();

  // Parsed per-stripe state: commit groups (with the byte offset of each
  // group's first frame) and where the well-formed prefix ends.
  struct ParsedCommit {
    RecoveredCommit commit;
    Lsn start_lsn = 0;
  };
  std::vector<std::vector<ParsedCommit>> parsed(stripes_.size());
  std::vector<Lsn> trailing_start(stripes_.size(), 0);
  std::vector<Lsn> end_lsn(stripes_.size(), 0);

  for (uint32_t i = 0; i < stripes_.size(); ++i) {
    Stripe& st = *stripes_[i];
    std::lock_guard<std::mutex> lock(st.mu);
    std::vector<WalRecord> records;
    DURASSD_RETURN_IF_ERROR(st.wal->ReadFrom(io, 0, st.wal->generation(),
                                             &records, &end_lsn[i]));
    std::vector<WalRecord> batch;
    Lsn batch_start = end_lsn[i];
    bool in_batch = false;
    for (WalRecord& r : records) {
      if (!in_batch) {
        batch_start = r.lsn;
        in_batch = true;
      }
      if (r.type == WalRecordType::kCommit) {
        ParsedCommit pc;
        pc.commit.csn = r.txn;
        pc.commit.stripe = i;
        pc.commit.records = std::move(batch);
        pc.start_lsn = batch_start;
        parsed[i].push_back(std::move(pc));
        batch.clear();
        in_batch = false;
      } else {
        batch.push_back(std::move(r));
      }
    }
    // A trailing batch without its marker is a commit whose marker frame
    // never survived: dead from the first record on.
    trailing_start[i] = in_batch ? batch_start : end_lsn[i];
  }

  // Merge by CSN and keep only the contiguous prefix: a gap means a
  // lower-CSN commit on another stripe was lost, and nothing at or above
  // the gap was ever acknowledgeable.
  std::vector<const ParsedCommit*> all;
  uint64_t max_seen = 0;
  for (const auto& stripe_commits : parsed) {
    for (const ParsedCommit& pc : stripe_commits) {
      all.push_back(&pc);
      max_seen = std::max(max_seen, pc.commit.csn);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ParsedCommit* a, const ParsedCommit* b) {
              return a->commit.csn < b->commit.csn;
            });
  uint64_t wm = 0;
  for (const ParsedCommit* pc : all) {
    if (pc->commit.csn != wm + 1) break;
    wm = pc->commit.csn;
    out->push_back(pc->commit);
  }

  // Truncate every stripe's dead suffix (commits past the gap and the
  // trailing unmarked batch). Without this, a later commit could close the
  // CSN gap by accident and resurrect a commit that recovery already
  // discarded. Note: truncating to a mid-sector offset re-exposes the
  // synced-sector rewrite hazard on torn-write devices (Wal pads only on
  // sync); the paper's durable-cache device is immune.
  for (uint32_t i = 0; i < stripes_.size(); ++i) {
    Stripe& st = *stripes_[i];
    std::lock_guard<std::mutex> lock(st.mu);
    Lsn keep_end = trailing_start[i];
    for (const ParsedCommit& pc : parsed[i]) {
      if (pc.commit.csn > wm) {
        keep_end = std::min(keep_end, pc.start_lsn);
        break;  // Per-stripe CSNs are append-ordered; the rest is dead too.
      }
    }
    if (keep_end < end_lsn[i]) {
      DURASSD_RETURN_IF_ERROR(st.wal->TruncateTail(keep_end));
    }
    st.wal->ResumeAt(keep_end, st.wal->generation());
    st.durable_lsn = keep_end;
    st.undurable.clear();
  }

  {
    std::lock_guard<std::mutex> lock(wm_mu_);
    durable_above_.clear();
    watermark_.store(wm, std::memory_order_release);
  }
  // Resume numbering at the watermark. CSNs past the gap are dead and will
  // never become durable, so skipping them would wedge the watermark
  // forever; reusing them is safe exactly because their bytes were
  // truncated above — a reissued CSN can only ever resolve to the new
  // commit, never the discarded one.
  next_csn_.store(wm, std::memory_order_release);
  return Status::OK();
}

StripedWal::Stats StripedWal::stats() const {
  Stats total;
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    total.commits += sp->commits;
    total.appends += sp->appends;
    total.stripe_syncs += sp->syncs;
    total.group_rides += sp->rides;
  }
  return total;
}

}  // namespace durassd
