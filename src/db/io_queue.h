#ifndef DURASSD_DB_IO_QUEUE_H_
#define DURASSD_DB_IO_QUEUE_H_

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "db/io_context.h"
#include "host/sim_file.h"

namespace durassd {

/// Bounded queue-depth submitter over SimFile's asynchronous write path.
/// SubmitWrite keeps up to `depth` file commands in flight, advancing the
/// caller's clock to the earliest completion when the window is full (the
/// host analogue of a full NCQ). Drain consumes every outstanding
/// completion — always, even after an error — so stale completions never
/// leak to a later user of the file, and returns the first error seen with
/// the time the last completion landed.
///
/// depth == 0 means "submit synchronously" (each write awaited in turn),
/// which reproduces the pre-async serial behavior exactly.
class FileIoQueue {
 public:
  FileIoQueue(SimFile* file, uint32_t depth) : file_(file), depth_(depth) {}

  FileIoQueue(const FileIoQueue&) = delete;
  FileIoQueue& operator=(const FileIoQueue&) = delete;

  /// Submits one write, stalling (in virtual time) while the window is
  /// full. Errors are deferred to Drain.
  void SubmitWrite(IoContext& io, uint64_t offset, Slice data) {
    if (depth_ == 0) {
      const CmdId id = file_->SubmitWrite(io.now, offset, data);
      Absorb(file_->Await(id));
      return;
    }
    while (file_->pending_count() >= depth_) {
      io.AdvanceTo(file_->EarliestPendingDone());
      for (const SimFile::Completion& c : file_->Poll(io.now)) Absorb(c);
    }
    file_->SubmitWrite(io.now, offset, data);
    submitted_++;
  }

  /// Waits for everything in flight; returns the first error seen across
  /// the queue's whole lifetime (OK if none).
  Status Drain(IoContext& io) {
    while (file_->pending_count() > 0) {
      io.AdvanceTo(file_->EarliestPendingDone());
      for (const SimFile::Completion& c : file_->Poll(io.now)) Absorb(c);
    }
    return first_error_;
  }

  uint64_t submitted() const { return submitted_; }

 private:
  void Absorb(const SimFile::Completion& c) {
    if (first_error_.ok() && !c.status.ok()) first_error_ = c.status;
  }

  SimFile* file_;
  uint32_t depth_;
  uint64_t submitted_ = 0;
  Status first_error_;
};

}  // namespace durassd

#endif  // DURASSD_DB_IO_QUEUE_H_
