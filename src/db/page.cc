#include "db/page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/crc32c.h"

namespace durassd {

void Page::Format(PageId id, PageType type) {
  memset(data_.data(), 0, data_.size());
  Header* h = header();
  h->magic = kMagic;
  h->page_id = id;
  h->type = static_cast<uint16_t>(type);
  h->nslots = 0;
  h->cell_start = size();
  h->lsn = 0;
  h->aux1 = kInvalidPageId;
  h->aux2 = 0;
}

uint32_t Page::FreeSpace() const {
  const uint32_t slots_end =
      kHeaderSize + static_cast<uint32_t>(header()->nslots) * 2;
  if (header()->cell_start < slots_end) return header()->garbage;
  return header()->cell_start - slots_end + header()->garbage;
}

bool Page::InsertCell(uint16_t index, Slice cell) {
  Header* h = header();
  assert(index <= h->nslots);
  if (FreeSpace() < cell.size() + 2) return false;
  const uint32_t slots_end = kHeaderSize + h->nslots * 2u;
  // If contiguous space between slot array and cell area is short but total
  // free space suffices, compact first.
  if (h->cell_start - slots_end < cell.size() + 2) {
    Compact();
  }
  if (h->cell_start - (kHeaderSize + h->nslots * 2u) < cell.size() + 2) {
    return false;
  }
  h->cell_start -= static_cast<uint32_t>(cell.size());
  memcpy(data_.data() + h->cell_start, cell.data(), cell.size());
  uint16_t* slots = slot_array();
  for (uint16_t i = h->nslots; i > index; --i) slots[i] = slots[i - 1];
  slots[index] = static_cast<uint16_t>(h->cell_start);
  h->nslots++;
  return true;
}

void Page::RemoveCell(uint16_t index) {
  Header* h = header();
  assert(index < h->nslots);
  h->garbage += static_cast<uint32_t>(CellAt(index).size());
  uint16_t* slots = slot_array();
  for (uint16_t i = index; i + 1 < h->nslots; ++i) slots[i] = slots[i + 1];
  h->nslots--;
  // Cell bytes become garbage; reclaimed on Compact().
}

Slice Page::CellAt(uint16_t index) const {
  assert(index < header()->nslots);
  const uint16_t off = slot_array()[index];
  // Cells are self-describing: the first two bytes encode the total cell
  // length (written by the B-tree layer).
  uint16_t len;
  memcpy(&len, data_.data() + off, 2);
  return Slice(data_.data() + off, len);
}

bool Page::ReplaceCell(uint16_t index, Slice cell) {
  const Slice old = CellAt(index);
  if (cell.size() == old.size()) {
    memcpy(data_.data() + slot_array()[index], cell.data(), cell.size());
    return true;
  }
  RemoveCell(index);
  if (InsertCell(index, cell)) return true;
  return false;
}

void Page::Compact() {
  Header* h = header();
  std::vector<std::string> cells;
  cells.reserve(h->nslots);
  for (uint16_t i = 0; i < h->nslots; ++i) {
    cells.emplace_back(CellAt(i).ToString());
  }
  h->cell_start = size();
  h->garbage = 0;
  uint16_t* slots = slot_array();
  for (uint16_t i = 0; i < h->nslots; ++i) {
    h->cell_start -= static_cast<uint32_t>(cells[i].size());
    memcpy(data_.data() + h->cell_start, cells[i].data(), cells[i].size());
    slots[i] = static_cast<uint16_t>(h->cell_start);
  }
}

namespace {
// CRC over the page with the 4-byte checksum field (offset 4) replaced by
// zeros, computed without copying via seed chaining.
uint32_t PageCrc(const char* data, size_t size) {
  static const char kZeros[4] = {0, 0, 0, 0};
  uint32_t crc = Crc32c(data, 4);
  crc = Crc32c(kZeros, 4, crc);
  return Crc32c(data + 8, size - 8, crc);
}
}  // namespace

void Page::SealChecksum() {
  header()->checksum = PageCrc(data_.data(), data_.size());
}

bool Page::VerifyChecksum() const {
  return header()->checksum == PageCrc(data_.data(), data_.size());
}

void Page::CopyFrom(Slice raw) {
  assert(raw.size() == data_.size());
  memcpy(data_.data(), raw.data(), raw.size());
}

}  // namespace durassd
