#ifndef DURASSD_DB_STRIPED_WAL_H_
#define DURASSD_DB_STRIPED_WAL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/io_context.h"
#include "db/wal.h"
#include "host/sim_file.h"

namespace durassd {

/// Striped group commit (DESIGN.md §13): N independent WAL segments, each
/// its own Wal over its own file, each with its own latch — commits on
/// different stripes never contend on a log mutex and their fsyncs proceed
/// independently. A global, atomically allocated commit sequence number
/// (CSN) totally orders commits across stripes; the *watermark* is the
/// largest CSN W such that every commit with CSN <= W is durable on its
/// stripe. Only commits at or below the watermark may be acknowledged
/// upstream: a commit above it can still be lost to a power cut (its CSN
/// predecessor on another stripe may not be durable yet), and recovery
/// discards everything past the first CSN gap to keep the acknowledged
/// history prefix-consistent.
///
/// Group commit per stripe: the stripe latch serializes committers, and the
/// underlying Wal's sync window lets queued committers ride an in-flight
/// flush instead of issuing their own (the leader pays the fsync, the
/// followers ride — Wal::Stats group accounting applies per stripe).
///
/// Per-stripe Wal metrics registries are deliberately not wired: the Wal's
/// histograms are single-thread-only by convention, and stripes commit from
/// many threads. Aggregate stripe stats come from stats() instead.
class StripedWal {
 public:
  struct Options {
    uint32_t stripes = 4;
    /// Per-stripe framing/durability options. `metrics` is ignored (forced
    /// null — see class comment).
    Wal::Options wal;
    /// Stripe files are named "<base>.<i>".
    std::string base_name = "swal";
  };

  struct CommitTicket {
    uint64_t csn = 0;
    /// Virtual instant the commit's covering fsync completed.
    SimTime durable_at = 0;
  };

  /// One durable commit group reassembled by Recover, in CSN order.
  struct RecoveredCommit {
    uint64_t csn = 0;
    uint32_t stripe = 0;
    std::vector<WalRecord> records;
  };

  struct Stats {
    uint64_t commits = 0;        ///< Durable commits (Commit returns).
    uint64_t appends = 0;        ///< Append calls (incl. Commit's).
    uint64_t stripe_syncs = 0;   ///< Device syncs paid by some leader.
    uint64_t group_rides = 0;    ///< Commits that rode a stripe's window.
  };

  /// Opens (or reopens, after a crash) the stripe files under `fs`.
  StripedWal(SimFileSystem* fs, Options options);

  StripedWal(const StripedWal&) = delete;
  StripedWal& operator=(const StripedWal&) = delete;

  uint32_t stripes() const { return static_cast<uint32_t>(stripes_.size()); }

  /// Appends `records` plus a commit marker to `stripe` (mod stripes) and
  /// writes them out to the stripe file WITHOUT waiting for durability —
  /// the state of a commit whose fsync is still in flight. Returns the
  /// allocated CSN. `records` must not contain kCommit markers.
  StatusOr<uint64_t> Append(IoContext& io, uint32_t stripe,
                            const std::vector<WalRecord>& records);

  /// Makes everything appended to `stripe` durable (the leader fsync; may
  /// resolve as a ride of the stripe's in-flight sync window) and advances
  /// the watermark over the stripe's newly durable CSNs.
  Status SyncStripe(IoContext& io, uint32_t stripe);

  /// Append + SyncStripe: the group-commit path. On return the commit is
  /// durable on its stripe; it is *acknowledgeable* only once
  /// watermark() >= ticket.csn.
  StatusOr<CommitTicket> Commit(IoContext& io, uint32_t stripe,
                                const std::vector<WalRecord>& records);

  /// Largest CSN with every predecessor durable. Lock-free read.
  uint64_t watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }
  /// Last allocated CSN (>= watermark).
  uint64_t last_csn() const {
    return next_csn_.load(std::memory_order_acquire);
  }

  /// Largest byte offset of `stripe` covered by a completed fsync.
  Lsn stripe_durable_lsn(uint32_t stripe) const;

  /// Post-crash: reads every stripe's durable prefix, reassembles commit
  /// groups, merges them in CSN order, and discards everything at and past
  /// the first CSN gap (a gap means a lower-CSN commit on another stripe
  /// was lost — commits above it were never acknowledgeable). Discarded
  /// suffixes are physically truncated from their stripes and CSN
  /// numbering resumes at the watermark: reissued CSNs can only resolve to
  /// new commits, and the watermark never wedges behind dead numbers.
  /// Rebuilds the watermark and positions every stripe for further
  /// appends. Call on a freshly constructed StripedWal over the surviving
  /// files.
  Status Recover(IoContext& io, std::vector<RecoveredCommit>* out);

  Stats stats() const;

 private:
  struct Stripe {
    SimFile* file = nullptr;
    std::unique_ptr<Wal> wal;
    /// Serializes this stripe's append/commit path (DESIGN.md §13: stripe
    /// latch -> fs latch -> device latch).
    mutable std::mutex mu;
    /// CSNs appended (written out) but not yet covered by a sync, in
    /// append order. A sync drains the whole queue: the stripe log is a
    /// prefix log, so a sync covers every earlier append.
    std::deque<uint64_t> undurable;
    Lsn durable_lsn = 0;
    uint64_t commits = 0;
    uint64_t appends = 0;
    uint64_t syncs = 0;
    uint64_t rides = 0;
  };

  /// Marks `csn` durable and advances the watermark over any now-contiguous
  /// prefix.
  void MarkDurable(uint64_t csn);

  SimFileSystem* fs_;
  Options opts_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  std::atomic<uint64_t> next_csn_{0};
  std::atomic<uint64_t> watermark_{0};
  /// Durable CSNs above the watermark (the out-of-order frontier).
  std::mutex wm_mu_;
  std::set<uint64_t> durable_above_;
};

}  // namespace durassd

#endif  // DURASSD_DB_STRIPED_WAL_H_
