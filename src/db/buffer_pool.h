#ifndef DURASSD_DB_BUFFER_POOL_H_
#define DURASSD_DB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "db/double_write_buffer.h"
#include "db/io_context.h"
#include "db/page.h"
#include "db/wal.h"
#include "host/sim_file.h"

namespace durassd {

class BufferPool;

/// RAII pin on a fixed page. While alive, the frame cannot be evicted.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, PageId id, Page* page);
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  Page* operator->() { return page_; }
  Page& operator*() { return *page_; }
  Page* get() { return page_; }
  const Page* get() const { return page_; }
  PageId id() const { return id_; }
  bool valid() const { return page_ != nullptr; }
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  Page* page_ = nullptr;
};

/// The database buffer pool: fixed frame count, LRU replacement, dirty
/// eviction through the WAL rule and (optionally) the double-write buffer.
/// This is where Fig. 1's "reads blocked by writes" happens: a read miss
/// with no clean frame pays for a dirty-page write (and its fsyncs) before
/// the read can even start.
class BufferPool {
 public:
  struct Options {
    uint64_t pool_bytes = 64 * kMiB;
    uint32_t page_size = 4 * kKiB;
    /// fsync after every page write (O_DSYNC — the commercial RDBMS
    /// behaviour in the paper's TPC-C experiment, Sec. 4.3.2).
    bool sync_every_write = false;
    /// InnoDB-style fil_flush: fsync the data file after this many direct
    /// page writes (non-double-write path). 0 disables.
    uint32_t pages_per_data_sync = 24;
    /// Checkpoint destage queue depth: FlushAll keeps this many page
    /// writes in flight through the asynchronous file path (direct-write
    /// configurations only; the double-write and O_DSYNC paths stay
    /// serial). <= 1 reproduces the serial pre-async behavior exactly.
    uint32_t checkpoint_queue_depth = 1;
  };
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_evictions = 0;
    /// Read fixes that had to wait for a dirty-page write first (Fig. 1).
    uint64_t reads_blocked_by_writes = 0;
    uint64_t checkpoint_page_flushes = 0;

    double MissRatio() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(misses) /
                              static_cast<double>(total);
    }
  };

  /// `dwb` may be null (the double-write-buffer OFF configurations).
  BufferPool(SimFile* data_file, Wal* wal, DoubleWriteBuffer* dwb,
             Options options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_size() const { return opts_.page_size; }
  uint64_t capacity_frames() const { return capacity_; }

  /// Fixes a page into the pool and pins it. With `create` the page is not
  /// read from storage (fresh page; caller formats it). Reading a page that
  /// fails its checksum returns Corruption — a torn page reached the pool.
  StatusOr<PageRef> Fix(IoContext& io, PageId id, bool create);

  /// Marks a fixed page dirty under `txn`; frames dirtied by an active
  /// transaction are not evictable until ReleaseTxn (no-steal policy).
  void MarkDirty(PageId id, Lsn lsn, TxnId txn);
  /// O(pool) fallback; prefer ClearOwner per dirtied page.
  void ReleaseTxn(TxnId txn);
  void ClearOwner(PageId id, TxnId txn);

  /// Writes out every dirty frame (checkpoint). Frames stay resident.
  Status FlushAll(IoContext& io);

  /// Drops all frames without writing (used to simulate the host losing
  /// RAM in a crash; the files keep whatever was flushed).
  void DropAllForCrash();

  const Stats& stats() const { return stats_; }

 private:
  friend class PageRef;

  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    bool dirty = false;
    uint32_t pins = 0;
    TxnId owner_txn = 0;  ///< Nonzero while an active txn has changes here.
    explicit Frame(uint32_t page_size) : page(page_size) {}
  };
  using FrameList = std::list<Frame>;

  void Unpin(PageId id);
  /// Writes one dirty frame out (WAL rule + double-write or direct).
  Status WriteFrame(IoContext& io, Frame& frame);
  /// Checkpoint destage at checkpoint_queue_depth via the async file path.
  Status FlushAllBatched(IoContext& io);
  /// Makes a frame available, evicting the LRU victim if at capacity.
  StatusOr<FrameList::iterator> GetFreeFrame(IoContext& io, bool for_read);

  SimFile* data_file_;
  Wal* wal_;
  DoubleWriteBuffer* dwb_;
  Options opts_;
  uint64_t capacity_;

  FrameList lru_;  ///< Front = most recently used.
  std::unordered_map<PageId, FrameList::iterator> map_;
  uint32_t writes_since_data_sync_ = 0;
  Stats stats_;
};

}  // namespace durassd

#endif  // DURASSD_DB_BUFFER_POOL_H_
