#ifndef DURASSD_DB_BUFFER_POOL_H_
#define DURASSD_DB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/double_write_buffer.h"
#include "db/io_context.h"
#include "db/page.h"
#include "db/wal.h"
#include "host/sim_file.h"

namespace durassd {

class BufferPool;

/// RAII pin on a fixed page. While alive, the frame cannot be evicted.
///
/// The ref also exposes the frame's latch (reader-writer) for callers that
/// need page-level isolation — the B+-tree's latch-coupled descent. Pins
/// and latches are deliberately separate: a pin only prevents eviction;
/// the latch orders concurrent readers/writers on the page contents. The
/// latch pointer stays valid for the life of the pin (eviction requires
/// pins == 0, and latch holders always hold a pin).
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, PageId id, Page* page, std::shared_mutex* latch);
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  Page* operator->() { return page_; }
  Page& operator*() { return *page_; }
  Page* get() { return page_; }
  const Page* get() const { return page_; }
  PageId id() const { return id_; }
  bool valid() const { return page_ != nullptr; }
  /// Frame latch for latch-coupling; never acquired by the pool itself.
  std::shared_mutex* latch() { return latch_; }
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  Page* page_ = nullptr;
  std::shared_mutex* latch_ = nullptr;
};

/// The database buffer pool: fixed frame count, LRU replacement, dirty
/// eviction through the WAL rule and (optionally) the double-write buffer.
/// This is where Fig. 1's "reads blocked by writes" happens: a read miss
/// with no clean frame pays for a dirty-page write (and its fsyncs) before
/// the read can even start.
///
/// Partitioning (DESIGN.md §13): the pool is split into `Options::shards`
/// independent partitions keyed by `id % shards`, each with its own LRU
/// list, hash map, stats, and mutex — concurrent fixes on different
/// partitions never contend. The default (1 shard) is bit-identical to the
/// historical unsharded pool: same LRU decisions, same eviction I/O, same
/// stats. Lock order: a partition mutex may be held across file/device
/// calls (eviction writes); frame latches are always acquired *after* Fix
/// returns (never under a partition mutex), so partition-mutex -> fs-latch
/// -> device-latch and frame-latch -> partition-mutex never cycle.
class BufferPool {
 public:
  struct Options {
    uint64_t pool_bytes = 64 * kMiB;
    uint32_t page_size = 4 * kKiB;
    /// fsync after every page write (O_DSYNC — the commercial RDBMS
    /// behaviour in the paper's TPC-C experiment, Sec. 4.3.2).
    bool sync_every_write = false;
    /// InnoDB-style fil_flush: fsync the data file after this many direct
    /// page writes (non-double-write path). 0 disables.
    uint32_t pages_per_data_sync = 24;
    /// Checkpoint destage queue depth: FlushAll keeps this many page
    /// writes in flight through the asynchronous file path (direct-write
    /// configurations only; the double-write and O_DSYNC paths stay
    /// serial). <= 1 reproduces the serial pre-async behavior exactly.
    uint32_t checkpoint_queue_depth = 1;
    /// Latch-guarded partitions keyed by page id. 1 (the default) is
    /// bit-identical to the historical unsharded pool; capacity is split
    /// evenly across partitions (remainder to the lowest-numbered ones).
    uint32_t shards = 1;
  };
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_evictions = 0;
    /// Read fixes that had to wait for a dirty-page write first (Fig. 1).
    uint64_t reads_blocked_by_writes = 0;
    uint64_t checkpoint_page_flushes = 0;

    double MissRatio() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(misses) /
                              static_cast<double>(total);
    }
  };

  /// `dwb` may be null (the double-write-buffer OFF configurations).
  BufferPool(SimFile* data_file, Wal* wal, DoubleWriteBuffer* dwb,
             Options options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_size() const { return opts_.page_size; }
  uint64_t capacity_frames() const { return capacity_; }
  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }

  /// Fixes a page into the pool and pins it. With `create` the page is not
  /// read from storage (fresh page; caller formats it). Reading a page that
  /// fails its checksum returns Corruption — a torn page reached the pool.
  StatusOr<PageRef> Fix(IoContext& io, PageId id, bool create);

  /// Marks a fixed page dirty under `txn`; frames dirtied by an active
  /// transaction are not evictable until ReleaseTxn (no-steal policy).
  void MarkDirty(PageId id, Lsn lsn, TxnId txn);
  /// O(pool) fallback; prefer ClearOwner per dirtied page.
  void ReleaseTxn(TxnId txn);
  void ClearOwner(PageId id, TxnId txn);

  /// Writes out every dirty frame (checkpoint). Frames stay resident.
  /// Single-threaded by contract (walks all partitions in order).
  Status FlushAll(IoContext& io);

  /// Drops all frames without writing (used to simulate the host losing
  /// RAM in a crash; the files keep whatever was flushed).
  void DropAllForCrash();

  /// Merged snapshot across partitions (sum of per-partition stats).
  Stats stats() const;

 private:
  friend class PageRef;

  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    bool dirty = false;
    uint32_t pins = 0;
    TxnId owner_txn = 0;  ///< Nonzero while an active txn has changes here.
    /// Page-content latch for latch-coupled descent; the pool never takes
    /// it (pins == 0 already implies no holders when evicting).
    std::shared_mutex latch;
    explicit Frame(uint32_t page_size) : page(page_size) {}
  };
  using FrameList = std::list<Frame>;

  struct Shard {
    mutable std::mutex mu;
    FrameList lru;  ///< Front = most recently used.
    std::unordered_map<PageId, FrameList::iterator> map;
    uint64_t capacity = 0;
    uint32_t writes_since_data_sync = 0;
    Stats stats;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  void Unpin(PageId id);
  /// Writes one dirty frame out (WAL rule + double-write or direct).
  /// Called with the owning partition's mutex held.
  Status WriteFrame(IoContext& io, Shard& shard, Frame& frame);
  /// Checkpoint destage at checkpoint_queue_depth via the async file path.
  Status FlushAllBatched(IoContext& io);
  /// Makes a frame available in `shard`, evicting its LRU victim if at
  /// capacity. Called with the partition's mutex held.
  StatusOr<FrameList::iterator> GetFreeFrame(IoContext& io, Shard& shard,
                                             bool for_read);

  SimFile* data_file_;
  /// Serializes partition evictions' calls into the shared WAL and
  /// double-write buffer (neither is internally latched). Order: partition
  /// mutex -> log_mu_ -> fs latch -> device latch.
  std::mutex log_mu_;
  Wal* wal_;
  DoubleWriteBuffer* dwb_;
  Options opts_;
  uint64_t capacity_;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace durassd

#endif  // DURASSD_DB_BUFFER_POOL_H_
