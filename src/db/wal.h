#ifndef DURASSD_DB_WAL_H_
#define DURASSD_DB_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "common/trace.h"
#include "db/io_context.h"
#include "host/durability_mode.h"
#include "host/sim_file.h"

namespace durassd {

/// Logical redo/undo record kinds. minibase logs logical operations with
/// before-images, replays them deterministically from a sharp checkpoint,
/// and undoes loser transactions at the end of recovery (ARIES-lite).
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kPut = 2,      ///< {txn, tree, key, new_value, has_old, old_value}
  kDelete = 3,   ///< {txn, tree, key, has_old, old_value}
  kCommit = 4,
  kAbort = 5,    ///< Written after the in-memory rollback completed.
  kCreateTree = 6,  ///< {tree_id, name}
  kCheckpoint = 7,
  /// Sector filler appended by SyncTo so that a synced sector is never
  /// rewritten in place by a later append (see Wal::Options::pad_to_bytes).
  /// Skipped by ReadFrom; never surfaces in replay.
  kPad = 8,
};

struct WalRecord {
  WalRecordType type;
  TxnId txn = 0;
  uint32_t tree = 0;
  std::string key;
  std::string value;      ///< New value for kPut; name for kCreateTree.
  bool has_old = false;
  std::string old_value;  ///< Before-image for undo.
  Lsn lsn = kInvalidLsn;  ///< Filled by the reader.

  std::string Encode() const;
  static bool Decode(Slice payload, WalRecord* out);
};

/// Write-ahead log over a SimFile: an in-memory tail buffer, length+CRC
/// framing, byte-offset LSNs, and group flushing. Commit durability is
/// Append + Sync (fsync — which issues FLUSH CACHE only when the host has
/// write barriers on, the knob the paper's Fig. 5/Table 4/Table 5 sweep).
class Wal {
 public:
  struct Options {
    /// Recycle the log by checkpointing before it outgrows this.
    uint64_t soft_limit_bytes = 64 * kMiB;
    /// Owner's metrics registry; the WAL registers under the "wal."
    /// prefix. May be null (no metrics collected).
    MetricsRegistry* metrics = nullptr;
    /// Tail padding unit (jbd2-style): SyncTo fills the log up to the next
    /// multiple of this with a kPad frame before issuing the fsync, so a
    /// sector covered by a sync is never rewritten in place by a later
    /// append. Without it, a later append does a read-modify-write of the
    /// synced tail sector; on a volatile-cache device that exposes torn
    /// writes, a power cut shearing that NAND program destroys previously
    /// fsynced commit records sharing the sector. 0 disables padding.
    uint32_t pad_to_bytes = 4096;
    /// How SyncTo makes commits durable. kBarrier replaces the fsync with a
    /// barrier submission: commit latency stops waiting on media, and the
    /// device's epoch ordering guarantees the log prefix property instead.
    /// The other two modes sync through fsync (their cost difference comes
    /// from the device + file-system configuration, not this code path).
    DurabilityMode durability_mode = DurabilityMode::kDurableOrderedNcq;
  };

  Wal(SimFile* file, Options options);

  /// Appends to the in-memory tail; returns the record's LSN.
  Lsn Append(const WalRecord& record);

  /// Writes the buffered tail to the log file (no fsync).
  Status WriteOut(IoContext& io);
  /// WriteOut + fsync: the commit path.
  Status SyncTo(IoContext& io, Lsn lsn);
  /// Ensures records up to `lsn` are at least written to the device (the
  /// WAL rule before flushing a data page whose page-LSN is `lsn`).
  Status EnsureWritten(IoContext& io, Lsn lsn);

  Lsn next_lsn() const { return next_lsn_; }
  Lsn written_lsn() const { return written_lsn_; }
  uint32_t generation() const { return generation_; }
  uint64_t bytes_since_checkpoint() const {
    return next_lsn_ - last_checkpoint_lsn_;
  }
  void NoteCheckpoint(Lsn lsn) { last_checkpoint_lsn_ = lsn; }

  /// Reads every well-formed record of generation `gen` starting at `from`
  /// (stops at the first torn/invalid/foreign-generation frame — the
  /// durable prefix). kPad filler frames are consumed but not emitted.
  /// Scans the file itself, so it works on a freshly opened Wal after a
  /// crash. When `end_lsn` is non-null it receives the byte offset just
  /// past the last well-formed frame (pads included) — the position to
  /// ResumeAt; resuming before a trailing pad would rewrite its synced
  /// sector in place.
  Status ReadFrom(IoContext& io, Lsn from, uint32_t gen,
                  std::vector<WalRecord>* out, Lsn* end_lsn = nullptr);

  /// Logically truncates the log: subsequent appends start at `lsn` with a
  /// new generation, making any stale frames beyond unreadable. (Space
  /// handling: real systems recycle segment files — same I/O pattern.)
  void ResetTo(Lsn lsn, uint32_t gen);

  /// Positions the log for appending after recovery.
  void ResumeAt(Lsn lsn, uint32_t gen) {
    next_lsn_ = lsn;
    written_lsn_ = lsn;
    synced_lsn_ = lsn;
    generation_ = gen;
    tail_.clear();
  }

  /// Discards file bytes beyond `lsn` (the pre-crash torn tail). Without
  /// this, a complete stale frame stranded past the torn point can be
  /// resurrected after the next crash once fresh appends of the same
  /// generation close the byte gap in front of it. Metadata-only: no
  /// device I/O.
  Status TruncateTail(Lsn lsn);

  struct Stats {
    uint64_t appends = 0;
    uint64_t syncs = 0;
    uint64_t group_rides = 0;  ///< Commits that rode another commit's sync.
    uint64_t bytes_written = 0;
    uint64_t pad_bytes = 0;    ///< Sector-padding overhead (kPad frames).
    /// Group commit accounting: SyncTo callers whose durability resolved to
    /// the same device-sync completion instant form one group (rides of the
    /// pending window, plus syncs the file system / device coalesced into
    /// one FLUSH). `sync_groups` counts distinct groups; `max_group_commit`
    /// is the largest group observed.
    uint64_t sync_groups = 0;
    uint64_t max_group_commit = 0;
    uint64_t barrier_commits = 0;  ///< Commits made durable via a barrier
                                   ///< submission instead of an fsync wait.
  };
  const Stats& stats() const { return stats_; }

  /// Attaches (or detaches, with nullptr) an event tracer for WAL events.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Appends a kPad frame filling the log to the next pad_to_bytes
  /// boundary (no-op when already aligned or padding is disabled).
  void PadToBoundary();
  /// Group-commit bookkeeping: a SyncTo became durable at `done`.
  void NoteCommitDurable(SimTime done);

  SimFile* file_;
  Options opts_;
  Lsn next_lsn_ = 0;     ///< LSN of the next byte to be appended.
  Lsn written_lsn_ = 0;  ///< Everything below this is in the file.
  Lsn synced_lsn_ = 0;   ///< Everything below this has been fsynced.
  Lsn last_checkpoint_lsn_ = 0;
  uint32_t generation_ = 1;
  /// Group-commit window: the device sync completing at `done` covers
  /// records below `lsn`.
  Lsn pending_sync_lsn_ = 0;
  SimTime pending_sync_done_ = 0;
  /// Completion instant of the sync backing the currently open commit
  /// group, and how many SyncTo callers it has carried so far.
  SimTime last_sync_done_ = -1;
  uint64_t cur_group_ = 0;
  std::string tail_;     ///< Appended but not yet written.
  Stats stats_;

  Tracer* tracer_ = nullptr;
  /// Registered metrics (null when no registry was supplied).
  Histogram* h_sync_ns_ = nullptr;
  Histogram* h_group_size_ = nullptr;
  MetricCounter* c_appends_ = nullptr;
  MetricCounter* c_group_rides_ = nullptr;
  MetricCounter* c_barrier_commits_ = nullptr;
};

}  // namespace durassd

#endif  // DURASSD_DB_WAL_H_
