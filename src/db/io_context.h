#ifndef DURASSD_DB_IO_CONTEXT_H_
#define DURASSD_DB_IO_CONTEXT_H_

#include "common/types.h"

namespace durassd {

/// Carries a logical client's virtual clock through engine calls: every
/// blocking step (page read, eviction write, fsync) advances `now` to its
/// completion time, so the caller's transaction latency is the sum of the
/// real critical path, contention included.
struct IoContext {
  SimTime now = 0;

  void AdvanceTo(SimTime t) {
    if (t > now) now = t;
  }
};

}  // namespace durassd

#endif  // DURASSD_DB_IO_CONTEXT_H_
