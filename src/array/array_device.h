#ifndef DURASSD_ARRAY_ARRAY_DEVICE_H_
#define DURASSD_ARRAY_ARRAY_DEVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "host/block_device.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {

/// Whole-device fault injector for a multi-device array: the member-level
/// analogue of the NAND FaultInjector (same scripted one-shot style, keyed
/// by per-member command ordinals). Inert by default — with nothing
/// scripted the array's routing is bit-for-bit identical to a build without
/// injection. All fault times are in the current power epoch: a reboot
/// (PowerOn) re-enumerates the bus and drops every unfired script.
class ArrayFaultInjector {
 public:
  /// Whole-device death at virtual time `t`: every command routed to member
  /// `m` at now >= t fails fatally and the member is declared dead (sticky;
  /// only a rebuild onto a spare brings the slot back).
  void KillMemberAt(uint32_t m, SimTime t) { members_[m].kill_at = t; }

  /// One-shot hung I/O: the `n`-th command issued to member `m` from now
  /// (0 = the very next) has its completion withheld `extra` ns past the
  /// normal completion time — the device does the work but never answers
  /// (a firmware stall). kMaxSimTime hangs it forever; only a supervisor
  /// deadline gets the host unstuck.
  void HangCommandAfter(uint32_t m, uint64_t n, SimTime extra) {
    members_[m].hangs[members_[m].commands_seen + n] = extra;
  }

  /// Transient unavailability window [from, until): commands routed to the
  /// member are rejected with retryable Busy; the member recovers by itself
  /// at `until` (a link reset / firmware hiccup).
  void TransientOutage(uint32_t m, SimTime from, SimTime until) {
    members_[m].outages.emplace_back(from, until);
  }

  bool enabled() const {
    for (const auto& [m, f] : members_) {
      if (f.kill_at != kMaxSimTime || !f.hangs.empty() || !f.outages.empty()) {
        return true;
      }
    }
    return false;
  }

  /// Drops every pending scripted fault (command ordinals keep counting).
  void Clear() {
    for (auto& [m, f] : members_) {
      f.kill_at = kMaxSimTime;
      f.hangs.clear();
      f.outages.clear();
    }
  }

 private:
  friend class ArrayDevice;

  struct MemberFaults {
    SimTime kill_at = kMaxSimTime;
    std::map<uint64_t, SimTime> hangs;  ///< Command ordinal -> withheld ns.
    std::vector<std::pair<SimTime, SimTime>> outages;  ///< [from, until).
    uint64_t commands_seen = 0;
  };

  MemberFaults& ForMember(uint32_t m) { return members_[m]; }

  std::map<uint32_t, MemberFaults> members_;
};

/// Configuration of an ArrayDevice: layout, the host-side I/O supervisor
/// (deadline / bounded-backoff retry), and online-rebuild rate limiting.
struct ArrayConfig {
  enum class Layout {
    /// RAID-0-style sector-range sharding: stripe units of
    /// `stripe_unit_sectors` round-robin across members. No redundancy —
    /// a member death fails the array (sticky, writes rejected with
    /// ResourceExhausted; reads on surviving members keep working).
    kStriped,
    /// Mirrored durable-cache pair (or N-way): every write replicates to
    /// all live members, reads are served by the primary (lowest-index
    /// live member) and fail over to a survivor on member death.
    kMirrored,
  };
  Layout layout = Layout::kStriped;

  /// Striped layout: contiguous sectors per member before the mapping
  /// advances to the next member (the RAID chunk size).
  uint32_t stripe_unit_sectors = 256;

  // --- I/O supervisor ---
  /// Per-member-command virtual-time deadline. A command whose completion
  /// would land past issue + deadline is declared timed out (typed
  /// retryable kTimedOut) at the deadline instant and retried. 0 disables
  /// the deadline entirely — the golden single-member configuration, which
  /// must reproduce a raw device bit-for-bit.
  SimTime command_deadline_ns = 0;
  /// Retries after the initial attempt before the member is declared
  /// failed (bounded exponential backoff: backoff doubles per retry up to
  /// the cap).
  uint32_t retry_limit = 3;
  SimTime retry_backoff_ns = 200 * kMicrosecond;
  SimTime retry_backoff_max_ns = 20 * kMillisecond;

  // --- Online rebuild (mirrored layout) ---
  /// Sectors copied per rebuild batch, and the minimum virtual-time gap
  /// between consecutive batches — the rate limit that keeps rebuild from
  /// starving foreground traffic (interference still happens naturally:
  /// copy I/O occupies the members' bus/firmware/NAND resources).
  uint32_t rebuild_batch_sectors = 64;
  SimTime rebuild_interval_ns = 2 * kMillisecond;
  /// Start a rebuild onto a fresh spare automatically the moment a mirror
  /// member is declared dead (hot-spare semantics).
  bool auto_rebuild = false;
};

/// N SsdDevice models composed under one BlockDevice namespace, plus the
/// robustness machinery a single-device stack never needed: whole-device
/// fault injection (death / hung I/O / transient outage), a host-side I/O
/// supervisor with per-command deadlines and bounded-backoff retry, mirror
/// failover with a sticky degraded state, and rate-limited online rebuild
/// onto a spare.
///
/// Simulator conventions:
///  - Member sub-commands are issued at the array command's service entry
///    time and run concurrently; the array completion is the slowest
///    member's (mirrored writes ack when every live replica acked).
///  - A single-member array forwards every command verbatim, so its timing
///    is bit-identical to the raw member device (golden-tested).
///  - Array metadata (member health, rebuild cursor) is host-side
///    supervisor state and survives simulated reboots, like the
///    SimFileSystem namespace: we model device failure and recovery, not
///    supervisor-state loss. The rebuild cursor is rewound at a power cut
///    to the last copy batch known SAFE at the cut — target-durable, copied
///    from rollback-stable source data, and with no foreground write to the
///    copied region left on only one replica — so a resumed rebuild never
///    skips a sector the cut un-did or diverged.
class ArrayDevice : public BlockDevice {
 public:
  enum class MemberState { kHealthy, kDead, kRebuilding };
  enum class Health {
    kOptimal,   ///< All members healthy.
    kDegraded,  ///< A mirror member dead or rebuilding; service continues.
    kFailed,    ///< Striped member lost, or no live mirror replica: sticky —
                ///< writes are rejected with ResourceExhausted (the PR-3
                ///< degraded plumbing engines already handle), reads are
                ///< served where data survives.
  };

  struct Stats {
    uint64_t retries = 0;           ///< Supervisor re-issues after a
                                    ///< retryable member failure.
    uint64_t timeouts = 0;          ///< Member commands declared timed out.
    uint64_t transient_rejects = 0; ///< Commands bounced by an outage window.
    uint64_t member_deaths = 0;     ///< Members declared dead (injected
                                    ///< death or supervisor escalation).
    uint64_t redirected_reads = 0;  ///< Reads served by a non-primary
                                    ///< member because the primary is gone.
    uint64_t redirected_writes = 0; ///< Writes acked by a partial replica
                                    ///< set (some member dead).
    uint64_t degraded_write_rejects = 0;  ///< Writes refused after array
                                          ///< failure (sticky).
    uint64_t rebuilds_started = 0;
    uint64_t rebuilds_completed = 0;
    uint64_t rebuild_copied_sectors = 0;
    uint64_t rebuild_batches = 0;
  };

  /// Builds the array and its member devices (one SsdDevice per config).
  /// All members must share a sector size; striped capacity is the sum of
  /// the members' (minimum) capacity, mirrored capacity is one member's.
  ArrayDevice(ArrayConfig config, std::vector<SsdConfig> member_configs);
  ~ArrayDevice() override = default;

  ArrayDevice(const ArrayDevice&) = delete;
  ArrayDevice& operator=(const ArrayDevice&) = delete;

  // --- BlockDevice ---
  uint32_t sector_size() const override;
  uint64_t num_sectors() const override;
  void PowerCut(SimTime t) override;
  SimTime PowerOn() override;
  bool supports_atomic_write() const override;
  bool has_durable_cache() const override;
  bool ordered_writes() const override;
  bool supports_barrier() const override;

  /// Arms a whole-array power cut at virtual time `t` (the crash-harness
  /// hook, same contract as SsdDevice::SchedulePowerCut): the first array
  /// command issued at now >= t — or completing past t — first cuts power
  /// on every member at t and then fails with DeviceOffline. One-shot.
  void SchedulePowerCut(SimTime t) {
    scheduled_cut_ = t;
    cut_armed_ = true;
  }
  void CancelScheduledPowerCut() { cut_armed_ = false; }
  bool scheduled_cut_armed() const { return cut_armed_; }

  /// Clean shutdown: FLUSH each live member, then power it down without
  /// the emergency flag.
  Status Shutdown(SimTime now);

  // --- Array health / failover ---
  Health health() const { return health_; }
  /// True once the array left the optimal state (sticky until a completed
  /// rebuild restores full redundancy).
  bool degraded() const { return health_ != Health::kOptimal; }
  bool powered() const { return powered_; }

  uint32_t num_members() const { return static_cast<uint32_t>(members_.size()); }
  MemberState member_state(uint32_t m) const { return states_[m]; }
  const SsdDevice& member(uint32_t m) const { return *members_[m]; }
  SsdDevice& member(uint32_t m) { return *members_[m]; }

  /// Sum of the members' barrier-epoch self-audit violation counters (the
  /// crash harness's epoch oracle; must stay 0).
  uint64_t epoch_ordering_violations() const;
  /// True when any member's FTL entered sticky read-only degraded mode.
  bool any_member_media_degraded() const;

  // --- Online rebuild ---
  /// Replaces dead member `m` with a fresh spare (same SsdConfig) and
  /// begins the rate-limited copy from a live replica. Mirrored layout
  /// only; fails with InvalidArgument if `m` is not dead, NotSupported on
  /// striped arrays, Busy if a rebuild is already running, and
  /// ResourceExhausted when no live source replica remains.
  Status StartRebuild(SimTime now, uint32_t m);
  /// Advances the rebuild copy up to virtual time `now`, honoring the
  /// rate limit. Called automatically on every array command; exposed so
  /// idle periods (no foreground traffic) can be simulated explicitly.
  void PumpRebuild(SimTime now);
  bool rebuild_active() const { return rebuild_active_; }
  uint32_t rebuild_target() const { return rebuild_target_; }
  /// Next sector the copy will fetch (member-local); num_sectors() of a
  /// member when the copy finished.
  uint64_t rebuild_cursor() const { return rebuild_cursor_; }
  /// Completion time of the last rebuild batch (virtual). The instant the
  /// array returned to optimal when the rebuild completed.
  SimTime rebuild_last_batch_done() const { return rebuild_last_done_; }

  ArrayFaultInjector& fault_injector() { return faults_; }
  const ArrayConfig& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }
  /// `array.*` counters (redirects, retries, timeouts, rebuild progress).
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

 protected:
  Result Execute(SimTime t, const Command& cmd) override;

 private:
  /// One member's share of a striped command.
  struct StripePart {
    uint32_t member = 0;
    Lpn local_lpn = 0;
    uint32_t nsec = 0;
    uint64_t global_offset = 0;  ///< Sector offset inside the command.
  };

  Result ExecuteMirrored(SimTime t, const Command& cmd);
  Result ExecuteStriped(SimTime t, const Command& cmd);
  Result ExecuteBroadcast(SimTime t, const Command& cmd);

  /// The I/O supervisor: issues `cmd` to member `m` at time `t`, applying
  /// scripted faults, the per-command deadline, and bounded exponential
  /// backoff retry. A retryable failure that survives the retry budget is
  /// escalated: the member is declared dead and the last typed status is
  /// returned.
  Result SuperviseMember(uint32_t m, SimTime t, const Command& cmd);
  /// One attempt, fault decisions included.
  Result IssueOnce(uint32_t m, SimTime t, const Command& cmd);

  void DeclareDead(uint32_t m, SimTime t, const char* why);
  void RecomputeHealth();
  /// Lowest-index live (kHealthy) member; -1 when none.
  int FirstLive(int skip = -1) const;
  void SplitStriped(Lpn lpn, uint32_t nsec, std::vector<StripePart>* parts) const;
  Result FailArrayWrite(SimTime t);

  ArrayConfig cfg_;
  std::vector<SsdConfig> member_cfgs_;
  std::vector<std::unique_ptr<SsdDevice>> members_;
  std::vector<MemberState> states_;
  uint64_t member_sectors_ = 0;  ///< Min capacity across members.
  Health health_ = Health::kOptimal;
  bool powered_ = true;

  bool cut_armed_ = false;
  SimTime scheduled_cut_ = 0;

  // --- Rebuild state (host-side supervisor metadata) ---
  bool rebuild_active_ = false;
  uint32_t rebuild_target_ = 0;
  uint64_t rebuild_cursor_ = 0;
  SimTime rebuild_next_allowed_ = 0;
  SimTime rebuild_last_done_ = 0;
  /// Copy batches not yet known-safe: {cursor after the batch, safe time}.
  /// The safe time is max(copy-write ack, the mirrored-write ack watermark
  /// at copy time): a batch is durable on the target AND copied from
  /// rollback-stable source data only once the cut instant passes it. A
  /// power cut at t rewinds the cursor to the newest entry with
  /// safe <= t.
  std::deque<std::pair<uint64_t, SimTime>> rebuild_batches_;
  /// Foreground writes that landed inside the already-copied region while
  /// the rebuild ran: {lpn, min member ack, max member ack}. A cut between
  /// the two acks leaves exactly one replica holding the write — the
  /// copied region diverges there, so the cursor rewinds to lpn.
  struct DivergenceRec {
    uint64_t lpn = 0;
    SimTime min_ack = 0;
    SimTime max_ack = 0;
  };
  std::deque<DivergenceRec> rebuild_overlaps_;
  /// Max acknowledgement time over every mirrored write issued so far
  /// (all effects are computed at submission, so this is known): source
  /// data read by a copy batch is rollback-stable for cuts at or past it.
  SimTime write_ack_watermark_ = 0;
  /// Tracking overflowed its caps: the next power cut restarts the copy
  /// from sector 0 instead of resuming (always safe, never wrong).
  bool rebuild_conservative_ = false;
  std::string rebuild_buf_;  ///< Copy staging buffer.

  ArrayFaultInjector faults_;
  Stats stats_;
  MetricsRegistry metrics_;
  MetricCounter* c_retries_;
  MetricCounter* c_timeouts_;
  MetricCounter* c_transient_rejects_;
  MetricCounter* c_member_deaths_;
  MetricCounter* c_redirected_reads_;
  MetricCounter* c_redirected_writes_;
  MetricCounter* c_degraded_write_rejects_;
  MetricCounter* c_rebuild_copied_sectors_;
};

/// Convenience builders (the factory seam for benches, tests, and the
/// crash harness).
std::unique_ptr<ArrayDevice> MakeMirroredArray(const SsdConfig& member,
                                               uint32_t n, ArrayConfig cfg);
std::unique_ptr<ArrayDevice> MakeStripedArray(const SsdConfig& member,
                                              uint32_t n, ArrayConfig cfg);

}  // namespace durassd

#endif  // DURASSD_ARRAY_ARRAY_DEVICE_H_
