#include "array/array_device.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace durassd {

namespace {

/// Bound on the not-yet-known-safe rebuild batch window. A power cut always
/// lands at or near the execution frontier; batches this far behind it have
/// long been durable on the target.
constexpr size_t kMaxRebuildBatchRecords = 65536;

}  // namespace

ArrayDevice::ArrayDevice(ArrayConfig config,
                         std::vector<SsdConfig> member_configs)
    : cfg_(config), member_cfgs_(std::move(member_configs)) {
  assert(!member_cfgs_.empty());
  members_.reserve(member_cfgs_.size());
  for (const SsdConfig& mc : member_cfgs_) {
    members_.push_back(std::make_unique<SsdDevice>(mc));
  }
  states_.assign(members_.size(), MemberState::kHealthy);
  member_sectors_ = members_[0]->num_sectors();
  for (const auto& m : members_) {
    assert(m->sector_size() == members_[0]->sector_size());
    member_sectors_ = std::min(member_sectors_, m->num_sectors());
  }
  c_retries_ = metrics_.Counter("array.retries");
  c_timeouts_ = metrics_.Counter("array.timeouts");
  c_transient_rejects_ = metrics_.Counter("array.transient_rejects");
  c_member_deaths_ = metrics_.Counter("array.member_deaths");
  c_redirected_reads_ = metrics_.Counter("array.redirected_reads");
  c_redirected_writes_ = metrics_.Counter("array.redirected_writes");
  c_degraded_write_rejects_ = metrics_.Counter("array.degraded_write_rejects");
  c_rebuild_copied_sectors_ = metrics_.Counter("array.rebuild_copied_sectors");
}

uint32_t ArrayDevice::sector_size() const { return members_[0]->sector_size(); }

uint64_t ArrayDevice::num_sectors() const {
  return cfg_.layout == ArrayConfig::Layout::kStriped
             ? member_sectors_ * members_.size()
             : member_sectors_;
}

bool ArrayDevice::supports_atomic_write() const {
  for (const auto& m : members_) {
    if (!m->supports_atomic_write()) return false;
  }
  return true;
}

bool ArrayDevice::has_durable_cache() const {
  for (const auto& m : members_) {
    if (!m->has_durable_cache()) return false;
  }
  return true;
}

bool ArrayDevice::ordered_writes() const {
  // Striping round-robins consecutive sectors across members, so the global
  // submitted stream is not a per-member prefix: each member orders only its
  // own shard and the array cannot promise a global prefix cut. A mirror
  // serves reads from one replica, whose own ordered NCQ does give the
  // prefix guarantee for the view the host observes.
  if (cfg_.layout == ArrayConfig::Layout::kStriped && members_.size() > 1) {
    return false;
  }
  for (const auto& m : members_) {
    if (!m->ordered_writes()) return false;
  }
  return true;
}

bool ArrayDevice::supports_barrier() const {
  // Same reasoning as ordered_writes(): BARRIER epochs are sealed per
  // member, and only a single-replica view (mirror primary, or a one-member
  // array) makes the per-member epoch-consistent cut a whole-array one.
  if (cfg_.layout == ArrayConfig::Layout::kStriped && members_.size() > 1) {
    return false;
  }
  for (const auto& m : members_) {
    if (!m->supports_barrier()) return false;
  }
  return true;
}

uint64_t ArrayDevice::epoch_ordering_violations() const {
  uint64_t v = 0;
  for (const auto& m : members_) v += m->stats().epoch_ordering_violations;
  return v;
}

bool ArrayDevice::any_member_media_degraded() const {
  for (const auto& m : members_) {
    if (m->degraded()) return true;
  }
  return false;
}

int ArrayDevice::FirstLive(int skip) const {
  for (size_t m = 0; m < members_.size(); ++m) {
    if (static_cast<int>(m) == skip) continue;
    if (states_[m] == MemberState::kHealthy) return static_cast<int>(m);
  }
  return -1;
}

void ArrayDevice::RecomputeHealth() {
  if (health_ == Health::kFailed) return;  // Sticky.
  bool any_dead = false, any_rebuilding = false;
  uint32_t healthy = 0;
  for (MemberState s : states_) {
    if (s == MemberState::kDead) any_dead = true;
    if (s == MemberState::kRebuilding) any_rebuilding = true;
    if (s == MemberState::kHealthy) ++healthy;
  }
  if (cfg_.layout == ArrayConfig::Layout::kStriped) {
    health_ = any_dead ? Health::kFailed : Health::kOptimal;
    return;
  }
  if (healthy == 0) {
    health_ = Health::kFailed;
  } else if (any_dead || any_rebuilding) {
    health_ = Health::kDegraded;
  } else {
    health_ = Health::kOptimal;
  }
}

void ArrayDevice::DeclareDead(uint32_t m, SimTime t, const char* why) {
  if (states_[m] == MemberState::kDead) return;
  if (rebuild_active_ && m == rebuild_target_) rebuild_active_ = false;
  states_[m] = MemberState::kDead;
  stats_.member_deaths++;
  ++*c_member_deaths_;
  if (members_[m]->powered()) members_[m]->PowerCut(t);
  (void)why;
  RecomputeHealth();
}

BlockDevice::Result ArrayDevice::FailArrayWrite(SimTime t) {
  stats_.degraded_write_rejects++;
  ++*c_degraded_write_rejects_;
  return {Status::ResourceExhausted("array failed: writes rejected"), t};
}

BlockDevice::Result ArrayDevice::IssueOnce(uint32_t m, SimTime t,
                                           const Command& cmd) {
  ArrayFaultInjector::MemberFaults& f = faults_.ForMember(m);
  const uint64_t ordinal = f.commands_seen++;

  if (t >= f.kill_at) {  // Died before this command reached it.
    const SimTime died = f.kill_at;
    DeclareDead(m, died, "injected death");
    return {Status::IoError("array member dead"), t};
  }

  for (const auto& [from, until] : f.outages) {
    if (t >= from && t < until) {
      stats_.transient_rejects++;
      ++*c_transient_rejects_;
      return {Status::Busy("array member transiently unavailable"), t};
    }
  }

  Result r;
  switch (cmd.op) {
    case Command::Op::kWrite:
      r = members_[m]->Write(t, cmd.lpn, cmd.data);
      break;
    case Command::Op::kRead:
      r = members_[m]->Read(t, cmd.lpn, cmd.nsec, cmd.out);
      break;
    case Command::Op::kFlush:
      r = members_[m]->Flush(t);
      break;
    case Command::Op::kBarrier:
      r = members_[m]->Barrier(t);
      break;
  }

  if (r.done > f.kill_at) {  // Died mid-command: the answer never arrives.
    const SimTime died = f.kill_at;
    DeclareDead(m, died, "injected death mid-command");
    return {Status::IoError("array member died mid-command"), died};
  }

  auto hang = f.hangs.find(ordinal);
  if (hang != f.hangs.end()) {
    const SimTime extra = hang->second;
    f.hangs.erase(hang);
    // The device did the work; the completion is withheld. Only a
    // supervisor deadline turns this back into forward progress.
    r.done = (extra == kMaxSimTime || r.done > kMaxSimTime - extra)
                 ? kMaxSimTime
                 : r.done + extra;
  }
  return r;
}

BlockDevice::Result ArrayDevice::SuperviseMember(uint32_t m, SimTime t,
                                                 const Command& cmd) {
  SimTime now = t;
  SimTime backoff = cfg_.retry_backoff_ns;
  for (uint32_t attempt = 0;; ++attempt) {
    if (states_[m] == MemberState::kDead) {
      return {Status::IoError("array member dead"), now};
    }
    Result r = IssueOnce(m, now, cmd);
    if (cfg_.command_deadline_ns > 0 && r.done - now > cfg_.command_deadline_ns) {
      // Declared dead-on-the-wire at the deadline instant. The member may
      // have applied the command (its state keeps the effect), which is why
      // kTimedOut demands idempotent retries.
      r = {Status::TimedOut("array member command deadline exceeded"),
           now + cfg_.command_deadline_ns};
      stats_.timeouts++;
      ++*c_timeouts_;
    }
    if (r.status.ok() || !r.status.IsRetryable()) {
      // A definitive verdict. Malformed commands are the caller's bug, not
      // the member's health; everything else fatal already fenced the
      // member (injected death) or is propagated as-is (e.g. a member FTL's
      // ResourceExhausted read-only verdict).
      return r;
    }
    if (attempt == cfg_.retry_limit) {
      // Retry budget exhausted: supervisor escalation. The member is fenced
      // (declared dead) so the array stops routing commands into a black
      // hole; the caller runs failover.
      DeclareDead(m, r.done, "retry budget exhausted");
      return r;
    }
    stats_.retries++;
    ++*c_retries_;
    now = r.done + backoff;
    backoff = std::min(backoff * 2, cfg_.retry_backoff_max_ns);
  }
}

void ArrayDevice::SplitStriped(Lpn lpn, uint32_t nsec,
                               std::vector<StripePart>* parts) const {
  const uint64_t unit = cfg_.stripe_unit_sectors;
  const uint64_t n = members_.size();
  Lpn g = lpn;
  uint32_t remaining = nsec;
  while (remaining > 0) {
    const uint64_t stripe = g / unit;
    const uint64_t in_unit = g % unit;
    StripePart p;
    p.member = static_cast<uint32_t>(stripe % n);
    p.local_lpn = (stripe / n) * unit + in_unit;
    p.nsec = static_cast<uint32_t>(
        std::min<uint64_t>(remaining, unit - in_unit));
    p.global_offset = g - lpn;
    // Merge unit-boundary splits that stay contiguous on the same member —
    // a one-member array in particular must issue exactly the original
    // command (the golden timing-identity contract).
    if (!parts->empty()) {
      StripePart& last = parts->back();
      if (last.member == p.member &&
          last.local_lpn + last.nsec == p.local_lpn &&
          last.global_offset + last.nsec == p.global_offset) {
        last.nsec += p.nsec;
        g += p.nsec;
        remaining -= p.nsec;
        continue;
      }
    }
    parts->push_back(p);
    g += p.nsec;
    remaining -= p.nsec;
  }
}

BlockDevice::Result ArrayDevice::ExecuteStriped(SimTime t, const Command& cmd) {
  const uint32_t ss = sector_size();
  const bool is_write = cmd.op == Command::Op::kWrite;
  if (is_write && health_ == Health::kFailed) return FailArrayWrite(t);

  const uint32_t nsec = is_write
                            ? static_cast<uint32_t>(cmd.data.size() / ss)
                            : cmd.nsec;
  if (is_write && (cmd.data.size() == 0 || cmd.data.size() % ss != 0)) {
    return {Status::InvalidArgument("write data not sector-aligned"), t};
  }
  if (nsec == 0 || cmd.lpn + nsec > num_sectors()) {
    return {Status::InvalidArgument("striped range out of bounds"), t};
  }

  std::vector<StripePart> parts;
  SplitStriped(cmd.lpn, nsec, &parts);

  if (cmd.out != nullptr) cmd.out->resize(static_cast<size_t>(nsec) * ss);

  SimTime done = t;
  for (const StripePart& p : parts) {
    Command sub;
    sub.op = cmd.op;
    sub.lpn = p.local_lpn;
    std::string part_buf;
    if (is_write) {
      sub.data = Slice(cmd.data.data() + p.global_offset * ss,
                       static_cast<size_t>(p.nsec) * ss);
    } else {
      sub.nsec = p.nsec;
      sub.out = cmd.out != nullptr ? &part_buf : nullptr;
    }
    Result r = SuperviseMember(p.member, t, sub);
    if (!r.status.ok()) {
      // No redundancy: a lost shard fails the command, and a dead member
      // fails the array for writes (sticky). Reads whose ranges avoid the
      // dead member keep working.
      RecomputeHealth();
      if (is_write && health_ == Health::kFailed) {
        stats_.degraded_write_rejects++;
        ++*c_degraded_write_rejects_;
      }
      return r;
    }
    if (cmd.out != nullptr && !is_write) {
      cmd.out->replace(static_cast<size_t>(p.global_offset) * ss,
                       part_buf.size(), part_buf);
    }
    done = std::max(done, r.done);
  }
  return {Status::OK(), done};
}

BlockDevice::Result ArrayDevice::ExecuteMirrored(SimTime t,
                                                 const Command& cmd) {
  if (cmd.op == Command::Op::kRead) {
    // Reads are served by the primary — the lowest-index healthy member —
    // and fail over to the next survivor if the primary dies mid-read.
    SimTime now = t;
    Result last{Status::IoError("no live mirror replica"), t};
    for (;;) {
      const int m = FirstLive();
      if (m < 0) return {last.status, now};
      if (m > 0) {
        stats_.redirected_reads++;
        ++*c_redirected_reads_;
      }
      Result r = SuperviseMember(static_cast<uint32_t>(m), now, cmd);
      if (r.status.ok() || states_[m] != MemberState::kDead) return r;
      last = r;
      now = r.done;  // Failover: re-issue to the survivor when the
                     // failure was observed.
    }
  }

  if (health_ == Health::kFailed) {
    if (cmd.op == Command::Op::kWrite) return FailArrayWrite(t);
    return {Status::IoError("no live mirror replica"), t};
  }

  // Writes (and flush/barrier) replicate to every live member, the rebuild
  // target included: gating the array ack on the target's ack keeps every
  // already-copied sector fresh on the target even if power dies before the
  // rebuild re-copies it.
  SimTime ack = t;
  SimTime min_member_ack = kMaxSimTime;
  bool healthy_ok = false, partial = false, target_ok = false;
  Status err;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (states_[m] == MemberState::kDead) {
      partial = true;
      continue;
    }
    const bool was_healthy = states_[m] == MemberState::kHealthy;
    Result r = SuperviseMember(m, t, cmd);
    if (r.status.ok()) {
      if (was_healthy) {
        healthy_ok = true;
        if (cmd.op == Command::Op::kWrite) {
          write_ack_watermark_ = std::max(write_ack_watermark_, r.done);
        }
      } else {
        target_ok = true;
      }
      ack = std::max(ack, r.done);
      min_member_ack = std::min(min_member_ack, r.done);
    } else {
      partial = true;
      err = r.status;
      ack = std::max(ack, r.done);
    }
  }
  RecomputeHealth();
  if (rebuild_active_ && cmd.op == Command::Op::kWrite && healthy_ok &&
      target_ok && cmd.lpn < rebuild_cursor_ && min_member_ack < ack) {
    // The write landed in the already-copied region with different acks on
    // the replicas: a cut between them keeps it on one side only, and the
    // copy must redo that range.
    rebuild_overlaps_.push_back({cmd.lpn, min_member_ack, ack});
    if (rebuild_overlaps_.size() > kMaxRebuildBatchRecords) {
      rebuild_conservative_ = true;
      rebuild_overlaps_.clear();
    }
  }
  if (!healthy_ok) {
    // No full replica holds this write: fail it (the rebuild target alone
    // is not a replica — it is complete only up to the copy cursor).
    return {err.ok() ? Status::IoError("no live mirror replica") : err, ack};
  }
  if (partial && cmd.op == Command::Op::kWrite) {
    stats_.redirected_writes++;
    ++*c_redirected_writes_;
  }
  return {Status::OK(), ack};
}

BlockDevice::Result ArrayDevice::ExecuteBroadcast(SimTime t,
                                                  const Command& cmd) {
  SimTime done = t;
  bool any_ok = false;
  Status err;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (states_[m] == MemberState::kDead) continue;
    Result r = SuperviseMember(m, t, cmd);
    if (r.status.ok()) {
      any_ok = true;
      done = std::max(done, r.done);
    } else {
      err = r.status;
      done = std::max(done, r.done);
    }
  }
  RecomputeHealth();
  if (!any_ok) {
    return {err.ok() ? Status::IoError("no live array member") : err, done};
  }
  return {Status::OK(), done};
}

BlockDevice::Result ArrayDevice::Execute(SimTime t, const Command& cmd) {
  if (!powered_) return {Status::DeviceOffline("array powered off"), t};
  if (cut_armed_ && t >= scheduled_cut_) {
    const SimTime cut = scheduled_cut_;
    PowerCut(cut);
    return {Status::DeviceOffline("scheduled power cut"), cut};
  }

  if (cfg_.auto_rebuild && !rebuild_active_ &&
      cfg_.layout == ArrayConfig::Layout::kMirrored && FirstLive() >= 0) {
    for (uint32_t m = 0; m < members_.size(); ++m) {
      if (states_[m] == MemberState::kDead) {
        (void)StartRebuild(t, m);
        break;
      }
    }
  }
  PumpRebuild(t);

  Result r = cfg_.layout == ArrayConfig::Layout::kMirrored
                 ? ExecuteMirrored(t, cmd)
                 : (cmd.op == Command::Op::kFlush ||
                            cmd.op == Command::Op::kBarrier
                        ? ExecuteBroadcast(t, cmd)
                        : ExecuteStriped(t, cmd));

  if (cut_armed_ && r.done > scheduled_cut_) {
    // Causality guard (same contract as the member device's
    // CutBeforeCompletion): a command whose completion lands past the armed
    // instant must not be acknowledged — power died mid-command. Member
    // effects carrying post-cut timestamps are reverted by each member's
    // PowerCut rollback.
    const SimTime cut = scheduled_cut_;
    PowerCut(cut);
    return {Status::DeviceOffline("scheduled power cut"), cut};
  }
  return r;
}

void ArrayDevice::PowerCut(SimTime t) {
  cut_armed_ = false;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (states_[m] != MemberState::kDead && members_[m]->powered()) {
      members_[m]->PowerCut(t);
    }
  }
  powered_ = false;
  AbortInFlight(t);
  if (rebuild_active_) {
    // Rewind the copy cursor to the last batch known safe at the cut:
    // target-durable AND copied from source data no rollback can revert.
    // Then pull it further back past any foreground write the cut left on
    // only one replica. Everything behind the rewound cursor is
    // bit-identical on source and target; everything past it is re-copied.
    uint64_t safe = 0;
    if (!rebuild_conservative_) {
      for (const auto& [end, safe_time] : rebuild_batches_) {
        if (safe_time <= t) safe = std::max(safe, end);
      }
      for (const DivergenceRec& d : rebuild_overlaps_) {
        if (d.min_ack <= t && t < d.max_ack) safe = std::min(safe, d.lpn);
      }
    }
    rebuild_cursor_ = std::min(rebuild_cursor_, safe);
    rebuild_batches_.clear();
    rebuild_overlaps_.clear();
    rebuild_conservative_ = false;
  }
}

SimTime ArrayDevice::PowerOn() {
  SimTime dur = 0;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (states_[m] != MemberState::kDead) {
      dur = std::max(dur, members_[m]->PowerOn());
    }
  }
  powered_ = true;
  // Reboot re-enumerates the bus: unfired fault scripts belong to the old
  // power epoch and are dropped (the harness re-arms per epoch). Member
  // clocks restarted at zero, so the rebuild rate limiter restarts too.
  faults_.Clear();
  rebuild_next_allowed_ = 0;
  rebuild_batches_.clear();
  rebuild_overlaps_.clear();
  write_ack_watermark_ = 0;
  return dur;
}

Status ArrayDevice::Shutdown(SimTime now) {
  Status first;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (states_[m] == MemberState::kDead) continue;
    Status s = members_[m]->Shutdown(now);
    if (!s.ok() && first.ok()) first = s;
  }
  powered_ = false;
  return first;
}

Status ArrayDevice::StartRebuild(SimTime now, uint32_t m) {
  if (cfg_.layout != ArrayConfig::Layout::kMirrored) {
    return Status::NotSupported("rebuild requires a mirrored array");
  }
  if (m >= members_.size()) return Status::InvalidArgument("no such member");
  if (rebuild_active_) return Status::Busy("rebuild already running");
  if (states_[m] != MemberState::kDead) {
    return Status::InvalidArgument("member is not dead");
  }
  if (FirstLive() < 0) {
    return Status::ResourceExhausted("no live replica to rebuild from");
  }
  // Hot-swap a fresh spare of the same model into the slot. The spare is a
  // new physical device: any fault scripts aimed at the old unit die with it.
  members_[m] = std::make_unique<SsdDevice>(member_cfgs_[m]);
  faults_.members_.erase(m);
  states_[m] = MemberState::kRebuilding;
  rebuild_active_ = true;
  rebuild_target_ = m;
  rebuild_cursor_ = 0;
  rebuild_conservative_ = false;
  rebuild_batches_.clear();
  rebuild_overlaps_.clear();
  rebuild_next_allowed_ = now;
  stats_.rebuilds_started++;
  RecomputeHealth();
  PumpRebuild(now);
  return Status::OK();
}

void ArrayDevice::PumpRebuild(SimTime now) {
  if (!rebuild_active_ || !powered_) return;
  const uint32_t ss = sector_size();
  while (rebuild_active_ && rebuild_cursor_ < member_sectors_ &&
         rebuild_next_allowed_ <= now) {
    const SimTime tb = rebuild_next_allowed_;
    const int src = FirstLive();
    if (src < 0) return;  // No copy source: rebuild starves (array failed).
    const uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(
        cfg_.rebuild_batch_sectors, member_sectors_ - rebuild_cursor_));

    Command rd;
    rd.op = Command::Op::kRead;
    rd.lpn = rebuild_cursor_;
    rd.nsec = n;
    rd.out = &rebuild_buf_;
    Result rr = SuperviseMember(static_cast<uint32_t>(src), tb, rd);
    if (!rr.status.ok()) return;  // Source fenced; retry on a later pump.

    rebuild_buf_.resize(static_cast<size_t>(n) * ss);
    Command wr;
    wr.op = Command::Op::kWrite;
    wr.lpn = rebuild_cursor_;
    wr.data = Slice(rebuild_buf_.data(), rebuild_buf_.size());
    Result wres = SuperviseMember(rebuild_target_, rr.done, wr);
    if (!wres.status.ok()) return;  // Target fenced: DeclareDead aborted us.

    rebuild_cursor_ += n;
    stats_.rebuild_batches++;
    stats_.rebuild_copied_sectors += n;
    *c_rebuild_copied_sectors_ += n;
    rebuild_batches_.emplace_back(rebuild_cursor_,
                                  std::max(wres.done, write_ack_watermark_));
    if (rebuild_batches_.size() > kMaxRebuildBatchRecords) {
      rebuild_conservative_ = true;
      rebuild_batches_.clear();
    }
    rebuild_last_done_ = wres.done;
    rebuild_next_allowed_ = wres.done + cfg_.rebuild_interval_ns;
  }
  if (rebuild_active_ && rebuild_cursor_ >= member_sectors_) {
    // Copy complete: the target is a full replica again.
    rebuild_active_ = false;
    states_[rebuild_target_] = MemberState::kHealthy;
    stats_.rebuilds_completed++;
    rebuild_batches_.clear();
    rebuild_overlaps_.clear();
    RecomputeHealth();
  }
}

std::unique_ptr<ArrayDevice> MakeMirroredArray(const SsdConfig& member,
                                               uint32_t n, ArrayConfig cfg) {
  cfg.layout = ArrayConfig::Layout::kMirrored;
  return std::make_unique<ArrayDevice>(
      cfg, std::vector<SsdConfig>(n, member));
}

std::unique_ptr<ArrayDevice> MakeStripedArray(const SsdConfig& member,
                                              uint32_t n, ArrayConfig cfg) {
  cfg.layout = ArrayConfig::Layout::kStriped;
  return std::make_unique<ArrayDevice>(
      cfg, std::vector<SsdConfig>(n, member));
}

}  // namespace durassd
