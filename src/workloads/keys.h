#ifndef DURASSD_WORKLOADS_KEYS_H_
#define DURASSD_WORKLOADS_KEYS_H_

#include <cstdint>
#include <string>

namespace durassd {

/// Big-endian encoding helpers so composite integer keys sort correctly
/// under the B+-tree's memcmp order.
inline void AppendU64BE(std::string* dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

inline void AppendU32BE(std::string* dst, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

inline std::string KeyU64(uint64_t a) {
  std::string k;
  AppendU64BE(&k, a);
  return k;
}

inline std::string KeyU64U32(uint64_t a, uint32_t b) {
  std::string k;
  AppendU64BE(&k, a);
  AppendU32BE(&k, b);
  return k;
}

inline std::string KeyU64U32U64(uint64_t a, uint32_t b, uint64_t c) {
  std::string k;
  AppendU64BE(&k, a);
  AppendU32BE(&k, b);
  AppendU64BE(&k, c);
  return k;
}

}  // namespace durassd

#endif  // DURASSD_WORKLOADS_KEYS_H_
