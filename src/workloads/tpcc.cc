#include "workloads/tpcc.h"

#include <cassert>
#include <string>

#include "sim/client_scheduler.h"
#include "workloads/keys.h"

namespace durassd {

namespace {

// Row payloads sized like the TPC-C schema (bytes).
constexpr uint32_t kWarehouseRow = 90;
constexpr uint32_t kDistrictRow = 95;
constexpr uint32_t kCustomerRow = 500;  // Dominated by C_DATA.
constexpr uint32_t kHistoryRow = 46;
constexpr uint32_t kItemRow = 82;
constexpr uint32_t kStockRow = 306;
constexpr uint32_t kOrderRow = 32;
constexpr uint32_t kNewOrderRow = 8;
constexpr uint32_t kOrderLineRow = 54;

std::string Row(uint32_t size, char tag) { return std::string(size, tag); }

uint64_t WdKey(uint32_t w, uint32_t d, uint32_t districts) {
  return static_cast<uint64_t>(w) * districts + d;
}

}  // namespace

Tpcc::Tpcc(Database* db, Config config) : db_(db), cfg_(config) {
  rngs_.reserve(cfg_.clients);
  for (uint32_t c = 0; c < cfg_.clients; ++c) {
    rngs_.emplace_back(cfg_.seed * 31 + c);
  }
  const size_t wd = static_cast<size_t>(cfg_.warehouses) *
                    cfg_.districts_per_warehouse;
  next_order_id_.assign(wd, 1);
  next_delivery_id_.assign(wd, 1);
}

Status Tpcc::Load(IoContext& io) {
  const char* names[] = {"tpcc_warehouse", "tpcc_district", "tpcc_customer",
                         "tpcc_history",   "tpcc_item",     "tpcc_stock",
                         "tpcc_orders",    "tpcc_new_order",
                         "tpcc_order_line"};
  uint32_t* slots[] = {&trees_.warehouse, &trees_.district, &trees_.customer,
                       &trees_.history,   &trees_.item,     &trees_.stock,
                       &trees_.orders,    &trees_.new_order,
                       &trees_.order_line};
  for (size_t i = 0; i < 9; ++i) {
    StatusOr<uint32_t> id = db_->CreateTree(io, names[i]);
    if (!id.ok()) return id.status();
    *slots[i] = *id;
  }

  constexpr uint64_t kBatch = 512;
  uint64_t in_batch = 0;
  TxnId txn = 0;
  const auto put = [&](uint32_t tree, const std::string& key,
                       const std::string& value) -> Status {
    if (in_batch == 0) {
      StatusOr<TxnId> t = db_->Begin(io);
      if (!t.ok()) return t.status();
      txn = *t;
    }
    DURASSD_RETURN_IF_ERROR(db_->Put(io, txn, tree, key, value));
    if (++in_batch >= kBatch) {
      in_batch = 0;
      return db_->Commit(io, txn);
    }
    return Status::OK();
  };

  for (uint32_t i = 0; i < cfg_.items; ++i) {
    DURASSD_RETURN_IF_ERROR(put(trees_.item, KeyU64(i), Row(kItemRow, 'i')));
  }
  for (uint32_t w = 0; w < cfg_.warehouses; ++w) {
    DURASSD_RETURN_IF_ERROR(
        put(trees_.warehouse, KeyU64(w), Row(kWarehouseRow, 'w')));
    for (uint32_t i = 0; i < cfg_.items; ++i) {
      DURASSD_RETURN_IF_ERROR(
          put(trees_.stock, KeyU64U32(w, i), Row(kStockRow, 's')));
    }
    for (uint32_t d = 0; d < cfg_.districts_per_warehouse; ++d) {
      const uint64_t wd = WdKey(w, d, cfg_.districts_per_warehouse);
      DURASSD_RETURN_IF_ERROR(
          put(trees_.district, KeyU64(wd), Row(kDistrictRow, 'd')));
      for (uint32_t c = 0; c < cfg_.customers_per_district; ++c) {
        DURASSD_RETURN_IF_ERROR(
            put(trees_.customer, KeyU64U32(wd, c), Row(kCustomerRow, 'c')));
      }
    }
  }
  if (in_batch != 0) {
    DURASSD_RETURN_IF_ERROR(db_->Commit(io, txn));
  }
  DURASSD_RETURN_IF_ERROR(db_->Checkpoint(io));
  start_time_ = io.now;  // Run continues where the load ended.
  return Status::OK();
}

Status Tpcc::DoNewOrder(IoContext& io, Random& rng, bool* committed) {
  *committed = false;
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  const uint64_t wd = WdKey(w, d, cfg_.districts_per_warehouse);
  const uint32_t c = NuRand(rng, 1023, cfg_.customers_per_district);
  const uint32_t n_lines = static_cast<uint32_t>(rng.UniformRange(5, 15));

  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  std::string row;
  DURASSD_RETURN_IF_ERROR(db_->Get(io, trees_.warehouse, KeyU64(w), &row));
  DURASSD_RETURN_IF_ERROR(db_->Get(io, trees_.customer, KeyU64U32(wd, c),
                                   &row));
  // District read + D_NEXT_O_ID update.
  DURASSD_RETURN_IF_ERROR(db_->Get(io, trees_.district, KeyU64(wd), &row));
  DURASSD_RETURN_IF_ERROR(
      db_->Put(io, *txn, trees_.district, KeyU64(wd), Row(kDistrictRow, 'D')));
  const uint64_t o_id = next_order_id_[wd]++;

  for (uint32_t l = 0; l < n_lines; ++l) {
    const uint32_t item = NuRand(rng, 8191, cfg_.items);
    DURASSD_RETURN_IF_ERROR(db_->Get(io, trees_.item, KeyU64(item), &row));
    DURASSD_RETURN_IF_ERROR(
        db_->Get(io, trees_.stock, KeyU64U32(w, item), &row));
    DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, trees_.stock,
                                     KeyU64U32(w, item),
                                     Row(kStockRow, 'S')));
    DURASSD_RETURN_IF_ERROR(db_->Put(
        io, *txn, trees_.order_line,
        KeyU64U32U64(wd, static_cast<uint32_t>(o_id), l),
        Row(kOrderLineRow, 'o')));
  }
  DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, trees_.orders,
                                   KeyU64U32(wd, static_cast<uint32_t>(o_id)),
                                   Row(kOrderRow, 'O')));
  DURASSD_RETURN_IF_ERROR(
      db_->Put(io, *txn, trees_.new_order,
               KeyU64U32(wd, static_cast<uint32_t>(o_id)),
               Row(kNewOrderRow, 'n')));
  DURASSD_RETURN_IF_ERROR(db_->Commit(io, *txn));
  *committed = true;
  return Status::OK();
}

Status Tpcc::DoPayment(IoContext& io, Random& rng) {
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  const uint64_t wd = WdKey(w, d, cfg_.districts_per_warehouse);
  const uint32_t c = NuRand(rng, 1023, cfg_.customers_per_district);

  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  std::string row;
  DURASSD_RETURN_IF_ERROR(db_->Get(io, trees_.warehouse, KeyU64(w), &row));
  DURASSD_RETURN_IF_ERROR(
      db_->Put(io, *txn, trees_.warehouse, KeyU64(w), Row(kWarehouseRow, 'W')));
  DURASSD_RETURN_IF_ERROR(db_->Get(io, trees_.district, KeyU64(wd), &row));
  DURASSD_RETURN_IF_ERROR(
      db_->Put(io, *txn, trees_.district, KeyU64(wd), Row(kDistrictRow, 'E')));
  DURASSD_RETURN_IF_ERROR(
      db_->Get(io, trees_.customer, KeyU64U32(wd, c), &row));
  DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, trees_.customer,
                                   KeyU64U32(wd, c), Row(kCustomerRow, 'C')));
  DURASSD_RETURN_IF_ERROR(db_->Put(
      io, *txn, trees_.history,
      KeyU64U32U64(wd, c, static_cast<uint64_t>(io.now)),
      Row(kHistoryRow, 'h')));
  return db_->Commit(io, *txn);
}

Status Tpcc::DoOrderStatus(IoContext& io, Random& rng) {
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  const uint64_t wd = WdKey(w, d, cfg_.districts_per_warehouse);
  const uint32_t c = NuRand(rng, 1023, cfg_.customers_per_district);
  std::string row;
  DURASSD_RETURN_IF_ERROR(
      db_->Get(io, trees_.customer, KeyU64U32(wd, c), &row));
  const uint64_t last = next_order_id_[wd];
  if (last > 1) {
    const uint32_t o_id = static_cast<uint32_t>(last - 1);
    Status s = db_->Get(io, trees_.orders, KeyU64U32(wd, o_id), &row);
    if (!s.ok() && !s.IsNotFound()) return s;
    std::vector<std::pair<std::string, std::string>> lines;
    DURASSD_RETURN_IF_ERROR(db_->Scan(io, trees_.order_line,
                                      KeyU64U32U64(wd, o_id, 0), 15, &lines));
  }
  return Status::OK();
}

Status Tpcc::DoDelivery(IoContext& io, Random& rng) {
  const uint32_t w = PickWarehouse(rng);
  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  for (uint32_t d = 0; d < cfg_.districts_per_warehouse; ++d) {
    const uint64_t wd = WdKey(w, d, cfg_.districts_per_warehouse);
    if (next_delivery_id_[wd] >= next_order_id_[wd]) continue;
    const uint32_t o_id = static_cast<uint32_t>(next_delivery_id_[wd]++);
    Status s =
        db_->Delete(io, *txn, trees_.new_order, KeyU64U32(wd, o_id));
    if (!s.ok() && !s.IsNotFound()) return s;
    std::string row;
    s = db_->Get(io, trees_.orders, KeyU64U32(wd, o_id), &row);
    if (s.ok()) {
      DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, trees_.orders,
                                       KeyU64U32(wd, o_id),
                                       Row(kOrderRow, 'P')));
    } else if (!s.IsNotFound()) {
      return s;
    }
    const uint32_t c = NuRand(rng, 1023, cfg_.customers_per_district);
    DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, trees_.customer,
                                     KeyU64U32(wd, c),
                                     Row(kCustomerRow, 'B')));
  }
  return db_->Commit(io, *txn);
}

Status Tpcc::DoStockLevel(IoContext& io, Random& rng) {
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  const uint64_t wd = WdKey(w, d, cfg_.districts_per_warehouse);
  std::string row;
  DURASSD_RETURN_IF_ERROR(db_->Get(io, trees_.district, KeyU64(wd), &row));
  // Last 20 orders' lines, then the referenced stocks.
  const uint64_t last = next_order_id_[wd];
  const uint64_t first = last > 20 ? last - 20 : 1;
  std::vector<std::pair<std::string, std::string>> lines;
  DURASSD_RETURN_IF_ERROR(
      db_->Scan(io, trees_.order_line,
                KeyU64U32U64(wd, static_cast<uint32_t>(first), 0), 40,
                &lines));
  for (int i = 0; i < 10; ++i) {
    const uint32_t item = NuRand(rng, 8191, cfg_.items);
    Status s = db_->Get(io, trees_.stock, KeyU64U32(w, item), &row);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::OK();
}

SimTime Tpcc::RunOne(uint32_t client, SimTime now) {
  Random& rng = rngs_[client];
  const double roll = rng.NextDouble() * 100.0;
  IoContext io{now};
  Status s;
  if (roll < 45.0) {
    bool committed = false;
    s = DoNewOrder(io, rng, &committed);
    if (committed) {
      result_.new_orders++;
      result_.new_order_latency.Record(io.now - now);
    }
  } else if (roll < 88.0) {
    s = DoPayment(io, rng);
  } else if (roll < 92.0) {
    s = DoOrderStatus(io, rng);
  } else if (roll < 96.0) {
    s = DoDelivery(io, rng);
  } else {
    s = DoStockLevel(io, rng);
  }
  assert(s.ok());
  (void)s;
  return io.now;
}

StatusOr<Tpcc::Result> Tpcc::Run() {
  result_ = Result{};
  const auto fn = [this](uint32_t client, SimTime now) {
    return RunOne(client, now);
  };
  const ClientScheduler::RunResult run =
      ClientScheduler::Run(cfg_.clients, cfg_.transactions, start_time_, fn);
  result_.duration = run.makespan;
  result_.tps_all = run.OpsPerSecond();
  const double minutes =
      static_cast<double>(run.makespan) / (60.0 * kSecond);
  result_.tpmc = minutes <= 0 ? 0 : result_.new_orders / minutes;
  return result_;
}

}  // namespace durassd
