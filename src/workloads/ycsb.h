#ifndef DURASSD_WORKLOADS_YCSB_H_
#define DURASSD_WORKLOADS_YCSB_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "kv/kvstore.h"

namespace durassd {

/// YCSB Workload-A (the only YCSB workload with writes — Sec. 4.3.3):
/// 1KB documents, Zipfian key popularity, a read/update mix, run against
/// the Couchbase-style KvStore. The paper's Table 5 varies the update
/// fraction (50% / 100%) and the store's batch-size (fsync frequency).
class Ycsb {
 public:
  struct Config {
    uint64_t records = 100000;
    uint32_t value_size = 1024;
    double update_fraction = 0.5;  ///< 0.5 = workload-A, 1.0 = update-only.
    uint64_t operations = 200000;
    uint32_t clients = 1;          ///< Paper: single benchmark thread.
    double zipf_theta = 0.99;
    uint64_t seed = 11;
  };

  struct Result {
    double ops_per_sec = 0;
    SimTime duration = 0;
    Histogram read_latency;
    Histogram update_latency;
  };

  Ycsb(KvStore* store, Config config);

  /// Bulk-loads `records` documents and commits.
  Status Load(IoContext& io);
  StatusOr<Result> Run();

 private:
  SimTime RunOne(uint32_t client, SimTime now);

  KvStore* store_;
  Config cfg_;
  SimTime start_time_ = 0;
  ZipfianGenerator zipf_;
  std::vector<Random> rngs_;
  Result result_;
};

}  // namespace durassd

#endif  // DURASSD_WORKLOADS_YCSB_H_
