#include "workloads/fiosim.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "host/sim_file.h"
#include "sim/client_scheduler.h"

namespace durassd {

FioResult RunFio(BlockDevice* device, const FioJob& job) {
  SimFileSystem::Options fso;
  fso.write_barriers = job.write_barriers;
  SimFileSystem fs(device, fso);
  SimFile* file = fs.Open("fio.dat");

  const uint64_t span = std::min<uint64_t>(
      job.working_set_bytes,
      device->capacity_bytes() / 2);
  const uint64_t blocks = std::max<uint64_t>(1, span / job.block_bytes);
  file->Allocate(blocks * job.block_bytes);

  const std::string payload(job.block_bytes, 'f');

  // Read jobs precondition the file first (otherwise reads hit unmapped
  // sectors, which cost no media time); the preconditioning writes are
  // excluded from the measurement by starting the clock after a drain.
  SimTime start_time = 0;
  if (job.mode == FioJob::Mode::kRandRead) {
    // Large sequential writes amortize per-command cost.
    const uint32_t batch = 8;
    const std::string big(static_cast<size_t>(job.block_bytes) * batch, 'p');
    SimTime t = 0;
    for (uint64_t b = 0; b + batch <= blocks; b += batch) {
      const SimFile::IoResult w =
          file->Write(t, b * job.block_bytes, big);
      if (!w.status.ok()) break;
      t = w.done;
    }
    const BlockDevice::Result f = device->Flush(t);
    start_time = f.status.ok() ? f.done : t;
  }

  // Asynchronous windowed submission (fio iodepth > 1): one submitter
  // keeps the device's queue full; latency is measured per command from
  // submission to completion.
  if (job.mode == FioJob::Mode::kRandWrite && job.iodepth > 1) {
    FioResult result;
    Random rng(job.seed);
    SimTime now = start_time;
    uint32_t since_fsync = 0;
    const auto reap = [&](SimTime upto) {
      for (const SimFile::Completion& c : file->Poll(upto)) {
        result.latency.Record(c.done - c.submit);
      }
    };
    const auto drain = [&] {
      while (file->pending_count() > 0) {
        now = std::max(now, file->EarliestPendingDone());
        reap(now);
      }
    };
    for (uint64_t i = 0; i < job.ops; ++i) {
      while (file->pending_count() >= job.iodepth) {
        now = std::max(now, file->EarliestPendingDone());
        reap(now);
      }
      const uint64_t offset = rng.Uniform(blocks) * job.block_bytes;
      file->SubmitWrite(now, offset, payload);
      if (job.fsync_every != 0 && ++since_fsync >= job.fsync_every) {
        since_fsync = 0;
        drain();
        const SimFile::IoResult s =
            job.barrier_sync ? file->Barrier(now) : file->Sync(now);
        if (s.status.ok()) now = std::max(now, s.done);
      }
    }
    drain();
    const BlockDevice::Result flush = device->Flush(now);
    const SimTime duration =
        (flush.status.ok() ? flush.done : now) - start_time;
    result.duration = duration;
    result.iops = duration <= 0
                      ? 0
                      : static_cast<double>(job.ops) /
                            (static_cast<double>(duration) / kSecond);
    return result;
  }

  std::vector<Random> rngs;
  std::vector<uint32_t> since_fsync(job.threads, 0);
  rngs.reserve(job.threads);
  for (uint32_t t = 0; t < job.threads; ++t) {
    rngs.emplace_back(job.seed + t * 7919);
  }

  FioResult result;
  const auto client_fn = [&](uint32_t client, SimTime now) -> SimTime {
    Random& rng = rngs[client];
    const uint64_t offset = rng.Uniform(blocks) * job.block_bytes;
    SimTime done = now;
    if (job.mode == FioJob::Mode::kRandWrite) {
      const SimFile::IoResult w = file->Write(now, offset, payload);
      done = w.done;
      if (job.fsync_every != 0 &&
          ++since_fsync[client] >= job.fsync_every) {
        since_fsync[client] = 0;
        const SimFile::IoResult s =
            job.barrier_sync ? file->Barrier(done) : file->Sync(done);
        done = s.done;
      }
    } else {
      const SimFile::IoResult r =
          file->Read(now, offset, job.block_bytes, nullptr);
      done = r.done;
    }
    result.latency.Record(done - now);
    return done;
  };

  const ClientScheduler::RunResult run =
      ClientScheduler::Run(job.threads, job.ops, start_time, client_fn);
  // Drain the device cache so the reported rate is sustained steady-state
  // (without this a short write burst "completes" into the cache at bus
  // speed and never pays for the media).
  SimTime duration = run.makespan;
  if (job.mode == FioJob::Mode::kRandWrite) {
    const BlockDevice::Result flush =
        device->Flush(start_time + run.makespan);
    if (flush.status.ok()) duration = flush.done - start_time;
  }
  result.duration = duration;
  result.iops = duration <= 0 ? 0
                              : static_cast<double>(run.ops) /
                                    (static_cast<double>(duration) / kSecond);
  return result;
}

}  // namespace durassd
