#ifndef DURASSD_WORKLOADS_FIOSIM_H_
#define DURASSD_WORKLOADS_FIOSIM_H_

#include <cstdint>

#include "common/histogram.h"
#include "common/types.h"
#include "host/block_device.h"

namespace durassd {

/// fio-style micro-benchmark driver: N logical threads issuing random
/// block-aligned reads or writes through a file on a SimFileSystem, with a
/// configurable fsync interval. Reproduces the methodology behind the
/// paper's Tables 1 and 2.
struct FioJob {
  enum class Mode { kRandWrite, kRandRead };
  Mode mode = Mode::kRandWrite;
  uint32_t block_bytes = 4 * kKiB;
  uint32_t threads = 1;
  uint64_t ops = 20000;
  /// fsync after every N writes per thread; 0 = never.
  uint32_t fsync_every = 0;
  /// Asynchronous submission window (fio's iodepth) for write jobs: a
  /// single submitter keeps up to this many file commands in flight via
  /// the async submit/complete path; `threads` is ignored. <= 1 = the
  /// synchronous closed loop over `threads` clients. `fsync_every` then
  /// counts submissions and drains the window before each fsync.
  uint32_t iodepth = 1;
  /// Host write barriers (fsync => FLUSH CACHE) — the "NoBarrier" row.
  bool write_barriers = true;
  /// File size the random offsets span.
  uint64_t working_set_bytes = 256 * kMiB;
  uint64_t seed = 42;
  /// Replace each fsync with a barrier submission (fbarrier) — the
  /// barrier-enabled I/O stack row of the durability-mode ablation. Falls
  /// back to a full fsync on devices without barrier support.
  bool barrier_sync = false;
};

struct FioResult {
  double iops = 0;
  SimTime duration = 0;
  Histogram latency;
};

/// Runs the job against the device. The device should usually be in
/// timing-only mode (store_data = false) for large jobs.
FioResult RunFio(BlockDevice* device, const FioJob& job);

}  // namespace durassd

#endif  // DURASSD_WORKLOADS_FIOSIM_H_
