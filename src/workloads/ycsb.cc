#include "workloads/ycsb.h"

#include <cassert>
#include <string>

#include "sim/client_scheduler.h"

namespace durassd {

namespace {
std::string UserKey(uint64_t id) { return "user" + std::to_string(id); }
}  // namespace

Ycsb::Ycsb(KvStore* store, Config config)
    : store_(store), cfg_(config), zipf_(config.records, config.zipf_theta) {
  rngs_.reserve(cfg_.clients);
  for (uint32_t c = 0; c < cfg_.clients; ++c) {
    rngs_.emplace_back(cfg_.seed * 29 + c);
  }
}

Status Ycsb::Load(IoContext& io) {
  const std::string value(cfg_.value_size, 'y');
  for (uint64_t i = 0; i < cfg_.records; ++i) {
    DURASSD_RETURN_IF_ERROR(store_->Put(io, UserKey(i), value));
  }
  DURASSD_RETURN_IF_ERROR(store_->Commit(io));
  start_time_ = io.now;  // Run continues where the load ended.
  return Status::OK();
}

SimTime Ycsb::RunOne(uint32_t client, SimTime now) {
  Random& rng = rngs_[client];
  const uint64_t id = zipf_.NextScrambled(rng);
  IoContext io{now};
  if (rng.NextDouble() < cfg_.update_fraction) {
    const std::string value(cfg_.value_size, 'u');
    const Status s = store_->Put(io, UserKey(id), value);
    assert(s.ok());
    (void)s;
    result_.update_latency.Record(io.now - now);
  } else {
    std::string value;
    const Status s = store_->Get(io, UserKey(id), &value);
    assert(s.ok() || s.IsNotFound());
    (void)s;
    result_.read_latency.Record(io.now - now);
  }
  return io.now;
}

StatusOr<Ycsb::Result> Ycsb::Run() {
  result_ = Result{};
  const auto fn = [this](uint32_t client, SimTime now) {
    return RunOne(client, now);
  };
  const ClientScheduler::RunResult run =
      ClientScheduler::Run(cfg_.clients, cfg_.operations, start_time_, fn);
  result_.ops_per_sec = run.OpsPerSecond();
  result_.duration = run.makespan;
  return result_;
}

}  // namespace durassd
