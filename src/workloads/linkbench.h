#ifndef DURASSD_WORKLOADS_LINKBENCH_H_
#define DURASSD_WORKLOADS_LINKBENCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "db/database.h"

namespace durassd {

/// The ten LinkBench operation types of the paper's Table 3.
enum class LinkOp {
  kGetNode = 0,
  kCountLink,
  kGetLinkList,
  kMultigetLink,
  kAddNode,
  kDeleteNode,
  kUpdateNode,
  kAddLink,
  kDeleteLink,
  kUpdateLink,
  kNumOps,
};

const char* LinkOpName(LinkOp op);
bool LinkOpIsWrite(LinkOp op);

/// LinkBench-compatible social-graph workload over minibase (Sec. 4.3.1):
/// a node table and a link table, Facebook's default operation mix (~70%
/// reads / 30% writes), power-law (Zipfian) access skew. Each write is a
/// transaction with commit-time log sync.
class LinkBench {
 public:
  struct Config {
    uint64_t num_nodes = 100000;
    uint32_t avg_links_per_node = 4;
    uint32_t node_payload = 120;
    uint32_t link_payload = 96;
    double zipf_theta = 0.9;
    uint32_t clients = 128;
    uint64_t requests = 100000;
    uint64_t seed = 7;
  };

  struct Result {
    double tps = 0;
    SimTime duration = 0;
    uint64_t ops = 0;
    std::map<LinkOp, Histogram> latencies;
    double buffer_miss_ratio = 0;
  };

  LinkBench(Database* db, Config config);

  /// Bulk-loads the graph and checkpoints.
  Status Load(IoContext& io);

  /// Runs `requests` operations across `clients` logical clients.
  StatusOr<Result> Run();

 private:
  SimTime RunOne(uint32_t client, SimTime now);
  LinkOp PickOp(Random& rng) const;
  uint64_t PickNode(Random& rng) const;

  Status DoGetNode(IoContext& io, Random& rng);
  Status DoCountLink(IoContext& io, Random& rng);
  Status DoGetLinkList(IoContext& io, Random& rng);
  Status DoMultigetLink(IoContext& io, Random& rng);
  Status DoAddNode(IoContext& io, Random& rng);
  Status DoDeleteNode(IoContext& io, Random& rng);
  Status DoUpdateNode(IoContext& io, Random& rng);
  Status DoAddLink(IoContext& io, Random& rng);
  Status DoDeleteLink(IoContext& io, Random& rng);
  Status DoUpdateLink(IoContext& io, Random& rng);

  Database* db_;
  Config cfg_;
  SimTime start_time_ = 0;
  uint32_t node_tree_ = 0;
  uint32_t link_tree_ = 0;
  uint64_t max_node_id_ = 0;
  ZipfianGenerator zipf_;
  std::vector<Random> rngs_;
  Result result_;
};

}  // namespace durassd

#endif  // DURASSD_WORKLOADS_LINKBENCH_H_
