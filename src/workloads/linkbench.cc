#include "workloads/linkbench.h"

#include <algorithm>
#include <cassert>

#include "common/random.h"
#include "sim/client_scheduler.h"
#include "workloads/keys.h"

namespace durassd {

namespace {

// Facebook's published LinkBench operation mix (percent), giving the
// paper's ~70/30 read/write split.
struct MixEntry {
  LinkOp op;
  double percent;
};
constexpr MixEntry kMix[] = {
    {LinkOp::kGetNode, 12.9},  {LinkOp::kCountLink, 4.9},
    {LinkOp::kGetLinkList, 51.2}, {LinkOp::kMultigetLink, 0.5},
    {LinkOp::kAddNode, 2.6},   {LinkOp::kDeleteNode, 1.0},
    {LinkOp::kUpdateNode, 7.4}, {LinkOp::kAddLink, 9.0},
    {LinkOp::kDeleteLink, 3.0}, {LinkOp::kUpdateLink, 7.5},
};

constexpr uint32_t kLinkTypes = 3;

}  // namespace

const char* LinkOpName(LinkOp op) {
  switch (op) {
    case LinkOp::kGetNode:
      return "Get Node";
    case LinkOp::kCountLink:
      return "Count Link";
    case LinkOp::kGetLinkList:
      return "Get Link List";
    case LinkOp::kMultigetLink:
      return "Multiget Link";
    case LinkOp::kAddNode:
      return "ADD Node";
    case LinkOp::kDeleteNode:
      return "Delete Node";
    case LinkOp::kUpdateNode:
      return "Update Node";
    case LinkOp::kAddLink:
      return "Add Link";
    case LinkOp::kDeleteLink:
      return "Delete Link";
    case LinkOp::kUpdateLink:
      return "Update Link";
    default:
      return "?";
  }
}

bool LinkOpIsWrite(LinkOp op) {
  switch (op) {
    case LinkOp::kGetNode:
    case LinkOp::kCountLink:
    case LinkOp::kGetLinkList:
    case LinkOp::kMultigetLink:
      return false;
    default:
      return true;
  }
}

LinkBench::LinkBench(Database* db, Config config)
    : db_(db),
      cfg_(config),
      max_node_id_(config.num_nodes),
      zipf_(config.num_nodes, config.zipf_theta) {
  rngs_.reserve(cfg_.clients);
  for (uint32_t c = 0; c < cfg_.clients; ++c) {
    rngs_.emplace_back(cfg_.seed * 1000003 + c);
  }
}

Status LinkBench::Load(IoContext& io) {
  StatusOr<uint32_t> nodes = db_->CreateTree(io, "lb_node");
  if (!nodes.ok()) return nodes.status();
  node_tree_ = *nodes;
  StatusOr<uint32_t> links = db_->CreateTree(io, "lb_link");
  if (!links.ok()) return links.status();
  link_tree_ = *links;

  Random rng(cfg_.seed);
  const std::string node_payload(cfg_.node_payload, 'n');
  const std::string link_payload(cfg_.link_payload, 'l');

  // One transaction per batch of rows keeps load fast in virtual time.
  constexpr uint64_t kBatch = 256;
  uint64_t in_batch = 0;
  TxnId txn = 0;
  for (uint64_t id = 0; id < cfg_.num_nodes; ++id) {
    if (in_batch == 0) {
      StatusOr<TxnId> t = db_->Begin(io);
      if (!t.ok()) return t.status();
      txn = *t;
    }
    DURASSD_RETURN_IF_ERROR(
        db_->Put(io, txn, node_tree_, KeyU64(id), node_payload));
    const uint32_t nlinks =
        static_cast<uint32_t>(rng.Uniform(2 * cfg_.avg_links_per_node + 1));
    for (uint32_t l = 0; l < nlinks; ++l) {
      const uint32_t type = static_cast<uint32_t>(rng.Uniform(kLinkTypes));
      const uint64_t id2 = rng.Uniform(cfg_.num_nodes);
      DURASSD_RETURN_IF_ERROR(db_->Put(
          io, txn, link_tree_, KeyU64U32U64(id, type, id2), link_payload));
    }
    if (++in_batch >= kBatch || id + 1 == cfg_.num_nodes) {
      DURASSD_RETURN_IF_ERROR(db_->Commit(io, txn));
      in_batch = 0;
    }
  }
  DURASSD_RETURN_IF_ERROR(db_->Checkpoint(io));
  // The benchmark run continues in virtual time where the load left off;
  // restarting at zero would make early requests wait out the load's
  // device reservations.
  start_time_ = io.now;
  return Status::OK();
}

LinkOp LinkBench::PickOp(Random& rng) const {
  double roll = rng.NextDouble() * 100.0;
  for (const MixEntry& e : kMix) {
    if (roll < e.percent) return e.op;
    roll -= e.percent;
  }
  return LinkOp::kGetLinkList;
}

uint64_t LinkBench::PickNode(Random& rng) const {
  return zipf_.NextScrambled(rng);
}

Status LinkBench::DoGetNode(IoContext& io, Random& rng) {
  std::string v;
  const Status s = db_->Get(io, node_tree_, KeyU64(PickNode(rng)), &v);
  return s.IsNotFound() ? Status::OK() : s;
}

Status LinkBench::DoCountLink(IoContext& io, Random& rng) {
  const uint64_t id = PickNode(rng);
  const uint32_t type = static_cast<uint32_t>(rng.Uniform(kLinkTypes));
  uint64_t count = 0;
  return db_->CountRange(io, link_tree_, KeyU64U32U64(id, type, 0),
                         KeyU64U32U64(id, type + 1, 0), 10000, &count);
}

Status LinkBench::DoGetLinkList(IoContext& io, Random& rng) {
  const uint64_t id = PickNode(rng);
  const uint32_t type = static_cast<uint32_t>(rng.Uniform(kLinkTypes));
  std::vector<std::pair<std::string, std::string>> out;
  return db_->Scan(io, link_tree_, KeyU64U32U64(id, type, 0), 10, &out);
}

Status LinkBench::DoMultigetLink(IoContext& io, Random& rng) {
  const uint64_t id = PickNode(rng);
  const uint32_t type = static_cast<uint32_t>(rng.Uniform(kLinkTypes));
  for (int i = 0; i < 3; ++i) {
    std::string v;
    const Status s = db_->Get(
        io, link_tree_, KeyU64U32U64(id, type, rng.Uniform(cfg_.num_nodes)),
        &v);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::OK();
}

Status LinkBench::DoAddNode(IoContext& io, Random& rng) {
  (void)rng;
  const uint64_t id = max_node_id_++;
  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, node_tree_, KeyU64(id),
                                   std::string(cfg_.node_payload, 'N')));
  return db_->Commit(io, *txn);
}

Status LinkBench::DoDeleteNode(IoContext& io, Random& rng) {
  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  const Status s = db_->Delete(io, *txn, node_tree_, KeyU64(PickNode(rng)));
  if (!s.ok() && !s.IsNotFound()) return s;
  return db_->Commit(io, *txn);
}

Status LinkBench::DoUpdateNode(IoContext& io, Random& rng) {
  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, node_tree_,
                                   KeyU64(PickNode(rng)),
                                   std::string(cfg_.node_payload, 'U')));
  return db_->Commit(io, *txn);
}

Status LinkBench::DoAddLink(IoContext& io, Random& rng) {
  const uint64_t id = PickNode(rng);
  const uint32_t type = static_cast<uint32_t>(rng.Uniform(kLinkTypes));
  const uint64_t id2 = rng.Uniform(std::max<uint64_t>(1, max_node_id_));
  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, link_tree_,
                                   KeyU64U32U64(id, type, id2),
                                   std::string(cfg_.link_payload, 'L')));
  return db_->Commit(io, *txn);
}

Status LinkBench::DoDeleteLink(IoContext& io, Random& rng) {
  const uint64_t id = PickNode(rng);
  const uint32_t type = static_cast<uint32_t>(rng.Uniform(kLinkTypes));
  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  const Status s = db_->Delete(
      io, *txn, link_tree_,
      KeyU64U32U64(id, type, rng.Uniform(cfg_.num_nodes)));
  if (!s.ok() && !s.IsNotFound()) return s;
  return db_->Commit(io, *txn);
}

Status LinkBench::DoUpdateLink(IoContext& io, Random& rng) {
  const uint64_t id = PickNode(rng);
  const uint32_t type = static_cast<uint32_t>(rng.Uniform(kLinkTypes));
  const uint64_t id2 = rng.Uniform(cfg_.num_nodes);
  StatusOr<TxnId> txn = db_->Begin(io);
  if (!txn.ok()) return txn.status();
  DURASSD_RETURN_IF_ERROR(db_->Put(io, *txn, link_tree_,
                                   KeyU64U32U64(id, type, id2),
                                   std::string(cfg_.link_payload, 'M')));
  return db_->Commit(io, *txn);
}

SimTime LinkBench::RunOne(uint32_t client, SimTime now) {
  Random& rng = rngs_[client];
  const LinkOp op = PickOp(rng);
  IoContext io{now};
  Status s;
  switch (op) {
    case LinkOp::kGetNode:
      s = DoGetNode(io, rng);
      break;
    case LinkOp::kCountLink:
      s = DoCountLink(io, rng);
      break;
    case LinkOp::kGetLinkList:
      s = DoGetLinkList(io, rng);
      break;
    case LinkOp::kMultigetLink:
      s = DoMultigetLink(io, rng);
      break;
    case LinkOp::kAddNode:
      s = DoAddNode(io, rng);
      break;
    case LinkOp::kDeleteNode:
      s = DoDeleteNode(io, rng);
      break;
    case LinkOp::kUpdateNode:
      s = DoUpdateNode(io, rng);
      break;
    case LinkOp::kAddLink:
      s = DoAddLink(io, rng);
      break;
    case LinkOp::kDeleteLink:
      s = DoDeleteLink(io, rng);
      break;
    case LinkOp::kUpdateLink:
      s = DoUpdateLink(io, rng);
      break;
    default:
      break;
  }
  // Benchmark semantics: operational errors would abort the run; assert in
  // debug, keep going in release.
  assert(s.ok());
  (void)s;
  result_.latencies[op].Record(io.now - now);
  return io.now;
}

StatusOr<LinkBench::Result> LinkBench::Run() {
  result_ = Result{};
  const auto fn = [this](uint32_t client, SimTime now) {
    return RunOne(client, now);
  };
  const ClientScheduler::RunResult run =
      ClientScheduler::Run(cfg_.clients, cfg_.requests, start_time_, fn);
  result_.tps = run.OpsPerSecond();
  result_.duration = run.makespan;
  result_.ops = run.ops;
  result_.buffer_miss_ratio = db_->pool_stats().MissRatio();
  return result_;
}

}  // namespace durassd
