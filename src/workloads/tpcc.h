#ifndef DURASSD_WORKLOADS_TPCC_H_
#define DURASSD_WORKLOADS_TPCC_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "db/database.h"

namespace durassd {

/// TPC-C workload over minibase (the commercial-RDBMS experiment of
/// Sec. 4.3.2). Full schema (warehouse, district, customer, history, item,
/// stock, orders, new_order, order_line) with realistic row sizes, and the
/// five transaction types at the standard mix:
///   NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%.
/// tpmC = NewOrder transactions committed per simulated minute.
class Tpcc {
 public:
  struct Config {
    uint32_t warehouses = 4;
    uint32_t districts_per_warehouse = 10;
    uint32_t customers_per_district = 300;   ///< Spec: 3000; scaled.
    uint32_t items = 10000;                  ///< Spec: 100000; scaled.
    uint32_t clients = 32;
    uint64_t transactions = 20000;
    uint64_t seed = 99;
  };

  struct Result {
    double tpmc = 0;          ///< NewOrder commits per simulated minute.
    double tps_all = 0;       ///< All transactions per second.
    SimTime duration = 0;
    uint64_t new_orders = 0;
    Histogram new_order_latency;
  };

  Tpcc(Database* db, Config config);

  Status Load(IoContext& io);
  StatusOr<Result> Run();

 private:
  struct Trees {
    uint32_t warehouse, district, customer, history, item, stock, orders,
        new_order, order_line;
  };

  SimTime RunOne(uint32_t client, SimTime now);
  Status DoNewOrder(IoContext& io, Random& rng, bool* committed);
  Status DoPayment(IoContext& io, Random& rng);
  Status DoOrderStatus(IoContext& io, Random& rng);
  Status DoDelivery(IoContext& io, Random& rng);
  Status DoStockLevel(IoContext& io, Random& rng);

  uint32_t PickWarehouse(Random& rng) const {
    return static_cast<uint32_t>(rng.Uniform(cfg_.warehouses));
  }
  /// TPC-C NURand-style skewed customer/item selection.
  uint32_t NuRand(Random& rng, uint32_t a, uint32_t n) const {
    return static_cast<uint32_t>(
        ((rng.Uniform(a + 1) | rng.Uniform(n)) % n));
  }

  Database* db_;
  Config cfg_;
  SimTime start_time_ = 0;
  Trees trees_{};
  std::vector<Random> rngs_;
  /// Next order id per (warehouse, district).
  std::vector<uint64_t> next_order_id_;
  /// Oldest undelivered order per (warehouse, district).
  std::vector<uint64_t> next_delivery_id_;
  Result result_;
};

}  // namespace durassd

#endif  // DURASSD_WORKLOADS_TPCC_H_
