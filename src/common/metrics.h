#ifndef DURASSD_COMMON_METRICS_H_
#define DURASSD_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/histogram.h"
#include "common/json.h"
#include "common/types.h"

namespace durassd {

/// One relaxed-atomic counter cell. Increments from concurrent shard /
/// pool threads are safe (relaxed RMW — on x86 the same `lock xadd` a
/// seq_cst increment would emit, so the single-threaded hot path is not
/// perturbed); cross-metric ordering is not promised, snapshots are taken
/// at barriers. The operator surface mirrors a plain `uint64_t*` so call
/// sites (`++*c`, `*c += n`, reads) are unchanged.
class MetricCounter {
 public:
  MetricCounter() = default;
  MetricCounter(const MetricCounter&) = delete;
  MetricCounter& operator=(const MetricCounter&) = delete;

  MetricCounter& operator=(uint64_t x) {
    v_.store(x, std::memory_order_relaxed);
    return *this;
  }
  MetricCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  MetricCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  operator uint64_t() const { return v_.load(std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// One relaxed-atomic gauge cell (last-value semantics).
class MetricGauge {
 public:
  MetricGauge() = default;
  MetricGauge(const MetricGauge&) = delete;
  MetricGauge& operator=(const MetricGauge&) = delete;

  MetricGauge& operator=(double x) {
    v_.store(x, std::memory_order_relaxed);
    return *this;
  }
  operator double() const { return v_.load(std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Named metrics for one component tree: counters, gauges, and latency
/// histograms, registered once and updated through stable pointers, so the
/// hot path is a plain increment / Histogram::Record with no lookup.
///
/// Layering convention: each top-level component (SsdDevice, Database,
/// KvStore) owns a registry; sub-layers (Ftl, Wal, DoubleWriteBuffer)
/// receive a pointer to their owner's registry and register their own
/// metrics under a dotted prefix ("ftl.program_ns", "wal.sync_ns", ...).
///
/// Metrics are observational only: recording never advances virtual time,
/// so an instrumented run produces bit-identical simulation results to an
/// uninstrumented one.
///
/// Thread safety (DESIGN.md §13): counter/gauge *updates* are relaxed
/// atomics, safe from any thread. Registration takes a mutex (components
/// register at construction; doing so concurrently is legal but unusual).
/// Histograms are NOT thread-safe — they are shard-local by convention and
/// only read at barriers, as are the snapshot accessors (counters() /
/// AppendJson / Reset), which assume updates are quiesced.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a counter. The returned pointer is stable for the
  /// registry's lifetime; increment it directly.
  MetricCounter* Counter(const std::string& name);
  /// Registers (or finds) a gauge (last-value semantics).
  MetricGauge* Gauge(const std::string& name);
  /// Registers (or finds) a latency histogram (nanosecond samples).
  /// Unlike counters, histograms must only be updated by their owning
  /// shard's thread.
  Histogram* GetHistogram(const std::string& name);

  const std::map<std::string, MetricCounter>& counters() const {
    return counters_;
  }
  const std::map<std::string, MetricGauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Zeroes every registered metric (pointers stay valid).
  void Reset();

  /// Appends a snapshot as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{"name":{count,mean,...}}}
  void AppendJson(JsonWriter* w) const;
  std::string ToJson() const;

 private:
  // std::map: stable node addresses (pointer registration) + deterministic
  // iteration order for the snapshot.
  std::map<std::string, MetricCounter> counters_;
  std::map<std::string, MetricGauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::mutex reg_mu_;  // guards map insertion only
};

/// Appends the standard percentile summary for one histogram:
/// {"count":N,"mean":..,"min":..,"p25":..,"p50":..,"p75":..,"p90":..,
///  "p99":..,"p999":..,"max":..} — all times in nanoseconds.
void AppendHistogramJson(const Histogram& h, JsonWriter* w);

}  // namespace durassd

#endif  // DURASSD_COMMON_METRICS_H_
