#ifndef DURASSD_COMMON_METRICS_H_
#define DURASSD_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.h"
#include "common/json.h"
#include "common/types.h"

namespace durassd {

/// Named metrics for one component tree: counters, gauges, and latency
/// histograms, registered once and updated through stable pointers, so the
/// hot path is a plain increment / Histogram::Record with no lookup.
///
/// Layering convention: each top-level component (SsdDevice, Database,
/// KvStore) owns a registry; sub-layers (Ftl, Wal, DoubleWriteBuffer)
/// receive a pointer to their owner's registry and register their own
/// metrics under a dotted prefix ("ftl.program_ns", "wal.sync_ns", ...).
///
/// Metrics are observational only: recording never advances virtual time,
/// so an instrumented run produces bit-identical simulation results to an
/// uninstrumented one.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a counter. The returned pointer is stable for the
  /// registry's lifetime; increment it directly.
  uint64_t* Counter(const std::string& name);
  /// Registers (or finds) a gauge (last-value semantics).
  double* Gauge(const std::string& name);
  /// Registers (or finds) a latency histogram (nanosecond samples).
  Histogram* GetHistogram(const std::string& name);

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Zeroes every registered metric (pointers stay valid).
  void Reset();

  /// Appends a snapshot as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{"name":{count,mean,...}}}
  void AppendJson(JsonWriter* w) const;
  std::string ToJson() const;

 private:
  // std::map: stable node addresses (pointer registration) + deterministic
  // iteration order for the snapshot.
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Appends the standard percentile summary for one histogram:
/// {"count":N,"mean":..,"min":..,"p25":..,"p50":..,"p75":..,"p90":..,
///  "p99":..,"p999":..,"max":..} — all times in nanoseconds.
void AppendHistogramJson(const Histogram& h, JsonWriter* w);

}  // namespace durassd

#endif  // DURASSD_COMMON_METRICS_H_
