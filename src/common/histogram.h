#ifndef DURASSD_COMMON_HISTOGRAM_H_
#define DURASSD_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace durassd {

/// Log-bucketed latency histogram. Records SimTime samples and reports the
/// percentiles the paper's Table 3 uses (mean, P25, P50, P75, P99, max).
/// Buckets grow geometrically (~4% ratio) from 1ns to ~hours, so percentile
/// error is bounded at a few percent while memory stays constant.
class Histogram {
 public:
  Histogram();

  void Record(SimTime value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  SimTime min() const { return count_ == 0 ? 0 : min_; }
  SimTime max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  /// p in [0, 100]. Interpolates within the containing bucket and clamps to
  /// the observed [min, max]; p <= 0 returns min, p >= 100 returns max.
  SimTime Percentile(double p) const;

  /// "mean p25 p50 p75 p99 max" in milliseconds with one decimal.
  std::string SummaryMillis() const;

 private:
  static constexpr int kNumBuckets = 512;
  /// Monotone integer bucket upper bounds (built once; see Bounds() impl).
  static const std::array<SimTime, kNumBuckets>& Bounds();
  static int BucketFor(SimTime v);
  static SimTime BucketUpper(int b);
  static SimTime BucketLower(int b);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  double sum_;
  SimTime min_;
  SimTime max_;
};

}  // namespace durassd

#endif  // DURASSD_COMMON_HISTOGRAM_H_
