#ifndef DURASSD_COMMON_CRC32C_H_
#define DURASSD_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace durassd {

/// CRC-32C (Castagnoli). Used for page checksums so torn writes injected by
/// the power-failure machinery are detectable exactly like InnoDB detects
/// partial page writes.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace durassd

#endif  // DURASSD_COMMON_CRC32C_H_
