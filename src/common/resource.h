#ifndef DURASSD_COMMON_RESOURCE_H_
#define DURASSD_COMMON_RESOURCE_H_

#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

#include "common/types.h"

namespace durassd {

/// Virtual-time reservation of a resource with `capacity` parallel service
/// slots (a bus, a firmware pipeline, a pool of DMA engines). A request
/// arriving at time t occupies the earliest-free slot for `duration`,
/// modelling both queueing (capacity busy => wait) and pipelining.
class ResourceTimeline {
 public:
  struct Grant {
    SimTime start;
    SimTime done;
  };

  explicit ResourceTimeline(uint32_t capacity = 1) { Reset(capacity); }

  void Reset(uint32_t capacity) {
    assert(capacity > 0);
    capacity_ = capacity;
    slots_ = std::priority_queue<SimTime, std::vector<SimTime>,
                                 std::greater<SimTime>>();
    for (uint32_t i = 0; i < capacity; ++i) slots_.push(0);
  }
  void Reset() { Reset(capacity_); }

  /// Reserves one slot for `duration` starting no earlier than `t`.
  Grant Acquire(SimTime t, SimTime duration) {
    const SimTime free_at = slots_.top();
    slots_.pop();
    const SimTime start = std::max(t, free_at);
    const SimTime done = start + duration;
    slots_.push(done);
    return {start, done};
  }

  /// Earliest time a new request could begin service.
  SimTime NextFree() const { return slots_.top(); }

  /// Time at which all current reservations have drained.
  SimTime AllFree() const {
    // The max of a min-heap: scan a copy. Capacity is small (<= hundreds).
    auto copy = slots_;
    SimTime latest = 0;
    while (!copy.empty()) {
      latest = std::max(latest, copy.top());
      copy.pop();
    }
    return latest;
  }

  uint32_t capacity() const { return capacity_; }

 private:
  uint32_t capacity_ = 1;
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<SimTime>>
      slots_;
};

}  // namespace durassd

#endif  // DURASSD_COMMON_RESOURCE_H_
