#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace durassd {

namespace {
// Geometric bucket boundaries: bucket b covers (base^b-ish) nanoseconds.
// ratio^512 must exceed ~hours in ns (1e13): ratio = 1.062 gives 1.062^512
// ~= 3e13, plenty.
constexpr double kRatio = 1.062;
}  // namespace

const std::array<SimTime, Histogram::kNumBuckets>& Histogram::Bounds() {
  // Bucket b covers (Bounds()[b-1], Bounds()[b]] with an implicit lower
  // bound of 0 for bucket 0. Built once by cumulative multiplication in
  // long double so the integer boundaries are monotone and self-consistent
  // (pow() per call drifts across libm implementations).
  static const std::array<SimTime, kNumBuckets> bounds = [] {
    std::array<SimTime, kNumBuckets> b{};
    long double upper = kRatio;
    for (int i = 0; i < kNumBuckets; ++i) {
      upper *= kRatio;
      b[i] = static_cast<SimTime>(upper);
      if (i > 0 && b[i] <= b[i - 1]) b[i] = b[i - 1] + 1;
    }
    return b;
  }();
  return bounds;
}

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<SimTime>::max()),
      max_(0) {}

int Histogram::BucketFor(SimTime v) {
  if (v <= 1) return 0;
  const std::array<SimTime, kNumBuckets>& bounds = Bounds();
  // Log gives the approximate index; the table fixes up boundary drift so
  // a value always lands in the bucket whose bounds actually contain it.
  int b = static_cast<int>(std::log(static_cast<double>(v)) / std::log(kRatio));
  if (b < 0) b = 0;
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  while (b > 0 && v <= bounds[b - 1]) --b;
  while (b < kNumBuckets - 1 && v > bounds[b]) ++b;
  return b;
}

SimTime Histogram::BucketUpper(int b) { return Bounds()[b]; }

SimTime Histogram::BucketLower(int b) { return b == 0 ? 0 : Bounds()[b - 1]; }

void Histogram::Record(SimTime value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<SimTime>::max();
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

SimTime Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (static_cast<double>(seen + buckets_[i]) >= target) {
      // Interpolate within the bucket: samples are assumed uniformly spread
      // across (lower, upper]. Clamping to the observed [min_, max_] keeps
      // tiny and extreme percentiles honest (the first nonempty bucket's
      // upper bound can exceed every recorded sample).
      const double lower = static_cast<double>(BucketLower(i));
      const double upper = static_cast<double>(BucketUpper(i));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      SimTime r = static_cast<SimTime>(lower + frac * (upper - lower));
      r = std::max(r, min_);
      r = std::min(r, max_);
      return r;
    }
    seen += buckets_[i];
  }
  return max_;
}

std::string Histogram::SummaryMillis() const {
  char buf[160];
  snprintf(buf, sizeof(buf), "%8.1f %8.1f %8.1f %8.1f %8.1f %8.1f",
           Mean() / static_cast<double>(kMillisecond),
           static_cast<double>(Percentile(25)) / kMillisecond,
           static_cast<double>(Percentile(50)) / kMillisecond,
           static_cast<double>(Percentile(75)) / kMillisecond,
           static_cast<double>(Percentile(99)) / kMillisecond,
           static_cast<double>(max()) / kMillisecond);
  return buf;
}

}  // namespace durassd
