#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace durassd {

namespace {
// Geometric bucket boundaries: bucket b covers (base^b-ish) nanoseconds.
// ratio^512 must exceed ~hours in ns (1e13): ratio = 1.062 gives 1.062^512
// ~= 3e13, plenty.
constexpr double kRatio = 1.062;
}  // namespace

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<SimTime>::max()),
      max_(0) {}

int Histogram::BucketFor(SimTime v) {
  if (v <= 1) return 0;
  int b = static_cast<int>(std::log(static_cast<double>(v)) / std::log(kRatio));
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  return b;
}

SimTime Histogram::BucketUpper(int b) {
  return static_cast<SimTime>(std::pow(kRatio, b + 1));
}

void Histogram::Record(SimTime value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<SimTime>::max();
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

SimTime Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

std::string Histogram::SummaryMillis() const {
  char buf[160];
  snprintf(buf, sizeof(buf), "%8.1f %8.1f %8.1f %8.1f %8.1f %8.1f",
           Mean() / static_cast<double>(kMillisecond),
           static_cast<double>(Percentile(25)) / kMillisecond,
           static_cast<double>(Percentile(50)) / kMillisecond,
           static_cast<double>(Percentile(75)) / kMillisecond,
           static_cast<double>(Percentile(99)) / kMillisecond,
           static_cast<double>(max()) / kMillisecond);
  return buf;
}

}  // namespace durassd
