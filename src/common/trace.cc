#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace durassd {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCmdStart: return "cmd_start";
    case TraceEventType::kCmdAck: return "cmd_ack";
    case TraceEventType::kReadStart: return "read_start";
    case TraceEventType::kReadDone: return "read_done";
    case TraceEventType::kDestageDone: return "destage_done";
    case TraceEventType::kFlushStart: return "flush_start";
    case TraceEventType::kFlushDone: return "flush_done";
    case TraceEventType::kGcStart: return "gc_start";
    case TraceEventType::kGcEnd: return "gc_end";
    case TraceEventType::kPowerCut: return "power_cut";
    case TraceEventType::kPowerOn: return "power_on";
    case TraceEventType::kDump: return "dump";
    case TraceEventType::kReplay: return "replay";
    case TraceEventType::kTxnCommit: return "txn_commit";
    case TraceEventType::kFsync: return "fsync";
    case TraceEventType::kWalAppend: return "wal_append";
    case TraceEventType::kDoubleWrite: return "double_write";
    case TraceEventType::kKvCommit: return "kv_commit";
    case TraceEventType::kDegraded: return "degraded";
    case TraceEventType::kTxnAbort: return "txn_abort";
    case TraceEventType::kInvariantViolation: return "invariant_violation";
    case TraceEventType::kDestageBatch: return "destage_batch";
    case TraceEventType::kBarrier: return "barrier";
  }
  return "unknown";
}

Tracer::Tracer(size_t capacity) : ring_(std::max<size_t>(capacity, 1)) {}

size_t Tracer::size() const {
  return static_cast<size_t>(
      std::min<uint64_t>(next_, ring_.size()));
}

uint64_t Tracer::dropped() const {
  return next_ > ring_.size() ? next_ - ring_.size() : 0;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  const size_t n = size();
  out.reserve(n);
  const uint64_t first = next_ - n;
  for (uint64_t i = first; i < next_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void Tracer::AppendJsonl(std::string* out) const {
  for (const TraceEvent& e : Events()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("t");
    w.Int(e.t);
    w.Key("type");
    w.String(TraceEventTypeName(e.type));
    w.Key("a0");
    w.Uint(e.a0);
    w.Key("a1");
    w.Uint(e.a1);
    w.EndObject();
    out->append(w.str());
    out->push_back('\n');
  }
}

Status Tracer::ExportJsonl(const std::string& path) const {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  std::string buf;
  AppendJsonl(&buf);
  const size_t written = fwrite(buf.data(), 1, buf.size(), f);
  fclose(f);
  if (written != buf.size()) {
    return Status::IoError("short write to trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace durassd
