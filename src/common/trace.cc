#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace durassd {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCmdStart: return "cmd_start";
    case TraceEventType::kCmdAck: return "cmd_ack";
    case TraceEventType::kReadStart: return "read_start";
    case TraceEventType::kReadDone: return "read_done";
    case TraceEventType::kDestageDone: return "destage_done";
    case TraceEventType::kFlushStart: return "flush_start";
    case TraceEventType::kFlushDone: return "flush_done";
    case TraceEventType::kGcStart: return "gc_start";
    case TraceEventType::kGcEnd: return "gc_end";
    case TraceEventType::kPowerCut: return "power_cut";
    case TraceEventType::kPowerOn: return "power_on";
    case TraceEventType::kDump: return "dump";
    case TraceEventType::kReplay: return "replay";
    case TraceEventType::kTxnCommit: return "txn_commit";
    case TraceEventType::kFsync: return "fsync";
    case TraceEventType::kWalAppend: return "wal_append";
    case TraceEventType::kDoubleWrite: return "double_write";
    case TraceEventType::kKvCommit: return "kv_commit";
    case TraceEventType::kDegraded: return "degraded";
    case TraceEventType::kTxnAbort: return "txn_abort";
    case TraceEventType::kInvariantViolation: return "invariant_violation";
    case TraceEventType::kDestageBatch: return "destage_batch";
    case TraceEventType::kBarrier: return "barrier";
  }
  return "unknown";
}

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

/// One thread's (tracer id -> ring) cache. Tracer ids are never reused, so
/// an entry for a destroyed tracer can never be looked up again; its raw
/// pointer is dead weight, not a hazard. Tracer churn is bounded per test
/// process, so the vector stays tiny.
struct TlsRingCache {
  struct Entry {
    uint64_t tracer_id;
    void* ring;
  };
  std::vector<Entry> entries;
};

thread_local TlsRingCache g_tls_rings;

}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::Ring* Tracer::LocalRing() {
  for (const TlsRingCache::Entry& e : g_tls_rings.entries) {
    if (e.tracer_id == id_) return static_cast<Ring*>(e.ring);
  }
  return RegisterLocalRing();
}

Tracer::Ring* Tracer::RegisterLocalRing() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  Ring* r = rings_.back().get();
  g_tls_rings.entries.push_back(TlsRingCache::Entry{id_, r});
  return r;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& r : rings_) {
    n += static_cast<size_t>(std::min<uint64_t>(r->next, r->buf.size()));
  }
  return n;
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& r : rings_) n += r->next;
  return n;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& r : rings_) {
    n += r->next > r->buf.size() ? r->next - r->buf.size() : 0;
  }
  return n;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& r : rings_) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(r->next, r->buf.size()));
    const uint64_t first = r->next - n;
    for (uint64_t i = first; i < r->next; ++i) {
      out.push_back(r->buf[i % r->buf.size()]);
    }
  }
  return out;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : rings_) r->next = 0;
}

void Tracer::AppendJsonl(std::string* out) const {
  for (const TraceEvent& e : Events()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("t");
    w.Int(e.t);
    w.Key("type");
    w.String(TraceEventTypeName(e.type));
    w.Key("a0");
    w.Uint(e.a0);
    w.Key("a1");
    w.Uint(e.a1);
    w.EndObject();
    out->append(w.str());
    out->push_back('\n');
  }
}

Status Tracer::ExportJsonl(const std::string& path) const {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  std::string buf;
  AppendJsonl(&buf);
  const size_t written = fwrite(buf.data(), 1, buf.size(), f);
  fclose(f);
  if (written != buf.size()) {
    return Status::IoError("short write to trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace durassd
