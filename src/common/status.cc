#include "common/status.h"

namespace durassd {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeviceOffline:
      return "DeviceOffline";
    case StatusCode::kOutOfSpace:
      return "OutOfSpace";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace durassd
