#ifndef DURASSD_COMMON_TRACE_H_
#define DURASSD_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace durassd {

/// Typed simulation events. The two argument slots carry event-specific
/// payloads (an LPN, a plane index, a count, a duration) — see the
/// per-event comments. Keeping the record POD-sized (24 bytes) is what
/// makes tracing cheap enough to leave on in timing-only bench runs.
enum class TraceEventType : uint8_t {
  kCmdStart = 0,     ///< Host write command issued. a0=lpn, a1=sectors.
  kCmdAck,           ///< Host write acknowledged. a0=lpn, a1=sectors.
  kReadStart,        ///< Host read command issued. a0=lpn, a1=sectors.
  kReadDone,         ///< Host read completed. a0=lpn, a1=sectors.
  kDestageDone,      ///< Cache destage program completed. a0=lpn, a1=sectors.
  kFlushStart,       ///< FLUSH CACHE began draining. a0=outstanding.
  kFlushDone,        ///< FLUSH CACHE completed. a0=duration_ns.
  kGcStart,          ///< Garbage collection started. a0=plane.
  kGcEnd,            ///< Garbage collection finished. a0=plane, a1=moved.
  kPowerCut,         ///< Power failed. a0=durable_cache (0/1).
  kPowerOn,          ///< Power restored. a0=recovery_duration_ns.
  kDump,             ///< Capacitor dump. a0=pages_dumped, a1=overruns.
  kReplay,           ///< Reboot dump replay. a0=pages_replayed.
  kTxnCommit,        ///< Database transaction committed. a0=txn, a1=dur_ns.
  kFsync,            ///< File sync on the commit path. a0=duration_ns.
  kWalAppend,        ///< WAL record appended. a0=lsn, a1=bytes.
  kDoubleWrite,      ///< Double-write batch flushed. a0=pages, a1=dur_ns.
  kKvCommit,         ///< KvStore batch commit. a0=seq, a1=dur_ns.
  kDegraded,         ///< Device entered sticky read-only degraded mode.
                     ///< a0=plane, a1=bad_blocks at entry.
  kTxnAbort,         ///< Engine aborted an in-flight transaction.
                     ///< a0=txn/seq, a1=reason (StatusCode).
  kInvariantViolation,  ///< Crash-harness oracle check failed.
                        ///< a0=invariant id, a1=detail.
  kDestageBatch,     ///< Lazy destage drain issued. a0=pending_sectors,
                     ///< a1=trigger (0=batch, 1=idle, 2=pressure, 3=flush).
  kBarrier,          ///< BARRIER sealed an epoch. a0=epoch, a1=writes sealed.
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  SimTime t = 0;
  TraceEventType type = TraceEventType::kCmdStart;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
};

/// Bounded ring-buffer event recorder. Recording is a branch + three stores
/// when enabled and a single branch when not, and it never touches virtual
/// time, so it can stay attached during timing-only benchmark runs without
/// perturbing results. When a ring wraps, the oldest events are dropped
/// (and counted), keeping memory constant on arbitrarily long runs.
///
/// Thread safety (DESIGN.md §13): each recording thread gets its own ring
/// (registered lazily on first Record, cached in thread-local storage), so
/// the hot path stays lock-free and byte-identical to the historical
/// single-ring recorder when one thread records. Export / size accessors
/// merge the rings in registration order (each ring oldest-first) and
/// assume recording is quiesced (executor barrier or end of run) — with a
/// single recording thread that merge IS the historical event order.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void Record(SimTime t, TraceEventType type, uint64_t a0 = 0,
              uint64_t a1 = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    Ring* r = LocalRing();
    TraceEvent& e = r->buf[r->next % r->buf.size()];
    e.t = t;
    e.type = type;
    e.a0 = a0;
    e.a1 = a1;
    ++r->next;
  }

  /// Per-ring capacity (each recording thread retains up to this many).
  size_t capacity() const { return capacity_; }
  /// Events currently retained across all rings (<= capacity × rings).
  size_t size() const;
  /// Total events ever recorded (retained + dropped).
  uint64_t recorded() const;
  /// Events lost to ring wrap-around.
  uint64_t dropped() const;

  /// Retained events: rings in registration order, each oldest-first.
  std::vector<TraceEvent> Events() const;

  /// Appends the retained events as JSONL: one
  /// {"t":..,"type":"..","a0":..,"a1":..} object per line.
  void AppendJsonl(std::string* out) const;
  /// Writes the JSONL export to `path` (truncating).
  Status ExportJsonl(const std::string& path) const;

  /// Drops all retained events. Registered rings stay alive (thread-local
  /// caches keep raw pointers into them); requires quiesced recording.
  void Reset();

 private:
  struct Ring {
    explicit Ring(size_t capacity) : buf(capacity) {}
    std::vector<TraceEvent> buf;
    uint64_t next = 0;
  };

  /// Returns the calling thread's ring for this tracer, registering one on
  /// first use. Cached in TLS keyed by a never-reused tracer id, so a
  /// stale cache entry (destroyed tracer) can never match a live one.
  Ring* LocalRing();
  Ring* RegisterLocalRing();

  const size_t capacity_;
  const uint64_t id_;  ///< Unique across all tracers ever constructed.
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  ///< Guards rings_ registration vs export.
  std::vector<std::unique_ptr<Ring>> rings_;  ///< Registration order.
};

}  // namespace durassd

#endif  // DURASSD_COMMON_TRACE_H_
