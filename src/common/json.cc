#include "common/json.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace durassd {

// --------------------------- JsonWriter ------------------------------------

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Value follows its key; no comma.
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  has_element_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  has_element_.pop_back();
}

void JsonWriter::Key(Slice name) {
  MaybeComma();
  out_.push_back('"');
  Escape(name, &out_);
  out_.append("\":");
  pending_key_ = true;
}

void JsonWriter::String(Slice value) {
  MaybeComma();
  out_.push_back('"');
  Escape(value, &out_);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_.append(buf);
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  char buf[32];
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out_.append(buf);
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_.append("null");  // JSON has no Inf/NaN.
    return;
  }
  char buf[40];
  snprintf(buf, sizeof(buf), "%.12g", value);
  out_.append(buf);
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Null() {
  MaybeComma();
  out_.append("null");
}

void JsonWriter::Raw(Slice json) {
  MaybeComma();
  out_.append(json.data(), json.size());
}

void JsonWriter::Escape(Slice value, std::string* out) {
  for (size_t i = 0; i < value.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(value[i]);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

// --------------------------- JsonValue -------------------------------------

namespace {

constexpr int kMaxDepth = 64;

void SkipWs(const char** p, const char* end) {
  while (*p < end && (**p == ' ' || **p == '\t' || **p == '\n' ||
                      **p == '\r')) {
    ++*p;
  }
}

bool ParseString(const char** p, const char* end, std::string* out) {
  if (*p >= end || **p != '"') return false;
  ++*p;
  out->clear();
  while (*p < end) {
    const char c = **p;
    ++*p;
    if (c == '"') return true;
    if (c == '\\') {
      if (*p >= end) return false;
      const char e = **p;
      ++*p;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end - *p < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = (*p)[i];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          *p += 4;
          // UTF-8 encode (surrogate pairs not needed for our own output).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    } else {
      out->push_back(c);
    }
  }
  return false;  // Unterminated.
}

}  // namespace

bool JsonValue::ParseValue(const char** p, const char* end, JsonValue* out,
                           int depth) {
  if (depth > kMaxDepth) return false;
  SkipWs(p, end);
  if (*p >= end) return false;
  const char c = **p;
  if (c == '{') {
    ++*p;
    out->type_ = Type::kObject;
    SkipWs(p, end);
    if (*p < end && **p == '}') {
      ++*p;
      return true;
    }
    while (true) {
      SkipWs(p, end);
      std::string key;
      if (!ParseString(p, end, &key)) return false;
      SkipWs(p, end);
      if (*p >= end || **p != ':') return false;
      ++*p;
      JsonValue child;
      if (!ParseValue(p, end, &child, depth + 1)) return false;
      out->object_.emplace(std::move(key), std::move(child));
      SkipWs(p, end);
      if (*p >= end) return false;
      if (**p == ',') {
        ++*p;
        continue;
      }
      if (**p == '}') {
        ++*p;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    ++*p;
    out->type_ = Type::kArray;
    SkipWs(p, end);
    if (*p < end && **p == ']') {
      ++*p;
      return true;
    }
    while (true) {
      JsonValue child;
      if (!ParseValue(p, end, &child, depth + 1)) return false;
      out->array_.push_back(std::move(child));
      SkipWs(p, end);
      if (*p >= end) return false;
      if (**p == ',') {
        ++*p;
        continue;
      }
      if (**p == ']') {
        ++*p;
        return true;
      }
      return false;
    }
  }
  if (c == '"') {
    out->type_ = Type::kString;
    return ParseString(p, end, &out->string_);
  }
  if (strncmp(*p, "true", std::min<size_t>(4, end - *p)) == 0) {
    out->type_ = Type::kBool;
    out->bool_ = true;
    *p += 4;
    return true;
  }
  if (strncmp(*p, "false", std::min<size_t>(5, end - *p)) == 0) {
    out->type_ = Type::kBool;
    out->bool_ = false;
    *p += 5;
    return true;
  }
  if (strncmp(*p, "null", std::min<size_t>(4, end - *p)) == 0) {
    out->type_ = Type::kNull;
    *p += 4;
    return true;
  }
  // Number. strtod needs a NUL-terminated buffer; numbers are short.
  char buf[64];
  size_t n = 0;
  while (*p + n < end && n < sizeof(buf) - 1) {
    const char d = (*p)[n];
    if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
        d == 'e' || d == 'E') {
      buf[n] = d;
      ++n;
    } else {
      break;
    }
  }
  if (n == 0) return false;
  buf[n] = '\0';
  char* num_end = nullptr;
  out->number_ = strtod(buf, &num_end);
  if (num_end != buf + n) return false;
  out->type_ = Type::kNumber;
  *p += n;
  return true;
}

bool JsonValue::Parse(Slice text, JsonValue* out) {
  *out = JsonValue();
  const char* p = text.data();
  const char* end = text.data() + text.size();
  if (!ParseValue(&p, end, out, 0)) return false;
  SkipWs(&p, end);
  return p == end;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

}  // namespace durassd
