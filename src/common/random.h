#ifndef DURASSD_COMMON_RANDOM_H_
#define DURASSD_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace durassd {

/// Deterministic, seedable PRNG (xoshiro256**). Every stochastic component
/// of the simulator takes an explicit Random so runs are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Zipfian generator over [0, n) using the Gray/Jim (YCSB-style) rejection
/// inversion approximation. theta in (0, 1); 0.99 matches YCSB defaults.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    assert(n > 0);
    zeta_n_ = Zeta(n, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Next(Random& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  /// Next(), then scrambled via a multiplicative hash so hot keys are spread
  /// across the key space (YCSB's "scrambled zipfian").
  uint64_t NextScrambled(Random& rng) const {
    const uint64_t z = Next(rng);
    return FnvHash(z) % n_;
  }

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    // Cap the exact summation: beyond 10M items the tail contribution is
    // approximated by the integral, keeping construction O(1)-ish.
    const uint64_t exact = n < 10'000'000ull ? n : 10'000'000ull;
    for (uint64_t i = 1; i <= exact; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (exact < n) {
      // Integral of x^-theta from `exact` to n.
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(exact), 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  static uint64_t FnvHash(uint64_t v) {
    uint64_t hash = 0xCBF29CE484222325ull;
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xFF;
      hash *= 0x100000001B3ull;
    }
    return hash;
  }

  uint64_t n_;
  double theta_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace durassd

#endif  // DURASSD_COMMON_RANDOM_H_
