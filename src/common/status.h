#ifndef DURASSD_COMMON_STATUS_H_
#define DURASSD_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace durassd {

/// Error categories used across the library. Modeled after the
/// Status idiom common in storage engines: functions that can fail return a
/// Status (or StatusOr<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kCorruption,      ///< Checksum mismatch / torn page detected.
  kInvalidArgument,
  kIoError,         ///< Simulated device reported an error.
  kDeviceOffline,   ///< Operation issued while power is cut.
  kOutOfSpace,      ///< Device, dump area, or file system is full.
  kBusy,            ///< Queue full / resource temporarily unavailable.
  kTimedOut,        ///< Command exceeded its deadline (supervisor timeout);
                    ///< the operation may be retried — the device may have
                    ///< applied it, so retries must be idempotent.
  kNotSupported,
  kAborted,         ///< Transaction aborted.
  kDataLoss,        ///< Acknowledged data was lost (volatile cache).
  kResourceExhausted,  ///< Device permanently out of healthy resources
                       ///< (spare-block exhaustion); writes are rejected
                       ///< but reads still work. Distinct from kOutOfSpace,
                       ///< which is transient/logical fullness.
};

/// Return-value error type. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Corruption(std::string m = "corruption") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status InvalidArgument(std::string m = "invalid argument") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status IoError(std::string m = "I/O error") {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status DeviceOffline(std::string m = "device offline") {
    return Status(StatusCode::kDeviceOffline, std::move(m));
  }
  static Status OutOfSpace(std::string m = "out of space") {
    return Status(StatusCode::kOutOfSpace, std::move(m));
  }
  static Status Busy(std::string m = "busy") {
    return Status(StatusCode::kBusy, std::move(m));
  }
  static Status TimedOut(std::string m = "timed out") {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status NotSupported(std::string m = "not supported") {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status Aborted(std::string m = "aborted") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status DataLoss(std::string m = "data loss") {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "resource exhausted") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsDeviceOffline() const { return code_ == StatusCode::kDeviceOffline; }
  bool IsOutOfSpace() const { return code_ == StatusCode::kOutOfSpace; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// The retryable/fatal split I/O supervisors and engines branch on —
  /// instead of string-matching messages. Retryable failures (queue full,
  /// transient unavailability, a deadline timeout) may succeed if the same
  /// command is re-issued later; everything else is a definitive verdict
  /// about the operation (media error, corruption, exhaustion, offline) and
  /// retrying verbatim cannot help.
  bool IsRetryable() const {
    return code_ == StatusCode::kBusy || code_ == StatusCode::kTimedOut;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value or an error Status. Minimal absl::StatusOr analogue.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT: implicit by design
    assert(!status_.ok());
  }
  StatusOr(T value)  // NOLINT: implicit by design
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

#define DURASSD_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::durassd::Status _s = (expr);           \
    if (!_s.ok()) return _s;                 \
  } while (0)

}  // namespace durassd

#endif  // DURASSD_COMMON_STATUS_H_
