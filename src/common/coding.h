#ifndef DURASSD_COMMON_CODING_H_
#define DURASSD_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace durassd {

/// Little-endian fixed-width encode/decode helpers used by page layouts,
/// WAL records, and the kvstore on-disk format.

inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

inline void PutLengthPrefixed(std::string* dst, Slice s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Reads a 32-bit length-prefixed slice out of *input, advancing it.
/// Returns false on underflow.
inline bool GetLengthPrefixed(Slice* input, Slice* out) {
  if (input->size() < 4) return false;
  uint32_t len = DecodeFixed32(input->data());
  input->remove_prefix(4);
  if (input->size() < len) return false;
  *out = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

inline bool GetFixed32(Slice* input, uint32_t* out) {
  if (input->size() < 4) return false;
  *out = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

inline bool GetFixed64(Slice* input, uint64_t* out) {
  if (input->size() < 8) return false;
  *out = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

}  // namespace durassd

#endif  // DURASSD_COMMON_CODING_H_
