#include "common/metrics.h"

namespace durassd {

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return &counters_[name];
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return &histograms_[name];
}

void MetricsRegistry::Reset() {
  for (auto& [name, v] : counters_) v = 0;
  for (auto& [name, v] : gauges_) v = 0;
  for (auto& [name, h] : histograms_) h.Reset();
}

void AppendHistogramJson(const Histogram& h, JsonWriter* w) {
  w->BeginObject();
  w->Key("count");
  w->Uint(h.count());
  w->Key("mean");
  w->Double(h.Mean());
  w->Key("min");
  w->Int(h.min());
  w->Key("p25");
  w->Int(h.Percentile(25));
  w->Key("p50");
  w->Int(h.Percentile(50));
  w->Key("p75");
  w->Int(h.Percentile(75));
  w->Key("p90");
  w->Int(h.Percentile(90));
  w->Key("p99");
  w->Int(h.Percentile(99));
  w->Key("p999");
  w->Int(h.Percentile(99.9));
  w->Key("max");
  w->Int(h.max());
  w->EndObject();
}

void MetricsRegistry::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, v] : counters_) {
    w->Key(name);
    w->Uint(v);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, v] : gauges_) {
    w->Key(name);
    w->Double(v);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : histograms_) {
    w->Key(name);
    AppendHistogramJson(h, w);
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.TakeString();
}

}  // namespace durassd
