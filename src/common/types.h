#ifndef DURASSD_COMMON_TYPES_H_
#define DURASSD_COMMON_TYPES_H_

#include <cstdint>

namespace durassd {

/// Simulated time in nanoseconds since simulation start. All device latency
/// modelling and client scheduling use this virtual clock, never wall time,
/// so runs are deterministic and 128-client benchmarks finish in seconds.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

/// Logical page number in a device's (or file's) 4KB-sector address space.
using Lpn = uint64_t;
/// Physical page number inside the flash array.
using Ppn = uint64_t;
/// Log sequence number in minibase's write-ahead log.
using Lsn = uint64_t;
/// minibase page id within a database file.
using PageId = uint64_t;
/// Transaction identifier.
using TxnId = uint64_t;

/// Identifier of a command submitted through the asynchronous
/// BlockDevice::Submit / SimFile::SubmitWrite path.
using CmdId = uint64_t;

constexpr Ppn kInvalidPpn = ~0ull;
constexpr Lpn kInvalidLpn = ~0ull;
constexpr PageId kInvalidPageId = ~0ull;
constexpr Lsn kInvalidLsn = ~0ull;
constexpr CmdId kInvalidCmdId = ~0ull;

/// Largest representable virtual time (used as "no pending completion").
constexpr SimTime kMaxSimTime = INT64_MAX;

constexpr uint32_t kKiB = 1024;
constexpr uint64_t kMiB = 1024ull * kKiB;
constexpr uint64_t kGiB = 1024ull * kMiB;

}  // namespace durassd

#endif  // DURASSD_COMMON_TYPES_H_
