#ifndef DURASSD_COMMON_SLICE_H_
#define DURASSD_COMMON_SLICE_H_

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>

namespace durassd {

/// Non-owning view over a byte range, the currency of all read/write APIs.
/// Thin wrapper over std::string_view that adds byte-oriented helpers.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(strlen(s)) {}               // NOLINT
  Slice(std::string_view v) : data_(v.data()), size_(v.size()) {}    // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) r = -1;
      else if (size_ > b.size_) r = 1;
    }
    return r;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace durassd

#endif  // DURASSD_COMMON_SLICE_H_
