#ifndef DURASSD_COMMON_JSON_H_
#define DURASSD_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"

namespace durassd {

/// Minimal streaming JSON writer: appends well-formed JSON to a string,
/// inserting commas automatically. No external dependencies — this is the
/// emitter behind the bench `--json` schema, the metrics snapshot, and the
/// tracer's JSONL export.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("iops"); w.Double(1234.5);
///   w.Key("tags"); w.BeginArray(); w.String("a"); w.EndArray();
///   w.EndObject();
///   w.str()  // {"iops":1234.5,"tags":["a"]}
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(Slice name);
  void String(Slice value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();
  /// Splices a pre-serialized JSON value (object/array/literal) verbatim.
  void Raw(Slice json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static void Escape(Slice value, std::string* out);

 private:
  void MaybeComma();

  std::string out_;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Tiny recursive-descent JSON parser for tests and tooling (schema
/// validation of the bench output). Numbers are held as doubles; this is a
/// diagnostic reader, not a general-purpose library.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  /// Parses `text` as one JSON document (trailing whitespace allowed).
  /// Returns false on malformed input.
  static bool Parse(Slice text, JsonValue* out);

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  static bool ParseValue(const char** p, const char* end, JsonValue* out,
                         int depth);

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace durassd

#endif  // DURASSD_COMMON_JSON_H_
