#ifndef DURASSD_SIM_THREAD_POOL_H_
#define DURASSD_SIM_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace durassd {

/// Fixed-size worker pool (RocksDB-style: one mutex, one condvar, FIFO
/// queue, workers live for the pool's lifetime). Used by the sharded
/// executor to run shard-epochs on real host threads.
///
/// Determinism note: the pool makes NO ordering promises between queued
/// jobs — callers that need determinism must make their jobs commutative
/// (the sharded executor's shard-epochs touch disjoint state and are
/// separated by a barrier, so which worker runs which shard never matters).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one job. Never blocks (unbounded queue).
  void Schedule(std::function<void()> fn);

  /// Blocks until the queue is empty and every worker is idle. Jobs
  /// scheduled *by jobs* before the queue drains are waited for too.
  void WaitIdle();

  /// Runs every thunk to completion, executing on the pool workers, and
  /// returns when all are done (Schedule-all + WaitIdle barrier).
  void RunBatch(const std::vector<std::function<void()>>& thunks);

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when work arrives / stop
  std::condition_variable idle_cv_;   // signalled when a worker finishes
  std::deque<std::function<void()>> queue_;
  uint32_t active_ = 0;  // workers currently running a job
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace durassd

#endif  // DURASSD_SIM_THREAD_POOL_H_
