#ifndef DURASSD_SIM_CLIENT_SCHEDULER_H_
#define DURASSD_SIM_CLIENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace durassd {

/// Closed-loop multi-client execution in virtual time: N logical clients
/// each repeatedly run one operation (a transaction) that advances their
/// local clock; contention happens inside the shared device/engine resource
/// timelines. Clients are always resumed in local-time order, which keeps
/// causality across shared state tight at transaction granularity.
///
/// This replaces the paper's 128 real benchmark threads: deterministic,
/// seedable, and a few orders of magnitude faster than wall-clock runs.
class ClientScheduler {
 public:
  /// Runs one operation for `client` starting at local time `now`; returns
  /// the operation's completion time (>= now).
  using ClientFn = std::function<SimTime(uint32_t client, SimTime now)>;

  struct RunResult {
    uint64_t ops = 0;
    SimTime makespan = 0;  ///< Virtual time when the last client finished.

    double OpsPerSecond() const {
      return makespan <= 0
                 ? 0.0
                 : static_cast<double>(ops) /
                       (static_cast<double>(makespan) / kSecond);
    }
  };

  /// Runs `total_ops` operations spread across `num_clients` clients
  /// starting at `start_time`. Each pop resumes the client with the
  /// smallest local clock.
  static RunResult Run(uint32_t num_clients, uint64_t total_ops,
                       SimTime start_time, const ClientFn& fn) {
    using Entry = std::pair<SimTime, uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (uint32_t c = 0; c < num_clients; ++c) {
      heap.emplace(start_time, c);
    }
    RunResult result;
    SimTime latest = start_time;
    while (result.ops < total_ops && !heap.empty()) {
      auto [now, client] = heap.top();
      heap.pop();
      const SimTime done = fn(client, now);
      latest = done > latest ? done : latest;
      result.ops++;
      heap.emplace(done, client);
    }
    result.makespan = latest - start_time;
    return result;
  }
};

}  // namespace durassd

#endif  // DURASSD_SIM_CLIENT_SCHEDULER_H_
