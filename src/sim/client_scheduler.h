#ifndef DURASSD_SIM_CLIENT_SCHEDULER_H_
#define DURASSD_SIM_CLIENT_SCHEDULER_H_

#include <cstdint>

#include "common/types.h"
#include "sim/sim_executor.h"

namespace durassd {

/// Closed-loop multi-client execution in virtual time: N logical clients
/// each repeatedly run one operation (a transaction) that advances their
/// local clock; contention happens inside the shared device/engine resource
/// timelines. Clients are always resumed in local-time order, which keeps
/// causality across shared state tight at transaction granularity.
///
/// Determinism guarantee: the resume order is a pure function of the
/// inputs. Clients are popped in (local clock, FIFO) order — among clients
/// whose clocks are equal, the one that became runnable *first* resumes
/// first (ties never depend on client index, container layout, or hash
/// order). Given the same (num_clients, total_ops, start_time, fn,
/// options), every run produces the identical operation schedule.
///
/// This replaces the paper's 128 real benchmark threads: deterministic,
/// seedable, and a few orders of magnitude faster than wall-clock runs.
///
/// Since the SimExecutor refactor this is a thin facade: the loop lives in
/// SerialExecutor (the default engine, bit-identical to the historical
/// inline loop), and setting DURASSD_EXECUTOR=sharded in the environment
/// routes every run through the epoch-barrier ShardedExecutor instead —
/// same schedule, real host threads (see sim/sim_executor.h).
class ClientScheduler {
 public:
  /// Runs one operation for `client` starting at local time `now`; returns
  /// the operation's completion time (>= now).
  using ClientFn = SimExecutor::ClientFn;
  using Options = SimExecutor::Options;
  using RunResult = SimExecutor::RunResult;

  /// Runs `total_ops` operations spread across `num_clients` clients
  /// starting at `start_time`. Each pop resumes the runnable client with
  /// the smallest local clock (FIFO among equals — see class comment).
  /// Degenerate inputs (no clients or no ops) return a zero result.
  static RunResult Run(uint32_t num_clients, uint64_t total_ops,
                       SimTime start_time, const ClientFn& fn,
                       const Options& options) {
    return RunClients(num_clients, total_ops, start_time, fn, options);
  }

  static RunResult Run(uint32_t num_clients, uint64_t total_ops,
                       SimTime start_time, const ClientFn& fn) {
    return Run(num_clients, total_ops, start_time, fn, Options{});
  }
};

}  // namespace durassd

#endif  // DURASSD_SIM_CLIENT_SCHEDULER_H_
