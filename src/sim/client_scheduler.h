#ifndef DURASSD_SIM_CLIENT_SCHEDULER_H_
#define DURASSD_SIM_CLIENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace durassd {

/// Closed-loop multi-client execution in virtual time: N logical clients
/// each repeatedly run one operation (a transaction) that advances their
/// local clock; contention happens inside the shared device/engine resource
/// timelines. Clients are always resumed in local-time order, which keeps
/// causality across shared state tight at transaction granularity.
///
/// Determinism guarantee: the resume order is a pure function of the
/// inputs. Clients are popped in (local clock, FIFO) order — among clients
/// whose clocks are equal, the one that became runnable *first* resumes
/// first (ties never depend on client index, container layout, or hash
/// order). Given the same (num_clients, total_ops, start_time, fn,
/// options), every run produces the identical operation schedule.
///
/// This replaces the paper's 128 real benchmark threads: deterministic,
/// seedable, and a few orders of magnitude faster than wall-clock runs.
class ClientScheduler {
 public:
  /// Runs one operation for `client` starting at local time `now`; returns
  /// the operation's completion time (>= now).
  using ClientFn = std::function<SimTime(uint32_t client, SimTime now)>;

  struct Options {
    /// Virtual think time a client waits between one operation's
    /// completion and its next submission (0 = fully closed loop). Models
    /// the keying/application delay of interactive benchmark clients.
    SimTime think_time = 0;
  };

  struct RunResult {
    uint64_t ops = 0;
    SimTime makespan = 0;  ///< Virtual time when the last client finished.

    double OpsPerSecond() const {
      return makespan <= 0
                 ? 0.0
                 : static_cast<double>(ops) /
                       (static_cast<double>(makespan) / kSecond);
    }
  };

  /// Runs `total_ops` operations spread across `num_clients` clients
  /// starting at `start_time`. Each pop resumes the runnable client with
  /// the smallest local clock (FIFO among equals — see class comment).
  /// Degenerate inputs (no clients or no ops) return a zero result.
  static RunResult Run(uint32_t num_clients, uint64_t total_ops,
                       SimTime start_time, const ClientFn& fn,
                       const Options& options) {
    RunResult result;
    if (num_clients == 0 || total_ops == 0) return result;
    struct Entry {
      SimTime at;
      uint64_t seq;  ///< Enqueue order: the FIFO tie-break among equal clocks.
      uint32_t client;
    };
    const auto later = [](const Entry& a, const Entry& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(later)> heap(
        later);
    uint64_t seq = 0;
    for (uint32_t c = 0; c < num_clients; ++c) {
      heap.push(Entry{start_time, seq++, c});
    }
    SimTime latest = start_time;
    while (result.ops < total_ops && !heap.empty()) {
      const Entry e = heap.top();
      heap.pop();
      const SimTime done = fn(e.client, e.at);
      latest = done > latest ? done : latest;
      result.ops++;
      heap.push(Entry{done + options.think_time, seq++, e.client});
    }
    result.makespan = latest - start_time;
    return result;
  }

  static RunResult Run(uint32_t num_clients, uint64_t total_ops,
                       SimTime start_time, const ClientFn& fn) {
    return Run(num_clients, total_ops, start_time, fn, Options{});
  }
};

}  // namespace durassd

#endif  // DURASSD_SIM_CLIENT_SCHEDULER_H_
