#ifndef DURASSD_SIM_CRASH_HARNESS_H_
#define DURASSD_SIM_CRASH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/types.h"
#include "host/durability_mode.h"

namespace durassd {

/// Full-stack crash-consistency torture harness.
///
/// One Run() executes a deterministic randomized workload against a complete
/// stack (engine -> file system -> SSD -> FTL -> NAND), cuts power at a
/// chosen virtual instant — optionally again *during* the subsequent
/// recovery ("nested cut"), and optionally with NAND fault injection live —
/// then replays recovery and checks the ACID invariants an engine on that
/// configuration is entitled to.
///
/// The oracle is built by a probe pass: the identical seeded workload runs
/// once on a pristine stack with no cuts, recording the committed key/value
/// snapshot at every commit boundary plus every value ever written per key.
/// Determinism of the simulator guarantees the real (crashing) run follows
/// the probe bit-for-bit up to the cut, so "commit #c in the real run"
/// corresponds exactly to probe snapshot c.
///
/// Invariant tiers, keyed by configuration:
///
///   kStrict   — durable device cache (DuraSSD), or volatile cache with
///               write barriers on (for the DB, double-write must also be
///               on; a torn home page is otherwise unrepairable):
///               recovery MUST succeed; the recovered state must equal
///               snapshot[c] or — only when a commit was in flight at the
///               cut — snapshot[c+1] (the commit-uncertain window);
///               recovering, cutting again immediately and recovering once
///               more must reproduce the identical state.
///   kClean    — volatile cache + barriers, DB without double-write:
///               as kStrict, except recovery may instead fail *cleanly*
///               (Corruption/DataLoss) when a torn page is detected.
///   kPrefix   — volatile cache, no barriers (the unsafe deployment the
///               paper warns about): acknowledged commits may be lost.
///               KvStore: the recovered state must still equal SOME probe
///               snapshot j <= c+1 (append-only headers give a prefix
///               property). Database: recovery must either fail cleanly or
///               succeed with a state containing no fabricated data (every
///               recovered value was really written to that key at some
///               point). Idempotency is not checked: a second cut can
///               legitimately lose more un-flushed state.
///
/// Violations are reported as self-contained strings that embed the full
/// reproducer (every Options field); when a Tracer is attached each one is
/// also recorded as a kInvariantViolation event.
class CrashHarness {
 public:
  enum class Engine { kDatabase, kKvStore };

  struct Options {
    Engine engine = Engine::kDatabase;
    bool durable_cache = true;   ///< DuraSSD vs volatile-cache device.
    bool write_barriers = true;  ///< FS barrier mount option.
    bool double_write = true;    ///< DB only: InnoDB doublewrite.
    /// DB only: fsync after every page write (commercial-RDBMS O_DSYNC
    /// mode — the fsync-frequency sweep of Sec. 4.3.2).
    bool sync_every_page_write = false;
    /// Device command-queue mode (durable-cache devices only; volatile
    /// presets are always unordered): true = DuraSSD ordered NCQ, false =
    /// force the unordered queue so cuts land with out-of-order
    /// acknowledgments in flight.
    bool ordered_queue = true;
    /// Durable-cache devices only: destage pending sectors as large
    /// sequential log segments (checksummed header + data stripe) instead
    /// of in-place page programs. Invariants are unchanged — the log adds
    /// a checksummed replay pass before the dump replay on recovery.
    bool log_structured_destage = false;
    /// DB only: checkpoint destage queue depth — > 1 exercises the async
    /// submit/complete path, so cuts land with commands in flight.
    uint32_t checkpoint_queue_depth = 1;
    uint32_t kv_batch_size = 1;  ///< KV only: updates per fsync.
    uint64_t seed = 1;
    int ops = 60;                ///< Mutating operations in the workload.
    int ops_per_txn = 3;         ///< DB only: mutations per transaction.
    uint64_t keyspace = 64;      ///< Distinct keys (small => overwrites).
    /// Where in the probe run's virtual duration to cut power, in (0, 1).
    double cut_fraction = 0.5;
    /// Cut power a second time, in the middle of recovering from the
    /// first cut (requires an extra deterministic replay to learn the
    /// recovery duration).
    bool nested_cut = false;
    /// Run with the NAND fault model live (bit errors within the ECC
    /// budget, program/erase failures): invariants are unchanged — the
    /// device must absorb the faults.
    bool inject_faults = false;
    /// Engine commit discipline (threaded into Wal / DoubleWriteBuffer /
    /// KvStore). kBarrier makes commits durable via barrier submission; on
    /// a volatile device the barrier degenerates to fsync, so the invariant
    /// tier is unchanged by this knob. The default reproduces the pre-mode
    /// behavior bit-for-bit.
    DurabilityMode durability_mode = DurabilityMode::kDurableOrderedNcq;
    /// Snap the cut instant to a barrier / sync completion boundary
    /// enumerated from a probe-pass device trace (cut_fraction then selects
    /// WHICH boundary instead of a fraction of the total runtime). This is
    /// how epoch-edge instants — the moments the epoch oracle bites — get
    /// exercised deterministically.
    bool cut_at_barrier_boundary = false;
    /// Negative self-test of the oracle: replace the recovered state with a
    /// deliberately forged cross-epoch reordering (the last pre-cut epoch's
    /// updates kept while an older epoch's are reverted) and expect the run
    /// to report a violation. A Run with this set REPORTING ok is itself
    /// the bug. Skips the idempotency phase.
    bool plant_epoch_reorder = false;
    // --- Multi-device array scenarios ---
    /// 0 = the raw single-device stack (the legacy path, bit-for-bit
    /// unchanged). >= 1 = mount the engine on a mirrored ArrayDevice with
    /// this many members; 1 is the golden single-member array, whose timing
    /// must reproduce the raw path exactly.
    uint32_t array_mirrors = 0;
    /// > 0: whole-device death of member 0 (the read primary) at this
    /// fraction of the fault-free run's virtual duration — an extra
    /// pre-pass learns that duration first, and the probe pass runs with
    /// the kill armed so probe and crashing run stay bit-identical up to
    /// the cut. The workload must ride through on the survivor.
    double array_kill_fraction = 0.0;
    /// Hot-spare semantics: auto-start the rate-limited online rebuild
    /// onto a fresh spare the moment the kill fires, so the power cut can
    /// land mid-rebuild (the zero-acked-loss acceptance sweep).
    bool array_rebuild = false;
    // --- Tiered (flash-extended-cache) scenarios ---
    /// Mount the engine on a TieredDevice: a small durable-cache flash
    /// tier fronting an HDD capacity tier, with the persistent cache
    /// directory journaled on flash. Host acks are flash-journal acks, so
    /// the stack earns the kStrict oracle regardless of `durable_cache`
    /// (which is ignored). Mutually exclusive with array_mirrors.
    bool tiered = false;
    /// Flash-tier size as a percentage of the capacity tier.
    double tier_flash_pct = 10.0;
    /// Read-miss admission: 0 = admit all, 1 = bypass sequential scans.
    uint32_t tier_admission = 1;
    /// Dirty victims per group-destage round.
    uint32_t tier_destage_batch = 16;
    /// false = drop the directory at PowerOn (cold-start baseline): the
    /// invariants must hold either way — only warmth differs.
    bool tier_warm = true;

    /// Optional: kInvariantViolation events are recorded here.
    Tracer* tracer = nullptr;

    /// Self-contained reproducer string (also prefixes every violation).
    std::string ToString() const;

    /// Parses a ToString() line back into Options (unknown tokens are
    /// ignored; `tracer` is not representable). Round-trip is exact:
    /// FromString(o.ToString()) runs the identical scenario — this is what
    /// makes the torture tests' printed repro lines copy-pasteable.
    static Options FromString(const std::string& repro);
  };

  struct Report {
    bool ok = true;                       ///< No violations.
    std::vector<std::string> violations;  ///< Self-describing, with repro.
    int cuts = 0;            ///< Power cuts performed (1, or 2 if nested).
    int recovery_attempts = 0;
    bool recovered = false;  ///< Final recovery succeeded (kPrefix/kClean
                             ///< configs may legitimately fail cleanly).
    bool commit_in_flight = false;  ///< A commit straddled the cut.
    uint64_t commits_acked = 0;     ///< Commits acknowledged before the cut.
    uint64_t snapshot_matched = 0;  ///< Probe snapshot the recovered state
                                    ///< equalled (when recovered).
    bool degraded = false;   ///< Device ended the run in degraded mode.
  };

  /// Executes one torture scenario. Deterministic: identical Options give
  /// an identical Report.
  static Report Run(const Options& options);
};

}  // namespace durassd

#endif  // DURASSD_SIM_CRASH_HARNESS_H_
