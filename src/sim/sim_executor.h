#ifndef DURASSD_SIM_SIM_EXECUTOR_H_
#define DURASSD_SIM_SIM_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace durassd {

class ThreadPool;

/// Virtual-time execution engine contract. An executor owns the resume
/// order of closed-loop clients: each client repeatedly runs one operation
/// (a function of `(client, now)` returning the operation's completion
/// time) and the executor decides which runnable client resumes next.
///
/// Two implementations:
///  - SerialExecutor: the historical single-threaded loop (default).
///    Clients pop in (local clock, FIFO-seq) order from one heap.
///  - ShardedExecutor: N shards, each a disjoint simulation stack with its
///    own (clock, FIFO) heap, advanced in lockstep epochs (virtual-time
///    windows of `epoch_ns`) under a barrier, with shard-epochs executed
///    on a real host thread pool.
///
/// Determinism contract (both implementations): the operation schedule is
/// a pure function of (shards, total_ops, start_time, options) — never of
/// the host thread count, wall-clock timing, or which worker ran which
/// epoch. ShardedExecutor with 1 shard produces the bit-identical schedule
/// to SerialExecutor for any epoch_ns and any thread count.
class SimExecutor {
 public:
  /// Runs one operation for `client` starting at local time `now`; returns
  /// the operation's completion time (>= now).
  using ClientFn = std::function<SimTime(uint32_t client, SimTime now)>;

  struct Options {
    /// Virtual think time between one operation's completion and the
    /// client's next submission (0 = fully closed loop).
    SimTime think_time = 0;
    /// Sharded mode: width of one epoch window. Shards only observe each
    /// other's cross-shard posts at window boundaries, so this is the
    /// minimum cross-shard visibility latency. Ignored by SerialExecutor.
    SimTime epoch_ns = 100 * kMicrosecond;
    /// Sharded mode: host threads executing shard-epochs. Ignored by
    /// SerialExecutor.
    uint32_t host_threads = 1;
  };

  struct RunResult {
    uint64_t ops = 0;
    SimTime makespan = 0;  ///< Virtual time when the last client finished.

    double OpsPerSecond() const {
      return makespan <= 0
                 ? 0.0
                 : static_cast<double>(ops) /
                       (static_cast<double>(makespan) / kSecond);
    }
  };

  virtual ~SimExecutor() = default;

  /// Runs `total_ops` operations spread across `num_clients` clients
  /// starting at `start_time`. Degenerate inputs return a zero result.
  virtual RunResult Run(uint32_t num_clients, uint64_t total_ops,
                        SimTime start_time, const ClientFn& fn) = 0;
};

/// The historical single-threaded loop: one heap, clients popped in
/// (local clock, FIFO) order. Bit-identical to the pre-executor
/// ClientScheduler (the algorithm moved here verbatim).
class SerialExecutor : public SimExecutor {
 public:
  explicit SerialExecutor(const Options& options) : options_(options) {}
  SerialExecutor() : SerialExecutor(Options{}) {}

  RunResult Run(uint32_t num_clients, uint64_t total_ops, SimTime start_time,
                const ClientFn& fn) override;

 private:
  Options options_;
};

/// Epoch-barrier sharded engine. Each shard owns a *disjoint* simulation
/// stack (device/array member + file system + engine + its clients); the
/// executor advances all shards through the same virtual-time window
/// [W, W+epoch) per round, running each shard's window on a pool thread,
/// then barriers before the next window.
///
/// Why this is deterministic regardless of host thread count: within a
/// window a shard's schedule depends only on shard-local state (its own
/// heap) plus cross-shard posts delivered at the *previous* barrier — both
/// pure functions of the inputs. Thread count only changes which worker
/// executes a shard-window, never what the window computes. See
/// DESIGN.md §13.
///
/// Cross-shard hand-off: during a window a shard may Post() a handler to
/// another shard. Posts are buffered in the sender's outbox (owner-thread
/// only — no locking during the window), merged at the barrier in
/// (delivery time, sender shard, sender sequence) order, and run by the
/// target shard at the start of the first window that covers their
/// delivery time. Delivery times are clamped up to the end of the posting
/// window, so cross-shard visibility latency is at least one epoch.
class ShardedExecutor : public SimExecutor {
 public:
  struct Shard {
    uint32_t num_clients = 0;
    uint64_t total_ops = 0;
    ClientFn fn;
  };

  /// Handler delivered to a shard at an epoch boundary; `now` is the
  /// (clamped) delivery time. Runs on the target shard's worker thread
  /// before any client of that window resumes.
  using PostFn = std::function<void(SimTime now)>;

  ShardedExecutor(const Options& options, std::vector<Shard> shards);
  ~ShardedExecutor() override;

  /// Single-shard convenience form (the SimExecutor contract): wraps the
  /// arguments into one shard and runs it — bit-identical to
  /// SerialExecutor for any epoch_ns / host_threads.
  RunResult Run(uint32_t num_clients, uint64_t total_ops, SimTime start_time,
                const ClientFn& fn) override;

  /// Runs every shard to completion and returns per-shard results
  /// (indexed like the constructor's vector).
  std::vector<RunResult> RunShards(SimTime start_time);

  /// Posts `fn` from `from_shard` for delivery to `to_shard` at virtual
  /// time >= `at` (clamped to the end of the current window). Only legal
  /// from within a client function or post handler of `from_shard` while
  /// RunShards is executing that shard's window.
  void Post(uint32_t from_shard, uint32_t to_shard, SimTime at, PostFn fn);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(states_.size());
  }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;  ///< Enqueue order: the FIFO tie-break among equal clocks.
    uint32_t client;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  struct Delivery {
    SimTime at;
    uint32_t from_shard;
    uint64_t from_seq;  ///< Outbox index at the sender: FIFO among equals.
    uint32_t to_shard;
    PostFn fn;
  };
  struct ShardState {
    Shard shard;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap;
    uint64_t seq = 0;
    uint64_t ops_done = 0;
    SimTime latest = 0;
    std::vector<Delivery> outbox;  ///< Written only by the owning worker.
    std::vector<Delivery> inbox;   ///< Merged at barriers, delivery order.
    size_t inbox_next = 0;
    RunResult result;

    bool ClientsDone() const { return ops_done >= shard.total_ops; }
    bool HasWork() const {
      return (!ClientsDone() && !heap.empty()) || inbox_next < inbox.size();
    }
    /// Earliest virtual time at which this shard has something to run.
    SimTime NextAt() const;
  };

  void RunShardWindow(ShardState* s, SimTime window_end);

  Options options_;
  std::vector<std::unique_ptr<ShardState>> states_;
  std::unique_ptr<ThreadPool> pool_;
  SimTime window_end_ = 0;  ///< Written by the barrier, read by workers.
};

/// ClientScheduler entry point: runs on the serial executor by default;
/// when the environment forces sharded mode (DURASSD_EXECUTOR=sharded,
/// thread count from DURASSD_EXECUTOR_THREADS, default 2) the same
/// schedule runs as one shard on a ShardedExecutor — bit-identical
/// results with real cross-thread hand-off of the simulation stack across
/// epochs (this is how the TSan CI job exercises the whole suite under
/// the sharded engine).
SimExecutor::RunResult RunClients(uint32_t num_clients, uint64_t total_ops,
                                  SimTime start_time,
                                  const SimExecutor::ClientFn& fn,
                                  const SimExecutor::Options& options);

}  // namespace durassd

#endif  // DURASSD_SIM_SIM_EXECUTOR_H_
