#include "sim/sim_executor.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "sim/thread_pool.h"

namespace durassd {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
}  // namespace

// ---------------------------------------------------------------------------
// SerialExecutor — the pre-executor ClientScheduler loop, moved verbatim.
// ---------------------------------------------------------------------------

SimExecutor::RunResult SerialExecutor::Run(uint32_t num_clients,
                                           uint64_t total_ops,
                                           SimTime start_time,
                                           const ClientFn& fn) {
  RunResult result;
  if (num_clients == 0 || total_ops == 0) return result;
  struct Entry {
    SimTime at;
    uint64_t seq;  ///< Enqueue order: the FIFO tie-break among equal clocks.
    uint32_t client;
  };
  const auto later = [](const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> heap(later);
  uint64_t seq = 0;
  for (uint32_t c = 0; c < num_clients; ++c) {
    heap.push(Entry{start_time, seq++, c});
  }
  SimTime latest = start_time;
  while (result.ops < total_ops && !heap.empty()) {
    const Entry e = heap.top();
    heap.pop();
    const SimTime done = fn(e.client, e.at);
    latest = done > latest ? done : latest;
    result.ops++;
    heap.push(Entry{done + options_.think_time, seq++, e.client});
  }
  result.makespan = latest - start_time;
  return result;
}

// ---------------------------------------------------------------------------
// ShardedExecutor
// ---------------------------------------------------------------------------

SimTime ShardedExecutor::ShardState::NextAt() const {
  SimTime next = kNever;
  if (!ClientsDone() && !heap.empty()) next = heap.top().at;
  for (size_t i = inbox_next; i < inbox.size(); ++i) {
    next = std::min(next, inbox[i].at);
  }
  return next;
}

ShardedExecutor::ShardedExecutor(const Options& options,
                                 std::vector<Shard> shards)
    : options_(options) {
  if (options_.epoch_ns <= 0) options_.epoch_ns = 100 * kMicrosecond;
  for (Shard& sh : shards) {
    auto st = std::make_unique<ShardState>();
    st->shard = std::move(sh);
    states_.push_back(std::move(st));
  }
  pool_ = std::make_unique<ThreadPool>(options_.host_threads);
}

ShardedExecutor::~ShardedExecutor() = default;

SimExecutor::RunResult ShardedExecutor::Run(uint32_t num_clients,
                                            uint64_t total_ops,
                                            SimTime start_time,
                                            const ClientFn& fn) {
  states_.clear();
  auto st = std::make_unique<ShardState>();
  st->shard = Shard{num_clients, total_ops, fn};
  states_.push_back(std::move(st));
  std::vector<RunResult> r = RunShards(start_time);
  return r.empty() ? RunResult{} : r[0];
}

void ShardedExecutor::Post(uint32_t from_shard, uint32_t to_shard, SimTime at,
                           PostFn fn) {
  ShardState* sender = states_[from_shard].get();
  // Clamp to the current window's end: the post becomes visible at the
  // next barrier at the earliest, making cross-shard latency >= one epoch.
  const SimTime deliver = std::max(at, window_end_);
  sender->outbox.push_back(Delivery{
      deliver, from_shard, static_cast<uint64_t>(sender->outbox.size()),
      to_shard, std::move(fn)});
}

void ShardedExecutor::RunShardWindow(ShardState* s, SimTime window_end) {
  // 1. Deliver due cross-shard posts in (time, sender, sender-seq) order.
  //    The inbox was merged in that order at the barrier, and every entry
  //    appended later was posted in a later window (so clamped to a later
  //    or equal delivery time); a stable scan from the cursor suffices.
  while (s->inbox_next < s->inbox.size()) {
    // Find the earliest due entry at or after the cursor (entries are
    // grouped by merge round; rounds are appended in nondecreasing clamp
    // time, but a round is internally sorted, so scan the whole tail).
    size_t best = s->inbox.size();
    for (size_t i = s->inbox_next; i < s->inbox.size(); ++i) {
      if (s->inbox[i].fn == nullptr) continue;  // already run
      if (s->inbox[i].at >= window_end) continue;
      if (best == s->inbox.size()) {
        best = i;
        continue;
      }
      const Delivery& a = s->inbox[i];
      const Delivery& b = s->inbox[best];
      if (a.at != b.at ? a.at < b.at
                       : (a.from_shard != b.from_shard
                              ? a.from_shard < b.from_shard
                              : a.from_seq < b.from_seq)) {
        best = i;
      }
    }
    if (best == s->inbox.size()) break;
    PostFn fn = std::move(s->inbox[best].fn);
    s->inbox[best].fn = nullptr;
    fn(s->inbox[best].at);
    // Advance the cursor past the consumed prefix.
    while (s->inbox_next < s->inbox.size() &&
           s->inbox[s->inbox_next].fn == nullptr) {
      ++s->inbox_next;
    }
  }

  // 2. Resume clients whose local clocks fall inside the window — the
  //    serial loop restricted to [*, window_end).
  while (s->ops_done < s->shard.total_ops && !s->heap.empty() &&
         s->heap.top().at < window_end) {
    const Entry e = s->heap.top();
    s->heap.pop();
    const SimTime done = s->shard.fn(e.client, e.at);
    s->latest = done > s->latest ? done : s->latest;
    s->ops_done++;
    s->heap.push(Entry{done + options_.think_time, s->seq++, e.client});
  }
}

std::vector<SimExecutor::RunResult> ShardedExecutor::RunShards(
    SimTime start_time) {
  // Seed every shard's heap: all clients runnable at start_time, FIFO
  // seeded in client order (identical to the serial loop).
  for (auto& sp : states_) {
    ShardState* s = sp.get();
    s->latest = start_time;
    if (s->shard.num_clients == 0 || s->shard.total_ops == 0) continue;
    for (uint32_t c = 0; c < s->shard.num_clients; ++c) {
      s->heap.push(Entry{start_time, s->seq++, c});
    }
  }

  std::vector<std::function<void()>> thunks;
  std::vector<Delivery> round;
  for (;;) {
    // Global minimum next-runnable time decides the window; idle gaps are
    // skipped entirely (no empty windows).
    SimTime next = kNever;
    for (auto& sp : states_) {
      if (sp->HasWork()) next = std::min(next, sp->NextAt());
    }
    if (next == kNever) break;
    window_end_ = (next / options_.epoch_ns + 1) * options_.epoch_ns;

    thunks.clear();
    for (auto& sp : states_) {
      ShardState* s = sp.get();
      if (!s->HasWork() || s->NextAt() >= window_end_) continue;
      const SimTime we = window_end_;
      thunks.push_back([this, s, we] { RunShardWindow(s, we); });
    }
    // Epoch barrier: RunBatch returns only when every scheduled
    // shard-window has completed on the pool.
    pool_->RunBatch(thunks);

    // Merge outboxes into target inboxes in (delivery time, sender shard,
    // sender seq) order — deterministic regardless of which worker ran
    // which shard.
    round.clear();
    for (auto& sp : states_) {
      for (Delivery& d : sp->outbox) round.push_back(std::move(d));
      sp->outbox.clear();
    }
    if (!round.empty()) {
      std::sort(round.begin(), round.end(),
                [](const Delivery& a, const Delivery& b) {
                  if (a.at != b.at) return a.at < b.at;
                  if (a.from_shard != b.from_shard) {
                    return a.from_shard < b.from_shard;
                  }
                  return a.from_seq < b.from_seq;
                });
      for (Delivery& d : round) {
        states_[d.to_shard]->inbox.push_back(std::move(d));
      }
    }
  }

  std::vector<RunResult> results;
  results.reserve(states_.size());
  for (auto& sp : states_) {
    RunResult r;
    r.ops = sp->ops_done;
    r.makespan = sp->latest - start_time;
    results.push_back(r);
  }
  return results;
}

// ---------------------------------------------------------------------------
// Environment-routed entry point (used by ClientScheduler).
// ---------------------------------------------------------------------------

namespace {

struct ExecutorEnv {
  bool sharded = false;
  uint32_t threads = 2;
};

const ExecutorEnv& GetExecutorEnv() {
  static const ExecutorEnv env = [] {
    ExecutorEnv e;
    const char* mode = std::getenv("DURASSD_EXECUTOR");
    e.sharded = mode != nullptr && std::strcmp(mode, "sharded") == 0;
    if (const char* t = std::getenv("DURASSD_EXECUTOR_THREADS")) {
      const long n = std::strtol(t, nullptr, 10);
      if (n >= 1 && n <= 256) e.threads = static_cast<uint32_t>(n);
    }
    return e;
  }();
  return env;
}

}  // namespace

SimExecutor::RunResult RunClients(uint32_t num_clients, uint64_t total_ops,
                                  SimTime start_time,
                                  const SimExecutor::ClientFn& fn,
                                  const SimExecutor::Options& options) {
  const ExecutorEnv& env = GetExecutorEnv();
  if (!env.sharded) {
    return SerialExecutor(options).Run(num_clients, total_ops, start_time, fn);
  }
  SimExecutor::Options o = options;
  o.host_threads = env.threads;
  ShardedExecutor ex(o, {});
  return ex.Run(num_clients, total_ops, start_time, fn);
}

}  // namespace durassd
