#include "sim/thread_pool.h"

#include <utility>

namespace durassd {

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::RunBatch(const std::vector<std::function<void()>>& thunks) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& fn : thunks) queue_.push_back(fn);
  }
  work_cv_.notify_all();
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    if (queue_.empty()) continue;
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace durassd
